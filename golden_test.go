package tensortee

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// updateGolden regenerates testdata/golden from the current simulators:
//
//	go test -run TestGoldenOutputs -update
//
// Run it without -race so the heavy experiments regenerate too.
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden files")

// goldenRunner is shared across the golden subtests so system calibration
// happens once for the whole sweep.
var goldenRunner = NewRunner(WithParallelism(0))

// goldenResult computes the experiment through the Runner's result cache
// and returns a copy with Elapsed zeroed: wall-clock time is the only
// nondeterministic field of a Result, so the pinned renderings stay
// byte-identical run to run.
func goldenResult(t *testing.T, id string) *Result {
	t.Helper()
	res, err := goldenRunner.Cached(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	clone := *res
	clone.Elapsed = 0
	return &clone
}

// shortOK lists heavy experiment ids fast enough for -short mode since
// the run-length fast path and the concurrent system calibration: their
// own work is sub-millisecond once the shared goldenRunner's calibration
// cache is warm, and the one-time calibration they trigger stays around
// a second. They remain skipped under the race detector (it slows the
// calibration simulators ~10x).
var shortOK = map[string]bool{"fig15": true, "fig21": true}

// TestGoldenOutputs pins every experiment's Text, JSON and CSV renderings
// byte-for-byte against testdata/golden/<id>.{txt,json,csv}. Any change
// to a simulator, a table layout, or a renderer shows up as a diff here;
// intentional changes regenerate with -update. Heavy (system-calibrating
// or sweep) experiments are gated like the existing registry sweep: they
// skip under -short (except the shortOK ids) and under the race detector.
func TestGoldenOutputs(t *testing.T) {
	for _, info := range Experiments() {
		t.Run(info.ID, func(t *testing.T) {
			if info.Heavy {
				if testing.Short() && !shortOK[info.ID] {
					t.Skip("heavy experiment in -short mode")
				}
				if raceEnabled {
					t.Skip("heavy experiment under the race detector; the non-race CI job covers it")
				}
			}
			t.Parallel()
			res := goldenResult(t, info.ID)
			jsonBytes, err := res.JSON()
			if err != nil {
				t.Fatal(err)
			}
			renders := map[string][]byte{
				"txt":  []byte(res.Text()),
				"json": append(jsonBytes, '\n'),
				"csv":  []byte(res.CSV()),
			}
			for _, ext := range []string{"txt", "json", "csv"} {
				got := renders[ext]
				path := filepath.Join("testdata", "golden", info.ID+"."+ext)
				if *updateGolden {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, got, 0o644); err != nil {
						t.Fatal(err)
					}
					continue
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (regenerate with -update): %v", err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("%s diverges from golden %s:\n%s", info.ID, path, diffHint(got, want))
				}
			}
		})
	}
}

// TestGoldenFingerprintStable pins that Fingerprint is a pure function of
// the result's content: two computations of the same experiment agree,
// and Elapsed does not participate.
func TestGoldenFingerprintStable(t *testing.T) {
	a, err := NewRunner().Run(context.Background(), "tab2")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRunner().Run(context.Background(), "tab2")
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed == b.Elapsed {
		// Forcing distinct elapsed values keeps the assertion meaningful.
		b.Elapsed = a.Elapsed + 1
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("fingerprints differ across identical runs: %s vs %s", a.Fingerprint(), b.Fingerprint())
	}
	if a.Fingerprint() == "" {
		t.Error("empty fingerprint")
	}
}

// diffHint renders a compact first-divergence report for golden failures.
func diffHint(got, want []byte) string {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	i := 0
	for i < n && got[i] == want[i] {
		i++
	}
	start := i - 40
	if start < 0 {
		start = 0
	}
	end := i + 40
	gotEnd, wantEnd := end, end
	if gotEnd > len(got) {
		gotEnd = len(got)
	}
	if wantEnd > len(want) {
		wantEnd = len(want)
	}
	return fmt.Sprintf("first divergence at byte %d\ngot:  %q\nwant: %q", i, got[start:gotEnd], want[start:wantEnd])
}
