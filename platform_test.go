package tensortee

import (
	"math"
	"strings"
	"testing"
)

func newTestPlatform(t *testing.T) *Platform {
	t.Helper()
	p, err := NewPlatform(WithRegionBytes(1<<20), WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlatformAttestation(t *testing.T) {
	p := newTestPlatform(t)
	if !p.Attested() {
		t.Fatal("platform not attested")
	}
}

func TestCreateReadRoundTrip(t *testing.T) {
	p := newTestPlatform(t)
	want := []float32{1.5, -2.25, 1e6, 0}
	if _, err := p.CreateTensor(CPUSide, "x", want); err != nil {
		t.Fatal(err)
	}
	got, err := p.ReadTensor(CPUSide, "x")
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("x[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCreateTensorValidation(t *testing.T) {
	p := newTestPlatform(t)
	if _, err := p.CreateTensor(CPUSide, "dup", []float32{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CreateTensor(CPUSide, "dup", []float32{2}); err == nil {
		t.Error("duplicate name accepted")
	}
	huge := make([]float32, 1<<20) // 4MB > 1MB region
	if _, err := p.CreateTensor(CPUSide, "huge", huge); err == nil {
		t.Error("oversized tensor accepted")
	}
	if _, err := p.ReadTensor(CPUSide, "missing"); err == nil {
		t.Error("missing tensor read succeeded")
	}
}

func TestTransferAndBarrier(t *testing.T) {
	p := newTestPlatform(t)
	vals := []float32{3, 1, 4, 1, 5, 9, 2, 6}
	if _, err := p.CreateTensor(NPUSide, "g", vals); err != nil {
		t.Fatal(err)
	}
	if err := p.Transfer(NPUSide, "g"); err != nil {
		t.Fatal(err)
	}
	if !p.Poisoned("g") {
		t.Error("transferred tensor must be poisoned before the barrier")
	}
	if err := p.VerifyBarrier("g"); err != nil {
		t.Fatal(err)
	}
	if p.Poisoned("g") {
		t.Error("poison not cleared after the barrier")
	}
	got, err := p.ReadTensor(CPUSide, "g")
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("g[%d] = %v, want %v", i, got[i], vals[i])
		}
	}
}

func TestTamperDetectedAtBarrier(t *testing.T) {
	p := newTestPlatform(t)
	if _, err := p.CreateTensor(NPUSide, "v", []float32{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := p.TamperMemory(NPUSide, "v", 12); err != nil {
		t.Fatal(err)
	}
	err := p.Transfer(NPUSide, "v")
	if err == nil {
		err = p.VerifyBarrier("v")
	}
	if err == nil {
		t.Fatal("tampered tensor passed transfer + barrier")
	}
	if !strings.Contains(err.Error(), "MAC") && !strings.Contains(err.Error(), "integrity") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestTamperUnknownTensor(t *testing.T) {
	p := newTestPlatform(t)
	if err := p.TamperMemory(NPUSide, "ghost", 0); err == nil {
		t.Error("tamper on unknown tensor accepted")
	}
	if err := p.Transfer(NPUSide, "ghost"); err == nil {
		t.Error("transfer of unknown tensor accepted")
	}
}

func TestBarrierOnUntransferredIsClean(t *testing.T) {
	p := newTestPlatform(t)
	if _, err := p.CreateTensor(CPUSide, "local", []float32{1}); err != nil {
		t.Fatal(err)
	}
	if err := p.VerifyBarrier("local"); err != nil {
		t.Errorf("barrier on local tensor: %v", err)
	}
}

func TestAdamStepInsideEnclave(t *testing.T) {
	p := newTestPlatform(t)
	n := 64
	w := make([]float32, n)
	g := make([]float32, n)
	zero := make([]float32, n)
	for i := range w {
		w[i] = 1
		g[i] = 1 // positive gradient: w must decrease
	}
	for _, spec := range []struct {
		name string
		vals []float32
	}{{"w", w}, {"g", g}, {"m", zero}, {"v", zero}} {
		if _, err := p.CreateTensor(CPUSide, spec.name, spec.vals); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.AdamStep("w", "g", "m", "v", 1); err != nil {
		t.Fatal(err)
	}
	got, err := p.ReadTensor(CPUSide, "w")
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] >= 1 {
			t.Fatalf("w[%d] = %v did not decrease", i, got[i])
		}
		if math.Abs(float64(got[i]-0.999)) > 1e-4 {
			t.Fatalf("w[%d] = %v, want ~0.999 (lr 1e-3)", i, got[i])
		}
	}
	// Moments were persisted back encrypted.
	m2, err := p.ReadTensor(CPUSide, "m")
	if err != nil {
		t.Fatal(err)
	}
	if m2[0] == 0 {
		t.Error("moment tensor not updated in the enclave")
	}
}

func TestZeROOffloadRoundTrip(t *testing.T) {
	// The full Figure-1 loop: gradient NPU->CPU, Adam on CPU, weights back.
	p := newTestPlatform(t)
	n := 32
	mk := func(v float32) []float32 {
		s := make([]float32, n)
		for i := range s {
			s[i] = v
		}
		return s
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	create := func(side Side, name string, vals []float32) {
		t.Helper()
		_, err := p.CreateTensor(side, name, vals)
		must(err)
	}
	create(CPUSide, "w", mk(2))
	create(CPUSide, "m", mk(0))
	create(CPUSide, "v", mk(0))
	create(NPUSide, "g", mk(-1))

	must(p.Transfer(NPUSide, "g"))
	must(p.VerifyBarrier("g"))
	must(p.AdamStep("w", "g", "m", "v", 1))
	must(p.Transfer(CPUSide, "w"))
	must(p.VerifyBarrier("w"))

	cpuW, err := p.ReadTensor(CPUSide, "w")
	must(err)
	npuW, err := p.ReadTensor(NPUSide, "w")
	must(err)
	if cpuW[0] != npuW[0] {
		t.Errorf("weights diverged: cpu %v, npu %v", cpuW[0], npuW[0])
	}
	if npuW[0] <= 2 {
		t.Errorf("negative gradient should increase w: %v", npuW[0])
	}
}

func TestSideString(t *testing.T) {
	if CPUSide.String() != "cpu" || NPUSide.String() != "npu" {
		t.Error("side strings wrong")
	}
}

func TestStagedTransferEquivalentToDirect(t *testing.T) {
	// The baseline protocol must deliver the same bytes as the direct
	// protocol — it just pays four crypto passes to do it.
	p := newTestPlatform(t)
	vals := []float32{1, -2, 3.5, -4.25}
	if _, err := p.CreateTensor(NPUSide, "d", vals); err != nil {
		t.Fatal(err)
	}
	if err := p.TransferStaged(NPUSide, "d"); err != nil {
		t.Fatal(err)
	}
	got, err := p.ReadTensor(CPUSide, "d")
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("d[%d] = %v, want %v", i, got[i], vals[i])
		}
	}
}

func TestStagedTransferDetectsTamper(t *testing.T) {
	p := newTestPlatform(t)
	if _, err := p.CreateTensor(NPUSide, "t", []float32{9, 8, 7}); err != nil {
		t.Fatal(err)
	}
	if err := p.TamperMemory(NPUSide, "t", 3); err != nil {
		t.Fatal(err)
	}
	if err := p.TransferStaged(NPUSide, "t"); err == nil {
		t.Error("staged transfer shipped tampered data")
	}
}

func TestWriteTensorValidation(t *testing.T) {
	p := newTestPlatform(t)
	if err := p.WriteTensor(CPUSide, "ghost", []float32{1}); err == nil {
		t.Error("write to unknown tensor accepted")
	}
	if _, err := p.CreateTensor(CPUSide, "wt", []float32{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteTensor(CPUSide, "wt", []float32{1}); err == nil {
		t.Error("size mismatch accepted")
	}
	if err := p.WriteTensor(CPUSide, "wt", []float32{5, 6}); err != nil {
		t.Fatal(err)
	}
	got, err := p.ReadTensor(CPUSide, "wt")
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 5 || got[1] != 6 {
		t.Errorf("got %v", got)
	}
}

func TestAdamStepMissingTensor(t *testing.T) {
	p := newTestPlatform(t)
	if _, err := p.CreateTensor(CPUSide, "only-w", []float32{1}); err != nil {
		t.Fatal(err)
	}
	if err := p.AdamStep("only-w", "none", "none", "none", 1); err == nil {
		t.Error("missing tensors accepted")
	}
}

func TestWriteTensorBumpsVersion(t *testing.T) {
	// Rewriting a tensor must produce fresh ciphertext (freshness: the
	// version number advanced).
	p := newTestPlatform(t)
	if _, err := p.CreateTensor(CPUSide, "fresh", []float32{1, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteTensor(CPUSide, "fresh", []float32{1, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	got, err := p.ReadTensor(CPUSide, "fresh")
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Error("value corrupted across rewrite")
	}
}
