package tensortee

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

// fastIDs are experiments cheap enough to fan out in unit tests; fig5
// exercises the shared calibration cache from multiple workers.
var fastIDs = []string{"tab1", "tab2", "fig4", "hw", "gemm", "fig5"}

func TestRunAllParallel(t *testing.T) {
	r := NewRunner(WithParallelism(4))
	results, err := r.RunAll(context.Background(), fastIDs...)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(fastIDs) {
		t.Fatalf("results = %d, want %d", len(results), len(fastIDs))
	}
	for i, res := range results {
		if res == nil {
			t.Fatalf("results[%d] is nil", i)
		}
		if res.ID != fastIDs[i] {
			t.Errorf("results[%d].ID = %s, want %s (order must match ids)", i, res.ID, fastIDs[i])
		}
		if res.Elapsed <= 0 {
			t.Errorf("%s: elapsed not recorded", res.ID)
		}
	}
}

func TestRunAllDefaultsToRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	if raceEnabled {
		t.Skip("full registry sweep is too slow under the race detector; TestRunAllParallel covers the concurrency")
	}
	r := NewRunner(WithParallelism(0)) // 0 = GOMAXPROCS
	results, err := r.RunAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ids := ExperimentIDs()
	if len(results) != len(ids) {
		t.Fatalf("results = %d, want %d", len(results), len(ids))
	}
	for i, res := range results {
		if res.ID != ids[i] {
			t.Errorf("results[%d].ID = %s, want %s", i, res.ID, ids[i])
		}
	}
}

func TestZeroValueRunner(t *testing.T) {
	// A zero-value Runner (no NewRunner) must still run experiments —
	// parallelism floors at 1 and the nil cache means uncached systems.
	var r Runner
	res, err := r.RunAll(context.Background(), "tab1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0] == nil || res[0].ID != "tab1" {
		t.Fatalf("zero-value RunAll = %+v", res)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	r := NewRunner()
	if _, err := r.Run(context.Background(), "bogus"); err == nil {
		t.Error("unknown experiment accepted")
	}
	if _, err := r.RunAll(context.Background(), "tab1", "bogus"); err == nil {
		t.Error("unknown experiment accepted by RunAll")
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewRunner()
	if _, err := r.Run(ctx, "tab1"); !errors.Is(err, context.Canceled) {
		t.Errorf("Run on cancelled ctx = %v, want context.Canceled", err)
	}
	if _, err := r.RunAll(ctx, "tab1", "tab2"); !errors.Is(err, context.Canceled) {
		t.Errorf("RunAll on cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestRunAllCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := NewRunner(WithParallelism(1))
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		// Heavy ids: calibration plus 12-model sweeps take far longer
		// than the cancellation delay below.
		_, err := r.RunAll(ctx, "fig16", "fig17", "fig21", "fig15")
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("RunAll after mid-run cancel = %v, want context.Canceled", err)
		}
		if elapsed := time.Since(start); elapsed > 30*time.Second {
			t.Errorf("cancellation took %v; remaining experiments were not skipped", elapsed)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("RunAll did not return after cancellation")
	}
}

// TestCalibrationCacheIdentical pins that sharing calibrated systems does
// not change any reported number: a cached run of fig5 must produce
// byte-identical tables and scalars to an uncached (per-experiment
// calibration) run.
func TestCalibrationCacheIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("calibrates six systems")
	}
	ctx := context.Background()
	cached, err := NewRunner(WithCalibrationCache(true)).Run(ctx, "fig5")
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := NewRunner(WithCalibrationCache(false)).Run(ctx, "fig5")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cached.Tables, uncached.Tables) {
		t.Errorf("cached tables differ from uncached:\n%s\nvs\n%s", cached.Text(), uncached.Text())
	}
	if !reflect.DeepEqual(cached.Scalars, uncached.Scalars) {
		t.Errorf("cached scalars %v differ from uncached %v", cached.Scalars, uncached.Scalars)
	}
}

// TestCalibrationCacheReused pins the cache actually short-circuits: with
// the cache on, a second experiment needing the same systems must not
// re-calibrate (it runs much faster than the first).
func TestCalibrationCacheReused(t *testing.T) {
	if testing.Short() {
		t.Skip("calibrates three systems")
	}
	r := NewRunner(WithSystems(NonSecure, BaselineSGXMGX, TensorTEE))
	ctx := context.Background()
	first, err := r.Run(ctx, "fig5") // warm + experiment
	if err != nil {
		t.Fatal(err)
	}
	second, err := r.Run(ctx, "fig5") // all systems cached
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Scalars, second.Scalars) {
		t.Errorf("repeated run not deterministic: %v vs %v", first.Scalars, second.Scalars)
	}
}

func TestRunnerSharedAcrossGoroutines(t *testing.T) {
	// One Runner, many concurrent Run calls: exercises the calibration
	// cache's single-flight behavior under the race detector.
	r := NewRunner()
	ctx := context.Background()
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			_, err := r.Run(ctx, "fig5")
			errs <- err
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestCachedReturnsSameResult(t *testing.T) {
	r := NewRunner()
	ctx := context.Background()
	first, err := r.Cached(ctx, "tab2")
	if err != nil {
		t.Fatal(err)
	}
	if !r.ResultCached("tab2") {
		t.Error("ResultCached = false after Cached computed")
	}
	second, err := r.Cached(ctx, "tab2")
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Error("Cached recomputed: distinct *Result pointers for the same id")
	}
	if r.ResultCached("tab1") {
		t.Error("ResultCached = true for an id never requested")
	}
}

func TestCachedConcurrentSingleFlight(t *testing.T) {
	// Many goroutines ask for the same id at once; they must all get the
	// one memoized Result (pointer identity proves a single computation).
	r := NewRunner()
	ctx := context.Background()
	const n = 8
	results := make(chan *Result, n)
	for i := 0; i < n; i++ {
		go func() {
			res, err := r.Cached(ctx, "gemm")
			if err != nil {
				t.Error(err)
				results <- nil
				return
			}
			results <- res
		}()
	}
	var first *Result
	for i := 0; i < n; i++ {
		res := <-results
		if res == nil {
			t.Fatal("Cached failed")
		}
		if first == nil {
			first = res
		} else if res != first {
			t.Fatal("concurrent Cached calls returned distinct results")
		}
	}
}

func TestRunAllSeedsResultCache(t *testing.T) {
	// tensorteed -warm relies on this: a RunAll populates the Cached
	// store, so the first Cached call per id is a memory hit, not a
	// recomputation.
	r := NewRunner(WithParallelism(2))
	ctx := context.Background()
	results, err := r.RunAll(ctx, "tab1", "tab2", "gemm")
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range []string{"tab1", "tab2", "gemm"} {
		if !r.ResultCached(id) {
			t.Errorf("%s not cached after RunAll", id)
		}
		res, err := r.Cached(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if res != results[i] {
			t.Errorf("%s: Cached recomputed instead of serving the RunAll result", id)
		}
	}
}

func TestCachedErrorsMemoized(t *testing.T) {
	r := NewRunner()
	ctx := context.Background()
	_, err1 := r.Cached(ctx, "bogus")
	if err1 == nil {
		t.Fatal("unknown experiment accepted")
	}
	_, err2 := r.Cached(ctx, "bogus")
	if err2 == nil {
		t.Fatal("unknown experiment accepted on second call")
	}
	if !r.ResultCached("bogus") {
		t.Error("error outcome not memoized")
	}
}

func TestCachedCancelledWaiterDoesNotPoison(t *testing.T) {
	r := NewRunner()
	// A first caller with a dead-on-arrival context must not block and
	// must not be recorded as the experiment's outcome.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Cached(cancelled, "tab1"); !errors.Is(err, context.Canceled) {
		t.Fatalf("Cached on cancelled ctx = %v, want context.Canceled", err)
	}
	// A later caller with a live context gets the real result.
	res, err := r.Cached(context.Background(), "tab1")
	if err != nil {
		t.Fatalf("cache poisoned by the cancelled waiter: %v", err)
	}
	if res.ID != "tab1" {
		t.Fatalf("res.ID = %s", res.ID)
	}
}

func TestZeroValueRunnerCached(t *testing.T) {
	var r Runner
	res, err := r.Cached(context.Background(), "tab1")
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "tab1" {
		t.Fatalf("res.ID = %s", res.ID)
	}
}

func TestDeprecatedWrappersStillWork(t *testing.T) {
	out, err := RunExperiment("tab2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewRunner().Run(context.Background(), "tab2")
	if err != nil {
		t.Fatal(err)
	}
	if out != res.Text() {
		t.Error("RunExperiment output diverged from Result.Text()")
	}
	v, err := ExperimentScalar("tab2", "models")
	if err != nil {
		t.Fatal(err)
	}
	if v != 12 {
		t.Errorf("models scalar = %g, want 12", v)
	}
}
