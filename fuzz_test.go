package tensortee

import (
	"encoding/json"
	"errors"
	"math"
	"testing"
	"time"

	"tensortee/internal/config"
	"tensortee/internal/cpusim"
	"tensortee/internal/mee"
	"tensortee/internal/sim"
	"tensortee/internal/trace"
)

// buildFuzzResult deterministically shapes a Result out of raw fuzz
// bytes: table/row/column counts, ragged rows, and a mix of text and
// numeric cells all derive from data, so the fuzzer explores renderer
// edge cases (empty tables, rows wider than the header, NaN-free numeric
// extremes, control characters in text).
func buildFuzzResult(id, title string, data []byte, scalarName string, scalarVal float64, note string) *Result {
	res := &Result{
		ID:      id,
		Title:   title,
		Elapsed: time.Duration(len(data)),
	}
	if scalarName != "" {
		res.Scalars = map[string]float64{scalarName: scalarVal}
	}
	if note != "" {
		res.Notes = []string{note}
	}
	// One byte per structural decision; stop when data runs out.
	next := func() (byte, bool) {
		if len(data) == 0 {
			return 0, false
		}
		b := data[0]
		data = data[1:]
		return b, true
	}
	nTables, _ := next()
	for ti := 0; ti < int(nTables%4); ti++ {
		nCols, _ := next()
		cols := make([]string, int(nCols%5))
		for i := range cols {
			c, _ := next()
			cols[i] = string(rune(c))
		}
		tb := ResultTable{Title: title, Columns: cols}
		nRows, _ := next()
		for ri := 0; ri < int(nRows%5); ri++ {
			// Row width is independent of the column count on purpose:
			// ragged rows must render, not panic.
			nCells, _ := next()
			row := make([]Cell, int(nCells%7))
			for ci := range row {
				v, ok := next()
				if !ok {
					break
				}
				if v%2 == 0 {
					row[ci] = Cell{Text: string(data), Number: float64(v) * 1e17, IsNumber: true}
				} else {
					row[ci] = Cell{Text: string([]byte{v, 0, '\n', '"', ','})}
				}
			}
			tb.Rows = append(tb.Rows, row)
		}
		res.Tables = append(res.Tables, tb)
	}
	return res
}

// FuzzResultJSON pins that the Result renderers are total: for any cell
// mix — ragged rows, control characters, extreme numbers — Text, JSON and
// CSV never panic, JSON always emits a valid document, and Fingerprint
// stays deterministic and Elapsed-independent.
func FuzzResultJSON(f *testing.F) {
	f.Add("fig16", "Overall performance", []byte{2, 3, 'a', 'b', 'c', 2, 4, 1, 2, 3, 4}, "avg_speedup", 4.0, "geomean over 12 models")
	f.Add("", "", []byte{}, "", 0.0, "")
	f.Add("x", "y", []byte{1, 0, 1, 9, 9, 9, 9, 9, 9, 9}, "s", -1e308, "\x00\"")
	f.Fuzz(func(t *testing.T, id, title string, data []byte, scalarName string, scalarVal float64, note string) {
		// NaN/Inf scalars make json.Marshal error by encoding/json's spec,
		// not by a renderer bug; keep the corpus finite so "JSON() never
		// fails" stays the property under test.
		if math.IsNaN(scalarVal) || math.IsInf(scalarVal, 0) {
			scalarVal = 0
		}
		res := buildFuzzResult(id, title, data, scalarName, scalarVal, note)

		out, err := res.JSON()
		if err != nil {
			t.Fatalf("JSON() error: %v", err)
		}
		if !json.Valid(out) {
			t.Fatalf("JSON() emitted invalid JSON: %q", out)
		}
		// A Result must round-trip through its own JSON.
		var back Result
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("JSON() output does not unmarshal: %v", err)
		}

		_ = res.Text() // must not panic, including on ragged rows
		_ = res.CSV()  // must not panic; csv quoting handles embedded separators

		fp := res.Fingerprint()
		if fp == "" {
			t.Fatal("empty fingerprint")
		}
		clone := *res
		clone.Elapsed = res.Elapsed + time.Hour
		if clone.Fingerprint() != fp {
			t.Fatal("fingerprint depends on Elapsed")
		}
	})
}

// FuzzTamperMemory pins TamperMemory's offset validation: any in-range
// bit flip is accepted and then detected on read (ErrTampered), any
// out-of-range bit is rejected up front — it never wraps onto another
// cacheline or panics, and the tensor stays readable.
func FuzzTamperMemory(f *testing.F) {
	f.Add(0)
	f.Add(127)
	f.Add(128) // first out-of-range bit for a 4-elem tensor
	f.Add(-1)
	f.Add(1 << 30)
	f.Add(-(1 << 30))
	f.Fuzz(func(t *testing.T, bit int) {
		p, err := NewPlatform(WithRegionBytes(4096), WithSeed(7))
		if err != nil {
			t.Fatal(err)
		}
		h, err := p.CreateTensor(CPUSide, "t", []float32{1, 2, 3, 4})
		if err != nil {
			t.Fatal(err)
		}
		bits := h.Bytes() * 8
		err = p.TamperMemory(CPUSide, "t", bit)
		if bit >= 0 && bit < bits {
			if err != nil {
				t.Fatalf("in-range bit %d rejected: %v", bit, err)
			}
			if _, err := h.Read(CPUSide); !errors.Is(err, ErrTampered) {
				t.Fatalf("tampered read of bit %d = %v, want ErrTampered", bit, err)
			}
		} else {
			if err == nil {
				t.Fatalf("out-of-range bit %d accepted (would wrap)", bit)
			}
			if got, readErr := h.Read(CPUSide); readErr != nil {
				t.Fatalf("rejected tamper still corrupted the tensor: %v", readErr)
			} else if len(got) != 4 || got[0] != 1 {
				t.Fatalf("rejected tamper changed data: %v", got)
			}
		}
	})
}

// FuzzRunSpanParity pins the run-length fast path against the
// line-granular oracle for fuzzer-shaped traces: raw bytes decode into a
// soup of coalesced runs — spans that straddle tensor boundaries,
// metadata-line (8-slot) groups, and the region end — which replay
// through two fresh simulators, one consuming spans and one stepping
// lines. The Results (makespan, DRAM traffic, MEE and analyzer stats)
// must be identical, and the same must hold after a span-drained Flush.
func FuzzRunSpanParity(f *testing.F) {
	f.Add([]byte{0, 8, 0, 1, 8, 1, 2, 16, 2, 255, 3, 0}, uint8(2))
	f.Add([]byte{7, 1, 0, 7, 1, 1}, uint8(0))     // single-line runs, mode off
	f.Add([]byte{63, 12, 2, 60, 12, 2}, uint8(1)) // region-end straddle, SGX
	f.Fuzz(func(t *testing.T, data []byte, modeByte uint8) {
		const dataLines = 1 << 9
		mode := []mee.Mode{mee.ModeOff, mee.ModeSGX, mee.ModeTensor}[int(modeByte)%3]
		var runs []trace.Run
		for len(data) >= 3 && len(runs) < 256 {
			addr := uint64(data[0]) % (dataLines - 1)
			lines := 1 + int(data[1])%32
			if addr+uint64(lines) > dataLines {
				lines = int(dataLines - addr)
			}
			runs = append(runs, trace.Run{
				Addr:    addr * 64,
				Lines:   lines,
				Stride:  64,
				Write:   data[2]%3 == 0,
				Compute: sim.Dur(data[2]%5) * 100,
			})
			data = data[3:]
		}
		if len(runs) == 0 {
			return
		}
		cfg := config.Default(config.BaselineSGXMGX)
		mk := func() *trace.RunSlice {
			return &trace.RunSlice{Runs: append([]trace.Run(nil), runs...)}
		}
		fast := cpusim.New(cfg, cpusim.Options{Mode: mode, DataLines: dataLines})
		oracle := cpusim.New(cfg, cpusim.Options{Mode: mode, DataLines: dataLines})
		for it := 0; it < 2; it++ {
			rFast := fast.Run([]trace.Stream{mk()})
			rOracle := oracle.Run(trace.LineOnlyStreams([]trace.Stream{mk()}))
			if rFast != rOracle {
				t.Fatalf("iteration %d: fast %+v != oracle %+v", it, rFast, rOracle)
			}
		}
		fast.Flush()
		oracle.Flush()
		if fast.Engine().Stats() != oracle.Engine().Stats() {
			t.Fatalf("engine stats diverge after flush:\nfast:   %+v\noracle: %+v",
				fast.Engine().Stats(), oracle.Engine().Stats())
		}
		if mode == mee.ModeTensor {
			if fast.Analyzer().Stats() != oracle.Analyzer().Stats() {
				t.Fatalf("analyzer stats diverge after flush:\nfast:   %+v\noracle: %+v",
					fast.Analyzer().Stats(), oracle.Analyzer().Stats())
			}
			if err := fast.Analyzer().CheckInvariant(); err != nil {
				t.Fatal(err)
			}
		}
	})
}
