package tensortee

import (
	"strings"
	"testing"
)

func TestModelNames(t *testing.T) {
	names := ModelNames()
	if len(names) != 12 {
		t.Fatalf("models = %d, want 12", len(names))
	}
	if names[0] != "GPT" || names[len(names)-1] != "OPT-6.7B" {
		t.Error("model order wrong")
	}
}

func TestModelInfo(t *testing.T) {
	m, err := Model("GPT2-M")
	if err != nil {
		t.Fatal(err)
	}
	if m.BatchSize != 22 || m.Layers != 24 || m.Hidden != 1024 {
		t.Errorf("GPT2-M info = %+v", m)
	}
	if m.Params < 300e6 || m.Params > 450e6 {
		t.Errorf("GPT2-M params = %d", m.Params)
	}
	if _, err := Model("bogus"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestExperimentIDs(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 14 {
		t.Errorf("experiments = %d, want >= 14", len(ids))
	}
}

func TestRunExperimentTab2(t *testing.T) {
	out, err := RunExperiment("tab2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "GPT2-M") {
		t.Error("tab2 output missing models")
	}
	if _, err := RunExperiment("bogus"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestExperimentScalar(t *testing.T) {
	v, err := ExperimentScalar("hw", "total_kb")
	if err != nil {
		t.Fatal(err)
	}
	if v < 18 || v > 30 {
		t.Errorf("hw total = %g KB", v)
	}
	if _, err := ExperimentScalar("hw", "nope"); err == nil {
		t.Error("unknown scalar accepted")
	}
}

func TestSystemTrainStep(t *testing.T) {
	if testing.Short() {
		t.Skip("system calibration")
	}
	sys, err := NewSystem(TensorTEE)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.TrainStep("GPT")
	if err != nil {
		t.Fatal(err)
	}
	if b.Total <= 0 || b.NPU <= 0 || b.CPU <= 0 {
		t.Errorf("breakdown = %+v", b)
	}
	if b.Total != b.NPU+b.CPU+b.CommWeights+b.CommGrads {
		t.Error("breakdown does not sum")
	}
	if _, err := sys.TrainStep("bogus"); err == nil {
		t.Error("unknown model accepted")
	}
	if sys.Describe() == "" {
		t.Error("empty description")
	}
}

func TestKindString(t *testing.T) {
	if NonSecure.String() != "Non-Secure" || BaselineSGXMGX.String() != "SGX+MGX" || TensorTEE.String() != "TensorTEE" {
		t.Error("kind strings wrong")
	}
}
