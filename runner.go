package tensortee

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tensortee/internal/config"
	"tensortee/internal/core"
	"tensortee/internal/experiments"
	"tensortee/internal/scenario"
	"tensortee/internal/store"
)

// systemCache shares calibrated systems across experiments, scenarios and
// goroutines. Calibration (a short CPU-simulation sample) is the expensive
// part of building a system; with the cache each distinct configuration
// calibrates exactly once per Runner instead of once per experiment.
// Entries are keyed by a content fingerprint of the full configuration, so
// a scenario whose overrides resolve to a Table-1 default shares the
// registry experiments' calibration, while every distinct override set
// gets (and keeps) its own. Concurrent requests for the same configuration
// block on a single calibration (per-entry sync.Once).
type systemCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	// store, when set, persists calibration snapshots keyed by the config
	// content fingerprint: calibration is the expensive prefix of every
	// run, and a snapshot makes a cold start O(disk read).
	store *store.Store
}

type cacheEntry struct {
	once sync.Once
	sys  *core.System
	err  error
}

func newSystemCache() *systemCache {
	return &systemCache{entries: make(map[string]*cacheEntry)}
}

// configFingerprint derives the cache key from the complete configuration.
// config.Config is plain data (value fields only), so its JSON form is a
// stable content identity.
func configFingerprint(cfg config.Config) string {
	b, err := json.Marshal(cfg)
	if err != nil {
		// Cannot happen for plain-data configs; degrade to a shared key
		// rather than panicking.
		return "unmarshalable:" + err.Error()
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16])
}

// maxCachedSystems bounds the calibrated-system cache. Registry
// experiments only ever need the three Table-1 defaults; the rest of the
// budget absorbs scenario override sets. A calibrated system with a large
// explicit protected region holds a dense metadata layout, so unbounded
// retention would let a stream of distinct scenario configs exhaust
// memory. At the cap the whole map is dropped (wholesale, not LRU — the
// cache is correctness-neutral and recalibration is ~a second): in-flight
// callers keep their entry pointers and finish normally.
const maxCachedSystems = 32

func (c *systemCache) get(cfg config.Config) (*core.System, error) {
	key := configFingerprint(cfg)
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		if len(c.entries) >= maxCachedSystems {
			c.entries = make(map[string]*cacheEntry)
		}
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		// Disk (and peer) tier first: a persisted snapshot skips the
		// calibration simulation entirely. Decode or rebuild failures fall
		// through to a fresh calibration — the store is an accelerator,
		// never a correctness dependency.
		if c.store != nil {
			if b, ok := c.store.GetOrFetch(context.Background(), store.Calibrations, key); ok {
				var snap core.CalibrationSnapshot
				if json.Unmarshal(b, &snap) == nil {
					if sys, err := core.NewSystemFromSnapshot(cfg, snap); err == nil {
						e.sys = sys
						return
					}
				}
			}
		}
		e.sys, e.err = core.NewSystemFromConfig(cfg)
		if e.err == nil && c.store != nil {
			if b, err := json.Marshal(e.sys.Snapshot()); err == nil {
				// Best-effort write-through; a full disk must not fail the run.
				_ = c.store.Put(store.Calibrations, key, b)
			}
		}
	})
	return e.sys, e.err
}

// resultCache memoizes computed Results per experiment id, mirroring
// systemCache: each id computes at most once per Runner, concurrent
// requests for the same id share the single computation, and hits are
// served from memory. Because experiment outputs are deterministic (pinned
// by TestGoldenOutputs), a memoized Result is indistinguishable from a
// fresh run — apart from being ~instant.
type resultCache struct {
	mu      sync.Mutex
	entries map[string]*resultEntry
}

type resultEntry struct {
	once sync.Once
	done chan struct{} // closed when res/err are final
	res  *Result
	err  error
	// fromStore records that res was loaded from the persistent store
	// (disk or peer) rather than computed in this process. Written before
	// done closes; read only after.
	fromStore bool
}

func newResultCache() *resultCache {
	return &resultCache{entries: make(map[string]*resultEntry)}
}

func (c *resultCache) entry(id string) *resultEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok {
		e = &resultEntry{done: make(chan struct{})}
		c.entries[id] = e
	}
	return e
}

// seed records an already-computed result so future Cached calls hit.
// The entry's own sync.Once arbitrates the race with an in-flight Cached
// computation: whichever completes first wins, and experiment outputs are
// deterministic so the two results are interchangeable. Never call seed
// from inside Cached's compute path — the once is not reentrant.
func (c *resultCache) seed(id string, res *Result) {
	e := c.entry(id)
	e.once.Do(func() {
		e.res = res
		close(e.done)
	})
}

// cached reports whether the id has already finished computing (a lookup
// now would be a memory hit, not a compute or a wait).
func (c *resultCache) cached(id string) bool {
	c.mu.Lock()
	e, ok := c.entries[id]
	c.mu.Unlock()
	if !ok {
		return false
	}
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// fromStore reports whether the id's memoized result was loaded from the
// persistent store rather than computed here (false while still
// computing or on a never-requested id).
func (c *resultCache) fromStore(id string) bool {
	c.mu.Lock()
	e, ok := c.entries[id]
	c.mu.Unlock()
	if !ok {
		return false
	}
	select {
	case <-e.done:
		return e.fromStore
	default:
		return false
	}
}

// Runner executes experiments, optionally many at a time, sharing one
// calibration cache across all of them. The zero configuration
// (NewRunner() with no options) runs sequentially with caching on; a
// Runner is safe for concurrent use.
type Runner struct {
	parallelism int
	cache       *systemCache // nil when caching is disabled
	results     *resultCache // lazily built by Cached on the zero value
	resultsOnce sync.Once
	prewarm     []Kind
	store       *store.Store // nil when persistence is disabled
}

// RunnerOption configures a Runner.
type RunnerOption func(*Runner)

// WithParallelism sets how many experiments may run concurrently in
// RunAll (default 1; n < 1 selects GOMAXPROCS).
func WithParallelism(n int) RunnerOption {
	return func(r *Runner) {
		if n < 1 {
			n = runtime.GOMAXPROCS(0)
		}
		r.parallelism = n
	}
}

// WithSystems pre-declares the system kinds the workload will use: the
// Runner calibrates them up front (once, at the first Run/RunAll) instead
// of lazily inside the first experiment that needs each.
func WithSystems(kinds ...Kind) RunnerOption {
	return func(r *Runner) { r.prewarm = append(r.prewarm, kinds...) }
}

// WithCalibrationCache toggles the shared calibrated-system cache
// (default on). Disabling it restores the historical
// calibrate-per-experiment behavior — useful to bound memory or to force
// fully independent runs.
func WithCalibrationCache(enabled bool) RunnerOption {
	return func(r *Runner) {
		if enabled && r.cache == nil {
			r.cache = newSystemCache()
		} else if !enabled {
			r.cache = nil
		}
	}
}

// WithStore attaches a persistent content-addressed store: computed
// results, scenario outputs, and calibration snapshots write through to
// it, and future Runners (including future processes) sharing the same
// store directory serve them from disk instead of recomputing. The store
// is strictly an accelerator — every read is checksum-verified and keyed
// by build, and any failure degrades to a plain recompute.
func WithStore(st *store.Store) RunnerOption {
	return func(r *Runner) { r.store = st }
}

// NewRunner builds a Runner.
func NewRunner(opts ...RunnerOption) *Runner {
	r := &Runner{parallelism: 1, cache: newSystemCache(), results: newResultCache()}
	for _, o := range opts {
		o(r)
	}
	// Wire after the options run: WithCalibrationCache may have rebuilt or
	// dropped the cache, and WithStore may appear in any order relative
	// to it.
	if r.cache != nil {
		r.cache.store = r.store
	}
	return r
}

// Store returns the attached persistent store (nil when persistence is
// disabled).
func (r *Runner) Store() *store.Store { return r.store }

// resultsCache returns the result cache, building it on first use so the
// zero-value Runner supports Cached too.
func (r *Runner) resultsCache() *resultCache {
	r.resultsOnce.Do(func() {
		if r.results == nil {
			r.results = newResultCache()
		}
	})
	return r.results
}

// Cached returns the experiment's Result from the Runner's result cache,
// computing it (via Run) on the first request. Concurrent Cached calls for
// the same id share one computation; later calls return the memoized
// Result immediately. The computation is detached from ctx — cancelling a
// waiting caller abandons the wait (returning ctx.Err()) but lets the
// shared computation finish for future callers, so a cancelled first
// request never poisons the cache. Errors are memoized like results:
// experiment outcomes are deterministic, so retrying cannot help.
//
// Callers share the returned *Result — treat it as read-only.
func (r *Runner) Cached(ctx context.Context, id string) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e := r.resultsCache().entry(id)
	e.once.Do(func() {
		go func() {
			defer close(e.done)
			detached := context.WithoutCancel(ctx)
			if res, ok := r.resultFromStore(detached, id); ok {
				e.res, e.fromStore = res, true
				return
			}
			e.res, e.err = r.Run(detached, id)
			if e.err == nil {
				r.persistResult(id, e.res)
			}
		}()
	})
	select {
	case <-e.done:
		return e.res, e.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// resultFromStore tries the persistent store (disk, then peers) for an
// experiment result. Any failure — no store, miss, undecodable or
// mismatched payload — is a clean false; the caller recomputes.
func (r *Runner) resultFromStore(ctx context.Context, id string) (*Result, bool) {
	if r.store == nil {
		return nil, false
	}
	b, ok := r.store.GetOrFetch(ctx, store.Results, id)
	if !ok {
		return nil, false
	}
	res, err := DecodeStoredResult(b)
	if err != nil || res.ID != id {
		// The envelope checksum already passed, so this is schema drift or a
		// misfiled entry, not corruption; treat it as a miss.
		return nil, false
	}
	return res, true
}

// persistResult writes a computed result through to the store,
// best-effort: persistence failures never fail the run.
func (r *Runner) persistResult(id string, res *Result) {
	if r.store == nil || res == nil {
		return
	}
	if b, err := res.EncodeStored(); err == nil {
		_ = r.store.Put(store.Results, id, b)
	}
}

// ResultCached reports whether Cached(id) would be served from memory
// (the experiment has finished computing in this Runner).
func (r *Runner) ResultCached(id string) bool {
	return r.resultsCache().cached(id)
}

// ResultFromStore reports whether the memoized result for id was loaded
// from the persistent store rather than computed by this process. False
// while the experiment is still computing, was computed locally, or was
// never requested.
func (r *Runner) ResultFromStore(id string) bool {
	return r.resultsCache().fromStore(id)
}

// env builds the experiment environment backed by this Runner's cache.
func (r *Runner) env() *experiments.Env {
	if r.cache == nil {
		return nil // on-demand, uncached systems
	}
	return &experiments.Env{
		Systems: func(kind config.SystemKind) (*core.System, error) {
			return r.cache.get(config.Default(kind))
		},
		Configs: r.cache.get,
	}
}

// warm calibrates the pre-declared systems, honoring ctx between kinds.
// Without a cache there is nothing to keep the results in, so prewarming
// would calibrate and discard on every call — skip it.
func (r *Runner) warm(ctx context.Context) error {
	if r.cache == nil {
		return nil
	}
	env := r.env()
	for _, k := range r.prewarm {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := env.System(k.kind()); err != nil {
			return fmt.Errorf("tensortee: calibrating %s: %w", k, err)
		}
	}
	return nil
}

// Run regenerates one experiment and returns its typed result. The
// context is checked before the (potentially long) generation starts;
// cancellation during generation takes effect at the next experiment
// boundary.
func (r *Runner) Run(ctx context.Context, id string) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := r.warm(ctx); err != nil {
		return nil, err
	}
	start := time.Now()
	rep, err := experiments.RunWith(r.env(), id)
	if err != nil {
		return nil, err
	}
	return newResult(rep, time.Since(start)), nil
}

// RunScenario compiles and runs a declarative custom scenario (see the
// Scenario type): a workload model, a set of systems with Table-1
// overrides, a metric set, and an optional sweep axis, executed through
// the same calibrated simulation pipeline as the registry experiments.
// Calibrated systems are shared through the Runner's calibration cache,
// keyed by the override fingerprint — two scenarios (or a scenario and a
// registry experiment) that resolve to the same configuration calibrate
// once. Invalid specs fail fast with errors matching ErrInvalidScenario
// (and the specific sentinels ErrUnknownModel, ErrBadSweep,
// ErrUnsafeOverride) before any simulation starts.
func (r *Runner) RunScenario(ctx context.Context, spec Scenario) (*Result, error) {
	res, _, err := r.RunScenarioCached(ctx, spec)
	return res, err
}

// RunScenarioCached is RunScenario with persistent-store integration:
// when a store is attached, a scenario whose fingerprint is already on
// disk (or on a peer) is served from the store — the bool reports that —
// and freshly computed scenarios write through for next time. Specs are
// validated before the store is consulted, so an invalid spec fails
// identically with or without a store.
func (r *Runner) RunScenarioCached(ctx context.Context, spec Scenario) (*Result, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	var fp string
	if r.store != nil {
		if err := spec.Validate(); err != nil {
			return nil, false, err
		}
		fp = spec.Fingerprint()
		// The envelope already binds namespace, key and checksum, so a
		// decodable payload under this fingerprint is the scenario's result
		// (its ID is the scenario's name, not the fingerprint).
		if b, ok := r.store.GetOrFetch(ctx, store.Scenarios, fp); ok {
			if res, err := DecodeStoredResult(b); err == nil {
				return res, true, nil
			}
		}
	}
	start := time.Now()
	rep, err := scenario.Run(r.env(), spec)
	if err != nil {
		return nil, false, err
	}
	res := newResult(rep, time.Since(start))
	if r.store != nil {
		if b, err := res.EncodeStored(); err == nil {
			_ = r.store.Put(store.Scenarios, fp, b)
		}
	}
	return res, false, nil
}

// WarmAll populates the Runner's in-memory result cache for every
// registered experiment (all of ids, or the full registry when empty),
// serving each from the persistent store when possible and computing —
// and persisting — the rest. It returns how many came from the store
// versus were computed, the split a cold-start log line wants. Work fans
// out over the WithParallelism worker budget; the first error (or a
// cancelled ctx) stops the warm and is returned.
func (r *Runner) WarmAll(ctx context.Context, ids ...string) (fromStore, computed int, err error) {
	if len(ids) == 0 {
		ids = ExperimentIDs()
	}
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	if err := r.warm(ctx); err != nil {
		return 0, 0, err
	}

	jobs := make(chan string, len(ids))
	for _, id := range ids {
		jobs <- id
	}
	close(jobs)

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		stopped  atomic.Bool
		nStore   atomic.Int64
		nComp    atomic.Int64
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		stopped.Store(true)
	}

	workers := r.parallelism
	if workers < 1 {
		workers = 1
	}
	if workers > len(ids) {
		workers = len(ids)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range jobs {
				if stopped.Load() {
					continue
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					continue
				}
				if _, err := r.Cached(ctx, id); err != nil {
					fail(fmt.Errorf("experiment %s: %w", id, err))
					continue
				}
				if r.ResultFromStore(id) {
					nStore.Add(1)
				} else {
					nComp.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	if firstErr != nil {
		return int(nStore.Load()), int(nComp.Load()), firstErr
	}
	if err := ctx.Err(); err != nil {
		return int(nStore.Load()), int(nComp.Load()), err
	}
	return int(nStore.Load()), int(nComp.Load()), nil
}

// RunAll regenerates the given experiments (all registered ones when ids
// is empty), fanning them out over a worker pool of WithParallelism
// goroutines. Results come back in ids order. On the first failure — or
// when ctx is cancelled — remaining experiments are skipped and the error
// is returned; cancellation surfaces as ctx.Err().
func (r *Runner) RunAll(ctx context.Context, ids ...string) ([]*Result, error) {
	if len(ids) == 0 {
		ids = ExperimentIDs()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := r.warm(ctx); err != nil {
		return nil, err
	}

	env := r.env()
	results := make([]*Result, len(ids))
	jobs := make(chan int, len(ids))
	for i := range ids {
		jobs <- i
	}
	close(jobs)

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		stopped  atomic.Bool
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		stopped.Store(true)
	}

	workers := r.parallelism
	if workers < 1 {
		workers = 1 // a zero-value Runner still makes progress
	}
	if workers > len(ids) {
		workers = len(ids)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if stopped.Load() {
					continue // drain: an error or cancellation already fired
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					continue
				}
				start := time.Now()
				rep, err := experiments.RunWith(env, ids[i])
				if err != nil {
					fail(fmt.Errorf("experiment %s: %w", ids[i], err))
					continue
				}
				results[i] = newResult(rep, time.Since(start))
				// Completed results also warm the Cached store, so
				// RunAll (e.g. tensorteed -warm) pre-populates what
				// Cached will serve.
				r.resultsCache().seed(ids[i], results[i])
				r.persistResult(ids[i], results[i])
			}
		}()
	}
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	// A cancellation racing the last job may leave no recorded error but a
	// dead context; surface it rather than returning partial results.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
