package tensortee

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tensortee/internal/config"
	"tensortee/internal/core"
	"tensortee/internal/experiments"
	"tensortee/internal/scenario"
)

// systemCache shares calibrated systems across experiments, scenarios and
// goroutines. Calibration (a short CPU-simulation sample) is the expensive
// part of building a system; with the cache each distinct configuration
// calibrates exactly once per Runner instead of once per experiment.
// Entries are keyed by a content fingerprint of the full configuration, so
// a scenario whose overrides resolve to a Table-1 default shares the
// registry experiments' calibration, while every distinct override set
// gets (and keeps) its own. Concurrent requests for the same configuration
// block on a single calibration (per-entry sync.Once).
type systemCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
}

type cacheEntry struct {
	once sync.Once
	sys  *core.System
	err  error
}

func newSystemCache() *systemCache {
	return &systemCache{entries: make(map[string]*cacheEntry)}
}

// configFingerprint derives the cache key from the complete configuration.
// config.Config is plain data (value fields only), so its JSON form is a
// stable content identity.
func configFingerprint(cfg config.Config) string {
	b, err := json.Marshal(cfg)
	if err != nil {
		// Cannot happen for plain-data configs; degrade to a shared key
		// rather than panicking.
		return "unmarshalable:" + err.Error()
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16])
}

// maxCachedSystems bounds the calibrated-system cache. Registry
// experiments only ever need the three Table-1 defaults; the rest of the
// budget absorbs scenario override sets. A calibrated system with a large
// explicit protected region holds a dense metadata layout, so unbounded
// retention would let a stream of distinct scenario configs exhaust
// memory. At the cap the whole map is dropped (wholesale, not LRU — the
// cache is correctness-neutral and recalibration is ~a second): in-flight
// callers keep their entry pointers and finish normally.
const maxCachedSystems = 32

func (c *systemCache) get(cfg config.Config) (*core.System, error) {
	key := configFingerprint(cfg)
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		if len(c.entries) >= maxCachedSystems {
			c.entries = make(map[string]*cacheEntry)
		}
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.sys, e.err = core.NewSystemFromConfig(cfg) })
	return e.sys, e.err
}

// resultCache memoizes computed Results per experiment id, mirroring
// systemCache: each id computes at most once per Runner, concurrent
// requests for the same id share the single computation, and hits are
// served from memory. Because experiment outputs are deterministic (pinned
// by TestGoldenOutputs), a memoized Result is indistinguishable from a
// fresh run — apart from being ~instant.
type resultCache struct {
	mu      sync.Mutex
	entries map[string]*resultEntry
}

type resultEntry struct {
	once sync.Once
	done chan struct{} // closed when res/err are final
	res  *Result
	err  error
}

func newResultCache() *resultCache {
	return &resultCache{entries: make(map[string]*resultEntry)}
}

func (c *resultCache) entry(id string) *resultEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok {
		e = &resultEntry{done: make(chan struct{})}
		c.entries[id] = e
	}
	return e
}

// seed records an already-computed result so future Cached calls hit.
// The entry's own sync.Once arbitrates the race with an in-flight Cached
// computation: whichever completes first wins, and experiment outputs are
// deterministic so the two results are interchangeable. Never call seed
// from inside Cached's compute path — the once is not reentrant.
func (c *resultCache) seed(id string, res *Result) {
	e := c.entry(id)
	e.once.Do(func() {
		e.res = res
		close(e.done)
	})
}

// cached reports whether the id has already finished computing (a lookup
// now would be a memory hit, not a compute or a wait).
func (c *resultCache) cached(id string) bool {
	c.mu.Lock()
	e, ok := c.entries[id]
	c.mu.Unlock()
	if !ok {
		return false
	}
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// Runner executes experiments, optionally many at a time, sharing one
// calibration cache across all of them. The zero configuration
// (NewRunner() with no options) runs sequentially with caching on; a
// Runner is safe for concurrent use.
type Runner struct {
	parallelism int
	cache       *systemCache // nil when caching is disabled
	results     *resultCache // lazily built by Cached on the zero value
	resultsOnce sync.Once
	prewarm     []Kind
}

// RunnerOption configures a Runner.
type RunnerOption func(*Runner)

// WithParallelism sets how many experiments may run concurrently in
// RunAll (default 1; n < 1 selects GOMAXPROCS).
func WithParallelism(n int) RunnerOption {
	return func(r *Runner) {
		if n < 1 {
			n = runtime.GOMAXPROCS(0)
		}
		r.parallelism = n
	}
}

// WithSystems pre-declares the system kinds the workload will use: the
// Runner calibrates them up front (once, at the first Run/RunAll) instead
// of lazily inside the first experiment that needs each.
func WithSystems(kinds ...Kind) RunnerOption {
	return func(r *Runner) { r.prewarm = append(r.prewarm, kinds...) }
}

// WithCalibrationCache toggles the shared calibrated-system cache
// (default on). Disabling it restores the historical
// calibrate-per-experiment behavior — useful to bound memory or to force
// fully independent runs.
func WithCalibrationCache(enabled bool) RunnerOption {
	return func(r *Runner) {
		if enabled && r.cache == nil {
			r.cache = newSystemCache()
		} else if !enabled {
			r.cache = nil
		}
	}
}

// NewRunner builds a Runner.
func NewRunner(opts ...RunnerOption) *Runner {
	r := &Runner{parallelism: 1, cache: newSystemCache(), results: newResultCache()}
	for _, o := range opts {
		o(r)
	}
	return r
}

// resultsCache returns the result cache, building it on first use so the
// zero-value Runner supports Cached too.
func (r *Runner) resultsCache() *resultCache {
	r.resultsOnce.Do(func() {
		if r.results == nil {
			r.results = newResultCache()
		}
	})
	return r.results
}

// Cached returns the experiment's Result from the Runner's result cache,
// computing it (via Run) on the first request. Concurrent Cached calls for
// the same id share one computation; later calls return the memoized
// Result immediately. The computation is detached from ctx — cancelling a
// waiting caller abandons the wait (returning ctx.Err()) but lets the
// shared computation finish for future callers, so a cancelled first
// request never poisons the cache. Errors are memoized like results:
// experiment outcomes are deterministic, so retrying cannot help.
//
// Callers share the returned *Result — treat it as read-only.
func (r *Runner) Cached(ctx context.Context, id string) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e := r.resultsCache().entry(id)
	e.once.Do(func() {
		go func() {
			defer close(e.done)
			e.res, e.err = r.Run(context.WithoutCancel(ctx), id)
		}()
	})
	select {
	case <-e.done:
		return e.res, e.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// ResultCached reports whether Cached(id) would be served from memory
// (the experiment has finished computing in this Runner).
func (r *Runner) ResultCached(id string) bool {
	return r.resultsCache().cached(id)
}

// env builds the experiment environment backed by this Runner's cache.
func (r *Runner) env() *experiments.Env {
	if r.cache == nil {
		return nil // on-demand, uncached systems
	}
	return &experiments.Env{
		Systems: func(kind config.SystemKind) (*core.System, error) {
			return r.cache.get(config.Default(kind))
		},
		Configs: r.cache.get,
	}
}

// warm calibrates the pre-declared systems, honoring ctx between kinds.
// Without a cache there is nothing to keep the results in, so prewarming
// would calibrate and discard on every call — skip it.
func (r *Runner) warm(ctx context.Context) error {
	if r.cache == nil {
		return nil
	}
	env := r.env()
	for _, k := range r.prewarm {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := env.System(k.kind()); err != nil {
			return fmt.Errorf("tensortee: calibrating %s: %w", k, err)
		}
	}
	return nil
}

// Run regenerates one experiment and returns its typed result. The
// context is checked before the (potentially long) generation starts;
// cancellation during generation takes effect at the next experiment
// boundary.
func (r *Runner) Run(ctx context.Context, id string) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := r.warm(ctx); err != nil {
		return nil, err
	}
	start := time.Now()
	rep, err := experiments.RunWith(r.env(), id)
	if err != nil {
		return nil, err
	}
	return newResult(rep, time.Since(start)), nil
}

// RunScenario compiles and runs a declarative custom scenario (see the
// Scenario type): a workload model, a set of systems with Table-1
// overrides, a metric set, and an optional sweep axis, executed through
// the same calibrated simulation pipeline as the registry experiments.
// Calibrated systems are shared through the Runner's calibration cache,
// keyed by the override fingerprint — two scenarios (or a scenario and a
// registry experiment) that resolve to the same configuration calibrate
// once. Invalid specs fail fast with errors matching ErrInvalidScenario
// (and the specific sentinels ErrUnknownModel, ErrBadSweep,
// ErrUnsafeOverride) before any simulation starts.
func (r *Runner) RunScenario(ctx context.Context, spec Scenario) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	rep, err := scenario.Run(r.env(), spec)
	if err != nil {
		return nil, err
	}
	return newResult(rep, time.Since(start)), nil
}

// RunAll regenerates the given experiments (all registered ones when ids
// is empty), fanning them out over a worker pool of WithParallelism
// goroutines. Results come back in ids order. On the first failure — or
// when ctx is cancelled — remaining experiments are skipped and the error
// is returned; cancellation surfaces as ctx.Err().
func (r *Runner) RunAll(ctx context.Context, ids ...string) ([]*Result, error) {
	if len(ids) == 0 {
		ids = ExperimentIDs()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := r.warm(ctx); err != nil {
		return nil, err
	}

	env := r.env()
	results := make([]*Result, len(ids))
	jobs := make(chan int, len(ids))
	for i := range ids {
		jobs <- i
	}
	close(jobs)

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		stopped  atomic.Bool
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		stopped.Store(true)
	}

	workers := r.parallelism
	if workers < 1 {
		workers = 1 // a zero-value Runner still makes progress
	}
	if workers > len(ids) {
		workers = len(ids)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if stopped.Load() {
					continue // drain: an error or cancellation already fired
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					continue
				}
				start := time.Now()
				rep, err := experiments.RunWith(env, ids[i])
				if err != nil {
					fail(fmt.Errorf("experiment %s: %w", ids[i], err))
					continue
				}
				results[i] = newResult(rep, time.Since(start))
				// Completed results also warm the Cached store, so
				// RunAll (e.g. tensorteed -warm) pre-populates what
				// Cached will serve.
				r.resultsCache().seed(ids[i], results[i])
			}
		}()
	}
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	// A cancellation racing the last job may leave no recorded error but a
	// dead context; surface it rather than returning partial results.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
