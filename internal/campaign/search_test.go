package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"tensortee/internal/scenario"
	"tensortee/internal/store"
)

// twoSystemBase is a two-system base spec (speedup needs a baseline).
func twoSystemBase() scenario.Spec {
	s := tinyBase()
	s.Systems = []scenario.SystemSpec{{Kind: "sgx-mgx"}, {Kind: "tensortee"}}
	return s
}

// cacheEngineSpec is the canonical synthetic search domain: an 8×8 grid
// over the metadata-cache size and AES-engine count.
func cacheEngineSpec(search *SearchSpec) Spec {
	return Spec{
		Name: "search",
		Base: twoSystemBase(),
		Axes: []Axis{
			{Axis: "meta_cache_kb", Values: []float64{8, 16, 32, 64, 128, 256, 512, 1024}},
			{Axis: "npu_aes_engines", Values: []float64{1, 2, 3, 4, 5, 6, 7, 8}},
		},
		Search: search,
	}
}

// parseLabel inverts a point label ("meta_cache_kb=128,npu_aes_engines=4")
// into its axis values.
func parseLabel(label string) map[string]float64 {
	out := make(map[string]float64)
	for _, part := range strings.Split(label, ",") {
		if k, v, ok := strings.Cut(part, "="); ok {
			f, _ := strconv.ParseFloat(v, 64)
			out[k] = f
		}
	}
	return out
}

// monotoneObjective is increasing in both axes: bigger cache and more
// engines always help, the assumption target-mode bisection rides on.
func monotoneObjective(vals map[string]float64) float64 {
	return 1 + 0.01*vals["meta_cache_kb"] + 0.1*vals["npu_aes_engines"]
}

// synthRun returns a RunFunc behavior encoding the synthetic objective
// as a JSON payload (the shape synthMeasure decodes).
func synthBehave(obj func(map[string]float64) float64) func(label string, attempt int) ([]byte, error) {
	return func(label string, _ int) ([]byte, error) {
		return []byte(fmt.Sprintf(`{"speedup":%g}`, obj(parseLabel(label)))), nil
	}
}

func synthMeasure(payload []byte) (Measurement, error) {
	var m struct {
		Speedup float64 `json:"speedup"`
	}
	if err := json.Unmarshal(payload, &m); err != nil {
		return Measurement{}, err
	}
	return Measurement{Speedup: m.Speedup}, nil
}

// driveSearch runs a searcher to termination against a synthetic
// objective, returning the proposal sequence (batch by batch) and the
// termination reason.
func driveSearch(t *testing.T, p *Plan, obj func(map[string]float64) float64) (proposals [][]int, reason string, sr Searcher) {
	t.Helper()
	sr, err := NewSearcher(p)
	if err != nil {
		t.Fatalf("NewSearcher: %v", err)
	}
	for steps := 0; ; steps++ {
		if steps > 10*p.Total {
			t.Fatalf("search did not terminate after %d steps", steps)
		}
		prop := sr.Next()
		if prop.Done {
			return proposals, prop.Reason, sr
		}
		if len(prop.Indices) == 0 {
			t.Fatal("proposal with no indices and Done unset")
		}
		proposals = append(proposals, prop.Indices)
		for _, idx := range prop.Indices {
			sr.Observe(Observation{
				Index:     idx,
				Objective: obj(parseLabel(p.PointLabel(idx))),
				Cost:      p.Cost(idx),
				OK:        true,
			})
		}
	}
}

func TestCompileSearchSpec(t *testing.T) {
	plan, err := Compile(cacheEngineSpec(&SearchSpec{Mode: "Target", Target: 2}))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	s := plan.Spec.Search
	if s.Mode != SearchTarget || s.Objective != ObjectiveSpeedup {
		t.Fatalf("normalized search = %+v", s)
	}

	// Search axes sort ascending and dedup; a grid keeps submitted order.
	unsorted := cacheEngineSpec(&SearchSpec{Mode: "budget", Budget: 4})
	unsorted.Axes[0].Values = []float64{64, 8, 8, 16}
	plan, err = Compile(unsorted)
	if err != nil {
		t.Fatalf("Compile unsorted: %v", err)
	}
	if want := []float64{8, 16, 64}; !reflect.DeepEqual(plan.Spec.Axes[0].Values, want) {
		t.Fatalf("search axis values = %v, want %v", plan.Spec.Axes[0].Values, want)
	}
	if plan.Total != 3*8 {
		t.Fatalf("total = %d after dedup, want 24", plan.Total)
	}

	// Pareto defaults its refinement budget; explicit budgets clamp to
	// the domain size.
	plan, err = Compile(cacheEngineSpec(&SearchSpec{Mode: "pareto"}))
	if err != nil {
		t.Fatalf("Compile pareto: %v", err)
	}
	if plan.Spec.Search.Budget != 64 {
		t.Fatalf("pareto budget = %d, want min(total,128)=64", plan.Spec.Search.Budget)
	}

	for name, spec := range map[string]Spec{
		"unknown mode":      cacheEngineSpec(&SearchSpec{Mode: "climb"}),
		"budget without n":  cacheEngineSpec(&SearchSpec{Mode: "budget"}),
		"target without t":  cacheEngineSpec(&SearchSpec{Mode: "target"}),
		"target on pareto":  cacheEngineSpec(&SearchSpec{Mode: "pareto", Target: 2}),
		"unknown objective": cacheEngineSpec(&SearchSpec{Mode: "target", Target: 2, Objective: "latency"}),
		"weight off-axis":   cacheEngineSpec(&SearchSpec{Mode: "target", Target: 2, Cost: &CostSpec{Weights: map[string]float64{"layers": 1}}}),
		"negative weight":   cacheEngineSpec(&SearchSpec{Mode: "target", Target: 2, Cost: &CostSpec{Weights: map[string]float64{"meta_cache_kb": -1}}}),
		"speedup one system": func() Spec {
			s := cacheEngineSpec(&SearchSpec{Mode: "target", Target: 2})
			s.Base = tinyBase() // single system: no speedup baseline
			return s
		}(),
	} {
		if _, err := Compile(spec); err == nil {
			t.Errorf("%s: Compile accepted an invalid search spec", name)
		}
	}
}

func TestSearchProposalsDeterministic(t *testing.T) {
	for _, search := range []*SearchSpec{
		{Mode: "target", Target: 3},
		{Mode: "pareto", Budget: 40},
		{Mode: "budget", Budget: 20},
	} {
		plan, err := Compile(cacheEngineSpec(search))
		if err != nil {
			t.Fatalf("%s: Compile: %v", search.Mode, err)
		}
		p1, r1, _ := driveSearch(t, plan, monotoneObjective)
		p2, r2, _ := driveSearch(t, plan, monotoneObjective)
		if !reflect.DeepEqual(p1, p2) || r1 != r2 {
			t.Fatalf("%s: proposal sequences diverge:\n%v (%q)\n%v (%q)", search.Mode, p1, r1, p2, r2)
		}
	}
}

func TestTargetSearchBisectsMonotoneObjective(t *testing.T) {
	plan, err := Compile(cacheEngineSpec(&SearchSpec{Mode: "target", Target: 3}))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	proposals, reason, sr := driveSearch(t, plan, monotoneObjective)
	if !strings.Contains(reason, "target 3 met") {
		t.Fatalf("termination reason = %q", reason)
	}
	evals := 0
	for _, batch := range proposals {
		evals += len(batch)
	}
	// Coordinate descent is logarithmic per axis: 1 corner probe plus
	// ceil(log2 8) bisection steps per axis — far under the 64-point grid.
	if evals > 10 {
		t.Fatalf("target search evaluated %d points, want <= 10", evals)
	}
	snap := sr.Snapshot()
	if snap.Best == nil || snap.Best.Point != "meta_cache_kb=128,npu_aes_engines=8" {
		t.Fatalf("best = %+v, want the cheapest config meeting 3.0 (cache=128, engines=8)", snap.Best)
	}
	// f(128, 8) = 3.08 >= 3, and the next-cheaper candidates on either
	// axis miss the target: f(64, 8) = 2.44, f(128, 7) = 2.98.
	if snap.Best.Cost != 128+16*8 {
		t.Fatalf("best cost = %g, want 256", snap.Best.Cost)
	}
	if snap.Best.Objective < 3 {
		t.Fatalf("best objective = %g, below the target", snap.Best.Objective)
	}
}

func TestTargetSearchReportsUnreachable(t *testing.T) {
	plan, err := Compile(cacheEngineSpec(&SearchSpec{Mode: "target", Target: 100}))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	proposals, reason, _ := driveSearch(t, plan, monotoneObjective)
	if len(proposals) != 1 || len(proposals[0]) != 1 {
		t.Fatalf("unreachable target should cost exactly one probe, got %v", proposals)
	}
	if !strings.Contains(reason, "unreachable") {
		t.Fatalf("termination reason = %q", reason)
	}
}

func TestParetoFrontierIsNonDominated(t *testing.T) {
	// Non-monotone objective: engines help up to 4 then hurt, cache has
	// diminishing returns — the frontier is a real curve, not a corner.
	obj := func(vals map[string]float64) float64 {
		e := vals["npu_aes_engines"]
		return 0.1*float64(len(fmt.Sprint(vals["meta_cache_kb"]))) + 2 - (e-4)*(e-4)*0.05 + 0.001*vals["meta_cache_kb"]
	}
	plan, err := Compile(cacheEngineSpec(&SearchSpec{Mode: "pareto", Budget: 48}))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	_, reason, sr := driveSearch(t, plan, obj)
	if reason == "" {
		t.Fatal("pareto search terminated without a reason")
	}
	snap := sr.Snapshot()
	if len(snap.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	base := sr.(*paretoSearcher)
	for _, fp := range snap.Frontier {
		for idx, o := range base.obs {
			if !o.OK || idx == fp.Index {
				continue
			}
			strictlyCheaper := o.Cost < fp.Cost && o.Objective >= fp.Objective
			strictlyBetter := o.Cost <= fp.Cost && o.Objective > fp.Objective
			if strictlyCheaper || strictlyBetter {
				t.Fatalf("frontier point %+v dominated by observed point %d (cost=%g obj=%g)",
					fp, idx, o.Cost, o.Objective)
			}
		}
	}
	// Frontier is sorted by ascending cost with strictly improving
	// objective.
	for i := 1; i < len(snap.Frontier); i++ {
		if snap.Frontier[i].Cost <= snap.Frontier[i-1].Cost || snap.Frontier[i].Objective <= snap.Frontier[i-1].Objective {
			t.Fatalf("frontier not strictly increasing: %+v", snap.Frontier)
		}
	}
}

func TestBudgetSearchRespectsBudget(t *testing.T) {
	const budget = 12
	plan, err := Compile(cacheEngineSpec(&SearchSpec{Mode: "budget", Budget: budget}))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	proposals, reason, sr := driveSearch(t, plan, monotoneObjective)
	evals := 0
	for _, batch := range proposals {
		evals += len(batch)
	}
	if evals > budget {
		t.Fatalf("budget search evaluated %d points over its budget of %d", evals, budget)
	}
	if reason == "" {
		t.Fatal("budget search terminated without a reason")
	}
	snap := sr.Snapshot()
	if snap.Best == nil {
		t.Fatal("no best point after a full budget")
	}
	// The reported best is the best observed objective.
	base := sr.(*budgetSearcher)
	for _, o := range base.obs {
		if o.OK && o.Objective > snap.Best.Objective {
			t.Fatalf("best = %+v but observed objective %g at point %d", snap.Best, o.Objective, o.Index)
		}
	}
}

func TestSearchCampaignEvaluatesFewerPointsThanGrid(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	run := newCountingRun()
	run.behave = synthBehave(monotoneObjective)
	var evMu sync.Mutex
	var pointEvents []Event
	m := NewManager(Config{
		Run:     run.run,
		Measure: synthMeasure,
		Store:   st,
		Workers: 2,
		OnEvent: func(ev Event) {
			if ev.Type == EventPoint {
				evMu.Lock()
				pointEvents = append(pointEvents, ev)
				evMu.Unlock()
			}
		},
	})
	defer m.Shutdown(context.Background())

	status, created, err := m.Start(cacheEngineSpec(&SearchSpec{Mode: "target", Target: 3}))
	if err != nil || !created {
		t.Fatalf("Start: created=%v err=%v", created, err)
	}
	if status.Total != 64 {
		t.Fatalf("domain size = %d, want 64", status.Total)
	}
	final := waitTerminal(t, m, status.ID)
	if final.State != StateDone || final.Failed != 0 {
		t.Fatalf("final = %+v", final)
	}
	// The acceptance bar: the search answers the grid's question at a
	// fraction of the grid's cost.
	if run.total() >= final.Total/2 {
		t.Fatalf("search ran %d points; the equivalent grid is %d", run.total(), final.Total)
	}
	if final.Computed != run.total() {
		t.Fatalf("computed=%d but run executed %d points", final.Computed, run.total())
	}
	if final.Search == nil {
		t.Fatal("no search status on a search campaign")
	}
	if final.Search.Evaluated != run.total() {
		t.Fatalf("evaluated=%d, want %d", final.Search.Evaluated, run.total())
	}
	if !strings.Contains(final.Search.Terminated, "target 3 met") {
		t.Fatalf("terminated = %q", final.Search.Terminated)
	}
	if final.Search.Best == nil || final.Search.Best.Point != "meta_cache_kb=128,npu_aes_engines=8" {
		t.Fatalf("best = %+v", final.Search.Best)
	}
	// Computed points checkpointed; the final manifest carries the search
	// verdict so it survives restarts.
	raw, ok := st.Get(store.Campaigns, manifestKey(status.ID))
	if !ok {
		t.Fatal("no final manifest")
	}
	var man manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		t.Fatalf("manifest: %v", err)
	}
	if man.Final == nil || man.Final.Search == nil || man.Final.Search.Best == nil {
		t.Fatalf("manifest final search = %+v", man.Final)
	}
	// Every point event on a search campaign carries the best-so-far
	// snapshot.
	evMu.Lock()
	defer evMu.Unlock()
	if len(pointEvents) != final.Computed {
		t.Fatalf("%d point events, want %d", len(pointEvents), final.Computed)
	}
	for _, ev := range pointEvents {
		if ev.BestSoFar == nil {
			t.Fatalf("point event without best_so_far: %+v", ev)
		}
	}
}

func TestSearchResumeSkipsCheckpointedPoints(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	const before = 3

	// First incarnation: evaluate `before` points, wedge on the next; a
	// forced shutdown simulates the crash.
	run1 := newCountingRun()
	reached := make(chan struct{})
	var once sync.Once
	run1.behave = func(label string, attempt int) ([]byte, error) {
		if run1.total() > before {
			once.Do(func() { close(reached) })
			select {} // wedge forever; forced shutdown abandons it
		}
		return synthBehave(monotoneObjective)(label, attempt)
	}
	m1 := NewManager(Config{Run: run1.run, Measure: synthMeasure, Store: st, Workers: 1})
	status, _, err := m1.Start(cacheEngineSpec(&SearchSpec{Mode: "target", Target: 3}))
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	select {
	case <-reached:
	case <-time.After(10 * time.Second):
		t.Fatal("search never reached the wedge point")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := m1.Shutdown(ctx); err == nil {
		t.Fatal("forced shutdown should report an incomplete drain")
	}
	run1.mu.Lock()
	firstLabels := make(map[string]bool, len(run1.calls))
	for label := range run1.calls {
		firstLabels[label] = true
	}
	run1.mu.Unlock()

	// Second incarnation: the replay must propose the same sequence but
	// satisfy the checkpointed prefix from disk — no re-computation of
	// any point the first incarnation finished.
	run2 := newCountingRun()
	run2.behave = synthBehave(monotoneObjective)
	m2 := NewManager(Config{Run: run2.run, Measure: synthMeasure, Store: openStore(t, dir), Workers: 1})
	defer m2.Shutdown(context.Background())
	resumed, err := m2.ResumeStored()
	if err != nil || resumed != 1 {
		t.Fatalf("ResumeStored: resumed=%d err=%v", resumed, err)
	}
	final := waitTerminal(t, m2, status.ID)
	if final.State != StateDone {
		t.Fatalf("final = %+v", final)
	}
	if final.Restored != before {
		t.Fatalf("restored = %d, want %d", final.Restored, before)
	}
	run2.mu.Lock()
	for label := range run2.calls {
		// The wedged point was never checkpointed, so recomputing it is
		// correct; the three completed ones must not run again.
		if firstLabels[label] && run1.count(label) > 0 && run2.calls[label] > 0 && label != wedgedLabel(run1) {
			t.Fatalf("point %q recomputed after resume", label)
		}
	}
	run2.mu.Unlock()
	if final.Search == nil || !strings.Contains(final.Search.Terminated, "target 3 met") {
		t.Fatalf("search = %+v", final.Search)
	}
	if final.Search.Best == nil || final.Search.Best.Point != "meta_cache_kb=128,npu_aes_engines=8" {
		t.Fatalf("best = %+v", final.Search.Best)
	}
	// The full search needed restored + computed evaluations; the second
	// incarnation computed only what the first had not checkpointed.
	if run2.total() != final.Computed {
		t.Fatalf("second incarnation ran %d points, computed=%d", run2.total(), final.Computed)
	}
	if final.Search.Evaluated != final.Restored+final.Computed {
		t.Fatalf("evaluated=%d, want restored+computed=%d", final.Search.Evaluated, final.Restored+final.Computed)
	}
}

// wedgedLabel returns the label of the point the first incarnation was
// wedged on (the one whose call count exists but whose checkpoint never
// landed) — it legitimately runs again after resume.
func wedgedLabel(run *countingRun) string {
	run.mu.Lock()
	defer run.mu.Unlock()
	// The wedge fires on the (before+1)-th distinct call; with one worker
	// and single-point batches, it is the only label with a call that
	// produced no payload. countingRun does not track outcomes, so the
	// caller identifies it as the last label proposed — but since map
	// order is undefined, reconstruct it from the known deterministic
	// sequence instead.
	return "meta_cache_kb=128,npu_aes_engines=8"
}

func TestSearchCampaignCancelMidSearch(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	run := newCountingRun()
	release := make(chan struct{})
	reached := make(chan struct{})
	var once sync.Once
	run.behave = func(label string, attempt int) ([]byte, error) {
		if run.total() > 2 {
			once.Do(func() { close(reached) })
			<-release // block until cancelled, then finish normally
		}
		return synthBehave(monotoneObjective)(label, attempt)
	}
	m := NewManager(Config{Run: run.run, Measure: synthMeasure, Store: st, Workers: 1})
	defer m.Shutdown(context.Background())
	status, _, err := m.Start(cacheEngineSpec(&SearchSpec{Mode: "target", Target: 3}))
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	select {
	case <-reached:
	case <-time.After(10 * time.Second):
		t.Fatal("search never reached the block point")
	}
	if _, err := m.Cancel(status.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	close(release)
	final := waitTerminal(t, m, status.ID)
	if final.State != StateCancelled {
		t.Fatalf("final state = %s", final.State)
	}
	if final.Search == nil || final.Search.Terminated != "cancelled" {
		t.Fatalf("search = %+v", final.Search)
	}
	// Unproposed domain points are not "skipped" work on a search — the
	// search never owed them.
	if final.Skipped != 0 {
		t.Fatalf("skipped = %d, want 0", final.Skipped)
	}
}

func TestSearchRequiresMeasureHook(t *testing.T) {
	m := NewManager(Config{Run: newCountingRun().run})
	defer m.Shutdown(context.Background())
	_, _, err := m.Start(cacheEngineSpec(&SearchSpec{Mode: "target", Target: 2}))
	if err == nil {
		t.Fatal("manager without Measure accepted a search campaign")
	}
}
