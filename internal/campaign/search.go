package campaign

// Search mode. A campaign carrying a "search" block does not enumerate
// its cross product: a Searcher policy proposes points one batch at a
// time, observes each evaluated point's objective (speedup or step
// time) and area-proxy cost, and decides what to try next — coordinate
// descent with per-axis bisection for the cheapest config meeting a
// target, lattice expansion around the non-dominated set for a Pareto
// frontier, or a space-filling scan plus hill climb under a fixed
// evaluation budget.
//
// Every policy is written in replay style: Next() re-derives the whole
// proposal sequence from the observations recorded so far, so the
// sequence is a pure function of the (normalized) spec and the simulated
// objective. That is what makes search campaigns resume exactly like
// grid campaigns — after a crash, the replay proposes the same points in
// the same order, and each proposal whose checkpoint survives is fed
// back from disk instead of recomputed.

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Search modes for SearchSpec.Mode.
const (
	// SearchTarget finds the cheapest configuration meeting a target
	// objective by coordinate descent with per-axis bisection.
	SearchTarget = "target"
	// SearchPareto traces the non-dominated cost-vs-objective frontier by
	// evaluating the domain corners and refining around the frontier.
	SearchPareto = "pareto"
	// SearchBudget finds the best configuration inside a fixed number of
	// evaluations: a space-filling scan followed by a hill climb.
	SearchBudget = "budget"
)

// Objectives for SearchSpec.Objective.
const (
	// ObjectiveSpeedup maximizes the speedup of the last listed system
	// over the first (the scenario engine's avg_speedup scalar). Needs at
	// least two systems in the base spec.
	ObjectiveSpeedup = "speedup"
	// ObjectiveTotal minimizes the last listed system's training-step
	// time in seconds (the scenario engine's total_s scalar).
	ObjectiveTotal = "total"
)

// SearchSpec is the optional "search" block of a campaign Spec. When
// present, the campaign's axes become a search domain instead of a grid
// to enumerate: axis values are sorted ascending and deduplicated (the
// policies assume the objective improves and the cost grows with the
// value), and the selected policy decides which points actually run.
type SearchSpec struct {
	// Mode selects the policy: "target", "pareto" or "budget".
	Mode string `json:"mode"`
	// Objective is what the search optimizes: "speedup" (default;
	// maximize) or "total" (minimize). See the Objective* constants.
	Objective string `json:"objective,omitempty"`
	// Target is the objective threshold for target mode: the search finds
	// the cheapest configuration with speedup >= Target (or total <=
	// Target). Required in target mode, rejected elsewhere.
	Target float64 `json:"target,omitempty"`
	// Budget caps evaluated points. Required (positive) in budget mode;
	// optional in target mode (0 = until convergence, which is bounded by
	// 1 + sum of per-axis bisection depths anyway); defaulted to
	// min(total, 128) in pareto mode.
	Budget int `json:"budget,omitempty"`
	// Cost configures the area-proxy cost function; nil uses the built-in
	// per-axis weights (see DefaultCostWeight).
	Cost *CostSpec `json:"cost,omitempty"`
}

// CostSpec configures the area-proxy cost function. The cost of a point
// is the weighted sum of its axis values; weights for axes not listed
// here fall back to DefaultCostWeight.
type CostSpec struct {
	// Weights maps an axis name (one of the campaign's axes) to its cost
	// per unit of axis value.
	Weights map[string]float64 `json:"weights,omitempty"`
}

// defaultCostWeights is the built-in area proxy over the Table-1 knobs,
// in units of "KB of on-die SRAM equivalents" per axis unit: the
// metadata cache is literally SRAM (weight 1 per KB), an AES engine is
// a fixed pipeline (Section 3.3 sizes one at ~8 GB/s; 16 SRAM-KB
// equivalents), a DRAM channel is a PHY plus controller (64), and the
// bandwidth/granularity knobs get small nominal weights so that, absent
// explicit weights, cheaper always means "less hardware". Model axes
// (layers, hidden, ...) describe the workload, not the hardware, and
// default to zero cost.
var defaultCostWeights = map[string]float64{
	"meta_cache_kb":     1,
	"npu_aes_engines":   16,
	"dram_channels":     64,
	"npu_bandwidth_gbs": 0.5,
	"link_gbs":          0.5,
	"staging_gbs":       0.5,
	"mac_gran_bytes":    0.05,
	"region_mb":         0.01,
}

// DefaultCostWeight returns the built-in area-proxy weight for an axis
// (0 for model axes, which shape the workload rather than the hardware).
func DefaultCostWeight(axis string) float64 {
	return defaultCostWeights[axis]
}

// Measurement is what one evaluated point reports back to the search:
// the scenario engine's headline scalars, decoded from the point's
// checkpointed payload by the Config.Measure hook.
type Measurement struct {
	// Speedup is the last listed system's speedup over the first (the
	// avg_speedup scalar); 0 when the base spec has a single system.
	Speedup float64 `json:"speedup"`
	// TotalSeconds is the last listed system's training-step time (the
	// total_s scalar).
	TotalSeconds float64 `json:"total_s"`
}

// MeasureFunc decodes a checkpointed point payload into its Measurement.
// The campaign package stays decoupled from the result codec: the caller
// (tensorteed, tensorteesim) supplies the decoder.
type MeasureFunc func(payload []byte) (Measurement, error)

// Proposal is one step of a search: a batch of point indices to
// evaluate (independent, so they may run concurrently), or termination
// with a human-readable reason.
type Proposal struct {
	// Indices are the proposed cross-product point indices, deduplicated,
	// none previously observed.
	Indices []int
	// Done reports termination; Indices is empty when set.
	Done bool
	// Reason says why the search terminated (only when Done).
	Reason string
}

// Observation feeds one evaluated point back into a Searcher.
type Observation struct {
	// Index is the cross-product point index.
	Index int
	// Objective is the measured objective value (raw: speedup, or total
	// seconds). Only meaningful when OK.
	Objective float64
	// Cost is the point's area-proxy cost.
	Cost float64
	// OK reports whether the point produced a usable measurement; failed
	// points observe OK=false and are treated as infeasible.
	OK bool
}

// Searcher is the policy behind a search campaign: it proposes points
// instead of consuming a pre-enumerated grid. Implementations must be
// deterministic — the proposal sequence must be a pure function of the
// compiled spec and the observations fed back — because resume replays
// the sequence against checkpointed results. Searchers are not safe for
// concurrent use; the executor serializes Next/Observe.
type Searcher interface {
	// Next proposes the next batch of points, or terminates the search.
	// The executor observes every proposed point before calling Next
	// again.
	Next() Proposal
	// Observe records one evaluated point. Observing the same index twice
	// is a no-op.
	Observe(Observation)
	// Snapshot reports the search's current standing: evaluated count,
	// best point so far, and (for pareto) the frontier.
	Snapshot() SearchStatus
}

// SearchPoint is one evaluated point in a search report: its index and
// label plus the two coordinates the search optimizes over.
type SearchPoint struct {
	// Index is the cross-product point index.
	Index int `json:"index"`
	// Point is the human-readable axis label ("meta_cache_kb=64,...").
	Point string `json:"point"`
	// Cost is the area-proxy cost.
	Cost float64 `json:"cost"`
	// Objective is the measured objective value.
	Objective float64 `json:"objective"`
}

// SearchStatus reports a search campaign's standing; it rides inside
// Status and the final manifest.
type SearchStatus struct {
	// Mode is the policy ("target", "pareto" or "budget").
	Mode string `json:"mode"`
	// Objective is the optimized metric ("speedup" or "total").
	Objective string `json:"objective"`
	// Target is the target-mode threshold (0 elsewhere).
	Target float64 `json:"target,omitempty"`
	// Budget is the evaluation cap (0 = unbounded).
	Budget int `json:"budget,omitempty"`
	// Evaluated counts unique points observed so far (computed, restored
	// from checkpoints, and failed).
	Evaluated int `json:"evaluated"`
	// Best is the current winner: the cheapest feasible point (target
	// mode) or the best-objective point (pareto/budget). Nil until
	// something has been evaluated.
	Best *SearchPoint `json:"best,omitempty"`
	// Frontier is the non-dominated cost/objective set (pareto mode
	// only), sorted by ascending cost.
	Frontier []SearchPoint `json:"frontier,omitempty"`
	// Terminated says why the search stopped ("" while it is running;
	// "cancelled" when the campaign was cancelled mid-search).
	Terminated string `json:"terminated,omitempty"`
}

// normalizeSearch validates a search block against the campaign's axes
// and base spec, returning the normalized copy (defaults applied).
// total is the deduplicated cross-product size.
func normalizeSearch(s *SearchSpec, axes []Axis, baseSystems, total int) (*SearchSpec, error) {
	n := *s
	n.Mode = strings.ToLower(strings.TrimSpace(n.Mode))
	switch n.Mode {
	case SearchTarget, SearchPareto, SearchBudget:
	default:
		return nil, fmt.Errorf("%w: unknown search mode %q (want %s, %s or %s)",
			ErrInvalidSpec, s.Mode, SearchTarget, SearchPareto, SearchBudget)
	}
	n.Objective = strings.ToLower(strings.TrimSpace(n.Objective))
	switch n.Objective {
	case "":
		n.Objective = ObjectiveSpeedup
	case ObjectiveSpeedup, ObjectiveTotal:
	default:
		return nil, fmt.Errorf("%w: unknown search objective %q (want %s or %s)",
			ErrInvalidSpec, s.Objective, ObjectiveSpeedup, ObjectiveTotal)
	}
	if n.Objective == ObjectiveSpeedup && baseSystems < 2 {
		return nil, fmt.Errorf("%w: the %q objective needs at least two systems in the base spec (the first is the speedup baseline)",
			ErrInvalidSpec, ObjectiveSpeedup)
	}
	if n.Mode == SearchTarget {
		if n.Target <= 0 || math.IsNaN(n.Target) || math.IsInf(n.Target, 0) {
			return nil, fmt.Errorf("%w: target mode needs a positive finite target, got %v", ErrInvalidSpec, n.Target)
		}
	} else if n.Target != 0 {
		return nil, fmt.Errorf("%w: target %v is only meaningful in target mode", ErrInvalidSpec, n.Target)
	}
	if n.Budget < 0 || n.Budget > MaxPoints {
		return nil, fmt.Errorf("%w: budget %d outside [0, %d]", ErrInvalidSpec, n.Budget, MaxPoints)
	}
	if n.Mode == SearchBudget && n.Budget == 0 {
		return nil, fmt.Errorf("%w: budget mode needs a positive budget", ErrInvalidSpec)
	}
	if n.Mode == SearchPareto && n.Budget == 0 {
		n.Budget = min(total, 128)
	}
	if n.Budget > total {
		n.Budget = total
	}
	if n.Cost != nil {
		if len(n.Cost.Weights) == 0 {
			n.Cost = nil
		} else {
			known := make(map[string]bool, len(axes))
			for _, ax := range axes {
				known[ax.Axis] = true
			}
			weights := make(map[string]float64, len(n.Cost.Weights))
			for k, v := range n.Cost.Weights {
				name := strings.ToLower(strings.TrimSpace(k))
				if !known[name] {
					return nil, fmt.Errorf("%w: cost weight for %q, which is not a campaign axis", ErrInvalidSpec, k)
				}
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					return nil, fmt.Errorf("%w: cost weight for %q must be a non-negative finite number, got %v", ErrInvalidSpec, k, v)
				}
				weights[name] = v
			}
			n.Cost = &CostSpec{Weights: weights}
		}
	}
	return &n, nil
}

// NewSearcher builds the policy for a compiled search campaign. Plans
// without a search block are grid campaigns and have no searcher.
func NewSearcher(p *Plan) (Searcher, error) {
	s := p.Spec.Search
	if s == nil {
		return nil, fmt.Errorf("%w: plan has no search block", ErrInvalidSpec)
	}
	base := searchBase{p: p, obs: make(map[int]Observation)}
	switch s.Mode {
	case SearchTarget:
		return &targetSearcher{searchBase: base}, nil
	case SearchPareto:
		return &paretoSearcher{searchBase: base}, nil
	case SearchBudget:
		return &budgetSearcher{searchBase: base}, nil
	}
	return nil, fmt.Errorf("%w: unknown search mode %q", ErrInvalidSpec, s.Mode)
}

// objectiveValue picks the objective scalar out of a measurement.
func objectiveValue(objective string, m Measurement) float64 {
	if objective == ObjectiveTotal {
		return m.TotalSeconds
	}
	return m.Speedup
}

// searchBase is the bookkeeping shared by every policy: the observation
// memo keyed by point index, plus the observation order for
// deterministic tie-breaking and reporting.
type searchBase struct {
	p     *Plan
	obs   map[int]Observation
	order []int
}

// Observe records an observation; repeats of an already-observed index
// are ignored (the memo is the replay's ground truth).
func (b *searchBase) Observe(o Observation) {
	if _, ok := b.obs[o.Index]; ok {
		return
	}
	b.obs[o.Index] = o
	b.order = append(b.order, o.Index)
}

// maximize reports the objective sense: true for speedup, false for
// total seconds.
func (b *searchBase) maximize() bool {
	return b.p.Spec.Search.Objective != ObjectiveTotal
}

// betterObjective reports whether objective value a beats value v under
// the search's sense.
func (b *searchBase) betterObjective(a, v float64) bool {
	if b.maximize() {
		return a > v
	}
	return a < v
}

// meetsTarget reports whether an observation satisfies the target-mode
// threshold. Failed observations never do.
func (b *searchBase) meetsTarget(o Observation) bool {
	if !o.OK {
		return false
	}
	if b.maximize() {
		return o.Objective >= b.p.Spec.Search.Target
	}
	return o.Objective <= b.p.Spec.Search.Target
}

// searchPoint renders one observation as a report point.
func (b *searchBase) searchPoint(o Observation) *SearchPoint {
	return &SearchPoint{
		Index:     o.Index,
		Point:     b.p.PointLabel(o.Index),
		Cost:      o.Cost,
		Objective: o.Objective,
	}
}

// snapshotBase fills the policy-independent snapshot fields.
func (b *searchBase) snapshotBase() SearchStatus {
	s := b.p.Spec.Search
	return SearchStatus{
		Mode:      s.Mode,
		Objective: s.Objective,
		Target:    s.Target,
		Budget:    s.Budget,
		Evaluated: len(b.obs),
	}
}

// bestByObjective returns the successful observation with the best
// objective (sense-aware), breaking ties by lower cost and then by
// observation order. Nil when nothing has succeeded yet.
func (b *searchBase) bestByObjective() *Observation {
	var best *Observation
	for _, idx := range b.order {
		o := b.obs[idx]
		if !o.OK {
			continue
		}
		if best == nil || b.betterObjective(o.Objective, best.Objective) ||
			(o.Objective == best.Objective && o.Cost < best.Cost) {
			c := o
			best = &c
		}
	}
	return best
}

// filterUnobserved drops indices already in the memo, preserving order
// and deduplicating.
func (b *searchBase) filterUnobserved(indices []int) []int {
	seen := make(map[int]bool, len(indices))
	var out []int
	for _, idx := range indices {
		if seen[idx] {
			continue
		}
		seen[idx] = true
		if _, ok := b.obs[idx]; !ok {
			out = append(out, idx)
		}
	}
	return out
}

// capBatch truncates a batch to the remaining evaluation budget
// (budget 0 = unbounded).
func (b *searchBase) capBatch(indices []int) []int {
	budget := b.p.Spec.Search.Budget
	if budget <= 0 {
		return indices
	}
	remaining := budget - len(b.obs)
	if remaining < len(indices) {
		return indices[:remaining]
	}
	return indices
}

// budgetExhausted reports whether the evaluation cap is spent.
func (b *searchBase) budgetExhausted() bool {
	budget := b.p.Spec.Search.Budget
	return budget > 0 && len(b.obs) >= budget
}

func (b *searchBase) doneBudget() Proposal {
	return Proposal{Done: true, Reason: fmt.Sprintf("budget of %d evaluations exhausted", b.p.Spec.Search.Budget)}
}

// neighbors lists the lattice neighbors of a point: one step up or down
// along each single axis, in ascending index order.
func (b *searchBase) neighbors(idx int) []int {
	coords := b.p.coords(idx)
	var out []int
	for a := range coords {
		for _, d := range [2]int{-1, 1} {
			c := coords[a] + d
			if c < 0 || c >= len(b.p.Spec.Axes[a].Values) {
				continue
			}
			probe := append([]int(nil), coords...)
			probe[a] = c
			out = append(out, b.p.index(probe))
		}
	}
	sort.Ints(out)
	return out
}

// targetSearcher finds the cheapest configuration meeting the target:
// it probes the maximum corner (if even that misses the target, the
// search reports the target unreachable), then walks the axes in spec
// order, bisecting each one for the smallest value that still meets the
// target while the later axes stay at their current settings. Under the
// monotone assumption (a bigger knob never hurts the objective) this
// converges in 1 + sum(ceil(log2(len(axis)))) evaluations — versus the
// full cross product for the equivalent grid campaign.
type targetSearcher struct {
	searchBase
}

// Next replays coordinate descent over the observation memo and proposes
// the first evaluation the replay is missing.
func (t *targetSearcher) Next() Proposal {
	if t.budgetExhausted() {
		return t.doneBudget()
	}
	axes := t.p.Spec.Axes
	cur := make([]int, len(axes))
	for a := range axes {
		cur[a] = len(axes[a].Values) - 1
	}
	corner := t.p.index(cur)
	o, ok := t.obs[corner]
	if !ok {
		return Proposal{Indices: []int{corner}}
	}
	if !t.meetsTarget(o) {
		return Proposal{Done: true, Reason: fmt.Sprintf(
			"target %g unreachable: the maximum configuration measures %.4g", t.p.Spec.Search.Target, o.Objective)}
	}
	for a := range axes {
		lo, hi := 0, cur[a]
		for lo < hi {
			mid := (lo + hi) / 2
			probe := append([]int(nil), cur...)
			probe[a] = mid
			idx := t.p.index(probe)
			po, ok := t.obs[idx]
			if !ok {
				return Proposal{Indices: []int{idx}}
			}
			if t.meetsTarget(po) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		cur[a] = lo
	}
	return Proposal{Done: true, Reason: fmt.Sprintf(
		"target %g met: coordinate descent converged after %d evaluations", t.p.Spec.Search.Target, len(t.obs))}
}

// Snapshot reports the cheapest feasible point seen so far (falling
// back to the best objective while nothing is feasible yet).
func (t *targetSearcher) Snapshot() SearchStatus {
	st := t.snapshotBase()
	var best *Observation
	for _, idx := range t.order {
		o := t.obs[idx]
		if !t.meetsTarget(o) {
			continue
		}
		if best == nil || o.Cost < best.Cost ||
			(o.Cost == best.Cost && t.betterObjective(o.Objective, best.Objective)) {
			c := o
			best = &c
		}
	}
	if best == nil {
		best = t.bestByObjective()
	}
	if best != nil {
		st.Best = t.searchPoint(*best)
	}
	return st
}

// paretoSearcher traces the non-dominated frontier of cost vs objective:
// it seeds the search with the 2^k domain corners, then repeatedly
// proposes the unevaluated lattice neighbors of the current frontier —
// refinement happens exactly where the trade-off curve is, and the
// search closes when the frontier has no unevaluated neighbors (or the
// budget runs out).
type paretoSearcher struct {
	searchBase
}

// Next replays the corner wave and frontier expansion over the memo.
func (t *paretoSearcher) Next() Proposal {
	if t.budgetExhausted() {
		return t.doneBudget()
	}
	if missing := t.filterUnobserved(t.corners()); len(missing) > 0 {
		return Proposal{Indices: t.capBatch(missing)}
	}
	front := t.frontier()
	var cands []int
	for _, fp := range front {
		cands = append(cands, t.neighbors(fp.Index)...)
	}
	sort.Ints(cands)
	cands = t.filterUnobserved(cands)
	if len(cands) == 0 {
		return Proposal{Done: true, Reason: fmt.Sprintf(
			"frontier closed after %d evaluations: every neighbor of the frontier is evaluated", len(t.obs))}
	}
	return Proposal{Indices: t.capBatch(cands)}
}

// corners enumerates the 2^k extreme points of the axis lattice in
// ascending index order.
func (t *paretoSearcher) corners() []int {
	axes := t.p.Spec.Axes
	out := []int{0}
	for a := range axes {
		last := len(axes[a].Values) - 1
		if last == 0 {
			continue
		}
		grown := make([]int, 0, 2*len(out))
		for _, idx := range out {
			grown = append(grown, idx, idx+last*t.p.strides[a])
		}
		out = grown
	}
	sort.Ints(out)
	return out
}

// frontier computes the non-dominated set over all successful
// observations: sorted by ascending cost, keeping each point that
// strictly improves the objective over every cheaper point.
func (t *paretoSearcher) frontier() []SearchPoint {
	var pts []Observation
	for _, idx := range t.order {
		if o := t.obs[idx]; o.OK {
			pts = append(pts, o)
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Cost != pts[j].Cost {
			return pts[i].Cost < pts[j].Cost
		}
		if pts[i].Objective != pts[j].Objective {
			return t.betterObjective(pts[i].Objective, pts[j].Objective)
		}
		return pts[i].Index < pts[j].Index
	})
	var front []SearchPoint
	haveBest := false
	var best float64
	for _, o := range pts {
		if haveBest && !t.betterObjective(o.Objective, best) {
			continue
		}
		haveBest, best = true, o.Objective
		front = append(front, *t.searchPoint(o))
	}
	return front
}

// Snapshot reports the frontier plus the best-objective point on it.
func (t *paretoSearcher) Snapshot() SearchStatus {
	st := t.snapshotBase()
	st.Frontier = t.frontier()
	if best := t.bestByObjective(); best != nil {
		st.Best = t.searchPoint(*best)
	}
	return st
}

// budgetSearcher spends a fixed evaluation budget as well as it can:
// the first half scans the domain with a golden-ratio stride (a
// deterministic low-discrepancy sample of the whole lattice), the
// second half hill-climbs from the best point found, evaluating its
// unevaluated lattice neighbors and re-centering on improvement.
type budgetSearcher struct {
	searchBase
}

// Next replays the scan phase and then the hill climb over the memo.
func (t *budgetSearcher) Next() Proposal {
	if t.budgetExhausted() {
		return t.doneBudget()
	}
	total := t.p.Total
	scanN := max(1, t.p.Spec.Search.Budget/2)
	if scanN > total {
		scanN = total
	}
	stride := scanStride(total)
	scan := make([]int, 0, scanN)
	for j := 0; j < scanN; j++ {
		scan = append(scan, (j*stride)%total)
	}
	if missing := t.filterUnobserved(scan); len(missing) > 0 {
		return Proposal{Indices: t.capBatch(missing)}
	}
	best := t.bestByObjective()
	if best == nil {
		return Proposal{Done: true, Reason: fmt.Sprintf(
			"no successful evaluation in %d scanned points", len(t.obs))}
	}
	cands := t.filterUnobserved(t.neighbors(best.Index))
	if len(cands) == 0 {
		return Proposal{Done: true, Reason: fmt.Sprintf(
			"local optimum after %d evaluations: every neighbor of the best point is evaluated", len(t.obs))}
	}
	return Proposal{Indices: t.capBatch(cands)}
}

// Snapshot reports the best-objective point so far.
func (t *budgetSearcher) Snapshot() SearchStatus {
	st := t.snapshotBase()
	if best := t.bestByObjective(); best != nil {
		st.Best = t.searchPoint(*best)
	}
	return st
}

// scanStride picks the golden-ratio stride for the budget scan: the
// integer nearest total/φ that is coprime with total, so the scan visits
// distinct points spread across the whole lattice.
func scanStride(total int) int {
	if total <= 2 {
		return 1
	}
	s := int(math.Round(float64(total) * 0.6180339887498949))
	if s < 1 {
		s = 1
	}
	for gcd(s, total) != 1 {
		s++
	}
	return s
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
