package campaign

import (
	"errors"
	"strings"
	"testing"

	"tensortee/internal/scenario"
)

// tinyBase is a fast custom single-point scenario usable as a campaign
// base (non-secure avoids the heavier MEE calibration in unit tests).
func tinyBase() scenario.Spec {
	return scenario.Spec{
		Model:   scenario.ModelSpec{Layers: 2, Hidden: 256, Heads: 4, Vocab: 1000, SeqLen: 128},
		Systems: []scenario.SystemSpec{{Kind: "non-secure"}},
		Metrics: []string{"total"},
	}
}

func TestCompileCrossProduct(t *testing.T) {
	plan, err := Compile(Spec{
		Name: "  grid ",
		Base: tinyBase(),
		Axes: []Axis{
			{Axis: "Layers", Values: []float64{1, 2, 3}},
			{Axis: "seqlen", Values: []float64{128, 256}},
		},
	})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if plan.Spec.Name != "grid" {
		t.Fatalf("name = %q", plan.Spec.Name)
	}
	if plan.Total != 6 {
		t.Fatalf("total = %d, want 6", plan.Total)
	}
	if len(plan.ID) != 32 || strings.ToLower(plan.ID) != plan.ID {
		t.Fatalf("id = %q", plan.ID)
	}

	// Row-major: the last axis varies fastest.
	wantLabels := []string{
		"layers=1,seqlen=128", "layers=1,seqlen=256",
		"layers=2,seqlen=128", "layers=2,seqlen=256",
		"layers=3,seqlen=128", "layers=3,seqlen=256",
	}
	for i, want := range wantLabels {
		spec, label, err := plan.Point(i)
		if err != nil {
			t.Fatalf("Point(%d): %v", i, err)
		}
		if label != want {
			t.Fatalf("Point(%d) label = %q, want %q", i, label, want)
		}
		if spec.Model.Layers != i/2+1 {
			t.Fatalf("Point(%d) layers = %d", i, spec.Model.Layers)
		}
		if !strings.Contains(spec.Name, label) {
			t.Fatalf("Point(%d) spec name %q missing label", i, spec.Name)
		}
	}
	if _, _, err := plan.Point(6); err == nil {
		t.Fatal("Point(6) should be out of range")
	}

	// Identity is content-addressed: axis spelling and name whitespace
	// normalize away.
	again, err := Compile(Spec{
		Name: "grid",
		Base: tinyBase(),
		Axes: []Axis{
			{Axis: "layers", Values: []float64{1, 2, 3}},
			{Axis: " SEQLEN ", Values: []float64{128, 256}},
		},
	})
	if err != nil {
		t.Fatalf("Compile again: %v", err)
	}
	if again.ID != plan.ID {
		t.Fatalf("normalized specs hash differently: %q vs %q", again.ID, plan.ID)
	}
}

func TestCompileRejects(t *testing.T) {
	base := tinyBase()
	withSweep := base
	withSweep.Sweep = &scenario.Sweep{Axis: "layers", Values: []float64{1, 2}}
	cases := []struct {
		name string
		spec Spec
	}{
		{"no axes", Spec{Base: base}},
		{"base sweep", Spec{Base: withSweep, Axes: []Axis{{Axis: "layers", Values: []float64{1}}}}},
		{"unknown axis", Spec{Base: base, Axes: []Axis{{Axis: "nope", Values: []float64{1}}}}},
		{"duplicate axis", Spec{Base: base, Axes: []Axis{
			{Axis: "layers", Values: []float64{1}},
			{Axis: " Layers", Values: []float64{2}},
		}}},
		{"too many axes", Spec{Base: base, Axes: []Axis{
			{Axis: "layers", Values: []float64{1}},
			{Axis: "hidden", Values: []float64{256}},
			{Axis: "heads", Values: []float64{4}},
			{Axis: "seqlen", Values: []float64{128}},
			{Axis: "batch", Values: []float64{1}},
		}}},
		{"invalid base", Spec{Base: scenario.Spec{}, Axes: []Axis{{Axis: "layers", Values: []float64{1}}}}},
		// A value that compiles per-axis but produces an out-of-range
		// point must be rejected at submit time.
		{"point out of bounds", Spec{
			Base: scenario.Spec{
				Model:   tinyBase().Model,
				Systems: []scenario.SystemSpec{{Kind: "sgx-mgx"}},
				Metrics: []string{"total"},
			},
			Axes: []Axis{{Axis: "meta_cache_kb", Values: []float64{1 << 20}}},
		}},
	}
	for _, tc := range cases {
		if _, err := Compile(tc.spec); !errors.Is(err, ErrInvalidSpec) {
			t.Errorf("%s: error = %v, want ErrInvalidSpec", tc.name, err)
		}
	}
}

func TestCompilePointCap(t *testing.T) {
	vals := make([]float64, 64)
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	spec := Spec{
		Base: tinyBase(),
		Axes: []Axis{
			{Axis: "link_gbs", Values: vals},
			{Axis: "staging_gbs", Values: vals},
			{Axis: "npu_bandwidth_gbs", Values: vals}, // 64^3 = 262144 > cap
		},
	}
	if _, err := Compile(spec); !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("error = %v, want ErrInvalidSpec (point cap)", err)
	}
}
