// Package campaign is the asynchronous job tier above the scenario
// engine: a campaign is a cross product of sweep axes (model dims ×
// Table-1 override knobs) over a single-point base scenario, executed
// point by point on a bounded worker pool. Where a scenario runs
// synchronously under a small point cap, a campaign accepts thousands of
// points, returns a job id immediately, and is crash-safe: every
// completed point is checkpointed through the store's campaign/
// namespace (same checksummed envelope, atomic temp+rename), so a
// SIGKILL'd daemon resumes on restart computing only the remaining
// points. Faults are isolated per point — a panicking or persistently
// failing point fails that point, never the campaign.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"

	"tensortee/internal/scenario"
)

// Sentinel errors; API layers map these onto status codes.
var (
	// ErrInvalidSpec marks any submit-time validation failure.
	ErrInvalidSpec = errors.New("campaign: invalid spec")
	// ErrUnknown marks a campaign id the manager has no record of.
	ErrUnknown = errors.New("campaign: unknown campaign")
	// ErrBusy marks a manager at its concurrent-campaign capacity.
	ErrBusy = errors.New("campaign: too many active campaigns")
	// ErrClosed marks a manager that has been shut down.
	ErrClosed = errors.New("campaign: manager shut down")
)

// Resource caps. Validation is the DoS guard: campaigns are accepted
// from the network before any compute happens.
const (
	// maxAxes bounds the cross-product rank.
	maxAxes = 4
	// MaxPoints bounds the total cross-product size. Far above the
	// scenario engine's synchronous cap (campaigns are the tier built for
	// "thousands of points") but still finite: checkpoint keys, status
	// accounting and the dispatch queue are all O(points).
	MaxPoints = 16384
)

// Axis is one dimension of the cross product: a sweep axis name (model
// dim or override knob — the same vocabulary as scenario sweeps) and the
// values it takes.
type Axis struct {
	// Axis names the swept dimension (e.g. "layers", "meta_cache_kb").
	Axis string `json:"axis"`
	// Values are the settings the axis takes, in submitted order for grid
	// campaigns; search campaigns sort and deduplicate them at compile.
	Values []float64 `json:"values"`
}

// Spec is a campaign submission: a base single-point scenario plus the
// axes to cross. Each point of the campaign is the base spec with one
// value per axis applied (axis values override the base's own overrides,
// matching scenario sweep precedence).
type Spec struct {
	// Name is a human-readable label; it does not contribute to campaign
	// identity.
	Name string `json:"name,omitempty"`
	// Base is the single-point scenario every grid point starts from.
	Base scenario.Spec `json:"base"`
	// Axes are the dimensions to cross (at most maxAxes).
	Axes []Axis `json:"axes"`
	// Search, when present, turns the campaign from grid enumeration into
	// guided search: the axes become a domain and the selected policy
	// (target / pareto / budget) decides which points actually run.
	Search *SearchSpec `json:"search,omitempty"`
}

// Plan is a compiled campaign: the normalized spec, its identity, and
// the point decomposition. Points are materialized lazily — a plan for
// 16k points holds axes and strides, not 16k specs.
type Plan struct {
	// Spec is the normalized spec (trimmed name, canonical base via
	// scenario.Compile, canonical axis spellings and validated values).
	Spec Spec
	// ID is the campaign's content identity: a hex fingerprint of the
	// normalized spec. Identical submissions collapse onto one job.
	ID string
	// Total is the cross-product size.
	Total int

	// strides[a] is the index stride of axis a (row-major: the last axis
	// varies fastest).
	strides []int
}

// Compile validates and normalizes a campaign spec. Every error matches
// ErrInvalidSpec.
func Compile(s Spec) (*Plan, error) {
	norm := Spec{Name: strings.TrimSpace(s.Name)}
	if norm.Name == "" {
		norm.Name = "campaign"
	}
	if len(norm.Name) > 100 {
		return nil, fmt.Errorf("%w: name longer than 100 bytes", ErrInvalidSpec)
	}
	if s.Base.Sweep != nil {
		return nil, fmt.Errorf("%w: base spec carries its own sweep; express it as a campaign axis", ErrInvalidSpec)
	}
	basePlan, err := scenario.Compile(s.Base)
	if err != nil {
		return nil, fmt.Errorf("%w: base spec: %w", ErrInvalidSpec, err)
	}
	norm.Base = basePlan.Spec

	if len(s.Axes) == 0 {
		return nil, fmt.Errorf("%w: no axes (a campaign sweeps at least one)", ErrInvalidSpec)
	}
	if len(s.Axes) > maxAxes {
		return nil, fmt.Errorf("%w: %d axes exceeds the %d-axis cap", ErrInvalidSpec, len(s.Axes), maxAxes)
	}
	seen := make(map[string]bool, len(s.Axes))
	total := 1
	norm.Axes = make([]Axis, len(s.Axes))
	for i, ax := range s.Axes {
		name, vals, err := scenario.NormalizeAxis(ax.Axis, ax.Values)
		if err != nil {
			return nil, fmt.Errorf("%w: axis %d: %w", ErrInvalidSpec, i, err)
		}
		if seen[name] {
			return nil, fmt.Errorf("%w: duplicate axis %q", ErrInvalidSpec, name)
		}
		seen[name] = true
		if s.Search != nil {
			// Search policies assume ordered axes (bisection walks them, cost
			// grows along them): sort ascending and drop duplicates. Grid
			// campaigns keep the submitted order — it is part of the identity.
			vals = sortedUniqueValues(vals)
		}
		norm.Axes[i] = Axis{Axis: name, Values: vals}
		total *= len(vals)
		if total > MaxPoints {
			return nil, fmt.Errorf("%w: cross product exceeds the %d-point cap", ErrInvalidSpec, MaxPoints)
		}
	}

	if s.Search != nil {
		search, err := normalizeSearch(s.Search, norm.Axes, len(norm.Base.Systems), total)
		if err != nil {
			return nil, err
		}
		norm.Search = search
	}

	p := &Plan{Spec: norm, Total: total, strides: make([]int, len(norm.Axes))}
	stride := 1
	for a := len(norm.Axes) - 1; a >= 0; a-- {
		p.strides[a] = stride
		stride *= len(norm.Axes[a].Values)
	}
	p.ID = fingerprint(norm)

	// Every point must itself be a valid single-point scenario: an axis
	// value that pushes a knob out of bounds (or a model dim over the
	// resource caps) is rejected at submit time, not discovered as a
	// failed point hours into the job.
	for i := 0; i < total; i++ {
		spec, label, err := p.Point(i)
		if err != nil {
			return nil, err
		}
		if _, err := scenario.Compile(spec); err != nil {
			return nil, fmt.Errorf("%w: point %d (%s): %w", ErrInvalidSpec, i, label, err)
		}
	}
	return p, nil
}

// fingerprint derives the campaign id from the normalized spec's
// canonical JSON. 32 hex chars — collision-safe for any realistic
// campaign count, short enough for URLs and store keys.
func fingerprint(norm Spec) string {
	blob, err := json.Marshal(norm)
	if err != nil {
		// A Spec is plain data; Marshal cannot fail on one.
		panic(fmt.Sprintf("campaign: fingerprint marshal: %v", err))
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])[:32]
}

// Point materializes point i of the cross product: the base spec with
// each axis's value applied, plus a human-readable label like
// "layers=12,meta_cache_kb=64".
func (p *Plan) Point(i int) (scenario.Spec, string, error) {
	if i < 0 || i >= p.Total {
		return scenario.Spec{}, "", fmt.Errorf("campaign: point %d out of range [0,%d)", i, p.Total)
	}
	spec := p.Spec.Base
	parts := make([]string, len(p.Spec.Axes))
	for a, ax := range p.Spec.Axes {
		v := ax.Values[(i/p.strides[a])%len(ax.Values)]
		var err error
		spec, err = scenario.ApplyAxis(spec, ax.Axis, v)
		if err != nil {
			return scenario.Spec{}, "", fmt.Errorf("%w: axis %q: %w", ErrInvalidSpec, ax.Axis, err)
		}
		parts[a] = fmt.Sprintf("%s=%g", ax.Axis, v)
	}
	label := strings.Join(parts, ",")
	spec.Name = fmt.Sprintf("%s[%s]", p.Spec.Name, label)
	return spec, label, nil
}

// PointLabel renders point i's axis assignment ("layers=12,meta_cache_kb=64")
// without materializing the spec. Out-of-range indices render as "?".
func (p *Plan) PointLabel(i int) string {
	if i < 0 || i >= p.Total {
		return "?"
	}
	parts := make([]string, len(p.Spec.Axes))
	for a, ax := range p.Spec.Axes {
		parts[a] = fmt.Sprintf("%s=%g", ax.Axis, ax.Values[(i/p.strides[a])%len(ax.Values)])
	}
	return strings.Join(parts, ",")
}

// Cost is the area-proxy cost of point i: the weighted sum of its axis
// values, with weights from the search block's cost spec falling back to
// the built-in defaults (see DefaultCostWeight).
func (p *Plan) Cost(i int) float64 {
	var total float64
	for a, ax := range p.Spec.Axes {
		v := ax.Values[(i/p.strides[a])%len(ax.Values)]
		w, ok := 0.0, false
		if p.Spec.Search != nil && p.Spec.Search.Cost != nil {
			w, ok = p.Spec.Search.Cost.Weights[ax.Axis]
		}
		if !ok {
			w = DefaultCostWeight(ax.Axis)
		}
		total += w * v
	}
	return total
}

// coords decomposes a point index into per-axis value indices.
func (p *Plan) coords(i int) []int {
	c := make([]int, len(p.Spec.Axes))
	for a := range p.Spec.Axes {
		c[a] = (i / p.strides[a]) % len(p.Spec.Axes[a].Values)
	}
	return c
}

// index recomposes per-axis value indices into a point index.
func (p *Plan) index(coords []int) int {
	i := 0
	for a, c := range coords {
		i += c * p.strides[a]
	}
	return i
}

// sortedUniqueValues returns the values sorted ascending with exact
// duplicates removed.
func sortedUniqueValues(vals []float64) []float64 {
	out := append([]float64(nil), vals...)
	sort.Float64s(out)
	n := 0
	for _, v := range out {
		if n == 0 || out[n-1] != v {
			out[n] = v
			n++
		}
	}
	return out[:n]
}

// Store keys. A campaign owns a flat key family in the campaign/
// namespace: one manifest and one checkpoint per completed point.

// manifestKey is the durable record that a campaign exists (its
// normalized spec and lifecycle bits); its presence is what makes a
// half-finished campaign resumable after a crash.
func manifestKey(id string) string { return id + ".m" }

// pointKey addresses point i's checkpoint (the encoded scenario result).
func pointKey(id string, i int) string { return fmt.Sprintf("%s.p%05d", id, i) }

// manifest is the persisted campaign record. A manifest with neither
// Cancelled nor Final set is an unfinished campaign — the resumable
// case; Final records the settled status of a finished one so status
// queries survive restarts.
type manifest struct {
	Spec      Spec   `json:"spec"`
	Created   string `json:"created,omitempty"` // RFC3339; informational
	Cancelled bool   `json:"cancelled,omitempty"`
	// Durability mirrors Final.Durability at top level so operators (and
	// the chaos CI job) can read checkpoint health without digging into
	// the full final status.
	Durability string  `json:"durability,omitempty"`
	Final      *Status `json:"final,omitempty"`
}
