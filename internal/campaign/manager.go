package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"tensortee/internal/resilience"
	"tensortee/internal/scenario"
	"tensortee/internal/store"
)

// RunFunc computes one campaign point — a single-point scenario spec —
// and returns the payload to checkpoint (the stored encoding of the
// scenario result). The manager takes it as a closure rather than a
// Runner so the package depends only on the scenario/store layers.
type RunFunc func(ctx context.Context, spec scenario.Spec) ([]byte, error)

// Config configures a Manager.
type Config struct {
	// Run computes one point. Required.
	Run RunFunc
	// Measure decodes a point's checkpointed payload into the scalars a
	// search optimizes over. Required to accept search campaigns; a
	// manager without it rejects specs carrying a "search" block at
	// submit time.
	Measure MeasureFunc
	// Store checkpoints completed points and manifests. nil disables
	// persistence: campaigns still run, but do not survive a restart.
	Store *store.Store
	// Workers bounds concurrently running points across all campaigns
	// (default 2). Campaign work is background batch work; it must not
	// starve the serving path's own compute slots.
	Workers int
	// Retries is how many times a failed point is retried before it is
	// marked failed (default 1; attempts = Retries+1).
	Retries int
	// RetryDelay spaces retry attempts (default 50ms).
	RetryDelay time.Duration
	// Breaker, when set, observes every point attempt and pauses
	// dispatch while open — a sick backend stops the batch tier from
	// hammering it, the same degradation path the serving tier takes.
	Breaker *resilience.Breaker
	// BreakerPoll is how often a paused dispatcher re-checks an open
	// breaker (default 100ms).
	BreakerPoll time.Duration
	// OnEvent, when set, observes every published event synchronously
	// (metrics hook).
	OnEvent func(Event)
	// MaxJobs bounds tracked campaigns (default 64). At the cap, the
	// oldest terminal job is evicted to admit a new one; if every
	// tracked job is still running, submission fails with ErrBusy.
	MaxJobs int
}

// State is a campaign's lifecycle state.
type State string

const (
	// StateRunning means points are still being dispatched or computed.
	StateRunning State = "running"
	// StateDone means every point reached a terminal state (failures
	// included — they are isolated, not fatal).
	StateDone State = "done"
	// StateCancelled means the campaign was cancelled; in-flight points
	// drained and the rest were skipped.
	StateCancelled State = "cancelled"
)

// PointState is one point's lifecycle state.
type PointState string

const (
	// PointPending is the zero value: a freshly allocated point slice is
	// all-pending by construction.
	PointPending PointState = ""
	// PointRunning means the point is computing right now.
	PointRunning PointState = "running"
	// PointComputed means the point was simulated by this process.
	PointComputed PointState = "computed"
	// PointRestored means the point was satisfied from a checkpoint.
	PointRestored PointState = "restored"
	// PointFailed means the point exhausted its retries.
	PointFailed PointState = "failed"
	// PointSkipped means cancellation reached the point before a worker.
	PointSkipped PointState = "skipped"
)

// maxFailures bounds the per-campaign failure detail list (counts are
// always exact; detail is a sample).
const maxFailures = 32

// PointFailure records one failed point.
type PointFailure struct {
	// Index is the point's position in the row-major grid order.
	Index int `json:"index"`
	// Point is the human-readable "axis=value,..." label.
	Point string `json:"point"`
	// Error is the final attempt's error text.
	Error string `json:"error"`
}

// Status is a campaign status snapshot. Done counts terminal points
// (computed + restored + failed + skipped); a campaign reaches
// StateDone even with failed points — failures are isolated, reported,
// and never abort the rest of the grid.
type Status struct {
	// ID is the campaign's content-addressed identity (the plan
	// fingerprint): identical specs share one ID.
	ID string `json:"id"`
	// Name echoes the spec's human-readable label.
	Name string `json:"name"`
	// State is the campaign's lifecycle state.
	State State `json:"state"`
	// Total is the domain size (every grid point, whether or not a
	// search ever proposes it).
	Total int `json:"total"`
	// Done counts terminal points: Computed + Restored + Failed + Skipped.
	Done int `json:"done"`
	// Computed counts points simulated by this process.
	Computed int `json:"computed"`
	// Restored counts points satisfied from checkpoints.
	Restored int `json:"restored"`
	// Failed counts points that exhausted their retries.
	Failed int `json:"failed"`
	// Skipped counts points cancellation reached before a worker did.
	Skipped int `json:"skipped"`
	// Running counts points computing right now.
	Running int `json:"running"`
	// Created is the submission time (informational; not identity).
	Created time.Time `json:"created"`
	// Failures samples per-point failure detail (at most maxFailures
	// entries; the Failed count is always exact).
	Failures []PointFailure `json:"failures,omitempty"`
	// Durability reports checkpoint health: "none" (no store configured),
	// "full" (every computed point checkpointed), or "degraded" (one or
	// more checkpoints failed to persist after retries — the campaign
	// still completed with exact counts, but a crash would recompute the
	// unpersisted points).
	Durability string `json:"durability,omitempty"`
	// CheckpointsLost counts computed points whose checkpoint never
	// landed (only non-zero when Durability is "degraded").
	CheckpointsLost int `json:"checkpoints_lost,omitempty"`
	// Search reports a search campaign's standing (nil for grid
	// campaigns): evaluated count, best point so far, frontier, and the
	// termination reason once the search stops.
	Search *SearchStatus `json:"search,omitempty"`
}

// Durability values for Status.Durability.
const (
	DurabilityNone     = "none"
	DurabilityFull     = "full"
	DurabilityDegraded = "degraded"
)

// EventType classifies stream events.
type EventType string

const (
	// EventStarted opens a campaign's stream (Restored already counted).
	EventStarted EventType = "started"
	// EventPoint reports one point reaching a terminal state.
	EventPoint EventType = "point"
	// EventDone and EventCancelled terminate the stream.
	EventDone EventType = "done"
	// EventCancelled is EventDone's cancelled twin.
	EventCancelled EventType = "cancelled"
	// EventStatus is a synthetic snapshot line (stream open / close);
	// the manager never publishes it itself.
	EventStatus EventType = "status"
)

// Event is one line of a campaign's NDJSON progress stream.
type Event struct {
	// Seq orders events within one campaign (gaps mean dropped lines).
	Seq int64 `json:"seq"`
	// Time is the publication time.
	Time time.Time `json:"time"`
	// Type classifies the line; see the EventType constants.
	Type EventType `json:"type"`
	// Campaign is the campaign ID the event belongs to.
	Campaign string `json:"campaign"`
	// Point is the "axis=value,..." label on point events.
	Point string `json:"point,omitempty"`
	// Index is the point's grid index on point events.
	Index int `json:"index"`
	// State is the point's terminal state ("done"/"failed"/"skipped") on
	// point events, or the campaign state on status snapshots.
	State string `json:"state,omitempty"`
	// Error carries the failure text on failed point events.
	Error string `json:"error,omitempty"`
	// Done through Total repeat the full running counts on every line,
	// so a client can join late or drop lines without losing totals.
	Done     int `json:"done"`
	Computed int `json:"computed"`
	Restored int `json:"restored"`
	Failed   int `json:"failed"`
	Skipped  int `json:"skipped"`
	Total    int `json:"total"`
	// BestSoFar snapshots the search's current winner on every point
	// event of a search campaign (absent for grid campaigns).
	BestSoFar *SearchPoint `json:"best_so_far,omitempty"`
	// Frontier snapshots the non-dominated set on pareto-mode point
	// events, capped at searchEventFrontierCap entries per line (the
	// status endpoint always carries the full frontier).
	Frontier []SearchPoint `json:"frontier,omitempty"`
}

// job is one tracked campaign.
type job struct {
	plan     *Plan
	created  time.Time
	hasStore bool

	cancelOnce sync.Once
	cancelCh   chan struct{}
	done       chan struct{} // closed at finalize

	mu              sync.Mutex
	state           State
	cancelled       bool // cancel requested
	points          []PointState
	computed        int
	restored        int
	failed          int
	skipped         int
	running         int
	checkpointsLost int
	failures        []PointFailure
	seq             int64
	subs            map[int]chan Event
	nextSub         int
	subsClosed      bool
	search          *SearchStatus // latest search snapshot; nil for grid campaigns
}

func newJob(plan *Plan, now time.Time) *job {
	return &job{
		plan:     plan,
		created:  now,
		cancelCh: make(chan struct{}),
		done:     make(chan struct{}),
		state:    StateRunning,
		points:   make([]PointState, plan.Total),
		subs:     make(map[int]chan Event),
	}
}

func (j *job) statusLocked() Status {
	st := Status{
		ID:       j.plan.ID,
		Name:     j.plan.Spec.Name,
		State:    j.state,
		Total:    j.plan.Total,
		Computed: j.computed,
		Restored: j.restored,
		Failed:   j.failed,
		Skipped:  j.skipped,
		Running:  j.running,
		Created:  j.created,
		Failures: append([]PointFailure(nil), j.failures...),
	}
	st.Done = st.Computed + st.Restored + st.Failed + st.Skipped
	switch {
	case !j.hasStore:
		st.Durability = DurabilityNone
	case j.checkpointsLost > 0:
		st.Durability = DurabilityDegraded
		st.CheckpointsLost = j.checkpointsLost
	default:
		st.Durability = DurabilityFull
	}
	if j.search != nil {
		sc := *j.search
		if sc.Best != nil {
			b := *sc.Best
			sc.Best = &b
		}
		sc.Frontier = append([]SearchPoint(nil), sc.Frontier...)
		st.Search = &sc
	}
	return st
}

func (j *job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

// Manager runs campaigns: a bounded worker pool over all campaigns'
// points, per-point checkpointing, cancellation and resume. All methods
// are safe for concurrent use.
type Manager struct {
	cfg         Config
	workers     int
	retries     int
	retryDelay  time.Duration
	breakerPoll time.Duration
	sem         chan struct{}

	baseCtx    context.Context
	baseCancel context.CancelFunc
	stopOnce   sync.Once
	stopCh     chan struct{}
	wg         sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // insertion order, for List and cap eviction
	closed bool
}

// NewManager builds a Manager. cfg.Run is required.
func NewManager(cfg Config) *Manager {
	if cfg.Run == nil {
		panic("campaign: Config.Run is required")
	}
	m := &Manager{
		cfg:         cfg,
		workers:     cfg.Workers,
		retries:     cfg.Retries,
		retryDelay:  cfg.RetryDelay,
		breakerPoll: cfg.BreakerPoll,
		stopCh:      make(chan struct{}),
		jobs:        make(map[string]*job),
	}
	if m.workers <= 0 {
		m.workers = 2
	}
	if m.retries < 0 {
		m.retries = 0
	}
	if m.retryDelay <= 0 {
		m.retryDelay = 50 * time.Millisecond
	}
	if m.breakerPoll <= 0 {
		m.breakerPoll = 100 * time.Millisecond
	}
	if m.cfg.MaxJobs <= 0 {
		m.cfg.MaxJobs = 64
	}
	m.sem = make(chan struct{}, m.workers)
	m.baseCtx, m.baseCancel = context.WithCancel(context.Background())
	return m
}

// Start validates, fingerprints and launches a campaign. Submissions
// are idempotent by content: an identical spec returns the existing
// campaign's status (created=false) and computes nothing.
func (m *Manager) Start(spec Spec) (Status, bool, error) {
	plan, err := Compile(spec)
	if err != nil {
		return Status{}, false, err
	}
	return m.start(plan)
}

func (m *Manager) start(plan *Plan) (Status, bool, error) {
	if plan.Spec.Search != nil && m.cfg.Measure == nil {
		return Status{}, false, fmt.Errorf("%w: search campaigns are not enabled (no measurement hook configured)", ErrInvalidSpec)
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Status{}, false, ErrClosed
	}
	if j, ok := m.jobs[plan.ID]; ok {
		m.mu.Unlock()
		return j.status(), false, nil
	}
	if err := m.evictForAdmitLocked(); err != nil {
		m.mu.Unlock()
		return Status{}, false, err
	}
	j := newJob(plan, time.Now())
	j.hasStore = m.cfg.Store != nil
	m.jobs[plan.ID] = j
	m.order = append(m.order, plan.ID)
	m.wg.Add(1)
	m.mu.Unlock()
	go m.execute(j)
	return j.status(), true, nil
}

// evictForAdmitLocked makes room for one more job, preferring to drop
// the oldest terminal record. Requires m.mu.
func (m *Manager) evictForAdmitLocked() error {
	if len(m.jobs) < m.cfg.MaxJobs {
		return nil
	}
	for i, id := range m.order {
		j := m.jobs[id]
		j.mu.Lock()
		terminal := j.state != StateRunning
		j.mu.Unlock()
		if terminal {
			delete(m.jobs, id)
			m.order = append(m.order[:i], m.order[i+1:]...)
			return nil
		}
	}
	return ErrBusy
}

// Status returns a campaign's status snapshot.
func (m *Manager) Status(id string) (Status, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Status{}, false
	}
	return j.status(), true
}

// List snapshots all tracked campaigns in submission order.
func (m *Manager) List() []Status {
	m.mu.Lock()
	jobs := make([]*job, 0, len(m.order))
	for _, id := range m.order {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	return out
}

// Active counts campaigns still running (metrics gauge).
func (m *Manager) Active() int {
	n := 0
	for _, st := range m.List() {
		if st.State == StateRunning {
			n++
		}
	}
	return n
}

// Cancel requests cancellation: dispatch stops, in-flight points drain
// to completion (their checkpoints land), and the campaign finalizes as
// cancelled. The cancellation is durable immediately — a crash between
// Cancel and the drain finishing does not resurrect the job on restart.
// Idempotent; cancelling a terminal campaign returns its status as-is.
func (m *Manager) Cancel(id string) (Status, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Status{}, ErrUnknown
	}
	j.mu.Lock()
	if j.state != StateRunning {
		defer j.mu.Unlock()
		return j.statusLocked(), nil
	}
	j.cancelled = true
	j.mu.Unlock()
	j.cancelOnce.Do(func() { close(j.cancelCh) })
	m.persistManifest(j, manifest{
		Spec:      j.plan.Spec,
		Created:   j.created.UTC().Format(time.RFC3339),
		Cancelled: true,
	})
	return j.status(), nil
}

// Subscribe attaches a progress-event subscriber to a campaign. The
// channel closes when the campaign reaches a terminal state (or already
// has). Slow subscribers lose events rather than blocking the workers;
// every event carries full running counts, so a dropped event never
// leaves a reader with wrong totals. The returned func detaches.
func (m *Manager) Subscribe(id string) (<-chan Event, func(), error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, nil, ErrUnknown
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.subsClosed {
		ch := make(chan Event)
		close(ch)
		return ch, func() {}, nil
	}
	sid := j.nextSub
	j.nextSub++
	ch := make(chan Event, 256)
	j.subs[sid] = ch
	detach := func() {
		j.mu.Lock()
		delete(j.subs, sid)
		j.mu.Unlock()
	}
	return ch, detach, nil
}

// Wait blocks until the campaign reaches a terminal state (or ctx ends).
func (m *Manager) Wait(ctx context.Context, id string) (Status, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Status{}, ErrUnknown
	}
	select {
	case <-j.done:
		return j.status(), nil
	case <-ctx.Done():
		return j.status(), ctx.Err()
	}
}

// publish stamps and fans an event out to subscribers. Sends happen
// under j.mu (non-blocking, so no lock-holding stall) — this is what
// makes the sends race-free against closeSubs closing the channels.
func (m *Manager) publish(j *job, ev Event) {
	j.mu.Lock()
	j.seq++
	ev.Seq = j.seq
	ev.Time = time.Now()
	ev.Campaign = j.plan.ID
	ev.Total = j.plan.Total
	ev.Computed = j.computed
	ev.Restored = j.restored
	ev.Failed = j.failed
	ev.Skipped = j.skipped
	ev.Done = j.computed + j.restored + j.failed + j.skipped
	if !j.subsClosed {
		for _, ch := range j.subs {
			select {
			case ch <- ev:
			default:
			}
		}
	}
	j.mu.Unlock()
	if m.cfg.OnEvent != nil {
		m.cfg.OnEvent(ev)
	}
}

// execute is a campaign's dispatcher goroutine: persist the manifest,
// restore checkpoints, dispatch remaining points onto the shared worker
// pool, finalize.
func (m *Manager) execute(j *job) {
	defer m.wg.Done()
	id := j.plan.ID

	if st := m.cfg.Store; st != nil {
		// Pin before writing: the manifest and every checkpoint this
		// campaign will produce are protected from LRU eviction for the
		// campaign's whole run.
		st.Pin(store.Campaigns, manifestKey(id))
		for i := 0; i < j.plan.Total; i++ {
			st.Pin(store.Campaigns, pointKey(id, i))
		}
		// Persist the manifest first: from this instant a crash leaves a
		// resumable record on disk.
		m.persistManifest(j, manifest{Spec: j.plan.Spec, Created: j.created.UTC().Format(time.RFC3339)})
		// Restore scan: any point already checkpointed (by a previous
		// incarnation of this daemon, same build) is terminal before the
		// first worker starts. The checkpoint payload is not re-decoded
		// here — the envelope's checksum and build tag already vouch
		// for it.
		for i := 0; i < j.plan.Total; i++ {
			if _, ok := st.Get(store.Campaigns, pointKey(id, i)); ok {
				j.mu.Lock()
				j.points[i] = PointRestored
				j.restored++
				j.mu.Unlock()
			}
		}
	}
	m.publish(j, Event{Type: EventStarted})

	if j.plan.Spec.Search != nil {
		m.executeSearch(j)
		return
	}

	var jwg sync.WaitGroup
dispatch:
	for i := 0; i < j.plan.Total; i++ {
		j.mu.Lock()
		pending := j.points[i] == PointPending
		j.mu.Unlock()
		if !pending {
			continue
		}
		// An open breaker pauses dispatch (in-flight points drain): when
		// the backend is sick, the batch tier stops feeding it.
		for br := m.cfg.Breaker; br != nil && br.Open(); {
			select {
			case <-m.stopCh:
				break dispatch
			case <-j.cancelCh:
				break dispatch
			case <-time.After(m.breakerPoll):
			}
		}
		select {
		case <-m.stopCh:
			break dispatch
		case <-j.cancelCh:
			break dispatch
		case m.sem <- struct{}{}:
		}
		j.mu.Lock()
		j.points[i] = PointRunning
		j.running++
		j.mu.Unlock()
		jwg.Add(1)
		go m.runPoint(j, i, &jwg)
	}
	jwg.Wait()
	m.finalize(j)
}

// runPoint executes one grid point: bounded retries, panic recovery,
// breaker observation, checkpoint on success.
func (m *Manager) runPoint(j *job, idx int, jwg *sync.WaitGroup) {
	defer jwg.Done()
	defer func() { <-m.sem }()
	payload, label, err := m.attemptPoint(j, idx)
	if err == nil {
		m.persistCheckpoint(j, idx, payload)
		m.publish(j, m.settlePoint(j, idx, PointComputed, label, nil))
		return
	}
	m.publish(j, m.settlePoint(j, idx, PointFailed, label, err))
}

// attemptPoint is one point's retry loop — materialize the spec, run it
// with panic recovery and breaker observation, retry failures with
// jittered backoff. It does not touch job state; grid and search
// dispatchers share it and settle the outcome themselves.
func (m *Manager) attemptPoint(j *job, idx int) (payload []byte, label string, err error) {
	spec, label, err := j.plan.Point(idx)
	if err != nil { // unreachable: every point validated at Compile
		return nil, label, err
	}
	var lastErr error
	for attempt := 0; attempt <= m.retries; attempt++ {
		if attempt > 0 {
			// Jittered exponential spacing: a transiently failing point is
			// not hammered at a fixed cadence, and retries across points
			// do not synchronize.
			select {
			case <-m.baseCtx.Done():
			case <-time.After(retryBackoff(m.retryDelay, attempt)):
			}
		}
		begin := time.Now()
		payload, runErr := m.safeRun(spec)
		if br := m.cfg.Breaker; br != nil {
			br.Observe(runErr, time.Since(begin), 0)
		}
		if runErr == nil {
			return payload, label, nil
		}
		lastErr = runErr
		if m.baseCtx.Err() != nil {
			break // forced shutdown, not a point defect: stop retrying
		}
	}
	return nil, label, lastErr
}

// searchEventFrontierCap bounds the frontier snapshot embedded in each
// NDJSON event line; the status endpoint and final manifest always carry
// the full frontier.
const searchEventFrontierCap = 32

// searchOutcome is one proposed point's evaluation inside a batch.
type searchOutcome struct {
	idx      int
	label    string
	payload  []byte
	err      error
	restored bool // satisfied from a checkpoint, not recomputed
}

// executeSearch is the dispatcher for search campaigns: instead of
// walking the grid it asks the policy for point batches, evaluates each
// batch through the same machinery as grid points (worker pool, retries,
// panic isolation, breaker pause, per-point checkpoints), feeds the
// measurements back, and publishes point events enriched with the
// best-so-far point and frontier. A proposed point whose checkpoint
// survived a previous incarnation is fed back from disk — no recompute,
// no worker slot — which is exactly how resume skips already-evaluated
// points while replaying the same deterministic proposal sequence.
func (m *Manager) executeSearch(j *job) {
	sr, err := NewSearcher(j.plan)
	if err != nil { // unreachable: Compile validated the search block
		j.mu.Lock()
		j.cancelled = true
		j.mu.Unlock()
		m.finalize(j)
		return
	}
	st := m.cfg.Store
	id := j.plan.ID
	terminated := ""
	aborted := false // manager shutdown or cancel interrupted the search

search:
	for {
		select {
		case <-m.stopCh:
			aborted = true
			break search
		case <-j.cancelCh:
			aborted, terminated = true, "cancelled"
			break search
		default:
		}
		prop := sr.Next()
		if prop.Done {
			terminated = prop.Reason
			break
		}

		// Evaluate the batch: restored points come off disk immediately,
		// pending ones go through the worker pool concurrently.
		outcomes := make([]*searchOutcome, len(prop.Indices))
		var jwg sync.WaitGroup
		for bi, idx := range prop.Indices {
			j.mu.Lock()
			state := j.points[idx]
			j.mu.Unlock()
			if state == PointRestored {
				var payload []byte
				if st != nil {
					payload, _ = st.Get(store.Campaigns, pointKey(id, idx))
				}
				outcomes[bi] = &searchOutcome{idx: idx, label: j.plan.PointLabel(idx), payload: payload, restored: true}
				continue
			}
			// An open breaker pauses dispatch, exactly as in grid mode.
			for br := m.cfg.Breaker; br != nil && br.Open() && !aborted; {
				select {
				case <-m.stopCh:
					aborted = true
				case <-j.cancelCh:
					aborted, terminated = true, "cancelled"
				case <-time.After(m.breakerPoll):
				}
			}
			if !aborted {
				select {
				case <-m.stopCh:
					aborted = true
				case <-j.cancelCh:
					aborted, terminated = true, "cancelled"
				case m.sem <- struct{}{}:
				}
			}
			if aborted {
				break // drain what is in flight; do not dispatch the rest
			}
			j.mu.Lock()
			j.points[idx] = PointRunning
			j.running++
			j.mu.Unlock()
			out := &searchOutcome{idx: idx}
			outcomes[bi] = out
			jwg.Add(1)
			go func() {
				defer jwg.Done()
				defer func() { <-m.sem }()
				out.payload, out.label, out.err = m.attemptPoint(j, out.idx)
				if out.err == nil {
					m.persistCheckpoint(j, out.idx, out.payload)
				}
			}()
		}
		jwg.Wait()

		// Feed observations back in batch (proposal) order — goroutine
		// completion order must not leak into the policy's replay state —
		// then settle counters and publish the enriched point events.
		var events []Event
		for _, out := range outcomes {
			if out == nil {
				continue // abort hit before this batch member dispatched
			}
			obs := Observation{Index: out.idx, Cost: j.plan.Cost(out.idx)}
			if out.err == nil && out.payload != nil {
				if meas, merr := m.cfg.Measure(out.payload); merr == nil {
					obs.OK = true
					obs.Objective = objectiveValue(j.plan.Spec.Search.Objective, meas)
				}
			}
			sr.Observe(obs)
			if out.restored {
				continue // already counted by the restore scan; no event
			}
			if out.err == nil {
				events = append(events, m.settlePoint(j, out.idx, PointComputed, out.label, nil))
			} else {
				events = append(events, m.settlePoint(j, out.idx, PointFailed, out.label, out.err))
			}
		}
		snap := sr.Snapshot()
		j.mu.Lock()
		j.search = &snap
		j.mu.Unlock()
		for i := range events {
			events[i].BestSoFar = snap.Best
			if len(snap.Frontier) > searchEventFrontierCap {
				events[i].Frontier = snap.Frontier[:searchEventFrontierCap]
			} else {
				events[i].Frontier = snap.Frontier
			}
			m.publish(j, events[i])
		}
		if aborted {
			break
		}
	}

	snap := sr.Snapshot()
	snap.Terminated = terminated
	j.mu.Lock()
	j.search = &snap
	j.mu.Unlock()
	m.finalize(j)
}

// Checkpoint-write retry tuning: a handful of quick, jittered attempts
// rides out transient I/O errors without stalling the worker for long.
const (
	checkpointAttempts  = 3
	checkpointBaseDelay = 25 * time.Millisecond
)

// persistCheckpoint lands one computed point's checkpoint, retrying
// transient failures with jittered backoff. Persistence stays
// best-effort — the point's result is already in hand — but a
// checkpoint that never lands is not silent anymore: it degrades the
// campaign's durability, which the status and final manifest report.
func (m *Manager) persistCheckpoint(j *job, idx int, payload []byte) {
	st := m.cfg.Store
	if st == nil {
		return
	}
	key := pointKey(j.plan.ID, idx)
	var err error
	for attempt := 0; attempt < checkpointAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-m.baseCtx.Done():
			case <-time.After(retryBackoff(checkpointBaseDelay, attempt)):
			}
		}
		if err = st.Put(store.Campaigns, key, payload); err == nil {
			return
		}
		if errors.Is(err, store.ErrDegraded) {
			// The store is known read-only and heals on its own probe
			// clock, which runs far slower than these retries — stop.
			break
		}
	}
	j.mu.Lock()
	j.checkpointsLost++
	j.mu.Unlock()
}

// retryBackoff spaces retry attempt n (1-based): the base delay doubles
// per attempt (capped) with uniform jitter in [d/2, d].
func retryBackoff(base time.Duration, attempt int) time.Duration {
	d := base
	for i := 1; i < attempt && d < time.Second; i++ {
		d *= 2
	}
	if d <= 0 {
		return 0
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1)) //nolint:gosec // jitter, not crypto
}

// safeRun is the per-point fault boundary: a panicking point becomes a
// failed point, never a dead worker or a crashed daemon.
func (m *Manager) safeRun(spec scenario.Spec) (payload []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("campaign: point panicked: %v", r)
		}
	}()
	return m.cfg.Run(m.baseCtx, spec)
}

// settlePoint moves one dispatched point to a terminal state and returns
// the point event describing it — unpublished, so the search dispatcher
// can enrich it with best-so-far/frontier snapshots before it goes out.
func (m *Manager) settlePoint(j *job, idx int, st PointState, label string, err error) Event {
	ev := Event{Type: EventPoint, Index: idx, Point: label, State: string(st)}
	j.mu.Lock()
	j.points[idx] = st
	j.running--
	switch st {
	case PointComputed:
		j.computed++
	case PointFailed:
		j.failed++
		if err != nil {
			ev.Error = err.Error()
			if len(j.failures) < maxFailures {
				j.failures = append(j.failures, PointFailure{Index: idx, Point: label, Error: err.Error()})
			}
		}
	}
	j.mu.Unlock()
	return ev
}

// finalize settles a campaign after its dispatcher stops. Three exits:
// done (all points terminal), cancelled (remaining points skipped), or
// manager shutdown with work left — in which case the job stays
// StateRunning and nothing final is persisted, so the next process
// resumes it from the manifest.
func (m *Manager) finalize(j *job) {
	id := j.plan.ID
	j.mu.Lock()
	pending := 0
	for _, ps := range j.points {
		if ps == PointPending {
			pending++
		}
	}
	cancelled := j.cancelled
	var stopped bool
	if j.plan.Spec.Search != nil {
		// A finished search leaves most of its domain unproposed on
		// purpose — those points are not "skipped" work, they are the
		// evaluations the search avoided; leave them pending. The campaign
		// is only resumable when the manager stopped before the policy
		// terminated.
		stopped = j.search != nil && j.search.Terminated == "" && !cancelled && m.isStopped()
	} else {
		stopped = pending > 0 && !cancelled && m.isStopped()
	}
	if !stopped {
		if pending > 0 && j.plan.Spec.Search == nil {
			for i, ps := range j.points {
				if ps == PointPending {
					j.points[i] = PointSkipped
				}
			}
			j.skipped += pending
		}
		if cancelled {
			j.state = StateCancelled
		} else {
			j.state = StateDone
		}
	}
	j.mu.Unlock()
	if stopped {
		// Process is exiting mid-campaign: close streams, leave the
		// durable state exactly as it is (manifest says running; the
		// checkpoints name what is already done).
		j.closeSubs()
		return
	}
	typ := EventDone
	if cancelled {
		typ = EventCancelled
	}
	m.publish(j, Event{Type: typ})
	j.closeSubs()
	// Settle durable state before closing done: a waiter waking on a
	// finished campaign must see the final manifest and released pins.
	if st := m.cfg.Store; st != nil {
		final := j.status()
		m.persistManifest(j, manifest{
			Spec:       j.plan.Spec,
			Created:    j.created.UTC().Format(time.RFC3339),
			Cancelled:  cancelled,
			Durability: final.Durability,
			Final:      &final,
		})
		st.Unpin(store.Campaigns, manifestKey(id))
		for i := 0; i < j.plan.Total; i++ {
			st.Unpin(store.Campaigns, pointKey(id, i))
		}
	}
	close(j.done)
}

func (j *job) closeSubs() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.subsClosed {
		return
	}
	j.subsClosed = true
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
}

func (m *Manager) isStopped() bool {
	select {
	case <-m.stopCh:
		return true
	default:
		return false
	}
}

func (m *Manager) persistManifest(j *job, man manifest) {
	st := m.cfg.Store
	if st == nil {
		return
	}
	blob, err := json.Marshal(man)
	if err != nil {
		return
	}
	_ = st.Put(store.Campaigns, manifestKey(j.plan.ID), blob)
}

// ResumeStored scans the store's campaign namespace and re-registers
// every campaign it finds: unfinished ones start running again
// (computing only uncheckpointed points — the restore scan picks up
// the checkpoints), finished or cancelled ones come back as terminal
// records so their status survives a restart. Manifests that fail to
// decode, fail validation under this build, or whose spec no longer
// hashes to their key are skipped, never fatal. Returns how many
// campaigns went back into execution.
func (m *Manager) ResumeStored() (int, error) {
	st := m.cfg.Store
	if st == nil {
		return 0, nil
	}
	resumed := 0
	for _, key := range st.Keys(store.Campaigns) {
		if !strings.HasSuffix(key, ".m") {
			continue
		}
		id := strings.TrimSuffix(key, ".m")
		raw, ok := st.Get(store.Campaigns, key)
		if !ok {
			continue
		}
		var man manifest
		if err := json.Unmarshal(raw, &man); err != nil {
			continue
		}
		plan, err := Compile(man.Spec)
		if err != nil || plan.ID != id {
			continue
		}
		if man.Cancelled || man.Final != nil {
			m.registerTerminal(plan, man)
			continue
		}
		if _, created, err := m.start(plan); err == nil && created {
			resumed++
		}
	}
	return resumed, nil
}

// registerTerminal re-registers a finished/cancelled campaign from its
// manifest, without dispatching anything.
func (m *Manager) registerTerminal(plan *Plan, man manifest) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	if _, ok := m.jobs[plan.ID]; ok {
		return
	}
	if err := m.evictForAdmitLocked(); err != nil {
		return
	}
	j := newJob(plan, time.Now())
	j.hasStore = true // registerTerminal only runs off a stored manifest
	j.state = StateCancelled
	if man.Final != nil {
		j.state = man.Final.State
		j.computed = man.Final.Computed
		j.restored = man.Final.Restored
		j.failed = man.Final.Failed
		j.skipped = man.Final.Skipped
		j.checkpointsLost = man.Final.CheckpointsLost
		j.failures = append(j.failures, man.Final.Failures...)
		j.search = man.Final.Search
		if !man.Final.Created.IsZero() {
			j.created = man.Final.Created
		}
	}
	if man.Cancelled {
		j.state = StateCancelled
		j.cancelled = true
	}
	j.subsClosed = true
	j.subs = nil
	close(j.done)
	m.jobs[plan.ID] = j
	m.order = append(m.order, plan.ID)
}

// Shutdown stops dispatching new points and waits for in-flight points
// to drain (their checkpoints land, so nothing finished is lost). If
// ctx expires first, point contexts are cancelled and the error is
// returned; either way the durable state stays resumable.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.stopOnce.Do(func() { close(m.stopCh) })
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.baseCancel()
		select {
		case <-done:
		case <-time.After(250 * time.Millisecond):
		}
		return fmt.Errorf("campaign: drain incomplete: %w", ctx.Err())
	}
}
