package campaign

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"tensortee/internal/faultinject"
	"tensortee/internal/resilience"
	"tensortee/internal/scenario"
	"tensortee/internal/store"
)

// countingRun is a RunFunc double that tallies attempts per point label
// and lets tests inject failures, panics and blocking.
type countingRun struct {
	mu    sync.Mutex
	calls map[string]int
	// behave, when set, decides the outcome per call (after counting).
	behave func(label string, attempt int) ([]byte, error)
}

func newCountingRun() *countingRun {
	return &countingRun{calls: make(map[string]int)}
}

// label extracts the bracketed axis label a Plan stamps into the spec name.
func pointLabel(spec scenario.Spec) string {
	if i := strings.IndexByte(spec.Name, '['); i >= 0 {
		return strings.TrimSuffix(spec.Name[i+1:], "]")
	}
	return spec.Name
}

func (c *countingRun) run(_ context.Context, spec scenario.Spec) ([]byte, error) {
	label := pointLabel(spec)
	c.mu.Lock()
	c.calls[label]++
	attempt := c.calls[label]
	behave := c.behave
	c.mu.Unlock()
	if behave != nil {
		return behave(label, attempt)
	}
	return []byte("result:" + label), nil
}

func (c *countingRun) count(label string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls[label]
}

func (c *countingRun) total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, v := range c.calls {
		n += v
	}
	return n
}

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	return st
}

func gridSpec(n int) Spec {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	return Spec{
		Name: "grid",
		Base: tinyBase(),
		Axes: []Axis{{Axis: "layers", Values: vals}},
	}
}

func waitTerminal(t *testing.T, m *Manager, id string) Status {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := m.Wait(ctx, id)
	if err != nil {
		t.Fatalf("Wait(%s): %v (status %+v)", id, err, st)
	}
	return st
}

func TestCampaignRunsToCompletionAndCheckpoints(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	run := newCountingRun()
	m := NewManager(Config{Run: run.run, Store: st, Workers: 3})
	defer m.Shutdown(context.Background())

	status, created, err := m.Start(gridSpec(6))
	if err != nil || !created {
		t.Fatalf("Start: created=%v err=%v", created, err)
	}
	final := waitTerminal(t, m, status.ID)
	if final.State != StateDone || final.Computed != 6 || final.Failed != 0 || final.Done != 6 {
		t.Fatalf("final = %+v", final)
	}
	if run.total() != 6 {
		t.Fatalf("run called %d times, want 6", run.total())
	}
	// Every point checkpointed; the manifest records the final status.
	for i := 0; i < 6; i++ {
		payload, ok := st.Get(store.Campaigns, pointKey(status.ID, i))
		if !ok {
			t.Fatalf("point %d not checkpointed", i)
		}
		if !strings.HasPrefix(string(payload), "result:layers=") {
			t.Fatalf("point %d payload = %q", i, payload)
		}
	}
	if _, ok := st.Get(store.Campaigns, manifestKey(status.ID)); !ok {
		t.Fatal("manifest missing")
	}
	// Terminal campaigns release their pins.
	if got := st.Stats().Pinned; got != 0 {
		t.Fatalf("pinned after completion = %d, want 0", got)
	}

	// Identical resubmission is a no-op returning the settled status.
	again, created, err := m.Start(gridSpec(6))
	if err != nil || created {
		t.Fatalf("resubmit: created=%v err=%v", created, err)
	}
	if again.State != StateDone || run.total() != 6 {
		t.Fatalf("resubmit recomputed: %+v, calls=%d", again, run.total())
	}
}

func TestPanickingPointFailsOnlyItself(t *testing.T) {
	run := newCountingRun()
	run.behave = func(label string, attempt int) ([]byte, error) {
		if label == "layers=2" {
			panic("poisoned point")
		}
		return []byte("ok"), nil
	}
	m := NewManager(Config{Run: run.run, Workers: 2, Retries: 1, RetryDelay: time.Millisecond})
	defer m.Shutdown(context.Background())

	status, _, err := m.Start(gridSpec(4))
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	final := waitTerminal(t, m, status.ID)
	if final.State != StateDone {
		t.Fatalf("state = %s, want done (failures never fail the campaign)", final.State)
	}
	if final.Computed != 3 || final.Failed != 1 {
		t.Fatalf("final = %+v", final)
	}
	// Bounded retry: the poisoned point was attempted exactly 1+Retries times.
	if got := run.count("layers=2"); got != 2 {
		t.Fatalf("poisoned point attempted %d times, want 2", got)
	}
	if len(final.Failures) != 1 || !strings.Contains(final.Failures[0].Error, "poisoned point") {
		t.Fatalf("failures = %+v", final.Failures)
	}
}

func TestRetryRecoversTransientFailure(t *testing.T) {
	run := newCountingRun()
	run.behave = func(label string, attempt int) ([]byte, error) {
		if label == "layers=1" && attempt == 1 {
			return nil, errors.New("transient")
		}
		return []byte("ok"), nil
	}
	m := NewManager(Config{Run: run.run, Workers: 1, Retries: 1, RetryDelay: time.Millisecond})
	defer m.Shutdown(context.Background())

	status, _, err := m.Start(gridSpec(3))
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	final := waitTerminal(t, m, status.ID)
	if final.Computed != 3 || final.Failed != 0 {
		t.Fatalf("final = %+v", final)
	}
	if got := run.count("layers=1"); got != 2 {
		t.Fatalf("flaky point attempted %d times, want 2", got)
	}
}

func TestCancelDrainsInFlightAndSkipsRest(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	gate := make(chan struct{})
	started := make(chan string, 16)
	run := newCountingRun()
	run.behave = func(label string, attempt int) ([]byte, error) {
		started <- label
		<-gate
		return []byte("ok:" + label), nil
	}
	m := NewManager(Config{Run: run.run, Store: st, Workers: 1})
	defer m.Shutdown(context.Background())

	status, _, err := m.Start(gridSpec(8))
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	// One point is in flight (worker=1); cancel while it blocks.
	var inFlight string
	select {
	case inFlight = <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("no point started")
	}
	if _, err := m.Cancel(status.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	close(gate) // let the in-flight point finish
	final := waitTerminal(t, m, status.ID)
	if final.State != StateCancelled {
		t.Fatalf("state = %s", final.State)
	}
	// The in-flight point drained to completion — and checkpointed —
	// rather than being aborted; everything never dispatched is skipped.
	if final.Computed != 1 || final.Skipped != 7 {
		t.Fatalf("final = %+v", final)
	}
	if _, ok := st.Get(store.Campaigns, pointKey(status.ID, 0)); !ok {
		t.Fatalf("drained point %s not checkpointed", inFlight)
	}
	// Cancelling again is idempotent.
	st2, err := m.Cancel(status.ID)
	if err != nil || st2.State != StateCancelled {
		t.Fatalf("second cancel: %+v err=%v", st2, err)
	}
	// A cancelled campaign does not resurrect on resume.
	m2 := NewManager(Config{Run: run.run, Store: openStore(t, dir)})
	defer m2.Shutdown(context.Background())
	resumed, err := m2.ResumeStored()
	if err != nil || resumed != 0 {
		t.Fatalf("ResumeStored after cancel: resumed=%d err=%v", resumed, err)
	}
	got, ok := m2.Status(status.ID)
	if !ok || got.State != StateCancelled {
		t.Fatalf("cancelled campaign lost across restart: %+v ok=%v", got, ok)
	}
}

func TestResumeComputesOnlyRemainingPoints(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	const total, before = 6, 3

	// First incarnation: compute `before` points, then stall; a forced
	// shutdown simulates the crash (durable state is identical — the
	// manifest says running, `before` checkpoints are on disk).
	run1 := newCountingRun()
	reached := make(chan struct{})
	var once sync.Once
	run1.behave = func(label string, attempt int) ([]byte, error) {
		if run1.total() > before {
			once.Do(func() { close(reached) })
			select {} // wedge forever; forced shutdown abandons it
		}
		return []byte("one:" + label), nil
	}
	m1 := NewManager(Config{Run: run1.run, Store: st, Workers: 1})
	status, _, err := m1.Start(gridSpec(total))
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	select {
	case <-reached:
	case <-time.After(10 * time.Second):
		t.Fatal("campaign never reached the wedge point")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := m1.Shutdown(ctx); err == nil {
		t.Fatal("forced shutdown should report an incomplete drain")
	}

	// Second incarnation over the same store: resume must restore the
	// checkpointed prefix and compute only the rest.
	run2 := newCountingRun()
	m2 := NewManager(Config{Run: run2.run, Store: openStore(t, dir), Workers: 2})
	defer m2.Shutdown(context.Background())
	resumed, err := m2.ResumeStored()
	if err != nil || resumed != 1 {
		t.Fatalf("ResumeStored: resumed=%d err=%v", resumed, err)
	}
	final := waitTerminal(t, m2, status.ID)
	if final.State != StateDone {
		t.Fatalf("final state = %s", final.State)
	}
	if final.Restored != before || final.Computed != total-before || final.Failed != 0 {
		t.Fatalf("final = %+v, want restored=%d computed=%d", final, before, total-before)
	}
	if run2.total() != total-before {
		t.Fatalf("second incarnation ran %d points, want %d", run2.total(), total-before)
	}
	// The restored points' payloads are the first incarnation's bytes.
	for i := 0; i < before; i++ {
		payload, ok := m2.cfg.Store.Get(store.Campaigns, pointKey(status.ID, i))
		if !ok || !strings.HasPrefix(string(payload), "one:") {
			t.Fatalf("point %d payload = %q ok=%v", i, payload, ok)
		}
	}
}

func TestResumeSkipsGarbageManifests(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	// Not JSON at all.
	if err := st.Put(store.Campaigns, "deadbeef.m", []byte("not json")); err != nil {
		t.Fatal(err)
	}
	// Valid JSON whose spec does not hash to its key.
	blob := []byte(`{"spec":{"name":"x","base":{"model":{"layers":2,"hidden":256,"heads":4},"systems":[{"kind":"non-secure"}]},"axes":[{"axis":"layers","values":[1]}]}}`)
	if err := st.Put(store.Campaigns, strings.Repeat("ab", 16)+".m", blob); err != nil {
		t.Fatal(err)
	}
	run := newCountingRun()
	m := NewManager(Config{Run: run.run, Store: st})
	defer m.Shutdown(context.Background())
	resumed, err := m.ResumeStored()
	if err != nil || resumed != 0 {
		t.Fatalf("resumed=%d err=%v", resumed, err)
	}
	if run.total() != 0 {
		t.Fatalf("garbage manifest triggered %d computations", run.total())
	}
}

func TestEventsStreamTerminatesAndCounts(t *testing.T) {
	subscribed := make(chan struct{})
	run := newCountingRun()
	run.behave = func(label string, attempt int) ([]byte, error) {
		<-subscribed // hold the first point until the stream is attached
		return []byte("ok"), nil
	}
	m := NewManager(Config{Run: run.run, Workers: 2})
	defer m.Shutdown(context.Background())

	status, _, err := m.Start(gridSpec(4))
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	ch, detach, err := m.Subscribe(status.ID)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	defer detach()
	close(subscribed)
	var last Event
	sawDone := false
	deadline := time.After(30 * time.Second)
	for !sawDone {
		select {
		case ev, ok := <-ch:
			if !ok {
				sawDone = true
				break
			}
			if ev.Seq <= last.Seq {
				t.Fatalf("events out of order: %d after %d", ev.Seq, last.Seq)
			}
			last = ev
		case <-deadline:
			t.Fatal("stream never terminated")
		}
	}
	if last.Type != EventDone || last.Done != 4 || last.Total != 4 {
		t.Fatalf("last event = %+v", last)
	}

	// Subscribing to a terminal campaign yields an already-closed channel.
	ch2, detach2, err := m.Subscribe(status.ID)
	if err != nil {
		t.Fatalf("Subscribe terminal: %v", err)
	}
	defer detach2()
	if _, ok := <-ch2; ok {
		t.Fatal("terminal subscription delivered an event")
	}
}

func TestOpenBreakerPausesDispatch(t *testing.T) {
	var mu sync.Mutex
	now := time.Now()
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	br := resilience.New(1, time.Hour, resilience.WithClock(clock))
	br.Trip()

	run := newCountingRun()
	m := NewManager(Config{Run: run.run, Workers: 1, Breaker: br, BreakerPoll: time.Millisecond})
	defer m.Shutdown(context.Background())
	status, _, err := m.Start(gridSpec(2))
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	if run.total() != 0 {
		t.Fatalf("dispatch ran %d points under an open breaker", run.total())
	}
	mu.Lock()
	now = now.Add(2 * time.Hour) // cooldown elapses; breaker half-opens
	mu.Unlock()
	final := waitTerminal(t, m, status.ID)
	if final.Computed != 2 {
		t.Fatalf("final = %+v", final)
	}
}

func TestManagerCapPrefersEvictingTerminalJobs(t *testing.T) {
	run := newCountingRun()
	gate := make(chan struct{})
	run.behave = func(label string, attempt int) ([]byte, error) {
		<-gate
		return []byte("ok"), nil
	}
	m := NewManager(Config{Run: run.run, Workers: 2, MaxJobs: 2})
	defer m.Shutdown(context.Background())

	mkSpec := func(i int) Spec {
		s := gridSpec(1)
		s.Name = fmt.Sprintf("job-%d", i)
		return s
	}
	st0, _, err := m.Start(mkSpec(0))
	if err != nil {
		t.Fatalf("job 0: %v", err)
	}
	if _, _, err := m.Start(mkSpec(1)); err != nil {
		t.Fatalf("job 1: %v", err)
	}
	// Both running: the cap refuses a third.
	if _, _, err := m.Start(mkSpec(2)); !errors.Is(err, ErrBusy) {
		t.Fatalf("job 2 error = %v, want ErrBusy", err)
	}
	// Once a tracked job is terminal, it is evicted to admit new work.
	close(gate)
	waitTerminal(t, m, st0.ID)
	var created bool
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, created, err = m.Start(mkSpec(2))
		if err == nil || !errors.Is(err, ErrBusy) || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil || !created {
		t.Fatalf("job 2 after drain: created=%v err=%v", created, err)
	}
	if len(m.List()) != 2 {
		t.Fatalf("tracked jobs = %d, want 2", len(m.List()))
	}
}

func TestStartAfterShutdownFails(t *testing.T) {
	m := NewManager(Config{Run: newCountingRun().run})
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, _, err := m.Start(gridSpec(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Start after shutdown = %v, want ErrClosed", err)
	}
}

func TestCheckpointFailureDegradesDurability(t *testing.T) {
	// The manifest write succeeds, every later store write fails: the
	// classic disk-full-mid-campaign shape. The campaign must still
	// complete with exact counts — durability is what degrades, loudly.
	inj, err := faultinject.Parse("write:fail-after@1:enospc")
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(t.TempDir(), store.Options{Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	run := newCountingRun()
	m := NewManager(Config{Run: run.run, Store: st, Workers: 2})
	defer m.Shutdown(context.Background())

	status, created, err := m.Start(gridSpec(4))
	if err != nil || !created {
		t.Fatalf("Start: created=%v err=%v", created, err)
	}
	final := waitTerminal(t, m, status.ID)
	if final.State != StateDone {
		t.Fatalf("state = %s, want done", final.State)
	}
	if final.Computed != 4 || final.Done != 4 || final.Failed != 0 {
		t.Fatalf("counts wrong under checkpoint failures: %+v", final)
	}
	if final.Durability != DurabilityDegraded {
		t.Errorf("durability = %q, want %q", final.Durability, DurabilityDegraded)
	}
	if final.CheckpointsLost != 4 {
		t.Errorf("checkpoints lost = %d, want 4", final.CheckpointsLost)
	}
}

func TestDurabilityFullAndNone(t *testing.T) {
	run := newCountingRun()
	m := NewManager(Config{Run: run.run, Store: openStore(t, t.TempDir()), Workers: 2})
	defer m.Shutdown(context.Background())
	status, _, err := m.Start(gridSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if final := waitTerminal(t, m, status.ID); final.Durability != DurabilityFull {
		t.Errorf("durability with a healthy store = %q, want %q", final.Durability, DurabilityFull)
	}

	run2 := newCountingRun()
	m2 := NewManager(Config{Run: run2.run, Workers: 2})
	defer m2.Shutdown(context.Background())
	status2, _, err := m2.Start(gridSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if final := waitTerminal(t, m2, status2.ID); final.Durability != DurabilityNone {
		t.Errorf("durability without a store = %q, want %q", final.Durability, DurabilityNone)
	}
}
