// Package crypto implements the memory-protection primitives of the paper's
// threat model (Section 2.2): counter-mode AES memory encryption where the
// counter is (address, version number), and 56-bit MACs in the style of the
// SGX MEE's Carter–Wegman construction.
//
// The package is functional, not just a timing model: protected DRAM in this
// system really holds AES-CTR ciphertext, and MAC verification really fails
// when ciphertext, address, or VN are tampered with. Timing costs are charged
// separately by the MEE layers.
package crypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// KeySize is the AES key size in bytes (AES-128 per Table 1).
const KeySize = 16

// MACBits is the MAC width used throughout the system (Section 4.3 notes
// 56-bit MACs; forgery still requires ~2^56 blind guesses).
const MACBits = 56

// MACMask keeps the low 56 bits of a 64-bit digest.
const MACMask = (uint64(1) << MACBits) - 1

// Key is an AES-128 key plus a derived MAC key.
type Key struct {
	aesKey [KeySize]byte
	macKey [KeySize]byte
	block  cipher.Block
}

// NewKey derives a Key from raw bytes. The MAC key is domain-separated from
// the encryption key so the two uses never share key material directly.
func NewKey(raw []byte) (*Key, error) {
	if len(raw) != KeySize {
		return nil, fmt.Errorf("crypto: key must be %d bytes, got %d", KeySize, len(raw))
	}
	var k Key
	copy(k.aesKey[:], raw)
	mk := sha256.Sum256(append([]byte("tensortee-mac-v1:"), raw...))
	copy(k.macKey[:], mk[:KeySize])
	b, err := aes.NewCipher(k.aesKey[:])
	if err != nil {
		return nil, fmt.Errorf("crypto: %w", err)
	}
	k.block = b
	return &k, nil
}

// MustKey is NewKey for static test/demo keys; it panics on bad input.
func MustKey(raw []byte) *Key {
	k, err := NewKey(raw)
	if err != nil {
		panic(err)
	}
	return k
}

// Equal reports whether two keys hold identical key material (used by the
// key-exchange tests to confirm both enclaves derived the same session key).
func (k *Key) Equal(o *Key) bool {
	if k == nil || o == nil {
		return k == o
	}
	return k.aesKey == o.aesKey
}

// Counter is the CTR-mode counter seed: the protected address plus the
// version number, per C = AES_K(addr, VN) XOR P (Section 2.2). In TensorTEE
// the address is tensor-relative so ciphertext stays portable across
// heterogeneous enclaves (DESIGN.md §6).
type Counter struct {
	Addr uint64
	VN   uint64
}

// pad builds the 16-byte CTR block for a given 16-byte-block index within
// the protected unit.
func (k *Key) pad(c Counter, blockIdx uint64, dst *[16]byte) {
	var in [16]byte
	binary.LittleEndian.PutUint64(in[0:8], c.Addr+blockIdx*16)
	binary.LittleEndian.PutUint64(in[8:16], c.VN)
	k.block.Encrypt(dst[:], in[:])
}

// XORKeystream encrypts or decrypts src into dst under counter c. dst and
// src may alias. Length need not be a multiple of 16.
func (k *Key) XORKeystream(dst, src []byte, c Counter) {
	if len(dst) < len(src) {
		panic("crypto: dst shorter than src")
	}
	var pad [16]byte
	for i := 0; i < len(src); i += 16 {
		k.pad(c, uint64(i/16), &pad)
		n := len(src) - i
		if n > 16 {
			n = 16
		}
		for j := 0; j < n; j++ {
			dst[i+j] = src[i+j] ^ pad[j]
		}
	}
}

// Encrypt returns the ciphertext of plaintext under counter c.
func (k *Key) Encrypt(plaintext []byte, c Counter) []byte {
	out := make([]byte, len(plaintext))
	k.XORKeystream(out, plaintext, c)
	return out
}

// Decrypt returns the plaintext of ciphertext under counter c (identical to
// Encrypt by the XOR nature of CTR mode).
func (k *Key) Decrypt(ciphertext []byte, c Counter) []byte {
	return k.Encrypt(ciphertext, c)
}

// MAC computes the 56-bit authentication tag over (ciphertext, addr, VN):
// MAC = Hash(K_MAC, (C, PA, VN)) truncated to 56 bits (Section 2.2).
//
// The construction is a keyed SHA-256 (HMAC-like with domain separation)
// truncated to 56 bits; the paper's hardware uses a Carter–Wegman hash with
// the same tag width and the same security argument for XOR combining.
func (k *Key) MAC(ciphertext []byte, c Counter) uint64 {
	h := sha256.New()
	h.Write(k.macKey[:])
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], c.Addr)
	binary.LittleEndian.PutUint64(hdr[8:16], c.VN)
	h.Write(hdr[:])
	h.Write(ciphertext)
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return binary.LittleEndian.Uint64(sum[0:8]) & MACMask
}

// VerifyMAC recomputes and compares a tag.
func (k *Key) VerifyMAC(ciphertext []byte, c Counter, tag uint64) bool {
	return k.MAC(ciphertext, c) == tag
}

// XORMAC combines per-line MACs into a tensor-granularity MAC:
// MAC_tensor = MAC_0 ^ MAC_1 ^ ... ^ MAC_{n-1} (Section 4.3). The XOR is
// order-insensitive, which is what lets the NPU verify tiled accesses in any
// order.
func XORMAC(tags []uint64) uint64 {
	var out uint64
	for _, t := range tags {
		out ^= t
	}
	return out & MACMask
}

// SealedBlob is an encrypted+authenticated message for the trusted metadata
// channel (Section 4.4.2): sequence-numbered so replays are detected.
type SealedBlob struct {
	Seq        uint64
	Ciphertext []byte
	Tag        uint64
}

// Seal encrypts payload for the trusted channel under sequence number seq.
func (k *Key) Seal(payload []byte, seq uint64) SealedBlob {
	c := Counter{Addr: ^uint64(0) - seq, VN: seq} // channel domain, never collides with memory counters
	ct := k.Encrypt(payload, c)
	return SealedBlob{Seq: seq, Ciphertext: ct, Tag: k.MAC(ct, c)}
}

// Open verifies and decrypts a SealedBlob, returning an error on tamper or
// sequence mismatch.
func (k *Key) Open(b SealedBlob, wantSeq uint64) ([]byte, error) {
	if b.Seq != wantSeq {
		return nil, fmt.Errorf("crypto: trusted channel sequence %d, want %d (replay or loss)", b.Seq, wantSeq)
	}
	c := Counter{Addr: ^uint64(0) - b.Seq, VN: b.Seq}
	if !k.VerifyMAC(b.Ciphertext, c, b.Tag) {
		return nil, fmt.Errorf("crypto: trusted channel MAC mismatch at seq %d", b.Seq)
	}
	return k.Decrypt(b.Ciphertext, c), nil
}
