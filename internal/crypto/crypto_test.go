package crypto

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func testKey(t testing.TB) *Key {
	t.Helper()
	return MustKey([]byte("0123456789abcdef"))
}

func TestNewKeyValidation(t *testing.T) {
	if _, err := NewKey([]byte("short")); err == nil {
		t.Error("short key accepted")
	}
	if _, err := NewKey(make([]byte, 16)); err != nil {
		t.Errorf("16-byte key rejected: %v", err)
	}
}

func TestMustKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustKey should panic on bad key")
		}
	}()
	MustKey([]byte("bad"))
}

func TestKeyEqual(t *testing.T) {
	k1 := MustKey([]byte("0123456789abcdef"))
	k2 := MustKey([]byte("0123456789abcdef"))
	k3 := MustKey([]byte("fedcba9876543210"))
	if !k1.Equal(k2) {
		t.Error("identical keys not equal")
	}
	if k1.Equal(k3) {
		t.Error("different keys equal")
	}
	var nilKey *Key
	if nilKey.Equal(k1) || k1.Equal(nilKey) {
		t.Error("nil key comparisons wrong")
	}
	if !nilKey.Equal(nil) {
		t.Error("nil == nil should hold")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	k := testKey(t)
	pt := []byte("the quick brown fox jumps over the lazy dog, twice over again!!")
	c := Counter{Addr: 0x1000, VN: 7}
	ct := k.Encrypt(pt, c)
	if bytes.Equal(ct, pt) {
		t.Error("ciphertext equals plaintext")
	}
	back := k.Decrypt(ct, c)
	if !bytes.Equal(back, pt) {
		t.Error("roundtrip failed")
	}
}

func TestDecryptWrongCounterFails(t *testing.T) {
	k := testKey(t)
	pt := make([]byte, 64)
	for i := range pt {
		pt[i] = byte(i)
	}
	ct := k.Encrypt(pt, Counter{Addr: 0x1000, VN: 7})
	if bytes.Equal(k.Decrypt(ct, Counter{Addr: 0x1000, VN: 8}), pt) {
		t.Error("wrong VN decrypted correctly — replay would be invisible")
	}
	if bytes.Equal(k.Decrypt(ct, Counter{Addr: 0x1040, VN: 7}), pt) {
		t.Error("wrong address decrypted correctly")
	}
}

func TestKeystreamUniquePerBlock(t *testing.T) {
	k := testKey(t)
	zero := make([]byte, 64)
	ct := k.Encrypt(zero, Counter{Addr: 0, VN: 0})
	// Each 16-byte block of the keystream must differ (counter increments).
	for i := 0; i < 64; i += 16 {
		for j := i + 16; j < 64; j += 16 {
			if bytes.Equal(ct[i:i+16], ct[j:j+16]) {
				t.Fatalf("keystream blocks %d and %d identical", i/16, j/16)
			}
		}
	}
}

func TestXORKeystreamInPlace(t *testing.T) {
	k := testKey(t)
	c := Counter{Addr: 0x40, VN: 1}
	buf := []byte("in-place encryption works fine!!")
	orig := append([]byte(nil), buf...)
	k.XORKeystream(buf, buf, c)
	if bytes.Equal(buf, orig) {
		t.Error("in-place encryption did nothing")
	}
	k.XORKeystream(buf, buf, c)
	if !bytes.Equal(buf, orig) {
		t.Error("in-place roundtrip failed")
	}
}

func TestXORKeystreamShortDstPanics(t *testing.T) {
	k := testKey(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for short dst")
		}
	}()
	k.XORKeystream(make([]byte, 3), make([]byte, 16), Counter{})
}

func TestNonBlockMultipleLengths(t *testing.T) {
	k := testKey(t)
	for _, n := range []int{1, 15, 16, 17, 33, 63, 64, 100} {
		pt := make([]byte, n)
		for i := range pt {
			pt[i] = byte(i * 7)
		}
		c := Counter{Addr: uint64(n), VN: uint64(n)}
		if got := k.Decrypt(k.Encrypt(pt, c), c); !bytes.Equal(got, pt) {
			t.Errorf("roundtrip failed for length %d", n)
		}
	}
}

func TestMACBasics(t *testing.T) {
	k := testKey(t)
	ct := []byte("some ciphertext bytes here......")
	c := Counter{Addr: 0x2000, VN: 3}
	tag := k.MAC(ct, c)
	if tag > MACMask {
		t.Errorf("MAC %#x exceeds 56 bits", tag)
	}
	if !k.VerifyMAC(ct, c, tag) {
		t.Error("genuine MAC rejected")
	}
}

func TestMACDetectsTampering(t *testing.T) {
	k := testKey(t)
	ct := make([]byte, 64)
	rand.New(rand.NewSource(1)).Read(ct)
	c := Counter{Addr: 0x3000, VN: 9}
	tag := k.MAC(ct, c)

	// any single bit flip must be caught
	for _, bit := range []int{0, 1, 63, 64, 255, 511} {
		mut := append([]byte(nil), ct...)
		mut[bit/8] ^= 1 << (bit % 8)
		if k.VerifyMAC(mut, c, tag) {
			t.Errorf("bit flip %d not detected", bit)
		}
	}
	// address and VN substitution must be caught
	if k.VerifyMAC(ct, Counter{Addr: 0x3040, VN: 9}, tag) {
		t.Error("relocation not detected")
	}
	if k.VerifyMAC(ct, Counter{Addr: 0x3000, VN: 8}, tag) {
		t.Error("replay (old VN) not detected")
	}
}

// Property: MAC is deterministic and single-byte perturbations always change
// the tag (with overwhelming probability; a failure here means a real bug).
func TestMACPerturbationProperty(t *testing.T) {
	k := testKey(t)
	f := func(data []byte, pos uint8, delta uint8) bool {
		if len(data) == 0 {
			return true
		}
		if delta == 0 {
			delta = 1
		}
		c := Counter{Addr: 0x100, VN: 2}
		tag := k.MAC(data, c)
		if tag != k.MAC(data, c) {
			return false // non-deterministic
		}
		mut := append([]byte(nil), data...)
		mut[int(pos)%len(mut)] ^= delta
		return k.MAC(mut, c) != tag
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestXORMAC(t *testing.T) {
	tags := []uint64{0x1, 0x2, 0x4}
	if XORMAC(tags) != 0x7 {
		t.Error("XORMAC wrong")
	}
	if XORMAC(nil) != 0 {
		t.Error("empty XORMAC should be 0")
	}
}

// Property: XORMAC is order-insensitive — the tensor MAC of any permutation
// of line MACs matches (Section 4.3: "insensitive to order, allowing various
// optimizations in NPU computing like tensor tiling").
func TestXORMACOrderInsensitiveProperty(t *testing.T) {
	f := func(tags []uint64, seed int64) bool {
		perm := append([]uint64(nil), tags...)
		r := rand.New(rand.NewSource(seed))
		r.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		return XORMAC(tags) == XORMAC(perm)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: XORMAC never exceeds the 56-bit output space.
func TestXORMACWidthProperty(t *testing.T) {
	f := func(tags []uint64) bool { return XORMAC(tags) <= MACMask }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	k := testKey(t)
	payload := []byte("tensor metadata: addr=0x1000 vn=42 mac=0xdeadbeef")
	blob := k.Seal(payload, 5)
	got, err := k.Open(blob, 5)
	if err != nil {
		t.Fatalf("Open failed: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("payload corrupted")
	}
}

func TestOpenDetectsReplayAndTamper(t *testing.T) {
	k := testKey(t)
	blob := k.Seal([]byte("metadata"), 5)
	if _, err := k.Open(blob, 6); err == nil {
		t.Error("sequence mismatch (replay) not detected")
	}
	blob.Ciphertext[0] ^= 1
	if _, err := k.Open(blob, 5); err == nil {
		t.Error("tampered channel payload not detected")
	}
}

func TestSealDifferentSeqDifferentCiphertext(t *testing.T) {
	k := testKey(t)
	p := []byte("same payload")
	b1 := k.Seal(p, 1)
	b2 := k.Seal(p, 2)
	if bytes.Equal(b1.Ciphertext, b2.Ciphertext) {
		t.Error("sequence number not bound into channel encryption")
	}
}

func BenchmarkEncrypt64B(b *testing.B) {
	k := testKey(b)
	buf := make([]byte, 64)
	c := Counter{Addr: 0x1000, VN: 1}
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		k.XORKeystream(buf, buf, c)
	}
}

func BenchmarkMAC64B(b *testing.B) {
	k := testKey(b)
	buf := make([]byte, 64)
	c := Counter{Addr: 0x1000, VN: 1}
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		_ = k.MAC(buf, c)
	}
}
