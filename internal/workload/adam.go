package workload

import (
	"fmt"
	"math"

	"tensortee/internal/tensor"
)

// AdamParams are the optimizer hyper-parameters (DeepSpeed defaults).
type AdamParams struct {
	LR, Beta1, Beta2, Eps float64
	Step                  int // 1-based timestep for bias correction
}

// DefaultAdam returns the usual configuration.
func DefaultAdam() AdamParams {
	return AdamParams{LR: 1e-3, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, Step: 1}
}

// AdamStep applies one fused Adam update in place over fp32 tensors with
// backing data: m and v are updated from g, then w. This is the functional
// counterpart of the sweep the CPU simulator times; the end-to-end security
// tests run it inside the protected region.
func AdamStep(w, g, m, v *tensor.Tensor, p AdamParams) error {
	n := w.Elems()
	if g.Elems() != n || m.Elems() != n || v.Elems() != n {
		return fmt.Errorf("workload: adam tensor size mismatch: w=%d g=%d m=%d v=%d",
			n, g.Elems(), m.Elems(), v.Elems())
	}
	for _, t := range []*tensor.Tensor{w, g, m, v} {
		if t.DType != tensor.FP32 || t.Data == nil {
			return fmt.Errorf("workload: adam needs fp32 tensors with data, got %v", t)
		}
	}
	bc1 := 1 - math.Pow(p.Beta1, float64(p.Step))
	bc2 := 1 - math.Pow(p.Beta2, float64(p.Step))
	for i := 0; i < n; i++ {
		gi := float64(g.Float32At(i))
		mi := p.Beta1*float64(m.Float32At(i)) + (1-p.Beta1)*gi
		vi := p.Beta2*float64(v.Float32At(i)) + (1-p.Beta2)*gi*gi
		m.SetFloat32At(i, float32(mi))
		v.SetFloat32At(i, float32(vi))
		mh := mi / bc1
		vh := vi / bc2
		wi := float64(w.Float32At(i)) - p.LR*mh/(math.Sqrt(vh)+p.Eps)
		w.SetFloat32At(i, float32(wi))
	}
	return nil
}

// HalfWeights converts an fp32 weight tensor to the fp16 image shipped back
// to the NPU (the CommW payload of Figure 1).
func HalfWeights(w *tensor.Tensor) []uint16 {
	out := make([]uint16, w.Elems())
	for i := range out {
		out[i] = tensor.F32ToF16(w.Float32At(i))
	}
	return out
}
