// Package workload: see models.go for the Table-2 zoo and GEMM
// enumeration, adam.go for the functional fused Adam optimizer.
//
// Numbers worth knowing when extending the zoo:
//
//   - Params() derives the count from architecture hyper-parameters
//     (per-layer QKV + attention-out + two FFN matrices with biases, two
//     LayerNorms, tied token embedding, final LayerNorm). Derived counts
//     land within a few percent of the published labels; divergences are
//     recorded in EXPERIMENTS.md.
//   - ZeRO-Offload communication volumes follow Figure 1: gradients move
//     NPU->CPU in fp32 (4 bytes/param), updated weights return in fp16
//     (2 bytes/param).
//   - The CPU optimizer sweep touches 28 bytes of DRAM per element:
//     four fp32 reads (w, g, m, v) and three writebacks (w, m, v).
package workload
