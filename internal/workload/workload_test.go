package workload

import (
	"math"
	"strings"
	"testing"

	"tensortee/internal/tensor"
)

func TestZooMatchesTable2(t *testing.T) {
	ms := Models()
	if len(ms) != 12 {
		t.Fatalf("zoo has %d models, want 12 (Table 2)", len(ms))
	}
	wantBatch := map[string]int{
		"GPT": 60, "GPT2-M": 22, "Roberta-L": 22, "BLOOM": 21,
		"GPT2-L": 11, "BLOOM-800M": 17, "OPT-1.3B": 10, "GPT2-XL": 6,
		"OPT-2.7B": 6, "XGLM-4.5B": 3, "LLAMA2-7B": 2, "OPT-6.7B": 2,
	}
	for _, m := range ms {
		if wantBatch[m.Name] != m.BatchSize {
			t.Errorf("%s batch = %d, want %d", m.Name, m.BatchSize, wantBatch[m.Name])
		}
	}
}

func TestParamsNearNominal(t *testing.T) {
	// Derived parameter counts should be within 30% of the paper's nominal
	// labels (architecture hyper-parameters are public; exact embedding
	// and bias accounting differs slightly).
	nominal := map[string]float64{
		"GPT": 117e6, "GPT2-M": 345e6, "Roberta-L": 355e6, "BLOOM": 560e6,
		"GPT2-L": 774e6, "BLOOM-800M": 800e6, "OPT-1.3B": 1.3e9, "GPT2-XL": 1.6e9,
		"OPT-2.7B": 2.8e9, "XGLM-4.5B": 4.5e9, "LLAMA2-7B": 6.7e9, "OPT-6.7B": 6.7e9,
	}
	for _, m := range Models() {
		got := float64(m.Params())
		want := nominal[m.Name]
		if math.Abs(got-want)/want > 0.30 {
			t.Errorf("%s params = %.3g, nominal %.3g (>30%% off)", m.Name, got, want)
		}
	}
}

func TestModelByName(t *testing.T) {
	if _, err := ModelByName("GPT2-M"); err != nil {
		t.Error(err)
	}
	if _, err := ModelByName("nonexistent"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestForwardGEMMShapes(t *testing.T) {
	m, _ := ModelByName("GPT2-M")
	gs := m.ForwardGEMMs()
	// 6 GEMMs per layer + lm head.
	if len(gs) != m.Layers*6+1 {
		t.Fatalf("forward GEMMs = %d, want %d", len(gs), m.Layers*6+1)
	}
	bs := m.BatchSize * m.SeqLen
	qkv := gs[0]
	if qkv.M != bs || qkv.K != m.Hidden || qkv.N != 3*m.Hidden {
		t.Errorf("qkv dims = %dx%dx%d", qkv.M, qkv.K, qkv.N)
	}
	// Attention fusion flags.
	if !gs[1].NoStoreC {
		t.Error("attention scores must stay on chip")
	}
	if !gs[2].NoLoadA {
		t.Error("attention context must read scores from chip")
	}
	last := gs[len(gs)-1]
	if last.N != m.Vocab {
		t.Errorf("lm head N = %d, want vocab %d", last.N, m.Vocab)
	}
}

func TestBackwardGEMMsDoubleFLOPs(t *testing.T) {
	m, _ := ModelByName("GPT")
	var fwd, bwd float64
	for _, g := range m.ForwardGEMMs() {
		fwd += g.FLOPs()
	}
	for _, g := range m.BackwardGEMMs() {
		bwd += g.FLOPs()
	}
	if math.Abs(bwd-2*fwd)/fwd > 1e-9 {
		t.Errorf("backward FLOPs = %.3g, want 2x forward %.3g", bwd, fwd)
	}
}

func TestParamTensorsMatchParams(t *testing.T) {
	for _, m := range Models() {
		var sum int64
		for _, pt := range m.ParamTensors() {
			sum += int64(pt.Elems)
		}
		if sum != m.Params() {
			t.Errorf("%s: tensor inventory %d elems != params %d", m.Name, sum, m.Params())
		}
	}
}

func TestTensorStats(t *testing.T) {
	m, _ := ModelByName("GPT2-M")
	s := m.Stats()
	// Figure 4: hundreds of tensors, large sizes.
	if s.Count < 100 || s.Count > 500 {
		t.Errorf("tensor count = %d, want hundreds", s.Count)
	}
	if s.LargestBytes < 50<<20 {
		t.Errorf("largest tensor = %d bytes, want >= 50MB", s.LargestBytes)
	}
	if s.TotalBytes != m.Params()*4 {
		t.Error("total bytes != params * 4")
	}
}

func TestCommBytes(t *testing.T) {
	m, _ := ModelByName("GPT")
	g, w := m.CommBytes()
	if g != 4*m.Params() || w != 2*m.Params() {
		t.Errorf("comm bytes = %d/%d", g, w)
	}
}

func TestTrainFLOPsDominatedBy6PT(t *testing.T) {
	m, _ := ModelByName("GPT2-M")
	base := 6 * float64(m.Params()) * float64(m.Tokens())
	got := m.TrainFLOPs()
	if got < base || got > 1.5*base {
		t.Errorf("train FLOPs = %.3g, want within [1, 1.5]x of 6PT %.3g", got, base)
	}
}

func TestAdamQuadsCoverage(t *testing.T) {
	m, _ := ModelByName("GPT")
	arena := tensor.NewArena(0, 64)
	quads, cov := AdamQuads(arena, m, 1<<20)
	if len(quads) == 0 {
		t.Fatal("no quads")
	}
	if cov <= 0 || cov > 1 {
		t.Errorf("coverage = %g", cov)
	}
	arena2 := tensor.NewArena(0, 64)
	all, cov2 := AdamQuads(arena2, m, 0)
	if cov2 != 1 {
		t.Errorf("uncapped coverage = %g, want 1", cov2)
	}
	if len(all) != len(m.ParamTensors()) {
		t.Error("uncapped quads should cover every tensor")
	}
}

// --- functional Adam ---------------------------------------------------------

func mkTensor(name string, vals []float32) *tensor.Tensor {
	tt := tensor.NewWithData(name, 0, tensor.Shape{len(vals)}, tensor.FP32)
	tt.SetFloat32s(vals)
	return tt
}

func TestAdamStepMatchesReference(t *testing.T) {
	w := mkTensor("w", []float32{1, 2, 3})
	g := mkTensor("g", []float32{0.5, -0.5, 1})
	m := mkTensor("m", []float32{0, 0, 0})
	v := mkTensor("v", []float32{0, 0, 0})
	p := DefaultAdam()
	if err := AdamStep(w, g, m, v, p); err != nil {
		t.Fatal(err)
	}
	// Reference: step 1, m=0.1g/bc1=g, v=0.001g^2/bc2=g^2,
	// w -= lr * g / (|g| + eps) = w -+ lr*sign(g).
	want := []float32{
		1 - 1e-3*(0.5/(0.5+1e-8)),
		2 + 1e-3*(0.5/(0.5+1e-8)),
		3 - 1e-3*(1/(1+1e-8)),
	}
	got := w.Float32s()
	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-6 {
			t.Errorf("w[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Moments updated.
	if m.Float32At(0) == 0 || v.Float32At(0) == 0 {
		t.Error("moments not updated")
	}
}

func TestAdamStepDecreasesLossDirection(t *testing.T) {
	// Constant positive gradient must decrease w monotonically.
	w := mkTensor("w", []float32{5})
	g := mkTensor("g", []float32{2})
	m := mkTensor("m", []float32{0})
	v := mkTensor("v", []float32{0})
	prev := w.Float32At(0)
	for step := 1; step <= 5; step++ {
		p := DefaultAdam()
		p.Step = step
		if err := AdamStep(w, g, m, v, p); err != nil {
			t.Fatal(err)
		}
		cur := w.Float32At(0)
		if cur >= prev {
			t.Fatalf("step %d: w did not decrease (%v -> %v)", step, prev, cur)
		}
		prev = cur
	}
}

func TestAdamStepValidation(t *testing.T) {
	w := mkTensor("w", []float32{1, 2})
	g := mkTensor("g", []float32{1})
	m := mkTensor("m", []float32{1, 2})
	v := mkTensor("v", []float32{1, 2})
	if err := AdamStep(w, g, m, v, DefaultAdam()); err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Errorf("size mismatch not rejected: %v", err)
	}
	bad := tensor.New("bad", 0, tensor.Shape{2}, tensor.FP32) // no data
	if err := AdamStep(bad, mkTensor("g", []float32{1, 2}), mkTensor("m", []float32{0, 0}), mkTensor("v", []float32{0, 0}), DefaultAdam()); err == nil {
		t.Error("missing data not rejected")
	}
}

func TestHalfWeights(t *testing.T) {
	w := mkTensor("w", []float32{1.0, -2.5, 0.5})
	h := HalfWeights(w)
	if len(h) != 3 {
		t.Fatal("wrong length")
	}
	for i, want := range []float32{1.0, -2.5, 0.5} {
		if tensor.F16ToF32(h[i]) != want {
			t.Errorf("h[%d] = %v, want %v", i, tensor.F16ToF32(h[i]), want)
		}
	}
}
