// Package workload defines the evaluation workloads of Section 5.2: the
// twelve LLM training configurations of Table 2 (GPT-117M through
// OPT-6.7B), the transformer-layer GEMM enumeration the NPU executes, the
// optimizer-tensor inventory the CPU sweeps (Figure 4), and a functional
// Adam optimizer for the end-to-end security tests.
package workload

import (
	"fmt"

	"tensortee/internal/npusim"
	"tensortee/internal/tensor"
	"tensortee/internal/trace"
)

// Model is one Table-2 row plus the public architecture hyper-parameters
// the GEMM shapes derive from.
type Model struct {
	Name      string
	ParamsStr string // the paper's nominal parameter count
	BatchSize int    // Table 2
	Layers    int
	Hidden    int
	Heads     int
	FFNDim    int
	Vocab     int
	SeqLen    int
}

// Models returns the Table-2 zoo in the paper's order.
func Models() []Model {
	return []Model{
		{Name: "GPT", ParamsStr: "117M", BatchSize: 60, Layers: 12, Hidden: 768, Heads: 12, FFNDim: 3072, Vocab: 50257, SeqLen: 1024},
		{Name: "GPT2-M", ParamsStr: "345M", BatchSize: 22, Layers: 24, Hidden: 1024, Heads: 16, FFNDim: 4096, Vocab: 50257, SeqLen: 1024},
		{Name: "Roberta-L", ParamsStr: "355M", BatchSize: 22, Layers: 24, Hidden: 1024, Heads: 16, FFNDim: 4096, Vocab: 50265, SeqLen: 512},
		{Name: "BLOOM", ParamsStr: "560M", BatchSize: 21, Layers: 24, Hidden: 1024, Heads: 16, FFNDim: 4096, Vocab: 250880, SeqLen: 1024},
		{Name: "GPT2-L", ParamsStr: "774M", BatchSize: 11, Layers: 36, Hidden: 1280, Heads: 20, FFNDim: 5120, Vocab: 50257, SeqLen: 1024},
		{Name: "BLOOM-800M", ParamsStr: "800M", BatchSize: 17, Layers: 24, Hidden: 1280, Heads: 16, FFNDim: 5120, Vocab: 250880, SeqLen: 1024},
		{Name: "OPT-1.3B", ParamsStr: "1.3B", BatchSize: 10, Layers: 24, Hidden: 2048, Heads: 32, FFNDim: 8192, Vocab: 50272, SeqLen: 1024},
		{Name: "GPT2-XL", ParamsStr: "1.6B", BatchSize: 6, Layers: 48, Hidden: 1600, Heads: 25, FFNDim: 6400, Vocab: 50257, SeqLen: 1024},
		{Name: "OPT-2.7B", ParamsStr: "2.8B", BatchSize: 6, Layers: 32, Hidden: 2560, Heads: 32, FFNDim: 10240, Vocab: 50272, SeqLen: 1024},
		{Name: "XGLM-4.5B", ParamsStr: "4.5B", BatchSize: 3, Layers: 48, Hidden: 2048, Heads: 32, FFNDim: 16384, Vocab: 256008, SeqLen: 1024},
		{Name: "LLAMA2-7B", ParamsStr: "6.7B", BatchSize: 2, Layers: 32, Hidden: 4096, Heads: 32, FFNDim: 11008, Vocab: 32000, SeqLen: 1024},
		{Name: "OPT-6.7B", ParamsStr: "6.7B", BatchSize: 2, Layers: 32, Hidden: 4096, Heads: 32, FFNDim: 16384, Vocab: 50272, SeqLen: 1024},
	}
}

// ModelByName finds a model in the zoo.
func ModelByName(name string) (Model, error) {
	for _, m := range Models() {
		if m.Name == name {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("workload: unknown model %q", name)
}

// Params computes the parameter count from the architecture: per layer
// QKV + attention output + two FFN matrices with biases, two LayerNorms,
// plus the (tied) token embedding and final LayerNorm.
func (m Model) Params() int64 {
	h := int64(m.Hidden)
	f := int64(m.FFNDim)
	perLayer := h*3*h + 3*h + // QKV
		h*h + h + // attention out
		h*f + f + // FFN up
		f*h + h + // FFN down
		4*h // two LayerNorms (gain+bias)
	return int64(m.Layers)*perLayer + int64(m.Vocab)*h + 2*h
}

// Tokens returns the tokens processed per batch.
func (m Model) Tokens() int { return m.BatchSize * m.SeqLen }

// TrainFLOPs estimates forward+backward FLOPs (the standard 6*P*T rule
// plus the quadratic attention term).
func (m Model) TrainFLOPs() float64 {
	pt := 6 * float64(m.Params()) * float64(m.Tokens())
	attn := 12 * float64(m.Layers) * float64(m.BatchSize) * float64(m.SeqLen) * float64(m.SeqLen) * float64(m.Hidden)
	return pt + attn
}

// --- GEMM enumeration -------------------------------------------------------

// ForwardGEMMs enumerates the forward-pass GEMMs of one training step.
func (m Model) ForwardGEMMs() []npusim.GEMM {
	bs := m.BatchSize * m.SeqLen
	var gs []npusim.GEMM
	for l := 0; l < m.Layers; l++ {
		p := fmt.Sprintf("l%d.", l)
		gs = append(gs,
			npusim.GEMM{Name: p + "qkv", M: bs, K: m.Hidden, N: 3 * m.Hidden},
			// Attention scores and context, folded across heads:
			// [B*heads*S, H/heads] x [H/heads, S] then [B*heads*S, S] x
			// [S, H/heads]. The S x S score matrix stays on chip between
			// the two (fused softmax — the "inter-layer optimization" of
			// Section 5.1), so scores skip the GDDR round trip.
			npusim.GEMM{Name: p + "attn.score", M: m.BatchSize * m.Heads * m.SeqLen, K: m.Hidden / m.Heads, N: m.SeqLen, NoStoreC: true},
			npusim.GEMM{Name: p + "attn.ctx", M: m.BatchSize * m.Heads * m.SeqLen, K: m.SeqLen, N: m.Hidden / m.Heads, NoLoadA: true},
			npusim.GEMM{Name: p + "attn.out", M: bs, K: m.Hidden, N: m.Hidden},
			npusim.GEMM{Name: p + "ffn.up", M: bs, K: m.Hidden, N: m.FFNDim},
			npusim.GEMM{Name: p + "ffn.down", M: bs, K: m.FFNDim, N: m.Hidden},
		)
	}
	// Output head (tied embedding).
	gs = append(gs, npusim.GEMM{Name: "lm_head", M: bs, K: m.Hidden, N: m.Vocab})
	return gs
}

// BackwardGEMMs enumerates the backward pass: for every forward GEMM
// [M,K]x[K,N], backprop runs a data-gradient GEMM [M,N]x[N,K] and a
// weight-gradient GEMM [K,M]x[M,N].
func (m Model) BackwardGEMMs() []npusim.GEMM {
	var gs []npusim.GEMM
	for _, g := range m.ForwardGEMMs() {
		// Fused-attention gradients stay on chip the same way the forward
		// scores do (flash-style backward recomputation).
		gs = append(gs,
			npusim.GEMM{Name: g.Name + ".dgrad", M: g.M, K: g.N, N: g.K, NoLoadA: g.NoLoadA, NoStoreC: g.NoStoreC},
			npusim.GEMM{Name: g.Name + ".wgrad", M: g.K, K: g.M, N: g.N, NoLoadA: g.NoLoadA, NoStoreC: g.NoStoreC},
		)
	}
	return gs
}

// --- tensor inventory (Figure 4) ---------------------------------------------

// ParamTensor describes one parameter tensor of the model.
type ParamTensor struct {
	Name  string
	Elems int
}

// ParamTensors lists the model's parameter tensors in layout order — the
// tensors the CPU's Adam step sweeps and the Meta Table manages.
func (m Model) ParamTensors() []ParamTensor {
	h, f := m.Hidden, m.FFNDim
	var ts []ParamTensor
	add := func(name string, elems int) {
		ts = append(ts, ParamTensor{Name: name, Elems: elems})
	}
	add("tok_emb", m.Vocab*h)
	for l := 0; l < m.Layers; l++ {
		p := fmt.Sprintf("l%d.", l)
		add(p+"qkv.w", h*3*h)
		add(p+"qkv.b", 3*h)
		add(p+"attn.out.w", h*h)
		add(p+"attn.out.b", h)
		add(p+"ffn.up.w", h*f)
		add(p+"ffn.up.b", f)
		add(p+"ffn.down.w", f*h)
		add(p+"ffn.down.b", h)
		add(p+"ln1", 2*h)
		add(p+"ln2", 2*h)
	}
	add("ln_f", 2*h)
	return ts
}

// TensorStats summarizes the Figure-4 series for a model.
type TensorStats struct {
	Count        int
	LargestBytes int64 // fp32 bytes of the largest parameter tensor
	TotalBytes   int64 // fp32 bytes of all parameters
}

// Stats computes the tensor inventory statistics.
func (m Model) Stats() TensorStats {
	var s TensorStats
	for _, t := range m.ParamTensors() {
		s.Count++
		b := int64(t.Elems) * 4
		s.TotalBytes += b
		if b > s.LargestBytes {
			s.LargestBytes = b
		}
	}
	return s
}

// --- CPU-side Adam sweep construction ----------------------------------------

// AdamQuads lays out the optimizer state (fp32 w, g, m, v) for the model's
// parameter tensors in an arena, optionally capping total elements (large
// models are simulated over a representative window and scaled linearly —
// the sweep is streaming, so time is linear in elements).
//
// Returns the quads and the fraction of the full parameter count covered.
func AdamQuads(a *tensor.Arena, m Model, maxElems int64) (quads []trace.AdamTensors, coverage float64) {
	var total, used int64
	for _, t := range m.ParamTensors() {
		total += int64(t.Elems)
	}
	for _, t := range m.ParamTensors() {
		if maxElems > 0 && used+int64(t.Elems) > maxElems {
			continue // skip tensors that exceed the remaining budget
		}
		quads = append(quads, trace.NewAdamTensors(a, t.Name, t.Elems))
		used += int64(t.Elems)
	}
	if total == 0 {
		return quads, 1
	}
	return quads, float64(used) / float64(total)
}

// CommBytes returns the per-step communication volumes of ZeRO-Offload
// (Figure 1): fp32 gradients NPU->CPU, fp16 weights CPU->NPU.
func (m Model) CommBytes() (gradBytes, weightBytes int64) {
	p := m.Params()
	return 4 * p, 2 * p
}
