package tenanalyzer

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// coverageCount walks all valid entries and counts how many cover each
// line address — exactly one owner is allowed per covered line.
func coverageCount(a *Analyzer) map[uint64]int {
	counts := map[uint64]int{}
	for i := range a.entries {
		e := &a.entries[i]
		if !e.valid {
			continue
		}
		for idx := 0; idx < e.Lines(); idx++ {
			counts[e.AddrOf(idx)]++
		}
	}
	return counts
}

// Property: no line is ever covered by two entries, across random
// combinations of streaming detection, tiled detection, hints, writes, and
// merges. Double coverage would let two different VNs claim one line.
func TestSingleOwnerProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, _ := newTestAnalyzer()
		for step := 0; step < 30; step++ {
			switch rng.Intn(5) {
			case 0:
				base := uint64(rng.Intn(64)) * 0x10000
				streamRead(a, base, 8+rng.Intn(64))
			case 1:
				base := uint64(rng.Intn(64)) * 0x10000
				streamWrite(a, base, 8+rng.Intn(32))
			case 2:
				base := uint64(rng.Intn(64)) * 0x10000
				a.InstallHint(base, (1+rng.Intn(32))*64, 64)
			case 3: // tiled reads
				base := uint64(rng.Intn(16)) * 0x100000
				gemmTileRead(a, base, 128, 0, 0, 8+rng.Intn(24), 32)
			case 4: // single scattered accesses
				addr := uint64(rng.Intn(1<<16)) * 64
				if rng.Intn(2) == 0 {
					a.Read(addr)
				} else {
					a.Write(addr)
				}
			}
			for addr, n := range coverageCount(a) {
				if n > 1 {
					t.Logf("seed %d step %d: line %#x covered %d times", seed, step, addr, n)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: merging preserves exact coverage — the union of covered lines
// before a merge equals the coverage after it.
func TestMergePreservesCoverageProperty(t *testing.T) {
	f := func(nA, nB uint8, gap uint8) bool {
		a, _ := newTestAnalyzer()
		la := 8 + int(nA)%56
		lb := 8 + int(nB)%56
		base := uint64(0x10000)
		// Detect two adjacent chunks (high first so extension cannot
		// absorb), write epochs to trigger a merge.
		streamRead(a, base+uint64(la*64), lb)
		streamRead(a, base, la)
		before := coverageCount(a)
		streamWrite(a, base+uint64(la*64), lb)
		streamWrite(a, base, la)
		after := coverageCount(a)
		if len(after) != len(before) {
			return false
		}
		for addr := range before {
			if after[addr] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
