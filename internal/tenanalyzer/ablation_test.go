package tenanalyzer

import "testing"

// The ablation knobs exist to demonstrate that each detection mechanism of
// Section 4.2 is load-bearing; these tests pin the expected degradations.

func TestAblationNoBoundaryExtension(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableBoundaryExt = true
	a := New(cfg, NewMapVNStore())
	missesAblated, _, _ := streamRead(a, 0x10000, 256)

	full := New(DefaultConfig(), NewMapVNStore())
	missesFull, _, _ := streamRead(full, 0x10000, 256)

	// Without extension, every line must be detected through the filter:
	// the detection pass pays ~64x more misses (full metadata cost each)
	// and churns one fragment creation per filter fill. (Merging still
	// consolidates the fragments afterwards — the mechanisms are
	// complementary — but cannot recover the miss cost.)
	if missesAblated <= 8*missesFull {
		t.Errorf("misses ablated=%d vs full=%d: extension should cut detection misses dramatically",
			missesAblated, missesFull)
	}
	if a.Stats().Creations <= 4*full.Stats().Creations {
		t.Errorf("creations ablated=%d vs full=%d: expected fragment churn without extension",
			a.Stats().Creations, full.Stats().Creations)
	}
}

func TestAblationNoMerging(t *testing.T) {
	mk := func(disable bool) *Analyzer {
		cfg := DefaultConfig()
		cfg.DisableMerging = disable
		a := New(cfg, NewMapVNStore())
		// Two chunks detected separately (high first), then epochs.
		streamRead(a, 0x10000+32*64, 32)
		streamRead(a, 0x10000, 32)
		streamWrite(a, 0x10000+32*64, 32)
		streamWrite(a, 0x10000, 32)
		return a
	}
	merged := mk(false)
	split := mk(true)
	if split.Stats().Merges != 0 {
		t.Error("merging not disabled")
	}
	if merged.Stats().Merges == 0 {
		t.Error("merging did not happen in the control run")
	}
	if split.LiveEntries() <= merged.LiveEntries() {
		t.Errorf("disabled merging should leave more entries: %d vs %d",
			split.LiveEntries(), merged.LiveEntries())
	}
}

func TestAblationMergeRatioGuard(t *testing.T) {
	// With an unbounded merge ratio, unrelated same-shape tensors merge
	// into a false 2D structure; the guard prevents it.
	loose := DefaultConfig()
	loose.MaxMergeRatio = 1 << 40
	a := New(loose, NewMapVNStore())
	streamRead(a, 0x100000, 4)
	streamRead(a, 0x900000, 4)
	mergedLoose := a.Stats().Merges

	tight := DefaultConfig()
	b := New(tight, NewMapVNStore())
	streamRead(b, 0x100000, 4)
	streamRead(b, 0x900000, 4)
	if b.Stats().Merges >= mergedLoose && mergedLoose > 0 {
		t.Error("ratio guard did not block the distant merge")
	}
	if mergedLoose == 0 {
		t.Skip("loose config did not merge either (filter timing); guard untestable here")
	}
}
