package tenanalyzer

// filterSlot is one Tensor Filter entry: it collects Meta Table misses and
// checks the tensor condition — same VN and a consistent stride between
// addresses (Figure 10). When the collection limit is reached the slot is
// promoted into a Meta Table entry.
type filterSlot struct {
	base     uint64
	lastAddr uint64
	stride   uint64 // 0 until the second address fixes it
	count    int
	vn       uint64
	lastUse  uint64
	valid    bool
}

// filter is the Tensor Filter: a small fully-associative array of slots
// (10 entries x 4 addresses in the paper's configuration, Section 6.5).
type filter struct {
	slots     []filterSlot
	depth     int
	maxStride uint64
}

func newFilter(entries, depth int, maxStride uint64) *filter {
	return &filter{
		slots:     make([]filterSlot, entries),
		depth:     depth,
		maxStride: maxStride,
	}
}

// observe feeds one missed (addr, vn) pair. If a slot completes the tensor
// condition it is returned for promotion and cleared.
func (f *filter) observe(addr, vn uint64, now uint64) (promoted *filterSlot) {
	// Try to continue an existing pattern.
	for i := range f.slots {
		s := &f.slots[i]
		if !s.valid || s.vn != vn {
			continue
		}
		switch {
		case s.stride != 0 && addr == s.lastAddr+s.stride:
			s.lastAddr = addr
			s.count++
			s.lastUse = now
			if s.count >= f.depth {
				out := *s
				s.valid = false
				return &out
			}
			return nil
		case s.stride == 0 && addr > s.base && addr-s.base <= f.maxStride:
			s.stride = addr - s.base
			s.lastAddr = addr
			s.count = 2
			s.lastUse = now
			if s.count >= f.depth {
				out := *s
				s.valid = false
				return &out
			}
			return nil
		}
	}

	// Start a new pattern in a free or least-recently-used slot.
	victim := 0
	for i := range f.slots {
		if !f.slots[i].valid {
			victim = i
			break
		}
		if f.slots[i].lastUse < f.slots[victim].lastUse {
			victim = i
		}
	}
	f.slots[victim] = filterSlot{
		base: addr, lastAddr: addr, count: 1, vn: vn, lastUse: now, valid: true,
	}
	return nil
}

// invalidateRange drops slots whose pattern falls inside [base, end): once
// a Meta Table entry covers the range, stale filter state must not promote
// an overlapping duplicate.
func (f *filter) invalidateRange(base, end uint64) {
	for i := range f.slots {
		s := &f.slots[i]
		if s.valid && s.base >= base && s.base < end {
			s.valid = false
		}
	}
}

// reset clears all slots.
func (f *filter) reset() {
	for i := range f.slots {
		f.slots[i].valid = false
	}
}
