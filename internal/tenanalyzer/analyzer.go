package tenanalyzer

import (
	"fmt"
	"sort"

	"tensortee/internal/sim"
)

// Outcome classifies a Meta Table lookup (Figures 10 and 12).
type Outcome int

const (
	// Miss: no entry covers the address; the access pays the full
	// cacheline-granularity metadata cost and feeds the Tensor Filter.
	Miss Outcome = iota
	// HitIn: the address is inside a live entry; the VN is on chip.
	HitIn
	// HitBoundary: the address extends an entry; the entry VN is used
	// speculatively while an off-chip confirmation runs in the background.
	HitBoundary
)

func (o Outcome) String() string {
	switch o {
	case Miss:
		return "miss"
	case HitIn:
		return "hit_in"
	case HitBoundary:
		return "hit_boundary"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// VNStore is the off-chip per-cacheline version-number array (plus its
// Merkle protection, charged by the MEE). The analyzer keeps every valid
// entry consistent with it; on any doubt the entry is invalidated and the
// store remains the truth.
type VNStore interface {
	// Get returns the VN of the line at addr.
	Get(addr uint64) uint64
	// Set overwrites the VN of the line at addr.
	Set(addr uint64, vn uint64)
}

// MapVNStore is a sparse VNStore for tests and functional runs.
type MapVNStore struct {
	m map[uint64]uint64
}

// NewMapVNStore returns an empty store (all VNs zero).
func NewMapVNStore() *MapVNStore { return &MapVNStore{m: make(map[uint64]uint64)} }

// Get implements VNStore.
func (s *MapVNStore) Get(addr uint64) uint64 { return s.m[addr] }

// Set implements VNStore.
func (s *MapVNStore) Set(addr uint64, vn uint64) { s.m[addr] = vn }

// Config sizes the analyzer's hardware structures.
type Config struct {
	Entries       int    // Meta Table entries (512, Section 6.5)
	FilterEntries int    // Tensor Filter entries (10)
	FilterDepth   int    // addresses collected per slot (4)
	LineBytes     int    // cacheline size (64)
	MaxStride     uint64 // innermost stride limit (10-bit field: 1024)
	// MergeBudget caps merge attempts triggered by one event, reflecting
	// the limited merge bandwidth of the hardware ("attempts to merge a few
	// recently updated entries when creating new entries").
	MergeBudget int
	// MaxMergeRatio bounds how far apart (relative to their span) two
	// same-shape entries may sit and still be merged into a new dimension.
	// It is the "inferred dimension as constraint" accuracy guard of
	// Figure 11: tile rows of one tensor sit within a few row-strides of
	// each other, while unrelated tensors are megabytes apart.
	MaxMergeRatio uint64
	// DisableMerging turns off entry merging (ablation: without it,
	// per-core chunk entries never consolidate, Figure 11's motivation).
	DisableMerging bool
	// DisableBoundaryExt turns off hit-boundary extension (ablation: the
	// filter alone then detects fixed 4-line fragments, so coverage never
	// completes — the "gradual coverage" of Figure 10 is load-bearing).
	DisableBoundaryExt bool
}

// DefaultConfig returns the paper's Section 6.5 sizing.
func DefaultConfig() Config {
	return Config{
		Entries:       512,
		FilterEntries: 10,
		FilterDepth:   4,
		LineBytes:     64,
		MaxStride:     1024,
		MergeBudget:   2,
		MaxMergeRatio: 256,
	}
}

// Stats counts analyzer activity. Hit rates over (HitIn + HitBoundary +
// Miss) reproduce Figure 18.
type Stats struct {
	HitIn       uint64
	HitBoundary uint64
	Miss        uint64
	Creations   uint64
	Extensions  uint64
	Merges      uint64
	Evictions   uint64
	Invalidates uint64
	// InvalAssert1 counts invalidations from a line being rewritten twice
	// within one epoch (mixed update frequencies, Figure 12 corner cases).
	InvalAssert1 uint64
	HintInstall  uint64
}

// Accesses returns total lookups.
func (s Stats) Accesses() uint64 { return s.HitIn + s.HitBoundary + s.Miss }

// HitAllRate returns (hit_in + hit_boundary)/accesses (Figure 18 hit_all).
func (s Stats) HitAllRate() float64 {
	a := s.Accesses()
	if a == 0 {
		return 0
	}
	return float64(s.HitIn+s.HitBoundary) / float64(a)
}

// HitInRate returns hit_in/accesses.
func (s Stats) HitInRate() float64 {
	a := s.Accesses()
	if a == 0 {
		return 0
	}
	return float64(s.HitIn) / float64(a)
}

// HitBoundaryRate returns hit_boundary/accesses.
func (s Stats) HitBoundaryRate() float64 {
	a := s.Accesses()
	if a == 0 {
		return 0
	}
	return float64(s.HitBoundary) / float64(a)
}

// Analyzer is the TenAnalyzer unit: Meta Table + Tensor Filter.
type Analyzer struct {
	cfg    Config
	store  VNStore
	filter *filter

	entries []Entry
	free    []int // free entry slots

	// Lookup index: entry ids sorted by base, with a running prefix
	// maximum of bounding-box ends so containment walks terminate early.
	sorted       []int
	prefixMaxEnd []uint64
	indexDirty   bool

	// boundary address -> entry id for O(1) hit-boundary checks. An
	// open-addressed table rather than a Go map: the working set is
	// bounded by the live entries (<= 512), every boundary extension
	// deletes and reinserts a key, and every detection-phase miss
	// probes — the custom table keeps all of that in a few hot cache
	// lines.
	boundaries boundaryMap

	// winTab is the run-window memo: a small direct-mapped, address-
	// indexed table mapping a line address to the Meta Table entry owning
	// its innermost run, with the run's precomputed [lo, hi) extent and
	// the canonical index of its first line. A window hit answers the
	// whole lookup in O(1) — no Contains walk, no binary search — which
	// is what breaks the per-line lookup floor for streaming spans that
	// revisit the same runs line after line. Windows are validated
	// against shapeGen: any entry drop, merge, or table restore bumps it
	// and invalidates every window at once (extensions grow coverage
	// without moving canonical indices, so they need no bump). Exactness
	// rides on the same uniqueness argument as the rings: valid entries
	// never overlap, so a still-valid window can only name the entry the
	// search would find, with the index Contains would compute.
	winTab    [winTabSlots]entryWindow
	shapeGen  uint64
	lineShift int // Pow2Shift(LineBytes); <0 disables the window memo

	// missTab is winTab's negative counterpart: [lo, hi) intervals known
	// to contain no covered line of any entry, installed when a full
	// lookup concludes a miss with addr outside every bounding box (hi
	// is then the next entry base). Validated against missGen, which
	// bumps on anything that can only ADD coverage — promotion, hints,
	// boundary extensions, restores. Drops and merges never add coverage
	// (a merged entry covers exactly the union of its parents), so they
	// leave miss windows valid. This is what keeps the detection-phase
	// write stream — which lands in the uncovered gaps between shifted
	// per-core chunks — off the binary search.
	missTab [winTabSlots]missWindow
	missGen uint64

	// memoRead/memoWrite/memoMisc memoize the entry ids of recent
	// successful lookups per dataflow (move-to-front rings, -1 = empty).
	// Streaming accesses hit the same entry for whole bursts and rotate
	// across a handful of tensors (w/g/m/v of the current parameter
	// group), so probing four recent entries before the binary search
	// absorbs both the bursts and the phase switches; the read and write
	// streams get separate rings because LLC writebacks trail the read
	// frontier in different tensors and would otherwise thrash a shared
	// slot every line.
	// Exactness: valid entries never overlap (creation, hints, extensions
	// and merges all reject covered lines), so exact containment has a
	// unique owner and a memo can only find the same entry the search
	// would. A stale id is harmless: either the slot is invalid (skipped)
	// or it holds some other valid entry whose containment check simply
	// fails (or succeeds, in which case it IS the owner).
	memoRead, memoWrite, memoMisc lookupMemo

	// Recently created/completed entries: merge candidates (small ring).
	recent []int

	clock uint64
	stats Stats
}

// New builds an analyzer over the given off-chip VN store.
func New(cfg Config, store VNStore) *Analyzer {
	if cfg.Entries <= 0 || cfg.FilterEntries <= 0 || cfg.FilterDepth < 2 {
		panic(fmt.Sprintf("tenanalyzer: bad config %+v", cfg))
	}
	if cfg.LineBytes <= 0 {
		cfg.LineBytes = 64
	}
	if cfg.MaxStride == 0 {
		cfg.MaxStride = 1024
	}
	if cfg.MergeBudget <= 0 {
		cfg.MergeBudget = 2
	}
	if cfg.MaxMergeRatio == 0 {
		cfg.MaxMergeRatio = 256
	}
	a := &Analyzer{
		cfg:        cfg,
		store:      store,
		filter:     newFilter(cfg.FilterEntries, cfg.FilterDepth, cfg.MaxStride),
		entries:    make([]Entry, cfg.Entries),
		boundaries: newBoundaryMap(),
		lineShift:  sim.Pow2Shift(cfg.LineBytes),
		memoRead:   emptyMemo,
		memoWrite:  emptyMemo,
		memoMisc:   emptyMemo,
	}
	for i := cfg.Entries - 1; i >= 0; i-- {
		a.free = append(a.free, i)
	}
	return a
}

// Stats returns cumulative counters.
func (a *Analyzer) Stats() Stats { return a.stats }

// ResetStats zeroes the counters (table contents are preserved) — used for
// per-iteration hit-rate series (Figure 18).
func (a *Analyzer) ResetStats() { a.stats = Stats{} }

// LiveEntries reports the number of valid Meta Table entries.
func (a *Analyzer) LiveEntries() int { return a.cfg.Entries - len(a.free) }

// lineAddr truncates to the line base.
func (a *Analyzer) lineAddr(addr uint64) uint64 {
	return addr &^ uint64(a.cfg.LineBytes-1)
}

// --- lookup ---------------------------------------------------------------

func (a *Analyzer) rebuildIndex() {
	a.sorted = a.sorted[:0]
	for i := range a.entries {
		if a.entries[i].valid {
			a.sorted = append(a.sorted, i)
		}
	}
	sort.Slice(a.sorted, func(x, y int) bool {
		return a.entries[a.sorted[x]].Base < a.entries[a.sorted[y]].Base
	})
	a.prefixMaxEnd = a.prefixMaxEnd[:0]
	var maxEnd uint64
	for _, id := range a.sorted {
		if e := a.entries[id].BoundEnd(); e > maxEnd {
			maxEnd = e
		}
		a.prefixMaxEnd = append(a.prefixMaxEnd, maxEnd)
	}
	a.indexDirty = false
}

// fixPrefix recomputes the running prefix maximum from position p on.
func (a *Analyzer) fixPrefix(p int) {
	var run uint64
	if p > 0 {
		run = a.prefixMaxEnd[p-1]
	}
	for i := p; i < len(a.sorted); i++ {
		if e := a.entries[a.sorted[i]].BoundEnd(); e > run {
			run = e
		}
		a.prefixMaxEnd[i] = run
	}
}

// insertID adds one entry to the sorted index in place — detection
// promotes entries at the streaming frontier, so the insertion point is
// near the end and the suffix fix is O(1) amortized, replacing the full
// re-sort the dirty flag used to force on the next lookup. A dirty index
// stays dirty (the rebuild will see the entry).
func (a *Analyzer) insertID(id int) {
	if a.indexDirty {
		return
	}
	base := a.entries[id].Base
	n := len(a.sorted)
	p := sort.Search(n, func(i int) bool { return a.entries[a.sorted[i]].Base > base })
	a.sorted = append(a.sorted, 0)
	copy(a.sorted[p+1:], a.sorted[p:])
	a.sorted[p] = id
	a.prefixMaxEnd = append(a.prefixMaxEnd, 0)
	a.fixPrefix(p)
}

// removeID drops one entry from the sorted index in place (the entry's
// Base must still be readable; callers remove before recycling).
func (a *Analyzer) removeID(id int) {
	if a.indexDirty {
		return
	}
	base := a.entries[id].Base
	n := len(a.sorted)
	p := sort.Search(n, func(i int) bool { return a.entries[a.sorted[i]].Base >= base })
	for p < n && a.sorted[p] != id {
		p++
	}
	if p == n {
		a.indexDirty = true // not found: fall back to a rebuild
		return
	}
	a.sorted = append(a.sorted[:p], a.sorted[p+1:]...)
	a.prefixMaxEnd = a.prefixMaxEnd[:n-1]
	a.fixPrefix(p)
}

// lookup finds the entry containing addr (exact line containment) and its
// canonical line index.
// lookupMemo is a tiny move-to-front ring of entry ids (-1 = empty).
type lookupMemo [4]int

var emptyMemo = lookupMemo{-1, -1, -1, -1}

// note records a hit, moving id to the front.
func (m *lookupMemo) note(id int) {
	if m[0] == id {
		return
	}
	if m[1] == id {
		m[0], m[1] = id, m[0]
		return
	}
	if m[2] == id {
		m[0], m[1], m[2] = id, m[0], m[1]
		return
	}
	m[0], m[1], m[2], m[3] = id, m[0], m[1], m[2]
}

// lookup resolves addr through the misc memo — call sites with a
// dataflow-specific access pattern use lookupHint directly.
func (a *Analyzer) lookup(addr uint64) (id, lineIdx int, ok bool) {
	return a.lookupHint(addr, &a.memoMisc)
}

const winTabSlots = 256

// entryWindow caches one innermost run of one entry: any line-aligned
// address in [lo, hi) belongs to entry id at canonical index
// idx0 + (addr-lo)/LineBytes, as long as gen still matches shapeGen.
type entryWindow struct {
	lo, hi uint64
	id     int
	idx0   int
	gen    uint64
}

// winSlot hashes a line address to its window slot. 64 KB granularity
// keeps a tensor's bursts on few slots while separating the w/g/m/v
// streams that interleave per burst.
func winSlot(addr uint64) int {
	return int(((addr >> 16) * 0x9E3779B97F4A7C15) >> 56 & (winTabSlots - 1))
}

// missWindow is a cached uncovered interval: no entry contains any line
// in [lo, hi) while gen still matches missGen.
type missWindow struct {
	lo, hi uint64
	gen    uint64
}

// noteWindow installs the innermost run containing (addr -> id, lineIdx)
// into the window memo. Only line-granular innermost dimensions qualify
// (strided runs leave gaps a plain range check cannot represent).
func (a *Analyzer) noteWindow(id int, addr uint64, lineIdx int) {
	if a.lineShift < 0 {
		return
	}
	e := &a.entries[id]
	d0 := e.Dims[0]
	if d0.Stride != uint64(a.cfg.LineBytes) {
		return
	}
	r := lineIdx % d0.Count
	lo := addr - uint64(r)<<uint(a.lineShift)
	a.winTab[winSlot(addr)] = entryWindow{
		lo:   lo,
		hi:   lo + uint64(d0.Count)<<uint(a.lineShift),
		id:   id,
		idx0: lineIdx - r,
		gen:  a.shapeGen,
	}
}

func (a *Analyzer) lookupHint(addr uint64, memo *lookupMemo) (id, lineIdx int, ok bool) {
	// O(1) fast path: a still-valid run window answers without Contains.
	if w := &a.winTab[winSlot(addr)]; w.gen == a.shapeGen && addr >= w.lo && addr < w.hi {
		return w.id, w.idx0 + int((addr-w.lo)>>uint(a.lineShift)), true
	}
	// O(1) negative answer: addr sits in a still-valid uncovered window.
	if w := &a.missTab[winSlot(addr)]; w.gen == a.missGen && addr >= w.lo && addr < w.hi {
		return 0, 0, false
	}
	// Entries this dataflow matched recently.
	for _, h := range memo {
		if h < 0 {
			break // rings fill front-first: the rest is empty too
		}
		if e := &a.entries[h]; e.valid {
			if idx, in := e.Contains(addr); in {
				memo.note(h)
				a.noteWindow(h, addr, idx)
				return h, idx, true
			}
		}
	}
	if a.indexDirty {
		a.rebuildIndex()
	}
	n := len(a.sorted)
	if n == 0 {
		return 0, 0, false
	}
	// O(1) miss rejects: prefixMaxEnd[n-1] is the maximum bounding end
	// over all valid entries, sorted[0] the minimum base. An address at
	// the streaming frontier (the common detection-phase miss) is beyond
	// every bounding box and never needs the binary search.
	if addr >= a.prefixMaxEnd[n-1] || addr < a.entries[a.sorted[0]].Base {
		return 0, 0, false
	}
	// First entry with Base > addr; candidates are to the left.
	p := sort.Search(n, func(i int) bool {
		return a.entries[a.sorted[i]].Base > addr
	})
	boxHit := false
	for i := p - 1; i >= 0; i-- {
		if a.prefixMaxEnd[i] <= addr {
			break // nothing further left can reach addr
		}
		e := &a.entries[a.sorted[i]]
		if idx, in := e.Contains(addr); in {
			memo.note(a.sorted[i])
			a.noteWindow(a.sorted[i], addr, idx)
			return a.sorted[i], idx, true
		}
		if addr < e.BoundEnd() {
			// Inside a strided entry's box but between its lines: the
			// neighboring addresses may be covered, so no window.
			boxHit = true
		}
	}
	if !boxHit {
		// addr is outside every bounding box: every entry left of the
		// insertion point ends at or before addr (walked or pruned via
		// the prefix max), and entries from p on start after it — so
		// [addr, nextBase) contains no covered line until something adds
		// coverage (missGen bumps).
		hi := ^uint64(0)
		if p < n {
			hi = a.entries[a.sorted[p]].Base
		}
		a.missTab[winSlot(addr)] = missWindow{lo: addr, hi: hi, gen: a.missGen}
	}
	return 0, 0, false
}

// noteEndGrowth updates the prefix-max index after an extension (base
// order unchanged, only one bounding end grew).
func (a *Analyzer) noteEndGrowth(id int) {
	a.missGen++ // the extension adds coverage: drop cached miss windows
	if a.indexDirty {
		return
	}
	end := a.entries[id].BoundEnd()
	// Find position of id in sorted (binary search by base, then scan equal
	// bases — rare).
	n := len(a.sorted)
	base := a.entries[id].Base
	p := sort.Search(n, func(i int) bool {
		return a.entries[a.sorted[i]].Base >= base
	})
	for p < n && a.sorted[p] != id {
		p++
	}
	for i := p; i < n && a.prefixMaxEnd[i] < end; i++ {
		a.prefixMaxEnd[i] = end
	}
}

// overlapsExisting reports whether a candidate range [base, end) would
// overlap any valid entry's bounding box. Exact for contiguous candidates;
// strided candidates use coveredByExisting per line instead.
func (a *Analyzer) overlapsExisting(base, end uint64) bool {
	if a.indexDirty {
		a.rebuildIndex()
	}
	n := len(a.sorted)
	p := sort.Search(n, func(i int) bool {
		return a.entries[a.sorted[i]].Base >= end
	})
	for i := p - 1; i >= 0; i-- {
		if a.prefixMaxEnd[i] <= base {
			break
		}
		e := &a.entries[a.sorted[i]]
		if e.Base < end && base < e.BoundEnd() {
			return true
		}
	}
	return false
}

// coveredByExisting reports whether any of the given lattice lines is
// already owned by a valid entry (exact containment, so interleaved tiles
// of the same matrix do not falsely collide on bounding boxes).
func (a *Analyzer) coveredByExisting(base, stride uint64, count int) bool {
	for i := 0; i < count; i++ {
		if _, _, ok := a.lookup(base + uint64(i)*stride); ok {
			return true
		}
	}
	return false
}

// --- read dataflow (Figure 10) ---------------------------------------------

// Read processes a read request and returns the lookup outcome plus the VN
// the MEE must use for decryption. For misses the VN comes from the
// off-chip store (that fetch is the cost the caller charges).
func (a *Analyzer) Read(addr uint64) (Outcome, uint64) {
	addr = a.lineAddr(addr)
	a.clock++

	if id, lineIdx, ok := a.lookupHint(addr, &a.memoRead); ok {
		e := &a.entries[id]
		e.lastUse = a.clock
		a.stats.HitIn++
		return HitIn, e.EffectiveVN(lineIdx)
	}

	if id, ok := a.boundaries.get(addr); ok && !a.cfg.DisableBoundaryExt {
		e := &a.entries[id]
		// Extension is allowed mid-epoch (UF set): the new run joins with
		// its bitmap bits unflipped, so its effective VN is the entry VN,
		// which the off-chip confirmation below checks. Without this, the
		// writeback stream trailing a streaming read (Adam) would pin UF
		// and shatter detection into fragments.
		if e.valid && e.BoundaryAddr() == addr {
			// Speculatively use the entry VN; confirm against the off-chip
			// VN (the background DRAM access of Figure 10) and extend on
			// success — "gradual coverage of tensor detection". For
			// multi-dimensional entries the extension adds a whole inner
			// run, so every line of the run must confirm, not just the
			// first (the VN lines of a run are adjacent, so this is still
			// one metadata burst in hardware).
			a.stats.HitBoundary++
			e.lastUse = a.clock
			offchip := a.store.Get(addr)
			if offchip == e.VN && a.runUniform(e) {
				a.boundaries.del(addr)
				e.Extend()
				a.stats.Extensions++
				a.boundaries.set(e.BoundaryAddr(), id)
				a.noteEndGrowth(id)
				a.filter.invalidateRange(e.Base, e.BoundEnd())
			}
			return HitBoundary, offchip
		}
		a.boundaries.del(addr) // stale
	}

	// Miss: VN from DRAM; request feeds the Tensor Filter.
	a.stats.Miss++
	vn := a.store.Get(addr)
	if s := a.filter.observe(addr, vn, a.clock); s != nil {
		a.promote(s)
	}
	return Miss, vn
}

// --- span classification (the run-length fast path) -------------------------

// contiguousWithin returns how many of the n consecutive lines starting
// at the entry's canonical index lineIdx stay inside the entry at
// line-granular stride: the span prefix for which lookup would keep
// answering (id, lineIdx+i). Zero-cost for strided entries (only the
// first line is provably covered).
func (a *Analyzer) contiguousWithin(e *Entry, lineIdx int, n int) int {
	d0 := e.Dims[0]
	if d0.Stride != uint64(a.cfg.LineBytes) {
		return 1 // strided innermost dim: consecutive addresses leave the entry
	}
	// Remaining lines of the innermost run the index sits in. Outer
	// dimensions have stride > inner reach (validDims), so the next
	// consecutive address after an inner run's end is not covered.
	left := d0.Count - lineIdx%d0.Count
	if len(e.Dims) == 1 {
		left = e.Lines() - lineIdx
	}
	if left > n {
		left = n
	}
	return left
}

// ReadRun classifies a span of n consecutive lines starting at addr (the
// read dataflow of Figure 10, span-granular). It returns the outcome
// shared by the first consumed lines (1 <= consumed <= n) and applies
// exactly the state mutations of consumed sequential Read calls:
//
//   - HitIn spans inside one Meta Table entry collapse to a single
//     lookup: the clock, the hit counters and the entry's LRU stamp
//     advance by the whole span at once.
//   - Frontier misses (addr beyond every entry's bounding box) collapse
//     likewise: n filter observations at one classification.
//   - Everything else — boundary extensions, in-range misses — consumes
//     one line through the per-line dataflow, the fallback the callers
//     then re-enter for the rest of the span.
//
// Per-line VNs are not returned: span callers are timing models, and the
// per-line Read remains the source of decryption VNs.
func (a *Analyzer) ReadRun(addr uint64, n int) (Outcome, int) {
	addr = a.lineAddr(addr)
	if n > 1 {
		if id, lineIdx, ok := a.lookupHint(addr, &a.memoRead); ok {
			e := &a.entries[id]
			k := a.contiguousWithin(e, lineIdx, n)
			a.clock += uint64(k)
			e.lastUse = a.clock
			a.stats.HitIn += uint64(k)
			return HitIn, k
		}
		if k := a.frontierMissRun(addr, n); k == n {
			// The whole span misses at classification time: feed the
			// filter line by line (its observations are the point of a
			// miss), but stop right after a promotion — the new entry
			// registers a boundary at the very next line, which the
			// per-line dataflow would see as a hit-boundary, so the
			// remainder of the span must be reclassified.
			consumed := 0
			for consumed < n {
				la := addr + uint64(consumed)*uint64(a.cfg.LineBytes)
				a.clock++
				a.stats.Miss++
				vn := a.store.Get(la)
				s := a.filter.observe(la, vn, a.clock)
				consumed++
				if s != nil {
					a.promote(s)
					break
				}
			}
			return Miss, consumed
		}
	}
	o, _ := a.Read(addr)
	return o, 1
}

// frontierMissRun reports n when every line of the span provably misses
// — the span starts at or beyond every valid entry's bounding end and no
// boundary extension is registered inside it — and 0 otherwise.
// Ascending addresses keep the property for the whole span.
func (a *Analyzer) frontierMissRun(addr uint64, n int) int {
	if a.indexDirty {
		a.rebuildIndex()
	}
	if ln := len(a.sorted); ln > 0 && addr < a.prefixMaxEnd[ln-1] {
		return 0
	}
	if !a.cfg.DisableBoundaryExt {
		for i := 0; i < n; i++ {
			if _, ok := a.boundaries.get(addr + uint64(i)*uint64(a.cfg.LineBytes)); ok {
				return 0
			}
		}
	}
	return n
}

// WriteRun classifies a span of n consecutive line writes (the update
// dataflow of Figure 12, span-granular), returning the outcome shared by
// the first consumed lines and applying exactly the state mutations of
// consumed sequential Write calls. Spans collapse when they stay inside
// one entry's innermost run with every bitmap bit still unflipped and do
// not complete the epoch, or when every line provably misses; epoch
// completions, Assert1 violations, and in-range misses fall back to the
// per-line dataflow one line at a time.
func (a *Analyzer) WriteRun(addr uint64, n int) (Outcome, int) {
	addr = a.lineAddr(addr)
	if n <= 1 {
		o, _ := a.Write(addr)
		return o, 1
	}
	id, lineIdx, ok := a.lookupHint(addr, &a.memoWrite)
	if !ok {
		if k := a.frontierMissRun(addr, n); k == n {
			a.clock += uint64(n)
			a.stats.Miss += uint64(n)
			for i := 0; i < n; i++ {
				la := addr + uint64(i)*uint64(a.cfg.LineBytes)
				a.store.Set(la, a.store.Get(la)+1)
			}
			return Miss, n
		}
		o, _ := a.Write(addr)
		return o, 1
	}
	e := &a.entries[id]
	k := a.contiguousWithin(e, lineIdx, n)
	// Stop before an epoch completion or an already-flipped bit (Assert1):
	// those lines take the per-line dataflow.
	lines := e.Lines()
	uniform := 0
	for uniform < k {
		if e.bitmap[lineIdx+uniform] != e.BS || e.flipped+uniform+1 == lines {
			break
		}
		uniform++
	}
	if uniform == 0 {
		o, _ := a.Write(addr)
		return o, 1
	}
	a.clock += uint64(uniform)
	e.lastUse = a.clock
	a.stats.HitIn += uint64(uniform)
	if !e.UF {
		e.UF = true
	}
	newVN := e.VN + 1
	for i := 0; i < uniform; i++ {
		e.bitmap[lineIdx+i] = !e.BS
		a.store.Set(addr+uint64(i)*uint64(a.cfg.LineBytes), newVN)
	}
	e.flipped += uniform
	return HitIn, uniform
}

// runUniform confirms that every line the next extension would add shares
// the entry's VN and is not owned by another entry.
func (a *Analyzer) runUniform(e *Entry) bool {
	if len(e.Dims) == 1 {
		// 1D streaming entries extend one line at a time — the dominant
		// detection-phase case; avoid RunAddrs' per-extension allocation.
		addr := e.Base + uint64(e.Dims[0].Count)*e.Dims[0].Stride
		if a.store.Get(addr) != e.VN {
			return false
		}
		_, _, owned := a.lookup(addr)
		return !owned
	}
	for _, addr := range e.RunAddrs() {
		if a.store.Get(addr) != e.VN {
			return false
		}
		if id, _, ok := a.lookup(addr); ok {
			_ = id
			return false
		}
	}
	return true
}

// --- write dataflow (Figure 12) ---------------------------------------------

// Write processes a write (an LLC writeback reaching the memory
// controller) and returns the outcome plus the VN the MEE must use to
// encrypt the line (the post-update VN for covered lines).
//
// The off-chip per-line VN is always refreshed so the store stays the
// truth; for covered lines this refresh is background traffic (charged as
// such by the MEE layer).
func (a *Analyzer) Write(addr uint64) (Outcome, uint64) {
	addr = a.lineAddr(addr)
	a.clock++

	id, lineIdx, ok := a.lookupHint(addr, &a.memoWrite)
	if !ok {
		// Miss: only the off-chip VN update (Figure 12 right).
		a.stats.Miss++
		vn := a.store.Get(addr) + 1
		a.store.Set(addr, vn)
		return Miss, vn
	}

	e := &a.entries[id]
	e.lastUse = a.clock
	lines := e.Lines()

	// Hit edge (first/last address) and hit in both count as Meta Table
	// hits in the Figure-18 hit-rate series.
	a.stats.HitIn++

	// Assert1: the line must not have been updated yet in this epoch. A
	// violation means the entry mixes tensors with different update
	// frequencies (Figure 12 corner cases) — invalidate and fall back.
	if e.bitmap[lineIdx] != e.BS {
		a.stats.InvalAssert1++
		a.invalidate(id)
		vn := a.store.Get(addr) + 1
		a.store.Set(addr, vn)
		return HitIn, vn
	}

	if !e.UF {
		// Start updating (hit edge "start" or any first write of an epoch;
		// tiled writes may begin mid-tensor).
		e.UF = true
	}
	e.bitmap[lineIdx] = !e.BS
	e.flipped++
	newVN := e.VN + 1
	a.store.Set(addr, newVN)

	// Finish updating: the epoch completes when every covered line has
	// been rewritten exactly once. Figure 12 phrases the completion check
	// at the final-address arrival; tracking the flipped counter instead
	// makes the check order-insensitive, which matters because LLC
	// writebacks from parallel cores reach the controller slightly out of
	// program order. Assert2's protective role (several tensors with
	// different update frequencies sharing an entry) is covered by
	// Assert1 above, which fires on the second epoch's first overlap.
	if e.flipped == lines {
		e.VN = newVN
		e.BS = !e.BS
		e.UF = false
		e.flipped = 0
		a.noteRecent(id)
		a.mergeAround(id)
	}
	return HitIn, newVN
}

// --- entry lifecycle --------------------------------------------------------

// promote turns a completed filter slot into a Meta Table entry.
func (a *Analyzer) promote(s *filterSlot) {
	if a.coveredByExisting(s.base, s.stride, s.count) {
		return
	}
	// Re-check the tensor condition against the store: all collected lines
	// must still share the VN (they were checked one by one on miss, but
	// an intervening write may have changed one).
	for i := 0; i < s.count; i++ {
		if a.store.Get(s.base+uint64(i)*s.stride) != s.vn {
			return
		}
	}
	id := a.alloc()
	a.entries[id] = Entry{
		Base:    s.base,
		Dims:    []Dim{{Count: s.count, Stride: s.stride}},
		VN:      s.vn,
		bitmap:  make([]bool, s.count),
		lastUse: a.clock,
		valid:   true,
	}
	a.stats.Creations++
	a.boundaries.set(a.entries[id].BoundaryAddr(), id)
	a.insertID(id)
	a.missGen++ // new coverage: drop cached miss windows
	a.noteRecent(id)
	a.mergeAround(id)
}

// alloc returns a free entry slot, evicting the LRU entry if needed.
func (a *Analyzer) alloc() int {
	if n := len(a.free); n > 0 {
		id := a.free[n-1]
		a.free = a.free[:n-1]
		return id
	}
	victim := -1
	for i := range a.entries {
		e := &a.entries[i]
		if !e.valid {
			continue
		}
		if victim == -1 || e.lastUse < a.entries[victim].lastUse {
			victim = i
		}
	}
	a.stats.Evictions++
	a.dropEntry(victim)
	id := a.free[len(a.free)-1]
	a.free = a.free[:len(a.free)-1]
	return id
}

// invalidate drops an entry after an assert violation. The off-chip VNs
// remain correct, so subsequent accesses simply fall back.
func (a *Analyzer) invalidate(id int) {
	a.stats.Invalidates++
	a.dropEntry(id)
}

func (a *Analyzer) dropEntry(id int) {
	e := &a.entries[id]
	if !e.valid {
		return
	}
	a.boundaries.del(e.BoundaryAddr())
	a.removeID(id)
	e.valid = false
	e.bitmap = nil
	a.free = append(a.free, id)
	// Invalidate every run window at once: the dropped slot may be
	// reused, and a merge replacing the surviving entry's shape always
	// drops its partner through here first.
	a.shapeGen++
	for i, r := range a.recent {
		if r == id {
			a.recent = append(a.recent[:i], a.recent[i+1:]...)
			break
		}
	}
}

// noteRecent records a merge candidate (bounded ring).
func (a *Analyzer) noteRecent(id int) {
	const ringSize = 8
	for i, r := range a.recent {
		if r == id {
			a.recent = append(a.recent[:i], a.recent[i+1:]...)
			break
		}
	}
	a.recent = append(a.recent, id)
	if len(a.recent) > ringSize {
		a.recent = a.recent[1:]
	}
}

// --- merging (Figure 11) ------------------------------------------------------

// mergeAround tries to merge entry id with recently updated entries, up to
// the configured merge budget. Merging requires matching tile dims, stride,
// and VN, with both entries quiescent (UF clear); directions follow
// Figure 11 (2 for 1D, 4 for 2D, 6 for 3D).
func (a *Analyzer) mergeAround(id int) {
	if a.cfg.DisableMerging {
		return
	}
	budget := a.cfg.MergeBudget
	for budget > 0 {
		merged := false
		for i := len(a.recent) - 1; i >= 0; i-- {
			other := a.recent[i]
			if other == id || !a.entries[other].valid || !a.entries[id].valid {
				continue
			}
			if a.tryMerge(id, other) {
				a.stats.Merges++
				budget--
				merged = true
				break
			}
		}
		if !merged {
			return
		}
	}
}

// cloneDims copies a dim slice.
func cloneDims(d []Dim) []Dim { return append([]Dim(nil), d...) }

// validDims checks that a dim list admits unambiguous greedy address
// decomposition: strides strictly ascending and, at every level, the reach
// of all inner dimensions stays below the level's stride.
func validDims(dims []Dim) bool {
	if len(dims) == 0 || len(dims) > MaxDims {
		return false
	}
	var reach uint64
	for i, d := range dims {
		if d.Count <= 0 || d.Stride == 0 {
			return false
		}
		if i > 0 {
			if d.Stride <= dims[i-1].Stride {
				return false
			}
			if reach >= d.Stride {
				return false
			}
		}
		reach += uint64(d.Count-1) * d.Stride
	}
	return true
}

// insertDim places nd into dims keeping strides ascending, returning false
// if the result is invalid.
func insertDim(dims []Dim, nd Dim) ([]Dim, bool) {
	if len(dims) >= MaxDims {
		return nil, false
	}
	out := make([]Dim, 0, len(dims)+1)
	placed := false
	for _, d := range dims {
		if !placed && nd.Stride < d.Stride {
			out = append(out, nd)
			placed = true
		}
		out = append(out, d)
	}
	if !placed {
		out = append(out, nd)
	}
	if !validDims(out) {
		return nil, false
	}
	return out, true
}

// tryMerge merges entries x and y when their line lattices compose into one
// valid lattice (Figure 11: "merging in multiple directions ... requires
// that the tile dims, stride, and VN match"). Returns whether it happened.
func (a *Analyzer) tryMerge(x, y int) bool {
	ea, eb := &a.entries[x], &a.entries[y]
	if !ea.valid || !eb.valid || ea.UF || eb.UF || ea.VN != eb.VN {
		return false
	}
	loID, hiID := x, y
	if eb.Base < ea.Base {
		loID, hiID = y, x
	}
	lo, hi := &a.entries[loID], &a.entries[hiID]
	d := hi.Base - lo.Base
	if d == 0 {
		return false
	}

	loDims := cloneDims(lo.Dims)
	hiDims := cloneDims(hi.Dims)
	// Rank normalization: a lower-rank entry that matches the other's inner
	// dims is one slice of its outer dimension (a new tile row joining a
	// growing tile, Figure 11b).
	switch {
	case len(hiDims) == len(loDims)-1 && sameShape(hiDims, loDims[:len(loDims)-1]):
		hiDims = append(hiDims, Dim{Count: 1, Stride: loDims[len(loDims)-1].Stride})
	case len(loDims) == len(hiDims)-1 && sameShape(loDims, hiDims[:len(hiDims)-1]):
		loDims = append(loDims, Dim{Count: 1, Stride: hiDims[len(hiDims)-1].Stride})
	}
	if len(loDims) != len(hiDims) {
		return false
	}

	// Shapes must agree everywhere except at most one dimension's count.
	diff := -1
	for i := range loDims {
		if loDims[i].Stride != hiDims[i].Stride {
			return false
		}
		if loDims[i].Count != hiDims[i].Count {
			if diff != -1 {
				return false
			}
			diff = i
		}
	}

	if diff >= 0 {
		// Extend dimension diff: hi must start exactly where lo's runs end
		// along that dimension.
		j := diff
		if d != uint64(loDims[j].Count)*loDims[j].Stride {
			return false
		}
		merged := cloneDims(loDims)
		merged[j].Count = loDims[j].Count + hiDims[j].Count
		if !validDims(merged) {
			return false
		}
		a.commitMerge(loID, hiID, merged)
		return true
	}

	// Identical shapes: either double an existing dimension or create a new
	// one at offset d. Union(lo, lo+d) is exactly lo ∪ hi, so no phantom
	// coverage can appear.
	for j := range loDims {
		if d == uint64(loDims[j].Count)*loDims[j].Stride {
			merged := cloneDims(loDims)
			merged[j].Count *= 2
			if validDims(merged) {
				a.commitMerge(loID, hiID, merged)
				return true
			}
		}
	}
	if d/lo.Span() <= a.cfg.MaxMergeRatio {
		if merged, ok := insertDim(loDims, Dim{Count: 2, Stride: d}); ok {
			a.commitMerge(loID, hiID, merged)
			return true
		}
	}
	return false
}

// commitMerge replaces lo with the merged shape and drops hi. The merged
// MAC is the XOR of both tensor MACs — exactly why the XOR construction is
// used (Section 4.3).
func (a *Analyzer) commitMerge(loID, hiID int, dims []Dim) {
	lo, hi := &a.entries[loID], &a.entries[hiID]
	merged := Entry{
		Base:    lo.Base,
		Dims:    dims,
		VN:      lo.VN,
		MAC:     lo.MAC ^ hi.MAC,
		lastUse: a.clock,
		valid:   true,
	}
	merged.bitmap = make([]bool, merged.Lines())

	a.boundaries.del(lo.BoundaryAddr())
	a.boundaries.del(hi.BoundaryAddr())
	a.dropEntry(hiID)
	a.entries[loID] = merged
	// Same base, grown bounding end: lo keeps its index position and the
	// prefix maxima only grow (the merged lattice is exactly lo ∪ hi, so
	// no miss window can be invalidated — noteEndGrowth's missGen bump is
	// merely conservative).
	a.noteEndGrowth(loID)
	a.boundaries.set(merged.BoundaryAddr(), loID)
	a.noteRecent(loID)
}

// --- hints and transfer support ----------------------------------------------

// InstallHint pre-populates an entry from tensor-structure information
// carried by an NPU data-transfer instruction (address, size, stride) —
// Section 4.2's fast path for tensor structure creation on the CPU. The
// hint is only accepted if every covered line currently shares one VN.
func (a *Analyzer) InstallHint(base uint64, size int, stride uint64) bool {
	base = a.lineAddr(base)
	if stride == 0 {
		stride = uint64(a.cfg.LineBytes)
	}
	if stride > a.cfg.MaxStride {
		return false
	}
	count := size / int(stride)
	if count < 1 {
		return false
	}
	if stride == uint64(a.cfg.LineBytes) {
		// Contiguous hint: bounding box equals exact coverage.
		if a.overlapsExisting(base, base+uint64(count)*stride) {
			return false
		}
	} else if a.coveredByExisting(base, stride, count) {
		return false
	}
	vn := a.store.Get(base)
	for i := 1; i < count; i++ {
		if a.store.Get(base+uint64(i)*stride) != vn {
			return false
		}
	}
	id := a.alloc()
	a.entries[id] = Entry{
		Base:    base,
		Dims:    []Dim{{Count: count, Stride: stride}},
		VN:      vn,
		bitmap:  make([]bool, count),
		lastUse: a.clock,
		valid:   true,
	}
	a.stats.HintInstall++
	a.boundaries.set(a.entries[id].BoundaryAddr(), id)
	a.insertID(id)
	a.missGen++ // new coverage: drop cached miss windows
	a.filter.invalidateRange(base, base+uint64(count)*stride)
	return true
}

// RegionMeta looks up the tensor metadata for a transfer request covering
// [base, base+size): the shared VN and the tensor MAC. ok is false when no
// single quiescent entry covers the whole region (the transfer then falls
// back to per-line metadata).
func (a *Analyzer) RegionMeta(base uint64, size int) (vn, mac uint64, ok bool) {
	base = a.lineAddr(base)
	id, _, found := a.lookup(base)
	if !found {
		return 0, 0, false
	}
	e := &a.entries[id]
	if e.UF {
		return 0, 0, false
	}
	lastLine := a.lineAddr(base + uint64(size) - 1)
	if _, in := e.Contains(lastLine); !in {
		return 0, 0, false
	}
	return e.VN, e.MAC, true
}

// SetRegionMAC records the tensor MAC for the entry covering base (used by
// the integration layer as line MACs are XOR-accumulated).
func (a *Analyzer) SetRegionMAC(base uint64, mac uint64) bool {
	id, _, found := a.lookup(a.lineAddr(base))
	if !found {
		return false
	}
	a.entries[id].MAC = mac
	return true
}

// --- context switching ---------------------------------------------------------

// Snapshot is a serializable Meta Table image (the Meta Table is saved and
// restored across enclave context switches, Section 4.2).
type Snapshot struct {
	Entries []Entry
}

// Save captures all valid entries. Bitmaps are deep-copied.
func (a *Analyzer) Save() Snapshot {
	var s Snapshot
	for i := range a.entries {
		if a.entries[i].valid {
			e := a.entries[i]
			e.bitmap = append([]bool(nil), e.bitmap...)
			e.Dims = append([]Dim(nil), e.Dims...)
			e.lines = 0 // snapshots carry shape, not memo state
			s.Entries = append(s.Entries, e)
		}
	}
	return s
}

// Restore replaces the table contents with a snapshot (filter state is
// architecturally transient and cleared).
func (a *Analyzer) Restore(s Snapshot) {
	for i := range a.entries {
		a.entries[i].valid = false
		a.entries[i].bitmap = nil
	}
	a.free = a.free[:0]
	for i := a.cfg.Entries - 1; i >= len(s.Entries); i-- {
		a.free = append(a.free, i)
	}
	a.boundaries.reset()
	for i, e := range s.Entries {
		if i >= a.cfg.Entries {
			break
		}
		e.bitmap = append([]bool(nil), e.bitmap...)
		e.Dims = append([]Dim(nil), e.Dims...)
		a.entries[i] = e
		a.boundaries.set(e.BoundaryAddr(), i)
	}
	a.filter.reset()
	a.indexDirty = true
	a.recent = nil
	a.shapeGen++ // restored entries invalidate every cached run window
	a.missGen++  // and any cached miss window
}

// --- introspection ----------------------------------------------------------

// EntryAt returns a copy of the valid entry covering addr, for tests and
// debugging.
func (a *Analyzer) EntryAt(addr uint64) (Entry, bool) {
	id, _, ok := a.lookup(a.lineAddr(addr))
	if !ok {
		return Entry{}, false
	}
	e := a.entries[id]
	e.bitmap = append([]bool(nil), e.bitmap...)
	e.Dims = append([]Dim(nil), e.Dims...)
	e.lines = 0 // drop the memo: copies compare by shape, not cache state
	return e, true
}

// CheckInvariant verifies that every valid entry's effective VN matches the
// off-chip store for every covered line; it returns the first discrepancy.
// Tests call this after random interleavings.
func (a *Analyzer) CheckInvariant() error {
	for i := range a.entries {
		e := &a.entries[i]
		if !e.valid {
			continue
		}
		lines := e.Lines()
		for idx := 0; idx < lines; idx++ {
			addr := e.AddrOf(idx)
			want := a.store.Get(addr)
			got := e.EffectiveVN(idx)
			if got != want {
				return fmt.Errorf("tenanalyzer: entry %d line %d (0x%x): on-chip VN %d != off-chip %d", i, idx, addr, got, want)
			}
		}
	}
	return nil
}

// ArrayVNStore is a dense VNStore over a contiguous line range — the fast
// representation the simulators use for large sweeps.
type ArrayVNStore struct {
	base      uint64
	lineBytes int
	lineShift int // Pow2Shift(lineBytes); <0 keeps the division
	vns       []uint64
}

// NewArrayVNStore covers [base, base+size) with per-line VNs.
func NewArrayVNStore(base uint64, size, lineBytes int) *ArrayVNStore {
	lines := (size + lineBytes - 1) / lineBytes
	return &ArrayVNStore{
		base:      base,
		lineBytes: lineBytes,
		lineShift: sim.Pow2Shift(lineBytes),
		vns:       make([]uint64, lines),
	}
}

func (s *ArrayVNStore) idx(addr uint64) int {
	// The shift computes the identical quotient for the power-of-two
	// line sizes every simulator uses; writes update the store once per
	// line, so the division was showing up in profiles.
	if s.lineShift >= 0 {
		return int((addr - s.base) >> uint(s.lineShift))
	}
	return int((addr - s.base) / uint64(s.lineBytes))
}

// Get implements VNStore. Addresses outside the range read as zero.
func (s *ArrayVNStore) Get(addr uint64) uint64 {
	i := s.idx(addr)
	if i < 0 || i >= len(s.vns) {
		return 0
	}
	return s.vns[i]
}

// Set implements VNStore. Out-of-range writes are dropped.
func (s *ArrayVNStore) Set(addr uint64, vn uint64) {
	i := s.idx(addr)
	if i >= 0 && i < len(s.vns) {
		s.vns[i] = vn
	}
}
