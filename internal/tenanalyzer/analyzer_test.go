package tenanalyzer

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestAnalyzer() (*Analyzer, *MapVNStore) {
	store := NewMapVNStore()
	a := New(DefaultConfig(), store)
	return a, store
}

// streamRead issues n sequential line reads starting at base.
func streamRead(a *Analyzer, base uint64, n int) (miss, boundary, hitIn int) {
	for i := 0; i < n; i++ {
		out, _ := a.Read(base + uint64(i*64))
		switch out {
		case Miss:
			miss++
		case HitBoundary:
			boundary++
		case HitIn:
			hitIn++
		}
	}
	return
}

// streamWrite issues n sequential line writes starting at base.
func streamWrite(a *Analyzer, base uint64, n int) {
	for i := 0; i < n; i++ {
		a.Write(base + uint64(i*64))
	}
}

func TestStreamingDetection(t *testing.T) {
	a, _ := newTestAnalyzer()
	const lines = 100
	miss, boundary, hitIn := streamRead(a, 0x10000, lines)
	// Filter depth 4: 4 misses, then the created entry extends line by line.
	if miss != 4 {
		t.Errorf("first pass misses = %d, want 4", miss)
	}
	if boundary != lines-4 {
		t.Errorf("first pass boundary hits = %d, want %d", boundary, lines-4)
	}
	if hitIn != 0 {
		t.Errorf("first pass hit_in = %d, want 0", hitIn)
	}

	// Second pass: everything is covered.
	miss, boundary, hitIn = streamRead(a, 0x10000, lines)
	if hitIn != lines {
		t.Errorf("second pass hit_in = %d, want %d (miss=%d boundary=%d)", hitIn, lines, miss, boundary)
	}

	e, ok := a.EntryAt(0x10000)
	if !ok {
		t.Fatal("no entry after detection")
	}
	if e.Lines() != lines {
		t.Errorf("entry covers %d lines, want %d", e.Lines(), lines)
	}
}

func TestReadReturnsCorrectVN(t *testing.T) {
	a, store := newTestAnalyzer()
	base := uint64(0x20000)
	for i := 0; i < 20; i++ {
		store.Set(base+uint64(i*64), 7)
	}
	streamRead(a, base, 20)
	out, vn := a.Read(base + 5*64)
	if out != HitIn || vn != 7 {
		t.Errorf("read = (%v, %d), want (hit_in, 7)", out, vn)
	}
	if err := a.CheckInvariant(); err != nil {
		t.Error(err)
	}
}

func TestBoundaryRejectsVNMismatch(t *testing.T) {
	a, store := newTestAnalyzer()
	base := uint64(0x30000)
	// Lines 0..9 at VN 0, line 10 at VN 5: extension must stop at 10.
	store.Set(base+10*64, 5)
	streamRead(a, base, 11)
	e, ok := a.EntryAt(base)
	if !ok {
		t.Fatal("no entry")
	}
	if e.Lines() != 10 {
		t.Errorf("entry covers %d lines, want 10 (extension must reject mismatched VN)", e.Lines())
	}
	if err := a.CheckInvariant(); err != nil {
		t.Error(err)
	}
}

func TestWriteEpochIncrementsVN(t *testing.T) {
	a, store := newTestAnalyzer()
	base := uint64(0x40000)
	const lines = 32
	streamRead(a, base, lines) // detect

	streamWrite(a, base, lines) // complete update epoch

	e, ok := a.EntryAt(base)
	if !ok {
		t.Fatal("entry lost after write epoch")
	}
	if e.VN != 1 {
		t.Errorf("entry VN = %d, want 1 after one epoch", e.VN)
	}
	if e.UF {
		t.Error("UF still set after completed epoch")
	}
	// Off-chip store must agree for every line.
	for i := 0; i < lines; i++ {
		if got := store.Get(base + uint64(i*64)); got != 1 {
			t.Fatalf("off-chip VN[%d] = %d, want 1", i, got)
		}
	}
	if err := a.CheckInvariant(); err != nil {
		t.Error(err)
	}

	// Reads after the epoch return the new VN and still hit.
	out, vn := a.Read(base)
	if out != HitIn || vn != 1 {
		t.Errorf("post-epoch read = (%v, %d), want (hit_in, 1)", out, vn)
	}
}

func TestWriteUsesUpcomingVN(t *testing.T) {
	a, _ := newTestAnalyzer()
	base := uint64(0x50000)
	streamRead(a, base, 16)
	out, vn := a.Write(base) // first line of the epoch
	if out != HitIn {
		t.Errorf("write outcome = %v, want hit_in", out)
	}
	if vn != 1 {
		t.Errorf("write encrypt VN = %d, want 1 (entry VN + 1)", vn)
	}
}

func TestMidEpochReadsSeeMixedVNs(t *testing.T) {
	a, _ := newTestAnalyzer()
	base := uint64(0x60000)
	const lines = 16
	streamRead(a, base, lines)
	// Write half the tensor.
	streamWrite(a, base, lines/2)

	// A rewritten line reads at VN+1, an untouched one at VN.
	if _, vn := a.Read(base); vn != 1 {
		t.Errorf("rewritten line VN = %d, want 1", vn)
	}
	if _, vn := a.Read(base + uint64((lines-1)*64)); vn != 0 {
		t.Errorf("untouched line VN = %d, want 0", vn)
	}
	if err := a.CheckInvariant(); err != nil {
		t.Error(err)
	}
}

func TestAssert1DoubleWriteInvalidates(t *testing.T) {
	a, _ := newTestAnalyzer()
	base := uint64(0x70000)
	streamRead(a, base, 16)
	a.Write(base + 64)
	a.Write(base + 64) // same line twice within one epoch: Assert1
	if _, ok := a.EntryAt(base); ok {
		t.Error("entry survived an Assert1 violation")
	}
	if a.Stats().Invalidates != 1 {
		t.Errorf("Invalidates = %d, want 1", a.Stats().Invalidates)
	}
	if err := a.CheckInvariant(); err != nil {
		t.Error(err)
	}
}

func TestOutOfOrderEpochCompletes(t *testing.T) {
	a, store := newTestAnalyzer()
	base := uint64(0x80000)
	const lines = 16
	streamRead(a, base, lines)
	// Writebacks arrive out of program order (parallel cores): last line
	// first, then the rest. The epoch must stay open until every line has
	// been rewritten, then complete.
	a.Write(base + uint64((lines-1)*64))
	e, ok := a.EntryAt(base)
	if !ok {
		t.Fatal("entry lost on out-of-order writeback")
	}
	if !e.UF || e.VN != 0 {
		t.Errorf("epoch closed early: UF=%v VN=%d", e.UF, e.VN)
	}
	if err := a.CheckInvariant(); err != nil {
		t.Error(err)
	}
	streamWrite(a, base, lines-1) // the stragglers
	e, ok = a.EntryAt(base)
	if !ok {
		t.Fatal("entry lost after epoch")
	}
	if e.UF || e.VN != 1 {
		t.Errorf("epoch did not complete: UF=%v VN=%d", e.UF, e.VN)
	}
	if got := store.Get(base + uint64((lines-1)*64)); got != 1 {
		t.Errorf("off-chip VN = %d, want 1", got)
	}
	if err := a.CheckInvariant(); err != nil {
		t.Error(err)
	}
}

func TestMixedFrequencyEntryInvalidates(t *testing.T) {
	a, _ := newTestAnalyzer()
	base := uint64(0x90000)
	const lines = 16
	streamRead(a, base, lines)
	// Half the entry updates every "iteration", the rest never: the second
	// sweep's first overlapping write fires Assert1.
	streamWrite(a, base, lines/2)
	streamWrite(a, base, lines/2)
	if _, ok := a.EntryAt(base); ok {
		t.Error("mixed-frequency entry survived")
	}
	if a.Stats().InvalAssert1 == 0 {
		t.Error("Assert1 not recorded")
	}
	if err := a.CheckInvariant(); err != nil {
		t.Error(err)
	}
}

func TestWriteMissUpdatesOffchip(t *testing.T) {
	a, store := newTestAnalyzer()
	out, vn := a.Write(0x123440)
	if out != Miss {
		t.Errorf("outcome = %v, want miss", out)
	}
	if vn != 1 || store.Get(0x123440) != 1 {
		t.Error("off-chip VN not incremented on write miss")
	}
}

func TestInterleavedTensorsDetectedSeparately(t *testing.T) {
	a, _ := newTestAnalyzer()
	baseA, baseB := uint64(0x100000), uint64(0x200000)
	// Interleave two streams; the 10-slot filter tracks both.
	for i := 0; i < 50; i++ {
		a.Read(baseA + uint64(i*64))
		a.Read(baseB + uint64(i*64))
	}
	ea, okA := a.EntryAt(baseA)
	eb, okB := a.EntryAt(baseB)
	if !okA || !okB {
		t.Fatal("interleaved streams not both detected")
	}
	if ea.Lines() != 50 || eb.Lines() != 50 {
		t.Errorf("coverage = %d/%d lines, want 50/50", ea.Lines(), eb.Lines())
	}
}

func TestAdjacent1DEntriesMerge(t *testing.T) {
	a, store := newTestAnalyzer()
	base := uint64(0x300000)
	// Two chunks of one tensor detected separately (parallel cores): detect
	// the high chunk first so boundary extension of the low chunk cannot
	// absorb it, then complete a write epoch on each -> merge.
	streamRead(a, base+32*64, 32)
	streamRead(a, base, 32)
	_ = store
	streamWrite(a, base+32*64, 32)
	streamWrite(a, base, 32)

	e, ok := a.EntryAt(base)
	if !ok {
		t.Fatal("entry lost")
	}
	if e.Lines() != 64 {
		t.Errorf("merged entry covers %d lines, want 64", e.Lines())
	}
	if a.Stats().Merges == 0 {
		t.Error("no merge recorded")
	}
	if err := a.CheckInvariant(); err != nil {
		t.Error(err)
	}
}

// gemmTileRead simulates reading one d1 x d2 tile of a D1 x D2 fp32 matrix
// (row-major), line-granular.
func gemmTileRead(a *Analyzer, matrixBase uint64, D2, r0, c0, d1, d2 int) {
	rowBytes := uint64(D2 * 4)
	for r := 0; r < d1; r++ {
		rowStart := matrixBase + uint64(r0+r)*rowBytes + uint64(c0*4)
		for b := 0; b < d2*4; b += 64 {
			a.Read(rowStart + uint64(b))
		}
	}
}

func TestGEMMTileDetectionAndMerge(t *testing.T) {
	a, _ := newTestAnalyzer()
	// 256x256 fp32 matrix, 64x64 tiles (Section 6.2): each tile row is
	// 64*4=256B = 4 lines; row stride 1024B.
	const D = 256
	base := uint64(0x1000000)

	gemmTileRead(a, base, D, 0, 0, 64, 64)
	e, ok := a.EntryAt(base)
	if !ok {
		t.Fatal("tile not detected")
	}
	if len(e.Dims) != 2 {
		t.Fatalf("tile entry dims = %v, want 2D", e.Dims)
	}
	if e.Dims[0].Count != 4 || e.Dims[0].Stride != 64 {
		t.Errorf("inner dim = %+v, want 4x64B", e.Dims[0])
	}
	if e.Dims[1].Stride != 1024 {
		t.Errorf("row stride = %d, want 1024", e.Dims[1].Stride)
	}
	if e.Dims[1].Count < 32 {
		t.Errorf("rows merged = %d, want most of 64", e.Dims[1].Count)
	}

	// Second pass over the same tile: hit rate should be near 1 (98.8% in
	// the paper after one full GEMM).
	a.ResetStats()
	gemmTileRead(a, base, D, 0, 0, 64, 64)
	if r := a.Stats().HitInRate(); r < 0.9 {
		t.Errorf("tile re-read hit_in rate = %.3f, want > 0.9", r)
	}
	if err := a.CheckInvariant(); err != nil {
		t.Error(err)
	}
}

func TestInterleavedTilesCoexist(t *testing.T) {
	a, _ := newTestAnalyzer()
	const D = 256
	base := uint64(0x2000000)
	// Two horizontally adjacent tiles: their bounding boxes interleave but
	// their lines are disjoint; both must be representable.
	gemmTileRead(a, base, D, 0, 0, 16, 64)
	gemmTileRead(a, base, D, 0, 64, 16, 64)

	a.ResetStats()
	gemmTileRead(a, base, D, 0, 0, 16, 64)
	gemmTileRead(a, base, D, 0, 64, 16, 64)
	if r := a.Stats().HitAllRate(); r < 0.9 {
		t.Errorf("re-read of interleaved tiles hit_all = %.3f, want > 0.9", r)
	}
	if err := a.CheckInvariant(); err != nil {
		t.Error(err)
	}
}

func TestEvictionLRU(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Entries = 4
	a := New(cfg, NewMapVNStore())
	// Detect 5 tensors; the first (least recently used) must be evicted.
	for i := 0; i < 5; i++ {
		streamRead(a, uint64(0x100000*(i+1)), 8)
	}
	if a.LiveEntries() != 4 {
		t.Errorf("live entries = %d, want 4", a.LiveEntries())
	}
	if _, ok := a.EntryAt(0x100000); ok {
		t.Error("LRU entry not evicted")
	}
	if _, ok := a.EntryAt(0x500000); !ok {
		t.Error("newest entry missing")
	}
	if a.Stats().Evictions == 0 {
		t.Error("eviction not counted")
	}
}

func TestInstallHint(t *testing.T) {
	a, _ := newTestAnalyzer()
	base := uint64(0x900000)
	if !a.InstallHint(base, 64*128, 64) {
		t.Fatal("hint rejected")
	}
	a.ResetStats()
	_, _, hitIn := streamRead(a, base, 128)
	if hitIn != 128 {
		t.Errorf("hit_in after hint = %d, want 128", hitIn)
	}
	if err := a.CheckInvariant(); err != nil {
		t.Error(err)
	}
}

func TestInstallHintRejectsMixedVN(t *testing.T) {
	a, store := newTestAnalyzer()
	base := uint64(0xa00000)
	store.Set(base+64, 3)
	if a.InstallHint(base, 64*8, 64) {
		t.Error("hint with mixed VNs accepted")
	}
}

func TestInstallHintRejectsOverlap(t *testing.T) {
	a, _ := newTestAnalyzer()
	base := uint64(0xb00000)
	streamRead(a, base, 16)
	if a.InstallHint(base+4*64, 64*8, 64) {
		t.Error("overlapping hint accepted")
	}
}

func TestRegionMeta(t *testing.T) {
	a, _ := newTestAnalyzer()
	base := uint64(0xc00000)
	const lines = 64
	streamRead(a, base, lines)
	streamWrite(a, base, lines)

	vn, _, ok := a.RegionMeta(base, lines*64)
	if !ok {
		t.Fatal("RegionMeta failed for fully covered region")
	}
	if vn != 1 {
		t.Errorf("region VN = %d, want 1", vn)
	}
	// Region exceeding the entry must fail.
	if _, _, ok := a.RegionMeta(base, (lines+8)*64); ok {
		t.Error("RegionMeta accepted an uncovered region")
	}
	// Region mid-update must fail.
	a.Write(base) // starts a new epoch
	if _, _, ok := a.RegionMeta(base, lines*64); ok {
		t.Error("RegionMeta accepted an entry mid-update")
	}
}

func TestSetRegionMAC(t *testing.T) {
	a, _ := newTestAnalyzer()
	base := uint64(0xd00000)
	streamRead(a, base, 16)
	if !a.SetRegionMAC(base, 0xbeef) {
		t.Fatal("SetRegionMAC failed")
	}
	_, mac, ok := a.RegionMeta(base, 16*64)
	if !ok || mac != 0xbeef {
		t.Errorf("mac = %#x ok=%v, want 0xbeef", mac, ok)
	}
}

func TestSaveRestore(t *testing.T) {
	a, store := newTestAnalyzer()
	base := uint64(0xe00000)
	streamRead(a, base, 32)
	snap := a.Save()

	// Another enclave's context trashes the table.
	streamRead(a, 0x5500000, 64)
	a.Restore(snap)

	a.ResetStats()
	_, _, hitIn := streamRead(a, base, 32)
	if hitIn != 32 {
		t.Errorf("hit_in after restore = %d, want 32", hitIn)
	}
	if _, ok := a.EntryAt(0x5500000); ok {
		t.Error("foreign entry survived restore")
	}
	_ = store
}

func TestSnapshotIsDeep(t *testing.T) {
	a, _ := newTestAnalyzer()
	base := uint64(0xf00000)
	streamRead(a, base, 16)
	snap := a.Save()
	// Mutate the live table after snapshotting.
	streamWrite(a, base, 16)
	if snap.Entries[0].VN != 0 {
		t.Error("snapshot shares state with the live table")
	}
}

func TestHitRateStats(t *testing.T) {
	a, _ := newTestAnalyzer()
	streamRead(a, 0x10000, 20)
	s := a.Stats()
	if s.Accesses() != 20 {
		t.Errorf("accesses = %d, want 20", s.Accesses())
	}
	if s.HitAllRate() != float64(16)/20 {
		t.Errorf("hit_all = %g", s.HitAllRate())
	}
	if got := s.HitInRate() + s.HitBoundaryRate() + float64(s.Miss)/float64(s.Accesses()); got < 0.999 || got > 1.001 {
		t.Errorf("rates do not sum to 1: %g", got)
	}
	var empty Stats
	if empty.HitAllRate() != 0 || empty.HitInRate() != 0 || empty.HitBoundaryRate() != 0 {
		t.Error("empty stats rates should be 0")
	}
}

func TestOutcomeString(t *testing.T) {
	if Miss.String() != "miss" || HitIn.String() != "hit_in" || HitBoundary.String() != "hit_boundary" {
		t.Error("outcome strings wrong")
	}
	if Outcome(9).String() == "" {
		t.Error("unknown outcome should format")
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Config{Entries: 0, FilterEntries: 1, FilterDepth: 2}, NewMapVNStore())
}

func TestValidDims(t *testing.T) {
	cases := []struct {
		dims []Dim
		want bool
	}{
		{[]Dim{{4, 64}}, true},
		{[]Dim{{4, 64}, {64, 1024}}, true},
		{[]Dim{{4, 64}, {2, 256}, {64, 1024}}, true},
		{[]Dim{{4, 64}, {2, 128}}, false},                     // reach 192 >= 128
		{[]Dim{{4, 64}, {4, 64}}, false},                      // equal strides
		{[]Dim{{4, 128}, {2, 64}}, false},                     // descending strides
		{[]Dim{}, false},                                      // empty
		{[]Dim{{0, 64}}, false},                               // zero count
		{[]Dim{{4, 0}}, false},                                // zero stride
		{[]Dim{{2, 64}, {2, 128}, {2, 256}, {2, 512}}, false}, // too deep
	}
	for i, tc := range cases {
		if got := validDims(tc.dims); got != tc.want {
			t.Errorf("case %d %v: validDims = %v, want %v", i, tc.dims, got, tc.want)
		}
	}
}

func TestEntryAddrOfInvertsContains(t *testing.T) {
	e := Entry{
		Base: 0x1000,
		Dims: []Dim{{3, 64}, {2, 256}, {3, 2048}},
	}
	for idx := 0; idx < e.Lines(); idx++ {
		addr := e.AddrOf(idx)
		got, ok := e.Contains(addr)
		if !ok || got != idx {
			t.Fatalf("idx %d -> addr %#x -> (%d, %v)", idx, addr, got, ok)
		}
	}
	// Uncovered addresses must not be contained: offset 192 falls in the
	// gap between the first run {0,64,128} and the second {256,...}.
	if _, ok := e.Contains(0x1000 + 3*64); ok {
		t.Error("gap address claimed as covered")
	}
	if _, ok := e.Contains(0x1000 + 1); ok {
		t.Error("misaligned address claimed as covered")
	}
}

// Property: random interleavings of reads, complete write epochs, and
// foreign writes never break the on-chip/off-chip VN invariant.
func TestInvariantUnderRandomOpsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, store := newTestAnalyzer()
		tensors := []struct {
			base  uint64
			lines int
		}{
			{0x10000, 24}, {0x40000, 16}, {0x80000, 32},
		}
		for step := 0; step < 40; step++ {
			tn := tensors[rng.Intn(len(tensors))]
			switch rng.Intn(4) {
			case 0: // full read stream
				streamRead(a, tn.base, tn.lines)
			case 1: // full write epoch
				streamWrite(a, tn.base, tn.lines)
			case 2: // partial writes (may invalidate; store must stay right)
				n := 1 + rng.Intn(tn.lines)
				streamWrite(a, tn.base, n)
			case 3: // random single accesses
				addr := tn.base + uint64(rng.Intn(tn.lines)*64)
				if rng.Intn(2) == 0 {
					a.Read(addr)
				} else {
					a.Write(addr)
				}
			}
			if err := a.CheckInvariant(); err != nil {
				t.Logf("seed %d step %d: %v", seed, step, err)
				return false
			}
		}
		// Final: off-chip store readable for all lines (sanity).
		for _, tn := range tensors {
			for i := 0; i < tn.lines; i++ {
				_ = store.Get(tn.base + uint64(i*64))
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: reads never change off-chip VNs.
func TestReadsDoNotMutateStoreProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		a, store := newTestAnalyzer()
		for i := 0; i < 64; i++ {
			store.Set(uint64(i*64), 5)
		}
		before := make(map[uint64]uint64)
		for i := 0; i < 64; i++ {
			before[uint64(i*64)] = store.Get(uint64(i * 64))
		}
		for _, x := range addrs {
			a.Read(uint64(x) &^ 63)
		}
		for addr, vn := range before {
			if store.Get(addr) != vn {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestArrayVNStore(t *testing.T) {
	s := NewArrayVNStore(0x1000, 64*10, 64)
	s.Set(0x1000, 5)
	s.Set(0x1240, 7)
	if s.Get(0x1000) != 5 || s.Get(0x1240) != 7 {
		t.Error("array store get/set broken")
	}
	if s.Get(0x100) != 0 {
		t.Error("out-of-range get should be 0")
	}
	s.Set(0x100, 9) // dropped
	if s.Get(0x100) != 0 {
		t.Error("out-of-range set should be dropped")
	}
}

func BenchmarkStreamingReads(b *testing.B) {
	store := NewArrayVNStore(0, 64*1<<20, 64)
	a := New(DefaultConfig(), store)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Read(uint64(i%(1<<20)) * 64)
	}
}

func BenchmarkHitInReads(b *testing.B) {
	store := NewArrayVNStore(0, 64*4096, 64)
	a := New(DefaultConfig(), store)
	for i := 0; i < 4096; i++ {
		a.Read(uint64(i) * 64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Read(uint64(i%4096) * 64)
	}
}
