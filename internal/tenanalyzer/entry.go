// Package tenanalyzer implements the hardware tensor-structure detector of
// TensorTEE's CPU TEE (Section 4.2): the Meta Table that virtualizes
// per-cacheline version numbers into per-tensor VNs, and the Tensor Filter
// that detects tensor-shaped access streams from Meta Table misses.
//
// The analyzer sits in the memory controller and observes the core's
// virtual-address request stream (Figure 9b): reads flow through the
// detection dataflow of Figure 10 (hit-in / hit-boundary / miss) and writes
// through the update dataflow of Figure 12 (hit-edge / hit-in / miss, with
// the bitmap, Updating Flag, Bit State, and Asserts 1–3).
//
// Correctness invariant: for every line covered by a valid entry, the
// entry's effective VN for that line equals the off-chip per-line VN (the
// VNStore). Assert violations invalidate the entry, falling back to the
// cacheline-granularity path, so the invariant can never be silently
// broken. Property tests drive random access interleavings against the
// VNStore oracle.
package tenanalyzer

import (
	"fmt"
	"math/bits"
)

// Dim is one dimension of a detected tensor: Count repetitions at Stride
// bytes. Dims are ordered innermost first; Dims[0].Stride is the line
// stride of the streaming dimension.
type Dim struct {
	Count  int
	Stride uint64
}

// MaxDims is the deepest tensor structure the Meta Table represents
// (1D streaming, 2D tiles, 3D blocks — Figure 11 merges in 2, 4, and 6
// directions respectively).
const MaxDims = 3

// Entry is one Meta Table row: an address range with shared metadata
// (VN, MAC) for all cachelines within the tensor (Figures 10 and 12).
type Entry struct {
	Base uint64
	Dims []Dim

	VN  uint64
	MAC uint64 // tensor-granularity MAC (XOR of line MACs)

	// Write-epoch state (Figure 12).
	UF bool // Updating Flag: a tensor update is in flight
	BS bool // Bit State: pre-update polarity of the bitmap bits

	bitmap  []bool // per covered line; "flipped" means != BS
	flipped int    // count of bitmap bits != BS

	lastUse uint64 // analyzer clock for LRU
	valid   bool
	lines   int // memoized Lines(); 0 = recompute (reset on shape change)
}

// Lines returns the number of cachelines the entry covers. The product
// over dims is memoized — the write dataflow asks on every covered
// write — and invalidated by Extend (other shape changes build fresh
// Entry values, whose zero memo recomputes).
func (e *Entry) Lines() int {
	if e.lines == 0 {
		n := 1
		for _, d := range e.Dims {
			n *= d.Count
		}
		e.lines = n
	}
	return e.lines
}

// Span returns the bounding-box size in bytes: distance from Base to one
// past the last covered line's start, plus nothing for line size (callers
// compare line base addresses).
func (e *Entry) Span() uint64 {
	var last uint64
	for _, d := range e.Dims {
		last += uint64(d.Count-1) * d.Stride
	}
	return last + e.Dims[0].Stride
}

// BoundEnd returns one past the bounding box (in line-base terms).
func (e *Entry) BoundEnd() uint64 { return e.Base + e.Span() }

// Contains reports whether addr is a covered line base, and its canonical
// linear index if so (outer dims varying slowest).
func (e *Entry) Contains(addr uint64) (idx int, ok bool) {
	if addr < e.Base {
		return 0, false
	}
	// Strides are power-of-two for line-granular entries (64 B lines,
	// power-of-two row pitches), so the hot path replaces the division
	// with a shift — the quotient is identical, Contains is called for
	// every Meta Table lookup, and integer division is the single most
	// expensive instruction in it.
	off := addr - e.Base
	idx = 0
	for i := len(e.Dims) - 1; i >= 1; i-- {
		d := e.Dims[i]
		var q uint64
		if d.Stride&(d.Stride-1) == 0 {
			q = off >> uint(bits.TrailingZeros64(d.Stride))
		} else {
			q = off / d.Stride
		}
		if q >= uint64(d.Count) {
			return 0, false
		}
		off -= q * d.Stride
		idx = idx*d.Count + int(q)
	}
	d0 := e.Dims[0]
	if d0.Stride&(d0.Stride-1) == 0 {
		if off&(d0.Stride-1) != 0 {
			return 0, false
		}
		q := off >> uint(bits.TrailingZeros64(d0.Stride))
		if q >= uint64(d0.Count) {
			return 0, false
		}
		return idx*d0.Count + int(q), true
	}
	if off%d0.Stride != 0 {
		return 0, false
	}
	q := off / d0.Stride
	if q >= uint64(d0.Count) {
		return 0, false
	}
	return idx*d0.Count + int(q), true
}

// AddrOf returns the line address of canonical index idx (inverse of
// Contains).
func (e *Entry) AddrOf(idx int) uint64 {
	addr := e.Base
	for d := len(e.Dims) - 1; d >= 0; d-- {
		div := 1
		for k := 0; k < d; k++ {
			div *= e.Dims[k].Count
		}
		q := idx / div
		idx %= div
		addr += uint64(q) * e.Dims[d].Stride
	}
	return addr
}

// BoundaryAddr returns the address whose arrival would extend the entry:
// the next line past the outermost dimension (for 1D this is the next
// sequential line — the paper's "request address == last address + stride").
func (e *Entry) BoundaryAddr() uint64 {
	outer := e.Dims[len(e.Dims)-1]
	return e.Base + uint64(outer.Count)*outer.Stride
}

// RunAddrs returns the line addresses the entry would gain by extending its
// outermost dimension once: the inner lattice shifted to the next outer
// index. For 1D entries this is the single boundary line.
func (e *Entry) RunAddrs() []uint64 {
	outer := e.Dims[len(e.Dims)-1]
	runBase := e.Base + uint64(outer.Count)*outer.Stride
	if len(e.Dims) == 1 {
		return []uint64{runBase}
	}
	innerLines := 1
	for _, d := range e.Dims[:len(e.Dims)-1] {
		innerLines *= d.Count
	}
	inner := Entry{Base: runBase, Dims: e.Dims[:len(e.Dims)-1]}
	out := make([]uint64, innerLines)
	for i := range out {
		out[i] = inner.AddrOf(i)
	}
	return out
}

// Extend grows the outermost dimension by one after a successful
// hit-boundary VN confirmation, growing the bitmap accordingly.
func (e *Entry) Extend() {
	outer := &e.Dims[len(e.Dims)-1]
	outer.Count++
	e.lines = 0 // shape changed: drop the Lines memo
	grown := e.Lines()
	for len(e.bitmap) < grown {
		e.bitmap = append(e.bitmap, e.BS)
	}
}

// EffectiveVN returns the VN that protects the line at canonical index idx:
// during an in-flight update (UF set), already-rewritten lines are at VN+1;
// the on-chip VN increments for the whole tensor only when the update
// completes (Figure 12).
func (e *Entry) EffectiveVN(idx int) uint64 {
	if e.UF && e.bitmap[idx] != e.BS {
		return e.VN + 1
	}
	return e.VN
}

// resetBitmap returns all bits to the BS polarity (fresh epoch).
func (e *Entry) resetBitmap() {
	for i := range e.bitmap {
		e.bitmap[i] = e.BS
	}
	e.flipped = 0
}

// sameShape reports equal dims (counts and strides).
func sameShape(a, b []Dim) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (e *Entry) String() string {
	return fmt.Sprintf("entry base=0x%x dims=%v vn=%d uf=%v", e.Base, e.Dims, e.VN, e.UF)
}
