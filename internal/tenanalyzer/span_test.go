package tenanalyzer

import (
	"math/rand"
	"reflect"
	"testing"
)

// replayRuns pushes a run list through an analyzer using the span
// classifiers (re-entering after each consumed prefix), while a twin
// analyzer replays the identical per-line sequence; both must end in
// identical observable state.
func replayRuns(t *testing.T, runs []run, storeLines int) {
	t.Helper()
	span := New(DefaultConfig(), NewArrayVNStore(0, storeLines*64, 64))
	line := New(DefaultConfig(), NewArrayVNStore(0, storeLines*64, 64))

	for _, r := range runs {
		for _, a := range r.lines() {
			if r.write {
				line.Write(a)
			} else {
				line.Read(a)
			}
		}
		for left, addr := r.n, r.addr; left > 0; {
			var k int
			if r.write {
				_, k = span.WriteRun(addr, left)
			} else {
				_, k = span.ReadRun(addr, left)
			}
			if k < 1 || k > left {
				t.Fatalf("span classifier consumed %d of %d", k, left)
			}
			left -= k
			addr += uint64(k) * 64
		}
	}

	if span.Stats() != line.Stats() {
		t.Fatalf("stats diverge\nspan: %+v\nline: %+v", span.Stats(), line.Stats())
	}
	if span.LiveEntries() != line.LiveEntries() {
		t.Fatalf("live entries: span %d line %d", span.LiveEntries(), line.LiveEntries())
	}
	if err := span.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	// Off-chip VN arrays must agree line for line.
	for i := 0; i < storeLines; i++ {
		a := uint64(i * 64)
		if span.store.Get(a) != line.store.Get(a) {
			t.Fatalf("VN store diverges at line %d: span %d line %d", i, span.store.Get(a), line.store.Get(a))
		}
	}
	// Entry coverage must agree: every line either covered by both (with
	// the same entry image) or by neither.
	for i := 0; i < storeLines; i++ {
		a := uint64(i * 64)
		es, oks := span.EntryAt(a)
		el, okl := line.EntryAt(a)
		if oks != okl {
			t.Fatalf("coverage diverges at line %d: span %v line %v", i, oks, okl)
		}
		if oks {
			es.lastUse, el.lastUse = 0, 0
			if !reflect.DeepEqual(es, el) {
				t.Fatalf("entry diverges at line %d\nspan: %+v\nline: %+v", i, es, el)
			}
		}
	}
}

type run struct {
	addr  uint64
	n     int
	write bool
}

func (r run) lines() []uint64 {
	out := make([]uint64, r.n)
	for i := range out {
		out[i] = r.addr + uint64(i)*64
	}
	return out
}

// stream builds the runs of a sequential sweep of `lines` lines split
// into spans of width w starting at base.
func stream(base uint64, lines, w int, write bool) []run {
	var out []run
	for i := 0; i < lines; i += w {
		n := w
		if i+n > lines {
			n = lines - i
		}
		out = append(out, run{addr: base + uint64(i)*64, n: n, write: write})
	}
	return out
}

// TestSpanClassifierEdges drives the edge cases the coalescing must
// split on: spans straddling tensor boundaries, metadata epochs
// (completions), already-flipped bitmap lines (Assert1), and region
// ends, each against the per-line oracle.
func TestSpanClassifierEdges(t *testing.T) {
	t.Run("detection-then-steady", func(t *testing.T) {
		var runs []run
		runs = append(runs, stream(0, 64, 8, false)...) // detect tensor A
		runs = append(runs, stream(0, 64, 8, true)...)  // full epoch write
		runs = append(runs, stream(0, 64, 8, false)...) // steady reads
		replayRuns(t, runs, 256)
	})
	t.Run("span-straddles-tensor-boundary", func(t *testing.T) {
		var runs []run
		runs = append(runs, stream(0, 32, 4, false)...)     // tensor A: lines 0..31
		runs = append(runs, stream(32*64, 32, 4, false)...) // tensor B: lines 32..63
		runs = append(runs, stream(0, 32, 4, true)...)
		runs = append(runs, stream(32*64, 32, 4, true)...)
		// Straddling reads and writes: spans cross the A/B seam.
		runs = append(runs, run{addr: 28 * 64, n: 8, write: false})
		runs = append(runs, run{addr: 30 * 64, n: 6, write: true})
		replayRuns(t, runs, 256)
	})
	t.Run("epoch-completion-inside-span", func(t *testing.T) {
		var runs []run
		runs = append(runs, stream(0, 16, 4, false)...)
		// One big write span covering the whole entry: the completing
		// line must take the per-line dataflow (epoch close + merge).
		runs = append(runs, run{addr: 0, n: 16, write: true})
		runs = append(runs, stream(0, 16, 16, false)...)
		replayRuns(t, runs, 128)
	})
	t.Run("assert1-double-write", func(t *testing.T) {
		var runs []run
		runs = append(runs, stream(0, 16, 4, false)...)
		runs = append(runs, run{addr: 0, n: 8, write: true})
		runs = append(runs, run{addr: 4 * 64, n: 8, write: true}) // rewrites 4..7 mid-epoch
		replayRuns(t, runs, 128)
	})
	t.Run("region-end", func(t *testing.T) {
		// Spans that run into the end of the VN store (out-of-range VNs
		// read as zero, writes are dropped) must behave like the per-line
		// path there too.
		var runs []run
		runs = append(runs, stream(56*64, 8, 8, false)...)
		runs = append(runs, run{addr: 60 * 64, n: 8, write: true}) // crosses store end at line 64
		runs = append(runs, run{addr: 62 * 64, n: 6, write: false})
		replayRuns(t, runs, 64)
	})
	t.Run("boundary-extension-mid-span", func(t *testing.T) {
		// 4 lines detect an entry; the next span starts at its boundary,
		// so every line extends one by one (hit-boundary per line).
		var runs []run
		runs = append(runs, run{addr: 0, n: 4, write: false})
		runs = append(runs, run{addr: 4 * 64, n: 12, write: false})
		replayRuns(t, runs, 64)
	})
}

// TestSpanClassifierRandom fuzzes random span soups against the
// per-line oracle (seeded for reproducibility).
func TestSpanClassifierRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		const lines = 512
		var runs []run
		for i := 0; i < 300; i++ {
			n := 1 + rng.Intn(12)
			addr := uint64(rng.Intn(lines-n)) * 64
			runs = append(runs, run{addr: addr, n: n, write: rng.Intn(3) == 0})
		}
		replayRuns(t, runs, lines)
	}
}
