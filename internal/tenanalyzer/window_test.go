package tenanalyzer

import (
	"math/rand"
	"testing"
)

// TestRunWindowMemoParity drives identical randomized access streams —
// streaming reads, writes, strided tile walks, hints, merges, evictions,
// snapshots — through a window-memo analyzer and a twin whose memo is
// disabled, requiring identical outcomes, VNs, stats, live-entry counts,
// and store contents throughout. The memo may only ever find the unique
// owner the full lookup would, so any divergence is a bug in the window
// bookkeeping (most likely a missing shapeGen bump).
func TestRunWindowMemoParity(t *testing.T) {
	const storeLines = 1 << 14
	memoized := New(DefaultConfig(), NewArrayVNStore(0, storeLines*64, 64))
	plain := New(DefaultConfig(), NewArrayVNStore(0, storeLines*64, 64))
	plain.lineShift = -1 // disables window installs: every lookup walks

	rng := rand.New(rand.NewSource(99))
	check := func(op int, om, op2 Outcome, vm, vp uint64) {
		t.Helper()
		if om != op2 || vm != vp {
			t.Fatalf("op %d: outcome/VN diverge: %v/%d vs %v/%d", op, om, vm, op2, vp)
		}
	}
	for op := 0; op < 60000; op++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // streaming reads build and extend entries
			base := uint64(rng.Intn(storeLines-64)) * 64
			for i := 0; i < 1+rng.Intn(24); i++ {
				a := base + uint64(i)*64
				om, vm := memoized.Read(a)
				op2, vp := plain.Read(a)
				check(op, om, op2, vm, vp)
			}
		case 4, 5, 6: // write bursts drive epochs, asserts, merges
			base := uint64(rng.Intn(storeLines-64)) * 64
			for i := 0; i < 1+rng.Intn(24); i++ {
				a := base + uint64(i)*64
				om, vm := memoized.Write(a)
				op2, vp := plain.Write(a)
				check(op, om, op2, vm, vp)
			}
		case 7: // strided walk (tile rows): non-window entries
			base := uint64(rng.Intn(storeLines/2)) * 64
			stride := uint64(256 << rng.Intn(2))
			for i := 0; i < 8; i++ {
				a := base + uint64(i)*stride
				om, vm := memoized.Read(a)
				op2, vp := plain.Read(a)
				check(op, om, op2, vm, vp)
			}
		case 8: // hints install entries wholesale
			base := uint64(rng.Intn(storeLines/2)) * 64
			hm := memoized.InstallHint(base, 64*64, 64)
			hp := plain.InstallHint(base, 64*64, 64)
			if hm != hp {
				t.Fatalf("op %d: hint acceptance diverges", op)
			}
		default: // snapshot round-trip invalidates windows
			if rng.Intn(4) == 0 {
				memoized.Restore(memoized.Save())
				plain.Restore(plain.Save())
			}
		}
		if memoized.Stats() != plain.Stats() {
			t.Fatalf("op %d: stats diverge\nmemo:  %+v\nplain: %+v", op, memoized.Stats(), plain.Stats())
		}
		if memoized.LiveEntries() != plain.LiveEntries() {
			t.Fatalf("op %d: live entries diverge", op)
		}
	}
	if err := memoized.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < storeLines; i++ {
		a := uint64(i) * 64
		if memoized.store.Get(a) != plain.store.Get(a) {
			t.Fatalf("store diverges at line %d", i)
		}
	}
}
