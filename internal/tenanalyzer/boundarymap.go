package tenanalyzer

// boundaryMap is a small open-addressed hash table from boundary line
// addresses to Meta Table entry ids. It exists because the boundary set
// churns on every extension (delete old boundary, insert the next one)
// and is probed on every detection-phase miss; with at most one boundary
// per live entry (<= 512) the linear-probe table stays in a few cache
// lines where the general-purpose map paid hashing and bucket traffic.
//
// Keys are line-aligned addresses and therefore never 0 or 1 (a boundary
// is always at least one line past an entry base), freeing those values
// as the empty and tombstone sentinels. Semantics are exactly a
// map[uint64]int: get/set/del/len.
type boundaryMap struct {
	keys  []uint64 // 0 = empty, 1 = tombstone
	vals  []int32
	mask  uint64
	n     int // live keys
	tombs int // tombstones

	// spare double-buffers compactions: boundary churn (one delete +
	// insert per extension) tombstones the table every ~capacity/2
	// operations, and reusing the previous buffers keeps the steady
	// state allocation-free.
	spareKeys []uint64
	spareVals []int32
}

const (
	bmEmpty = uint64(0)
	bmTomb  = uint64(1)
)

func newBoundaryMap() boundaryMap {
	const initial = 64
	return boundaryMap{
		keys: make([]uint64, initial),
		vals: make([]int32, initial),
		mask: initial - 1,
	}
}

func bmHash(key uint64) uint64 { return key * 0x9E3779B97F4A7C15 }

// get returns the id for key, or ok=false.
func (m *boundaryMap) get(key uint64) (int, bool) {
	i := bmHash(key) >> 32 & m.mask
	for {
		switch m.keys[i] {
		case key:
			return int(m.vals[i]), true
		case bmEmpty:
			return 0, false
		}
		i = (i + 1) & m.mask
	}
}

// set inserts or overwrites key -> id.
func (m *boundaryMap) set(key uint64, id int) {
	// Keep occupancy (live + tombstones) under half the table: the
	// boundary set churns one delete+insert per extension, and linear
	// probes degrade sharply once tombstones push the load past that.
	if (m.n+m.tombs+1)*2 >= len(m.keys) {
		m.rehash()
	}
	i := bmHash(key) >> 32 & m.mask
	firstTomb := -1
	for {
		switch m.keys[i] {
		case key:
			m.vals[i] = int32(id)
			return
		case bmTomb:
			if firstTomb < 0 {
				firstTomb = int(i)
			}
		case bmEmpty:
			if firstTomb >= 0 {
				i = uint64(firstTomb)
				m.tombs--
			}
			m.keys[i] = key
			m.vals[i] = int32(id)
			m.n++
			return
		}
		i = (i + 1) & m.mask
	}
}

// del removes key if present.
func (m *boundaryMap) del(key uint64) {
	i := bmHash(key) >> 32 & m.mask
	for {
		switch m.keys[i] {
		case key:
			m.keys[i] = bmTomb
			m.n--
			m.tombs++
			return
		case bmEmpty:
			return
		}
		i = (i + 1) & m.mask
	}
}

// reset drops every key, keeping capacity.
func (m *boundaryMap) reset() {
	for i := range m.keys {
		m.keys[i] = bmEmpty
	}
	m.n, m.tombs = 0, 0
}

// rehash grows (or compacts tombstones) keeping live keys under a
// quarter of the table, so compactions stay rare relative to the
// deletes that trigger them. Same-size compactions swap into the spare
// buffers instead of allocating.
func (m *boundaryMap) rehash() {
	size := len(m.keys)
	if (m.n+1)*4 >= size {
		size *= 2
		m.spareKeys, m.spareVals = nil, nil
	}
	keys, vals := m.keys, m.vals
	if len(m.spareKeys) == size {
		m.keys, m.vals = m.spareKeys, m.spareVals
		for i := range m.keys {
			m.keys[i] = bmEmpty
		}
	} else {
		m.keys = make([]uint64, size)
		m.vals = make([]int32, size)
	}
	if len(keys) == size {
		m.spareKeys, m.spareVals = keys, vals
	}
	m.mask = uint64(size - 1)
	m.n, m.tombs = 0, 0
	for i, k := range keys {
		if k != bmEmpty && k != bmTomb {
			m.set(k, int(vals[i]))
		}
	}
}
