package merkle

import (
	"testing"
	"testing/quick"
)

func newTree(leaves int) *Tree {
	var key [16]byte
	copy(key[:], "merkle-test-key!")
	return New(leaves, 8, key)
}

func TestGeometry(t *testing.T) {
	tr := newTree(64)
	if tr.Leaves() != 64 {
		t.Errorf("Leaves = %d", tr.Leaves())
	}
	// 64 leaves, arity 8: levels 64, 8, 1 -> depth 3, path 2.
	if tr.Depth() != 3 {
		t.Errorf("Depth = %d, want 3", tr.Depth())
	}
	if tr.PathLen() != 2 {
		t.Errorf("PathLen = %d, want 2", tr.PathLen())
	}
}

func TestSingleLeaf(t *testing.T) {
	tr := newTree(1)
	if tr.Depth() != 1 {
		t.Errorf("Depth = %d, want 1", tr.Depth())
	}
	tr.Update(0, 42)
	if ok, _ := tr.Verify(0, 42); !ok {
		t.Error("single-leaf verify failed")
	}
}

func TestUpdateVerify(t *testing.T) {
	tr := newTree(100)
	for i := 0; i < 100; i++ {
		tr.Update(i, uint64(i)*3+1)
	}
	for i := 0; i < 100; i++ {
		if ok, _ := tr.Verify(i, uint64(i)*3+1); !ok {
			t.Fatalf("leaf %d failed to verify", i)
		}
		if tr.Value(i) != uint64(i)*3+1 {
			t.Fatalf("leaf %d value wrong", i)
		}
	}
}

func TestVerifyWrongValueFails(t *testing.T) {
	tr := newTree(16)
	tr.Update(3, 7)
	if ok, _ := tr.Verify(3, 8); ok {
		t.Error("wrong value verified")
	}
}

func TestRootChangesOnUpdate(t *testing.T) {
	tr := newTree(32)
	r0 := tr.Root()
	tr.Update(5, 1)
	r1 := tr.Root()
	if r0 == r1 {
		t.Error("root did not change after update")
	}
	tr.Update(5, 2)
	if tr.Root() == r1 {
		t.Error("root did not change after second update")
	}
}

func TestReplayDetected(t *testing.T) {
	tr := newTree(16)
	tr.Update(4, 10) // old state
	old := uint64(10)
	tr.Update(4, 11) // new state

	// Adversary rolls the off-chip leaf back to the old value.
	tr.TamperLeaf(4, old)
	if ok, _ := tr.Verify(4, old); ok {
		t.Error("replayed leaf verified — replay attack succeeded")
	}
}

func TestInteriorTamperDetected(t *testing.T) {
	tr := newTree(64)
	for i := 0; i < 64; i++ {
		tr.Update(i, uint64(i))
	}
	tr.TamperNode(1, 0) // corrupt a level-1 node
	if ok, _ := tr.Verify(3, 3); ok {
		t.Error("interior-node corruption not detected")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	tr := newTree(4)
	for _, fn := range []func(){
		func() { tr.Verify(4, 0) },
		func() { tr.Verify(-1, 0) },
		func() { tr.Update(4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range leaf")
				}
			}()
			fn()
		}()
	}
}

func TestBadConstruction(t *testing.T) {
	var key [16]byte
	for _, fn := range []func(){
		func() { New(0, 8, key) },
		func() { New(4, 1, key) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected construction panic")
				}
			}()
			fn()
		}()
	}
}

func TestNodeBytes(t *testing.T) {
	tr := newTree(64)
	// levels below root: 64 + 8 = 72 nodes
	if got := tr.NodeBytes(8); got != 72*8 {
		t.Errorf("NodeBytes = %d, want %d", got, 72*8)
	}
}

// Property: after any sequence of updates, every leaf verifies with its
// latest value and fails with any other value.
func TestUpdateVerifyProperty(t *testing.T) {
	f := func(ops []struct {
		Idx uint8
		Val uint64
	}) bool {
		tr := newTree(32)
		latest := make(map[int]uint64)
		for _, op := range ops {
			idx := int(op.Idx) % 32
			tr.Update(idx, op.Val)
			latest[idx] = op.Val
		}
		for idx, val := range latest {
			if ok, _ := tr.Verify(idx, val); !ok {
				return false
			}
			if ok, _ := tr.Verify(idx, val+1); ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: two trees built with the same update sequence agree on the
// root; diverging at any point changes the root.
func TestRootDeterminismProperty(t *testing.T) {
	f := func(vals []uint64) bool {
		if len(vals) == 0 {
			return true
		}
		t1, t2 := newTree(16), newTree(16)
		for i, v := range vals {
			t1.Update(i%16, v)
			t2.Update(i%16, v)
		}
		if t1.Root() != t2.Root() {
			return false
		}
		t2.Update(0, vals[0]+1)
		return t1.Root() != t2.Root()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUpdate(b *testing.B) {
	tr := newTree(1 << 12)
	for i := 0; i < b.N; i++ {
		tr.Update(i%(1<<12), uint64(i))
	}
}

func BenchmarkVerify(b *testing.B) {
	tr := newTree(1 << 12)
	for i := 0; i < 1<<12; i++ {
		tr.Update(i, uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Verify(i%(1<<12), uint64(i%(1<<12)))
	}
}
