// Package merkle implements the 8-ary Bonsai Merkle Tree (BMT) that the
// SGX-like baseline uses to protect the off-chip version-number array
// (Section 2.2 / 5.1). Only the root lives on chip; verifying a VN walks the
// tree leaf-to-root, and updating a VN rewrites the path.
//
// The tree is functional — hashes are really computed, and replaying a stale
// (VN, MAC) pair is really caught — and it also reports how many metadata
// *lines* each operation touched, which is what the MEE timing model charges.
package merkle

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// Tree is an arity-way hash tree over a fixed number of leaves. Leaves hold
// the VN values of one VN cacheline each (the BMT protects VN lines, not
// data lines, which is what shrinks the tree).
type Tree struct {
	arity  int
	leaves int        // number of leaf slots (VN lines)
	levels [][]uint64 // levels[0] = leaf hashes ... levels[n-1] = [root]
	values []uint64   // current leaf payloads (aggregate VN-line hash input)
	key    [16]byte   // keyed hashing so an adversary cannot precompute
}

// New builds a tree over nLeaves leaf slots with the given arity (8 in the
// paper's SGX baseline). All leaves start at zero.
func New(nLeaves, arity int, key [16]byte) *Tree {
	if nLeaves <= 0 {
		panic(fmt.Sprintf("merkle: nLeaves must be positive, got %d", nLeaves))
	}
	if arity < 2 {
		panic(fmt.Sprintf("merkle: arity must be >= 2, got %d", arity))
	}
	t := &Tree{arity: arity, leaves: nLeaves, key: key}
	t.values = make([]uint64, nLeaves)

	width := nLeaves
	for {
		t.levels = append(t.levels, make([]uint64, width))
		if width == 1 {
			break
		}
		width = (width + arity - 1) / arity
	}
	// Build from zeroed leaves.
	for i := 0; i < nLeaves; i++ {
		t.levels[0][i] = t.leafHash(i, 0)
	}
	for lvl := 1; lvl < len(t.levels); lvl++ {
		for i := range t.levels[lvl] {
			t.levels[lvl][i] = t.nodeHash(lvl, i)
		}
	}
	return t
}

// Leaves returns the number of leaf slots.
func (t *Tree) Leaves() int { return t.leaves }

// Depth returns the number of levels including the root level.
func (t *Tree) Depth() int { return len(t.levels) }

// Root returns the on-chip root value.
func (t *Tree) Root() uint64 { return t.levels[len(t.levels)-1][0] }

func (t *Tree) leafHash(idx int, val uint64) uint64 {
	var buf [16 + 8 + 8]byte
	copy(buf[:16], t.key[:])
	binary.LittleEndian.PutUint64(buf[16:], uint64(idx))
	binary.LittleEndian.PutUint64(buf[24:], val)
	s := sha256.Sum256(buf[:])
	return binary.LittleEndian.Uint64(s[:8])
}

func (t *Tree) nodeHash(lvl, idx int) uint64 {
	h := sha256.New()
	h.Write(t.key[:])
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[:8], uint64(lvl))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(idx))
	h.Write(hdr[:])
	child := t.levels[lvl-1]
	lo := idx * t.arity
	hi := lo + t.arity
	if hi > len(child) {
		hi = len(child)
	}
	var num [8]byte
	for i := lo; i < hi; i++ {
		binary.LittleEndian.PutUint64(num[:], child[i])
		h.Write(num[:])
	}
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return binary.LittleEndian.Uint64(sum[:8])
}

// PathLen reports the number of tree nodes on a leaf-to-root verification
// path, excluding the on-chip root (these are the off-chip metadata accesses
// an uncached verification costs).
func (t *Tree) PathLen() int { return len(t.levels) - 1 }

// Verify checks leaf idx against the current tree, returning false if the
// provided value disagrees with the authenticated state. touched is the
// count of tree nodes (metadata lines) read on the walk, excluding the root.
func (t *Tree) Verify(idx int, val uint64) (ok bool, touched int) {
	if idx < 0 || idx >= t.leaves {
		panic(fmt.Sprintf("merkle: leaf %d out of range [0,%d)", idx, t.leaves))
	}
	if t.values[idx] != val {
		return false, 1
	}
	// Walk leaf to root recomputing; in hardware the walk stops at the first
	// metadata-cache hit, which the MEE layer models. Here we confirm the
	// authenticated chain end-to-end.
	if t.levels[0][idx] != t.leafHash(idx, val) {
		return false, 1
	}
	node := idx
	for lvl := 1; lvl < len(t.levels); lvl++ {
		node /= t.arity
		if t.levels[lvl][node] != t.nodeHash(lvl, node) {
			return false, lvl + 1
		}
	}
	return true, t.PathLen()
}

// Update sets leaf idx to val and rewrites the path to the root, returning
// the count of tree nodes written (excluding the root, which is on-chip).
func (t *Tree) Update(idx int, val uint64) (touched int) {
	if idx < 0 || idx >= t.leaves {
		panic(fmt.Sprintf("merkle: leaf %d out of range [0,%d)", idx, t.leaves))
	}
	t.values[idx] = val
	t.levels[0][idx] = t.leafHash(idx, val)
	node := idx
	for lvl := 1; lvl < len(t.levels); lvl++ {
		node /= t.arity
		t.levels[lvl][node] = t.nodeHash(lvl, node)
	}
	return t.PathLen()
}

// Value returns the currently authenticated leaf value.
func (t *Tree) Value(idx int) uint64 { return t.values[idx] }

// TamperLeaf corrupts the stored leaf value *without* updating the hash
// path, emulating an off-chip replay/corruption attack for tests.
func (t *Tree) TamperLeaf(idx int, val uint64) { t.values[idx] = val }

// TamperNode corrupts an interior node (attack on off-chip tree storage).
func (t *Tree) TamperNode(lvl, idx int) { t.levels[lvl][idx] ^= 0xdeadbeef }

// NodeBytes returns the off-chip storage consumed by the tree below the
// root, assuming nodeBytes per node (for storage-overhead reporting).
func (t *Tree) NodeBytes(nodeBytes int) int64 {
	var n int64
	for lvl := 0; lvl < len(t.levels)-1; lvl++ {
		n += int64(len(t.levels[lvl]))
	}
	return n * int64(nodeBytes)
}
