// Package resilience holds tensorteed's overload-protection primitives.
// Its circuit breaker watches the compute fill path: consecutive fill
// failures (errors, panics degraded to errors, or fills blowing a
// latency budget) open the breaker, and while it is open the serving
// layer stops starting new computations and degrades to stale results
// from the persistent store instead.
package resilience

import (
	"sync"
	"time"
)

// State is the breaker's position.
type State string

const (
	// Closed: fills run normally.
	Closed State = "closed"
	// Open: the cooldown clock is running; no new fills start.
	Open State = "open"
	// HalfOpen: the cooldown elapsed; the next fill is a probe whose
	// outcome closes or re-opens the breaker.
	HalfOpen State = "half-open"
)

// Breaker is a consecutive-failure circuit breaker. It never blocks and
// never remembers successes beyond resetting the failure streak, so a
// healthy system pays one mutex per fill outcome. Safe for concurrent use.
type Breaker struct {
	threshold   int
	cooldown    time.Duration
	maxCooldown time.Duration // 0: fixed cooldown (no backoff)
	now         func() time.Time

	mu        sync.Mutex
	failures  int
	opens     int // consecutive opens without an intervening success
	openUntil time.Time
}

// Option customizes a Breaker.
type Option func(*Breaker)

// WithClock substitutes the time source (tests).
func WithClock(now func() time.Time) Option {
	return func(b *Breaker) { b.now = now }
}

// WithMaxCooldown enables exponential backoff: every fresh open without
// an intervening success — the initial trip, then each failed half-open
// probe — doubles the cooldown, up to max. A success resets the
// escalation along with the failure streak. A persistently dead
// dependency (a downed peer, say) is then probed at a geometrically
// decaying rate instead of once per fixed cooldown forever.
func WithMaxCooldown(max time.Duration) Option {
	return func(b *Breaker) { b.maxCooldown = max }
}

// New builds a Breaker that opens after `threshold` consecutive failures
// and stays open for `cooldown`. threshold < 1 is raised to 1; a
// non-positive cooldown gets a sane default (an open breaker that
// re-closes instantly would never shed load).
func New(threshold int, cooldown time.Duration, opts ...Option) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = 30 * time.Second
	}
	b := &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
	for _, o := range opts {
		o(b)
	}
	return b
}

// State reports the breaker's position.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.failures < b.threshold {
		return Closed
	}
	if b.now().Before(b.openUntil) {
		return Open
	}
	return HalfOpen
}

// Open reports whether new fills should be refused right now. Half-open
// is not open: the cooldown has elapsed and the next fill probes whether
// the failure cleared.
func (b *Breaker) Open() bool { return b.State() == Open }

// Success records a completed fill: the failure streak (and any cooldown
// escalation) resets and the breaker closes.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.failures = 0
	b.opens = 0
	b.mu.Unlock()
}

// Failure records a failed (or over-budget) fill. Reaching the threshold
// opens the breaker for a fresh cooldown — including from half-open,
// where a single failed probe re-opens it (escalating the cooldown when
// backoff is enabled).
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	if b.failures >= b.threshold {
		b.reopenLocked()
	}
}

// reopenLocked starts (or extends) a cooldown. A fresh open — no
// cooldown currently running — escalates the backoff; failures landing
// while already open merely extend the current cooldown. Requires b.mu.
func (b *Breaker) reopenLocked() {
	if !b.now().Before(b.openUntil) {
		b.opens++
	}
	b.openUntil = b.now().Add(b.cooldownLocked())
}

// cooldownLocked is the effective cooldown under the current escalation:
// base * 2^(opens-1), clamped to maxCooldown. Requires b.mu.
func (b *Breaker) cooldownLocked() time.Duration {
	d := b.cooldown
	if b.maxCooldown <= 0 {
		return d
	}
	for i := 1; i < b.opens && d < b.maxCooldown; i++ {
		d *= 2
	}
	if d > b.maxCooldown {
		d = b.maxCooldown
	}
	return d
}

// Trip forces the breaker open for a full cooldown (tests and manual
// load-shedding).
func (b *Breaker) Trip() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = b.threshold
	b.reopenLocked()
}

// Observe records one fill outcome in a single call: failure when err is
// non-nil or the fill exceeded budget (budget 0 disables the latency
// check). The elapsed check means a pathologically slow — but ultimately
// successful — compute still counts against the streak: the point of the
// breaker is to stop queueing clients behind fills that have stopped
// being fast, not only behind fills that error.
func (b *Breaker) Observe(err error, elapsed, budget time.Duration) {
	if err != nil || (budget > 0 && elapsed > budget) {
		b.Failure()
		return
	}
	b.Success()
}
