package resilience

import (
	"errors"
	"sync"
	"testing"
	"time"
)

type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 7, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestOpensAfterConsecutiveFailures(t *testing.T) {
	clock := newFakeClock()
	b := New(3, time.Minute, WithClock(clock.now))
	if b.State() != Closed {
		t.Fatalf("initial state = %v", b.State())
	}
	b.Failure()
	b.Failure()
	if b.Open() {
		t.Fatal("open below threshold")
	}
	b.Failure()
	if got := b.State(); got != Open {
		t.Fatalf("state after 3 failures = %v, want open", got)
	}
}

func TestSuccessResetsStreak(t *testing.T) {
	clock := newFakeClock()
	b := New(2, time.Minute, WithClock(clock.now))
	b.Failure()
	b.Success()
	b.Failure()
	if b.Open() {
		t.Fatal("non-consecutive failures opened the breaker")
	}
}

func TestCooldownThenHalfOpenProbe(t *testing.T) {
	clock := newFakeClock()
	b := New(1, time.Minute, WithClock(clock.now))
	b.Failure()
	if b.State() != Open {
		t.Fatal("not open after threshold")
	}
	clock.advance(59 * time.Second)
	if b.State() != Open {
		t.Fatal("closed before cooldown elapsed")
	}
	clock.advance(2 * time.Second)
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", got)
	}
	if b.Open() {
		t.Fatal("half-open must admit a probe fill")
	}
	// A failed probe re-opens for a fresh cooldown.
	b.Failure()
	if b.State() != Open {
		t.Fatal("failed probe did not re-open")
	}
	clock.advance(61 * time.Second)
	// A successful probe closes.
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
}

func TestTripForcesOpen(t *testing.T) {
	clock := newFakeClock()
	b := New(5, time.Minute, WithClock(clock.now))
	b.Trip()
	if b.State() != Open {
		t.Fatalf("state after Trip = %v, want open", b.State())
	}
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state after Success = %v, want closed", b.State())
	}
}

func TestObserve(t *testing.T) {
	clock := newFakeClock()
	b := New(1, time.Minute, WithClock(clock.now))
	b.Observe(nil, time.Millisecond, time.Second)
	if b.State() != Closed {
		t.Fatal("fast success opened the breaker")
	}
	b.Observe(errors.New("boom"), time.Millisecond, time.Second)
	if b.State() != Open {
		t.Fatal("error did not open the breaker")
	}
	b.Success()
	// A slow success counts as a failure when a budget is set...
	b.Observe(nil, 2*time.Second, time.Second)
	if b.State() != Open {
		t.Fatal("over-budget fill did not open the breaker")
	}
	b.Success()
	// ...and is ignored when the budget is disabled.
	b.Observe(nil, time.Hour, 0)
	if b.State() != Closed {
		t.Fatal("budget 0 still counted latency")
	}
}

func TestDefensiveDefaults(t *testing.T) {
	b := New(0, 0)
	b.Failure() // threshold raised to 1
	if !b.Open() {
		t.Fatal("threshold 0 did not clamp to 1")
	}
}

func TestConcurrentOutcomesAreRaceFree(t *testing.T) {
	b := New(3, time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if (i+j)%2 == 0 {
					b.Failure()
				} else {
					b.Success()
				}
				b.State()
			}
		}(i)
	}
	wg.Wait()
}

func TestExponentialBackoffCooldown(t *testing.T) {
	clock := newFakeClock()
	b := New(2, time.Second, WithClock(clock.now), WithMaxCooldown(4*time.Second))
	b.Failure()
	b.Failure() // first open: 1s cooldown
	if b.State() != Open {
		t.Fatal("not open after threshold")
	}
	clock.advance(time.Second)
	if b.State() != HalfOpen {
		t.Fatal("not half-open after base cooldown")
	}
	b.Failure() // failed probe: second open, 2s cooldown
	clock.advance(time.Second)
	if b.State() != Open {
		t.Fatal("cooldown did not double after a failed probe")
	}
	clock.advance(time.Second)
	if b.State() != HalfOpen {
		t.Fatal("not half-open after the doubled cooldown")
	}
	b.Failure() // third open: would be 4s
	b.Failure() // extra failure while open extends, but does not re-escalate
	clock.advance(4 * time.Second)
	if b.State() != HalfOpen {
		t.Fatal("not half-open after the 4s cooldown")
	}
	b.Failure() // fourth open: clamped to the 4s max
	clock.advance(4*time.Second - time.Millisecond)
	if b.State() != Open {
		t.Fatal("cooldown escaped the max clamp")
	}
	clock.advance(time.Millisecond)
	if b.State() != HalfOpen {
		t.Fatal("not half-open at the clamped max")
	}
	// A success resets the escalation: the next trip is back to base.
	b.Success()
	b.Failure()
	b.Failure()
	clock.advance(time.Second)
	if b.State() != HalfOpen {
		t.Fatal("escalation survived a success")
	}
}

func TestFixedCooldownWithoutBackoffOption(t *testing.T) {
	clock := newFakeClock()
	b := New(1, time.Second, WithClock(clock.now))
	for i := 0; i < 4; i++ {
		b.Failure()
		clock.advance(time.Second)
		if b.State() != HalfOpen {
			t.Fatalf("trip %d: cooldown drifted without WithMaxCooldown", i)
		}
	}
}
