package cache

import (
	"testing"
	"testing/quick"
)

func TestGeometry(t *testing.T) {
	c := New("l1", 32<<10, 8, 64)
	if c.Sets() != 64 || c.Ways() != 8 || c.LineBytes() != 64 {
		t.Errorf("geometry = %d sets, %d ways", c.Sets(), c.Ways())
	}
}

func TestTinyCacheClampsWays(t *testing.T) {
	c := New("tiny", 128, 8, 64) // only 2 lines
	if c.Ways() != 2 || c.Sets() != 1 {
		t.Errorf("tiny cache = %d sets x %d ways", c.Sets(), c.Ways())
	}
}

func TestHitMiss(t *testing.T) {
	c := New("c", 1<<10, 2, 64)
	if r := c.Access(0, false); r.Hit {
		t.Error("cold access hit")
	}
	if r := c.Access(0, false); !r.Hit {
		t.Error("second access missed")
	}
	if r := c.Access(63, false); !r.Hit {
		t.Error("same-line offset missed")
	}
	if r := c.Access(64, false); r.Hit {
		t.Error("next line hit")
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way, map three lines into one set; the least recently used goes.
	c := New("c", 2*64, 2, 64) // 1 set, 2 ways
	c.Access(0, false)         // A
	c.Access(64, false)        // B
	c.Access(0, false)         // touch A (B is now LRU)
	c.Access(128, false)       // C evicts B
	if !c.Probe(0) {
		t.Error("A evicted but was MRU")
	}
	if c.Probe(64) {
		t.Error("B should have been evicted")
	}
	if !c.Probe(128) {
		t.Error("C not resident")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := New("c", 2*64, 2, 64)
	c.Access(0, true) // dirty A
	c.Access(64, false)
	r := c.Access(128, false) // evicts A (LRU, dirty)
	if !r.HasWriteback {
		t.Fatal("dirty eviction produced no writeback")
	}
	if r.WritebackAddr != 0 {
		t.Errorf("writeback addr = %#x, want 0", r.WritebackAddr)
	}
	if c.Stats().Writebacks != 1 {
		t.Error("writeback not counted")
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	c := New("c", 2*64, 2, 64)
	c.Access(0, false)
	c.Access(64, false)
	r := c.Access(128, false)
	if r.HasWriteback {
		t.Error("clean eviction produced a writeback")
	}
}

func TestWritebackAddressReconstruction(t *testing.T) {
	c := New("c", 1<<12, 2, 64) // 32 sets
	// Fill one set with two dirty lines, then force an eviction and check
	// the reconstructed address matches the original line address.
	base := uint64(7 * 64) // set 7
	span := uint64(32 * 64)
	c.Access(base, true)
	c.Access(base+span, true)
	r := c.Access(base+2*span, true)
	if !r.HasWriteback {
		t.Fatal("no writeback")
	}
	if r.WritebackAddr != base {
		t.Errorf("writeback addr %#x, want %#x", r.WritebackAddr, base)
	}
}

func TestProbeDoesNotDisturbLRU(t *testing.T) {
	c := New("c", 2*64, 2, 64)
	c.Access(0, false)
	c.Access(64, false) // 0 is LRU
	c.Probe(0)          // must not promote
	c.Access(128, false)
	if c.Probe(0) {
		t.Error("probe promoted the line (LRU disturbed)")
	}
}

func TestInvalidate(t *testing.T) {
	c := New("c", 1<<10, 2, 64)
	c.Access(0, true)
	r := c.Invalidate(0)
	if !r.Hit || !r.HasWriteback {
		t.Errorf("invalidate of dirty line = %+v", r)
	}
	if c.Probe(0) {
		t.Error("line still resident after invalidate")
	}
	if r := c.Invalidate(0); r.Hit {
		t.Error("double invalidate hit")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New("bad", 0, 1, 64)
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Error("empty hit rate should be 0")
	}
	s.Hits, s.Misses = 9, 1
	if s.HitRate() != 0.9 {
		t.Errorf("HitRate = %g", s.HitRate())
	}
}

func TestReset(t *testing.T) {
	c := New("c", 1<<10, 2, 64)
	c.Access(0, true)
	c.Reset()
	if c.Probe(0) {
		t.Error("contents survived reset")
	}
	if c.Stats() != (Stats{}) {
		t.Error("stats survived reset")
	}
}

// Property: cache behaviour matches a reference model (map + LRU list) for
// arbitrary access streams — hits, misses, and writeback addresses all agree.
func TestMatchesReferenceModelProperty(t *testing.T) {
	type ref struct {
		lines map[uint64]bool // line -> dirty
		order []uint64        // LRU order, most recent last
	}
	const ways = 4
	f := func(stream []struct {
		Addr  uint16
		Write bool
	}) bool {
		c := New("p", ways*64, ways, 64) // one set of 4 ways
		r := ref{lines: map[uint64]bool{}}
		for _, acc := range stream {
			line := uint64(acc.Addr) / 64
			res := c.Access(uint64(acc.Addr), acc.Write)

			_, present := r.lines[line]
			if res.Hit != present {
				return false
			}
			if present {
				for i, l := range r.order {
					if l == line {
						r.order = append(r.order[:i], r.order[i+1:]...)
						break
					}
				}
			} else if len(r.order) == ways {
				victim := r.order[0]
				r.order = r.order[1:]
				dirty := r.lines[victim]
				delete(r.lines, victim)
				if dirty != res.HasWriteback {
					return false
				}
				if dirty && res.WritebackAddr != victim*64 {
					return false
				}
			} else if res.HasWriteback {
				return false
			}
			r.order = append(r.order, line)
			r.lines[line] = r.lines[line] || acc.Write
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHierarchy(t *testing.T) {
	h := &Hierarchy{
		L1: New("l1", 2*64, 2, 64),
		L2: New("l2", 4*64, 4, 64),
		L3: New("l3", 8*64, 8, 64),
	}
	if r := h.Access(0, false); r.Level != 0 {
		t.Errorf("cold access level = %d, want 0 (DRAM)", r.Level)
	}
	if r := h.Access(0, false); r.Level != 1 {
		t.Errorf("hot access level = %d, want 1", r.Level)
	}
	// Evict from L1 by touching two more lines in its only set; line 0
	// should still hit in L2.
	h.Access(64, false)
	h.Access(128, false)
	if r := h.Access(0, false); r.Level != 2 && r.Level != 3 {
		t.Errorf("evicted line hit level %d, want 2 or 3", r.Level)
	}
}

func TestHierarchyWithoutL3(t *testing.T) {
	h := &Hierarchy{L1: New("l1", 64, 1, 64), L2: New("l2", 2*64, 2, 64)}
	if r := h.Access(0, false); r.Level != 0 {
		t.Error("cold access should go to DRAM")
	}
	if r := h.Access(0, false); r.Level != 1 {
		t.Error("hot access should hit L1")
	}
}

func TestHierarchyCollectsWritebacks(t *testing.T) {
	h := &Hierarchy{L1: New("l1", 64, 1, 64), L2: New("l2", 64, 1, 64)}
	h.Access(0, true)        // dirty in L1
	r := h.Access(64, false) // evicts line 0 from both
	if len(r.Writebacks) == 0 {
		t.Error("dirty writeback lost in hierarchy")
	}
}

// TestIndexMatchesPlainModulo pins the strength-reduced set indexing
// (shift/mask and the odd<<k Lemire decomposition) against the plain
// division it replaced, across the repo's real geometries and awkward
// ones, including dividends past 32 bits (the fallback path).
func TestIndexMatchesPlainModulo(t *testing.T) {
	geoms := []struct{ size, ways, line int }{
		{32 << 10, 8, 64},  // L1: 64 sets
		{256 << 10, 8, 64}, // L2: 512 sets
		{9 << 20, 8, 64},   // L3: 18432 sets (9<<11, non-pow2)
		{12 << 10, 3, 64},  // odd ways, 64 sets
		{3 << 10, 8, 64},   // 6 sets (3<<1)
		{64, 8, 64},        // single set
		{28 << 10, 7, 64},  // 64 sets with 7 ways
		{18 << 10, 8, 96},  // non-pow2 line size: division path
	}
	addrs := []uint64{0, 1, 63, 64, 65, 4096, 1 << 20, 1 << 32, (1 << 44) + 8*64, ^uint64(0) >> 2}
	for i := uint64(0); i < 10000; i++ {
		addrs = append(addrs, i*64, i*6400+i, (1<<33)+i*64)
	}
	for _, g := range geoms {
		for _, hashed := range []bool{false, true} {
			c := build("t", g.size, g.ways, g.line, hashed)
			for _, addr := range addrs {
				lineAddr := addr / uint64(g.line)
				key := lineAddr
				if hashed {
					key = (lineAddr * 0x9E3779B97F4A7C15) >> 40
				}
				wantSet := int(key % uint64(c.sets))
				gotSet, gotTag := c.index(addr)
				if gotSet != wantSet || gotTag != lineAddr {
					t.Fatalf("geom %+v hashed=%v addr %#x: index=(%d,%#x), want (%d,%#x)",
						g, hashed, addr, gotSet, gotTag, wantSet, lineAddr)
				}
				// Access hand-inlines the same computation; Probe goes
				// through index(). Allocating via Access and finding the
				// line via Probe pins the two copies to the same set.
				c.Access(addr, false)
				if !c.Probe(addr) {
					t.Fatalf("geom %+v hashed=%v addr %#x: Access and index() disagree on the set", g, hashed, addr)
				}
			}
		}
	}
}
