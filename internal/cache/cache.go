// Package cache models set-associative write-back, write-allocate caches
// with LRU replacement: the per-core L1/L2, the shared L3, and the MEE's
// 32 KB metadata cache (Table 1).
//
// The model is a functional tag store (hits and victims are exact for the
// access stream it sees); latency is charged by the callers.
package cache

import (
	"fmt"
	"math/bits"
	"sort"

	"tensortee/internal/sim"
)

// Result describes the outcome of a cache access.
type Result struct {
	Hit bool
	// WritebackAddr is the line address of a dirty victim evicted by this
	// access, or NoWriteback.
	WritebackAddr uint64
	HasWriteback  bool
}

// Line state lives in one interleaved slab — per set, the ways' tag
// words followed by the ways' LRU words — so the scan of Access, the
// hottest loop in the whole simulator, touches two adjacent hardware
// cache lines per set instead of two distant ones in parallel arrays
// (for the big L3 the second line was a second cold miss; adjacent lines
// ride the same prefetch). The valid bit folds into the tag word itself
// — tags hold lineAddr+1 with 0 meaning invalid — so the hit scan is a
// pure 8-word compare; the dirty bit folds into the top bit of the LRU
// word (clock stamps use the low 63 bits, far beyond any run length). A
// packed rank-permutation encoding (one word per set) was tried and
// reverted: the per-access rank shuffle was pure added ALU work.

// dirtyBit marks a dirty line in the top bit of its LRU word; the low 63
// bits are the recency stamp.
const dirtyBit = uint64(1) << 63

// Cache is a single level tag store.
type Cache struct {
	name      string
	lineBytes int
	sets      int
	ways      int
	hashed    bool
	slab      []uint64 // per set: ways tag words, then ways LRU words
	clock     uint64

	// gens is a per-set generation counter, bumped whenever a tag in the
	// set changes (fill, invalidate, reset). It is the cheap set-state
	// fingerprint behind Handle revalidation and the span memos: while a
	// set's generation is unchanged, residency answers about its lines
	// stay valid (LRU-only updates never move tags). Maintenance costs a
	// store per fill, so it switches on with the first AccessTrack call
	// (handles cannot predate it); the data caches, which never ask for
	// handles, skip it entirely.
	gens      []uint64
	trackGens bool

	// Strength-reduced indexing (hot path): lineShift replaces the
	// division by lineBytes when it is a power of two, setMask the modulo
	// by sets. A shift/mask computes the exact same quotient/remainder as
	// the division it replaces, so hit/miss/victim behavior is unchanged;
	// -1 means "not a power of two, keep dividing".
	//
	// Non-power-of-two set counts (the 9 MB L3 has 18432 = 9<<11 sets)
	// decompose as odd<<k: the low k bits mask off, and the odd modulo of
	// the high bits uses Lemire's exact fastmod (divisionless; valid for
	// 32-bit dividends, with a division fallback beyond). key % (odd<<k)
	// == ((key>>k) % odd) << k | (key & (1<<k - 1)) is an identity, so
	// set indices are bit-for-bit the historical ones.
	lineShift  int
	setMask    uint64
	setShift   uint   // k of the odd<<k decomposition
	setOdd     uint64 // odd factor of sets
	setLowMask uint64 // 1<<k - 1
	oddMagic   uint64 // ceil(2^64 / setOdd), Lemire's M

	hits, misses, writebacks uint64
}

// New constructs a cache of size bytes with the given associativity and
// line size, using plain modulo set indexing (data caches).
func New(name string, sizeBytes, ways, lineBytes int) *Cache {
	return build(name, sizeBytes, ways, lineBytes, false)
}

// NewHashed constructs a cache whose set index XOR-folds higher address
// bits — the indexing used by the MEE metadata cache, where the VN/MAC
// lines of power-of-two-spaced tensors would otherwise alias onto one set.
func NewHashed(name string, sizeBytes, ways, lineBytes int) *Cache {
	return build(name, sizeBytes, ways, lineBytes, true)
}

func build(name string, sizeBytes, ways, lineBytes int, hashed bool) *Cache {
	if sizeBytes <= 0 || ways <= 0 || lineBytes <= 0 {
		panic(fmt.Sprintf("cache %s: invalid geometry size=%d ways=%d line=%d", name, sizeBytes, ways, lineBytes))
	}
	lines := sizeBytes / lineBytes
	if lines < ways {
		ways = lines
	}
	sets := lines / ways
	if sets == 0 {
		sets = 1
	}
	c := &Cache{
		name:      name,
		lineBytes: lineBytes,
		sets:      sets,
		ways:      ways,
		hashed:    hashed,
		slab:      make([]uint64, 2*sets*ways),
		gens:      make([]uint64, sets),
		lineShift: sim.Pow2Shift(lineBytes),
	}
	if sim.Pow2Shift(sets) > 0 {
		c.setMask = uint64(sets - 1)
	} else {
		// Non-power-of-two sets (or a single set, whose mask would
		// collide with the sentinel): odd<<k decomposition.
		k := uint(bits.TrailingZeros64(uint64(sets)))
		c.setShift = k
		c.setOdd = uint64(sets) >> k
		c.setLowMask = 1<<k - 1
		c.oddMagic = ^uint64(0)/c.setOdd + 1
	}
	return c
}

// oddMod computes hi % c.setOdd: divisionless (Lemire fastmod) for
// 32-bit dividends, exact division beyond.
func (c *Cache) oddMod(hi uint64) uint64 {
	if hi>>32 == 0 {
		low := c.oddMagic * hi // wrapping multiply
		m, _ := bits.Mul64(low, c.setOdd)
		return m
	}
	return hi % c.setOdd
}

// setViews returns the tag and LRU word views of one set.
func (c *Cache) setViews(set int) (tags, lru []uint64) {
	base := 2 * set * c.ways
	return c.slab[base : base+c.ways], c.slab[base+c.ways : base+2*c.ways]
}

// LineBytes returns the cache line size.
func (c *Cache) LineBytes() int { return c.lineBytes }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// index returns the set and tag for addr. The tag is the full line
// address, so victim addresses reconstruct exactly under either indexing.
// Hashed indexing uses Fibonacci (multiplicative) hashing: plain XOR folds
// leave power-of-two strides (1 MB-spaced tensors) colliding pairwise.
func (c *Cache) index(addr uint64) (set int, tag uint64) {
	var lineAddr uint64
	if c.lineShift >= 0 {
		lineAddr = addr >> uint(c.lineShift)
	} else {
		lineAddr = addr / uint64(c.lineBytes)
	}
	tag = lineAddr
	key := lineAddr
	if c.hashed {
		key = (lineAddr * 0x9E3779B97F4A7C15) >> 40
	}
	if c.setMask != 0 {
		set = int(key & c.setMask)
	} else {
		set = int(c.oddMod(key>>c.setShift)<<c.setShift | key&c.setLowMask)
	}
	return
}

// Access performs a read or write of the line containing addr, allocating
// on miss and reporting any dirty victim that must be written back.
//
// The body mirrors AccessTrack minus the handle bookkeeping rather than
// delegating to it: this is the hottest function in the simulator and
// the extra call layer is measurable.
func (c *Cache) Access(addr uint64, write bool) Result {
	// index() inlined by hand: the call shows up at this call frequency.
	var lineAddr uint64
	if c.lineShift >= 0 {
		lineAddr = addr >> uint(c.lineShift)
	} else {
		lineAddr = addr / uint64(c.lineBytes)
	}
	key := lineAddr
	if c.hashed {
		key = (lineAddr * 0x9E3779B97F4A7C15) >> 40
	}
	var set int
	if c.setMask != 0 {
		set = int(key & c.setMask)
	} else {
		set = int(c.oddMod(key>>c.setShift)<<c.setShift | key&c.setLowMask)
	}
	tagKey := lineAddr + 1 // 0 is the invalid sentinel, so keys start at 1
	c.clock++
	base := 2 * set * c.ways

	// Fused scan: one pass both finds a hit and tracks the victim the
	// miss path would pick (first invalid way, else the valid way with the
	// strictly smallest LRU stamp, first winning ties). The pass visits
	// ways in the same order as the historical two-pass scan, so the
	// selected victim — and with it every future hit/miss — is identical;
	// fusing only removes the second walk over the set on misses, the
	// hottest loop in the whole simulator. The set subslices let the
	// compiler drop the per-way bounds checks; invalid ways are tracked
	// separately so valid ways cost one compare and one LRU load each.
	tags := c.slab[base : base+c.ways]
	lru := c.slab[base+c.ways : base+2*c.ways]
	firstInv := -1
	victim := 0
	victimLru := ^uint64(0)
	for i := 0; i < len(tags); i++ {
		t := tags[i]
		if t == tagKey {
			stamp := c.clock | lru[i]&dirtyBit
			if write {
				stamp |= dirtyBit
			}
			lru[i] = stamp
			c.hits++
			return Result{Hit: true}
		}
		if t == 0 {
			if firstInv < 0 {
				firstInv = i
			}
		} else if s := lru[i] &^ dirtyBit; s < victimLru {
			victim, victimLru = i, s
		}
	}
	c.misses++

	res := Result{Hit: false}
	if firstInv >= 0 {
		victim = firstInv
	} else if lru[victim]&dirtyBit != 0 {
		c.writebacks++
		res.HasWriteback = true
		res.WritebackAddr = (tags[victim] - 1) * uint64(c.lineBytes)
	}
	tags[victim] = tagKey
	stamp := c.clock
	if write {
		stamp |= dirtyBit
	}
	lru[victim] = stamp
	if c.trackGens {
		c.gens[set]++
	}
	return res
}

// Probe reports whether addr's line is resident without touching LRU state.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	tags, _ := c.setViews(set)
	for i := range tags {
		if tags[i] == tag+1 {
			return true
		}
	}
	return false
}

// Handle is a revalidatable pointer to a resident line: the way it was
// found in plus the set generation observed at that time. While the
// generation is unchanged (no tag in the set moved), the line is still in
// that way and AccessVia can take the O(1) hit path without a scan.
type Handle struct {
	set, way int32
	gen      uint64
}

// AccessTrack is Access plus a Handle to the line's way (the hit way, or
// the way just filled on a miss). The returned handle carries the
// post-access set generation, so it revalidates until the set's tags next
// change. The first AccessTrack call switches generation maintenance on.
func (c *Cache) AccessTrack(addr uint64, write bool) (Result, Handle) {
	if !c.trackGens {
		c.trackGens = true
	}
	set, tag := c.index(addr)
	tags, lru := c.setViews(set)
	for i := range tags {
		if tags[i] == tag+1 {
			// Replay as the exact Access hit (clock, recency, dirty,
			// counter), then hand out the way.
			c.clock++
			stamp := c.clock | lru[i]&dirtyBit
			if write {
				stamp |= dirtyBit
			}
			lru[i] = stamp
			c.hits++
			return Result{Hit: true}, Handle{set: int32(set), way: int32(i), gen: c.gens[set]}
		}
	}
	// Miss: the full Access path fills (and bumps the generation); the
	// filled line is resident afterwards, so its way is findable. Rather
	// than duplicating the victim logic, run Access and rescan the set —
	// misses fetch from DRAM anyway, so the extra scan is noise.
	r := c.Access(addr, write)
	for i := range tags {
		if tags[i] == tag+1 {
			return r, Handle{set: int32(set), way: int32(i), gen: c.gens[set]}
		}
	}
	panic("cache: filled line not found in its set")
}

// AccessVia performs one access through a handle: when the handle's set
// generation is current and its way still holds addr's line, the access is
// the exact Access hit path (clock, recency, dirty bit, hit counter)
// without any scan, and AccessVia reports true. A stale handle leaves all
// state untouched and reports false — the caller falls back to Access.
func (c *Cache) AccessVia(h Handle, addr uint64, write bool) bool {
	if h.gen != c.gens[h.set] {
		return false
	}
	var lineAddr uint64
	if c.lineShift >= 0 {
		lineAddr = addr >> uint(c.lineShift)
	} else {
		lineAddr = addr / uint64(c.lineBytes)
	}
	i := 2*int(h.set)*c.ways + int(h.way)
	if c.slab[i] != lineAddr+1 {
		return false
	}
	c.clock++
	stamp := c.clock | c.slab[i+c.ways]&dirtyBit
	if write {
		stamp |= dirtyBit
	}
	c.slab[i+c.ways] = stamp
	c.hits++
	return true
}

// AccessHitN performs n consecutive accesses to addr's line given it is
// resident, reporting false (and touching nothing) when it is not. The
// batched effect is exactly n sequential Access hits: the clock advances
// by n, the line ends most recent, the dirty bit ORs in write, and n hits
// are counted (repeat hits to the newest line change nothing else).
func (c *Cache) AccessHitN(addr uint64, n int, write bool) bool {
	if n <= 0 {
		return true
	}
	set, tag := c.index(addr)
	tags, lru := c.setViews(set)
	for i := range tags {
		if tags[i] == tag+1 {
			c.clock += uint64(n)
			stamp := c.clock | lru[i]&dirtyBit
			if write {
				stamp |= dirtyBit
			}
			lru[i] = stamp
			c.hits += uint64(n)
			return true
		}
	}
	return false
}

// HitPrefix consumes the longest all-resident prefix of a span of lines
// (addr, addr+stride, ...): each consumed line is exactly one Access hit
// (clock, recency, dirty, hit counter), and the scan stops — leaving all
// state untouched for the remainder — at the first non-resident line. It
// returns the number of lines consumed. One pass per set, no victim
// work: this is the span-probe the core loop uses to retire L1-resident
// bursts without per-line Access calls.
func (c *Cache) HitPrefix(addr uint64, lines int, stride uint64, write bool) int {
	consumed := 0
	for ; consumed < lines; consumed++ {
		set, tag := c.index(addr)
		tags, lru := c.setViews(set)
		hit := false
		for i := range tags {
			if tags[i] == tag+1 {
				c.clock++
				stamp := c.clock | lru[i]&dirtyBit
				if write {
					stamp |= dirtyBit
				}
				lru[i] = stamp
				c.hits++
				hit = true
				break
			}
		}
		if !hit {
			break
		}
		addr += stride
	}
	return consumed
}

// Invalidate drops addr's line if resident, returning a dirty victim if any.
func (c *Cache) Invalidate(addr uint64) Result {
	set, tag := c.index(addr)
	tags, lru := c.setViews(set)
	for i := range tags {
		if tags[i] == tag+1 {
			res := Result{Hit: true}
			if lru[i]&dirtyBit != 0 {
				c.writebacks++
				res.HasWriteback = true
				res.WritebackAddr = tag * uint64(c.lineBytes)
			}
			tags[i] = 0
			lru[i] &^= dirtyBit
			if c.trackGens {
				c.gens[set]++
			}
			return res
		}
	}
	return Result{}
}

// DrainDirty removes and returns the addresses of all dirty lines (in
// ascending address order) — the write-back flush an enclave performs on
// exit. Clean lines stay resident. Tags stay put (clean lines remain
// resident), so handles and set generations stay valid: only the dirty
// bits change.
func (c *Cache) DrainDirty() []uint64 {
	var out []uint64
	for set := 0; set < c.sets; set++ {
		tags, lru := c.setViews(set)
		for i := range tags {
			if tags[i] != 0 && lru[i]&dirtyBit != 0 {
				out = append(out, (tags[i]-1)*uint64(c.lineBytes))
				lru[i] &^= dirtyBit
				c.writebacks++
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats are cumulative access counters.
type Stats struct {
	Hits, Misses, Writebacks uint64
}

// Stats returns the cumulative counters.
func (c *Cache) Stats() Stats {
	return Stats{Hits: c.hits, Misses: c.misses, Writebacks: c.writebacks}
}

// HitRate reports hits/(hits+misses), 0 when untouched.
func (s Stats) HitRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}

// Reset clears contents and counters. Set generations keep advancing
// (rather than resetting) so handles issued before the reset can never
// revalidate against the emptied sets.
func (c *Cache) Reset() {
	for i := range c.slab {
		c.slab[i] = 0
	}
	if c.trackGens {
		for i := range c.gens {
			c.gens[i]++
		}
	}
	c.clock, c.hits, c.misses, c.writebacks = 0, 0, 0, 0
}

// Hierarchy is a simple inclusive multi-level lookup: L1 -> L2 -> (shared)
// L3. It returns the level that hit (1-based) or 0 for memory, plus any
// dirty writebacks generated on the fill path.
type Hierarchy struct {
	L1, L2 *Cache // per-core
	L3     *Cache // shared, may be nil
}

// AccessResult reports where a hierarchy access was satisfied.
type AccessResult struct {
	Level      int // 1,2,3 or 0 = DRAM
	Writebacks []uint64
}

// Access walks the hierarchy for the line containing addr.
func (h *Hierarchy) Access(addr uint64, write bool) AccessResult {
	var wbs []uint64
	record := func(r Result) {
		if r.HasWriteback {
			wbs = append(wbs, r.WritebackAddr)
		}
	}
	if r := h.L1.Access(addr, write); r.Hit {
		return AccessResult{Level: 1}
	} else {
		record(r)
	}
	if r := h.L2.Access(addr, false); r.Hit {
		return AccessResult{Level: 2, Writebacks: wbs}
	} else {
		record(r)
	}
	if h.L3 != nil {
		if r := h.L3.Access(addr, false); r.Hit {
			return AccessResult{Level: 3, Writebacks: wbs}
		} else {
			record(r)
		}
		return AccessResult{Level: 0, Writebacks: wbs}
	}
	return AccessResult{Level: 0, Writebacks: wbs}
}
