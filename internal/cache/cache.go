// Package cache models set-associative write-back, write-allocate caches
// with LRU replacement: the per-core L1/L2, the shared L3, and the MEE's
// 32 KB metadata cache (Table 1).
//
// The model is a functional tag store (hits and victims are exact for the
// access stream it sees); latency is charged by the callers.
package cache

import (
	"fmt"
	"sort"
)

// Result describes the outcome of a cache access.
type Result struct {
	Hit bool
	// WritebackAddr is the line address of a dirty victim evicted by this
	// access, or NoWriteback.
	WritebackAddr uint64
	HasWriteback  bool
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // larger = more recently used
}

// Cache is a single level tag store.
type Cache struct {
	name      string
	lineBytes int
	sets      int
	ways      int
	hashed    bool
	data      []line // sets*ways
	clock     uint64

	hits, misses, writebacks uint64
}

// New constructs a cache of size bytes with the given associativity and
// line size, using plain modulo set indexing (data caches).
func New(name string, sizeBytes, ways, lineBytes int) *Cache {
	return build(name, sizeBytes, ways, lineBytes, false)
}

// NewHashed constructs a cache whose set index XOR-folds higher address
// bits — the indexing used by the MEE metadata cache, where the VN/MAC
// lines of power-of-two-spaced tensors would otherwise alias onto one set.
func NewHashed(name string, sizeBytes, ways, lineBytes int) *Cache {
	return build(name, sizeBytes, ways, lineBytes, true)
}

func build(name string, sizeBytes, ways, lineBytes int, hashed bool) *Cache {
	if sizeBytes <= 0 || ways <= 0 || lineBytes <= 0 {
		panic(fmt.Sprintf("cache %s: invalid geometry size=%d ways=%d line=%d", name, sizeBytes, ways, lineBytes))
	}
	lines := sizeBytes / lineBytes
	if lines < ways {
		ways = lines
	}
	sets := lines / ways
	if sets == 0 {
		sets = 1
	}
	return &Cache{
		name:      name,
		lineBytes: lineBytes,
		sets:      sets,
		ways:      ways,
		hashed:    hashed,
		data:      make([]line, sets*ways),
	}
}

// LineBytes returns the cache line size.
func (c *Cache) LineBytes() int { return c.lineBytes }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// index returns the set and tag for addr. The tag is the full line
// address, so victim addresses reconstruct exactly under either indexing.
// Hashed indexing uses Fibonacci (multiplicative) hashing: plain XOR folds
// leave power-of-two strides (1 MB-spaced tensors) colliding pairwise.
func (c *Cache) index(addr uint64) (set int, tag uint64) {
	lineAddr := addr / uint64(c.lineBytes)
	tag = lineAddr
	if c.hashed {
		h := lineAddr * 0x9E3779B97F4A7C15
		set = int((h >> 40) % uint64(c.sets))
	} else {
		set = int(lineAddr % uint64(c.sets))
	}
	return
}

// Access performs a read or write of the line containing addr, allocating
// on miss and reporting any dirty victim that must be written back.
func (c *Cache) Access(addr uint64, write bool) Result {
	set, tag := c.index(addr)
	c.clock++
	base := set * c.ways

	// hit?
	for w := 0; w < c.ways; w++ {
		l := &c.data[base+w]
		if l.valid && l.tag == tag {
			l.lru = c.clock
			if write {
				l.dirty = true
			}
			c.hits++
			return Result{Hit: true}
		}
	}
	c.misses++

	// miss: find victim (invalid first, else LRU)
	victim := base
	for w := 0; w < c.ways; w++ {
		l := &c.data[base+w]
		if !l.valid {
			victim = base + w
			break
		}
		if l.lru < c.data[victim].lru {
			victim = base + w
		}
	}
	res := Result{Hit: false}
	v := &c.data[victim]
	if v.valid && v.dirty {
		c.writebacks++
		res.HasWriteback = true
		res.WritebackAddr = v.tag * uint64(c.lineBytes)
	}
	*v = line{tag: tag, valid: true, dirty: write, lru: c.clock}
	return res
}

// Probe reports whether addr's line is resident without touching LRU state.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		l := &c.data[base+w]
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Invalidate drops addr's line if resident, returning a dirty victim if any.
func (c *Cache) Invalidate(addr uint64) Result {
	set, tag := c.index(addr)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		l := &c.data[base+w]
		if l.valid && l.tag == tag {
			res := Result{Hit: true}
			if l.dirty {
				c.writebacks++
				res.HasWriteback = true
				res.WritebackAddr = tag * uint64(c.lineBytes)
			}
			l.valid = false
			return res
		}
	}
	return Result{}
}

// DrainDirty removes and returns the addresses of all dirty lines (in
// ascending address order) — the write-back flush an enclave performs on
// exit. Clean lines stay resident.
func (c *Cache) DrainDirty() []uint64 {
	var out []uint64
	for i := range c.data {
		l := &c.data[i]
		if l.valid && l.dirty {
			out = append(out, l.tag*uint64(c.lineBytes))
			l.dirty = false
			c.writebacks++
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats are cumulative access counters.
type Stats struct {
	Hits, Misses, Writebacks uint64
}

// Stats returns the cumulative counters.
func (c *Cache) Stats() Stats {
	return Stats{Hits: c.hits, Misses: c.misses, Writebacks: c.writebacks}
}

// HitRate reports hits/(hits+misses), 0 when untouched.
func (s Stats) HitRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.data {
		c.data[i] = line{}
	}
	c.clock, c.hits, c.misses, c.writebacks = 0, 0, 0, 0
}

// Hierarchy is a simple inclusive multi-level lookup: L1 -> L2 -> (shared)
// L3. It returns the level that hit (1-based) or 0 for memory, plus any
// dirty writebacks generated on the fill path.
type Hierarchy struct {
	L1, L2 *Cache // per-core
	L3     *Cache // shared, may be nil
}

// AccessResult reports where a hierarchy access was satisfied.
type AccessResult struct {
	Level      int // 1,2,3 or 0 = DRAM
	Writebacks []uint64
}

// Access walks the hierarchy for the line containing addr.
func (h *Hierarchy) Access(addr uint64, write bool) AccessResult {
	var wbs []uint64
	record := func(r Result) {
		if r.HasWriteback {
			wbs = append(wbs, r.WritebackAddr)
		}
	}
	if r := h.L1.Access(addr, write); r.Hit {
		return AccessResult{Level: 1}
	} else {
		record(r)
	}
	if r := h.L2.Access(addr, false); r.Hit {
		return AccessResult{Level: 2, Writebacks: wbs}
	} else {
		record(r)
	}
	if h.L3 != nil {
		if r := h.L3.Access(addr, false); r.Hit {
			return AccessResult{Level: 3, Writebacks: wbs}
		} else {
			record(r)
		}
		return AccessResult{Level: 0, Writebacks: wbs}
	}
	return AccessResult{Level: 0, Writebacks: wbs}
}
