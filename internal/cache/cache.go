// Package cache models set-associative write-back, write-allocate caches
// with LRU replacement: the per-core L1/L2, the shared L3, and the MEE's
// 32 KB metadata cache (Table 1).
//
// The model is a functional tag store (hits and victims are exact for the
// access stream it sees); latency is charged by the callers.
package cache

import (
	"fmt"
	"math/bits"
	"sort"

	"tensortee/internal/sim"
)

// Result describes the outcome of a cache access.
type Result struct {
	Hit bool
	// WritebackAddr is the line address of a dirty victim evicted by this
	// access, or NoWriteback.
	WritebackAddr uint64
	HasWriteback  bool
}

// Line state lives in parallel arrays (tags / lru / dirty) rather than
// an array of structs: the way scan of Access is the hottest loop in the
// whole simulator, and scanning 8 contiguous uint64 tags touches one
// hardware cache line instead of striding over 24-byte structs. The
// valid bit folds into the tag word itself — tags hold lineAddr+1 with 0
// meaning invalid — so the hit scan is a pure 8-word compare.

// Cache is a single level tag store.
type Cache struct {
	name      string
	lineBytes int
	sets      int
	ways      int
	hashed    bool
	tags      []uint64 // sets*ways; lineAddr+1, 0 = invalid
	lru       []uint64 // larger = more recently used
	dirty     []bool
	clock     uint64

	// Strength-reduced indexing (hot path): lineShift replaces the
	// division by lineBytes when it is a power of two, setMask the modulo
	// by sets. A shift/mask computes the exact same quotient/remainder as
	// the division it replaces, so hit/miss/victim behavior is unchanged;
	// -1 means "not a power of two, keep dividing".
	//
	// Non-power-of-two set counts (the 9 MB L3 has 18432 = 9<<11 sets)
	// decompose as odd<<k: the low k bits mask off, and the odd modulo of
	// the high bits uses Lemire's exact fastmod (divisionless; valid for
	// 32-bit dividends, with a division fallback beyond). key % (odd<<k)
	// == ((key>>k) % odd) << k | (key & (1<<k - 1)) is an identity, so
	// set indices are bit-for-bit the historical ones.
	lineShift  int
	setMask    uint64
	setShift   uint   // k of the odd<<k decomposition
	setOdd     uint64 // odd factor of sets
	setLowMask uint64 // 1<<k - 1
	oddMagic   uint64 // ceil(2^64 / setOdd), Lemire's M

	hits, misses, writebacks uint64
}

// New constructs a cache of size bytes with the given associativity and
// line size, using plain modulo set indexing (data caches).
func New(name string, sizeBytes, ways, lineBytes int) *Cache {
	return build(name, sizeBytes, ways, lineBytes, false)
}

// NewHashed constructs a cache whose set index XOR-folds higher address
// bits — the indexing used by the MEE metadata cache, where the VN/MAC
// lines of power-of-two-spaced tensors would otherwise alias onto one set.
func NewHashed(name string, sizeBytes, ways, lineBytes int) *Cache {
	return build(name, sizeBytes, ways, lineBytes, true)
}

func build(name string, sizeBytes, ways, lineBytes int, hashed bool) *Cache {
	if sizeBytes <= 0 || ways <= 0 || lineBytes <= 0 {
		panic(fmt.Sprintf("cache %s: invalid geometry size=%d ways=%d line=%d", name, sizeBytes, ways, lineBytes))
	}
	lines := sizeBytes / lineBytes
	if lines < ways {
		ways = lines
	}
	sets := lines / ways
	if sets == 0 {
		sets = 1
	}
	c := &Cache{
		name:      name,
		lineBytes: lineBytes,
		sets:      sets,
		ways:      ways,
		hashed:    hashed,
		tags:      make([]uint64, sets*ways),
		lru:       make([]uint64, sets*ways),
		dirty:     make([]bool, sets*ways),
		lineShift: sim.Pow2Shift(lineBytes),
	}
	if sim.Pow2Shift(sets) > 0 {
		c.setMask = uint64(sets - 1)
	} else {
		// Non-power-of-two sets (or a single set, whose mask would
		// collide with the sentinel): odd<<k decomposition.
		k := uint(bits.TrailingZeros64(uint64(sets)))
		c.setShift = k
		c.setOdd = uint64(sets) >> k
		c.setLowMask = 1<<k - 1
		c.oddMagic = ^uint64(0)/c.setOdd + 1
	}
	return c
}

// oddMod computes hi % c.setOdd: divisionless (Lemire fastmod) for
// 32-bit dividends, exact division beyond.
func (c *Cache) oddMod(hi uint64) uint64 {
	if hi>>32 == 0 {
		low := c.oddMagic * hi // wrapping multiply
		m, _ := bits.Mul64(low, c.setOdd)
		return m
	}
	return hi % c.setOdd
}

// LineBytes returns the cache line size.
func (c *Cache) LineBytes() int { return c.lineBytes }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// index returns the set and tag for addr. The tag is the full line
// address, so victim addresses reconstruct exactly under either indexing.
// Hashed indexing uses Fibonacci (multiplicative) hashing: plain XOR folds
// leave power-of-two strides (1 MB-spaced tensors) colliding pairwise.
func (c *Cache) index(addr uint64) (set int, tag uint64) {
	var lineAddr uint64
	if c.lineShift >= 0 {
		lineAddr = addr >> uint(c.lineShift)
	} else {
		lineAddr = addr / uint64(c.lineBytes)
	}
	tag = lineAddr
	key := lineAddr
	if c.hashed {
		key = (lineAddr * 0x9E3779B97F4A7C15) >> 40
	}
	if c.setMask != 0 {
		set = int(key & c.setMask)
	} else {
		set = int(c.oddMod(key>>c.setShift)<<c.setShift | key&c.setLowMask)
	}
	return
}

// Access performs a read or write of the line containing addr, allocating
// on miss and reporting any dirty victim that must be written back.
func (c *Cache) Access(addr uint64, write bool) Result {
	// index() inlined by hand: the call shows up at this call frequency.
	var lineAddr uint64
	if c.lineShift >= 0 {
		lineAddr = addr >> uint(c.lineShift)
	} else {
		lineAddr = addr / uint64(c.lineBytes)
	}
	key := lineAddr
	if c.hashed {
		key = (lineAddr * 0x9E3779B97F4A7C15) >> 40
	}
	var set int
	if c.setMask != 0 {
		set = int(key & c.setMask)
	} else {
		set = int(c.oddMod(key>>c.setShift)<<c.setShift | key&c.setLowMask)
	}
	tagKey := lineAddr + 1 // 0 is the invalid sentinel, so keys start at 1
	c.clock++
	base := set * c.ways
	end := base + c.ways

	// Hit scan first: a pure word compare over one hardware cache line.
	for i := base; i < end; i++ {
		if c.tags[i] == tagKey {
			c.lru[i] = c.clock
			if write {
				c.dirty[i] = true
			}
			c.hits++
			return Result{Hit: true}
		}
	}
	c.misses++

	// Victim scan: the first invalid way if any, else the valid way with
	// the strictly smallest LRU stamp (first wins ties — exactly the
	// historical way-order semantics).
	victim := -1
	victimLru := ^uint64(0)
	for i := base; i < end; i++ {
		if c.tags[i] == 0 {
			victim = i
			break
		}
		if c.lru[i] < victimLru {
			victim, victimLru = i, c.lru[i]
		}
	}

	res := Result{Hit: false}
	if c.tags[victim] != 0 && c.dirty[victim] {
		c.writebacks++
		res.HasWriteback = true
		res.WritebackAddr = (c.tags[victim] - 1) * uint64(c.lineBytes)
	}
	c.tags[victim] = tagKey
	c.lru[victim] = c.clock
	c.dirty[victim] = write
	return res
}

// Probe reports whether addr's line is resident without touching LRU state.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	base := set * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == tag+1 {
			return true
		}
	}
	return false
}

// Invalidate drops addr's line if resident, returning a dirty victim if any.
func (c *Cache) Invalidate(addr uint64) Result {
	set, tag := c.index(addr)
	base := set * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == tag+1 {
			res := Result{Hit: true}
			if c.dirty[i] {
				c.writebacks++
				res.HasWriteback = true
				res.WritebackAddr = tag * uint64(c.lineBytes)
			}
			c.tags[i] = 0
			c.dirty[i] = false
			return res
		}
	}
	return Result{}
}

// DrainDirty removes and returns the addresses of all dirty lines (in
// ascending address order) — the write-back flush an enclave performs on
// exit. Clean lines stay resident.
func (c *Cache) DrainDirty() []uint64 {
	var out []uint64
	for i := range c.dirty {
		if c.dirty[i] && c.tags[i] != 0 {
			out = append(out, (c.tags[i]-1)*uint64(c.lineBytes))
			c.dirty[i] = false
			c.writebacks++
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats are cumulative access counters.
type Stats struct {
	Hits, Misses, Writebacks uint64
}

// Stats returns the cumulative counters.
func (c *Cache) Stats() Stats {
	return Stats{Hits: c.hits, Misses: c.misses, Writebacks: c.writebacks}
}

// HitRate reports hits/(hits+misses), 0 when untouched.
func (s Stats) HitRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i], c.lru[i], c.dirty[i] = 0, 0, false
	}
	c.clock, c.hits, c.misses, c.writebacks = 0, 0, 0, 0
}

// Hierarchy is a simple inclusive multi-level lookup: L1 -> L2 -> (shared)
// L3. It returns the level that hit (1-based) or 0 for memory, plus any
// dirty writebacks generated on the fill path.
type Hierarchy struct {
	L1, L2 *Cache // per-core
	L3     *Cache // shared, may be nil
}

// AccessResult reports where a hierarchy access was satisfied.
type AccessResult struct {
	Level      int // 1,2,3 or 0 = DRAM
	Writebacks []uint64
}

// Access walks the hierarchy for the line containing addr.
func (h *Hierarchy) Access(addr uint64, write bool) AccessResult {
	var wbs []uint64
	record := func(r Result) {
		if r.HasWriteback {
			wbs = append(wbs, r.WritebackAddr)
		}
	}
	if r := h.L1.Access(addr, write); r.Hit {
		return AccessResult{Level: 1}
	} else {
		record(r)
	}
	if r := h.L2.Access(addr, false); r.Hit {
		return AccessResult{Level: 2, Writebacks: wbs}
	} else {
		record(r)
	}
	if h.L3 != nil {
		if r := h.L3.Access(addr, false); r.Hit {
			return AccessResult{Level: 3, Writebacks: wbs}
		} else {
			record(r)
		}
		return AccessResult{Level: 0, Writebacks: wbs}
	}
	return AccessResult{Level: 0, Writebacks: wbs}
}
