package cache

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestAccessViaMatchesAccess drives a randomized stream through twin
// caches: the oracle uses plain Access, the fast twin goes through
// AccessTrack handles and revalidates them with AccessVia whenever the
// stream re-touches the same line. Every Result, all counters, and the
// final dirty sets must stay identical — a handle hit is exactly an
// Access hit.
func TestAccessViaMatchesAccess(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	oracle := NewHashed("o", 4096, 4, 64)
	fast := NewHashed("f", 4096, 4, 64)

	handles := map[uint64]Handle{}
	for i := 0; i < 20000; i++ {
		addr := uint64(rng.Intn(1<<9)) * 64 // 8x the capacity: constant eviction
		write := rng.Intn(3) == 0

		want := oracle.Access(addr, write)
		var got Result
		if h, ok := handles[addr]; ok && fast.AccessVia(h, addr, write) {
			got = Result{Hit: true}
		} else {
			var nh Handle
			got, nh = fast.AccessTrack(addr, write)
			handles[addr] = nh
		}
		if got != want {
			t.Fatalf("access %d (addr %#x write %v): via %+v, oracle %+v", i, addr, write, got, want)
		}
	}
	if fast.Stats() != oracle.Stats() {
		t.Fatalf("stats diverge: via %+v, oracle %+v", fast.Stats(), oracle.Stats())
	}
	if !reflect.DeepEqual(fast.DrainDirty(), oracle.DrainDirty()) {
		t.Fatal("dirty sets diverge")
	}
}

// TestAccessViaStaleHandle pins the revalidation conditions: a handle
// goes stale the moment any tag in its set changes (eviction of another
// way, invalidation, reset), and a stale AccessVia must refuse without
// touching state.
func TestAccessViaStaleHandle(t *testing.T) {
	c := New("c", 2*64, 2, 64) // one set, two ways
	_, h := c.AccessTrack(0, false)
	if !c.AccessVia(h, 0, false) {
		t.Fatal("fresh handle should revalidate")
	}
	c.Access(64, false) // fills the second way: generation bump
	before := c.Stats()
	if c.AccessVia(h, 0, false) {
		t.Fatal("handle must go stale after a tag change in its set")
	}
	if c.Stats() != before {
		t.Fatal("stale AccessVia must not touch counters")
	}
	// Re-acquired handle works again until the next tag change.
	r, h2 := c.AccessTrack(0, false)
	if !r.Hit || !c.AccessVia(h2, 0, true) {
		t.Fatal("re-acquired handle should revalidate")
	}
	c.Reset()
	if c.AccessVia(h2, 0, false) {
		t.Fatal("reset must invalidate all handles")
	}
}

// TestAccessViaWrongLine pins that a current-generation handle whose way
// now holds a different line refuses (the way was reused for another fill
// bumps the generation, but also guard the direct tag compare).
func TestAccessViaWrongLine(t *testing.T) {
	c := New("c", 2*64, 2, 64)
	_, h := c.AccessTrack(0, false)
	// Same-generation handle pointed at the wrong address must miss the
	// tag compare even though the generation matches.
	if c.AccessVia(h, 128, false) {
		t.Fatal("handle for line 0 must not hit line 2")
	}
}

// TestAccessHitNMatchesRepeatedAccess pins the batched same-line hit
// path: AccessHitN(addr, n) must leave the cache bit-identical to n
// sequential Access calls, and refuse (untouched) when the line is not
// resident.
func TestAccessHitNMatchesRepeatedAccess(t *testing.T) {
	a := New("a", 1024, 4, 64)
	b := New("b", 1024, 4, 64)
	for _, c := range []*Cache{a, b} {
		c.Access(0, false)
		c.Access(64, true)
	}
	if !a.AccessHitN(64, 5, false) {
		t.Fatal("resident line should batch")
	}
	for i := 0; i < 5; i++ {
		b.Access(64, false)
	}
	if a.Stats() != b.Stats() || a.clock != b.clock {
		t.Fatalf("batched state diverges: %+v clock=%d vs %+v clock=%d", a.Stats(), a.clock, b.Stats(), b.clock)
	}
	if !reflect.DeepEqual(a.slab, b.slab) {
		t.Fatal("batched recency/dirty state diverges from per-line")
	}
	before := a.Stats()
	if a.AccessHitN(4096, 3, true) {
		t.Fatal("non-resident line must refuse")
	}
	if a.Stats() != before {
		t.Fatal("refused AccessHitN must not touch counters")
	}
}

// TestHitPrefixMatchesPerLine replays randomized spans through twin
// caches: the fast twin consumes the resident prefix with HitPrefix and
// then falls back to Access; the oracle steps per line. Full state parity
// (stats, LRU array, dirty bits, tags) is required after every span.
func TestHitPrefixMatchesPerLine(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	fast := New("f", 8192, 8, 64)
	oracle := New("o", 8192, 8, 64)

	for i := 0; i < 4000; i++ {
		addr := uint64(rng.Intn(1<<9)) * 64
		n := 1 + rng.Intn(12)
		write := rng.Intn(2) == 0

		hp := fast.HitPrefix(addr, n, 64, write)
		for j := hp; j < n; j++ {
			fast.Access(addr+uint64(j)*64, write)
		}
		for j := 0; j < n; j++ {
			oracle.Access(addr+uint64(j)*64, write)
		}
		if fast.Stats() != oracle.Stats() {
			t.Fatalf("span %d: stats diverge: %+v vs %+v", i, fast.Stats(), oracle.Stats())
		}
	}
	if !reflect.DeepEqual(fast.slab, oracle.slab) || fast.clock != oracle.clock {
		t.Fatal("final cache state diverges")
	}
}

// TestWideWaysReference drives a 16-way single-set cache against an
// in-test reference LRU model (mirroring
// TestMatchesReferenceModelProperty's semantics at higher
// associativity, where victim scans cover two hardware lines).
func TestWideWaysReference(t *testing.T) {
	const ways = 16
	c := New("wide", ways*64, ways, 64)
	type line struct {
		addr  uint64
		dirty bool
	}
	var order []line // LRU order, most recent last
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		addr := uint64(rng.Intn(3*ways)) * 64
		write := rng.Intn(3) == 0
		res := c.Access(addr, write)
		pos := -1
		for j, l := range order {
			if l.addr == addr {
				pos = j
				break
			}
		}
		if res.Hit != (pos >= 0) {
			t.Fatalf("access %d: hit=%v, reference=%v", i, res.Hit, pos >= 0)
		}
		if pos >= 0 {
			l := order[pos]
			l.dirty = l.dirty || write
			order = append(append(order[:pos:pos], order[pos+1:]...), l)
			continue
		}
		if len(order) == ways {
			victim := order[0]
			order = order[1:]
			if victim.dirty != res.HasWriteback {
				t.Fatalf("access %d: writeback=%v, reference=%v", i, res.HasWriteback, victim.dirty)
			}
			if victim.dirty && res.WritebackAddr != victim.addr {
				t.Fatalf("access %d: writeback addr %#x, reference %#x", i, res.WritebackAddr, victim.addr)
			}
		} else if res.HasWriteback {
			t.Fatalf("access %d: spurious writeback", i)
		}
		order = append(order, line{addr: addr, dirty: write})
	}
}

// TestHitPrefixStopsAtFirstMiss pins that the miss line itself is left
// untouched for the caller's Access (its fill must still happen).
func TestHitPrefixStopsAtFirstMiss(t *testing.T) {
	c := New("c", 8192, 8, 64)
	c.Access(0, false)
	c.Access(64, false)
	if got := c.HitPrefix(0, 4, 64, false); got != 2 {
		t.Fatalf("HitPrefix = %d, want 2", got)
	}
	if c.Probe(128) {
		t.Fatal("the miss line must not be filled by HitPrefix")
	}
}
