package cache

import "testing"

func TestDrainDirtyReturnsAllDirtyLines(t *testing.T) {
	c := New("c", 1<<10, 2, 64)
	c.Access(0, true)
	c.Access(64, false)
	c.Access(128, true)
	got := c.DrainDirty()
	if len(got) != 2 {
		t.Fatalf("drained %d lines, want 2", len(got))
	}
	if got[0] != 0 || got[1] != 128 {
		t.Errorf("drained %v, want [0 128] (ascending)", got)
	}
	// Lines remain resident but clean: draining again yields nothing.
	if !c.Probe(0) || !c.Probe(128) {
		t.Error("drained lines were evicted")
	}
	if len(c.DrainDirty()) != 0 {
		t.Error("second drain returned lines")
	}
	// Eviction after drain must not produce a writeback.
	c.Access(1024, false)
	c.Access(2048, false)
	if r := c.Access(4096, false); r.HasWriteback {
		t.Error("clean line wrote back after drain")
	}
}

func TestDrainDirtyCountsWritebacks(t *testing.T) {
	c := New("c", 1<<10, 2, 64)
	c.Access(0, true)
	before := c.Stats().Writebacks
	c.DrainDirty()
	if c.Stats().Writebacks != before+1 {
		t.Error("drain did not count writebacks")
	}
}

func TestHashedIndexAvoidsPowerOfTwoAliasing(t *testing.T) {
	// Streams spaced 1 MB apart: plain indexing maps their line i to the
	// same set, so 12 streams contend for 8 ways even though the total
	// working set (12 x 32 lines = 384) fits the 512-line cache; hashed
	// indexing spreads them across sets.
	plain := New("plain", 32<<10, 8, 64)
	hashed := NewHashed("hashed", 32<<10, 8, 64)
	const streams = 12
	const lines = 32
	const span = 1 << 20
	for i := 0; i < lines; i++ {
		for s := 0; s < streams; s++ {
			addr := uint64(s*span + i*64)
			plain.Access(addr, false)
			hashed.Access(addr, false)
		}
	}
	var plainHits, hashedHits int
	for i := 0; i < lines; i++ {
		for s := 0; s < streams; s++ {
			addr := uint64(s*span + i*64)
			if plain.Probe(addr) {
				plainHits++
			}
			if hashed.Probe(addr) {
				hashedHits++
			}
		}
	}
	if hashedHits <= plainHits {
		t.Errorf("hashed indexing (%d resident) should beat plain (%d) on strided streams",
			hashedHits, plainHits)
	}
}
