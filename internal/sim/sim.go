// Package sim provides the discrete-event timing kernel shared by the CPU,
// NPU, and communication simulators: a simulated clock, an event queue, and
// bandwidth-limited resources.
//
// All times are in Time units of one picosecond, so the 3.5 GHz CPU, the
// 1 GHz NPU, DRAM clocks, and the PCIe link compose on a single timeline
// without cross-domain cycle conversion. uint64 picoseconds covers ~5 hours
// of simulated time, far beyond any run in this system.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"math/bits"
)

// Time is a point in simulated time, in picoseconds.
type Time uint64

// Dur is a duration in picoseconds.
type Dur = Time

// FromSeconds converts seconds to simulated Time, saturating on overflow.
func FromSeconds(s float64) Time {
	if s <= 0 {
		return 0
	}
	ps := s * 1e12
	if ps >= math.MaxUint64 {
		return math.MaxUint64
	}
	return Time(ps)
}

// FromNanos converts nanoseconds to Time.
func FromNanos(ns float64) Time { return FromSeconds(ns * 1e-9) }

// Seconds converts Time to seconds.
func (t Time) Seconds() float64 { return float64(t) * 1e-12 }

// Millis converts Time to milliseconds.
func (t Time) Millis() float64 { return float64(t) * 1e-9 }

// Cycles converts a cycle count at freq (Hz) into Time.
func Cycles(n float64, freqHz float64) Time {
	if n <= 0 || freqHz <= 0 {
		return 0
	}
	return FromSeconds(n / freqHz)
}

// BytesAt returns the time to move n bytes at bandwidth bytes/second.
func BytesAt(n int64, bandwidthBs float64) Dur {
	if n <= 0 || bandwidthBs <= 0 {
		return 0
	}
	return FromSeconds(float64(n) / bandwidthBs)
}

// Pow2Shift returns log2(n) when n is a positive power of two, else -1.
// The strength-reduced address math in cache/dram/mee shares it: a shift
// by Pow2Shift(n) computes the identical quotient to dividing by n.
func Pow2Shift(n int) int {
	if n <= 0 || n&(n-1) != 0 {
		return -1
	}
	return bits.TrailingZeros64(uint64(n))
}

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Sub returns a-b, clamping at zero (durations never go negative).
func Sub(a, b Time) Dur {
	if a <= b {
		return 0
	}
	return a - b
}

// Event is a scheduled callback.
type Event struct {
	When Time
	Do   func()

	seq uint64 // tie-breaker for deterministic ordering
}

// eventQueue implements heap.Interface ordered by (When, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].When != q[j].When {
		return q[i].When < q[j].When
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*Event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event simulator. The zero value is
// ready to use.
type Engine struct {
	now    Time
	queue  eventQueue
	nextID uint64
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Schedule registers fn to run at absolute time when. Scheduling in the
// past runs the event at the current time (never rewinds the clock).
func (e *Engine) Schedule(when Time, fn func()) {
	if when < e.now {
		when = e.now
	}
	ev := &Event{When: when, Do: fn, seq: e.nextID}
	e.nextID++
	heap.Push(&e.queue, ev)
}

// After schedules fn to run delay after now.
func (e *Engine) After(delay Dur, fn func()) {
	e.Schedule(e.now+delay, fn)
}

// Step runs the next pending event and returns true, or returns false when
// the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.When
	ev.Do()
	return true
}

// Run drains the event queue.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil processes events with When <= deadline, then advances the clock
// to the deadline.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.queue) > 0 && e.queue[0].When <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Resource models a fully pipelined unit with per-item occupancy (a DRAM
// data bus, an AES engine, a PCIe link). A request occupies the resource
// for a duration; requests are serviced in arrival order.
//
// Resource is a busy-until accumulator: it answers "if work arrives at time
// t needing occupancy d, when does it finish?" and advances its horizon.
// This is the standard bandwidth-latency queue of memory-system modeling.
type Resource struct {
	Name      string
	busyUntil Time
	busyTotal Dur
}

// NewResource returns a named, idle resource.
func NewResource(name string) *Resource { return &Resource{Name: name} }

// Acquire reserves the resource at or after time at for the given
// occupancy, returning the time at which the reservation completes.
func (r *Resource) Acquire(at Time, occupancy Dur) Time {
	start := Max(at, r.busyUntil)
	r.busyUntil = start + occupancy
	r.busyTotal += occupancy
	return r.busyUntil
}

// NextFree reports the first time at or after at when the resource is idle.
func (r *Resource) NextFree(at Time) Time { return Max(at, r.busyUntil) }

// FastForward advances the resource to the given horizon while charging
// occupancy — the closed-form equivalent of a chain of Acquire calls whose
// final completion is until and whose summed occupancy is occupancy. The
// horizon never rewinds, so a correct caller (one whose chain algebra
// yields until >= BusyUntil) leaves the resource exactly as the chain
// would have.
func (r *Resource) FastForward(until Time, occupancy Dur) {
	if until > r.busyUntil {
		r.busyUntil = until
	}
	r.busyTotal += occupancy
}

// BusyUntil reports the time at which all accepted work completes.
func (r *Resource) BusyUntil() Time { return r.busyUntil }

// BusyTotal reports the cumulative occupied time (for utilization stats).
func (r *Resource) BusyTotal() Dur { return r.busyTotal }

// Utilization reports busy time as a fraction of horizon (0 if horizon 0).
func (r *Resource) Utilization(horizon Time) float64 {
	if horizon == 0 {
		return 0
	}
	return float64(r.busyTotal) / float64(horizon)
}

// Reset returns the resource to idle at time 0.
func (r *Resource) Reset() {
	r.busyUntil = 0
	r.busyTotal = 0
}

func (r *Resource) String() string {
	return fmt.Sprintf("resource %s busyUntil=%d busy=%d", r.Name, r.busyUntil, r.busyTotal)
}

// Interval is a half-open [Start, End) span on a timeline.
type Interval struct {
	Start, End Time
	Label      string
}

// Duration reports End-Start (0 if inverted).
func (iv Interval) Duration() Dur { return Sub(iv.End, iv.Start) }

// Timeline records labeled intervals (e.g. compute vs. communication
// stream activity) for the breakdown figures.
type Timeline struct {
	Name      string
	Intervals []Interval
}

// Add appends an interval.
func (t *Timeline) Add(start, end Time, label string) {
	t.Intervals = append(t.Intervals, Interval{Start: start, End: end, Label: label})
}

// End reports the latest End across intervals (0 if empty).
func (t *Timeline) End() Time {
	var end Time
	for _, iv := range t.Intervals {
		if iv.End > end {
			end = iv.End
		}
	}
	return end
}

// Busy reports total labeled occupancy (intervals are not merged; callers
// representing serial units must not overlap them).
func (t *Timeline) Busy() Dur {
	var sum Dur
	for _, iv := range t.Intervals {
		sum += iv.Duration()
	}
	return sum
}

// TotalByLabel sums interval durations per label.
func (t *Timeline) TotalByLabel() map[string]Dur {
	m := make(map[string]Dur)
	for _, iv := range t.Intervals {
		m[iv.Label] += iv.Duration()
	}
	return m
}
