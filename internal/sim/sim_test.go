package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if got := FromSeconds(1e-12); got != 1 {
		t.Errorf("FromSeconds(1ps) = %d, want 1", got)
	}
	if got := FromNanos(1); got != 1000 {
		t.Errorf("FromNanos(1) = %d, want 1000", got)
	}
	if got := FromSeconds(-1); got != 0 {
		t.Errorf("FromSeconds(-1) = %d, want 0", got)
	}
	if got := Time(2_000_000).Millis(); got != 0.002 {
		t.Errorf("Millis = %g, want 0.002", got)
	}
	if got := Time(1e12).Seconds(); got != 1.0 {
		t.Errorf("Seconds = %g, want 1", got)
	}
}

func TestCycles(t *testing.T) {
	// 40 cycles at 1 GHz = 40 ns = 40000 ps.
	if got := Cycles(40, 1e9); got != 40000 {
		t.Errorf("Cycles(40, 1GHz) = %d, want 40000", got)
	}
	// 1 cycle at 3.5 GHz ≈ 285 ps (truncated).
	got := Cycles(1, 3.5e9)
	if got < 285 || got > 286 {
		t.Errorf("Cycles(1, 3.5GHz) = %d, want ~285", got)
	}
	if Cycles(0, 1e9) != 0 || Cycles(5, 0) != 0 {
		t.Error("Cycles with zero operand should be 0")
	}
}

func TestBytesAt(t *testing.T) {
	// 128 bytes at 128 GB/s = 1 ns = 1000 ps.
	if got := BytesAt(128, 128e9); got != 1000 {
		t.Errorf("BytesAt = %d, want 1000", got)
	}
	if BytesAt(0, 1e9) != 0 || BytesAt(10, 0) != 0 {
		t.Error("BytesAt with zero operand should be 0")
	}
}

func TestMinMaxSub(t *testing.T) {
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Max broken")
	}
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Error("Min broken")
	}
	if Sub(10, 4) != 6 {
		t.Error("Sub broken")
	}
	if Sub(4, 10) != 0 {
		t.Error("Sub must clamp at zero")
	}
}

func TestEngineOrdering(t *testing.T) {
	var e Engine
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("events ran out of order: %v", order)
	}
	if e.Now() != 30 {
		t.Errorf("Now = %d, want 30", e.Now())
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineSchedulePastClamps(t *testing.T) {
	var e Engine
	e.Schedule(100, func() {
		e.Schedule(50, func() {}) // in the past
	})
	e.Run()
	if e.Now() != 100 {
		t.Errorf("clock rewound to %d", e.Now())
	}
}

func TestEngineAfterAndCascade(t *testing.T) {
	var e Engine
	var fired []Time
	e.Schedule(10, func() {
		e.After(5, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 1 || fired[0] != 15 {
		t.Errorf("cascaded event at %v, want [15]", fired)
	}
}

func TestEngineRunUntil(t *testing.T) {
	var e Engine
	count := 0
	e.Schedule(10, func() { count++ })
	e.Schedule(20, func() { count++ })
	e.Schedule(30, func() { count++ })
	e.RunUntil(20)
	if count != 2 {
		t.Errorf("RunUntil(20) ran %d events, want 2", count)
	}
	if e.Now() != 20 {
		t.Errorf("Now = %d, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
}

func TestResourceSerializes(t *testing.T) {
	r := NewResource("bus")
	t1 := r.Acquire(0, 10)
	t2 := r.Acquire(0, 10)
	t3 := r.Acquire(100, 10)
	if t1 != 10 || t2 != 20 || t3 != 110 {
		t.Errorf("Acquire times = %d,%d,%d want 10,20,110", t1, t2, t3)
	}
	if r.BusyTotal() != 30 {
		t.Errorf("BusyTotal = %d, want 30", r.BusyTotal())
	}
	if r.NextFree(0) != 110 {
		t.Errorf("NextFree = %d, want 110", r.NextFree(0))
	}
}

func TestResourceUtilization(t *testing.T) {
	r := NewResource("x")
	r.Acquire(0, 50)
	if u := r.Utilization(100); u != 0.5 {
		t.Errorf("Utilization = %g, want 0.5", u)
	}
	if u := r.Utilization(0); u != 0 {
		t.Errorf("Utilization(0) = %g, want 0", u)
	}
	r.Reset()
	if r.BusyUntil() != 0 || r.BusyTotal() != 0 {
		t.Error("Reset did not clear state")
	}
}

// Property: a resource never finishes work earlier than request time plus
// occupancy, and the finish times are monotonically non-decreasing for
// in-order requests.
func TestResourceMonotoneProperty(t *testing.T) {
	f := func(reqs []uint16) bool {
		r := NewResource("p")
		var last Time
		var at Time
		for _, q := range reqs {
			occ := Dur(q % 1000)
			at += Time(q % 7)
			done := r.Acquire(at, occ)
			if done < at+occ {
				return false
			}
			if done < last {
				return false
			}
			last = done
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeline(t *testing.T) {
	var tl Timeline
	tl.Add(0, 10, "compute")
	tl.Add(10, 15, "comm")
	tl.Add(15, 30, "compute")
	if tl.End() != 30 {
		t.Errorf("End = %d, want 30", tl.End())
	}
	if tl.Busy() != 30 {
		t.Errorf("Busy = %d, want 30", tl.Busy())
	}
	m := tl.TotalByLabel()
	if m["compute"] != 25 || m["comm"] != 5 {
		t.Errorf("TotalByLabel = %v", m)
	}
}

func TestIntervalDuration(t *testing.T) {
	if (Interval{Start: 5, End: 3}).Duration() != 0 {
		t.Error("inverted interval should have zero duration")
	}
	if (Interval{Start: 3, End: 5}).Duration() != 2 {
		t.Error("duration broken")
	}
}
