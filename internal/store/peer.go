package store

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// httpDoer abstracts the peer HTTP client for tests.
type httpDoer interface {
	Do(req *http.Request) (*http.Response, error)
}

// newPeerClient builds the peer-probe client: strict timeout, no
// redirects (a replica answers directly or not at all), modest
// keep-alive pool for the static peer list.
func newPeerClient(timeout time.Duration) *http.Client {
	return &http.Client{
		Timeout: timeout,
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
}

// GetOrFetch returns the payload for ns/key from the local disk tier,
// falling back to the configured peers on miss. A peer hit is validated
// exactly like a disk read (envelope, checksum, build tag) and persisted
// locally before returning, so the next lookup — and the next peer that
// asks us — is a disk hit. Every failure mode (timeout, refused
// connection, 404, corrupt or foreign envelope) fails open to ok=false:
// the caller computes locally, it never errors.
func (s *Store) GetOrFetch(ctx context.Context, ns Namespace, key string) ([]byte, bool) {
	if payload, ok := s.Get(ns, key); ok {
		return payload, true
	}
	if len(s.peers) == 0 || !validNamespace(ns) || !ValidKey(key) {
		return nil, false
	}
	for _, peer := range s.peers {
		payload, ok := s.fetchFromPeer(ctx, peer, ns, key)
		if !ok {
			continue
		}
		s.peerHits.Add(1)
		// Write-through: persist the validated envelope locally so the
		// fleet converges on every replica holding hot fingerprints.
		if err := s.write(ns, key, s.encodeEnvelope(ns, key, payload)); err == nil {
			s.writes.Add(1)
			s.evict()
		} else {
			s.writeErrors.Add(1)
		}
		return payload, true
	}
	s.peerMisses.Add(1)
	return nil, false
}

// fetchFromPeer probes one peer for ns/key. The peer serves the raw
// envelope bytes (the /v1/store surface never computes), which validate
// here exactly as a local disk read would — a peer on a different build
// is a miss, not a source of wrong numbers.
func (s *Store) fetchFromPeer(ctx context.Context, peer string, ns Namespace, key string) ([]byte, bool) {
	url := fmt.Sprintf("%s/v1/store/%s/%s", strings.TrimRight(peer, "/"), ns, key)
	ctx, cancel := context.WithTimeout(ctx, s.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		s.peerErrors.Add(1)
		return nil, false
	}
	resp, err := s.client.Do(req)
	if err != nil {
		s.peerErrors.Add(1)
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// A clean 404 is the expected miss shape, not a peer error.
		if resp.StatusCode != http.StatusNotFound {
			s.peerErrors.Add(1)
		}
		return nil, false
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxEntryBytes+1))
	if err != nil || len(raw) > maxEntryBytes {
		s.peerErrors.Add(1)
		return nil, false
	}
	payload, derr := s.decodeEnvelope(ns, key, raw)
	if derr != nil {
		if derr.corrupt {
			s.peerErrors.Add(1)
		}
		return nil, false
	}
	return payload, true
}
