package store

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"tensortee/internal/faultinject"
)

// httpDoer abstracts the peer HTTP client for tests.
type httpDoer interface {
	Do(req *http.Request) (*http.Response, error)
}

// Per-peer breaker tuning: three consecutive bad probes open the
// breaker, and every failed half-open probe doubles the cooldown up to
// the max — a downed replica costs a few probes up front, then one
// probe every couple of minutes instead of a timeout on every miss.
const (
	peerBreakerThreshold   = 3
	peerBreakerCooldown    = 5 * time.Second
	peerBreakerMaxCooldown = 2 * time.Minute
)

// newPeerClient builds the peer-probe client: strict timeout, no
// redirects (a replica answers directly or not at all), modest
// keep-alive pool for the static peer list.
func newPeerClient(timeout time.Duration) *http.Client {
	return &http.Client{
		Timeout: timeout,
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
}

// GetOrFetch returns the payload for ns/key from the local disk tier,
// falling back to the configured peers on miss. Peers whose breaker is
// open are skipped outright; the rest are probed concurrently under one
// shared deadline (PeerProbeBudget) and the first validated hit wins —
// N dead peers cost one budget, not N serial timeouts. A peer hit is
// validated exactly like a disk read (envelope, checksum, build tag)
// and persisted locally before returning, so the next lookup — and the
// next peer that asks us — is a disk hit. Every failure mode (timeout,
// refused connection, 404, corrupt or foreign envelope, open breaker)
// fails open to ok=false: the caller computes locally, it never errors.
func (s *Store) GetOrFetch(ctx context.Context, ns Namespace, key string) ([]byte, bool) {
	if payload, ok := s.Get(ns, key); ok {
		return payload, true
	}
	if len(s.peers) == 0 || !validNamespace(ns) || !ValidKey(key) {
		return nil, false
	}
	var live []string
	for _, peer := range s.peers {
		if br := s.peerBreakers[peer]; br != nil && br.Open() {
			s.peerSkips.Add(1)
			continue
		}
		live = append(live, peer)
	}
	if len(live) == 0 {
		s.peerMisses.Add(1)
		return nil, false
	}
	probeCtx, cancel := context.WithTimeout(ctx, s.probeBudget)
	defer cancel()
	results := make(chan []byte, len(live)) // buffered: losers never block
	for _, peer := range live {
		go func(peer string) {
			payload, ok, failed := s.fetchFromPeer(probeCtx, peer, ns, key)
			s.observePeer(probeCtx, peer, failed)
			if ok {
				results <- payload
			} else {
				results <- nil
			}
		}(peer)
	}
	for range live {
		payload := <-results
		if payload == nil {
			continue
		}
		cancel() // a winner: stop the losers
		s.peerHits.Add(1)
		// Write-through: persist the validated envelope locally so the
		// fleet converges on every replica holding hot fingerprints.
		// Health-gated and best-effort like every write.
		_ = s.persist(ns, key, s.encodeEnvelope(ns, key, payload))
		return payload, true
	}
	s.peerMisses.Add(1)
	return nil, false
}

// observePeer feeds one probe outcome into the peer's breaker. A probe
// that failed after the shared context ended is observed neutrally: it
// was most likely cancelled because another peer won (or the budget
// expired for the whole group), which says nothing about this peer's
// health.
func (s *Store) observePeer(ctx context.Context, peer string, failed bool) {
	br := s.peerBreakers[peer]
	if br == nil {
		return
	}
	if !failed {
		br.Success()
		return
	}
	if ctx.Err() == nil {
		br.Failure()
	}
}

// fetchFromPeer probes one peer for ns/key. The peer serves the raw
// envelope bytes (the /v1/store surface never computes), which validate
// here exactly as a local disk read would — a peer on a different build
// is a miss, not a source of wrong numbers. The per-request client
// timeout bounds this probe; ctx carries the shared group budget.
//
// failed reports whether the outcome should count against the peer's
// health: transport errors, bad statuses, oversize or corrupt bodies
// do; a clean 404 and a valid-but-foreign envelope are a *healthy* peer
// that happens not to have our entry.
func (s *Store) fetchFromPeer(ctx context.Context, peer string, ns Namespace, key string) (payload []byte, ok, failed bool) {
	if f := s.faults.Check(faultinject.OpPeer); f.Err != nil {
		s.peerErrors.Add(1)
		return nil, false, true
	}
	url := fmt.Sprintf("%s/v1/store/%s/%s", strings.TrimRight(peer, "/"), ns, key)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		s.peerErrors.Add(1)
		return nil, false, true
	}
	resp, err := s.client.Do(req)
	if err != nil {
		// A probe cancelled because the group already has its answer is
		// not a peer error; count only failures the peer owns.
		if ctx.Err() == nil {
			s.peerErrors.Add(1)
		}
		return nil, false, true
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// A clean 404 is the expected miss shape, not a peer error.
		if resp.StatusCode == http.StatusNotFound {
			return nil, false, false
		}
		s.peerErrors.Add(1)
		return nil, false, true
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxEntryBytes+1))
	if err != nil || len(raw) > maxEntryBytes {
		s.peerErrors.Add(1)
		return nil, false, true
	}
	payload, derr := s.decodeEnvelope(ns, key, raw)
	if derr != nil {
		if derr.corrupt {
			s.peerErrors.Add(1)
			return nil, false, true
		}
		return nil, false, false
	}
	return payload, true, false
}
