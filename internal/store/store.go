// Package store is tensortee's persistent, content-addressed result
// store: a disk-backed tier beneath the in-memory caches (experiment
// results, scenario results, calibration snapshots), plus an optional
// static-peer tier so N replicas compute each fingerprint once
// fleet-wide.
//
// Layout is file-per-key under a root directory, one subdirectory per
// namespace:
//
//	<root>/result/fig18.tte        experiment results, keyed by id
//	<root>/scenario/<fp>.tte       scenario results, keyed by spec fingerprint
//	<root>/calib/<fp>.tte          calibration snapshots, keyed by config fingerprint
//	<root>/campaign/<id>.m.tte     campaign manifests; <id>.p<index>.tte point checkpoints
//	<root>/.tmp/                   atomic-write staging
//	<root>/.quarantine/            corrupt entries, moved aside for inspection
//
// Every entry is a versioned envelope: a single header line naming the
// format version, namespace, key, build tag and payload SHA-256, followed
// by the raw payload bytes. Writes are atomic (temp file + rename), so a
// reader — in this process or another one sharing the directory — sees
// either the old complete entry or the new complete entry, never a torn
// one. Reads verify the checksum; corrupt or truncated entries are
// treated as misses and quarantined, never an error the caller must
// handle and never a crash.
//
// The store is correctness-neutral by construction: entries are keyed by
// content fingerprints and stamped with the build tag, so a different
// build (which could simulate different numbers) misses instead of
// serving stale bytes.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tensortee/internal/faultinject"
	"tensortee/internal/resilience"
)

// Namespace partitions the key space: one directory per kind of payload.
type Namespace string

const (
	// Results holds persisted experiment results, keyed by experiment id.
	Results Namespace = "result"
	// Scenarios holds persisted scenario results, keyed by the normalized
	// spec fingerprint.
	Scenarios Namespace = "scenario"
	// Calibrations holds calibrated-system snapshots, keyed by the config
	// content fingerprint.
	Calibrations Namespace = "calib"
	// Campaigns holds campaign manifests and per-point checkpoints, keyed
	// by campaign id (manifests: <id>.m, points: <id>.p<index>).
	Campaigns Namespace = "campaign"
)

// Namespaces lists the valid namespaces (the /v1/store/{ns}/{key} surface
// rejects anything else).
func Namespaces() []Namespace {
	return []Namespace{Results, Scenarios, Calibrations, Campaigns}
}

func validNamespace(ns Namespace) bool {
	switch ns {
	case Results, Scenarios, Calibrations, Campaigns:
		return true
	}
	return false
}

// ValidKey reports whether key is usable as an entry name: 1-128 bytes of
// [A-Za-z0-9._-], not starting with a dot. Experiment ids and hex
// fingerprints both qualify; anything else (path separators, traversal)
// does not.
func ValidKey(key string) bool {
	if len(key) == 0 || len(key) > 128 || key[0] == '.' {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// envelopeMagic versions the on-disk format; bump it when the header or
// payload encoding changes shape.
const envelopeMagic = "tensortee-store/v1"

// entryExt suffixes every entry file.
const entryExt = ".tte"

// maxEntryBytes bounds a single entry (and a peer response): the largest
// real payload (an all-experiments JSON body) is well under a megabyte,
// so anything near this cap is hostile or corrupt.
const maxEntryBytes = 64 << 20

// BuildTag identifies the producing build. Entries written by a different
// build are treated as misses: a code change may legitimately change
// simulated numbers, and the store must never override a fresh compute.
// Released builds get the VCS revision (plus a -dirty suffix for modified
// trees); builds without VCS stamping (go test, go run from a plain
// directory) share the "dev" tag — wipe or re-warm the store directory
// when changing simulator code under a dev build.
func BuildTag() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	var rev, modified string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value
		}
	}
	if rev != "" {
		if modified == "true" {
			return rev + "-dirty"
		}
		return rev
	}
	if v := info.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	return "dev"
}

// Options configures a Store.
type Options struct {
	// MaxBytes bounds the total size of stored entries; past it, the
	// least-recently-used entries (by mtime — reads touch) are evicted
	// after each write. 0 means unbounded.
	MaxBytes int64
	// Peers lists base URLs of replica daemons probed on local miss
	// (GET <peer>/v1/store/{ns}/{key}). Empty disables the peer tier.
	Peers []string
	// PeerTimeout bounds each peer probe (default 2s). Probes fail open:
	// a slow or dead peer degrades to a local compute, never an error.
	PeerTimeout time.Duration
	// PeerProbeBudget bounds the *total* time GetOrFetch spends probing
	// peers, across all of them (default 2× PeerTimeout). Probes run
	// concurrently under this shared deadline, so N dead peers cost one
	// budget, not N serial timeouts.
	PeerProbeBudget time.Duration
	// BuildTag overrides the build identity stamped into (and required
	// of) entries. Empty selects BuildTag().
	BuildTag string
	// DegradeThreshold is how many consecutive write failures flip the
	// store into degraded read-only mode (default 3).
	DegradeThreshold int
	// ProbeInterval is how often, while degraded, one write is admitted
	// as a recovery probe (default 15s). A successful probe restores
	// normal writes.
	ProbeInterval time.Duration
	// QuarantineMaxBytes caps the total size of .quarantine/; past it the
	// oldest quarantined files are deleted after each new quarantine.
	// 0 selects the 128 MiB default; negative disables the cap.
	QuarantineMaxBytes int64
	// Faults, when non-nil, injects deterministic failures into the
	// store's filesystem operations and peer probes (tests and the chaos
	// CI job). Nil — the production default — costs one branch per hook.
	Faults *faultinject.Injector
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	// DiskHits counts Gets satisfied from the local disk tier.
	DiskHits int64 `json:"disk_hits"`
	// DiskMisses counts Gets the local disk could not satisfy.
	DiskMisses int64 `json:"disk_misses"`
	// Corruptions counts entries rejected at read time (bad checksum,
	// truncation, or build-tag mismatch) and quarantined.
	Corruptions int64 `json:"corruptions"`
	// PeerHits counts misses satisfied by a replica probe.
	PeerHits int64 `json:"peer_hits"`
	// PeerMisses counts replica probes that found nothing.
	PeerMisses int64 `json:"peer_misses"`
	// PeerErrors counts replica probes that failed outright.
	PeerErrors int64 `json:"peer_errors"`
	// Writes counts successful Puts.
	Writes int64 `json:"writes"`
	// WriteErrors counts Puts that failed after retries.
	WriteErrors int64 `json:"write_errors"`
	// Evictions counts entries removed by the size cap.
	Evictions int64 `json:"evictions"`
	// Entries and Bytes describe the current on-disk footprint (computed
	// by walking the namespaces when Stats is taken).
	Entries int64 `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// Pinned counts entries currently pinned against eviction (active
	// campaign manifests and checkpoints).
	Pinned int64 `json:"pinned"`
	// Degraded reports whether the store is currently in read-only
	// degraded mode (consecutive write failures; recovering via probes).
	Degraded bool `json:"degraded"`
	// WritesSuppressed counts Puts refused with ErrDegraded while the
	// store was degraded (probe writes are admitted, not suppressed).
	WritesSuppressed int64 `json:"writes_suppressed"`
	// PeerSkips counts peer probes skipped because the peer's breaker
	// was open.
	PeerSkips int64 `json:"peer_skips"`
	// QuarantineBytes is the current size of .quarantine/ (bounded by
	// QuarantineMaxBytes).
	QuarantineBytes int64 `json:"quarantine_bytes"`
}

// ErrDegraded is returned by Put while the store is in degraded
// read-only mode (and the probe interval has not elapsed). Callers
// already treat persistence as best-effort; this error lets them tell
// "the disk is known-bad, stop trying" from a one-off failure.
var ErrDegraded = fmt.Errorf("store: degraded, writes suppressed until a probe write succeeds")

// Store is a disk-backed content-addressed store. All methods are safe
// for concurrent use, including by multiple processes sharing one
// directory (atomic renames arbitrate).
type Store struct {
	dir           string
	maxBytes      int64
	peers         []string
	timeout       time.Duration
	probeBudget   time.Duration
	build         string
	client        httpDoer
	faults        *faultinject.Injector
	quarantineMax int64

	evictMu sync.Mutex // serializes eviction passes within this process

	pinMu  sync.Mutex
	pinned map[string]int // entry path -> pin count

	// Write-health state machine: consecutive write failures flip the
	// store degraded (read-only); while degraded one write per
	// probeInterval is admitted as a recovery probe.
	healthMu         sync.Mutex
	degraded         bool
	consecWriteFails int
	lastProbe        time.Time
	degradeThreshold int
	probeInterval    time.Duration

	// peerBreakers holds one circuit breaker per configured peer; open
	// breakers make GetOrFetch skip that peer entirely.
	peerBreakers map[string]*resilience.Breaker

	diskHits         atomic.Int64
	diskMisses       atomic.Int64
	corruptions      atomic.Int64
	peerHits         atomic.Int64
	peerMisses       atomic.Int64
	peerErrors       atomic.Int64
	peerSkips        atomic.Int64
	writes           atomic.Int64
	writeErrors      atomic.Int64
	writesSuppressed atomic.Int64
	evictions        atomic.Int64
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	for _, sub := range []string{"", ".tmp", ".quarantine"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	build := opts.BuildTag
	if build == "" {
		build = BuildTag()
	}
	// The header is space-separated; a build tag with spaces (or newlines)
	// would desync parsing.
	build = strings.Map(func(r rune) rune {
		if r == ' ' || r == '\n' || r == '\r' || r == '\t' {
			return '_'
		}
		return r
	}, build)
	timeout := opts.PeerTimeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	probeBudget := opts.PeerProbeBudget
	if probeBudget <= 0 {
		probeBudget = 2 * timeout
	}
	threshold := opts.DegradeThreshold
	if threshold <= 0 {
		threshold = 3
	}
	probeInterval := opts.ProbeInterval
	if probeInterval <= 0 {
		probeInterval = 15 * time.Second
	}
	quarantineMax := opts.QuarantineMaxBytes
	if quarantineMax == 0 {
		quarantineMax = 128 << 20
	}
	s := &Store{
		dir:              dir,
		maxBytes:         opts.MaxBytes,
		peers:            append([]string(nil), opts.Peers...),
		timeout:          timeout,
		probeBudget:      probeBudget,
		build:            build,
		client:           newPeerClient(timeout),
		faults:           opts.Faults,
		quarantineMax:    quarantineMax,
		degradeThreshold: threshold,
		probeInterval:    probeInterval,
		pinned:           make(map[string]int),
		peerBreakers:     make(map[string]*resilience.Breaker, len(opts.Peers)),
	}
	for _, p := range s.peers {
		s.peerBreakers[p] = resilience.New(peerBreakerThreshold, peerBreakerCooldown,
			resilience.WithMaxCooldown(peerBreakerMaxCooldown))
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// HasPeers reports whether a peer tier is configured.
func (s *Store) HasPeers() bool { return len(s.peers) > 0 }

func (s *Store) entryPath(ns Namespace, key string) string {
	return filepath.Join(s.dir, string(ns), key+entryExt)
}

// encodeEnvelope frames a payload:
//
//	tensortee-store/v1 <ns> <key> <build> <sha256-hex> <len>\n<payload>
func (s *Store) encodeEnvelope(ns Namespace, key string, payload []byte) []byte {
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("%s %s %s %s %s %d\n",
		envelopeMagic, ns, key, s.build, hex.EncodeToString(sum[:]), len(payload))
	out := make([]byte, 0, len(header)+len(payload))
	out = append(out, header...)
	return append(out, payload...)
}

// decodeError distinguishes a corrupt entry (quarantine) from a merely
// mismatched one (someone else's valid entry: wrong build/ns/key — leave
// it alone, report a miss).
type decodeError struct {
	corrupt bool
	reason  string
}

func (e *decodeError) Error() string { return "store: " + e.reason }

func corrupt(format string, args ...any) *decodeError {
	return &decodeError{corrupt: true, reason: fmt.Sprintf(format, args...)}
}

func mismatch(format string, args ...any) *decodeError {
	return &decodeError{corrupt: false, reason: fmt.Sprintf(format, args...)}
}

// decodeEnvelope validates raw entry bytes and returns the payload.
func (s *Store) decodeEnvelope(ns Namespace, key string, raw []byte) ([]byte, *decodeError) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, corrupt("no header line")
	}
	fields := strings.Split(string(raw[:nl]), " ")
	if len(fields) != 6 {
		return nil, corrupt("header has %d fields, want 6", len(fields))
	}
	if fields[0] != envelopeMagic {
		return nil, corrupt("bad magic %q", fields[0])
	}
	n, err := strconv.Atoi(fields[5])
	if err != nil || n < 0 || n > maxEntryBytes {
		return nil, corrupt("bad payload length %q", fields[5])
	}
	payload := raw[nl+1:]
	if len(payload) != n {
		return nil, corrupt("payload is %d bytes, header says %d", len(payload), n)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != fields[4] {
		return nil, corrupt("checksum mismatch")
	}
	// Content is intact from here on; the remaining checks classify whose
	// entry this is, not whether it survived the disk.
	if Namespace(fields[1]) != ns || fields[2] != key {
		return nil, mismatch("entry is %s/%s, want %s/%s", fields[1], fields[2], ns, key)
	}
	if fields[3] != s.build {
		return nil, mismatch("entry from build %q, this is %q", fields[3], s.build)
	}
	return payload, nil
}

// Get returns the payload stored under ns/key from disk, or ok=false on
// miss. Corrupt or truncated entries are quarantined and reported as
// misses; hits touch the entry's mtime so LRU eviction keeps hot entries.
func (s *Store) Get(ns Namespace, key string) ([]byte, bool) {
	if !validNamespace(ns) || !ValidKey(key) {
		return nil, false
	}
	path := s.entryPath(ns, key)
	if f := s.faults.Check(faultinject.OpRead); f.Err != nil {
		s.diskMisses.Add(1)
		return nil, false
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		s.diskMisses.Add(1)
		return nil, false
	}
	payload, derr := s.decodeEnvelope(ns, key, raw)
	if derr != nil {
		if derr.corrupt {
			s.quarantine(path)
		}
		s.diskMisses.Add(1)
		return nil, false
	}
	s.diskHits.Add(1)
	_ = os.Chtimes(path, time.Now(), time.Now()) // LRU touch; best-effort
	return payload, true
}

// ReadRaw returns the validated raw envelope bytes for ns/key — the wire
// form the /v1/store peer surface serves. It does not count as a local
// hit or miss (it is the serving side of someone else's lookup), but a
// corrupt entry is still quarantined.
func (s *Store) ReadRaw(ns Namespace, key string) ([]byte, bool) {
	if !validNamespace(ns) || !ValidKey(key) {
		return nil, false
	}
	path := s.entryPath(ns, key)
	if f := s.faults.Check(faultinject.OpRead); f.Err != nil {
		return nil, false
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	if _, derr := s.decodeEnvelope(ns, key, raw); derr != nil {
		if derr.corrupt {
			s.quarantine(path)
		}
		return nil, false
	}
	return raw, true
}

// Put stores payload under ns/key, atomically: the envelope is staged in
// .tmp and renamed into place, so concurrent readers (any process) see
// either the previous entry or this one, never a torn write. Put then
// enforces MaxBytes by evicting least-recently-used entries. Errors are
// counted and returned, but callers treat persistence as best-effort —
// a failed write never fails the computation that produced the payload.
func (s *Store) Put(ns Namespace, key string, payload []byte) error {
	if !validNamespace(ns) {
		return fmt.Errorf("store: invalid namespace %q", ns)
	}
	if !ValidKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	if len(payload) > maxEntryBytes {
		s.writeErrors.Add(1)
		return fmt.Errorf("store: payload %d bytes exceeds the %d-byte entry bound", len(payload), maxEntryBytes)
	}
	return s.persist(ns, key, s.encodeEnvelope(ns, key, payload))
}

// persist is the health-gated write path shared by Put and the peer
// write-through: the degraded gate runs first (ErrDegraded when writes
// are suppressed), the write's outcome feeds the health machine, and a
// success enforces the byte budget.
func (s *Store) persist(ns Namespace, key string, raw []byte) error {
	if err := s.admitWrite(); err != nil {
		return err
	}
	err := s.write(ns, key, raw)
	s.noteWrite(err)
	if err != nil {
		s.writeErrors.Add(1)
		return err
	}
	s.writes.Add(1)
	s.evict()
	return nil
}

// Degraded reports whether the store is currently in degraded read-only
// mode.
func (s *Store) Degraded() bool {
	s.healthMu.Lock()
	defer s.healthMu.Unlock()
	return s.degraded
}

// admitWrite is the degraded-mode gate. Healthy: every write proceeds.
// Degraded: writes are suppressed with ErrDegraded, except one write
// per probeInterval which is admitted as a recovery probe (its outcome,
// reported to noteWrite, decides whether the store heals).
func (s *Store) admitWrite() error {
	s.healthMu.Lock()
	defer s.healthMu.Unlock()
	if !s.degraded {
		return nil
	}
	if now := time.Now(); now.Sub(s.lastProbe) >= s.probeInterval {
		s.lastProbe = now
		return nil
	}
	s.writesSuppressed.Add(1)
	return ErrDegraded
}

// noteWrite feeds one write outcome into the health machine: a success
// clears the failure streak (and degraded mode, when this was a probe);
// reaching degradeThreshold consecutive failures flips the store
// degraded. Failures while already degraded (failed probes) just leave
// it degraded and restart the probe clock via admitWrite's timestamp.
func (s *Store) noteWrite(err error) {
	s.healthMu.Lock()
	defer s.healthMu.Unlock()
	if err == nil {
		s.consecWriteFails = 0
		s.degraded = false
		return
	}
	s.consecWriteFails++
	if !s.degraded && s.consecWriteFails >= s.degradeThreshold {
		s.degraded = true
		s.lastProbe = time.Now()
	}
}

func (s *Store) write(ns Namespace, key string, raw []byte) error {
	if err := os.MkdirAll(filepath.Join(s.dir, string(ns)), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Join(s.dir, ".tmp"), key+".*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	if f := s.faults.Check(faultinject.OpWrite); f.Err != nil {
		if f.Torn {
			// A torn write lands truncated bytes at the *final* path and
			// then fails — the shape a lying disk plus a crash leaves
			// behind, which atomic rename alone can never produce. The
			// next read must quarantine it as corrupt.
			_, _ = tmp.Write(raw[:len(raw)/2])
			tmp.Close()
			_ = os.Rename(tmpName, s.entryPath(ns, key))
			return fmt.Errorf("store: %w", f.Err)
		}
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", f.Err)
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	// Sync before rename: after a crash the entry must be complete or
	// absent, not a rename pointing at unflushed bytes.
	if f := s.faults.Check(faultinject.OpSync); f.Err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", f.Err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if f := s.faults.Check(faultinject.OpRename); f.Err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", f.Err)
	}
	if err := os.Rename(tmpName, s.entryPath(ns, key)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// quarantine moves a corrupt entry aside (never deleting data that might
// matter for a post-mortem) and counts it. Best-effort: if the rename
// loses a race with a concurrent writer replacing the entry, the corrupt
// bytes are already gone and that is fine too.
func (s *Store) quarantine(path string) {
	s.corruptions.Add(1)
	dst, err := os.CreateTemp(filepath.Join(s.dir, ".quarantine"), filepath.Base(path)+".*")
	if err != nil {
		return
	}
	dstName := dst.Name()
	dst.Close()
	if err := os.Rename(path, dstName); err != nil {
		os.Remove(dstName)
	}
	s.capQuarantine()
}

// capQuarantine keeps .quarantine/ under the byte budget by deleting
// the oldest files (by mtime) first: on a disk that corrupts steadily,
// the quarantine holds the freshest evidence instead of growing without
// bound. Best-effort, like quarantine itself.
func (s *Store) capQuarantine() {
	if s.quarantineMax < 0 {
		return
	}
	dir := filepath.Join(s.dir, ".quarantine")
	des, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	var files []entryInfo
	var total int64
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		fi, err := de.Info()
		if err != nil {
			continue
		}
		files = append(files, entryInfo{
			path:  filepath.Join(dir, de.Name()),
			size:  fi.Size(),
			mtime: fi.ModTime(),
		})
		total += fi.Size()
	}
	if total <= s.quarantineMax {
		return
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	for _, f := range files {
		if total <= s.quarantineMax {
			break
		}
		if err := os.Remove(f.path); err == nil {
			total -= f.size
		}
	}
}

// quarantineBytes is the current size of .quarantine/.
func (s *Store) quarantineBytes() int64 {
	des, err := os.ReadDir(filepath.Join(s.dir, ".quarantine"))
	if err != nil {
		return 0
	}
	var total int64
	for _, de := range des {
		if fi, err := de.Info(); err == nil && !de.IsDir() {
			total += fi.Size()
		}
	}
	return total
}

// Keys lists the keys currently present under a namespace, sorted. Used
// by the campaign tier to discover resumable manifests and checkpoints
// after a restart.
func (s *Store) Keys(ns Namespace) []string {
	if !validNamespace(ns) {
		return nil
	}
	des, err := os.ReadDir(filepath.Join(s.dir, string(ns)))
	if err != nil {
		return nil
	}
	var out []string
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, entryExt) {
			continue
		}
		key := strings.TrimSuffix(name, entryExt)
		if ValidKey(key) {
			out = append(out, key)
		}
	}
	sort.Strings(out)
	return out
}

// Pin marks ns/key as protected from MaxBytes eviction until a matching
// Unpin. Pins are reference-counted and per-process (in-memory): an
// active campaign's manifest and checkpoints must survive LRU pressure
// mid-job — touch-on-read is not enough when thousands of fresh scenario
// writes land between two reads of the same checkpoint. Pinning a key
// that has no entry yet is fine (the pin covers the entry once written).
func (s *Store) Pin(ns Namespace, key string) {
	if !validNamespace(ns) || !ValidKey(key) {
		return
	}
	s.pinMu.Lock()
	s.pinned[s.entryPath(ns, key)]++
	s.pinMu.Unlock()
}

// Unpin releases one Pin reference on ns/key.
func (s *Store) Unpin(ns Namespace, key string) {
	if !validNamespace(ns) || !ValidKey(key) {
		return
	}
	path := s.entryPath(ns, key)
	s.pinMu.Lock()
	if n := s.pinned[path]; n > 1 {
		s.pinned[path] = n - 1
	} else {
		delete(s.pinned, path)
	}
	s.pinMu.Unlock()
}

// pinnedPaths snapshots the currently pinned entry paths.
func (s *Store) pinnedPaths() map[string]bool {
	s.pinMu.Lock()
	defer s.pinMu.Unlock()
	if len(s.pinned) == 0 {
		return nil
	}
	out := make(map[string]bool, len(s.pinned))
	for p := range s.pinned {
		out[p] = true
	}
	return out
}

// entryInfo is one entry's eviction-relevant metadata.
type entryInfo struct {
	path  string
	size  int64
	mtime time.Time
}

// walkEntries lists all entries across namespaces. Directory-read errors
// are ignored: a namespace that does not exist yet holds no entries.
func (s *Store) walkEntries() []entryInfo {
	var out []entryInfo
	for _, ns := range Namespaces() {
		dir := filepath.Join(s.dir, string(ns))
		des, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, de := range des {
			if de.IsDir() || !strings.HasSuffix(de.Name(), entryExt) {
				continue
			}
			fi, err := de.Info()
			if err != nil {
				continue
			}
			out = append(out, entryInfo{
				path:  filepath.Join(dir, de.Name()),
				size:  fi.Size(),
				mtime: fi.ModTime(),
			})
		}
	}
	return out
}

// evict removes least-recently-used entries until the total size fits
// MaxBytes. The walk recomputes sizes from disk each pass, so totals
// self-heal across processes sharing the directory.
func (s *Store) evict() {
	if s.maxBytes <= 0 {
		return
	}
	s.evictMu.Lock()
	defer s.evictMu.Unlock()
	entries := s.walkEntries()
	var total int64
	for _, e := range entries {
		total += e.size
	}
	if total <= s.maxBytes {
		return
	}
	// Pinned entries (active campaign state) sort after everything else:
	// they are only reclaimed when evicting every unpinned entry still
	// does not fit the budget, so a byte cap cannot silently destroy a
	// running campaign's checkpoints.
	pinned := s.pinnedPaths()
	sort.Slice(entries, func(i, j int) bool {
		pi, pj := pinned[entries[i].path], pinned[entries[j].path]
		if pi != pj {
			return pj
		}
		return entries[i].mtime.Before(entries[j].mtime)
	})
	for _, e := range entries {
		if total <= s.maxBytes {
			break
		}
		if err := os.Remove(e.path); err == nil {
			total -= e.size
			s.evictions.Add(1)
		}
	}
}

// Stats snapshots the counters and the on-disk footprint.
func (s *Store) Stats() Stats {
	st := Stats{
		DiskHits:         s.diskHits.Load(),
		DiskMisses:       s.diskMisses.Load(),
		Corruptions:      s.corruptions.Load(),
		PeerHits:         s.peerHits.Load(),
		PeerMisses:       s.peerMisses.Load(),
		PeerErrors:       s.peerErrors.Load(),
		PeerSkips:        s.peerSkips.Load(),
		Writes:           s.writes.Load(),
		WriteErrors:      s.writeErrors.Load(),
		WritesSuppressed: s.writesSuppressed.Load(),
		Evictions:        s.evictions.Load(),
		Degraded:         s.Degraded(),
		QuarantineBytes:  s.quarantineBytes(),
	}
	for _, e := range s.walkEntries() {
		st.Entries++
		st.Bytes += e.size
	}
	s.pinMu.Lock()
	st.Pinned = int64(len(s.pinned))
	s.pinMu.Unlock()
	return st
}
