package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"tensortee/internal/faultinject"
)

// openFaulty builds a store whose I/O runs under the given fault plan.
func openFaulty(t *testing.T, plan string, opts Options) *Store {
	t.Helper()
	inj, err := faultinject.Parse(plan)
	if err != nil {
		t.Fatalf("Parse(%q): %v", plan, err)
	}
	opts.Faults = inj
	return open(t, t.TempDir(), opts)
}

// TestMidWriteCrashShapesAreCleanMisses drives the three ways an atomic
// write can die — payload write, fsync, rename — and asserts each one
// is a returned error plus a clean miss: no entry lands, no temp file
// leaks, the next Put succeeds.
func TestMidWriteCrashShapesAreCleanMisses(t *testing.T) {
	for _, plan := range []string{"write:fail@1", "fsync:fail@1", "rename:fail@1"} {
		t.Run(plan, func(t *testing.T) {
			s := openFaulty(t, plan, Options{})
			err := s.Put(Results, "fig16", []byte("payload"))
			if err == nil {
				t.Fatal("Put under a failing schedule succeeded")
			}
			if !errors.Is(err, faultinject.ErrInjected) || !errors.Is(err, syscall.EIO) {
				t.Errorf("err %v does not carry ErrInjected+EIO", err)
			}
			if _, ok := s.Get(Results, "fig16"); ok {
				t.Error("failed write left a readable entry")
			}
			if _, statErr := os.Stat(s.entryPath(Results, "fig16")); !os.IsNotExist(statErr) {
				t.Error("failed write left bytes at the final path")
			}
			if des, _ := os.ReadDir(filepath.Join(s.Dir(), ".tmp")); len(des) != 0 {
				t.Errorf(".tmp holds %d leaked files after a failed write", len(des))
			}
			// The schedule fired once; the retry lands cleanly.
			if err := s.Put(Results, "fig16", []byte("payload")); err != nil {
				t.Fatalf("retry after the injected failure: %v", err)
			}
			if got, ok := s.Get(Results, "fig16"); !ok || !bytes.Equal(got, []byte("payload")) {
				t.Error("entry unreadable after clean retry")
			}
		})
	}
}

// TestTornWriteQuarantinesOnRead exercises the lying-disk shape: a torn
// write lands truncated bytes at the final path. The next read must
// treat it as corrupt — quarantine, miss, never an error or a crash.
func TestTornWriteQuarantinesOnRead(t *testing.T) {
	s := openFaulty(t, "write:torn@1", Options{})
	if err := s.Put(Results, "fig16", []byte("a payload long enough to truncate")); err == nil {
		t.Fatal("torn Put reported success")
	}
	if _, statErr := os.Stat(s.entryPath(Results, "fig16")); statErr != nil {
		t.Fatal("torn write left nothing at the final path; the test shape is wrong")
	}
	if _, ok := s.Get(Results, "fig16"); ok {
		t.Fatal("torn entry served as a hit")
	}
	st := s.Stats()
	if st.Corruptions != 1 {
		t.Errorf("corruptions = %d, want 1", st.Corruptions)
	}
	if st.QuarantineBytes == 0 {
		t.Error("torn entry was not quarantined")
	}
	if _, statErr := os.Stat(s.entryPath(Results, "fig16")); !os.IsNotExist(statErr) {
		t.Error("torn entry still at the final path after quarantine")
	}
}

func TestInjectedErrnoSurfacesThroughPut(t *testing.T) {
	s := openFaulty(t, "write:fail@1:enospc", Options{})
	err := s.Put(Results, "fig16", []byte("x"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Errorf("Put err %v does not match ENOSPC", err)
	}
}

// TestDegradedStateMachine walks the whole health cycle: consecutive
// write failures flip the store read-only, suppressed writes return
// ErrDegraded without touching the disk, a failed probe keeps it
// degraded, and a successful probe restores normal writes.
func TestDegradedStateMachine(t *testing.T) {
	const probeEvery = 30 * time.Millisecond
	s := openFaulty(t, "write:fail-until@4", Options{
		DegradeThreshold: 3,
		ProbeInterval:    probeEvery,
	})

	for i := 1; i <= 3; i++ {
		if err := s.Put(Results, "fig16", []byte("x")); err == nil {
			t.Fatalf("write %d succeeded under fail-until@4", i)
		}
	}
	if !s.Degraded() {
		t.Fatal("store not degraded after 3 consecutive write failures")
	}

	// Inside the probe interval: suppressed, and the injector sees no
	// write at all (the disk is not touched).
	callsBefore := s.faults.Calls(faultinject.OpWrite)
	if err := s.Put(Results, "fig16", []byte("x")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("suppressed Put = %v, want ErrDegraded", err)
	}
	if s.faults.Calls(faultinject.OpWrite) != callsBefore {
		t.Error("suppressed Put still reached the disk")
	}

	// First probe (write #4) still fails: degraded persists.
	time.Sleep(probeEvery + 10*time.Millisecond)
	if err := s.Put(Results, "fig16", []byte("x")); errors.Is(err, ErrDegraded) || err == nil {
		t.Fatalf("probe write = %v, want an injected failure", err)
	}
	if !s.Degraded() {
		t.Fatal("failed probe healed the store")
	}

	// Second probe (write #5) succeeds: healthy again, writes flow.
	time.Sleep(probeEvery + 10*time.Millisecond)
	if err := s.Put(Results, "fig16", []byte("recovered")); err != nil {
		t.Fatalf("successful probe returned %v", err)
	}
	if s.Degraded() {
		t.Fatal("store still degraded after a successful probe")
	}
	if err := s.Put(Results, "fig17", []byte("normal")); err != nil {
		t.Fatalf("post-recovery write: %v", err)
	}

	st := s.Stats()
	if st.Degraded {
		t.Error("Stats.Degraded true after recovery")
	}
	if st.WritesSuppressed != 1 {
		t.Errorf("writes suppressed = %d, want 1", st.WritesSuppressed)
	}
}

// TestDegradedStoreStillServesReads is the point of degraded mode:
// a disk that stops accepting writes keeps serving everything already
// on it.
func TestDegradedStoreStillServesReads(t *testing.T) {
	s := openFaulty(t, "write:fail-after@1", Options{DegradeThreshold: 3})
	payload := []byte("written while healthy")
	if err := s.Put(Results, "fig16", payload); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(Results, "other", []byte("x")); err == nil {
			t.Fatal("write succeeded under fail-after@1")
		}
	}
	if !s.Degraded() {
		t.Fatal("store not degraded")
	}
	if got, ok := s.Get(Results, "fig16"); !ok || !bytes.Equal(got, payload) {
		t.Error("degraded store lost a warm read")
	}
	if _, ok := s.ReadRaw(Results, "fig16"); !ok {
		t.Error("degraded store stopped serving the peer surface")
	}
	if st := s.Stats(); !st.Degraded {
		t.Error("Stats does not report degraded")
	}
}

// TestQuarantineByteCapEvictsOldestFirst fills the quarantine past its
// budget and asserts the oldest corpses go first.
func TestQuarantineByteCapEvictsOldestFirst(t *testing.T) {
	s := open(t, t.TempDir(), Options{QuarantineMaxBytes: 2500})
	garbage := bytes.Repeat([]byte("g"), 1000)
	base := time.Now().Add(-time.Hour)
	if err := os.MkdirAll(filepath.Join(s.Dir(), string(Results)), 0o755); err != nil {
		t.Fatal(err)
	}
	keys := []string{"k1", "k2", "k3", "k4"}
	for i, key := range keys {
		path := s.entryPath(Results, key)
		if err := os.WriteFile(path, garbage, 0o644); err != nil {
			t.Fatal(err)
		}
		// Stagger mtimes so oldest-first is deterministic (rename into
		// quarantine preserves them).
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(path, mt, mt); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get(Results, key); ok {
			t.Fatalf("garbage entry %s served as a hit", key)
		}
	}
	if got := s.Stats().QuarantineBytes; got > 2500 {
		t.Errorf("quarantine holds %d bytes, budget 2500", got)
	}
	des, err := os.ReadDir(filepath.Join(s.Dir(), ".quarantine"))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, de := range des {
		names = append(names, de.Name())
	}
	for _, gone := range []string{"k1.tte", "k2.tte"} {
		for _, name := range names {
			if strings.HasPrefix(name, gone) {
				t.Errorf("oldest corpse %s survived the cap (have %v)", gone, names)
			}
		}
	}
	found := 0
	for _, keep := range []string{"k3.tte", "k4.tte"} {
		for _, name := range names {
			if strings.HasPrefix(name, keep) {
				found++
			}
		}
	}
	if found != 2 {
		t.Errorf("newest corpses missing from quarantine: %v", names)
	}
}

// TestReadFaultIsAMiss: an injected read error behaves exactly like an
// unreadable file — a miss, not an error, and no quarantine (there is
// nothing provably corrupt).
func TestReadFaultIsAMiss(t *testing.T) {
	s := openFaulty(t, "read:fail@2", Options{})
	if err := s.Put(Results, "fig16", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(Results, "fig16"); !ok {
		t.Fatal("read 1 missed")
	}
	if _, ok := s.Get(Results, "fig16"); ok {
		t.Fatal("injected read fault served a hit")
	}
	if st := s.Stats(); st.Corruptions != 0 {
		t.Errorf("read fault quarantined a healthy entry (corruptions=%d)", st.Corruptions)
	}
	if _, ok := s.Get(Results, "fig16"); !ok {
		t.Fatal("read 3 missed; the entry should have survived the injected fault")
	}
}
