package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func open(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	payload := []byte(`{"hello":"world"}`)
	if err := s.Put(Results, "fig16", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(Results, "fig16")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want payload back", got, ok)
	}
	// Namespaces are disjoint key spaces.
	if _, ok := s.Get(Scenarios, "fig16"); ok {
		t.Error("payload leaked across namespaces")
	}
	if _, ok := s.Get(Results, "other"); ok {
		t.Error("hit on a never-written key")
	}
	st := s.Stats()
	if st.DiskHits != 1 || st.DiskMisses != 2 || st.Writes != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEmptyPayloadRoundTrips(t *testing.T) {
	// A zero-length payload is a valid entry (checksummed, complete) —
	// distinct from a zero-length *file*, which is corrupt.
	s := open(t, t.TempDir(), Options{})
	if err := s.Put(Results, "empty", nil); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(Results, "empty")
	if !ok || len(got) != 0 {
		t.Fatalf("Get = %q, %v; want empty hit", got, ok)
	}
}

func TestCorruptEntriesAreMissesAndQuarantined(t *testing.T) {
	payload := []byte(`{"k":"v","n":[1,2,3]}`)
	cases := []struct {
		name    string
		mutate  func(raw []byte) []byte
		corrupt bool // quarantined (vs a clean mismatch miss)
	}{
		{"zero-length file", func([]byte) []byte { return nil }, true},
		{"truncated header", func(raw []byte) []byte { return raw[:10] }, true},
		{"truncated payload", func(raw []byte) []byte { return raw[:len(raw)-5] }, true},
		{"garbage", func([]byte) []byte { return []byte("complete nonsense\nmore nonsense") }, true},
		{"bad magic", func(raw []byte) []byte { return append([]byte("x"), raw...) }, true},
		{"flipped payload bit", func(raw []byte) []byte {
			out := append([]byte(nil), raw...)
			out[len(out)-2] ^= 1
			return out
		}, true},
		{"trailing garbage", func(raw []byte) []byte { return append(append([]byte(nil), raw...), "extra"...) }, true},
		{"foreign build", func(raw []byte) []byte {
			// Re-encode under a different build tag: intact, but not ours.
			other := &Store{build: "other-build"}
			return other.encodeEnvelope(Results, "victim", payload)
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s := open(t, dir, Options{})
			if err := s.Put(Results, "victim", payload); err != nil {
				t.Fatal(err)
			}
			path := s.entryPath(Results, "victim")
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mutate(raw), 0o644); err != nil {
				t.Fatal(err)
			}

			if _, ok := s.Get(Results, "victim"); ok {
				t.Fatal("corrupt entry served as a hit")
			}
			st := s.Stats()
			if st.DiskMisses != 1 {
				t.Errorf("misses = %d, want 1", st.DiskMisses)
			}
			quarantined, _ := os.ReadDir(filepath.Join(dir, ".quarantine"))
			if tc.corrupt {
				if st.Corruptions != 1 {
					t.Errorf("corruptions = %d, want 1", st.Corruptions)
				}
				if len(quarantined) != 1 {
					t.Errorf("quarantine holds %d files, want 1", len(quarantined))
				}
				if _, err := os.Stat(path); !os.IsNotExist(err) {
					t.Errorf("corrupt entry still in place: %v", err)
				}
			} else {
				if st.Corruptions != 0 {
					t.Errorf("mismatch counted as corruption: %+v", st)
				}
				if len(quarantined) != 0 {
					t.Errorf("mismatched entry quarantined")
				}
				if _, err := os.Stat(path); err != nil {
					t.Errorf("mismatched entry removed: %v", err)
				}
			}
			// The slot is writable again either way.
			if err := s.Put(Results, "victim", payload); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(Results, "victim"); !ok || !bytes.Equal(got, payload) {
				t.Error("rewrite after corruption did not serve")
			}
		})
	}
}

func TestKeyAndNamespaceValidation(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	for _, bad := range []string{"", ".", "..", ".hidden", "a/b", "a\\b", "a b", strings.Repeat("x", 129), "päth"} {
		if ValidKey(bad) {
			t.Errorf("ValidKey(%q) = true", bad)
		}
		if err := s.Put(Results, bad, []byte("x")); err == nil {
			t.Errorf("Put accepted key %q", bad)
		}
		if _, ok := s.Get(Results, bad); ok {
			t.Errorf("Get hit on key %q", bad)
		}
	}
	for _, good := range []string{"fig16", "ab01cd", "A-b_c.9"} {
		if !ValidKey(good) {
			t.Errorf("ValidKey(%q) = false", good)
		}
	}
	if err := s.Put(Namespace("nope"), "key", []byte("x")); err == nil {
		t.Error("Put accepted an unknown namespace")
	}
	if _, ok := s.Get(Namespace("nope"), "key"); ok {
		t.Error("Get hit in an unknown namespace")
	}
}

func TestEvictionDropsOldestByMtime(t *testing.T) {
	// Three ~1KB entries under a 2.5KB budget: the oldest-touched entry
	// goes, the two recently-touched survive.
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("x"), 1000)
	s := open(t, dir, Options{MaxBytes: 2500})
	for i, key := range []string{"old", "mid", "new"} {
		if err := s.Put(Results, key, payload); err != nil {
			t.Fatal(err)
		}
		// File mtimes can tie within a coarse clock; separate them
		// explicitly so LRU order is deterministic.
		mt := time.Now().Add(time.Duration(i-3) * time.Minute)
		if err := os.Chtimes(s.entryPath(Results, key), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	// The third Put ran eviction before the explicit Chtimes; run another
	// write to trigger eviction against the staged mtimes.
	if err := s.Put(Calibrations, "snap", []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(Results, "old"); ok {
		t.Error("oldest entry survived eviction")
	}
	for _, key := range []string{"mid", "new"} {
		if _, ok := s.Get(Results, key); !ok {
			t.Errorf("recent entry %q evicted", key)
		}
	}
	if st := s.Stats(); st.Evictions == 0 || st.Bytes > 2500 {
		t.Errorf("stats after eviction = %+v", st)
	}
}

func TestPinnedEntriesEvictLast(t *testing.T) {
	// An active campaign's checkpoints must survive LRU pressure even
	// when they are the oldest entries on disk: pinned entries are only
	// reclaimed after every unpinned entry is gone.
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("x"), 1000)
	s := open(t, dir, Options{MaxBytes: 2500})
	s.Pin(Campaigns, "job.p00001")
	if err := s.Put(Campaigns, "job.p00001", payload); err != nil {
		t.Fatal(err)
	}
	// Make the pinned checkpoint the stalest entry by far.
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(s.entryPath(Campaigns, "job.p00001"), old, old); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"a", "b"} {
		if err := s.Put(Results, key, payload); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Get(Campaigns, "job.p00001"); !ok {
		t.Fatal("pinned checkpoint evicted while its campaign ran")
	}
	// Budget still enforced: the eviction fell on unpinned entries.
	aOK := false
	bOK := false
	if _, ok := s.Get(Results, "a"); ok {
		aOK = true
	}
	if _, ok := s.Get(Results, "b"); ok {
		bOK = true
	}
	if aOK && bOK {
		t.Fatal("no unpinned entry was evicted under the byte budget")
	}
	if st := s.Stats(); st.Pinned != 1 {
		t.Fatalf("Stats.Pinned = %d, want 1", st.Pinned)
	}

	// After Unpin (campaign finished), the checkpoint competes by age
	// like everything else.
	s.Unpin(Campaigns, "job.p00001")
	if st := s.Stats(); st.Pinned != 0 {
		t.Fatalf("Stats.Pinned after Unpin = %d, want 0", st.Pinned)
	}
	// The Get above touched its mtime; re-stale it so LRU order is
	// deterministic again.
	if err := os.Chtimes(s.entryPath(Campaigns, "job.p00001"), old, old); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Results, "c", payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(Campaigns, "job.p00001"); ok {
		t.Fatal("stalest entry survived eviction after Unpin")
	}
}

func TestPinIsRefCounted(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	s.Pin(Campaigns, "job.m")
	s.Pin(Campaigns, "job.m")
	s.Unpin(Campaigns, "job.m")
	if st := s.Stats(); st.Pinned != 1 {
		t.Fatalf("Stats.Pinned after one of two Unpins = %d, want 1", st.Pinned)
	}
	s.Unpin(Campaigns, "job.m")
	s.Unpin(Campaigns, "job.m") // extra Unpin is harmless
	if st := s.Stats(); st.Pinned != 0 {
		t.Fatalf("Stats.Pinned = %d, want 0", st.Pinned)
	}
}

func TestGetTouchesForLRU(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{MaxBytes: 2500})
	payload := bytes.Repeat([]byte("x"), 1000)
	for i, key := range []string{"a", "b"} {
		if err := s.Put(Results, key, payload); err != nil {
			t.Fatal(err)
		}
		mt := time.Now().Add(time.Duration(i-3) * time.Minute)
		if err := os.Chtimes(s.entryPath(Results, key), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	// Reading "a" (the older entry) touches it, so "b" is now the LRU
	// victim when a third entry overflows the budget.
	if _, ok := s.Get(Results, "a"); !ok {
		t.Fatal("miss on a")
	}
	if err := s.Put(Results, "c", payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(Results, "a"); !ok {
		t.Error("recently-read entry evicted")
	}
	if _, ok := s.Get(Results, "b"); ok {
		t.Error("stale entry survived over the recently-read one")
	}
}

// TestConcurrentWritersAndReadersNeverTearEntries pins the atomic-rename
// guarantee the multi-process sharing story rests on: while writers
// continually replace one key with different-sized valid payloads,
// readers must only ever observe complete valid payloads (or clean
// misses) — never a torn read, never a quarantined "corruption".
func TestConcurrentWritersAndReadersNeverTearEntries(t *testing.T) {
	dir := t.TempDir()
	// Two Store handles over one directory stand in for two processes.
	writerStore := open(t, dir, Options{})
	readerStore := open(t, dir, Options{})

	payloads := make([][]byte, 8)
	valid := make(map[string]bool, len(payloads))
	for i := range payloads {
		payloads[i] = bytes.Repeat([]byte{byte('a' + i)}, 512*(i+1))
		valid[string(payloads[i])] = true
	}

	const writers, readers = 4, 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := writerStore.Put(Results, "shared", payloads[(i+w)%len(payloads)]); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	var torn atomic64
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if payload, ok := readerStore.Get(Results, "shared"); ok && !valid[string(payload)] {
					torn.add(1)
				}
			}
		}()
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	if n := torn.load(); n != 0 {
		t.Fatalf("%d torn reads observed", n)
	}
	if c := readerStore.Stats().Corruptions + writerStore.Stats().Corruptions; c != 0 {
		t.Fatalf("%d entries quarantined under concurrent rewrite", c)
	}
	// The final state is one of the valid payloads.
	if payload, ok := readerStore.Get(Results, "shared"); !ok || !valid[string(payload)] {
		t.Fatalf("final read invalid (ok=%v)", ok)
	}
}

// atomic64 avoids importing sync/atomic under a name clashing with the
// test helpers.
type atomic64 struct {
	mu sync.Mutex
	n  int64
}

func (a *atomic64) add(d int64) { a.mu.Lock(); a.n += d; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.n }

func TestReadRawServesValidatedEnvelope(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	payload := []byte("payload-bytes")
	if err := s.Put(Scenarios, "abcd1234", payload); err != nil {
		t.Fatal(err)
	}
	raw, ok := s.ReadRaw(Scenarios, "abcd1234")
	if !ok {
		t.Fatal("miss on a written entry")
	}
	// The raw form must decode back to the payload under the same build.
	got, derr := s.decodeEnvelope(Scenarios, "abcd1234", raw)
	if derr != nil || !bytes.Equal(got, payload) {
		t.Fatalf("raw envelope did not round-trip: %v", derr)
	}
	if _, ok := s.ReadRaw(Scenarios, "missing"); ok {
		t.Error("ReadRaw hit on a missing key")
	}
	// ReadRaw is the serving side: it must not skew local hit/miss stats.
	if st := s.Stats(); st.DiskHits != 0 || st.DiskMisses != 0 {
		t.Errorf("ReadRaw counted as local traffic: %+v", st)
	}
}

func TestBuildTagNonEmptyAndStable(t *testing.T) {
	a, b := BuildTag(), BuildTag()
	if a == "" || a != b {
		t.Errorf("BuildTag = %q / %q", a, b)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open("", Options{}); err == nil {
		t.Error("Open accepted an empty directory")
	}
}

func TestPutRejectsOversizedPayload(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	huge := make([]byte, maxEntryBytes+1)
	if err := s.Put(Results, "huge", huge); err == nil {
		t.Fatal("Put accepted an oversized payload")
	}
	if st := s.Stats(); st.WriteErrors != 1 {
		t.Errorf("write errors = %d, want 1", st.WriteErrors)
	}
}
