package store

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tensortee/internal/faultinject"
)

// servePeer mounts a minimal /v1/store/{ns}/{key} surface over src — the
// same raw-envelope contract the tensorteed daemon serves.
func servePeer(t *testing.T, src *Store) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		parts := strings.Split(strings.TrimPrefix(r.URL.Path, "/v1/store/"), "/")
		if len(parts) != 2 {
			http.NotFound(w, r)
			return
		}
		raw, ok := src.ReadRaw(Namespace(parts[0]), parts[1])
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Write(raw)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestGetOrFetchFallsBackToPeer(t *testing.T) {
	peerStore := open(t, t.TempDir(), Options{})
	payload := []byte(`{"from":"peer"}`)
	if err := peerStore.Put(Results, "fig16", payload); err != nil {
		t.Fatal(err)
	}
	peer := servePeer(t, peerStore)

	local := open(t, t.TempDir(), Options{Peers: []string{peer.URL}})
	got, ok := local.GetOrFetch(context.Background(), Results, "fig16")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("GetOrFetch = %q, %v", got, ok)
	}
	st := local.Stats()
	if st.PeerHits != 1 {
		t.Errorf("peer hits = %d, want 1", st.PeerHits)
	}
	// The fetched entry persisted locally: the next lookup is a pure disk
	// hit with no peer traffic.
	peer.Close()
	got2, ok := local.GetOrFetch(context.Background(), Results, "fig16")
	if !ok || !bytes.Equal(got2, payload) {
		t.Fatal("local re-read after peer fetch missed")
	}
	if st := local.Stats(); st.PeerHits != 1 || st.DiskHits == 0 {
		t.Errorf("stats after re-read = %+v", st)
	}
}

func TestGetOrFetchPrefersLocalDisk(t *testing.T) {
	var probes atomic.Int64
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		probes.Add(1)
		http.NotFound(w, r)
	}))
	t.Cleanup(peer.Close)
	local := open(t, t.TempDir(), Options{Peers: []string{peer.URL}})
	if err := local.Put(Results, "fig16", []byte("local")); err != nil {
		t.Fatal(err)
	}
	if _, ok := local.GetOrFetch(context.Background(), Results, "fig16"); !ok {
		t.Fatal("miss on local entry")
	}
	if probes.Load() != 0 {
		t.Errorf("peer probed despite local hit")
	}
}

func TestGetOrFetchFailsOpenOnDeadSlowAndLyingPeers(t *testing.T) {
	// Dead peer: connection refused.
	dead := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	dead.Close()

	// Slow peer: hangs past the probe timeout.
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	t.Cleanup(func() { close(release); slow.Close() })

	// Lying peer: 200 with garbage instead of an envelope.
	lying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("not an envelope at all"))
	}))
	t.Cleanup(lying.Close)

	// Foreign-build peer: a valid envelope from a different build.
	foreignStore := open(t, t.TempDir(), Options{BuildTag: "other-build"})
	if err := foreignStore.Put(Results, "fig16", []byte("wrong numbers")); err != nil {
		t.Fatal(err)
	}
	foreign := servePeer(t, foreignStore)

	local := open(t, t.TempDir(), Options{
		Peers:       []string{dead.URL, slow.URL, lying.URL, foreign.URL},
		PeerTimeout: 150 * time.Millisecond,
	})
	start := time.Now()
	if _, ok := local.GetOrFetch(context.Background(), Results, "fig16"); ok {
		t.Fatal("a bad peer produced a hit")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("probe chain took %v; timeouts not enforced", elapsed)
	}
	st := local.Stats()
	if st.PeerMisses != 1 {
		t.Errorf("peer misses = %d, want 1", st.PeerMisses)
	}
	if st.PeerErrors == 0 {
		t.Error("no peer errors counted across dead/slow/lying peers")
	}
	if st.PeerHits != 0 {
		t.Error("counted a peer hit")
	}
}

func TestGetOrFetchSecondPeerServesAfterFirstMisses(t *testing.T) {
	emptyStore := open(t, t.TempDir(), Options{})
	empty := servePeer(t, emptyStore)

	fullStore := open(t, t.TempDir(), Options{})
	payload := []byte("present on the second peer")
	if err := fullStore.Put(Calibrations, "cfg01", payload); err != nil {
		t.Fatal(err)
	}
	full := servePeer(t, fullStore)

	local := open(t, t.TempDir(), Options{Peers: []string{empty.URL, full.URL}})
	got, ok := local.GetOrFetch(context.Background(), Calibrations, "cfg01")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("GetOrFetch = %q, %v", got, ok)
	}
	if st := local.Stats(); st.PeerHits != 1 || st.PeerErrors != 0 {
		t.Errorf("stats = %+v (a 404 miss must not count as a peer error)", st)
	}
}

func TestGetOrFetchNoPeersIsPlainMiss(t *testing.T) {
	local := open(t, t.TempDir(), Options{})
	if _, ok := local.GetOrFetch(context.Background(), Results, "fig16"); ok {
		t.Fatal("hit from nowhere")
	}
	if st := local.Stats(); st.PeerMisses != 0 || st.DiskMisses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestGetOrFetchProbesConcurrentlyUnderSharedBudget(t *testing.T) {
	// Four hanging peers probed serially would cost 4x the per-probe
	// timeout; the shared budget bounds the whole group.
	var peers []string
	for i := 0; i < 4; i++ {
		hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			<-r.Context().Done()
		}))
		t.Cleanup(hang.Close)
		peers = append(peers, hang.URL)
	}
	local := open(t, t.TempDir(), Options{
		Peers:           peers,
		PeerTimeout:     500 * time.Millisecond,
		PeerProbeBudget: 200 * time.Millisecond,
	})
	start := time.Now()
	if _, ok := local.GetOrFetch(context.Background(), Results, "fig16"); ok {
		t.Fatal("hit from hanging peers")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("probe group took %v; the shared budget (200ms) is not bounding it", elapsed)
	}
}

func TestGetOrFetchFirstSuccessWins(t *testing.T) {
	src := open(t, t.TempDir(), Options{})
	payload := []byte("present on both peers")
	if err := src.Put(Results, "fig16", payload); err != nil {
		t.Fatal(err)
	}
	fast := servePeer(t, src)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(2 * time.Second):
		case <-r.Context().Done():
			return
		}
		raw, _ := src.ReadRaw(Results, "fig16")
		w.Write(raw)
	}))
	t.Cleanup(slow.Close)

	local := open(t, t.TempDir(), Options{
		Peers:           []string{slow.URL, fast.URL},
		PeerTimeout:     3 * time.Second,
		PeerProbeBudget: 3 * time.Second,
	})
	start := time.Now()
	got, ok := local.GetOrFetch(context.Background(), Results, "fig16")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("GetOrFetch = %q, %v", got, ok)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("took %v: the fast peer's answer did not win over the slow one", elapsed)
	}
}

func TestOpenPeerBreakerSkipsProbes(t *testing.T) {
	var requests atomic.Int64
	sick := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	t.Cleanup(sick.Close)
	local := open(t, t.TempDir(), Options{Peers: []string{sick.URL}})

	// peerBreakerThreshold consecutive failed probes open the breaker...
	for i := 0; i < peerBreakerThreshold; i++ {
		if _, ok := local.GetOrFetch(context.Background(), Results, "fig16"); ok {
			t.Fatal("hit from a 500ing peer")
		}
	}
	if got := requests.Load(); got != peerBreakerThreshold {
		t.Fatalf("peer saw %d probes during the trip phase, want %d", got, peerBreakerThreshold)
	}
	// ...after which lookups skip the peer without any HTTP traffic.
	for i := 0; i < 5; i++ {
		if _, ok := local.GetOrFetch(context.Background(), Results, "fig16"); ok {
			t.Fatal("hit from a skipped peer")
		}
	}
	if got := requests.Load(); got != peerBreakerThreshold {
		t.Errorf("open breaker leaked %d probes to the peer", got-peerBreakerThreshold)
	}
	if st := local.Stats(); st.PeerSkips != 5 {
		t.Errorf("peer skips = %d, want 5", st.PeerSkips)
	}
}

func TestPeerFaultHookFailsProbes(t *testing.T) {
	src := open(t, t.TempDir(), Options{})
	if err := src.Put(Results, "fig16", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	peer := servePeer(t, src)

	inj, err := faultinject.Parse("peer:fail@1")
	if err != nil {
		t.Fatal(err)
	}
	local := open(t, t.TempDir(), Options{Peers: []string{peer.URL}, Faults: inj})
	if _, ok := local.GetOrFetch(context.Background(), Results, "fig16"); ok {
		t.Fatal("injected peer fault still produced a hit")
	}
	if st := local.Stats(); st.PeerErrors != 1 {
		t.Errorf("peer errors = %d, want 1", st.PeerErrors)
	}
	// The schedule fired; the next lookup reaches the peer and hits.
	if _, ok := local.GetOrFetch(context.Background(), Results, "fig16"); !ok {
		t.Fatal("probe after the injected fault missed")
	}
}
