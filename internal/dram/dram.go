// Package dram provides Ramulator-style bank/row-buffer timing models for
// the two memories in the system: host DDR4-2400 (Table 1, 2 channels) and
// NPU GDDR5 (40 GB, 128 GB/s aggregate).
//
// Fidelity: per-bank row-buffer state with tRCD/tCAS/tRP/tRAS timing, a
// per-channel shared data bus, and address interleaving across channels and
// banks. This captures the two DRAM effects the paper's results depend on —
// row hits vs. conflicts for streaming vs. scattered metadata accesses, and
// bandwidth saturation as thread count grows (Figure 3).
//
// All times are sim.Time picoseconds.
package dram

import (
	"fmt"

	"tensortee/internal/sim"
)

// Timing holds device timing parameters in picoseconds.
type Timing struct {
	Name string
	// Banks per channel (bank groups folded in).
	Banks int
	// RowBytes is the row-buffer (page) size per bank.
	RowBytes int
	// BurstBytes is the data transferred per column access (one cacheline).
	BurstBytes int
	// Burst is data-bus occupancy per column access.
	Burst sim.Dur
	// TRCD activate-to-read, TCAS read-to-data, TRP precharge, TRAS
	// activate-to-precharge minimum.
	TRCD, TCAS, TRP, TRAS sim.Dur
	// TREFI is the all-bank refresh interval and TRFC the refresh cycle
	// time: every TREFI the device is unavailable for TRFC (JEDEC
	// all-bank refresh; ~4-5% of time at normal temperatures).
	TREFI, TRFC sim.Dur
}

func cyc(n float64, freqHz float64) sim.Dur { return sim.Cycles(n, freqHz) }

// DDR4_2400 returns the host-memory timing profile. At 2400 MT/s a 64 B
// burst (BL8) occupies 4 bus-clock cycles of the 1.2 GHz clock, giving
// 19.2 GB/s per channel — 38.4 GB/s for the two-channel Table-1 system.
func DDR4_2400() Timing {
	const ck = 1.2e9
	return Timing{
		Name:       "DDR4-2400",
		Banks:      16,
		RowBytes:   8 << 10,
		BurstBytes: 64,
		Burst:      cyc(4, ck),
		TRCD:       cyc(17, ck), TCAS: cyc(17, ck), TRP: cyc(17, ck), TRAS: cyc(39, ck),
		TREFI: sim.FromNanos(7800), TRFC: sim.FromNanos(350),
	}
}

// GDDR5Chan returns the per-channel NPU-memory profile: 8 channels of
// 16 GB/s give the 128 GB/s aggregate of Table 1.
func GDDR5Chan() Timing {
	const ck = 2.0e9
	return Timing{
		Name:       "GDDR5",
		Banks:      16,
		RowBytes:   2 << 10,
		BurstBytes: 64,
		Burst:      cyc(8, ck), // 64 B / 4 ns = 16 GB/s per channel
		TRCD:       cyc(18, ck), TCAS: cyc(18, ck), TRP: cyc(18, ck), TRAS: cyc(42, ck),
		TREFI: sim.FromNanos(3900), TRFC: sim.FromNanos(160),
	}
}

// BandwidthBs returns the peak data bandwidth of one channel in bytes/s.
func (t Timing) BandwidthBs() float64 {
	if t.Burst == 0 {
		return 0
	}
	return float64(t.BurstBytes) / t.Burst.Seconds()
}

// bank tracks one bank's row buffer.
type bank struct {
	openRow   int64 // -1 when closed
	readyAt   sim.Time
	lastActAt sim.Time
	rowHits   uint64
	rowMisses uint64
	rowConfl  uint64
	activates uint64
}

// channel is one independent DRAM channel with its own data bus.
type channel struct {
	banks []bank
	bus   sim.Resource
}

// Memory is a multi-channel DRAM device.
type Memory struct {
	T        Timing
	Channels int
	chans    []channel

	// Strength-reduced address mapping (hot path): shifts/masks replace
	// the divisions in mapAddr when the corresponding geometry is a power
	// of two (it is for every profile in this repo). A shift or mask is
	// arithmetically identical to the division it replaces, so the
	// channel/bank/row decomposition — and therefore all timing — is
	// unchanged. Negative shift / zero mask means "keep dividing".
	burstShift int
	chanMask   uint64 // Channels-1 when power of two, else 0
	chanShift  int
	rowShift   int    // log2(lines per row)
	bankMask   uint64 // Banks-1 when power of two, else 0

	// refLo/refHi cache the refresh-free zone [i*TREFI, (i+1)*TREFI-TRFC)
	// most recently computed: commands landing inside it need neither the
	// window divisions nor any refresh handling, and thousands of
	// accesses land in each 7.8 µs zone. Commands outside it recompute
	// the zone exactly as before.
	refLo, refHi sim.Time

	// runGroup is the steady-state fast-forward period of AccessRun: the
	// number of consecutive lines that cover exactly one row block on
	// every channel (linesPerRow x Channels). 0 disables the fast path
	// (non-power-of-two geometry, or a period too large for the channel
	// hash to stay uniform within a period).
	runGroup int

	reads       uint64
	writes      uint64
	refClosures uint64
}

// New builds a memory from a timing profile and channel count.
func New(t Timing, channels int) *Memory {
	if channels <= 0 {
		panic(fmt.Sprintf("dram: channels must be positive, got %d", channels))
	}
	m := &Memory{T: t, Channels: channels}
	m.burstShift = sim.Pow2Shift(t.BurstBytes)
	m.chanShift = sim.Pow2Shift(channels)
	if m.chanShift >= 0 {
		m.chanMask = uint64(channels - 1)
	}
	m.rowShift = sim.Pow2Shift(t.RowBytes / t.BurstBytes)
	if sim.Pow2Shift(t.Banks) >= 0 {
		m.bankMask = uint64(t.Banks - 1)
	}
	// AccessRun's closed-form group walk requires the strength-reduced
	// (power-of-two) mappings throughout, and a group small enough that
	// the XOR channel hash (line ^ line>>9) is constant in its high part
	// across one aligned group — true whenever the group divides 512
	// lines. Both device profiles in this repo qualify (256-line groups).
	if m.burstShift >= 0 && m.chanShift >= 0 && m.rowShift >= 0 &&
		(m.bankMask != 0 || t.Banks == 1) {
		group := (t.RowBytes / t.BurstBytes) * channels
		if group > 0 && group <= 512 && group&(group-1) == 0 {
			m.runGroup = group
		}
	}
	m.chans = make([]channel, channels)
	for i := range m.chans {
		m.chans[i].banks = make([]bank, t.Banks)
		for b := range m.chans[i].banks {
			m.chans[i].banks[b].openRow = -1
		}
		m.chans[i].bus = *sim.NewResource(fmt.Sprintf("%s-ch%d-bus", t.Name, i))
	}
	return m
}

// mapAddr interleaves lines across channels at line granularity (for
// streaming bandwidth) and assigns banks per row-sized block with an XOR
// hash (so concurrent streams occupy different banks and stay row-resident
// within their block). This is the standard row:bank:column mapping with
// bank-index hashing; without it, the power-of-two-strided w/g/m/v streams
// of an Adam step alias onto one bank and every access row-conflicts.
func (m *Memory) mapAddr(addr uint64) (ch, bk int, row int64) {
	var line uint64
	if m.burstShift >= 0 {
		line = addr >> uint(m.burstShift)
	} else {
		line = addr / uint64(m.T.BurstBytes)
	}
	chKey := line ^ (line >> 9)
	if m.chanMask != 0 || m.Channels == 1 {
		ch = int(chKey & m.chanMask)
	} else {
		ch = int(chKey % uint64(m.Channels))
	}
	if m.chanShift >= 0 {
		line >>= uint(m.chanShift)
	} else {
		line /= uint64(m.Channels)
	}
	var rowBlk uint64
	if m.rowShift >= 0 {
		rowBlk = line >> uint(m.rowShift)
	} else {
		rowBlk = line / uint64(m.T.RowBytes/m.T.BurstBytes)
	}
	bkKey := rowBlk ^ (rowBlk >> 4) ^ (rowBlk >> 9)
	if m.bankMask != 0 || m.T.Banks == 1 {
		bk = int(bkKey & m.bankMask)
	} else {
		bk = int(bkKey % uint64(m.T.Banks))
	}
	// The block id is globally unique, so it serves directly as the row
	// identifier for open-row comparisons.
	row = int64(rowBlk)
	return
}

// MapAddr exposes the channel/bank/row decomposition (for tests and
// address-mapping diagnostics).
func (m *Memory) MapAddr(addr uint64) (ch, bk int, row int64) { return m.mapAddr(addr) }

// Access services one cacheline read or write beginning no earlier than
// time at, returning the time when the data transfer completes. Writes are
// modeled with the same bank/bus occupancy (write buffering is folded into
// the controller above this layer).
func (m *Memory) Access(at sim.Time, addr uint64, write bool) sim.Time {
	chIdx, bkIdx, row := m.mapAddr(addr)
	c := &m.chans[chIdx]
	b := &c.banks[bkIdx]
	if write {
		m.writes++
	} else {
		m.reads++
	}

	start := sim.Max(at, b.readyAt)
	// All-bank refresh: the device is unavailable for TRFC at the end of
	// every TREFI interval; a command landing in the window waits it out
	// (and finds its row closed). The cached refresh-free zone skips the
	// interval math for the common case.
	if m.T.TREFI > 0 && (start < m.refLo || start >= m.refHi) {
		winStart := start/m.T.TREFI*m.T.TREFI + m.T.TREFI - m.T.TRFC
		if start >= winStart {
			start = winStart + m.T.TRFC
			if b.openRow != -1 {
				b.openRow = -1
				m.refClosures++
			}
		}
		// start now sits inside a refresh-free zone; remember it.
		m.refLo = start / m.T.TREFI * m.T.TREFI
		m.refHi = m.refLo + m.T.TREFI - m.T.TRFC
	}
	switch {
	case b.openRow == row:
		b.rowHits++
	case b.openRow == -1:
		b.rowMisses++
		b.activates++
		start += m.T.TRCD
		b.lastActAt = start
		b.openRow = row
	default:
		b.rowConfl++
		b.activates++
		pre := start
		if b.lastActAt+m.T.TRAS > pre {
			pre = b.lastActAt + m.T.TRAS
		}
		start = pre + m.T.TRP + m.T.TRCD
		b.lastActAt = start
		b.openRow = row
	}

	dataStart := start + m.T.TCAS
	done := c.bus.Acquire(dataStart, m.T.Burst)
	// Column commands pipeline: the bank accepts the next command one
	// burst slot after this one (tCCD), it does not hold through tCAS and
	// the data transfer. Row misses still serialize through the
	// activate/precharge path above.
	b.readyAt = start + m.T.Burst
	return done
}

// AccessRun services lines consecutive line accesses (addr, addr+stride,
// ...) all issued at time at — the uniform streaming span shape of dirty
// flushes, bulk transfers, and the MEE's batched slot groups — returning
// the latest completion. It is exactly equivalent, in every bank, bus,
// refresh, and counter field, to calling Access per line in ascending
// order and taking the maximum: the per-line stepping stays in-tree as
// the oracle, and the parity and fuzz suites pin the equivalence.
//
// The steady-state fast-forward: once the span reaches a group-aligned
// line, each group of runGroup consecutive lines covers exactly one row
// block — every channel sees linesPerRow back-to-back column accesses to
// one (bank, row). The group's machine state fingerprint (the visited
// bank's open row, ready/activate times, the channel bus horizon, and
// the cached refresh-free zone) fully determines its evolution, and the
// chained max() recurrences of Access collapse into closed form: one
// activate decision plus two arithmetic series per channel replace
// runGroup per-line walks. Whenever the fingerprint leaves the closed
// form's domain — a refresh window inside the group's time range, or an
// unaligned head/tail — the walk falls back to per-line Access.
func (m *Memory) AccessRun(at sim.Time, addr uint64, lines int, stride uint64, write bool) sim.Time {
	var end sim.Time
	i := 0
	if m.runGroup > 0 && stride == uint64(m.T.BurstBytes) {
		group := uint64(m.runGroup)
		line := addr >> uint(m.burstShift)
		// Per-line head up to the group boundary.
		head := int((group - line%group) % group)
		if head > lines {
			head = lines
		}
		for ; i < head; i++ {
			if done := m.Access(at, addr+uint64(i)*stride, write); done > end {
				end = done
			}
		}
		for lines-i >= m.runGroup {
			done, ok := m.accessGroup(at, addr+uint64(i)*stride, write)
			if !ok {
				// Refresh window (or cold zone) inside the group: the
				// per-line oracle handles it, then the walk re-enters the
				// closed form at the next group.
				done = 0
				for j := 0; j < m.runGroup; j++ {
					if d := m.Access(at, addr+uint64(i+j)*stride, write); d > done {
						done = d
					}
				}
			}
			if done > end {
				end = done
			}
			i += m.runGroup
		}
	}
	for ; i < lines; i++ {
		if done := m.Access(at, addr+uint64(i)*stride, write); done > end {
			end = done
		}
	}
	return end
}

// accessGroup applies one group-aligned runGroup-line group in closed
// form, or reports ok=false (state untouched) when the group's time range
// is not provably inside the cached refresh-free zone. See AccessRun.
func (m *Memory) accessGroup(at sim.Time, addr uint64, write bool) (sim.Time, bool) {
	line := addr >> uint(m.burstShift)
	// Within an aligned group the high XOR part of the channel key is
	// constant, so channels partition the group evenly: L lines each, in
	// line order, all mapping to the same row block (and therefore the
	// same bank index and row on every channel).
	rowBlk := (line >> uint(m.chanShift)) >> uint(m.rowShift)
	bkKey := rowBlk ^ (rowBlk >> 4) ^ (rowBlk >> 9)
	var bk int
	if m.bankMask != 0 || m.T.Banks == 1 {
		bk = int(bkKey & m.bankMask)
	}
	row := int64(rowBlk)
	L := sim.Dur(m.runGroup / m.Channels)
	B := m.T.Burst

	// First pass: verify every pre-branch issue time of every channel
	// lands in the cached refresh-free zone, so the per-line refresh
	// branch would be skipped throughout and no zone state changes.
	if m.T.TREFI > 0 {
		for c := range m.chans {
			b := &m.chans[c].banks[bk]
			start0 := sim.Max(at, b.readyAt)
			s := start0
			switch {
			case b.openRow == row:
			case b.openRow == -1:
				s = start0 + m.T.TRCD
			default:
				pre := start0
				if b.lastActAt+m.T.TRAS > pre {
					pre = b.lastActAt + m.T.TRAS
				}
				s = pre + m.T.TRP + m.T.TRCD
			}
			// Issue times are start0 then s+B .. s+(L-1)B, all ascending.
			if start0 < m.refLo || s+(L-1)*B >= m.refHi {
				return 0, false
			}
		}
	}

	// Second pass: commit. Per channel, the L accesses are one activate
	// decision (exactly Access's branch on the visited bank) followed by
	// L-1 row hits whose ready/bus chains are arithmetic series:
	//
	//	start_i = S + i*Burst                      (S >= at always)
	//	bus_i+1 = max(start_i + TCAS + Burst, bus_1 + i*Burst)
	//
	// so the group's final bank and bus state — and the maximum done —
	// come from the series' last terms.
	var end sim.Time
	for c := range m.chans {
		ch := &m.chans[c]
		b := &ch.banks[bk]
		start0 := sim.Max(at, b.readyAt)
		var s sim.Time
		switch {
		case b.openRow == row:
			s = start0
			b.rowHits += uint64(L)
		case b.openRow == -1:
			s = start0 + m.T.TRCD
			b.rowMisses++
			b.activates++
			b.lastActAt = s
			b.openRow = row
			b.rowHits += uint64(L - 1)
		default:
			pre := start0
			if b.lastActAt+m.T.TRAS > pre {
				pre = b.lastActAt + m.T.TRAS
			}
			s = pre + m.T.TRP + m.T.TRCD
			b.rowConfl++
			b.activates++
			b.lastActAt = s
			b.openRow = row
			b.rowHits += uint64(L - 1)
		}
		u1 := ch.bus.Acquire(s+m.T.TCAS, B)
		var done sim.Time
		if L > 1 {
			aLast := s + (L-1)*B + m.T.TCAS
			done = sim.Max(aLast+B, u1+(L-1)*B)
			ch.bus.FastForward(done, (L-1)*B)
		} else {
			done = u1
		}
		b.readyAt = s + L*B
		if done > end {
			end = done
		}
	}
	if write {
		m.writes += uint64(m.runGroup)
	} else {
		m.reads += uint64(m.runGroup)
	}
	return end, true
}

// AccessBytes services a contiguous region as a sequence of line accesses
// starting at time at, returning the completion of the last line. It is a
// convenience for bulk transfers (tensor DMA).
func (m *Memory) AccessBytes(at sim.Time, addr uint64, n int, write bool) sim.Time {
	if n <= 0 {
		return at
	}
	base := addr &^ uint64(m.T.BurstBytes-1)
	count := int((addr + uint64(n) - base + uint64(m.T.BurstBytes) - 1) / uint64(m.T.BurstBytes))
	end := m.AccessRun(at, base, count, uint64(m.T.BurstBytes), write)
	if end < at {
		end = at
	}
	return end
}

// Stats aggregates device counters.
type Stats struct {
	Reads, Writes                uint64
	RowHits, RowMisses, RowConfl uint64
	Activates                    uint64
	// RefreshClosures counts rows closed by all-bank refresh windows.
	RefreshClosures uint64
	BusBusy         sim.Dur
}

// Stats returns aggregate counters across channels and banks.
func (m *Memory) Stats() Stats {
	var s Stats
	s.Reads, s.Writes = m.reads, m.writes
	s.RefreshClosures = m.refClosures
	for i := range m.chans {
		s.BusBusy += m.chans[i].bus.BusyTotal()
		for b := range m.chans[i].banks {
			bk := &m.chans[i].banks[b]
			s.RowHits += bk.rowHits
			s.RowMisses += bk.rowMisses
			s.RowConfl += bk.rowConfl
			s.Activates += bk.activates
		}
	}
	return s
}

// RowHitRate reports row-buffer hits over all column accesses.
func (s Stats) RowHitRate() float64 {
	total := s.RowHits + s.RowMisses + s.RowConfl
	if total == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(total)
}

// BusyUntil reports the latest completion across all channel buses.
func (m *Memory) BusyUntil() sim.Time {
	var c sim.Time
	for i := range m.chans {
		if bu := m.chans[i].bus.BusyUntil(); bu > c {
			c = bu
		}
	}
	return c
}

// PeakBandwidthBs reports aggregate peak bandwidth in bytes/s.
func (m *Memory) PeakBandwidthBs() float64 {
	return m.T.BandwidthBs() * float64(m.Channels)
}

// Reset clears all bank/bus state and counters.
func (m *Memory) Reset() {
	for i := range m.chans {
		m.chans[i].bus.Reset()
		for b := range m.chans[i].banks {
			m.chans[i].banks[b] = bank{openRow: -1}
		}
	}
	m.reads, m.writes, m.refClosures = 0, 0, 0
	m.refLo, m.refHi = 0, 0
}
