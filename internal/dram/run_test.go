package dram

import (
	"math/rand"
	"testing"

	"tensortee/internal/sim"
)

// runOracle replays a span as per-line Access calls — the in-tree oracle
// AccessRun's steady-state fast-forward must match bit for bit.
func runOracle(m *Memory, at sim.Time, addr uint64, lines int, stride uint64, write bool) sim.Time {
	var end sim.Time
	for i := 0; i < lines; i++ {
		if done := m.Access(at, addr+uint64(i)*stride, write); done > end {
			end = done
		}
	}
	return end
}

// compareMemories requires two devices to be in bit-identical observable
// state: aggregate counters, bus horizons, and the full per-bank state as
// exposed by replaying a probe access on clones is too weak — compare the
// internals directly.
func compareMemories(t *testing.T, fast, oracle *Memory, ctx string) {
	t.Helper()
	if fast.Stats() != oracle.Stats() {
		t.Fatalf("%s: stats diverge\nfast:   %+v\noracle: %+v", ctx, fast.Stats(), oracle.Stats())
	}
	if fast.BusyUntil() != oracle.BusyUntil() {
		t.Fatalf("%s: bus horizons diverge: %d vs %d", ctx, fast.BusyUntil(), oracle.BusyUntil())
	}
	if fast.refLo != oracle.refLo || fast.refHi != oracle.refHi {
		t.Fatalf("%s: refresh zones diverge", ctx)
	}
	for c := range fast.chans {
		if fast.chans[c].bus.BusyUntil() != oracle.chans[c].bus.BusyUntil() ||
			fast.chans[c].bus.BusyTotal() != oracle.chans[c].bus.BusyTotal() {
			t.Fatalf("%s: channel %d bus diverges", ctx, c)
		}
		for b := range fast.chans[c].banks {
			if fast.chans[c].banks[b] != oracle.chans[c].banks[b] {
				t.Fatalf("%s: channel %d bank %d diverges\nfast:   %+v\noracle: %+v",
					ctx, c, b, fast.chans[c].banks[b], oracle.chans[c].banks[b])
			}
		}
	}
}

// TestDRAMRunParity sweeps randomized span workloads — long streaming
// spans, unaligned heads, strided (fallback) spans, interleaved single
// accesses, and refresh-window crossings — through AccessRun and the
// per-line oracle on twin devices, requiring bit-identical state, stats,
// and returned completion times throughout.
func TestDRAMRunParity(t *testing.T) {
	profiles := []struct {
		name     string
		timing   Timing
		channels int
	}{
		{"ddr4-2ch", DDR4_2400(), 2},
		{"gddr5-8ch", GDDR5Chan(), 8},
		{"ddr4-3ch-fallback", DDR4_2400(), 3}, // non-pow2: per-line path only
	}
	for _, p := range profiles {
		t.Run(p.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(p.name))))
			fast := New(p.timing, p.channels)
			oracle := New(p.timing, p.channels)
			var at sim.Time
			for op := 0; op < 60; op++ {
				at += sim.Dur(rng.Intn(20000)) * 1000 // hop across refresh zones
				addr := uint64(rng.Intn(1<<16)) * 64
				write := rng.Intn(3) == 0
				switch rng.Intn(4) {
				case 0: // long streaming span: exercises the group closed form
					lines := 256 + rng.Intn(4096)
					gf := fast.AccessRun(at, addr, lines, 64, write)
					go_ := runOracle(oracle, at, addr, lines, 64, write)
					if gf != go_ {
						t.Fatalf("op %d: span end diverges: %d vs %d", op, gf, go_)
					}
				case 1: // short / unaligned span
					lines := 1 + rng.Intn(64)
					addr += uint64(rng.Intn(8)) * 64
					gf := fast.AccessRun(at, addr, lines, 64, write)
					go_ := runOracle(oracle, at, addr, lines, 64, write)
					if gf != go_ {
						t.Fatalf("op %d: short span end diverges", op)
					}
				case 2: // strided span: falls back to per-line
					lines := 1 + rng.Intn(128)
					stride := uint64(128 << rng.Intn(3))
					gf := fast.AccessRun(at, addr, lines, stride, write)
					go_ := runOracle(oracle, at, addr, lines, stride, write)
					if gf != go_ {
						t.Fatalf("op %d: strided span end diverges", op)
					}
				default: // single accesses perturb bank state between spans
					for i := 0; i < 1+rng.Intn(16); i++ {
						a := uint64(rng.Intn(1<<16)) * 64
						if fast.Access(at, a, write) != oracle.Access(at, a, write) {
							t.Fatalf("op %d: single access diverges", op)
						}
					}
				}
				compareMemories(t, fast, oracle, p.name)
			}
		})
	}
}

// TestDRAMRunRefreshCrossing forces spans whose time range straddles
// refresh windows: the group walk must detect the crossing and fall back
// per line without disturbing the cached zone bookkeeping.
func TestDRAMRunRefreshCrossing(t *testing.T) {
	ti := DDR4_2400()
	fast := New(ti, 2)
	oracle := New(ti, 2)
	// A span long enough that bank issue times provably cross TREFI
	// windows: each bank revisit advances its ready time by ~450 ns and
	// banks revisit every ~16 groups, so issue times pass the first
	// 7.45 us refresh window within ~65k lines.
	const lines = 1 << 17
	gf := fast.AccessRun(0, 0, lines, 64, false)
	go_ := runOracle(oracle, 0, 0, lines, 64, false)
	if gf != go_ {
		t.Fatalf("refresh-crossing span diverges: %d vs %d", gf, go_)
	}
	compareMemories(t, fast, oracle, "refresh-crossing")
	if fast.Stats().RefreshClosures == 0 {
		t.Fatal("span was expected to cross refresh windows")
	}
}

// TestAccessBytesMatchesRun pins AccessBytes' line decomposition on top
// of AccessRun against the historical per-line loop.
func TestAccessBytesMatchesRun(t *testing.T) {
	fast := New(DDR4_2400(), 2)
	oracle := New(DDR4_2400(), 2)
	for _, tc := range []struct {
		addr uint64
		n    int
	}{{30, 100}, {0, 64}, {64, 1}, {1000, 1 << 16}, {7, 0}} {
		gf := fast.AccessBytes(0, tc.addr, tc.n, false)
		var go_ sim.Time = 0
		base := tc.addr &^ 63
		for off := uint64(0); tc.n > 0 && base+off < tc.addr+uint64(tc.n); off += 64 {
			if done := oracle.Access(0, base+off, false); done > go_ {
				go_ = done
			}
		}
		if tc.n <= 0 {
			go_ = 0
		}
		if gf != go_ {
			t.Fatalf("AccessBytes(%d, %d) = %d, oracle %d", tc.addr, tc.n, gf, go_)
		}
		compareMemories(t, fast, oracle, "bytes")
	}
}

// FuzzDRAMSpanParity fuzzes randomized span soups through AccessRun and
// the per-line oracle on twin devices. Any state or timing divergence is
// a crash.
func FuzzDRAMSpanParity(f *testing.F) {
	f.Add(int64(1), uint16(0), uint16(300), false, uint8(0))
	f.Add(int64(7), uint16(512), uint16(4096), true, uint8(1))
	f.Add(int64(42), uint16(13), uint16(700), false, uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, addr16 uint16, lines16 uint16, write bool, profile uint8) {
		var ti Timing
		channels := 2
		switch profile % 3 {
		case 0:
			ti = DDR4_2400()
		case 1:
			ti, channels = GDDR5Chan(), 8
		default:
			ti, channels = DDR4_2400(), 3
		}
		fast := New(ti, channels)
		oracle := New(ti, channels)
		rng := rand.New(rand.NewSource(seed))
		addr := uint64(addr16) * 64
		lines := int(lines16)%5000 + 1
		var at sim.Time
		for op := 0; op < 8; op++ {
			at += sim.Dur(rng.Intn(1 << 22))
			gf := fast.AccessRun(at, addr, lines, 64, write)
			go_ := runOracle(oracle, at, addr, lines, 64, write)
			if gf != go_ {
				t.Fatalf("span end diverges: %d vs %d", gf, go_)
			}
			if fast.Stats() != oracle.Stats() || fast.BusyUntil() != oracle.BusyUntil() {
				t.Fatalf("state diverges after span at %d", at)
			}
			addr = uint64(rng.Intn(1<<16)) * 64
			lines = 1 + rng.Intn(600)
			write = !write
		}
		for c := range fast.chans {
			for b := range fast.chans[c].banks {
				if fast.chans[c].banks[b] != oracle.chans[c].banks[b] {
					t.Fatalf("bank state diverges at ch%d bank%d", c, b)
				}
			}
		}
	})
}
