package dram

import (
	"testing"
	"testing/quick"

	"tensortee/internal/sim"
)

func TestBandwidthMatchesTable1(t *testing.T) {
	ddr := DDR4_2400()
	// 64B per 4 cycles of 1.2GHz = 19.2 GB/s per channel.
	bw := ddr.BandwidthBs()
	if bw < 19.0e9 || bw > 19.4e9 {
		t.Errorf("DDR4 channel bandwidth = %g, want ~19.2 GB/s", bw)
	}
	m := New(ddr, 2)
	if agg := m.PeakBandwidthBs(); agg < 38e9 || agg > 39e9 {
		t.Errorf("DDR4 2ch = %g, want ~38.4 GB/s", agg)
	}

	g := GDDR5Chan()
	gm := New(g, 8)
	if agg := gm.PeakBandwidthBs(); agg < 126e9 || agg > 130e9 {
		t.Errorf("GDDR5 8ch = %g, want ~128 GB/s", agg)
	}
}

// findSameBank returns an address beyond `from` that maps to the same
// channel and bank as base; sameRow selects whether the row must match.
func findSameBank(t *testing.T, m *Memory, base, from uint64, sameRow bool) uint64 {
	t.Helper()
	ch0, bk0, row0 := m.MapAddr(base)
	for a := from; a < from+(64<<20); a += 64 {
		ch, bk, row := m.MapAddr(a)
		if ch == ch0 && bk == bk0 && (row == row0) == sameRow {
			return a
		}
	}
	t.Fatal("no matching address found")
	return 0
}

func TestRowBufferHit(t *testing.T) {
	m := New(DDR4_2400(), 1)
	t1 := m.Access(0, 0, false)
	addr := findSameBank(t, m, 0, 64, true)
	t2start := t1
	t2 := m.Access(t2start, addr, false)
	s := m.Stats()
	if s.RowHits != 1 {
		t.Errorf("RowHits = %d, want 1 (stats: %+v)", s.RowHits, s)
	}
	lat1 := t1 - 0
	lat2 := t2 - t2start
	if lat2 >= lat1 {
		t.Errorf("row hit latency %d not cheaper than miss %d", lat2, lat1)
	}
}

func TestRowConflictCost(t *testing.T) {
	m := New(DDR4_2400(), 1)
	t1 := m.Access(0, 0, false)
	addr := findSameBank(t, m, 0, 64, false) // same bank, different row
	t2 := m.Access(t1, addr, false)
	s := m.Stats()
	if s.RowConfl != 1 {
		t.Errorf("RowConfl = %d, want 1", s.RowConfl)
	}
	if t2-t1 <= t1 {
		t.Errorf("conflict latency %d should exceed cold miss %d", t2-t1, t1)
	}
}

func TestChannelInterleaving(t *testing.T) {
	m := New(DDR4_2400(), 2)
	// Two lines mapping to different channels issued together must overlap
	// (both finish well before 2x single latency).
	ch0, _, _ := m.MapAddr(0)
	var other uint64
	for a := uint64(64); ; a += 64 {
		if ch, _, _ := m.MapAddr(a); ch != ch0 {
			other = a
			break
		}
	}
	t1 := m.Access(0, 0, false)
	t2 := m.Access(0, other, false)
	if t2 > t1+m.T.Burst {
		t.Errorf("lines did not overlap across channels: %d vs %d", t1, t2)
	}
}

func TestStreamingApproachesPeakBandwidth(t *testing.T) {
	m := New(DDR4_2400(), 2)
	const lines = 20000
	var end sim.Time
	for i := 0; i < lines; i++ {
		end = m.Access(0, uint64(i*64), false)
	}
	bytes := float64(lines * 64)
	achieved := bytes / end.Seconds()
	peak := m.PeakBandwidthBs()
	if achieved < 0.85*peak {
		t.Errorf("streaming bandwidth %g below 85%% of peak %g", achieved, peak)
	}
	if achieved > peak*1.01 {
		t.Errorf("achieved %g exceeds peak %g — accounting bug", achieved, peak)
	}
}

func TestRandomAccessCostsMoreThanStreaming(t *testing.T) {
	const lines = 20000
	stream := New(DDR4_2400(), 2)
	var streamEnd sim.Time
	for i := 0; i < lines; i++ {
		streamEnd = stream.Access(0, uint64(i*64), false)
	}
	random := New(DDR4_2400(), 2)
	var randEnd sim.Time
	addr := uint64(12345)
	for i := 0; i < lines; i++ {
		addr = addr*6364136223846793005 + 1442695040888963407 // LCG scatter
		a := (addr >> 16) % (1 << 30) &^ 63
		randEnd = random.Access(0, a, false)
	}
	// With unbounded request-level parallelism, bank-level parallelism lets
	// random traffic stay bus-bound too; but it must not beat streaming,
	// and it must produce row conflicts.
	if randEnd < streamEnd {
		t.Errorf("random (%d) finished before streaming (%d)", randEnd, streamEnd)
	}
	if random.Stats().RowConfl == 0 {
		t.Error("random access produced no row conflicts")
	}
	if random.Stats().RowHitRate() >= stream.Stats().RowHitRate() {
		t.Errorf("random row-hit rate %.2f not below streaming %.2f",
			random.Stats().RowHitRate(), stream.Stats().RowHitRate())
	}
}

func TestAccessBytesSpansLines(t *testing.T) {
	m := New(DDR4_2400(), 2)
	end := m.AccessBytes(0, 30, 100, false) // unaligned, crosses two lines
	s := m.Stats()
	if s.Reads != 3 {
		t.Errorf("Reads = %d, want 3 lines for [30,130)", s.Reads)
	}
	if end == 0 {
		t.Error("no time charged")
	}
	if m.AccessBytes(0, 0, 0, false) != 0 {
		t.Error("zero-length access should be free")
	}
}

func TestWriteCounted(t *testing.T) {
	m := New(DDR4_2400(), 1)
	m.Access(0, 0, true)
	m.Access(0, 64, false)
	s := m.Stats()
	if s.Writes != 1 || s.Reads != 1 {
		t.Errorf("Reads/Writes = %d/%d, want 1/1", s.Reads, s.Writes)
	}
}

func TestReset(t *testing.T) {
	m := New(DDR4_2400(), 2)
	m.Access(0, 0, false)
	m.Reset()
	s := m.Stats()
	if s.Reads != 0 || s.RowHits+s.RowMisses+s.RowConfl != 0 {
		t.Error("Reset did not clear stats")
	}
	if m.BusyUntil() != 0 {
		t.Error("Reset did not clear bus state")
	}
}

func TestBadChannelsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero channels")
		}
	}()
	New(DDR4_2400(), 0)
}

// Property: completion time is monotone in request time for a fixed address
// (you can never finish earlier by arriving later).
func TestMonotoneCompletionProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		m := New(DDR4_2400(), 2)
		var at sim.Time
		var last sim.Time
		for _, d := range delays {
			at += sim.Time(d)
			done := m.Access(at, 0x1000, false)
			if done < at {
				return false
			}
			if done < last {
				return false
			}
			last = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: total bus occupancy equals accesses x burst time.
func TestBusAccountingProperty(t *testing.T) {
	f := func(n uint8) bool {
		m := New(DDR4_2400(), 1)
		for i := 0; i < int(n); i++ {
			m.Access(0, uint64(i*64), false)
		}
		return m.Stats().BusBusy == sim.Dur(n)*m.T.Burst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRowHitRate(t *testing.T) {
	var s Stats
	if s.RowHitRate() != 0 {
		t.Error("empty hit rate should be 0")
	}
	s.RowHits, s.RowMisses = 3, 1
	if s.RowHitRate() != 0.75 {
		t.Errorf("RowHitRate = %g", s.RowHitRate())
	}
}

func TestRefreshStallsAccesses(t *testing.T) {
	m := New(DDR4_2400(), 1)
	// An access issued just inside the refresh window at the end of the
	// first interval must be pushed past it.
	winStart := m.T.TREFI - m.T.TRFC
	done := m.Access(winStart+1, 0, false)
	if done < m.T.TREFI {
		t.Errorf("access inside refresh finished at %d, want >= %d", done, m.T.TREFI)
	}
	// And the row it would have opened is closed by the refresh.
	if m.Stats().RowHits != 0 {
		t.Error("refresh-window access counted as row hit")
	}
}

func TestRefreshOverheadBounded(t *testing.T) {
	// Refresh costs ~TRFC/TREFI of bandwidth (<6%): a long stream must not
	// slow down more than that.
	noRef := DDR4_2400()
	noRef.TREFI = 0
	mRef := New(DDR4_2400(), 2)
	mNo := New(noRef, 2)
	const lines = 200000
	var endRef, endNo sim.Time
	for i := 0; i < lines; i++ {
		endRef = mRef.Access(0, uint64(i*64), false)
		endNo = mNo.Access(0, uint64(i*64), false)
	}
	ratio := float64(endRef) / float64(endNo)
	if ratio < 1.0 {
		t.Errorf("refresh made the device faster (ratio %.3f)", ratio)
	}
	if ratio > 1.08 {
		t.Errorf("refresh overhead %.1f%%, want <= 8%%", (ratio-1)*100)
	}
}
