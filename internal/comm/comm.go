// Package comm implements the CPU<->NPU data-transfer protocols compared in
// Sections 3.3 and 4.4:
//
//   - the Graviton-like staged protocol of the baseline (Figure 6a): the
//     sender decrypts enclave data and re-encrypts it into a non-secure
//     staging region, the payload crosses PCIe, and the receiver decrypts
//     and re-encrypts it into its own enclave format — two full crypto
//     passes per side, bound by the AES-engine bandwidth, serialized with
//     computation (Figure 7);
//
//   - TensorTEE's direct protocol (Figure 6b): tensor ciphertext moves
//     secure-DRAM to secure-DRAM over the direct channel while the tensor
//     metadata (address, VN, MAC) crosses the trusted channel; no crypto
//     touches the payload, so the transfer overlaps computation
//     (Figure 15).
//
// Both a timing model (for Figures 5/16/17/21) and a functional
// implementation over mee.Region (for the security tests and examples) are
// provided.
package comm

import (
	"encoding/binary"
	"fmt"

	"tensortee/internal/config"
	"tensortee/internal/crypto"
	"tensortee/internal/mee"
	"tensortee/internal/sim"
)

// --- timing model -------------------------------------------------------------

// LinkModel charges transfer times.
type LinkModel struct {
	// LinkBs is the PCIe effective bandwidth for direct DMA.
	LinkBs float64
	// StagedBs is the effective bandwidth of a staged copy (pinned-buffer
	// memcpy pipeline) — what non-secure cudaMemcpy-style transfers and the
	// baseline's staging hops achieve.
	StagedBs float64
	// LatencyNs is the one-way link latency.
	LatencyNs float64
	// SenderAESBs / ReceiverAESBs bound the re-encryption passes of the
	// staged secure protocol (Section 3.3's AES-engine bandwidth).
	SenderAESBs, ReceiverAESBs float64
}

// FromSystem derives the link model from the system configuration. The
// staged protocol's sender passes go through the single communication-path
// AES engine (8 GB/s nominal, Section 3.3); its MAC verification/generation
// shares the engine datapath, halving the effective payload rate. The host
// side runs AES-NI with MAC in parallel at the full nominal rate.
func FromSystem(c *config.Config) LinkModel {
	npuAES := c.NPU.AESEngineBs * float64(c.NPU.AESEngines)
	return LinkModel{
		LinkBs:        c.Comm.LinkBandwidthBs,
		StagedBs:      c.Comm.StagingBandwidthBs,
		LatencyNs:     c.Comm.LinkLatencyNs,
		SenderAESBs:   npuAES / 2,
		ReceiverAESBs: npuAES,
	}
}

// Breakdown is the Figure-21 decomposition of one transfer.
type Breakdown struct {
	ReencryptTime sim.Dur // sender: enclave decrypt + staging re-encrypt
	LinkTime      sim.Dur // wire time
	DecryptTime   sim.Dur // receiver: staging decrypt + enclave re-encrypt
}

// Total returns the serialized duration.
func (b Breakdown) Total() sim.Dur { return b.ReencryptTime + b.LinkTime + b.DecryptTime }

// StagedSecure times the Graviton-like transfer of n bytes: each side runs
// two AES passes over the payload (out of and into the enclave format),
// and the wire hop runs at staged-copy bandwidth.
func (l LinkModel) StagedSecure(n int64) Breakdown {
	return Breakdown{
		ReencryptTime: sim.BytesAt(2*n, l.SenderAESBs),
		LinkTime:      sim.FromNanos(l.LatencyNs) + sim.BytesAt(n, l.StagedBs),
		DecryptTime:   sim.BytesAt(2*n, l.ReceiverAESBs),
	}
}

// NonSecure times the reference transfer (staged memcpy, no crypto).
func (l LinkModel) NonSecure(n int64) Breakdown {
	return Breakdown{LinkTime: sim.FromNanos(l.LatencyNs) + sim.BytesAt(n, l.StagedBs)}
}

// Direct times TensorTEE's transfer: ciphertext DMA plus the (tiny)
// trusted-channel metadata message. The wire runs at the same effective
// rate as a staged copy pipeline — the direct protocol's win is removing
// the crypto passes and the serialization they force, not a faster PCIe.
func (l LinkModel) Direct(n int64) Breakdown {
	const metadataBytes = 64 // addr+VN+MAC, sealed
	return Breakdown{
		LinkTime: sim.FromNanos(2*l.LatencyNs) + sim.BytesAt(n+metadataBytes, l.StagedBs),
	}
}

// Visible returns how much of a transfer remains on the critical path when
// it may overlap a concurrent computation window: transfers longer than
// the window spill the difference (plus the unhidable tail latency).
func Visible(b Breakdown, window sim.Dur, overlappable bool) sim.Dur {
	if !overlappable {
		return b.Total()
	}
	return sim.Sub(b.Total(), window)
}

// --- functional transfer --------------------------------------------------------

// TensorMeta is the trusted-channel payload for one tensor (Section 4.4.2:
// "the obtained tensor VN, MAC, and address are transmitted through a
// trusted encrypted channel").
type TensorMeta struct {
	Base  uint64 // region-relative line base of the tensor
	Lines int
	VN    uint64
	MAC   uint64 // tensor-granularity XOR MAC
}

const tensorMetaBytes = 8 + 8 + 8 + 8

func (m TensorMeta) encode() []byte {
	buf := make([]byte, tensorMetaBytes)
	binary.LittleEndian.PutUint64(buf[0:], m.Base)
	binary.LittleEndian.PutUint64(buf[8:], uint64(m.Lines))
	binary.LittleEndian.PutUint64(buf[16:], m.VN)
	binary.LittleEndian.PutUint64(buf[24:], m.MAC)
	return buf
}

func decodeTensorMeta(b []byte) (TensorMeta, error) {
	if len(b) != tensorMetaBytes {
		return TensorMeta{}, fmt.Errorf("comm: metadata payload %d bytes, want %d", len(b), tensorMetaBytes)
	}
	return TensorMeta{
		Base:  binary.LittleEndian.Uint64(b[0:]),
		Lines: int(binary.LittleEndian.Uint64(b[8:])),
		VN:    binary.LittleEndian.Uint64(b[16:]),
		MAC:   binary.LittleEndian.Uint64(b[24:]),
	}, nil
}

// TrustedChannel is the sequence-numbered, session-key-encrypted metadata
// channel between the enclaves.
type TrustedChannel struct {
	key      *crypto.Key
	sendSeq  uint64
	recvSeq  uint64
	inFlight []crypto.SealedBlob
}

// NewTrustedChannel builds a channel over the DH session key.
func NewTrustedChannel(key *crypto.Key) *TrustedChannel {
	return &TrustedChannel{key: key}
}

// Send seals tensor metadata onto the channel.
func (c *TrustedChannel) Send(m TensorMeta) {
	c.inFlight = append(c.inFlight, c.key.Seal(m.encode(), c.sendSeq))
	c.sendSeq++
}

// Recv verifies and decodes the next metadata message.
func (c *TrustedChannel) Recv() (TensorMeta, error) {
	if len(c.inFlight) == 0 {
		return TensorMeta{}, fmt.Errorf("comm: trusted channel empty")
	}
	blob := c.inFlight[0]
	c.inFlight = c.inFlight[1:]
	payload, err := c.key.Open(blob, c.recvSeq)
	if err != nil {
		return TensorMeta{}, err
	}
	c.recvSeq++
	return decodeTensorMeta(payload)
}

// TamperInFlight flips a bit of a queued message (bus adversary).
func (c *TrustedChannel) TamperInFlight(i int, bit int) {
	if i < len(c.inFlight) {
		c.inFlight[i].Ciphertext[bit/8%len(c.inFlight[i].Ciphertext)] ^= 1 << (bit % 8)
	}
}

// DirectTransfer moves a tensor's ciphertext from src to dst (both sharing
// the DH session key and line geometry) with metadata over the trusted
// channel — no plaintext materializes outside the enclaves, and no
// re-encryption happens. The tensor occupies the same region-relative
// offsets on both sides (the protocol mirrors enclave layouts), which is
// what makes the CTR counters line up.
//
// verify=true checks the per-line MACs XOR against the transferred tensor
// MAC on arrival; delayed-verification callers pass false and enforce the
// check at a barrier via VerifyRegionXOR.
func DirectTransfer(src, dst *mee.Region, base uint64, n int, ch *TrustedChannel, verify bool) error {
	if src.LineBytes != dst.LineBytes {
		return fmt.Errorf("comm: line size mismatch %d vs %d", src.LineBytes, dst.LineBytes)
	}
	lines := (n + src.LineBytes - 1) / src.LineBytes
	meta := TensorMeta{
		Base:  base - src.Base,
		Lines: lines,
		VN:    0, // per-line VNs ride with the lines below; tensor VN is informational here
		MAC:   src.StoredLineMACXOR(base, n),
	}
	ch.Send(meta)

	got, err := ch.Recv()
	if err != nil {
		return fmt.Errorf("comm: metadata channel: %w", err)
	}

	// The receiver recomputes each line's MAC over the ciphertext that
	// actually arrived (the direct channel is untrusted); the XOR of the
	// recomputed MACs must match the trusted-channel tensor MAC.
	var xor uint64
	for i := 0; i < lines; i++ {
		addr := base + uint64(i*src.LineBytes)
		exp := src.ExportLine(addr)
		if err := dst.ImportLine(exp, false); err != nil {
			return err
		}
		_, recomputed := dst.ReadLineUnverified(addr, exp.VN)
		xor ^= recomputed
	}
	if verify {
		if xor != got.MAC {
			return &mee.IntegrityError{Addr: base, Reason: "transferred tensor MAC mismatch"}
		}
	}
	return nil
}

// VerifyRegionRecomputed is the receiver-side verification barrier for a
// transferred region: every line's MAC is recomputed from the stored
// ciphertext and the XOR must equal the trusted-channel tensor MAC.
func VerifyRegionRecomputed(r *mee.Region, base uint64, n int, want uint64) error {
	var xor uint64
	for off := 0; off < n; off += r.LineBytes {
		addr := base + uint64(off)
		_, mac := r.ReadLineUnverified(addr, r.VN(addr))
		xor ^= mac
	}
	if xor != want {
		return &mee.IntegrityError{Addr: base, Reason: "tensor MAC mismatch at verification barrier"}
	}
	return nil
}

// StagedTransfer implements the Graviton-like baseline functionally: the
// payload is decrypted out of src, re-encrypted under the session key into
// a (simulated) non-secure staging buffer, crosses the link, and is
// decrypted and written (re-encrypted) into dst. Plaintext never travels,
// but the payload is cryptographically transformed four times.
func StagedTransfer(src, dst *mee.Region, base uint64, n int, session *crypto.Key, seq uint64) error {
	plaintext, err := src.ReadBytes(base, n) // enclave decrypt (pass 1)
	if err != nil {
		return fmt.Errorf("comm: staged read: %w", err)
	}
	blob := session.Seal(plaintext, seq) // re-encrypt to staging (pass 2)

	// ...non-secure staging + PCIe crossing happens here...

	recovered, err := session.Open(blob, seq) // staging decrypt (pass 3)
	if err != nil {
		return fmt.Errorf("comm: staged open: %w", err)
	}
	if _, err := dst.WriteBytes(base-src.Base+dst.Base, recovered); err != nil { // enclave re-encrypt (pass 4)
		return fmt.Errorf("comm: staged write: %w", err)
	}
	return nil
}
