package comm

import (
	"bytes"
	"errors"
	"testing"

	"tensortee/internal/config"
	"tensortee/internal/crypto"
	"tensortee/internal/mee"
	"tensortee/internal/sim"
)

func testLink() LinkModel {
	cfg := config.Default(config.BaselineSGXMGX)
	return FromSystem(&cfg)
}

func TestStagedSecureBreakdownShape(t *testing.T) {
	l := testLink()
	b := l.StagedSecure(1 << 30)
	if b.ReencryptTime == 0 || b.LinkTime == 0 || b.DecryptTime == 0 {
		t.Error("staged transfer must pay all three stages")
	}
	// Figure 21: re-encryption dominates the wire under a single comm AES
	// engine.
	if b.ReencryptTime <= b.LinkTime {
		t.Error("re-encryption should dominate wire time")
	}
}

func TestDirectSkipsCrypto(t *testing.T) {
	l := testLink()
	d := l.Direct(1 << 30)
	if d.ReencryptTime != 0 || d.DecryptTime != 0 {
		t.Error("direct transfer must not pay crypto stages")
	}
	s := l.StagedSecure(1 << 30)
	if d.Total() >= s.Total() {
		t.Error("direct transfer not faster than staged secure")
	}
	// The ratio is the Figure-21 improvement before overlap (order 5-15x).
	ratio := float64(s.Total()) / float64(d.Total())
	if ratio < 3 || ratio > 50 {
		t.Errorf("staged/direct ratio = %.1f, want single-digit to tens", ratio)
	}
}

func TestNonSecureMatchesDirectWire(t *testing.T) {
	l := testLink()
	ns := l.NonSecure(1 << 30)
	d := l.Direct(1 << 30)
	// Same wire rate by design (the direct protocol removes crypto, not
	// PCIe overheads); the metadata message adds a hair.
	diff := float64(d.Total()) - float64(ns.Total())
	if diff < 0 {
		t.Error("direct should not be faster than a plain copy")
	}
	if diff/float64(ns.Total()) > 0.01 {
		t.Errorf("direct exceeds plain copy by %.2f%%", 100*diff/float64(ns.Total()))
	}
}

func TestVisibleOverlap(t *testing.T) {
	b := Breakdown{LinkTime: 100}
	if Visible(b, 40, true) != 60 {
		t.Error("partial overlap wrong")
	}
	if Visible(b, 200, true) != 0 {
		t.Error("full overlap should hide the transfer")
	}
	if Visible(b, 200, false) != 100 {
		t.Error("non-overlappable transfer must stay visible")
	}
}

func TestBreakdownTotal(t *testing.T) {
	b := Breakdown{ReencryptTime: 1, LinkTime: 2, DecryptTime: 3}
	if b.Total() != 6 {
		t.Error("total wrong")
	}
}

// --- functional paths ---------------------------------------------------------

func platformRegions(t *testing.T) (*mee.Region, *mee.Region, *crypto.Key) {
	t.Helper()
	key := crypto.MustKey([]byte("0123456789abcdef"))
	src := mee.NewRegion(key, 0x10000, 1<<16, 64)
	dst := mee.NewRegion(key, 0x10000, 1<<16, 64)
	return src, dst, key
}

func fillTensor(t *testing.T, r *mee.Region, base uint64, n int, seed byte) []byte {
	t.Helper()
	data := make([]byte, n)
	for i := range data {
		data[i] = seed + byte(i)
	}
	if _, err := r.WriteBytes(base, data); err != nil {
		t.Fatal(err)
	}
	return data
}

func TestTrustedChannelRoundTrip(t *testing.T) {
	_, _, key := platformRegions(t)
	ch := NewTrustedChannel(key)
	want := TensorMeta{Base: 0x40, Lines: 16, VN: 3, MAC: 0xabcd}
	ch.Send(want)
	got, err := ch.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("got %+v, want %+v", got, want)
	}
	if _, err := ch.Recv(); err == nil {
		t.Error("empty channel returned a message")
	}
}

func TestTrustedChannelDetectsTamper(t *testing.T) {
	_, _, key := platformRegions(t)
	ch := NewTrustedChannel(key)
	ch.Send(TensorMeta{Base: 0, Lines: 1, VN: 1, MAC: 2})
	ch.TamperInFlight(0, 13)
	if _, err := ch.Recv(); err == nil {
		t.Error("tampered metadata accepted")
	}
}

func TestDirectTransferRoundTrip(t *testing.T) {
	src, dst, key := platformRegions(t)
	base := uint64(0x10000 + 256)
	want := fillTensor(t, src, base, 1024, 7)
	ch := NewTrustedChannel(key)
	if err := DirectTransfer(src, dst, base, 1024, ch, true); err != nil {
		t.Fatal(err)
	}
	got, err := dst.ReadBytes(base, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("payload corrupted in direct transfer")
	}
}

func TestDirectTransferDetectsCiphertextTamper(t *testing.T) {
	src, dst, key := platformRegions(t)
	base := uint64(0x10000)
	fillTensor(t, src, base, 512, 3)
	src.TamperCipher(base+64, 5)
	ch := NewTrustedChannel(key)
	err := DirectTransfer(src, dst, base, 512, ch, true)
	var ie *mee.IntegrityError
	if !errors.As(err, &ie) {
		t.Errorf("tampered transfer accepted: %v", err)
	}
}

func TestDirectTransferDelayedVerification(t *testing.T) {
	src, dst, key := platformRegions(t)
	base := uint64(0x10000)
	fillTensor(t, src, base, 512, 9)
	ref := src.StoredLineMACXOR(base, 512)
	ch := NewTrustedChannel(key)
	if err := DirectTransfer(src, dst, base, 512, ch, false); err != nil {
		t.Fatal(err)
	}
	// Barrier-style verification afterwards.
	if err := VerifyRegionRecomputed(dst, base, 512, ref); err != nil {
		t.Errorf("clean transfer failed the barrier: %v", err)
	}
	// Post-transfer tampering in destination memory is caught by a later
	// barrier (and by any verified read).
	dst.TamperCipher(base, 3)
	if err := VerifyRegionRecomputed(dst, base, 512, ref); err == nil {
		t.Error("tampered destination passed the barrier")
	}
	if _, err := dst.ReadBytes(base, 512); err == nil {
		t.Error("tampered destination read succeeded")
	}
}

func TestDirectTransferLineMismatch(t *testing.T) {
	key := crypto.MustKey([]byte("0123456789abcdef"))
	src := mee.NewRegion(key, 0x10000, 1<<12, 64)
	dst := mee.NewRegion(key, 0x10000, 1<<12, 128)
	ch := NewTrustedChannel(key)
	if err := DirectTransfer(src, dst, 0x10000, 256, ch, true); err == nil {
		t.Error("line-size mismatch accepted")
	}
}

func TestStagedTransferRoundTrip(t *testing.T) {
	src, dst, key := platformRegions(t)
	base := uint64(0x10000 + 1024)
	want := fillTensor(t, src, base, 777, 5) // odd size: exercises RMW edges
	if err := StagedTransfer(src, dst, base, 777, key, 1); err != nil {
		t.Fatal(err)
	}
	got, err := dst.ReadBytes(base, 777)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("staged transfer corrupted payload")
	}
}

func TestStagedTransferDetectsSourceTamper(t *testing.T) {
	src, dst, key := platformRegions(t)
	base := uint64(0x10000)
	fillTensor(t, src, base, 256, 1)
	src.TamperCipher(base, 9)
	if err := StagedTransfer(src, dst, base, 256, key, 2); err == nil {
		t.Error("tampered source accepted by staged transfer")
	}
}

func TestVisibleNeverNegative(t *testing.T) {
	b := Breakdown{LinkTime: 10}
	if Visible(b, 1000000, true) != 0 {
		t.Error("visible time went negative")
	}
}

func TestLatencyIncludedInWire(t *testing.T) {
	l := testLink()
	small := l.Direct(64)
	if small.LinkTime < sim.FromNanos(2*l.LatencyNs) {
		t.Error("latency missing from small transfer")
	}
}
