package ratelimit

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"
)

// fakeClock is a settable time source shared by the refill tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 7, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBurstThenReject(t *testing.T) {
	clock := newFakeClock()
	l := New(1, 3, WithClock(clock.now))
	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("c"); !ok {
			t.Fatalf("request %d within burst rejected", i)
		}
	}
	ok, retry := l.Allow("c")
	if ok {
		t.Fatal("fourth request allowed past a burst of 3")
	}
	if retry <= 0 || retry > time.Second {
		t.Errorf("retryAfter = %v, want (0, 1s] at 1 req/s", retry)
	}
}

func TestRefillRestoresTokens(t *testing.T) {
	clock := newFakeClock()
	l := New(2, 2, WithClock(clock.now)) // 2 tokens/s, burst 2
	l.Allow("c")
	l.Allow("c")
	if ok, _ := l.Allow("c"); ok {
		t.Fatal("empty bucket allowed a request")
	}
	clock.advance(500 * time.Millisecond) // accrues exactly 1 token
	if ok, _ := l.Allow("c"); !ok {
		t.Fatal("refilled token not granted")
	}
	if ok, _ := l.Allow("c"); ok {
		t.Fatal("second request granted from a single refilled token")
	}
	clock.advance(10 * time.Second) // refill caps at burst
	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("c"); !ok {
			t.Fatalf("request %d after long idle rejected", i)
		}
	}
	if ok, _ := l.Allow("c"); ok {
		t.Fatal("refill exceeded burst capacity")
	}
}

func TestKeysAreIndependent(t *testing.T) {
	clock := newFakeClock()
	l := New(1, 1, WithClock(clock.now))
	if ok, _ := l.Allow("a"); !ok {
		t.Fatal("first request for a rejected")
	}
	if ok, _ := l.Allow("a"); ok {
		t.Fatal("a's empty bucket allowed a request")
	}
	if ok, _ := l.Allow("b"); !ok {
		t.Fatal("b penalized for a's traffic")
	}
}

func TestRetryAfterShrinksAsTokensAccrue(t *testing.T) {
	clock := newFakeClock()
	l := New(0.5, 1, WithClock(clock.now)) // one token per 2s
	l.Allow("c")
	_, r1 := l.Allow("c")
	clock.advance(time.Second)
	_, r2 := l.Allow("c")
	if !(r2 < r1) {
		t.Errorf("retryAfter did not shrink: %v then %v", r1, r2)
	}
}

// TestEvictionPrefersIdleBuckets pins the memory bound: at the key cap,
// fully-refilled buckets (idle clients) are dropped and insertion still
// succeeds; an active client's bucket survives.
func TestEvictionPrefersIdleBuckets(t *testing.T) {
	clock := newFakeClock()
	l := New(1, 2, WithClock(clock.now), WithMaxKeys(4))
	for i := 0; i < 4; i++ {
		l.Allow(fmt.Sprintf("idle-%d", i))
	}
	// Keep one client active and drained while the others refill.
	l.Allow("idle-0")
	l.Allow("idle-0") // idle-0 now empty
	clock.advance(10 * time.Second)
	if ok, _ := l.Allow("new"); !ok {
		t.Fatal("insertion at cap rejected")
	}
	if n := l.Keys(); n > 4 {
		t.Errorf("keys = %d, cap is 4", n)
	}
	// idle-0 refilled along with everything else during the 10s advance,
	// so it was evictable too; the invariant is the cap, not membership.
}

// TestEvictionFallsBackToOldest pins that insertion succeeds even when no
// bucket is idle: the least-recently-touched one goes.
func TestEvictionFallsBackToOldest(t *testing.T) {
	clock := newFakeClock()
	l := New(0.001, 1000, WithClock(clock.now), WithMaxKeys(2)) // effectively never refills
	l.Allow("old")
	clock.advance(time.Second)
	l.Allow("newer")
	clock.advance(time.Second)
	if ok, _ := l.Allow("newest"); !ok {
		t.Fatal("insertion at cap rejected with no idle buckets")
	}
	if n := l.Keys(); n != 2 {
		t.Errorf("keys = %d, want 2", n)
	}
}

func TestClientKey(t *testing.T) {
	req := func(remote, xff string) *http.Request {
		r := httptest.NewRequest(http.MethodGet, "/", nil)
		r.RemoteAddr = remote
		if xff != "" {
			r.Header.Set("X-Forwarded-For", xff)
		}
		return r
	}
	cases := []struct {
		name    string
		remote  string
		xff     string
		trusted int
		want    string
	}{
		{"no proxies: TCP peer, port stripped", "10.0.0.9:4411", "1.2.3.4", 0, "10.0.0.9"},
		{"one proxy: last XFF entry", "127.0.0.1:80", "9.9.9.9, 1.2.3.4", 1, "1.2.3.4"},
		{"two proxies: second from end", "127.0.0.1:80", "6.6.6.6, 1.2.3.4, 10.0.0.2", 2, "1.2.3.4"},
		{"depth exceeds header: leftmost", "127.0.0.1:80", "1.2.3.4", 3, "1.2.3.4"},
		{"trusted but header absent: TCP peer", "10.0.0.9:4411", "", 1, "10.0.0.9"},
		{"unsplittable remote passes through", "unix-socket", "", 0, "unix-socket"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := ClientKey(req(tc.remote, tc.xff), tc.trusted); got != tc.want {
				t.Errorf("ClientKey = %q, want %q", got, tc.want)
			}
		})
	}
}

func TestMiddlewareRejectsWith429AndRetryAfter(t *testing.T) {
	clock := newFakeClock()
	l := New(1, 2, WithClock(clock.now))
	var allowed, rejected int
	h := Middleware(
		http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) { w.WriteHeader(http.StatusOK) }),
		l,
		func(r *http.Request) string { return ClientKey(r, 0) },
		func(ok bool) {
			if ok {
				allowed++
			} else {
				rejected++
			}
		},
	)
	ts := httptest.NewServer(h)
	defer ts.Close()

	var last *http.Response
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		last = resp
	}
	if last.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third request = %d, want 429", last.StatusCode)
	}
	ra, err := strconv.Atoi(last.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want integer >= 1", last.Header.Get("Retry-After"))
	}
	if allowed != 2 || rejected != 1 {
		t.Errorf("decisions = %d allowed / %d rejected, want 2/1", allowed, rejected)
	}
}

func TestRetryAfterJitterBounds(t *testing.T) {
	// The hint must stay within [base, base+max(1,base/2)] and actually
	// spread: a fleet of shed clients honoring one fixed value would
	// retry in lockstep.
	for _, base := range []int{0, 1, 10, 30} {
		lo := base
		if lo < 1 {
			lo = 1
		}
		span := lo / 2
		if span < 1 {
			span = 1
		}
		seen := make(map[int]bool)
		for i := 0; i < 200; i++ {
			v, err := strconv.Atoi(RetryAfter(base))
			if err != nil {
				t.Fatalf("RetryAfter(%d) not an integer: %v", base, err)
			}
			if v < lo || v > lo+span {
				t.Fatalf("RetryAfter(%d) = %d, want within [%d, %d]", base, v, lo, lo+span)
			}
			seen[v] = true
		}
		if len(seen) < 2 {
			t.Errorf("RetryAfter(%d) never varied across 200 draws", base)
		}
	}
}

func TestMiddlewareExemptsEmptyKey(t *testing.T) {
	clock := newFakeClock()
	l := New(1, 1, WithClock(clock.now))
	h := Middleware(
		http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) { w.WriteHeader(http.StatusOK) }),
		l,
		func(r *http.Request) string {
			if r.URL.Path == "/healthz" {
				return ""
			}
			return "everyone"
		},
		nil,
	)
	ts := httptest.NewServer(h)
	defer ts.Close()
	for i := 0; i < 5; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("exempt request %d = %d, want 200", i, resp.StatusCode)
		}
	}
}

func TestConcurrentAllowIsRaceFree(t *testing.T) {
	l := New(1000, 100)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i%3)
			for j := 0; j < 200; j++ {
				l.Allow(key)
			}
		}(i)
	}
	wg.Wait()
}
