// Package ratelimit provides tensorteed's per-client fairness layer: a
// token-bucket limiter keyed by client address, plus the HTTP middleware
// that turns an exhausted bucket into 429 Too Many Requests with a
// Retry-After hint.
//
// The limiter is deliberately small: one bucket per key, lazy refill on
// access (no background goroutine), and a hard cap on tracked keys so an
// address-spraying client cannot grow the map without bound. Keys whose
// buckets have fully refilled are idle by definition and are the first
// evicted at the cap.
package ratelimit

import (
	"math"
	"math/rand/v2"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// RetryAfter renders a Retry-After header value with jitter: a uniform
// draw from [base, base+base/2] seconds (minimum spread of one second).
// Every shed response — 429s here, the serving tier's 503 arms — goes
// through this: when a recovering daemon sheds a burst of clients with
// one fixed hint, they all come back in the same second and knock it
// over again; the spread de-synchronizes the retry wave.
func RetryAfter(base int) string {
	if base < 1 {
		base = 1
	}
	span := base / 2
	if span < 1 {
		span = 1
	}
	return strconv.Itoa(base + rand.IntN(span+1))
}

// DefaultMaxKeys bounds the number of client buckets tracked at once.
// Past the cap, fully-refilled (idle) buckets are evicted first, then the
// least-recently-touched one — so a spray of spoofed source addresses
// degrades fairness granularity, never memory.
const DefaultMaxKeys = 8192

// bucket is one client's token balance. tokens counts fractional tokens
// up to the burst size; last is the refill watermark.
type bucket struct {
	tokens float64
	last   time.Time
}

// Limiter is a per-key token-bucket rate limiter. Each key accrues
// `rate` tokens per second up to `burst`; an Allow spends one token.
// Safe for concurrent use.
type Limiter struct {
	rate    float64 // tokens per second
	burst   float64 // bucket capacity
	maxKeys int
	now     func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

// Option customizes a Limiter.
type Option func(*Limiter)

// WithClock substitutes the time source (tests).
func WithClock(now func() time.Time) Option {
	return func(l *Limiter) { l.now = now }
}

// WithMaxKeys overrides the tracked-key cap.
func WithMaxKeys(n int) Option {
	return func(l *Limiter) {
		if n > 0 {
			l.maxKeys = n
		}
	}
}

// New builds a Limiter granting each key `rate` requests per second with
// bursts up to `burst` (burst < 1 is raised to 1: a bucket that can never
// hold a whole token would reject everything). rate must be positive —
// callers disable limiting by not installing the middleware, not with a
// zero rate.
func New(rate float64, burst int, opts ...Option) *Limiter {
	if rate <= 0 {
		panic("ratelimit: rate must be positive")
	}
	if burst < 1 {
		burst = 1
	}
	l := &Limiter{
		rate:    rate,
		burst:   float64(burst),
		maxKeys: DefaultMaxKeys,
		now:     time.Now,
		buckets: make(map[string]*bucket),
	}
	for _, o := range opts {
		o(l)
	}
	return l
}

// Allow spends one token from key's bucket. When the bucket is empty it
// reports false plus how long until the next token accrues — the value
// the middleware surfaces as Retry-After.
func (l *Limiter) Allow(key string) (ok bool, retryAfter time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b := l.buckets[key]
	if b == nil {
		if len(l.buckets) >= l.maxKeys {
			l.evictLocked(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}

// Keys reports how many client buckets are currently tracked.
func (l *Limiter) Keys() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}

// evictLocked frees map slots at the cap: every bucket that would be full
// after refill is idle (its owner has not sent a request for at least
// burst/rate seconds) and is dropped; if none qualify, the single
// least-recently-touched bucket goes, so insertion always succeeds.
func (l *Limiter) evictLocked(now time.Time) {
	var oldestKey string
	var oldest time.Time
	for k, b := range l.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(l.buckets, k)
			continue
		}
		if oldestKey == "" || b.last.Before(oldest) {
			oldestKey, oldest = k, b.last
		}
	}
	if len(l.buckets) >= l.maxKeys && oldestKey != "" {
		delete(l.buckets, oldestKey)
	}
}

// ClientKey extracts the client address a request should be limited (and
// logged) under. With trustedProxies == 0 the TCP peer address is the
// client. With N > 0, the daemon sits behind N trusted reverse proxies,
// each appending its peer to X-Forwarded-For — so the client is the Nth
// entry from the end; earlier entries are unverified client input and are
// ignored. A missing or too-short header falls back to the leftmost
// entry, then to the TCP peer.
func ClientKey(r *http.Request, trustedProxies int) string {
	if trustedProxies > 0 {
		if xff := r.Header.Get("X-Forwarded-For"); xff != "" {
			hops := strings.Split(xff, ",")
			i := len(hops) - trustedProxies
			if i < 0 {
				i = 0
			}
			if ip := strings.TrimSpace(hops[i]); ip != "" {
				return ip
			}
		}
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// Middleware enforces l in front of next: requests whose key is out of
// tokens answer 429 Too Many Requests with a jittered Retry-After hint
// (whole seconds, rounded up, at least 1; see RetryAfter for the
// spread). keyFn maps a request to its bucket
// key; returning "" exempts the request (liveness and metrics probes
// must stay reachable from saturating clients — that is when they are
// needed). onDecision, when non-nil, observes every verdict for the
// tensorteed_ratelimit_* counters.
func Middleware(next http.Handler, l *Limiter, keyFn func(*http.Request) string, onDecision func(allowed bool)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := keyFn(r)
		if key == "" {
			next.ServeHTTP(w, r)
			return
		}
		ok, retryAfter := l.Allow(key)
		if onDecision != nil {
			onDecision(ok)
		}
		if !ok {
			w.Header().Set("Retry-After", RetryAfter(int(math.Ceil(retryAfter.Seconds()))))
			http.Error(w, "rate limit exceeded; slow down", http.StatusTooManyRequests)
			return
		}
		next.ServeHTTP(w, r)
	})
}
