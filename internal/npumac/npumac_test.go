package npumac

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"tensortee/internal/crypto"
)

func TestStorageOverhead(t *testing.T) {
	// Figure 20 right axis: 7B MAC per 64B line = 10.9%.
	if got := StorageOverhead(SchemeCacheline, 64, 7); got < 0.109 || got > 0.11 {
		t.Errorf("cacheline overhead = %g, want ~0.109", got)
	}
	if got := StorageOverhead(SchemeCoarse, 512, 7); got != 7.0/512 {
		t.Errorf("coarse 512B overhead = %g", got)
	}
	if got := StorageOverhead(SchemeCoarse, 4096, 7); got != 7.0/4096 {
		t.Errorf("coarse 4KB overhead = %g", got)
	}
	if got := StorageOverhead(SchemeTensorDelayed, 64, 7); got != 0 {
		t.Errorf("tensor MAC must have zero off-chip storage, got %g", got)
	}
}

func TestSchemeString(t *testing.T) {
	for _, s := range []Scheme{SchemeCacheline, SchemeCoarse, SchemeTensorDelayed, Scheme(9)} {
		if s.String() == "" {
			t.Error("empty scheme string")
		}
	}
}

func TestDelayedVerificationSuccess(t *testing.T) {
	v := NewVerifier(8)
	macs := []uint64{0x1111, 0x2222, 0x4444}
	ref := crypto.XORMAC(macs)

	v.BeginRead(1, ref)
	if !v.Poisoned(1) {
		t.Error("tensor not poisoned during streaming")
	}
	for _, m := range macs {
		v.AccumulateLine(1, m)
	}
	if err := v.CompleteRead(1); err != nil {
		t.Fatalf("CompleteRead: %v", err)
	}
	if v.Poisoned(1) {
		t.Error("poison bit not cleared after verification")
	}
	if err := v.Barrier(1); err != nil {
		t.Errorf("barrier after verification: %v", err)
	}
}

func TestDelayedVerificationDetectsTamper(t *testing.T) {
	v := NewVerifier(8)
	v.BeginRead(1, 0xabcd)
	v.AccumulateLine(1, 0x1111) // wrong content
	err := v.CompleteRead(1)
	var ve *VerificationError
	if !errors.As(err, &ve) {
		t.Fatalf("tampered tensor verified: %v", err)
	}
	if !v.Poisoned(1) {
		t.Error("failed tensor must stay poisoned")
	}
	if err := v.Barrier(1); err == nil {
		t.Error("barrier allowed a failed tensor to leave the enclave")
	}
}

func TestOrderInsensitiveAccumulation(t *testing.T) {
	macs := []uint64{0xa, 0xb, 0xc, 0xd, 0xe}
	ref := crypto.XORMAC(macs)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		v := NewVerifier(8)
		v.BeginRead(1, ref)
		perm := rng.Perm(len(macs))
		for _, i := range perm {
			v.AccumulateLine(1, macs[i])
		}
		if err := v.CompleteRead(1); err != nil {
			t.Fatalf("permuted accumulation failed: %v", err)
		}
	}
}

func TestPoisonPropagation(t *testing.T) {
	v := NewVerifier(8)
	v.BeginRead(1, 0x1) // tensor 1 unverified
	v.Propagate(10, 1)  // out = f(t1)
	if !v.Poisoned(10) {
		t.Error("poison did not propagate to output")
	}
	v.Propagate(20, 10) // chains
	if !v.Poisoned(20) {
		t.Error("poison did not chain")
	}
	if err := v.Barrier(20); err == nil {
		t.Error("barrier allowed transitively poisoned tensor")
	}

	// Verify tensor 1; outputs remain poisoned until recomputed.
	v.AccumulateLine(1, 0x1)
	if err := v.CompleteRead(1); err != nil {
		t.Fatal(err)
	}
	if !v.Poisoned(10) {
		t.Error("stale output lost its poison without recomputation")
	}
	// Recompute from now-clean inputs clears it.
	v.Propagate(10, 1)
	if v.Poisoned(10) {
		t.Error("recomputation from verified inputs did not clear poison")
	}
}

func TestPropagateFromFailedTensorSticks(t *testing.T) {
	v := NewVerifier(8)
	v.BeginRead(1, 0xdead)
	v.AccumulateLine(1, 0x1)
	if err := v.CompleteRead(1); err == nil {
		t.Fatal("expected failure")
	}
	v.Propagate(10, 1)
	if !v.Poisoned(10) {
		t.Error("output of failed tensor not poisoned")
	}
	// Even "recomputation" keeps poison while the source is failed.
	v.Propagate(10, 1)
	if !v.Poisoned(10) {
		t.Error("failed source lost its effect")
	}
}

func TestBarrierCleanTensors(t *testing.T) {
	v := NewVerifier(8)
	if err := v.Barrier(42); err != nil {
		t.Errorf("barrier on untouched tensor: %v", err)
	}
}

func TestUnverifiedCap(t *testing.T) {
	v := NewVerifier(2)
	v.BeginRead(1, 0x1)
	if v.AtCapacity() {
		t.Error("capacity hit after one tensor (cap 2)")
	}
	v.BeginRead(2, 0x2)
	if !v.AtCapacity() {
		t.Error("capacity not hit at cap")
	}
	if v.Unverified() != 2 {
		t.Errorf("unverified = %d, want 2", v.Unverified())
	}
	// Verify one: capacity frees.
	v.AccumulateLine(1, 0x1)
	if err := v.CompleteRead(1); err != nil {
		t.Fatal(err)
	}
	if v.AtCapacity() {
		t.Error("capacity still hit after verification")
	}
}

func TestBeginReadIdempotentPoison(t *testing.T) {
	v := NewVerifier(8)
	v.BeginRead(1, 0x1)
	v.BeginRead(1, 0x1) // restart streaming of the same tensor
	if v.Unverified() != 1 {
		t.Errorf("unverified = %d, want 1 (no double count)", v.Unverified())
	}
}

func TestCompleteReadWithoutBegin(t *testing.T) {
	v := NewVerifier(8)
	if err := v.CompleteRead(99); err == nil {
		t.Error("CompleteRead without reference MAC must fail")
	}
}

func TestCodeVerificationInline(t *testing.T) {
	v := NewVerifier(8)
	if err := v.VerifyCode(0xaa, 0xaa); err != nil {
		t.Errorf("genuine code rejected: %v", err)
	}
	if err := v.VerifyCode(0xaa, 0xbb); err == nil {
		t.Error("tampered code accepted — delayed-verification attack possible")
	}
	s := v.Stats()
	if s.CodeVerifies != 2 || s.CodeFailures != 1 {
		t.Errorf("code stats = %+v", s)
	}
}

func TestStatsAndReset(t *testing.T) {
	v := NewVerifier(8)
	v.BeginRead(1, 0x1)
	v.Barrier(1)
	s := v.Stats()
	if s.Unverified != 1 || s.BarrierChecks != 1 {
		t.Errorf("stats = %+v", s)
	}
	v.Reset()
	if v.Unverified() != 0 || v.Poisoned(1) {
		t.Error("Reset incomplete")
	}
}

func TestDefaultCap(t *testing.T) {
	v := NewVerifier(0)
	if v.maxUnverified != 64 {
		t.Errorf("default cap = %d, want 64", v.maxUnverified)
	}
}

// Property: for random line MAC sets, verification succeeds iff the
// accumulated multiset XOR equals the reference; flipping any single line's
// MAC makes it fail.
func TestVerifyXORProperty(t *testing.T) {
	f := func(macs []uint64, corrupt uint8) bool {
		if len(macs) == 0 {
			return true
		}
		ref := crypto.XORMAC(macs)

		good := NewVerifier(8)
		good.BeginRead(1, ref)
		for _, m := range macs {
			good.AccumulateLine(1, m&crypto.MACMask)
		}
		if err := good.CompleteRead(1); err != nil {
			return false
		}

		bad := NewVerifier(8)
		bad.BeginRead(1, ref)
		for i, m := range macs {
			m &= crypto.MACMask
			if i == int(corrupt)%len(macs) {
				m ^= 0x1 // single-bit corruption
			}
			bad.AccumulateLine(1, m)
		}
		return bad.CompleteRead(1) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the unverified counter equals the number of distinct poisoned
// tensors under any interleaving of Begin/Complete/Propagate.
func TestUnverifiedCounterProperty(t *testing.T) {
	f := func(ops []struct {
		Kind uint8
		A, B uint8
	}) bool {
		v := NewVerifier(1 << 30)
		for _, op := range ops {
			a := TensorID(op.A % 8)
			b := TensorID(op.B % 8)
			switch op.Kind % 3 {
			case 0:
				v.BeginRead(a, 0)
			case 1:
				v.AccumulateLine(a, 0) // pending stays 0 == ref
				v.CompleteRead(a)
			case 2:
				v.Propagate(a, b)
			}
			count := 0
			for id := TensorID(0); id < 8; id++ {
				if v.Poisoned(id) {
					count++
				}
			}
			// failed tensors stay poisoned but are also counted by
			// Poisoned; unverified tracks only non-failed poisons plus
			// failed ones never got decremented. Recompute directly:
			actual := 0
			for _, s := range v.states {
				if s.poisoned {
					actual++
				}
			}
			if v.Unverified() != actual {
				return false
			}
			_ = count
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
