// Package npumac implements the NPU's integrity-verification schemes
// compared in Section 4.3 / Figure 20:
//
//   - cacheline-granularity MACs (the MGX-like baseline: ~10.9% storage);
//   - coarse-granularity MACs (256 B–4 KB as in GuardNN/MGX, which trade
//     storage for verification stalls);
//   - TensorTEE's tensor-granularity XOR MAC with delayed verification,
//     where MAC re-computation overlaps computation and integrity is
//     enforced at communication time by tensor poison tracing plus a
//     verification barrier (Figure 14).
//
// Code fetches never use the delayed path: the scheme tracks instruction
// requests separately and verifies them inline (Section 4.3 "restricting
// code access requests following normal non-delayed verification").
package npumac

import (
	"fmt"

	"tensortee/internal/crypto"
)

// Scheme identifies a MAC-management scheme for storage/timing accounting.
type Scheme int

const (
	// SchemeCacheline is one MAC per 64 B line (MGX-like baseline).
	SchemeCacheline Scheme = iota
	// SchemeCoarse is one MAC per Granularity bytes (GuardNN/MGX 512 B+).
	SchemeCoarse
	// SchemeTensorDelayed is TensorTEE's per-tensor XOR MAC with delayed
	// verification.
	SchemeTensorDelayed
)

func (s Scheme) String() string {
	switch s {
	case SchemeCacheline:
		return "cacheline-mac"
	case SchemeCoarse:
		return "coarse-mac"
	case SchemeTensorDelayed:
		return "tensor-mac-delayed"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// StorageOverhead returns off-chip MAC bytes per data byte for a scheme at
// the given granularity (Figure 20's right axis). Tensor-granularity MACs
// live on chip, so their off-chip overhead is zero.
func StorageOverhead(s Scheme, granBytes, macBytes int) float64 {
	switch s {
	case SchemeCacheline:
		return float64(macBytes) / 64
	case SchemeCoarse:
		return float64(macBytes) / float64(granBytes)
	case SchemeTensorDelayed:
		return 0
	default:
		return 0
	}
}

// TensorID names a tensor in NPU device memory.
type TensorID int

// tensorState tracks one tensor's delayed-verification status.
type tensorState struct {
	id TensorID
	// poisoned: the tensor (or a tensor it was computed from) has pending
	// unverified input data (Figure 14c poison bits).
	poisoned bool
	// pendingMAC is the XOR accumulation of recomputed line MACs for
	// in-flight verification.
	pendingMAC uint64
	pendingSet bool
	// refMAC is the trusted reference (from the on-chip table or the
	// trusted channel at import).
	refMAC uint64
	refSet bool
	failed bool
}

// VerificationError reports a delayed-verification failure.
type VerificationError struct {
	Tensor TensorID
	Reason string
	// Unverified marks failures where the tensor is still poisoned
	// (pending or propagated verification) rather than a detected MAC
	// mismatch; callers use it to distinguish "not yet verified" from
	// "tampered".
	Unverified bool
}

func (e *VerificationError) Error() string {
	return fmt.Sprintf("npumac: tensor %d integrity violation: %s", e.Tensor, e.Reason)
}

// Verifier is the delayed-verification engine: it tracks poison bits for up
// to MaxTensors tensors, accumulates XOR MACs as lines stream in, and
// enforces barriers before communication.
type Verifier struct {
	maxUnverified int
	states        map[TensorID]*tensorState
	unverified    int
	// codeVerifies counts inline (non-delayed) code-fetch verifications.
	codeVerifies  uint64
	codeFailures  uint64
	barrierChecks uint64
	failures      uint64
}

// NewVerifier builds a verifier with the Section 4.3 cap on simultaneously
// unverified tensors ("the number of unverified tensors is limited with a
// counter to avoid meaningless computations after verification failure").
func NewVerifier(maxUnverified int) *Verifier {
	if maxUnverified <= 0 {
		maxUnverified = 64
	}
	return &Verifier{
		maxUnverified: maxUnverified,
		states:        make(map[TensorID]*tensorState),
	}
}

func (v *Verifier) state(id TensorID) *tensorState {
	s, ok := v.states[id]
	if !ok {
		s = &tensorState{id: id}
		v.states[id] = s
	}
	return s
}

// Unverified reports the number of tensors currently poisoned.
func (v *Verifier) Unverified() int { return v.unverified }

// AtCapacity reports whether starting another unverified tensor would
// exceed the cap; the NPU pipeline stalls new loads until verification
// catches up.
func (v *Verifier) AtCapacity() bool { return v.unverified >= v.maxUnverified }

// BeginRead marks the start of streaming a tensor's lines with delayed
// verification: the tensor becomes poisoned until verification completes.
// refMAC is the trusted tensor MAC (on-chip table / trusted channel).
func (v *Verifier) BeginRead(id TensorID, refMAC uint64) {
	s := v.state(id)
	if !s.poisoned {
		s.poisoned = true
		v.unverified++
	}
	s.refMAC = refMAC
	s.refSet = true
	s.pendingMAC = 0
	s.pendingSet = true
}

// AccumulateLine folds a recomputed line MAC into the pending tensor MAC.
// Order-insensitive by the XOR construction, so tiled access is fine.
func (v *Verifier) AccumulateLine(id TensorID, lineMAC uint64) {
	s := v.state(id)
	if !s.pendingSet {
		s.pendingMAC = 0
		s.pendingSet = true
	}
	s.pendingMAC ^= lineMAC & crypto.MACMask
}

// CompleteRead finishes the delayed verification of a tensor: the XOR of
// recomputed line MACs must equal the reference. On success the poison bit
// clears; on failure the tensor is marked failed and stays poisoned.
func (v *Verifier) CompleteRead(id TensorID) error {
	s := v.state(id)
	if !s.refSet {
		return &VerificationError{Tensor: id, Reason: "no reference MAC"}
	}
	if s.pendingMAC != s.refMAC {
		s.failed = true
		v.failures++
		return &VerificationError{Tensor: id, Reason: fmt.Sprintf("MAC mismatch: computed %#x, reference %#x", s.pendingMAC, s.refMAC)}
	}
	if s.poisoned {
		s.poisoned = false
		v.unverified--
	}
	s.pendingSet = false
	return nil
}

// Propagate marks dst poisoned if any src is poisoned (or failed): the
// poison effect flows to output tensors of every kernel (Figure 14c).
func (v *Verifier) Propagate(dst TensorID, srcs ...TensorID) {
	poison := false
	for _, src := range srcs {
		if s, ok := v.states[src]; ok && (s.poisoned || s.failed) {
			poison = true
			break
		}
	}
	d := v.state(dst)
	if poison && !d.poisoned {
		d.poisoned = true
		v.unverified++
	}
	// A clean recomputation of dst from verified inputs clears its poison:
	// the new value no longer depends on unverified data.
	if !poison && d.poisoned && !d.failed {
		d.poisoned = false
		v.unverified--
	}
}

// Poisoned reports a tensor's poison bit.
func (v *Verifier) Poisoned(id TensorID) bool {
	s, ok := v.states[id]
	return ok && (s.poisoned || s.failed)
}

// Barrier implements the verification_barrier pragma (Figure 14a): it
// blocks the communication of the given tensors until their poison bits
// are clear, returning an error if any involved tensor failed verification
// or is still unverified (in hardware the barrier *waits*; in this
// functional model pending verifications must already have completed, so a
// still-poisoned tensor means a verification failure or a protocol bug).
func (v *Verifier) Barrier(ids ...TensorID) error {
	v.barrierChecks++
	for _, id := range ids {
		s, ok := v.states[id]
		if !ok {
			continue // never touched: trivially clean
		}
		if s.failed {
			return &VerificationError{Tensor: id, Reason: "verification failed before communication"}
		}
		if s.poisoned {
			return &VerificationError{Tensor: id, Reason: "unverified at communication barrier", Unverified: true}
		}
	}
	return nil
}

// VerifyCode performs the inline, non-delayed verification of a code fetch
// (isInst-flagged requests): the line MAC must match immediately, before
// the instruction issues.
func (v *Verifier) VerifyCode(lineMAC, refMAC uint64) error {
	v.codeVerifies++
	if lineMAC != refMAC {
		v.codeFailures++
		return &VerificationError{Tensor: -1, Reason: "code line MAC mismatch"}
	}
	return nil
}

// Stats reports verifier activity.
type Stats struct {
	Unverified    int
	CodeVerifies  uint64
	CodeFailures  uint64
	BarrierChecks uint64
	Failures      uint64
}

// Stats returns a snapshot of counters.
func (v *Verifier) Stats() Stats {
	return Stats{
		Unverified:    v.unverified,
		CodeVerifies:  v.codeVerifies,
		CodeFailures:  v.codeFailures,
		BarrierChecks: v.barrierChecks,
		Failures:      v.failures,
	}
}

// Reset clears all tensor states (e.g. at kernel-graph boundaries).
func (v *Verifier) Reset() {
	v.states = make(map[TensorID]*tensorState)
	v.unverified = 0
}
