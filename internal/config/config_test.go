package config

import (
	"strings"
	"testing"
)

func TestDefaultMatchesTable1(t *testing.T) {
	c := Default(TensorTEE)
	if c.CPU.FreqHz != 3.5e9 {
		t.Errorf("CPU freq = %g, want 3.5GHz", c.CPU.FreqHz)
	}
	if c.CPU.Cores != 8 {
		t.Errorf("CPU cores = %d, want 8", c.CPU.Cores)
	}
	if c.CPU.L1SizeBytes != 32<<10 || c.CPU.L1Ways != 8 {
		t.Errorf("L1 = %d/%d-way", c.CPU.L1SizeBytes, c.CPU.L1Ways)
	}
	if c.CPU.L2SizeBytes != 256<<10 {
		t.Errorf("L2 = %d", c.CPU.L2SizeBytes)
	}
	if c.CPU.L3SizeBytes != 9<<20 {
		t.Errorf("L3 = %d", c.CPU.L3SizeBytes)
	}
	if c.CPU.MetaCacheSize != 32<<10 {
		t.Errorf("metadata cache = %d, want 32KB", c.CPU.MetaCacheSize)
	}
	if c.CPU.AESLatCycles != 40 || c.CPU.MACLatCycles != 40 {
		t.Error("AES/MAC latency should be 40 cycles (Table 1)")
	}
	if c.NPU.FreqHz != 1e9 {
		t.Errorf("NPU freq = %g, want 1GHz", c.NPU.FreqHz)
	}
	if c.NPU.PERows != 512 || c.NPU.PECols != 512 {
		t.Errorf("PE array = %dx%d, want 512x512", c.NPU.PERows, c.NPU.PECols)
	}
	if c.NPU.ScratchpadBytes != 32<<20 {
		t.Errorf("scratchpad = %d, want 32MB", c.NPU.ScratchpadBytes)
	}
	if c.NPU.DRAMBytes != 40<<30 {
		t.Errorf("NPU DRAM = %d, want 40GB", c.NPU.DRAMBytes)
	}
	if c.NPU.DRAMBandwidthBs != 128e9 {
		t.Errorf("NPU BW = %g, want 128GB/s", c.NPU.DRAMBandwidthBs)
	}
	if c.HostDRAM.Channels != 2 || c.HostDRAM.Kind != DDR4 {
		t.Errorf("host DRAM = %v x%d", c.HostDRAM.Kind, c.HostDRAM.Channels)
	}
	if c.Protection.VNBits != 56 || c.Protection.MACBits != 56 {
		t.Error("VN/MAC must be 56-bit")
	}
	if c.Protection.MerkleArity != 8 {
		t.Error("Merkle tree must be 8-ary")
	}
	if c.Protection.MetaTableSize != 512 {
		t.Error("Meta Table must have 512 entries (Section 6.5)")
	}
	if c.Protection.FilterEntries != 10 || c.Protection.FilterDepth != 4 {
		t.Error("Tensor Filter must be 10 entries x 4 addresses")
	}
}

func TestDefaultFeatureFlags(t *testing.T) {
	ns := Default(NonSecure)
	if ns.Protection.DelayedVerification || ns.Protection.TensorWiseCPU || ns.Protection.DirectTransfer {
		t.Error("NonSecure must not enable TensorTEE features")
	}
	if ns.Secure() {
		t.Error("NonSecure.Secure() must be false")
	}
	base := Default(BaselineSGXMGX)
	if base.Protection.DelayedVerification || base.Protection.TensorWiseCPU || base.Protection.DirectTransfer {
		t.Error("baseline must not enable TensorTEE features")
	}
	if !base.Secure() {
		t.Error("baseline must be secure")
	}
	tte := Default(TensorTEE)
	if !tte.Protection.DelayedVerification || !tte.Protection.TensorWiseCPU || !tte.Protection.DirectTransfer {
		t.Error("TensorTEE must enable all three mechanisms")
	}
}

func TestValidateAcceptsDefaults(t *testing.T) {
	for _, k := range []SystemKind{NonSecure, BaselineSGXMGX, TensorTEE} {
		c := Default(k)
		if err := c.Validate(); err != nil {
			t.Errorf("Default(%v) invalid: %v", k, err)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"zero cores", func(c *Config) { c.CPU.Cores = 0 }, "Cores"},
		{"bad line", func(c *Config) { c.CPU.LineBytes = 48 }, "LineBytes"},
		{"bad freq", func(c *Config) { c.CPU.FreqHz = 0 }, "FreqHz"},
		{"bad pe", func(c *Config) { c.NPU.PERows = 0 }, "PE"},
		{"bad npubw", func(c *Config) { c.NPU.DRAMBandwidthBs = 0 }, "DRAMBandwidth"},
		{"bad channels", func(c *Config) { c.HostDRAM.Channels = 0 }, "Channels"},
		{"bad link", func(c *Config) { c.Comm.LinkBandwidthBs = 0 }, "LinkBandwidth"},
		{"bad vn", func(c *Config) { c.Protection.VNBits = 0 }, "VNBits"},
		{"vn too wide", func(c *Config) { c.Protection.VNBits = 65 }, "VNBits"},
		{"bad mac", func(c *Config) { c.Protection.MACBits = 99 }, "MACBits"},
		{"bad arity", func(c *Config) { c.Protection.MerkleArity = 1 }, "MerkleArity"},
		{"gran below line", func(c *Config) { c.Protection.MACGranBytes = 32 }, "MACGran"},
		{"no entries", func(c *Config) { c.Protection.MetaTableSize = 0 }, "MetaTable"},
		{"zero meta cache", func(c *Config) { c.CPU.MetaCacheSize = 0 }, "MetaCacheSize"},
		{"negative meta cache", func(c *Config) { c.CPU.MetaCacheSize = -1 << 10 }, "MetaCacheSize"},
		{"zero meta cache ways", func(c *Config) { c.CPU.MetaCacheWays = 0 }, "MetaCacheWays"},
		{"meta cache below one set", func(c *Config) { c.CPU.MetaCacheSize = 256 }, "MetaCacheSize"},
	}
	for _, tc := range cases {
		c := Default(TensorTEE)
		tc.mutate(&c)
		err := c.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted bad config", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateNonSecureConsistency(t *testing.T) {
	c := Default(NonSecure)
	c.Protection.DelayedVerification = true
	if err := c.Validate(); err == nil {
		t.Error("NonSecure with protection features must be rejected")
	}
}

func TestDerivedSizes(t *testing.T) {
	c := Default(TensorTEE)
	if c.VNBytesPerLine() != 7 {
		t.Errorf("VNBytesPerLine = %d, want 7 (56 bits)", c.VNBytesPerLine())
	}
	if c.MACBytes() != 7 {
		t.Errorf("MACBytes = %d, want 7", c.MACBytes())
	}
}

func TestSystemKindString(t *testing.T) {
	if NonSecure.String() != "Non-Secure" ||
		BaselineSGXMGX.String() != "SGX+MGX" ||
		TensorTEE.String() != "TensorTEE" {
		t.Error("SystemKind String broken")
	}
	if SystemKind(99).String() == "" {
		t.Error("unknown kind should still format")
	}
}
