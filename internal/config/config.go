// Package config holds the system simulation configuration reproduced from
// Table 1 of the TensorTEE paper, plus the knobs that select between the
// three evaluated systems (NonSecure, SGX+MGX baseline, TensorTEE).
package config

import "fmt"

// SystemKind selects one of the three configurations compared in the paper
// (Section 5.2).
type SystemKind int

const (
	// NonSecure disables all isolation and memory protection; used as the
	// performance reference.
	NonSecure SystemKind = iota
	// BaselineSGXMGX is the paper's baseline: SGX-like cacheline-granularity
	// protection on the CPU, MGX-like tensor-VN/cacheline-MAC protection on
	// the NPU, and Graviton-like staged communication with re-encryption.
	BaselineSGXMGX
	// TensorTEE is the proposed unified tensor-granularity system.
	TensorTEE
)

func (k SystemKind) String() string {
	switch k {
	case NonSecure:
		return "Non-Secure"
	case BaselineSGXMGX:
		return "SGX+MGX"
	case TensorTEE:
		return "TensorTEE"
	default:
		return fmt.Sprintf("SystemKind(%d)", int(k))
	}
}

// CPU describes the host processor (Table 1, "CPU Configuration").
type CPU struct {
	FreqHz        float64 // 3.5 GHz
	Cores         int     // 8 out-of-order cores
	IssueWidth    int     // memory ops issued per core per cycle bound
	MemLevelPar   int     // outstanding misses per core (MLP)
	L1SizeBytes   int     // 32 KB I/D
	L1Ways        int     // 8
	L2SizeBytes   int     // 256 KB
	L2Ways        int     // 8
	L3SizeBytes   int     // 9 MB shared
	L3Ways        int     // 8
	LineBytes     int     // 64
	L1LatCycles   int
	L2LatCycles   int
	L3LatCycles   int
	MetaCacheSize int // 32 KB MEE metadata cache
	MetaCacheWays int
	AESLatCycles  int // 40-cycle 128-bit AES
	MACLatCycles  int // 40-cycle MAC
	// ProtectedBytes fixes the MEE protected-region span assumed during
	// CPU calibration. 0 (the default) sizes the region to the calibration
	// workload; larger values deepen the Merkle tree and grow the VN/MAC
	// metadata footprint the metadata cache contends for. Values below
	// MinProtectedBytes are rejected: the calibration window would no
	// longer fit and the measured cost-per-byte would be meaningless.
	ProtectedBytes int64
}

// MinProtectedBytes is the smallest explicit CPU.ProtectedBytes a
// configuration may request: the calibration working set (a 2M-element
// w/g/m/v Adam window, 32 MB) plus headroom for its off-chip metadata.
const MinProtectedBytes = 64 << 20

// MaxProtectedBytes bounds explicit CPU.ProtectedBytes: the simulated
// metadata layout is allocated densely per line, so multi-GB regions would
// cost real host memory proportional to the span.
const MaxProtectedBytes = 1 << 30

// NPU describes the accelerator (Table 1, "NPU Configuration").
type NPU struct {
	FreqHz          float64 // 1 GHz
	PERows          int     // 512
	PECols          int     // 512
	ScratchpadBytes int     // 32 MB
	DRAMBytes       int64   // 40 GB GDDR5
	DRAMBandwidthBs float64 // 128 GB/s
	LineBytes       int     // 64
	AESLatCycles    int     // 40 cycles
	MACLatCycles    int
	// AESEngineBs is the sustained bandwidth of one AES engine
	// (Section 3.3: one engine provides ~8 GB/s, computation needs >=20).
	AESEngineBs float64
	// AESEngines is the number of engines available to the compute path;
	// the paper assumes each channel has a dedicated engine in TensorTEE.
	AESEngines int
}

// DRAMKind names a device timing profile in internal/dram.
type DRAMKind string

const (
	DDR4  DRAMKind = "DDR4-2400"
	GDDR5 DRAMKind = "GDDR5"
)

// HostDRAM describes the CPU-side DDR4 (Table 1: DDR4@2400, 2 channels).
type HostDRAM struct {
	Kind     DRAMKind
	Channels int // 2
}

// Comm describes the CPU<->NPU interconnect (Table 1: PCIe 4.0 x16).
type Comm struct {
	// LinkBandwidthBs is the effective PCIe bandwidth in bytes/second.
	LinkBandwidthBs float64
	// LinkLatencyNs is the one-way latency in nanoseconds.
	LinkLatencyNs float64
	// StagingBandwidthBs bounds non-secure staging copies (memcpy through
	// host DRAM) for the Graviton-like baseline protocol.
	StagingBandwidthBs float64
}

// Protection describes the memory-protection scheme parameters shared by
// both MEEs.
type Protection struct {
	VNBits        int // 56-bit version numbers
	MACBits       int // 56-bit MACs
	MerkleArity   int // 8-ary Bonsai Merkle tree
	MACGranBytes  int // NPU MAC granularity (64 for MGX-like baseline)
	MetaTableSize int // TenAnalyzer Meta Table entries (512)
	FilterEntries int // Tensor Filter entries (10)
	FilterDepth   int // addresses collected per filter entry (4)
	// MaxUnverified caps simultaneously-unverified tensors under delayed
	// verification (Section 4.3).
	MaxUnverified int
	// DelayedVerification enables the tensor-wise MAC delayed-verification
	// pipeline on the NPU (TensorTEE mode).
	DelayedVerification bool
	// TensorWiseCPU enables TenAnalyzer in the CPU memory controller.
	TensorWiseCPU bool
	// DirectTransfer enables the unified-granularity direct transfer
	// protocol (no re-encryption staging).
	DirectTransfer bool
}

// Config is the complete system configuration.
type Config struct {
	System     SystemKind
	CPU        CPU
	NPU        NPU
	HostDRAM   HostDRAM
	Comm       Comm
	Protection Protection
}

// Default returns the Table-1 configuration for the given system kind.
func Default(kind SystemKind) Config {
	c := Config{
		System: kind,
		CPU: CPU{
			FreqHz:        3.5e9,
			Cores:         8,
			IssueWidth:    4,
			MemLevelPar:   10,
			L1SizeBytes:   32 << 10,
			L1Ways:        8,
			L2SizeBytes:   256 << 10,
			L2Ways:        8,
			L3SizeBytes:   9 << 20,
			L3Ways:        8,
			LineBytes:     64,
			L1LatCycles:   4,
			L2LatCycles:   12,
			L3LatCycles:   38,
			MetaCacheSize: 32 << 10,
			MetaCacheWays: 8,
			AESLatCycles:  40,
			MACLatCycles:  40,
		},
		NPU: NPU{
			FreqHz:          1e9,
			PERows:          512,
			PECols:          512,
			ScratchpadBytes: 32 << 20,
			DRAMBytes:       40 << 30,
			DRAMBandwidthBs: 128e9,
			LineBytes:       64,
			AESLatCycles:    40,
			MACLatCycles:    40,
			AESEngineBs:     8e9,
			AESEngines:      1,
		},
		HostDRAM: HostDRAM{Kind: DDR4, Channels: 2},
		Comm: Comm{
			LinkBandwidthBs:    26e9, // PCIe 4.0 x16 effective DMA
			LinkLatencyNs:      800,
			StagingBandwidthBs: 12e9, // pinned-buffer staged copy pipeline
		},
		Protection: Protection{
			VNBits:        56,
			MACBits:       56,
			MerkleArity:   8,
			MACGranBytes:  64,
			MetaTableSize: 512,
			FilterEntries: 10,
			FilterDepth:   4,
			MaxUnverified: 64,
		},
	}
	switch kind {
	case TensorTEE:
		c.Protection.DelayedVerification = true
		c.Protection.TensorWiseCPU = true
		c.Protection.DirectTransfer = true
	case BaselineSGXMGX, NonSecure:
		// defaults above
	}
	return c
}

// Validate reports configuration errors (zero or negative structural
// parameters, inconsistent protection settings).
func (c *Config) Validate() error {
	switch {
	case c.CPU.Cores <= 0:
		return fmt.Errorf("config: CPU.Cores must be positive, got %d", c.CPU.Cores)
	case c.CPU.FreqHz <= 0:
		return fmt.Errorf("config: CPU.FreqHz must be positive, got %g", c.CPU.FreqHz)
	case c.CPU.LineBytes <= 0 || c.CPU.LineBytes&(c.CPU.LineBytes-1) != 0:
		return fmt.Errorf("config: CPU.LineBytes must be a positive power of two, got %d", c.CPU.LineBytes)
	case c.NPU.PERows <= 0 || c.NPU.PECols <= 0:
		return fmt.Errorf("config: NPU PE array must be positive, got %dx%d", c.NPU.PERows, c.NPU.PECols)
	case c.NPU.DRAMBandwidthBs <= 0:
		return fmt.Errorf("config: NPU.DRAMBandwidthBs must be positive, got %g", c.NPU.DRAMBandwidthBs)
	case c.HostDRAM.Channels <= 0:
		return fmt.Errorf("config: HostDRAM.Channels must be positive, got %d", c.HostDRAM.Channels)
	case c.Comm.LinkBandwidthBs <= 0:
		return fmt.Errorf("config: Comm.LinkBandwidthBs must be positive, got %g", c.Comm.LinkBandwidthBs)
	case c.Protection.VNBits <= 0 || c.Protection.VNBits > 64:
		return fmt.Errorf("config: Protection.VNBits must be in (0,64], got %d", c.Protection.VNBits)
	case c.Protection.MACBits <= 0 || c.Protection.MACBits > 64:
		return fmt.Errorf("config: Protection.MACBits must be in (0,64], got %d", c.Protection.MACBits)
	case c.Protection.MerkleArity < 2:
		return fmt.Errorf("config: Protection.MerkleArity must be >= 2, got %d", c.Protection.MerkleArity)
	case c.Protection.MACGranBytes < c.CPU.LineBytes:
		return fmt.Errorf("config: Protection.MACGranBytes %d below line size %d", c.Protection.MACGranBytes, c.CPU.LineBytes)
	case c.Protection.MetaTableSize <= 0:
		return fmt.Errorf("config: Protection.MetaTableSize must be positive, got %d", c.Protection.MetaTableSize)
	case c.CPU.MetaCacheSize <= 0:
		return fmt.Errorf("config: CPU.MetaCacheSize must be positive, got %d", c.CPU.MetaCacheSize)
	case c.CPU.MetaCacheWays <= 0:
		return fmt.Errorf("config: CPU.MetaCacheWays must be positive, got %d", c.CPU.MetaCacheWays)
	case c.CPU.MetaCacheSize < c.CPU.MetaCacheWays*c.CPU.LineBytes:
		return fmt.Errorf("config: CPU.MetaCacheSize %d below one set (%d ways x %d B lines)", c.CPU.MetaCacheSize, c.CPU.MetaCacheWays, c.CPU.LineBytes)
	case c.CPU.ProtectedBytes < 0:
		return fmt.Errorf("config: CPU.ProtectedBytes must be non-negative, got %d", c.CPU.ProtectedBytes)
	case c.CPU.ProtectedBytes != 0 && c.CPU.ProtectedBytes < MinProtectedBytes:
		return fmt.Errorf("config: CPU.ProtectedBytes %d below the %d-byte calibration window", c.CPU.ProtectedBytes, int64(MinProtectedBytes))
	case c.CPU.ProtectedBytes > MaxProtectedBytes:
		return fmt.Errorf("config: CPU.ProtectedBytes %d above the %d-byte simulation bound", c.CPU.ProtectedBytes, int64(MaxProtectedBytes))
	}
	if c.System == NonSecure && (c.Protection.DelayedVerification || c.Protection.TensorWiseCPU || c.Protection.DirectTransfer) {
		return fmt.Errorf("config: NonSecure system must not enable protection features")
	}
	return nil
}

// Secure reports whether memory protection is active at all.
func (c *Config) Secure() bool { return c.System != NonSecure }

// CPUCyclesPerSecond returns the CPU clock rate.
func (c *Config) CPUCyclesPerSecond() float64 { return c.CPU.FreqHz }

// NPUCyclesPerSecond returns the NPU clock rate.
func (c *Config) NPUCyclesPerSecond() float64 { return c.NPU.FreqHz }

// VNBytesPerLine returns the off-chip VN storage per cacheline, rounded up
// to whole bytes (56 bits -> 7 bytes).
func (c *Config) VNBytesPerLine() int { return (c.Protection.VNBits + 7) / 8 }

// MACBytes returns the per-MAC storage in bytes.
func (c *Config) MACBytes() int { return (c.Protection.MACBits + 7) / 8 }
