package trace

import (
	"testing"

	"tensortee/internal/tensor"
)

func TestSliceStream(t *testing.T) {
	s := &SliceStream{Accesses: []Access{{Addr: 1}, {Addr: 2, Write: true}}}
	a, ok := s.Next()
	if !ok || a.Addr != 1 || a.Write {
		t.Errorf("first = %+v ok=%v", a, ok)
	}
	a, ok = s.Next()
	if !ok || a.Addr != 2 || !a.Write {
		t.Errorf("second = %+v", a)
	}
	if _, ok := s.Next(); ok {
		t.Error("stream did not terminate")
	}
}

func TestNewAdamTensorsLayout(t *testing.T) {
	arena := tensor.NewArena(0, 64)
	q := NewAdamTensors(arena, "layer0", 1024)
	for _, tt := range []*tensor.Tensor{q.W, q.G, q.M, q.V} {
		if tt.Bytes() != 4096 {
			t.Errorf("%s bytes = %d, want 4096", tt.Name, tt.Bytes())
		}
		if tt.Addr%64 != 0 {
			t.Errorf("%s not line aligned", tt.Name)
		}
	}
	// No overlaps.
	all := []*tensor.Tensor{q.W, q.G, q.M, q.V}
	for i := range all {
		for j := i + 1; j < len(all); j++ {
			ri := tensor.Region{Base: all[i].Addr, Bytes: all[i].Bytes()}
			rj := tensor.Region{Base: all[j].Addr, Bytes: all[j].Bytes()}
			if ri.Overlaps(rj) {
				t.Errorf("%s overlaps %s", all[i].Name, all[j].Name)
			}
		}
	}
}

// drain collects all accesses of a stream.
func drain(s Stream) []Access {
	var out []Access
	for {
		a, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
}

func TestAdamStreamCoversEverythingOnce(t *testing.T) {
	arena := tensor.NewArena(0, 64)
	quads := []AdamTensors{NewAdamTensors(arena, "p", 256)} // 16 lines/tensor
	streams := AdamStreams(quads, AdamConfig{Cores: 2, BurstLines: 4})

	readCount := map[uint64]int{}
	writeCount := map[uint64]int{}
	total := 0
	for _, s := range streams {
		for _, a := range drain(s) {
			total++
			if a.Write {
				writeCount[a.Addr]++
			} else {
				readCount[a.Addr]++
			}
		}
	}
	// 16 lines x (4 reads + 3 writes) = 112 accesses.
	if total != 112 {
		t.Fatalf("total accesses = %d, want 112", total)
	}
	q := quads[0]
	for i := 0; i < 16; i++ {
		off := uint64(i * 64)
		for _, base := range []uint64{q.W.Addr, q.G.Addr, q.M.Addr, q.V.Addr} {
			if readCount[base+off] != 1 {
				t.Errorf("line %#x read %d times, want 1", base+off, readCount[base+off])
			}
		}
		for _, base := range []uint64{q.W.Addr, q.M.Addr, q.V.Addr} {
			if writeCount[base+off] != 1 {
				t.Errorf("line %#x written %d times, want 1", base+off, writeCount[base+off])
			}
		}
		if writeCount[q.G.Addr+off] != 0 {
			t.Error("gradient tensor must not be written by Adam")
		}
	}
}

func TestAdamStreamBurstGrouping(t *testing.T) {
	arena := tensor.NewArena(0, 64)
	quads := []AdamTensors{NewAdamTensors(arena, "p", 16*8)} // 8 lines
	streams := AdamStreams(quads, AdamConfig{Cores: 1, BurstLines: 4})
	accs := drain(streams[0])
	// First burst: 4 reads of w at consecutive lines.
	q := quads[0]
	for i := 0; i < 4; i++ {
		if accs[i].Addr != q.W.Addr+uint64(i*64) || accs[i].Write {
			t.Fatalf("access %d = %+v, want w read line %d", i, accs[i], i)
		}
	}
	// Next: 4 reads of g.
	for i := 0; i < 4; i++ {
		if accs[4+i].Addr != q.G.Addr+uint64(i*64) {
			t.Fatalf("access %d = %+v, want g read", 4+i, accs[4+i])
		}
	}
	// Burst 1 writes arrive before burst 2 reads.
	if !accs[16].Write || accs[16].Addr != q.W.Addr {
		t.Errorf("access 16 = %+v, want w write line 0", accs[16])
	}
	if accs[28].Write || accs[28].Addr != q.W.Addr+4*64 {
		t.Errorf("access 28 = %+v, want w read line 4", accs[28])
	}
}

func TestAdamStreamChunking(t *testing.T) {
	arena := tensor.NewArena(0, 64)
	quads := []AdamTensors{NewAdamTensors(arena, "p", 32*16)} // 32 lines
	streams := AdamStreams(quads, AdamConfig{Cores: 4})
	q := quads[0]
	for c, s := range streams {
		accs := drain(s)
		if len(accs) != 8*7 {
			t.Fatalf("core %d accesses = %d, want 56", c, len(accs))
		}
		wantFirst := q.W.Addr + uint64(c*8*64)
		if accs[0].Addr != wantFirst {
			t.Errorf("core %d first access %#x, want %#x", c, accs[0].Addr, wantFirst)
		}
	}
}

func TestAdamStreamChunkShiftRotates(t *testing.T) {
	arena := tensor.NewArena(0, 64)
	quads := []AdamTensors{NewAdamTensors(arena, "p", 32*16)} // 32 lines
	q := quads[0]

	// With a shift every line must still be read exactly once in total,
	// and the chunk boundary must have moved.
	countReads := func(shift int) map[uint64]int {
		counts := map[uint64]int{}
		for _, s := range AdamStreams(quads, AdamConfig{Cores: 2, ChunkShift: shift}) {
			for _, a := range drain(s) {
				if !a.Write && a.Addr >= q.W.Addr && a.Addr < q.W.End() {
					counts[a.Addr]++
				}
			}
		}
		return counts
	}
	for _, shift := range []int{0, 3, 16, 31} {
		counts := countReads(shift)
		for i := 0; i < 32; i++ {
			if counts[q.W.Addr+uint64(i*64)] != 1 {
				t.Fatalf("shift %d: line %d read %d times, want 1", shift, i, counts[q.W.Addr+uint64(i*64)])
			}
		}
	}
	// Core 0's first line moves with the shift.
	s0 := AdamStreams(quads, AdamConfig{Cores: 2, ChunkShift: 0})
	s3 := AdamStreams(quads, AdamConfig{Cores: 2, ChunkShift: 3})
	a0 := drain(s0[0])
	a3 := drain(s3[0])
	if a0[0].Addr == a3[0].Addr {
		t.Error("shift did not move chunk boundaries")
	}
}

func TestAdamStreamComputeOnGroupLeader(t *testing.T) {
	arena := tensor.NewArena(0, 64)
	quads := []AdamTensors{NewAdamTensors(arena, "p", 64)}
	streams := AdamStreams(quads, AdamConfig{Cores: 1, ComputePerLine: 100, BurstLines: 1})
	accs := drain(streams[0])
	if accs[0].Compute != 100 {
		t.Error("first access of a group must carry the compute gap")
	}
	if accs[1].Compute != 0 {
		t.Error("subsequent accesses of a group must not re-charge compute")
	}
}

func TestGEMMStream(t *testing.T) {
	s := GEMMStream(GEMMConfig{
		Base: 0x1000, Rows: 8, Cols: 32, TileRows: 4, TileCols: 16,
	})
	accs := drain(s)
	// 8x32 fp32 matrix = 1024B... accesses: per tile row 16*4/64 = 1 line;
	// 4 rows per tile; tiles: 2 cols x 2 rows = 4 tiles -> 16 accesses.
	if len(accs) != 16 {
		t.Fatalf("accesses = %d, want 16", len(accs))
	}
	// First tile, first row at base.
	if accs[0].Addr != 0x1000 {
		t.Errorf("first access %#x", accs[0].Addr)
	}
	// Second row of first tile at base + rowBytes (128).
	if accs[1].Addr != 0x1000+128 {
		t.Errorf("second access %#x, want %#x", accs[1].Addr, 0x1000+128)
	}
	// Second tile starts at column 16 -> base + 64.
	if accs[4].Addr != 0x1000+64 {
		t.Errorf("second tile first access %#x, want %#x", accs[4].Addr, 0x1000+64)
	}
}

func TestGEMMStreamRepeats(t *testing.T) {
	one := CountStream(GEMMStream(GEMMConfig{Base: 0, Rows: 8, Cols: 32, TileRows: 4, TileCols: 16}))
	three := CountStream(GEMMStream(GEMMConfig{Base: 0, Rows: 8, Cols: 32, TileRows: 4, TileCols: 16, Repeats: 3}))
	if three != 3*one {
		t.Errorf("repeats = %d, want %d", three, 3*one)
	}
}
