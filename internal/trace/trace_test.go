package trace

import (
	"testing"

	"tensortee/internal/tensor"
)

func TestSliceStream(t *testing.T) {
	s := &SliceStream{Accesses: []Access{{Addr: 1}, {Addr: 2, Write: true}}}
	a, ok := s.Next()
	if !ok || a.Addr != 1 || a.Write {
		t.Errorf("first = %+v ok=%v", a, ok)
	}
	a, ok = s.Next()
	if !ok || a.Addr != 2 || !a.Write {
		t.Errorf("second = %+v", a)
	}
	if _, ok := s.Next(); ok {
		t.Error("stream did not terminate")
	}
}

func TestNewAdamTensorsLayout(t *testing.T) {
	arena := tensor.NewArena(0, 64)
	q := NewAdamTensors(arena, "layer0", 1024)
	for _, tt := range []*tensor.Tensor{q.W, q.G, q.M, q.V} {
		if tt.Bytes() != 4096 {
			t.Errorf("%s bytes = %d, want 4096", tt.Name, tt.Bytes())
		}
		if tt.Addr%64 != 0 {
			t.Errorf("%s not line aligned", tt.Name)
		}
	}
	// No overlaps.
	all := []*tensor.Tensor{q.W, q.G, q.M, q.V}
	for i := range all {
		for j := i + 1; j < len(all); j++ {
			ri := tensor.Region{Base: all[i].Addr, Bytes: all[i].Bytes()}
			rj := tensor.Region{Base: all[j].Addr, Bytes: all[j].Bytes()}
			if ri.Overlaps(rj) {
				t.Errorf("%s overlaps %s", all[i].Name, all[j].Name)
			}
		}
	}
}

// drain collects all accesses of a stream.
func drain(s Stream) []Access {
	var out []Access
	for {
		a, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
}

func TestAdamStreamCoversEverythingOnce(t *testing.T) {
	arena := tensor.NewArena(0, 64)
	quads := []AdamTensors{NewAdamTensors(arena, "p", 256)} // 16 lines/tensor
	streams := AdamStreams(quads, AdamConfig{Cores: 2, BurstLines: 4})

	readCount := map[uint64]int{}
	writeCount := map[uint64]int{}
	total := 0
	for _, s := range streams {
		for _, a := range drain(s) {
			total++
			if a.Write {
				writeCount[a.Addr]++
			} else {
				readCount[a.Addr]++
			}
		}
	}
	// 16 lines x (4 reads + 3 writes) = 112 accesses.
	if total != 112 {
		t.Fatalf("total accesses = %d, want 112", total)
	}
	q := quads[0]
	for i := 0; i < 16; i++ {
		off := uint64(i * 64)
		for _, base := range []uint64{q.W.Addr, q.G.Addr, q.M.Addr, q.V.Addr} {
			if readCount[base+off] != 1 {
				t.Errorf("line %#x read %d times, want 1", base+off, readCount[base+off])
			}
		}
		for _, base := range []uint64{q.W.Addr, q.M.Addr, q.V.Addr} {
			if writeCount[base+off] != 1 {
				t.Errorf("line %#x written %d times, want 1", base+off, writeCount[base+off])
			}
		}
		if writeCount[q.G.Addr+off] != 0 {
			t.Error("gradient tensor must not be written by Adam")
		}
	}
}

func TestAdamStreamBurstGrouping(t *testing.T) {
	arena := tensor.NewArena(0, 64)
	quads := []AdamTensors{NewAdamTensors(arena, "p", 16*8)} // 8 lines
	streams := AdamStreams(quads, AdamConfig{Cores: 1, BurstLines: 4})
	accs := drain(streams[0])
	// First burst: 4 reads of w at consecutive lines.
	q := quads[0]
	for i := 0; i < 4; i++ {
		if accs[i].Addr != q.W.Addr+uint64(i*64) || accs[i].Write {
			t.Fatalf("access %d = %+v, want w read line %d", i, accs[i], i)
		}
	}
	// Next: 4 reads of g.
	for i := 0; i < 4; i++ {
		if accs[4+i].Addr != q.G.Addr+uint64(i*64) {
			t.Fatalf("access %d = %+v, want g read", 4+i, accs[4+i])
		}
	}
	// Burst 1 writes arrive before burst 2 reads.
	if !accs[16].Write || accs[16].Addr != q.W.Addr {
		t.Errorf("access 16 = %+v, want w write line 0", accs[16])
	}
	if accs[28].Write || accs[28].Addr != q.W.Addr+4*64 {
		t.Errorf("access 28 = %+v, want w read line 4", accs[28])
	}
}

func TestAdamStreamChunking(t *testing.T) {
	arena := tensor.NewArena(0, 64)
	quads := []AdamTensors{NewAdamTensors(arena, "p", 32*16)} // 32 lines
	streams := AdamStreams(quads, AdamConfig{Cores: 4})
	q := quads[0]
	for c, s := range streams {
		accs := drain(s)
		if len(accs) != 8*7 {
			t.Fatalf("core %d accesses = %d, want 56", c, len(accs))
		}
		wantFirst := q.W.Addr + uint64(c*8*64)
		if accs[0].Addr != wantFirst {
			t.Errorf("core %d first access %#x, want %#x", c, accs[0].Addr, wantFirst)
		}
	}
}

func TestAdamStreamChunkShiftRotates(t *testing.T) {
	arena := tensor.NewArena(0, 64)
	quads := []AdamTensors{NewAdamTensors(arena, "p", 32*16)} // 32 lines
	q := quads[0]

	// With a shift every line must still be read exactly once in total,
	// and the chunk boundary must have moved.
	countReads := func(shift int) map[uint64]int {
		counts := map[uint64]int{}
		for _, s := range AdamStreams(quads, AdamConfig{Cores: 2, ChunkShift: shift}) {
			for _, a := range drain(s) {
				if !a.Write && a.Addr >= q.W.Addr && a.Addr < q.W.End() {
					counts[a.Addr]++
				}
			}
		}
		return counts
	}
	for _, shift := range []int{0, 3, 16, 31} {
		counts := countReads(shift)
		for i := 0; i < 32; i++ {
			if counts[q.W.Addr+uint64(i*64)] != 1 {
				t.Fatalf("shift %d: line %d read %d times, want 1", shift, i, counts[q.W.Addr+uint64(i*64)])
			}
		}
	}
	// Core 0's first line moves with the shift.
	s0 := AdamStreams(quads, AdamConfig{Cores: 2, ChunkShift: 0})
	s3 := AdamStreams(quads, AdamConfig{Cores: 2, ChunkShift: 3})
	a0 := drain(s0[0])
	a3 := drain(s3[0])
	if a0[0].Addr == a3[0].Addr {
		t.Error("shift did not move chunk boundaries")
	}
}

func TestAdamStreamComputeOnGroupLeader(t *testing.T) {
	arena := tensor.NewArena(0, 64)
	quads := []AdamTensors{NewAdamTensors(arena, "p", 64)}
	streams := AdamStreams(quads, AdamConfig{Cores: 1, ComputePerLine: 100, BurstLines: 1})
	accs := drain(streams[0])
	if accs[0].Compute != 100 {
		t.Error("first access of a group must carry the compute gap")
	}
	if accs[1].Compute != 0 {
		t.Error("subsequent accesses of a group must not re-charge compute")
	}
}

func TestGEMMStream(t *testing.T) {
	s := GEMMStream(GEMMConfig{
		Base: 0x1000, Rows: 8, Cols: 32, TileRows: 4, TileCols: 16,
	})
	accs := drain(s)
	// 8x32 fp32 matrix = 1024B... accesses: per tile row 16*4/64 = 1 line;
	// 4 rows per tile; tiles: 2 cols x 2 rows = 4 tiles -> 16 accesses.
	if len(accs) != 16 {
		t.Fatalf("accesses = %d, want 16", len(accs))
	}
	// First tile, first row at base.
	if accs[0].Addr != 0x1000 {
		t.Errorf("first access %#x", accs[0].Addr)
	}
	// Second row of first tile at base + rowBytes (128).
	if accs[1].Addr != 0x1000+128 {
		t.Errorf("second access %#x, want %#x", accs[1].Addr, 0x1000+128)
	}
	// Second tile starts at column 16 -> base + 64.
	if accs[4].Addr != 0x1000+64 {
		t.Errorf("second tile first access %#x, want %#x", accs[4].Addr, 0x1000+64)
	}
}

func TestGEMMStreamRepeats(t *testing.T) {
	one := CountStream(GEMMStream(GEMMConfig{Base: 0, Rows: 8, Cols: 32, TileRows: 4, TileCols: 16}))
	three := CountStream(GEMMStream(GEMMConfig{Base: 0, Rows: 8, Cols: 32, TileRows: 4, TileCols: 16, Repeats: 3}))
	if three != 3*one {
		t.Errorf("repeats = %d, want %d", three, 3*one)
	}
}

// drainRuns collects all spans of a RunStream.
func drainRuns(s RunStream) []Run {
	var out []Run
	for {
		r, ok := s.NextRun()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// expandAll expands runs into their reference per-line accesses.
func expandAll(runs []Run) []Access {
	var out []Access
	for _, r := range runs {
		out = ExpandRun(out, r)
	}
	return out
}

// sameAccesses compares two access slices exactly.
func sameAccesses(t *testing.T, got, want []Access, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d accesses, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: access %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestAdamRunsMatchLines pins the tentpole equivalence: expanding the
// span-granular Adam stream reproduces the per-line stream exactly, for
// several chunkings including uneven tails and rotated seams.
func TestAdamRunsMatchLines(t *testing.T) {
	cases := []struct {
		name  string
		elems int
		cfg   AdamConfig
	}{
		{"one-core", 256, AdamConfig{Cores: 1, BurstLines: 4}},
		{"multi-core", 256, AdamConfig{Cores: 3, BurstLines: 4, ComputePerLine: 40}},
		{"shifted", 512, AdamConfig{Cores: 2, ChunkShift: 5, BurstLines: 8}},
		{"wrap-seam", 512, AdamConfig{Cores: 2, ChunkShift: 30, BurstLines: 8}},
		{"ragged-tail", 7 * 16, AdamConfig{Cores: 2, BurstLines: 8}},
		{"burst-1", 128, AdamConfig{Cores: 1, BurstLines: 1, ComputePerLine: 7}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			arena := tensor.NewArena(0, 64)
			quads := []AdamTensors{NewAdamTensors(arena, "a", tc.elems), NewAdamTensors(arena, "b", tc.elems/2)}
			lines := AdamStreams(quads, tc.cfg)
			spans := AdamStreams(quads, tc.cfg)
			for c := range lines {
				want := drain(lines[c])
				runs := drainRuns(spans[c].(RunStream))
				for _, r := range runs {
					if r.Lines <= 0 || r.Stride == 0 {
						t.Fatalf("degenerate run %+v", r)
					}
				}
				sameAccesses(t, expandAll(runs), want, "core")
			}
		})
	}
}

// TestAdamMixedConsumption pins that Next and NextRun share one cursor:
// nibbling lines off a stream and then switching to spans (and back)
// still covers exactly the per-line sequence.
func TestAdamMixedConsumption(t *testing.T) {
	arena := tensor.NewArena(0, 64)
	quads := []AdamTensors{NewAdamTensors(arena, "p", 256)}
	cfg := AdamConfig{Cores: 1, BurstLines: 4, ComputePerLine: 9}
	want := drain(AdamStreams(quads, cfg)[0])

	s := AdamStreams(quads, cfg)[0].(RunStream)
	var got []Access
	for i := 0; ; i++ {
		if i%3 == 0 { // nibble a line, then take the rest of the span
			a, ok := s.Next()
			if !ok {
				break
			}
			got = append(got, a)
			continue
		}
		r, ok := s.NextRun()
		if !ok {
			break
		}
		got = ExpandRun(got, r)
	}
	sameAccesses(t, got, want, "mixed")
}

// TestGEMMRunsMatchLines pins the GEMM stream's span/line equivalence,
// including a tile width that is not a whole number of lines.
func TestGEMMRunsMatchLines(t *testing.T) {
	for _, cfg := range []GEMMConfig{
		{Base: 0x1000, Rows: 8, Cols: 32, TileRows: 4, TileCols: 16},
		{Base: 0, Rows: 256, Cols: 256, TileRows: 64, TileCols: 64, Repeats: 2, ComputePerLine: 3},
		{Base: 0x40, Rows: 4, Cols: 8, TileRows: 2, TileCols: 8}, // 32B tile row < 1 line
	} {
		want := drain(GEMMStream(cfg))
		runs := drainRuns(GEMMStream(cfg).(RunStream))
		sameAccesses(t, expandAll(runs), want, "gemm")
	}
}

// TestRunSliceMixedCursor pins RunSlice's shared cursor semantics.
func TestRunSliceMixedCursor(t *testing.T) {
	rs := &RunSlice{Runs: []Run{
		{Addr: 0, Lines: 3, Stride: 64},
		{Addr: 0x1000, Lines: 2, Stride: 64, Write: true, Compute: 5},
	}}
	a, _ := rs.Next() // nibble line 0
	if a.Addr != 0 {
		t.Fatalf("nibble = %+v", a)
	}
	r, ok := rs.NextRun() // remainder of run 0
	if !ok || r.Addr != 64 || r.Lines != 2 {
		t.Fatalf("remainder run = %+v ok=%v", r, ok)
	}
	r, ok = rs.NextRun()
	if !ok || r.Addr != 0x1000 || r.Lines != 2 || !r.Write || r.Compute != 5 {
		t.Fatalf("second run = %+v", r)
	}
	if _, ok := rs.NextRun(); ok {
		t.Error("run stream did not terminate")
	}
	if _, ok := rs.Next(); ok {
		t.Error("line stream did not terminate")
	}
}

// TestCoalesceAccessesRoundTrip pins coalescing: maximal merging and
// exact round-trip expansion, with splits at write/compute changes and
// address discontinuities (region ends, tensor boundaries).
func TestCoalesceAccessesRoundTrip(t *testing.T) {
	accs := []Access{
		{Addr: 0}, {Addr: 64}, {Addr: 128}, // one run
		{Addr: 256},                                        // gap -> new run
		{Addr: 320, Write: true}, {Addr: 384, Write: true}, // write run
		{Addr: 448, Compute: 10}, // compute change -> new run
		{Addr: 0},                // backwards -> new run
	}
	runs := CoalesceAccesses(accs, 64)
	if len(runs) != 5 {
		t.Fatalf("runs = %d (%+v), want 5", len(runs), runs)
	}
	if runs[0].Lines != 3 || runs[2].Lines != 2 || !runs[2].Write {
		t.Fatalf("unexpected coalescing: %+v", runs)
	}
	sameAccesses(t, expandAll(runs), accs, "roundtrip")
}

// TestLineOnlyHidesRuns pins the oracle wrapper: the wrapped stream no
// longer satisfies RunStream but yields the same accesses.
func TestLineOnlyHidesRuns(t *testing.T) {
	mk := func() Stream {
		return GEMMStream(GEMMConfig{Base: 0, Rows: 8, Cols: 32, TileRows: 4, TileCols: 16})
	}
	if _, ok := mk().(RunStream); !ok {
		t.Fatal("GEMM stream should be a RunStream")
	}
	wrapped := LineOnly(mk())
	if _, ok := wrapped.(RunStream); ok {
		t.Fatal("LineOnly must hide RunStream")
	}
	sameAccesses(t, drain(wrapped), drain(mk()), "lineonly")
}
