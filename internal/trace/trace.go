// Package trace generates the virtual-address access streams the CPU
// simulator replays: the element-wise Adam optimizer sweep of ZeRO-Offload
// (Figure 4's tensor-shaped streaming) and tiled-GEMM access patterns
// (Section 6.2). Streams are per-core, matching the paper's observation
// that core VA streams stay regular even when caches shuffle the physical
// access order (Figure 9).
package trace

import (
	"tensortee/internal/sim"
	"tensortee/internal/tensor"
)

// Access is one line-granular memory operation issued by a core.
type Access struct {
	Addr  uint64
	Write bool
	// Compute is the compute gap the core spends before issuing this
	// access (the arithmetic between memory operations).
	Compute sim.Dur
}

// Stream yields a core's access sequence.
type Stream interface {
	// Next returns the next access; ok is false when the stream is done.
	Next() (a Access, ok bool)
}

// SliceStream replays a fixed slice (tests).
type SliceStream struct {
	Accesses []Access
	pos      int
}

// Next implements Stream.
func (s *SliceStream) Next() (Access, bool) {
	if s.pos >= len(s.Accesses) {
		return Access{}, false
	}
	a := s.Accesses[s.pos]
	s.pos++
	return a, true
}

// AdamTensors is the per-parameter-group tensor quad of the Adam step:
// fp32 weights, gradients, and the two moment tensors, all element-aligned
// (ZeRO-Offload keeps them on the CPU, Figure 1).
type AdamTensors struct {
	W, G, M, V *tensor.Tensor
}

// NewAdamTensors lays out a quad of Elems fp32 tensors in the arena.
func NewAdamTensors(a *tensor.Arena, name string, elems int) AdamTensors {
	sh := tensor.Shape{elems}
	return AdamTensors{
		W: a.AllocTensor(name+".w", sh, tensor.FP32),
		G: a.AllocTensor(name+".g", sh, tensor.FP32),
		M: a.AllocTensor(name+".m", sh, tensor.FP32),
		V: a.AllocTensor(name+".v", sh, tensor.FP32),
	}
}

// adamStream walks one core's chunk of an Adam sweep in prefetch-sized
// bursts: per burst window it reads BurstLines lines of w, then g, m, v,
// then stores back w, m, v. The per-stream burst grouping is what the L2
// streaming prefetchers of a real core produce at the memory controller,
// and it is what lets the 10-slot Tensor Filter observe four consecutive
// same-stride misses (Figure 10) even with 7 streams x 8 cores in flight.
type adamStream struct {
	quads      []AdamTensors
	lineBytes  int
	burst      int
	computePer sim.Dur // compute gap charged once per line group

	quad  int
	segs  []lineRange // this core's segments in the current quad
	seg   int
	line  int // start of the current burst window
	phase int // 0..6: read w,g,m,v then write w,m,v
	idx   int // line within the burst window

	segsOf func(q AdamTensors) []lineRange
}

// lineRange is a half-open [Start, End) span of line indices.
type lineRange struct{ Start, End int }

// AdamConfig shapes the per-core Adam streams.
type AdamConfig struct {
	LineBytes int
	// ComputePerLine is the arithmetic time per 64 B line group of the
	// fused Adam update (vectorized: ~tens of cycles).
	ComputePerLine sim.Dur
	// Cores is the thread count; each tensor is split into Cores chunks.
	Cores int
	// ChunkShift rotates the chunk boundaries by the given number of lines
	// (with wraparound, so every line is still covered exactly once),
	// modeling dynamic work scheduling across iterations — the moving
	// seams are what the Meta Table re-detects (Figure 18).
	ChunkShift int
	// BurstLines is the per-stream prefetch grouping (default 8 lines).
	BurstLines int
}

// AdamStreams builds one stream per core over the given parameter groups.
func AdamStreams(quads []AdamTensors, cfg AdamConfig) []Stream {
	if cfg.LineBytes <= 0 {
		cfg.LineBytes = 64
	}
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	if cfg.BurstLines <= 0 {
		cfg.BurstLines = 8
	}
	streams := make([]Stream, cfg.Cores)
	for c := 0; c < cfg.Cores; c++ {
		c := c
		streams[c] = &adamStream{
			quads:      quads,
			lineBytes:  cfg.LineBytes,
			burst:      cfg.BurstLines,
			computePer: cfg.ComputePerLine,
			segsOf: func(q AdamTensors) []lineRange {
				lines := q.W.Lines(cfg.LineBytes)
				per := (lines + cfg.Cores - 1) / cfg.Cores
				shift := 0
				if lines > 0 {
					shift = cfg.ChunkShift % lines
				}
				start := c*per + shift
				end := start + per
				if end > start+lines {
					end = start + lines
				}
				// Rotate into [0, lines), splitting at the wrap point. The
				// wrapped head segment is processed first so each core's
				// stream stays ascending (the LLC then emits writebacks in
				// roughly ascending order, which is what lets epochs close
				// on the tensor's true last line).
				var segs []lineRange
				if start >= lines {
					segs = append(segs, lineRange{start - lines, min(end-lines, lines)})
				} else if end <= lines {
					segs = append(segs, lineRange{start, end})
				} else {
					segs = append(segs, lineRange{0, end - lines}, lineRange{start, lines})
				}
				out := segs[:0]
				for _, s := range segs {
					if s.Start < s.End {
						out = append(out, s)
					}
				}
				return out
			},
		}
	}
	for _, s := range streams {
		s.(*adamStream).reset()
	}
	return streams
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (s *adamStream) reset() {
	s.quad = 0
	s.phase = 0
	s.idx = 0
	s.advanceQuad()
}

func (s *adamStream) advanceQuad() {
	for s.quad < len(s.quads) {
		segs := s.segsOf(s.quads[s.quad])
		if len(segs) > 0 {
			s.segs = segs
			s.seg = 0
			s.line = segs[0].Start
			return
		}
		s.quad++
	}
}

// advanceSeg moves to the next segment or quad after the current segment
// is exhausted.
func (s *adamStream) advanceSeg() {
	s.seg++
	if s.seg < len(s.segs) {
		s.line = s.segs[s.seg].Start
		return
	}
	s.quad++
	s.advanceQuad()
}

// burstLen returns the burst window size clipped to the segment end.
func (s *adamStream) burstLen() int {
	n := s.segs[s.seg].End - s.line
	if n > s.burst {
		n = s.burst
	}
	return n
}

// Next implements Stream: per burst window it emits BurstLines reads of w,
// then g, m, v, then the stores of w, m, v, then advances the window.
func (s *adamStream) Next() (Access, bool) {
	if s.quad >= len(s.quads) {
		return Access{}, false
	}
	q := s.quads[s.quad]
	bl := s.burstLen()
	off := uint64((s.line + s.idx) * s.lineBytes)
	var a Access
	switch s.phase {
	case 0:
		a = Access{Addr: q.W.Addr + off, Compute: s.computePer}
	case 1:
		a = Access{Addr: q.G.Addr + off}
	case 2:
		a = Access{Addr: q.M.Addr + off}
	case 3:
		a = Access{Addr: q.V.Addr + off}
	case 4:
		a = Access{Addr: q.W.Addr + off, Write: true}
	case 5:
		a = Access{Addr: q.M.Addr + off, Write: true}
	case 6:
		a = Access{Addr: q.V.Addr + off, Write: true}
	}
	s.idx++
	if s.idx >= bl {
		s.idx = 0
		s.phase++
		if s.phase == 7 {
			s.phase = 0
			s.line += bl
			if s.line >= s.segs[s.seg].End {
				s.advanceSeg()
			}
		}
	}
	return a, true
}

// GEMMConfig describes a tiled 2D matrix-multiply read pattern over one
// operand matrix (Section 6.2: 256x256 matrix, 64x64 tiles).
type GEMMConfig struct {
	Base      uint64 // matrix base address
	Rows      int    // D1
	Cols      int    // D2 (row-major fp32)
	TileRows  int    // d1
	TileCols  int    // d2
	LineBytes int
	// ComputePerLine is the MAC work overlapping each fetched line.
	ComputePerLine sim.Dur
	// Repeats re-walks the whole matrix (the k-loop of GEMM revisits
	// tiles; detection completes within the first walk).
	Repeats int
}

// GEMMStream yields the tile-ordered traversal of the matrix: tiles
// left-to-right, top-to-bottom; within a tile, row-major lines.
func GEMMStream(cfg GEMMConfig) Stream {
	if cfg.LineBytes <= 0 {
		cfg.LineBytes = 64
	}
	if cfg.Repeats <= 0 {
		cfg.Repeats = 1
	}
	var accs []Access
	rowBytes := uint64(cfg.Cols * 4)
	for rep := 0; rep < cfg.Repeats; rep++ {
		for tr := 0; tr < cfg.Rows; tr += cfg.TileRows {
			for tc := 0; tc < cfg.Cols; tc += cfg.TileCols {
				for r := 0; r < cfg.TileRows; r++ {
					rowStart := cfg.Base + uint64(tr+r)*rowBytes + uint64(tc*4)
					for b := 0; b < cfg.TileCols*4; b += cfg.LineBytes {
						accs = append(accs, Access{
							Addr:    rowStart + uint64(b),
							Compute: cfg.ComputePerLine,
						})
					}
				}
			}
		}
	}
	return &SliceStream{Accesses: accs}
}

// CountStream counts the accesses a stream yields (draining it).
func CountStream(s Stream) int {
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			return n
		}
		n++
	}
}
