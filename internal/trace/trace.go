// Package trace generates the virtual-address access streams the CPU
// simulator replays: the element-wise Adam optimizer sweep of ZeRO-Offload
// (Figure 4's tensor-shaped streaming) and tiled-GEMM access patterns
// (Section 6.2). Streams are per-core, matching the paper's observation
// that core VA streams stay regular even when caches shuffle the physical
// access order (Figure 9).
package trace

import (
	"tensortee/internal/sim"
	"tensortee/internal/tensor"
)

// Access is one line-granular memory operation issued by a core.
type Access struct {
	Addr  uint64
	Write bool
	// Compute is the compute gap the core spends before issuing this
	// access (the arithmetic between memory operations).
	Compute sim.Dur
}

// Stream yields a core's access sequence.
type Stream interface {
	// Next returns the next access; ok is false when the stream is done.
	Next() (a Access, ok bool)
}

// Run is a coalesced span of Lines accesses to consecutive cachelines
// (Addr, Addr+Stride, ...), all reads or all writes, each preceded by the
// same Compute gap. Runs are the span currency of the fast path: one Run
// replaces Lines individual Access values, and expanding a Run line by
// line (see ExpandRun) reproduces the per-line stream exactly — the
// parity tests and the golden harness pin this equivalence.
//
// Generators guarantee a Run never crosses a tensor boundary: every line
// of a Run belongs to the same tensor, which is what lets downstream
// span classifiers (tenanalyzer.ReadRun / mee WriteRun) treat it as a
// candidate uniform span.
type Run struct {
	Addr    uint64 // first line address
	Lines   int    // number of lines in the span
	Stride  uint64 // line spacing in bytes (the generator's line size)
	Write   bool
	Compute sim.Dur // compute gap charged before each line
}

// End returns one past the last byte-address the run's lines start at.
func (r Run) End() uint64 { return r.Addr + uint64(r.Lines)*r.Stride }

// RunStream is a Stream that can also yield coalesced spans. Next and
// NextRun share one cursor: a NextRun after a partial per-line read
// returns the remainder of the current span, so mixed consumption never
// skips or repeats a line.
type RunStream interface {
	Stream
	// NextRun returns the next coalesced span; ok is false when done.
	NextRun() (r Run, ok bool)
}

// ExpandRun appends the run's per-line accesses to dst and returns it —
// the reference expansion the oracle path and the parity tests use.
func ExpandRun(dst []Access, r Run) []Access {
	for i := 0; i < r.Lines; i++ {
		dst = append(dst, Access{
			Addr:    r.Addr + uint64(i)*r.Stride,
			Write:   r.Write,
			Compute: r.Compute,
		})
	}
	return dst
}

// lineOnly hides a stream's RunStream implementation, forcing consumers
// onto the per-line path — the line-granular oracle of the parity tests.
type lineOnly struct{ s Stream }

// LineOnly wraps s so that type assertions to RunStream fail: simulators
// then step line by line. Wrapping a plain Stream is a no-op
// indirection.
func LineOnly(s Stream) Stream { return &lineOnly{s: s} }

// Next implements Stream.
func (l *lineOnly) Next() (Access, bool) { return l.s.Next() }

// LineOnlyStreams wraps every stream in the slice with LineOnly.
func LineOnlyStreams(streams []Stream) []Stream {
	out := make([]Stream, len(streams))
	for i, s := range streams {
		out[i] = LineOnly(s)
	}
	return out
}

// SliceStream replays a fixed slice (tests). It is deliberately
// line-granular only (no NextRun): wrapping generated runs in a
// SliceStream is the simplest way to feed a simulator the oracle
// expansion of a coalesced stream.
type SliceStream struct {
	Accesses []Access
	pos      int
}

// Next implements Stream.
func (s *SliceStream) Next() (Access, bool) {
	if s.pos >= len(s.Accesses) {
		return Access{}, false
	}
	a := s.Accesses[s.pos]
	s.pos++
	return a, true
}

// RunSlice replays a fixed sequence of coalesced runs, serving both the
// span-granular and the line-granular interfaces from one cursor.
type RunSlice struct {
	Runs []Run
	pos  int // current run
	sub  int // lines of Runs[pos] already emitted by Next
}

// NextRun implements RunStream: it returns the remainder of the current
// run (the whole run when Next has not nibbled at it).
func (s *RunSlice) NextRun() (Run, bool) {
	for s.pos < len(s.Runs) {
		r := s.Runs[s.pos]
		sub := s.sub
		s.pos++
		s.sub = 0
		if sub >= r.Lines {
			continue // fully consumed by Next
		}
		r.Addr += uint64(sub) * r.Stride
		r.Lines -= sub
		return r, true
	}
	return Run{}, false
}

// Next implements Stream by expanding runs line by line.
func (s *RunSlice) Next() (Access, bool) {
	for s.pos < len(s.Runs) {
		r := s.Runs[s.pos]
		if s.sub < r.Lines {
			a := Access{Addr: r.Addr + uint64(s.sub)*r.Stride, Write: r.Write, Compute: r.Compute}
			s.sub++
			return a, true
		}
		s.pos++
		s.sub = 0
	}
	return Access{}, false
}

// CoalesceAccesses folds a per-line access slice into maximal runs:
// consecutive accesses with ascending stride-spaced addresses and equal
// Write/Compute merge. Expanding the result reproduces the input exactly.
func CoalesceAccesses(accs []Access, stride uint64) []Run {
	if stride == 0 {
		stride = 64
	}
	var runs []Run
	for _, a := range accs {
		if n := len(runs); n > 0 {
			last := &runs[n-1]
			if a.Addr == last.Addr+uint64(last.Lines)*stride &&
				a.Write == last.Write && a.Compute == last.Compute {
				last.Lines++
				continue
			}
		}
		runs = append(runs, Run{Addr: a.Addr, Lines: 1, Stride: stride, Write: a.Write, Compute: a.Compute})
	}
	return runs
}

// AdamTensors is the per-parameter-group tensor quad of the Adam step:
// fp32 weights, gradients, and the two moment tensors, all element-aligned
// (ZeRO-Offload keeps them on the CPU, Figure 1).
type AdamTensors struct {
	W, G, M, V *tensor.Tensor
}

// NewAdamTensors lays out a quad of Elems fp32 tensors in the arena.
func NewAdamTensors(a *tensor.Arena, name string, elems int) AdamTensors {
	sh := tensor.Shape{elems}
	return AdamTensors{
		W: a.AllocTensor(name+".w", sh, tensor.FP32),
		G: a.AllocTensor(name+".g", sh, tensor.FP32),
		M: a.AllocTensor(name+".m", sh, tensor.FP32),
		V: a.AllocTensor(name+".v", sh, tensor.FP32),
	}
}

// adamStream walks one core's chunk of an Adam sweep in prefetch-sized
// bursts: per burst window it reads BurstLines lines of w, then g, m, v,
// then stores back w, m, v. The per-stream burst grouping is what the L2
// streaming prefetchers of a real core produce at the memory controller,
// and it is what lets the 10-slot Tensor Filter observe four consecutive
// same-stride misses (Figure 10) even with 7 streams x 8 cores in flight.
type adamStream struct {
	quads      []AdamTensors
	lineBytes  int
	burst      int
	computePer sim.Dur // compute gap charged once per line group

	quad  int
	segs  []lineRange // this core's segments in the current quad
	seg   int
	line  int // start of the current burst window
	phase int // 0..6: read w,g,m,v then write w,m,v
	idx   int // line within the burst window

	segsOf func(q AdamTensors) []lineRange
}

// lineRange is a half-open [Start, End) span of line indices.
type lineRange struct{ Start, End int }

// AdamConfig shapes the per-core Adam streams.
type AdamConfig struct {
	LineBytes int
	// ComputePerLine is the arithmetic time per 64 B line group of the
	// fused Adam update (vectorized: ~tens of cycles).
	ComputePerLine sim.Dur
	// Cores is the thread count; each tensor is split into Cores chunks.
	Cores int
	// ChunkShift rotates the chunk boundaries by the given number of lines
	// (with wraparound, so every line is still covered exactly once),
	// modeling dynamic work scheduling across iterations — the moving
	// seams are what the Meta Table re-detects (Figure 18).
	ChunkShift int
	// BurstLines is the per-stream prefetch grouping (default 8 lines).
	BurstLines int
}

// AdamStreams builds one stream per core over the given parameter groups.
func AdamStreams(quads []AdamTensors, cfg AdamConfig) []Stream {
	if cfg.LineBytes <= 0 {
		cfg.LineBytes = 64
	}
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	if cfg.BurstLines <= 0 {
		cfg.BurstLines = 8
	}
	streams := make([]Stream, cfg.Cores)
	for c := 0; c < cfg.Cores; c++ {
		c := c
		streams[c] = &adamStream{
			quads:      quads,
			lineBytes:  cfg.LineBytes,
			burst:      cfg.BurstLines,
			computePer: cfg.ComputePerLine,
			segsOf: func(q AdamTensors) []lineRange {
				lines := q.W.Lines(cfg.LineBytes)
				per := (lines + cfg.Cores - 1) / cfg.Cores
				shift := 0
				if lines > 0 {
					shift = cfg.ChunkShift % lines
				}
				start := c*per + shift
				end := start + per
				if end > start+lines {
					end = start + lines
				}
				// Rotate into [0, lines), splitting at the wrap point. The
				// wrapped head segment is processed first so each core's
				// stream stays ascending (the LLC then emits writebacks in
				// roughly ascending order, which is what lets epochs close
				// on the tensor's true last line).
				var segs []lineRange
				if start >= lines {
					segs = append(segs, lineRange{start - lines, min(end-lines, lines)})
				} else if end <= lines {
					segs = append(segs, lineRange{start, end})
				} else {
					segs = append(segs, lineRange{0, end - lines}, lineRange{start, lines})
				}
				out := segs[:0]
				for _, s := range segs {
					if s.Start < s.End {
						out = append(out, s)
					}
				}
				return out
			},
		}
	}
	for _, s := range streams {
		s.(*adamStream).reset()
	}
	return streams
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (s *adamStream) reset() {
	s.quad = 0
	s.phase = 0
	s.idx = 0
	s.advanceQuad()
}

func (s *adamStream) advanceQuad() {
	for s.quad < len(s.quads) {
		segs := s.segsOf(s.quads[s.quad])
		if len(segs) > 0 {
			s.segs = segs
			s.seg = 0
			s.line = segs[0].Start
			return
		}
		s.quad++
	}
}

// advanceSeg moves to the next segment or quad after the current segment
// is exhausted.
func (s *adamStream) advanceSeg() {
	s.seg++
	if s.seg < len(s.segs) {
		s.line = s.segs[s.seg].Start
		return
	}
	s.quad++
	s.advanceQuad()
}

// burstLen returns the burst window size clipped to the segment end.
func (s *adamStream) burstLen() int {
	n := s.segs[s.seg].End - s.line
	if n > s.burst {
		n = s.burst
	}
	return n
}

// Next implements Stream: per burst window it emits BurstLines reads of w,
// then g, m, v, then the stores of w, m, v, then advances the window.
func (s *adamStream) Next() (Access, bool) {
	if s.quad >= len(s.quads) {
		return Access{}, false
	}
	q := s.quads[s.quad]
	bl := s.burstLen()
	off := uint64((s.line + s.idx) * s.lineBytes)
	var a Access
	switch s.phase {
	case 0:
		a = Access{Addr: q.W.Addr + off, Compute: s.computePer}
	case 1:
		a = Access{Addr: q.G.Addr + off}
	case 2:
		a = Access{Addr: q.M.Addr + off}
	case 3:
		a = Access{Addr: q.V.Addr + off}
	case 4:
		a = Access{Addr: q.W.Addr + off, Write: true}
	case 5:
		a = Access{Addr: q.M.Addr + off, Write: true}
	case 6:
		a = Access{Addr: q.V.Addr + off, Write: true}
	}
	s.idx++
	if s.idx >= bl {
		s.idx = 0
		s.phase++
		if s.phase == 7 {
			s.phase = 0
			s.line += bl
			if s.line >= s.segs[s.seg].End {
				s.advanceSeg()
			}
		}
	}
	return a, true
}

// NextRun implements RunStream: one run per (phase, burst window) — up to
// BurstLines consecutive lines of a single tensor, so a run never crosses
// a tensor boundary. It advances the same cursor as Next, emitting the
// remainder of the current phase when Next already consumed part of it.
func (s *adamStream) NextRun() (Run, bool) {
	if s.quad >= len(s.quads) {
		return Run{}, false
	}
	q := s.quads[s.quad]
	bl := s.burstLen()
	off := uint64((s.line + s.idx) * s.lineBytes)
	r := Run{Lines: bl - s.idx, Stride: uint64(s.lineBytes)}
	switch s.phase {
	case 0:
		r.Addr, r.Compute = q.W.Addr+off, s.computePer
	case 1:
		r.Addr = q.G.Addr + off
	case 2:
		r.Addr = q.M.Addr + off
	case 3:
		r.Addr = q.V.Addr + off
	case 4:
		r.Addr, r.Write = q.W.Addr+off, true
	case 5:
		r.Addr, r.Write = q.M.Addr+off, true
	case 6:
		r.Addr, r.Write = q.V.Addr+off, true
	}
	s.idx = 0
	s.phase++
	if s.phase == 7 {
		s.phase = 0
		s.line += bl
		if s.line >= s.segs[s.seg].End {
			s.advanceSeg()
		}
	}
	return r, true
}

// GEMMConfig describes a tiled 2D matrix-multiply read pattern over one
// operand matrix (Section 6.2: 256x256 matrix, 64x64 tiles).
type GEMMConfig struct {
	Base      uint64 // matrix base address
	Rows      int    // D1
	Cols      int    // D2 (row-major fp32)
	TileRows  int    // d1
	TileCols  int    // d2
	LineBytes int
	// ComputePerLine is the MAC work overlapping each fetched line.
	ComputePerLine sim.Dur
	// Repeats re-walks the whole matrix (the k-loop of GEMM revisits
	// tiles; detection completes within the first walk).
	Repeats int
}

// GEMMStream yields the tile-ordered traversal of the matrix: tiles
// left-to-right, top-to-bottom; within a tile, row-major lines. The
// stream is run-coalesced: each tile row is one contiguous span (a tile
// row never crosses the matrix row it lives in), so simulators on the
// span path replay it without per-line stream calls. Expanding the runs
// reproduces the historical per-line sequence exactly.
func GEMMStream(cfg GEMMConfig) Stream {
	if cfg.LineBytes <= 0 {
		cfg.LineBytes = 64
	}
	if cfg.Repeats <= 0 {
		cfg.Repeats = 1
	}
	var runs []Run
	rowBytes := uint64(cfg.Cols * 4)
	linesPerTileRow := (cfg.TileCols*4 + cfg.LineBytes - 1) / cfg.LineBytes
	for rep := 0; rep < cfg.Repeats; rep++ {
		for tr := 0; tr < cfg.Rows; tr += cfg.TileRows {
			for tc := 0; tc < cfg.Cols; tc += cfg.TileCols {
				for r := 0; r < cfg.TileRows; r++ {
					runs = append(runs, Run{
						Addr:    cfg.Base + uint64(tr+r)*rowBytes + uint64(tc*4),
						Lines:   linesPerTileRow,
						Stride:  uint64(cfg.LineBytes),
						Compute: cfg.ComputePerLine,
					})
				}
			}
		}
	}
	return &RunSlice{Runs: runs}
}

// CountStream counts the accesses a stream yields (draining it).
func CountStream(s Stream) int {
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			return n
		}
		n++
	}
}
