package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDTypeSize(t *testing.T) {
	if FP32.Size() != 4 || FP16.Size() != 2 || INT8.Size() != 1 {
		t.Error("dtype sizes wrong")
	}
	if FP32.String() != "fp32" || FP16.String() != "fp16" || INT8.String() != "int8" {
		t.Error("dtype strings wrong")
	}
}

func TestShape(t *testing.T) {
	s := Shape{3, 4, 5}
	if s.Elems() != 60 {
		t.Errorf("Elems = %d, want 60", s.Elems())
	}
	if !s.Equal(Shape{3, 4, 5}) {
		t.Error("Equal false negative")
	}
	if s.Equal(Shape{3, 4}) || s.Equal(Shape{3, 4, 6}) {
		t.Error("Equal false positive")
	}
	if s.String() != "[3x4x5]" {
		t.Errorf("String = %q", s.String())
	}
	if (Shape{}).Elems() != 1 {
		t.Error("empty shape should have one element")
	}
}

func TestTensorGeometry(t *testing.T) {
	tr := New("w", 0x1000, Shape{128, 64}, FP32)
	if tr.Elems() != 8192 {
		t.Errorf("Elems = %d", tr.Elems())
	}
	if tr.Bytes() != 32768 {
		t.Errorf("Bytes = %d", tr.Bytes())
	}
	if tr.End() != 0x1000+32768 {
		t.Errorf("End = %#x", tr.End())
	}
	if !tr.Contains(0x1000) || !tr.Contains(tr.End()-1) || tr.Contains(tr.End()) || tr.Contains(0xfff) {
		t.Error("Contains boundary behaviour wrong")
	}
	if tr.Lines(64) != 512 {
		t.Errorf("Lines = %d, want 512", tr.Lines(64))
	}
}

func TestTensorLinesRoundsUp(t *testing.T) {
	tr := New("t", 0, Shape{17}, FP32) // 68 bytes
	if tr.Lines(64) != 2 {
		t.Errorf("Lines = %d, want 2", tr.Lines(64))
	}
}

func TestFloat32RoundTrip(t *testing.T) {
	tr := NewWithData("x", 0, Shape{16}, FP32)
	want := make([]float32, 16)
	for i := range want {
		want[i] = float32(i)*1.5 - 7
	}
	tr.SetFloat32s(want)
	got := tr.Float32s()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("elem %d: got %g want %g", i, got[i], want[i])
		}
	}
	tr.SetFloat32At(3, 42.5)
	if tr.Float32At(3) != 42.5 {
		t.Error("SetFloat32At/Float32At broken")
	}
}

func TestFloat32PanicsOnWrongDType(t *testing.T) {
	tr := NewWithData("h", 0, Shape{4}, FP16)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for fp32 access on fp16 tensor")
		}
	}()
	tr.Float32At(0)
}

func TestF16RoundTripExactValues(t *testing.T) {
	// Values exactly representable in fp16 must round-trip bit-perfectly.
	cases := []float32{0, 1, -1, 0.5, 2, 1024, 65504 /*max fp16*/, -65504, 0.25, 6.1035156e-05 /*min normal*/}
	for _, v := range cases {
		got := F16ToF32(F32ToF16(v))
		if got != v {
			t.Errorf("fp16 roundtrip %g -> %g", v, got)
		}
	}
}

func TestF16Specials(t *testing.T) {
	inf := float32(math.Inf(1))
	if F16ToF32(F32ToF16(inf)) != inf {
		t.Error("+Inf lost")
	}
	ninf := float32(math.Inf(-1))
	if F16ToF32(F32ToF16(ninf)) != ninf {
		t.Error("-Inf lost")
	}
	if !math.IsNaN(float64(F16ToF32(F32ToF16(float32(math.NaN()))))) {
		t.Error("NaN lost")
	}
	// overflow saturates to Inf
	if F16ToF32(F32ToF16(1e6)) != inf {
		t.Error("overflow should go to +Inf")
	}
	// tiny values underflow to zero with sign preserved
	if F32ToF16(1e-10) != 0 {
		t.Error("underflow should be +0")
	}
	if F32ToF16(-1e-10) != 0x8000 {
		t.Error("negative underflow should be -0")
	}
}

func TestF16Subnormals(t *testing.T) {
	// Smallest positive fp16 subnormal is 2^-24.
	v := float32(math.Ldexp(1, -24))
	h := F32ToF16(v)
	if h != 1 {
		t.Errorf("2^-24 encodes to %#x, want 0x0001", h)
	}
	if F16ToF32(h) != v {
		t.Errorf("subnormal decode: %g", F16ToF32(h))
	}
}

// Property: fp32->fp16->fp32 relative error is bounded by 2^-11 for values
// in the fp16 normal range.
func TestF16RelativeErrorProperty(t *testing.T) {
	f := func(seed uint32) bool {
		// Map seed to a value in ~[1e-3, 6e4)
		v := float32(1e-3 + float64(seed%1000000)/1000000.0*6e4)
		back := F16ToF32(F32ToF16(v))
		rel := math.Abs(float64(back-v)) / math.Abs(float64(v))
		return rel <= 1.0/2048.0+1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: rounding is to nearest — the fp16 result is one of the two
// neighbouring representables, whichever is closer (ties allowed either way
// here; exact tie-to-even is covered by the dedicated test).
func TestF16MonotoneProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		// Interpret as positive normal halfs to get ordered pairs.
		x := F16ToF32(a & 0x7bff)
		y := F16ToF32(b & 0x7bff)
		if x > y {
			x, y = y, x
		}
		return F32ToF16(x) <= F32ToF16(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestF16TieToEven(t *testing.T) {
	// 1 + 2^-11 is exactly halfway between 1.0 and the next fp16 (1+2^-10):
	// must round to even mantissa (1.0).
	v := float32(1.0 + math.Ldexp(1, -11))
	if got := F32ToF16(v); got != 0x3c00 {
		t.Errorf("tie rounding: got %#x, want 0x3c00 (1.0)", got)
	}
	// 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9: rounds up to even.
	v = float32(1.0 + 3*math.Ldexp(1, -11))
	if got := F32ToF16(v); got != 0x3c02 {
		t.Errorf("tie rounding: got %#x, want 0x3c02", got)
	}
}

func TestRegion(t *testing.T) {
	r := Region{Base: 100, Bytes: 50}
	if !r.Contains(100) || !r.Contains(149) || r.Contains(150) || r.Contains(99) {
		t.Error("Region.Contains broken")
	}
	if !r.Overlaps(Region{Base: 140, Bytes: 20}) {
		t.Error("overlapping regions not detected")
	}
	if r.Overlaps(Region{Base: 150, Bytes: 10}) {
		t.Error("adjacent regions must not overlap")
	}
	if !r.Overlaps(Region{Base: 90, Bytes: 11}) {
		t.Error("left overlap not detected")
	}
}

func TestArenaAlignment(t *testing.T) {
	a := NewArena(10, 64)
	p1 := a.Alloc(1)
	p2 := a.Alloc(65)
	p3 := a.Alloc(64)
	if p1%64 != 0 || p2%64 != 0 || p3%64 != 0 {
		t.Errorf("allocations not aligned: %d %d %d", p1, p2, p3)
	}
	if p1 != 64 {
		t.Errorf("first alloc = %d, want 64 (rounded from 10)", p1)
	}
	if p2 != 128 {
		t.Errorf("second alloc = %d, want 128", p2)
	}
	if p3 != 256 {
		t.Errorf("third alloc = %d, want 256 (65 rounds to 128)", p3)
	}
}

func TestArenaTensors(t *testing.T) {
	a := NewArena(0, 64)
	t1 := a.AllocTensor("a", Shape{10}, FP32) // 40 bytes
	t2 := a.AllocTensor("b", Shape{10}, FP32)
	if t1.Addr == t2.Addr {
		t.Error("tensors must not alias")
	}
	if t2.Addr != 64 {
		t.Errorf("second tensor at %d, want 64", t2.Addr)
	}
	if Region.Overlaps(Region{Base: t1.Addr, Bytes: t1.Bytes()}, Region{Base: t2.Addr, Bytes: t2.Bytes()}) {
		t.Error("arena produced overlapping tensors")
	}
}

func TestArenaBadAlignPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two alignment")
		}
	}()
	NewArena(0, 48)
}

// Property: arena allocations never overlap and are always aligned.
func TestArenaProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		a := NewArena(0, 64)
		type span struct{ base, end uint64 }
		var spans []span
		for _, s := range sizes {
			sz := int(s%4096) + 1
			base := a.Alloc(sz)
			if base%64 != 0 {
				return false
			}
			end := base + uint64(sz)
			for _, sp := range spans {
				if base < sp.end && sp.base < end {
					return false
				}
			}
			spans = append(spans, span{base, end})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
