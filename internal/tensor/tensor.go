// Package tensor provides the tensor abstraction shared by the workload
// generators, the TEE metadata structures, and the transfer protocol:
// a contiguous region of typed elements with a shape, living at a virtual
// address inside an enclave's protected region.
package tensor

import (
	"fmt"
	"math"
)

// DType is an element type.
type DType int

const (
	// FP32 is a 4-byte IEEE-754 float (weights master copy, gradients,
	// optimizer states on the CPU side of ZeRO-Offload).
	FP32 DType = iota
	// FP16 is a 2-byte half float (weights shipped back to the NPU).
	FP16
	// INT8 is a 1-byte integer (used by quantized workloads and tests).
	INT8
)

func (d DType) String() string {
	switch d {
	case FP32:
		return "fp32"
	case FP16:
		return "fp16"
	case INT8:
		return "int8"
	default:
		return fmt.Sprintf("DType(%d)", int(d))
	}
}

// Size returns the element size in bytes.
func (d DType) Size() int {
	switch d {
	case FP32:
		return 4
	case FP16:
		return 2
	case INT8:
		return 1
	default:
		panic(fmt.Sprintf("tensor: unknown dtype %d", int(d)))
	}
}

// Shape is a tensor shape (row-major, up to 3 dims in this system, matching
// the Meta Table's 1D/2D/3D merge directions).
type Shape []int

// Elems returns the element count (1 for an empty shape).
func (s Shape) Elems() int {
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}

// Equal reports whether two shapes match exactly.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

func (s Shape) String() string {
	out := "["
	for i, d := range s {
		if i > 0 {
			out += "x"
		}
		out += fmt.Sprint(d)
	}
	return out + "]"
}

// Tensor is a named, typed, shaped region at a virtual address. Data is
// optional: timing-only simulations leave it nil, functional security tests
// allocate it.
type Tensor struct {
	Name  string
	Addr  uint64 // virtual address of first byte within the enclave
	Shape Shape
	DType DType
	Data  []byte // optional backing plaintext, len == Bytes()
}

// New creates a tensor descriptor without backing data.
func New(name string, addr uint64, shape Shape, dt DType) *Tensor {
	return &Tensor{Name: name, Addr: addr, Shape: shape, DType: dt}
}

// NewWithData creates a tensor with zeroed backing data.
func NewWithData(name string, addr uint64, shape Shape, dt DType) *Tensor {
	t := New(name, addr, shape, dt)
	t.Data = make([]byte, t.Bytes())
	return t
}

// Elems returns the number of elements.
func (t *Tensor) Elems() int { return t.Shape.Elems() }

// Bytes returns the byte footprint of the tensor.
func (t *Tensor) Bytes() int { return t.Elems() * t.DType.Size() }

// End returns one past the last byte address.
func (t *Tensor) End() uint64 { return t.Addr + uint64(t.Bytes()) }

// Contains reports whether addr falls inside the tensor.
func (t *Tensor) Contains(addr uint64) bool { return addr >= t.Addr && addr < t.End() }

// Lines returns the number of cachelines the tensor spans assuming the
// tensor is line-aligned (the allocator in this system aligns all tensors).
func (t *Tensor) Lines(lineBytes int) int {
	return (t.Bytes() + lineBytes - 1) / lineBytes
}

func (t *Tensor) String() string {
	return fmt.Sprintf("%s%s:%s@0x%x", t.Name, t.Shape, t.DType, t.Addr)
}

// --- fp32 element access ------------------------------------------------

// Float32At reads element i of an FP32 tensor with backing data.
func (t *Tensor) Float32At(i int) float32 {
	if t.DType != FP32 {
		panic("tensor: Float32At on non-fp32 tensor")
	}
	off := i * 4
	bits := uint32(t.Data[off]) | uint32(t.Data[off+1])<<8 |
		uint32(t.Data[off+2])<<16 | uint32(t.Data[off+3])<<24
	return math.Float32frombits(bits)
}

// SetFloat32At writes element i of an FP32 tensor with backing data.
func (t *Tensor) SetFloat32At(i int, v float32) {
	if t.DType != FP32 {
		panic("tensor: SetFloat32At on non-fp32 tensor")
	}
	bits := math.Float32bits(v)
	off := i * 4
	t.Data[off] = byte(bits)
	t.Data[off+1] = byte(bits >> 8)
	t.Data[off+2] = byte(bits >> 16)
	t.Data[off+3] = byte(bits >> 24)
}

// Float32s decodes the whole FP32 tensor into a fresh slice.
func (t *Tensor) Float32s() []float32 {
	out := make([]float32, t.Elems())
	for i := range out {
		out[i] = t.Float32At(i)
	}
	return out
}

// SetFloat32s encodes vals into the tensor's backing data.
func (t *Tensor) SetFloat32s(vals []float32) {
	if len(vals) != t.Elems() {
		panic(fmt.Sprintf("tensor: SetFloat32s length %d != elems %d", len(vals), t.Elems()))
	}
	for i, v := range vals {
		t.SetFloat32At(i, v)
	}
}

// --- fp16 conversion ----------------------------------------------------

// F32ToF16 converts an IEEE-754 float32 to binary16 bits with
// round-to-nearest-even, handling subnormals, infinities, and NaN.
func F32ToF16(f float32) uint16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23) & 0xff
	man := bits & 0x7fffff

	switch {
	case exp == 0xff: // Inf or NaN
		if man != 0 {
			return sign | 0x7e00 // quiet NaN
		}
		return sign | 0x7c00
	case exp > 142: // overflow to Inf (unbiased exp > 15)
		return sign | 0x7c00
	case exp >= 113: // normal half range
		// re-bias: half exponent = exp - 127 + 15
		hexp := uint16(exp-112) << 10
		hman := uint16(man >> 13)
		// round to nearest even on the 13 dropped bits
		round := man & 0x1fff
		if round > 0x1000 || (round == 0x1000 && hman&1 == 1) {
			// may carry into the exponent; that is still correct encoding
			return sign + (hexp | hman) + 1
		}
		return sign | hexp | hman
	case exp >= 103: // subnormal half
		shift := uint32(126 - exp) // 14..23
		full := man | 0x800000
		hman := uint16(full >> shift)
		rem := full & ((1 << shift) - 1)
		half := uint32(1) << (shift - 1)
		if rem > half || (rem == half && hman&1 == 1) {
			// carry into the exponent yields the minimum normal — still a
			// correct encoding
			return sign + hman + 1
		}
		return sign | hman
	default: // underflow to zero
		return sign
	}
}

// F16ToF32 converts binary16 bits to float32 exactly.
func F16ToF32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1f
	man := uint32(h & 0x3ff)

	switch {
	case exp == 0x1f: // Inf/NaN
		return math.Float32frombits(sign | 0x7f800000 | man<<13)
	case exp == 0: // zero or subnormal
		if man == 0 {
			return math.Float32frombits(sign)
		}
		// normalize subnormal
		e := uint32(127 - 15 + 1)
		for man&0x400 == 0 {
			man <<= 1
			e--
		}
		man &= 0x3ff
		return math.Float32frombits(sign | e<<23 | man<<13)
	default:
		return math.Float32frombits(sign | (exp+112)<<23 | man<<13)
	}
}

// Region is a contiguous address range [Base, Base+Bytes). It is the unit
// handed to the transfer protocol and the Meta Table hint interface.
type Region struct {
	Base  uint64
	Bytes int
}

// Contains reports whether addr is inside the region.
func (r Region) Contains(addr uint64) bool {
	return addr >= r.Base && addr < r.Base+uint64(r.Bytes)
}

// Overlaps reports whether two regions share any byte.
func (r Region) Overlaps(o Region) bool {
	return r.Base < o.Base+uint64(o.Bytes) && o.Base < r.Base+uint64(r.Bytes)
}

// Arena is a bump allocator for laying out tensors in an enclave's virtual
// address space with cacheline alignment. It exists so that workloads,
// the Meta Table, and the secure memory all agree on addresses.
type Arena struct {
	next  uint64
	align uint64
}

// NewArena creates an arena starting at base, aligning to align bytes.
func NewArena(base uint64, align int) *Arena {
	if align <= 0 || align&(align-1) != 0 {
		panic(fmt.Sprintf("tensor: arena alignment must be power of two, got %d", align))
	}
	a := &Arena{next: base, align: uint64(align)}
	a.next = a.roundUp(a.next)
	return a
}

func (a *Arena) roundUp(x uint64) uint64 {
	return (x + a.align - 1) &^ (a.align - 1)
}

// Alloc reserves size bytes and returns the base address.
func (a *Arena) Alloc(size int) uint64 {
	addr := a.next
	a.next = a.roundUp(a.next + uint64(size))
	return addr
}

// AllocTensor creates a tensor descriptor placed in this arena.
func (a *Arena) AllocTensor(name string, shape Shape, dt DType) *Tensor {
	t := New(name, 0, shape, dt)
	t.Addr = a.Alloc(t.Bytes())
	return t
}

// Next reports the next free address (for footprint accounting).
func (a *Arena) Next() uint64 { return a.next }
