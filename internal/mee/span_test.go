package mee

import (
	"math/rand"
	"testing"

	"tensortee/internal/sim"
)

// TestRunMethodsMatchPerLine pins the span entry points against n
// sequential single-line calls on a twin engine: identical Stats,
// identical metadata-cache counters, identical DRAM state, and the run's
// aggregate time equal to the per-line maximum. The spans deliberately
// straddle metadata-line (8-slot) group boundaries.
func TestRunMethodsMatchPerLine(t *testing.T) {
	type op struct {
		addr    uint64
		n       int
		write   bool
		outcome TensorOutcome // tensor modes only
	}
	rng := rand.New(rand.NewSource(3))
	var ops []op
	for i := 0; i < 120; i++ {
		ops = append(ops, op{
			addr:    uint64(rng.Intn(1<<12)) * 64, // crosses slot groups freely
			n:       1 + rng.Intn(20),
			write:   rng.Intn(2) == 0,
			outcome: TensorOutcome(rng.Intn(3)),
		})
	}

	for _, mode := range []Mode{ModeOff, ModeSGX, ModeTensor} {
		spanE, spanMem := newTestEngine(mode)
		lineE, lineMem := newTestEngine(mode)
		at := sim.Time(0)
		for _, o := range ops {
			at += 1000
			var runT, lineT sim.Time
			var runR, lineR ReadResult
			switch {
			case mode == ModeTensor && o.write:
				runT = spanE.TensorWriteRun(at, o.addr, o.n, o.outcome)
				for i := 0; i < o.n; i++ {
					lineT = sim.Max(lineT, lineE.TensorWrite(at, o.addr+uint64(i)*64, o.outcome))
				}
			case mode == ModeTensor:
				runR = spanE.TensorReadRun(at, o.addr, o.n, o.outcome)
				for i := 0; i < o.n; i++ {
					r := lineE.TensorRead(at, o.addr+uint64(i)*64, o.outcome)
					lineR.DataReady = sim.Max(lineR.DataReady, r.DataReady)
					lineR.Verified = sim.Max(lineR.Verified, r.Verified)
				}
			case o.write:
				runT = spanE.WriteRun(at, o.addr, o.n)
				for i := 0; i < o.n; i++ {
					lineT = sim.Max(lineT, lineE.Write(at, o.addr+uint64(i)*64))
				}
			default:
				runR = spanE.ReadRun(at, o.addr, o.n)
				for i := 0; i < o.n; i++ {
					r := lineE.Read(at, o.addr+uint64(i)*64)
					lineR.DataReady = sim.Max(lineR.DataReady, r.DataReady)
					lineR.Verified = sim.Max(lineR.Verified, r.Verified)
				}
			}
			if runT != lineT || runR != lineR {
				t.Fatalf("mode %v op %+v: span time %v/%+v, per-line %v/%+v", mode, o, runT, runR, lineT, lineR)
			}
		}
		if spanE.Stats() != lineE.Stats() {
			t.Fatalf("mode %v: stats diverge\nspan: %+v\nline: %+v", mode, spanE.Stats(), lineE.Stats())
		}
		if spanE.MetaCacheStats() != lineE.MetaCacheStats() {
			t.Fatalf("mode %v: metadata cache diverges", mode)
		}
		if spanMem.Stats() != lineMem.Stats() {
			t.Fatalf("mode %v: DRAM state diverges\nspan: %+v\nline: %+v", mode, spanMem.Stats(), lineMem.Stats())
		}
	}
}

// TestSpanGroupsCoversSlotGeometry pins the 8-slot group walk: every
// line is visited once, groups never cross a metadata line, and group
// VN/MAC addresses match the per-line layout answers.
func TestSpanGroupsCoversSlotGeometry(t *testing.T) {
	e, _ := newTestEngine(ModeSGX)
	for _, tc := range []struct{ start, n int }{
		{0, 16}, // aligned
		{5, 17}, // straddles three groups
		{7, 1},  // single line at group end
		{3, 4},  // inside one group
	} {
		var visited int
		e.spanGroups(uint64(tc.start)*64, tc.n, func(base uint64, lines int, vnLine, macLine uint64) {
			for j := 0; j < lines; j++ {
				a := base + uint64(j)*64
				if e.Layout.VNLineAddr(a) != vnLine || e.Layout.MACLineAddr(a) != macLine {
					t.Fatalf("line %#x: group metadata addresses diverge from layout", a)
				}
			}
			first, last := e.Layout.lineIdx(base), e.Layout.lineIdx(base+uint64(lines-1)*64)
			if first/8 != last/8 {
				t.Fatalf("group [%d,%d] crosses a metadata line", first, last)
			}
			visited += lines
		})
		if visited != tc.n {
			t.Fatalf("start %d n %d: visited %d lines", tc.start, tc.n, visited)
		}
	}
}
