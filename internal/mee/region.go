// Package mee implements the Memory Encryption Engine at the boundary of
// the trusted chip: the functional encrypted-memory region (real AES-CTR
// ciphertext, per-line version numbers and MACs, Bonsai Merkle tree) and the
// timing engine that charges metadata traffic and crypto latency per access.
//
// Two protection schemes are provided, matching the paper's Figure 2:
//
//   - SGX-like (Section 2.2 / 5.1): a 56-bit VN and 56-bit MAC per 64-byte
//     cacheline, an 8-ary Merkle tree over the VN lines, and a 32 KB
//     metadata cache in front of all of it.
//   - Tensor mode: the VN (and tensor MAC) come from an on-chip structure —
//     TenAnalyzer on the CPU (internal/tenanalyzer) or the MGX-like VN state
//     on the NPU — so hits cost no off-chip metadata access.
package mee

import (
	"fmt"

	"tensortee/internal/crypto"
	"tensortee/internal/merkle"
)

// Region is a functional protected memory region: what the OS or a bus
// snooper sees is ciphertext; reads verify MAC (and the VN's Merkle path in
// SGX mode) before returning plaintext.
type Region struct {
	Key       *crypto.Key
	Base      uint64
	LineBytes int

	lines     int
	cipher    []byte
	vn        []uint64
	macs      []uint64
	written   []bool // lazily-initialized lines: unwritten reads as zeros
	tree      *merkle.Tree
	vnPerLeaf int // VNs covered by one tree leaf (one VN cacheline)
}

// NewRegion allocates a protected region of size bytes starting at base.
// Size is rounded up to whole lines.
func NewRegion(key *crypto.Key, base uint64, size, lineBytes int) *Region {
	if lineBytes <= 0 || lineBytes&(lineBytes-1) != 0 {
		panic(fmt.Sprintf("mee: line size must be power of two, got %d", lineBytes))
	}
	lines := (size + lineBytes - 1) / lineBytes
	if lines == 0 {
		lines = 1
	}
	r := &Region{
		Key:       key,
		Base:      base,
		LineBytes: lineBytes,
		lines:     lines,
		cipher:    make([]byte, lines*lineBytes),
		vn:        make([]uint64, lines),
		macs:      make([]uint64, lines),
		written:   make([]bool, lines),
	}
	// One tree leaf per VN cacheline: 64B line / 8B VN slot = 8 VNs.
	r.vnPerLeaf = lineBytes / 8
	leaves := (lines + r.vnPerLeaf - 1) / r.vnPerLeaf
	var tkey [16]byte
	copy(tkey[:], []byte("tensortee-bmt-k1"))
	r.tree = merkle.New(leaves, 8, tkey)
	for leaf := 0; leaf < leaves; leaf++ {
		r.tree.Update(leaf, r.vnLeafDigest(leaf))
	}
	return r
}

// Lines reports the number of protected cachelines.
func (r *Region) Lines() int { return r.lines }

// End reports one past the last protected byte.
func (r *Region) End() uint64 { return r.Base + uint64(r.lines*r.LineBytes) }

// LineIndex converts an address to a line index, panicking if out of range.
func (r *Region) LineIndex(addr uint64) int {
	if addr < r.Base || addr >= r.End() {
		panic(fmt.Sprintf("mee: address 0x%x outside region [0x%x,0x%x)", addr, r.Base, r.End()))
	}
	return int((addr - r.Base) / uint64(r.LineBytes))
}

// LineAddr returns the base address of line idx.
func (r *Region) LineAddr(idx int) uint64 {
	return r.Base + uint64(idx*r.LineBytes)
}

// counter builds the CTR seed for a line. The address component is
// region-relative so that ciphertext plus (addr, VN) metadata is portable
// across enclaves that share the key — the unified-granularity property the
// direct transfer protocol relies on (Section 4.4).
func (r *Region) counter(idx int, vn uint64) crypto.Counter {
	return crypto.Counter{Addr: uint64(idx * r.LineBytes), VN: vn}
}

// vnLeafDigest folds the VNs covered by one tree leaf into the leaf value.
func (r *Region) vnLeafDigest(leaf int) uint64 {
	lo := leaf * r.vnPerLeaf
	hi := lo + r.vnPerLeaf
	if hi > r.lines {
		hi = r.lines
	}
	var d uint64 = 0x9e3779b97f4a7c15
	for i := lo; i < hi; i++ {
		d ^= r.vn[i] + 0x9e3779b97f4a7c15 + (d << 6) + (d >> 2)
	}
	return d
}

// VN returns the current off-chip version number of the line holding addr.
func (r *Region) VN(addr uint64) uint64 { return r.vn[r.LineIndex(addr)] }

// LineMAC returns the stored MAC of the line holding addr.
func (r *Region) LineMAC(addr uint64) uint64 { return r.macs[r.LineIndex(addr)] }

// WriteLine encrypts plaintext into the line containing addr, incrementing
// its VN, recomputing its MAC, and updating the Merkle path.
// Returns the new VN.
func (r *Region) WriteLine(addr uint64, plaintext []byte) uint64 {
	idx := r.LineIndex(addr)
	if len(plaintext) != r.LineBytes {
		panic(fmt.Sprintf("mee: WriteLine wants %d bytes, got %d", r.LineBytes, len(plaintext)))
	}
	r.written[idx] = true
	r.vn[idx]++
	c := r.counter(idx, r.vn[idx])
	ct := r.Key.Encrypt(plaintext, c)
	copy(r.cipher[idx*r.LineBytes:], ct)
	r.macs[idx] = r.Key.MAC(ct, c)
	leaf := idx / r.vnPerLeaf
	r.tree.Update(leaf, r.vnLeafDigest(leaf))
	return r.vn[idx]
}

// IntegrityError reports a failed verification.
type IntegrityError struct {
	Addr   uint64
	Reason string
}

func (e *IntegrityError) Error() string {
	return fmt.Sprintf("mee: integrity violation at 0x%x: %s", e.Addr, e.Reason)
}

// ReadLine verifies and decrypts the line containing addr using the
// off-chip VN (SGX-like path: Merkle verification of the VN, then MAC
// check, then decrypt).
func (r *Region) ReadLine(addr uint64) ([]byte, error) {
	idx := r.LineIndex(addr)
	if !r.written[idx] {
		// Enclave memory is zero-initialized at creation; a never-written
		// line reads as zeros (no ciphertext exists to verify yet).
		return make([]byte, r.LineBytes), nil
	}
	leaf := idx / r.vnPerLeaf
	if ok, _ := r.tree.Verify(leaf, r.vnLeafDigest(leaf)); !ok {
		return nil, &IntegrityError{Addr: addr, Reason: "VN Merkle path mismatch (replay?)"}
	}
	return r.readWithVN(idx, r.vn[idx])
}

// ReadLineWithVN verifies and decrypts using an externally supplied VN (the
// tensor-mode path: the VN comes from the Meta Table / on-chip state, so no
// Merkle verification is required).
func (r *Region) ReadLineWithVN(addr uint64, vn uint64) ([]byte, error) {
	return r.readWithVN(r.LineIndex(addr), vn)
}

func (r *Region) readWithVN(idx int, vn uint64) ([]byte, error) {
	if !r.written[idx] {
		return make([]byte, r.LineBytes), nil
	}
	c := r.counter(idx, vn)
	ct := r.cipher[idx*r.LineBytes : (idx+1)*r.LineBytes]
	if !r.Key.VerifyMAC(ct, c, r.macs[idx]) {
		return nil, &IntegrityError{Addr: r.LineAddr(idx), Reason: "line MAC mismatch"}
	}
	return r.Key.Decrypt(ct, c), nil
}

// ReadLineUnverified decrypts without MAC verification, returning the MAC
// computed over the fetched ciphertext so the caller can verify later — the
// NPU's delayed-verification dataflow (Section 4.3).
func (r *Region) ReadLineUnverified(addr uint64, vn uint64) (plaintext []byte, lineMAC uint64) {
	idx := r.LineIndex(addr)
	c := r.counter(idx, vn)
	ct := r.cipher[idx*r.LineBytes : (idx+1)*r.LineBytes]
	return r.Key.Decrypt(ct, c), r.Key.MAC(ct, c)
}

// StoredLineMACXOR returns the XOR of stored line MACs over a region — the
// reference tensor MAC the delayed verifier compares against.
func (r *Region) StoredLineMACXOR(base uint64, n int) uint64 {
	var x uint64
	for off := 0; off < n; off += r.LineBytes {
		x ^= r.macs[r.LineIndex(base+uint64(off))]
	}
	return x & crypto.MACMask
}

// WriteBytes writes an arbitrary-length plaintext buffer line by line
// (read-modify-write at the edges). Returns the number of lines touched.
func (r *Region) WriteBytes(addr uint64, data []byte) (lines int, err error) {
	end := addr + uint64(len(data))
	for cur := addr; cur < end; {
		lineBase := cur &^ uint64(r.LineBytes-1)
		lineEnd := lineBase + uint64(r.LineBytes)
		var buf []byte
		if cur == lineBase && lineEnd <= end {
			buf = data[cur-addr : cur-addr+uint64(r.LineBytes)]
		} else {
			old, rerr := r.ReadLine(lineBase)
			if rerr != nil {
				return lines, rerr
			}
			copy(old[cur-lineBase:], data[cur-addr:min64(end, lineEnd)-addr])
			buf = old
		}
		r.WriteLine(lineBase, buf)
		lines++
		cur = lineEnd
	}
	return lines, nil
}

// ReadBytes reads and verifies an arbitrary-length region.
func (r *Region) ReadBytes(addr uint64, n int) ([]byte, error) {
	out := make([]byte, 0, n)
	end := addr + uint64(n)
	for cur := addr; cur < end; {
		lineBase := cur &^ uint64(r.LineBytes-1)
		pl, err := r.ReadLine(lineBase)
		if err != nil {
			return nil, err
		}
		lo := cur - lineBase
		hi := min64(end, lineBase+uint64(r.LineBytes)) - lineBase
		out = append(out, pl[lo:hi]...)
		cur = lineBase + uint64(r.LineBytes)
	}
	return out, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// LineExport is the per-line payload of the direct transfer protocol:
// ciphertext over the direct channel, (index, VN, MAC) over the trusted
// channel. No plaintext and no re-encryption are involved.
type LineExport struct {
	Index      int
	VN         uint64
	MAC        uint64
	Ciphertext []byte
}

// ExportLine captures a line's off-chip state for direct transfer.
func (r *Region) ExportLine(addr uint64) LineExport {
	idx := r.LineIndex(addr)
	ct := make([]byte, r.LineBytes)
	copy(ct, r.cipher[idx*r.LineBytes:])
	return LineExport{Index: idx, VN: r.vn[idx], MAC: r.macs[idx], Ciphertext: ct}
}

// ImportLine installs a transferred line at the same line index of this
// region. Because counters are region-relative (see counter), the
// ciphertext decrypts in place with the carried VN; no re-encryption
// happens. The MAC is verified immediately on import unless the caller
// defers it (delayed verification imports pass verify=false and check the
// tensor MAC at the barrier).
func (r *Region) ImportLine(e LineExport, verify bool) error {
	if e.Index < 0 || e.Index >= r.lines {
		return fmt.Errorf("mee: import index %d out of range [0,%d)", e.Index, r.lines)
	}
	if len(e.Ciphertext) != r.LineBytes {
		return fmt.Errorf("mee: import ciphertext %dB, want %dB", len(e.Ciphertext), r.LineBytes)
	}
	if verify {
		c := r.counter(e.Index, e.VN)
		if !r.Key.VerifyMAC(e.Ciphertext, c, e.MAC) {
			return &IntegrityError{Addr: r.LineAddr(e.Index), Reason: "transferred line MAC mismatch"}
		}
	}
	copy(r.cipher[e.Index*r.LineBytes:], e.Ciphertext)
	r.vn[e.Index] = e.VN
	r.macs[e.Index] = e.MAC
	r.written[e.Index] = true
	leaf := e.Index / r.vnPerLeaf
	r.tree.Update(leaf, r.vnLeafDigest(leaf))
	return nil
}

// --- attack surface for tests --------------------------------------------

// TamperCipher flips a bit of stored ciphertext (bus/DRAM corruption).
func (r *Region) TamperCipher(addr uint64, bit int) {
	idx := r.LineIndex(addr)
	off := idx*r.LineBytes + (bit/8)%r.LineBytes
	r.cipher[off] ^= 1 << (bit % 8)
}

// SnapshotLine captures (ciphertext, VN, MAC) for a later replay.
type SnapshotLine struct {
	addr   uint64
	cipher []byte
	vn     uint64
	mac    uint64
}

// Snapshot records the current off-chip state of a line.
func (r *Region) Snapshot(addr uint64) SnapshotLine {
	idx := r.LineIndex(addr)
	ct := make([]byte, r.LineBytes)
	copy(ct, r.cipher[idx*r.LineBytes:])
	return SnapshotLine{addr: addr, cipher: ct, vn: r.vn[idx], mac: r.macs[idx]}
}

// Replay restores a previously captured line (classic replay attack: the
// adversary controls everything off-chip, including the stored VN and MAC,
// but not the on-chip Merkle root).
func (r *Region) Replay(s SnapshotLine) {
	idx := r.LineIndex(s.addr)
	copy(r.cipher[idx*r.LineBytes:], s.cipher)
	r.vn[idx] = s.vn
	r.macs[idx] = s.mac
	// The adversary cannot touch the on-chip root: tree internal state keeps
	// the authentic leaf digests, so verification of this leaf now fails.
	r.tree.TamperLeaf(idx/r.vnPerLeaf, r.vnLeafDigest(idx/r.vnPerLeaf))
}

// TamperVN overwrites the off-chip VN without touching the tree.
func (r *Region) TamperVN(addr uint64, vn uint64) {
	idx := r.LineIndex(addr)
	r.vn[idx] = vn
	r.tree.TamperLeaf(idx/r.vnPerLeaf, r.vnLeafDigest(idx/r.vnPerLeaf))
}
