package mee

import (
	"testing"
	"testing/quick"
)

// Property: for arbitrary region sizes, the metadata map places VN lines,
// MAC lines, and every tree level in pairwise-disjoint address ranges,
// all disjoint from the data region.
func TestLayoutDisjointnessProperty(t *testing.T) {
	f := func(linesSeed uint16) bool {
		lines := int(linesSeed)%(1<<16) + 64
		l := NewLayout(0, lines, 64, 8)

		type span struct{ lo, hi uint64 }
		dataSpan := span{0, uint64(lines * 64)}
		vnSpan := span{l.VNLineAddr(0), l.VNLineAddr(uint64(lines-1)*64) + 64}
		macSpan := span{l.MACLineAddr(0), l.MACLineAddr(uint64(lines-1)*64) + 64}

		overlaps := func(a, b span) bool { return a.lo < b.hi && b.lo < a.hi }
		if overlaps(dataSpan, vnSpan) || overlaps(dataSpan, macSpan) || overlaps(vnSpan, macSpan) {
			return false
		}
		var treeSpans []span
		for lvl := 0; lvl < l.TreeDepth(); lvl++ {
			lo := l.TreeNodeAddr(lvl, 0)
			hi := l.TreeNodeAddr(lvl, uint64(lines-1)*64) + 64
			treeSpans = append(treeSpans, span{lo, hi})
		}
		for i, ts := range treeSpans {
			if overlaps(ts, dataSpan) || overlaps(ts, vnSpan) || overlaps(ts, macSpan) {
				return false
			}
			for j := i + 1; j < len(treeSpans); j++ {
				if overlaps(ts, treeSpans[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: metadata storage accounting scales with the data size at
// roughly the 56-bit-per-64B rate the paper cites (~11% VN, ~11% MAC, plus
// a sub-2% tree).
func TestLayoutStorageFractionProperty(t *testing.T) {
	f := func(linesSeed uint16) bool {
		lines := int(linesSeed)%(1<<16) + 4096
		l := NewLayout(0, lines, 64, 8)
		data := int64(lines) * 64
		meta := l.MetadataBytes(7, 7)
		frac := float64(meta) / float64(data)
		return frac > 0.21 && frac < 0.26
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
