package mee

import (
	"math/rand"
	"testing"

	"tensortee/internal/sim"
)

// TestMetaMemoParity drives identical randomized workloads — per-line
// reads/writes, tensor outcomes, and span runs — through a memo-enabled
// engine and a twin whose metadata transition memo is disabled, requiring
// bit-identical engine stats, metadata-cache counters, DRAM state, and
// returned times throughout. A memo hit must be exactly the Access hit
// path; any skew in LRU, dirty, or victim behavior would surface as a
// counter or timing divergence under this much eviction pressure.
func TestMetaMemoParity(t *testing.T) {
	for _, mode := range []Mode{ModeSGX, ModeTensor} {
		memoized, memoMem := newTestEngine(mode)
		plain, plainMem := newTestEngine(mode)
		plain.memoOff = true

		rng := rand.New(rand.NewSource(int64(mode) + 17))
		var at sim.Time
		for op := 0; op < 6000; op++ {
			at += sim.Dur(rng.Intn(4000))
			// A wide address range keeps VN/MAC/tree lines contending for
			// metadata-cache sets, so handles go stale constantly.
			addr := uint64(rng.Intn(1<<19)) * 64
			outcome := TensorOutcome(rng.Intn(3))
			var tm, tp sim.Time
			var rm, rp ReadResult
			switch rng.Intn(5) {
			case 0:
				rm, rp = memoized.Read(at, addr), plain.Read(at, addr)
			case 1:
				tm, tp = memoized.Write(at, addr), plain.Write(at, addr)
			case 2:
				if mode == ModeTensor {
					rm, rp = memoized.TensorRead(at, addr, outcome), plain.TensorRead(at, addr, outcome)
				} else {
					rm, rp = memoized.Read(at, addr), plain.Read(at, addr)
				}
			case 3:
				n := 1 + rng.Intn(24)
				if mode == ModeTensor {
					tm, tp = memoized.TensorWriteRun(at, addr, n, outcome), plain.TensorWriteRun(at, addr, n, outcome)
				} else {
					tm, tp = memoized.WriteRun(at, addr, n), plain.WriteRun(at, addr, n)
				}
			default:
				n := 1 + rng.Intn(24)
				if mode == ModeTensor {
					rm, rp = memoized.TensorReadRun(at, addr, n, outcome), plain.TensorReadRun(at, addr, n, outcome)
				} else {
					rm, rp = memoized.ReadRun(at, addr, n), plain.ReadRun(at, addr, n)
				}
			}
			if tm != tp || rm != rp {
				t.Fatalf("mode %v op %d: times diverge: %v/%+v vs %v/%+v", mode, op, tm, rm, tp, rp)
			}
			if memoized.Stats() != plain.Stats() {
				t.Fatalf("mode %v op %d: engine stats diverge\nmemo:  %+v\nplain: %+v",
					mode, op, memoized.Stats(), plain.Stats())
			}
			if memoized.MetaCacheStats() != plain.MetaCacheStats() {
				t.Fatalf("mode %v op %d: metadata cache counters diverge\nmemo:  %+v\nplain: %+v",
					mode, op, memoized.MetaCacheStats(), plain.MetaCacheStats())
			}
		}
		if memoMem.Stats() != plainMem.Stats() {
			t.Fatalf("mode %v: DRAM state diverges\nmemo:  %+v\nplain: %+v",
				mode, memoMem.Stats(), plainMem.Stats())
		}
		if memoMem.BusyUntil() != plainMem.BusyUntil() {
			t.Fatalf("mode %v: DRAM bus horizons diverge", mode)
		}
	}
}
