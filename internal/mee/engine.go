package mee

import (
	"fmt"

	"tensortee/internal/cache"
	"tensortee/internal/config"
	"tensortee/internal/dram"
	"tensortee/internal/sim"
)

// Mode selects the VN-management scheme the engine charges for.
type Mode int

const (
	// ModeOff disables protection (NonSecure reference).
	ModeOff Mode = iota
	// ModeSGX is the per-cacheline VN+MAC+Merkle baseline of Section 5.1.
	ModeSGX
	// ModeTensor is the TensorTEE path: the caller supplies the VN source
	// decision per access (hit-in / hit-boundary / miss), typically from
	// internal/tenanalyzer.
	ModeTensor
)

func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeSGX:
		return "sgx"
	case ModeTensor:
		return "tensor"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Layout maps a protected data region onto metadata addresses: the VN
// array, the MAC array, and the Merkle tree levels, all placed far above
// the data so they never collide with workload addresses.
type Layout struct {
	DataBase  uint64
	DataLines int
	LineBytes int
	Arity     int

	vnBase   uint64
	macBase  uint64
	treeBase []uint64 // base address per tree level (level 0 = leaves)
	treeLen  []int    // nodes per level

	// lineShift strength-reduces the division in lineIdx (LineBytes is a
	// power of two for every configuration in this repo); -1 keeps the
	// division. The shift computes the identical quotient, so all
	// metadata addresses are unchanged.
	lineShift int
}

// metaSlotBytes is the storage of one VN or MAC slot (56 bits rounded to 8
// bytes in the address map; the 7/8 packing shows up in storage accounting,
// not the line-granular traffic model, where a 64B metadata line holds 8
// slots either way).
const metaSlotBytes = 8

// NewLayout computes the metadata map for a region.
func NewLayout(dataBase uint64, dataLines, lineBytes, arity int) *Layout {
	const metaSpace = uint64(1) << 44
	alignUp := func(x uint64) uint64 {
		return (x + uint64(lineBytes) - 1) &^ uint64(lineBytes-1)
	}
	l := &Layout{
		DataBase:  dataBase,
		DataLines: dataLines,
		LineBytes: lineBytes,
		Arity:     arity,
		vnBase:    metaSpace,
		macBase:   alignUp(metaSpace + uint64(dataLines)*metaSlotBytes),
		lineShift: sim.Pow2Shift(lineBytes),
	}
	// Tree over VN lines.
	slotsPerLine := lineBytes / metaSlotBytes
	nodes := (dataLines + slotsPerLine - 1) / slotsPerLine // VN lines = leaves
	base := alignUp(l.macBase + uint64(dataLines)*metaSlotBytes)
	for {
		nodes = (nodes + arity - 1) / arity
		if nodes == 0 {
			break
		}
		l.treeBase = append(l.treeBase, base)
		l.treeLen = append(l.treeLen, nodes)
		base += uint64(nodes) * uint64(lineBytes)
		if nodes == 1 {
			break
		}
	}
	return l
}

// lineIdx converts a data address to a line index.
func (l *Layout) lineIdx(addr uint64) int {
	if l.lineShift >= 0 {
		return int((addr - l.DataBase) >> uint(l.lineShift))
	}
	return int((addr - l.DataBase) / uint64(l.LineBytes))
}

// VNLineAddr returns the metadata line holding addr's VN.
func (l *Layout) VNLineAddr(addr uint64) uint64 {
	slot := l.vnBase + uint64(l.lineIdx(addr))*metaSlotBytes
	return slot &^ uint64(l.LineBytes-1)
}

// MACLineAddr returns the metadata line holding addr's MAC.
func (l *Layout) MACLineAddr(addr uint64) uint64 {
	slot := l.macBase + uint64(l.lineIdx(addr))*metaSlotBytes
	return slot &^ uint64(l.LineBytes-1)
}

// TreeDepth reports the number of tree levels above the VN lines
// (excluding the on-chip root).
func (l *Layout) TreeDepth() int { return len(l.treeBase) }

// TreeNodeAddr returns the address of the tree node covering addr at the
// given level (0 = first level above the VN lines).
func (l *Layout) TreeNodeAddr(level int, addr uint64) uint64 {
	slotsPerLine := l.LineBytes / metaSlotBytes
	node := l.lineIdx(addr) / slotsPerLine // VN line index
	for i := 0; i <= level; i++ {
		node /= l.Arity
	}
	if node >= l.treeLen[level] {
		node = l.treeLen[level] - 1
	}
	return l.treeBase[level] + uint64(node)*uint64(l.LineBytes)
}

// MetadataBytes reports the off-chip metadata storage for the region: 7-byte
// VN + 7-byte MAC per line plus tree nodes.
func (l *Layout) MetadataBytes(vnBytes, macBytes int) int64 {
	n := int64(l.DataLines) * int64(vnBytes+macBytes)
	for _, ln := range l.treeLen {
		n += int64(ln) * int64(l.LineBytes)
	}
	return n
}

// Stats counts engine activity.
type Stats struct {
	DataReads, DataWrites   uint64
	VNReads, VNWrites       uint64 // off-chip VN line transfers
	MACReads, MACWrites     uint64 // off-chip MAC line transfers
	TreeReads, TreeWrites   uint64 // off-chip tree node transfers
	MetaCacheHits           uint64
	MetaCacheMisses         uint64
	AESOps, MACOps          uint64
	HitIn, HitBoundary, Mis uint64 // tensor-mode outcome counts
}

// ExtraLines reports total off-chip metadata line transfers.
func (s Stats) ExtraLines() uint64 {
	return s.VNReads + s.VNWrites + s.MACReads + s.MACWrites + s.TreeReads + s.TreeWrites
}

// Engine charges timing for protected memory accesses. It owns the MEE
// metadata cache and shares the DRAM device with the data path.
//
// The AES/MAC units are modeled as fully pipelined fixed-latency stages
// (Table 1: 40-cycle latency each): their throughput matches the memory
// system, so only their latency and placement in the dependency chain
// matter. What makes the SGX path slow is not engine bandwidth but the
// metadata traffic and the serial VN→pad→release dependency.
type Engine struct {
	Mode   Mode
	Layout *Layout

	mem       *dram.Memory
	metaCache *cache.Cache

	aesLat  sim.Dur // AES pad latency (40 CPU cycles)
	macLat  sim.Dur // MAC latency
	metaLat sim.Dur // metadata cache hit latency

	// memo is the metadata-cache transition memo: a direct-mapped table
	// of line -> way handles validated by the cache's per-set generation
	// (the set-state fingerprint). Consecutive data lines share their
	// VN/MAC metadata lines eight to one, so most metaAccess calls
	// revalidate a handle in O(1) instead of scanning the set; any tag
	// movement in the set bumps its generation and forces the full
	// (exact) lookup. A memo hit performs precisely the Access hit-path
	// state transitions, so the memo is invisible to timing and stats —
	// TestMetaMemoParity pins this against a memo-disabled twin.
	memo    [metaMemoSlots]metaMemo
	memoOff bool // test hook: force every metaAccess through the full scan

	stats Stats
}

const metaMemoSlots = 256

type metaMemo struct {
	line uint64
	h    cache.Handle
}

// NewEngine builds an MEE for the host memory controller from the CPU
// configuration.
func NewEngine(mode Mode, cfg *config.Config, mem *dram.Memory, layout *Layout) *Engine {
	cpu := cfg.CPU
	e := &Engine{
		Mode:      mode,
		Layout:    layout,
		mem:       mem,
		metaCache: cache.NewHashed("meecache", cpu.MetaCacheSize, cpu.MetaCacheWays, cpu.LineBytes),
		aesLat:    sim.Cycles(float64(cpu.AESLatCycles), cpu.FreqHz),
		macLat:    sim.Cycles(float64(cpu.MACLatCycles), cpu.FreqHz),
		metaLat:   sim.Cycles(8, cpu.FreqHz),
	}
	return e
}

// Stats returns cumulative counters.
func (e *Engine) Stats() Stats { return e.stats }

// MetaCacheStats exposes the metadata cache counters.
func (e *Engine) MetaCacheStats() cache.Stats { return e.metaCache.Stats() }

// metaAccess runs one metadata line through the metadata cache; on miss it
// fetches from DRAM. Returns the time the line is available and whether it
// missed. Dirty victims are written back to DRAM (traffic, off the critical
// path).
func (e *Engine) metaAccess(at sim.Time, lineAddr uint64, write bool, kind *uint64, kindW *uint64) (ready sim.Time, missed bool) {
	// Memo fast path: a still-valid handle proves residency and takes the
	// exact Access hit path without a scan. Metadata lines are never at
	// address 0 (the map starts at 1<<44), so empty slots cannot match.
	slot := &e.memo[(lineAddr*0x9E3779B97F4A7C15)>>56&(metaMemoSlots-1)]
	if !e.memoOff && slot.line == lineAddr && e.metaCache.AccessVia(slot.h, lineAddr, write) {
		e.stats.MetaCacheHits++
		return at + e.metaLat, false
	}
	r, h := e.metaCache.AccessTrack(lineAddr, write)
	slot.line, slot.h = lineAddr, h
	if r.HasWriteback {
		// Background writeback: charge DRAM occupancy, not latency.
		e.mem.Access(at, r.WritebackAddr, true)
		e.noteWriteback(r.WritebackAddr)
	}
	if r.Hit {
		e.stats.MetaCacheHits++
		return at + e.metaLat, false
	}
	e.stats.MetaCacheMisses++
	if kind != nil {
		*kind++
	}
	if write && kindW != nil {
		// a write-allocate fill still reads the line first
	}
	return e.mem.Access(at, lineAddr, false), true
}

// noteWriteback classifies a metadata writeback address for stats.
func (e *Engine) noteWriteback(addr uint64) {
	l := e.Layout
	switch {
	case addr >= l.macBase && addr < l.macBase+uint64(l.DataLines)*metaSlotBytes:
		e.stats.MACWrites++
	case addr >= l.vnBase && addr < l.vnBase+uint64(l.DataLines)*metaSlotBytes:
		e.stats.VNWrites++
	default:
		e.stats.TreeWrites++
	}
}

// ReadResult reports the timing of a protected read.
type ReadResult struct {
	// DataReady is when decrypted data can be consumed (speculative in
	// delayed-verification schemes).
	DataReady sim.Time
	// Verified is when integrity verification completes.
	Verified sim.Time
}

// Read charges a protected read of one line at address addr issued at time
// at. The data fetch itself is included (the engine fronts the memory
// controller).
func (e *Engine) Read(at sim.Time, addr uint64) ReadResult {
	if e.Mode == ModeOff {
		e.stats.DataReads++
		tData := e.mem.Access(at, addr, false)
		return ReadResult{DataReady: tData, Verified: tData}
	}
	return e.readLine(at, addr, e.Layout.VNLineAddr(addr), e.Layout.MACLineAddr(addr))
}

// readLine is the protected-read dataflow with the metadata line
// addresses hoisted: span callers compute them once per 8-slot group
// instead of once per line. The access sequence is identical to the
// historical Read body, so cache and DRAM state evolve identically.
func (e *Engine) readLine(at sim.Time, addr, vnLine, macLine uint64) ReadResult {
	e.stats.DataReads++
	tData := e.mem.Access(at, addr, false)

	// VN acquisition.
	tVN, vnMissed := e.metaAccess(at, vnLine, false, &e.stats.VNReads, nil)
	if vnMissed {
		// Merkle walk: serial levels until a metadata-cache hit; each level
		// costs a MAC verification.
		t := tVN
		for lvl := 0; lvl < e.Layout.TreeDepth(); lvl++ {
			nodeAddr := e.Layout.TreeNodeAddr(lvl, addr)
			ready, missed := e.metaAccess(t, nodeAddr, false, &e.stats.TreeReads, nil)
			t = ready + e.macLat
			e.stats.MACOps++
			if !missed {
				break // cached tree nodes are already verified
			}
		}
		tVN = t
	}

	// AES pad generation can start once the VN is known; in SGX the VN
	// arrives after a fetch, in tensor mode it is on-chip at issue.
	padDone := tVN + e.aesLat
	e.stats.AESOps++
	dataReady := sim.Max(tData, padDone)

	// Data MAC verification: fetch the MAC line, recompute, compare.
	tMAC, _ := e.metaAccess(at, macLine, false, &e.stats.MACReads, nil)
	verDone := sim.Max(tData, tMAC) + e.macLat
	e.stats.MACOps++

	// The SGX-like baseline releases data only after verification.
	done := sim.Max(dataReady, verDone)
	return ReadResult{DataReady: done, Verified: done}
}

// Write charges a protected write (dirty LLC eviction) of one line at addr
// issued at time at, returning when the line (and its metadata updates)
// retire. Writes are posted: the returned time matters for occupancy, not
// for the core's critical path.
func (e *Engine) Write(at sim.Time, addr uint64) sim.Time {
	if e.Mode == ModeOff {
		e.stats.DataWrites++
		return e.mem.Access(at, addr, true)
	}
	return e.writeLine(at, addr, e.Layout.VNLineAddr(addr), e.Layout.MACLineAddr(addr))
}

// writeLine is the protected-write dataflow with hoisted metadata line
// addresses (see readLine).
func (e *Engine) writeLine(at sim.Time, addr, vnLine, macLine uint64) sim.Time {
	e.stats.DataWrites++

	// VN increment: RMW on the VN line through the metadata cache.
	tVN, vnMissed := e.metaAccess(at, vnLine, true, &e.stats.VNReads, &e.stats.VNWrites)
	t := tVN
	if vnMissed {
		// Verify the fetched VN before trusting it (walk), then update the
		// tree path; cached levels absorb the update (dirty lines).
		for lvl := 0; lvl < e.Layout.TreeDepth(); lvl++ {
			nodeAddr := e.Layout.TreeNodeAddr(lvl, addr)
			ready, missed := e.metaAccess(t, nodeAddr, true, &e.stats.TreeReads, &e.stats.TreeWrites)
			t = ready + e.macLat
			e.stats.MACOps++
			if !missed {
				break
			}
		}
	} else {
		// Tree path update hits in the metadata cache: one MAC op for the
		// leaf-level re-hash, absorbed by dirty lines.
		t += e.macLat
		e.stats.MACOps++
	}

	// Encrypt (pad can be generated as soon as the new VN is known).
	padDone := t + e.aesLat
	e.stats.AESOps++
	tData := e.mem.Access(padDone, addr, true)

	// Recompute and store the data MAC.
	tMACLine, _ := e.metaAccess(at, macLine, true, &e.stats.MACReads, &e.stats.MACWrites)
	tMAC := sim.Max(padDone, tMACLine) + e.macLat
	e.stats.MACOps++

	return sim.Max(tData, tMAC)
}

// TensorOutcome is the Meta-Table lookup result the TenAnalyzer reports for
// an access in tensor mode (Figure 10/12).
type TensorOutcome int

const (
	// THitIn: address inside a live entry — VN on chip, no metadata access.
	THitIn TensorOutcome = iota
	// THitBoundary: address extends an entry — VN used speculatively while
	// an off-chip VN check runs in the background.
	THitBoundary
	// TMiss: no entry — fall back to the cacheline path.
	TMiss
)

// TensorRead charges a read under tensor-mode management. outcome comes
// from the TenAnalyzer lookup.
func (e *Engine) TensorRead(at sim.Time, addr uint64, outcome TensorOutcome) ReadResult {
	switch outcome {
	case THitIn:
		e.stats.DataReads++
		e.stats.HitIn++
		// VN on-chip at issue: pad generation overlaps the data fetch
		// entirely; line-MAC accumulation for delayed tensor verification
		// happens off the critical path.
		tData := e.mem.Access(at, addr, false)
		padDone := at + e.aesLat
		e.stats.AESOps++
		ready := sim.Max(tData, padDone)
		ver := ready + e.macLat
		e.stats.MACOps++
		// Data is released at ready; verification completes in background
		// and is enforced at the tensor barrier.
		return ReadResult{DataReady: ready, Verified: ver}
	case THitBoundary:
		e.stats.HitBoundary++
		// Structure establishment: the entry VN is speculative and the
		// extension is confirmed by the off-chip VN (and, on a metadata
		// miss, its Merkle path) before coverage grows. During detection
		// the access therefore still pays the cacheline-granularity read
		// path — this is why the paper's first iteration costs roughly as
		// much as SGX (Figure 19) even though hit_all is already high
		// (Figure 18).
		return e.Read(at, addr)
	default:
		e.stats.Mis++
		// Full cacheline-granularity path.
		return e.Read(at, addr)
	}
}

// TensorWrite charges a write under tensor-mode management.
func (e *Engine) TensorWrite(at sim.Time, addr uint64, outcome TensorOutcome) sim.Time {
	switch outcome {
	case THitIn, THitBoundary:
		e.stats.DataWrites++
		if outcome == THitIn {
			e.stats.HitIn++
		} else {
			e.stats.HitBoundary++
		}
		// The write epoch is tracked in the DRAM-backed bitmap through its
		// 6 KB on-chip cache (Section 4.2): one bit per line, so the
		// off-chip bitmap traffic is 1/512 of the data traffic and is
		// absorbed by the cache. Off-chip per-line VNs are reconciled only
		// when an entry is invalidated or evicted — rare — so no VN line
		// traffic is charged here.
		padDone := at + e.aesLat
		e.stats.AESOps++
		tData := e.mem.Access(padDone, addr, true)
		tMAC := padDone + e.macLat
		e.stats.MACOps++
		return sim.Max(tData, tMAC)
	default:
		e.stats.Mis++
		return e.Write(at, addr)
	}
}

// --- span (run-length) entry points ------------------------------------------
//
// The Run methods charge a whole span of n consecutive data lines issued
// in one burst at time `at` — the shape Flush drains dirty spans in, the
// bulk-transfer paths use, and the span parity tests replay. The
// metadata-cache and DRAM bank/bus state machines are order-dependent,
// so their transitions follow exactly the per-line order — but within a
// slot group that order is known in advance: after the group's first
// line resolves, the remaining lines can only re-hit the same two
// resident metadata lines, so the group collapses to one residency probe
// plus batched hit bookkeeping, and the data-line transfers fast-forward
// through dram.AccessRun's steady-state walk. Groups whose metadata is
// not resident after the first line replay per line. Calling a Run
// method is therefore indistinguishable, state- and stats-wise, from n
// sequential single-line calls; the returned time aggregates the span
// (latest completion).

// spanGroups calls fn for each metadata slot group of the span: base
// address, line count, and the group's shared VN/MAC line addresses.
func (e *Engine) spanGroups(addr uint64, n int, fn func(base uint64, lines int, vnLine, macLine uint64)) {
	lb := uint64(e.Layout.LineBytes)
	slotsPerLine := e.Layout.LineBytes / metaSlotBytes
	for i := 0; i < n; {
		a := addr + uint64(i)*lb
		group := slotsPerLine - e.Layout.lineIdx(a)%slotsPerLine
		if group > n-i {
			group = n - i
		}
		fn(a, group, e.Layout.VNLineAddr(a), e.Layout.MACLineAddr(a))
		i += group
	}
}

// readGroup charges one slot group of `lines` consecutive protected line
// reads issued at time at, sharing vnLine/macLine. The first line runs
// the full dataflow; when both metadata lines are resident afterwards,
// the remaining lines are provably pure metadata-cache hits (hits cannot
// evict, so no fills, walks, or writebacks can occur mid-group) and
// collapse into batched hit bookkeeping plus one AccessRun over the data
// lines. Their dataflow times share every term except the data fetch, so
// the aggregate needs only the span's latest transfer.
func (e *Engine) readGroup(at sim.Time, base uint64, lines int, vnLine, macLine uint64) ReadResult {
	lb := uint64(e.Layout.LineBytes)
	agg := e.readLine(at, base, vnLine, macLine)
	j := 1
	if j < lines && e.metaCache.Probe(vnLine) && e.metaCache.Probe(macLine) {
		k := lines - j
		e.metaCache.AccessHitN(vnLine, k, false)
		e.metaCache.AccessHitN(macLine, k, false)
		e.stats.MetaCacheHits += 2 * uint64(k)
		e.stats.DataReads += uint64(k)
		e.stats.AESOps += uint64(k)
		e.stats.MACOps += uint64(k)
		maxData := e.mem.AccessRun(at, base+uint64(j)*lb, k, lb, false)
		tMeta := at + e.metaLat
		done := sim.Max(sim.Max(maxData, tMeta+e.aesLat), sim.Max(maxData, tMeta)+e.macLat)
		agg.DataReady = sim.Max(agg.DataReady, done)
		agg.Verified = sim.Max(agg.Verified, done)
		return agg
	}
	for ; j < lines; j++ {
		r := e.readLine(at, base+uint64(j)*lb, vnLine, macLine)
		agg.DataReady = sim.Max(agg.DataReady, r.DataReady)
		agg.Verified = sim.Max(agg.Verified, r.Verified)
	}
	return agg
}

// writeGroup is readGroup's write-dataflow counterpart (see writeLine for
// the per-line shape being collapsed).
func (e *Engine) writeGroup(at sim.Time, base uint64, lines int, vnLine, macLine uint64) sim.Time {
	lb := uint64(e.Layout.LineBytes)
	last := e.writeLine(at, base, vnLine, macLine)
	j := 1
	if j < lines && e.metaCache.Probe(vnLine) && e.metaCache.Probe(macLine) {
		k := lines - j
		e.metaCache.AccessHitN(vnLine, k, true)
		e.metaCache.AccessHitN(macLine, k, true)
		e.stats.MetaCacheHits += 2 * uint64(k)
		e.stats.DataWrites += uint64(k)
		e.stats.AESOps += uint64(k)
		e.stats.MACOps += 2 * uint64(k)
		tMeta := at + e.metaLat
		padDone := tMeta + e.macLat + e.aesLat
		maxData := e.mem.AccessRun(padDone, base+uint64(j)*lb, k, lb, true)
		tMAC := sim.Max(padDone, tMeta) + e.macLat
		return sim.Max(last, sim.Max(maxData, tMAC))
	}
	for ; j < lines; j++ {
		last = sim.Max(last, e.writeLine(at, base+uint64(j)*lb, vnLine, macLine))
	}
	return last
}

// ReadRun charges n consecutive protected line reads issued at time at,
// returning the span's aggregate timing (latest data release and latest
// verification).
func (e *Engine) ReadRun(at sim.Time, addr uint64, n int) ReadResult {
	var agg ReadResult
	if e.Mode == ModeOff {
		e.stats.DataReads += uint64(n)
		agg.DataReady = e.mem.AccessRun(at, addr, n, uint64(e.Layout.LineBytes), false)
		agg.Verified = agg.DataReady
		return agg
	}
	e.spanGroups(addr, n, func(base uint64, lines int, vnLine, macLine uint64) {
		r := e.readGroup(at, base, lines, vnLine, macLine)
		agg.DataReady = sim.Max(agg.DataReady, r.DataReady)
		agg.Verified = sim.Max(agg.Verified, r.Verified)
	})
	return agg
}

// WriteRun charges n consecutive protected line writes issued at time at
// (a drained dirty span), returning when the last line and its metadata
// updates retire.
func (e *Engine) WriteRun(at sim.Time, addr uint64, n int) sim.Time {
	var last sim.Time
	if e.Mode == ModeOff {
		e.stats.DataWrites += uint64(n)
		return e.mem.AccessRun(at, addr, n, uint64(e.Layout.LineBytes), true)
	}
	e.spanGroups(addr, n, func(base uint64, lines int, vnLine, macLine uint64) {
		last = sim.Max(last, e.writeGroup(at, base, lines, vnLine, macLine))
	})
	return last
}

// TensorReadRun charges a span of n consecutive reads sharing one
// TenAnalyzer outcome (from tenanalyzer.ReadRun). Hit-in spans collapse
// to the on-chip-VN dataflow with batched crypto counters; boundary and
// miss spans take the cacheline-granularity path per line.
func (e *Engine) TensorReadRun(at sim.Time, addr uint64, n int, outcome TensorOutcome) ReadResult {
	var agg ReadResult
	lb := uint64(e.Layout.LineBytes)
	switch outcome {
	case THitIn:
		e.stats.DataReads += uint64(n)
		e.stats.HitIn += uint64(n)
		e.stats.AESOps += uint64(n)
		e.stats.MACOps += uint64(n)
		if n > 0 {
			padDone := at + e.aesLat
			ready := sim.Max(e.mem.AccessRun(at, addr, n, lb, false), padDone)
			agg.DataReady = ready
			agg.Verified = ready + e.macLat
		}
		return agg
	case THitBoundary:
		e.stats.HitBoundary += uint64(n)
	default:
		e.stats.Mis += uint64(n)
	}
	e.spanGroups(addr, n, func(base uint64, lines int, vnLine, macLine uint64) {
		r := e.readGroup(at, base, lines, vnLine, macLine)
		agg.DataReady = sim.Max(agg.DataReady, r.DataReady)
		agg.Verified = sim.Max(agg.Verified, r.Verified)
	})
	return agg
}

// TensorWriteRun charges a span of n consecutive writes sharing one
// TenAnalyzer outcome (from tenanalyzer.WriteRun).
func (e *Engine) TensorWriteRun(at sim.Time, addr uint64, n int, outcome TensorOutcome) sim.Time {
	var last sim.Time
	lb := uint64(e.Layout.LineBytes)
	switch outcome {
	case THitIn, THitBoundary:
		e.stats.DataWrites += uint64(n)
		if outcome == THitIn {
			e.stats.HitIn += uint64(n)
		} else {
			e.stats.HitBoundary += uint64(n)
		}
		// On-chip VN: pad generation and the background bitmap update are
		// shared span work; only the data-line DRAM transfers replay per
		// line (see TensorWrite for the per-line rationale).
		e.stats.AESOps += uint64(n)
		e.stats.MACOps += uint64(n)
		if n > 0 {
			padDone := at + e.aesLat
			tMAC := padDone + e.macLat
			last = sim.Max(e.mem.AccessRun(padDone, addr, n, lb, true), tMAC)
		}
		return last
	default:
		e.stats.Mis += uint64(n)
	}
	e.spanGroups(addr, n, func(base uint64, lines int, vnLine, macLine uint64) {
		last = sim.Max(last, e.writeGroup(at, base, lines, vnLine, macLine))
	})
	return last
}

// ResetStats zeroes counters (cache contents are preserved).
func (e *Engine) ResetStats() { e.stats = Stats{} }
