package mee

import (
	"testing"

	"tensortee/internal/config"
	"tensortee/internal/dram"
	"tensortee/internal/sim"
)

func newTestEngine(mode Mode) (*Engine, *dram.Memory) {
	cfg := config.Default(config.BaselineSGXMGX)
	mem := dram.New(dram.DDR4_2400(), cfg.HostDRAM.Channels)
	layout := NewLayout(0, 1<<20, 64, 8) // 1M lines = 64MB data
	return NewEngine(mode, &cfg, mem, layout), mem
}

func TestLayoutSeparatesMetadata(t *testing.T) {
	l := NewLayout(0, 1024, 64, 8)
	dataEnd := uint64(1024 * 64)
	if l.VNLineAddr(0) < dataEnd {
		t.Error("VN metadata overlaps data")
	}
	if l.MACLineAddr(0) == l.VNLineAddr(0) {
		t.Error("VN and MAC share a line for line 0")
	}
	// 8 VNs of 8 bytes share one 64B metadata line.
	if l.VNLineAddr(0) != l.VNLineAddr(7*64) {
		t.Error("adjacent lines should share a VN line")
	}
	if l.VNLineAddr(0) == l.VNLineAddr(8*64) {
		t.Error("9th line should use the next VN line")
	}
}

func TestLayoutTreeGeometry(t *testing.T) {
	l := NewLayout(0, 64*8, 64, 8) // 512 data lines -> 64 VN lines -> levels 8,1
	if l.TreeDepth() != 2 {
		t.Errorf("TreeDepth = %d, want 2", l.TreeDepth())
	}
	// Nodes at the same level for nearby addresses should coincide.
	if l.TreeNodeAddr(0, 0) != l.TreeNodeAddr(0, 63*64) {
		t.Error("lines under the same tree node got different node addresses")
	}
	if l.TreeNodeAddr(1, 0) != l.TreeNodeAddr(1, 511*64) {
		t.Error("level-1 node should cover the whole region here")
	}
}

func TestLayoutMetadataBytes(t *testing.T) {
	l := NewLayout(0, 1024, 64, 8)
	got := l.MetadataBytes(7, 7)
	// 1024 lines * 14B = 14336 plus tree nodes (128 VN lines -> 16 + 2 + 1
	// levels... geometry-dependent), must exceed the flat part.
	if got < 14336 {
		t.Errorf("MetadataBytes = %d, want >= 14336", got)
	}
	// ~11% of 64KB data is the expected order (paper: 56-bit VN is 11%
	// overhead with MACs).
	if got > 20000 {
		t.Errorf("MetadataBytes = %d, unreasonably large", got)
	}
}

func TestModeOffChargesOnlyData(t *testing.T) {
	e, mem := newTestEngine(ModeOff)
	r := e.Read(0, 0)
	if r.DataReady != r.Verified {
		t.Error("ModeOff should not distinguish ready/verified")
	}
	if mem.Stats().Reads != 1 {
		t.Errorf("ModeOff read issued %d DRAM reads, want 1", mem.Stats().Reads)
	}
	if e.Stats().ExtraLines() != 0 {
		t.Error("ModeOff generated metadata traffic")
	}
}

func TestSGXReadChargesMetadata(t *testing.T) {
	e, mem := newTestEngine(ModeSGX)
	r := e.Read(0, 0)
	s := mem.Stats()
	// data + VN line + MAC line + >=1 tree node on a cold read
	if s.Reads < 4 {
		t.Errorf("SGX cold read issued %d DRAM reads, want >= 4", s.Reads)
	}
	if e.Stats().VNReads != 1 || e.Stats().MACReads != 1 {
		t.Errorf("metadata stats = %+v", e.Stats())
	}
	if e.Stats().TreeReads == 0 {
		t.Error("cold read did not walk the Merkle tree")
	}
	off, _ := newTestEngine(ModeOff)
	r0 := off.Read(0, 0)
	if r.DataReady <= r0.DataReady {
		t.Error("SGX read not slower than non-secure read")
	}
}

func TestSGXMetadataCacheAmortizes(t *testing.T) {
	e, _ := newTestEngine(ModeSGX)
	// Stream 64 sequential lines: VN/MAC/tree lines are shared 8:1, so
	// metadata misses must be far fewer than accesses.
	for i := 0; i < 64; i++ {
		e.Read(0, uint64(i*64))
	}
	st := e.Stats()
	if st.VNReads > 10 {
		t.Errorf("VN reads = %d for 64 sequential lines, want ~8", st.VNReads)
	}
	if st.MetaCacheHits == 0 {
		t.Error("metadata cache never hit on a streaming pattern")
	}
}

func TestSGXWriteChargesTreeUpdate(t *testing.T) {
	e, mem := newTestEngine(ModeSGX)
	done := e.Write(0, 0)
	if done == 0 {
		t.Error("write charged no time")
	}
	if mem.Stats().Writes == 0 {
		t.Error("write issued no DRAM write")
	}
	if e.Stats().MACOps == 0 || e.Stats().AESOps == 0 {
		t.Error("write skipped crypto engines")
	}
}

func TestTensorHitInBeatsSGX(t *testing.T) {
	sgx, _ := newTestEngine(ModeSGX)
	ten, _ := newTestEngine(ModeTensor)

	var sgxEnd, tenEnd sim.Time
	for i := 0; i < 256; i++ {
		addr := uint64(i * 64)
		sgxEnd = sgx.Read(sim.Time(i*100), addr).DataReady
		tenEnd = ten.TensorRead(sim.Time(i*100), addr, THitIn).DataReady
	}
	if tenEnd >= sgxEnd {
		t.Errorf("tensor hit-in (%d) not faster than SGX (%d)", tenEnd, sgxEnd)
	}
	if ten.Stats().ExtraLines() != 0 {
		t.Errorf("hit-in generated %d metadata lines, want 0", ten.Stats().ExtraLines())
	}
}

func TestTensorOutcomeCounters(t *testing.T) {
	e, _ := newTestEngine(ModeTensor)
	e.TensorRead(0, 0, THitIn)
	e.TensorRead(0, 64, THitBoundary)
	e.TensorRead(0, 128, TMiss)
	s := e.Stats()
	if s.HitIn != 1 || s.HitBoundary != 1 || s.Mis != 1 {
		t.Errorf("outcome counters = %+v", s)
	}
}

func TestTensorBoundaryChargesBackgroundVN(t *testing.T) {
	e, _ := newTestEngine(ModeTensor)
	r := e.TensorRead(0, 0, THitBoundary)
	if e.Stats().VNReads != 1 {
		t.Errorf("boundary hit VN reads = %d, want 1", e.Stats().VNReads)
	}
	// Speculative data release: DataReady must not wait for the VN check.
	if r.DataReady > r.Verified {
		t.Error("DataReady after Verified?")
	}
}

func TestTensorMissFallsBack(t *testing.T) {
	ten, _ := newTestEngine(ModeTensor)
	sgx, _ := newTestEngine(ModeSGX)
	rt := ten.TensorRead(0, 0, TMiss)
	rs := sgx.Read(0, 0)
	if rt.DataReady != rs.DataReady {
		t.Errorf("tensor miss (%d) differs from SGX read (%d)", rt.DataReady, rs.DataReady)
	}
}

func TestTensorWriteCheaperThanSGXWrite(t *testing.T) {
	sgx, sgxMem := newTestEngine(ModeSGX)
	ten, tenMem := newTestEngine(ModeTensor)
	for i := 0; i < 256; i++ {
		addr := uint64(i * 64)
		sgx.Write(sim.Time(i*100), addr)
		ten.TensorWrite(sim.Time(i*100), addr, THitIn)
	}
	if tenMem.BusyUntil() >= sgxMem.BusyUntil() {
		t.Errorf("tensor writes kept DRAM busy longer (%d) than SGX (%d)",
			tenMem.BusyUntil(), sgxMem.BusyUntil())
	}
	if ten.Stats().TreeReads+ten.Stats().TreeWrites != 0 {
		t.Error("tensor-mode writes touched the Merkle tree")
	}
}

func TestResetStats(t *testing.T) {
	e, _ := newTestEngine(ModeSGX)
	e.Read(0, 0)
	e.ResetStats()
	if e.Stats() != (Stats{}) {
		t.Error("ResetStats left counters")
	}
}

func TestModeString(t *testing.T) {
	if ModeOff.String() != "off" || ModeSGX.String() != "sgx" || ModeTensor.String() != "tensor" {
		t.Error("mode strings wrong")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode should format")
	}
}
