package mee

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"tensortee/internal/crypto"
)

func newTestRegion(size int) *Region {
	key := crypto.MustKey([]byte("0123456789abcdef"))
	return NewRegion(key, 0x10000, size, 64)
}

func line(fill byte) []byte {
	b := make([]byte, 64)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestWriteReadRoundTrip(t *testing.T) {
	r := newTestRegion(4096)
	want := line(0xab)
	r.WriteLine(0x10000, want)
	got, err := r.ReadLine(0x10000)
	if err != nil {
		t.Fatalf("ReadLine: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Error("roundtrip corrupted data")
	}
}

func TestCiphertextIsNotPlaintext(t *testing.T) {
	r := newTestRegion(4096)
	want := line(0x55)
	r.WriteLine(0x10040, want)
	// Inspect raw storage: must not contain the plaintext.
	if bytes.Contains(r.cipher, want[:16]) {
		t.Error("plaintext visible in off-chip storage")
	}
}

func TestVNIncrementsPerWrite(t *testing.T) {
	r := newTestRegion(4096)
	if r.VN(0x10000) != 0 {
		t.Error("fresh line VN != 0")
	}
	r.WriteLine(0x10000, line(1))
	r.WriteLine(0x10000, line(2))
	if r.VN(0x10000) != 2 {
		t.Errorf("VN = %d, want 2", r.VN(0x10000))
	}
	// Other lines unaffected.
	if r.VN(0x10040) != 0 {
		t.Error("neighbour VN changed")
	}
}

func TestFreshnessCiphertextChangesForSamePlaintext(t *testing.T) {
	r := newTestRegion(4096)
	pl := line(0x77)
	r.WriteLine(0x10000, pl)
	ct1 := append([]byte(nil), r.cipher[:64]...)
	r.WriteLine(0x10000, pl)
	ct2 := append([]byte(nil), r.cipher[:64]...)
	if bytes.Equal(ct1, ct2) {
		t.Error("same plaintext produced same ciphertext twice — VN not mixed in")
	}
}

func TestTamperDetected(t *testing.T) {
	r := newTestRegion(4096)
	r.WriteLine(0x10080, line(9))
	r.TamperCipher(0x10080, 13)
	_, err := r.ReadLine(0x10080)
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("tampered line read succeeded (err=%v)", err)
	}
}

func TestReplayDetected(t *testing.T) {
	r := newTestRegion(4096)
	addr := uint64(0x10000 + 3*64)
	r.WriteLine(addr, line(1))
	snap := r.Snapshot(addr) // adversary snapshots (ct, VN, MAC)
	r.WriteLine(addr, line(2))
	r.Replay(snap) // adversary rolls everything off-chip back
	_, err := r.ReadLine(addr)
	if err == nil {
		t.Fatal("replay attack succeeded against SGX-like path")
	}
}

func TestVNTamperDetected(t *testing.T) {
	r := newTestRegion(4096)
	addr := uint64(0x10000)
	r.WriteLine(addr, line(5))
	r.TamperVN(addr, 99)
	if _, err := r.ReadLine(addr); err == nil {
		t.Fatal("forged VN accepted")
	}
}

func TestReadLineWithVN(t *testing.T) {
	r := newTestRegion(4096)
	addr := uint64(0x10040)
	r.WriteLine(addr, line(3))
	r.WriteLine(addr, line(4))
	// Tensor-mode read with the correct on-chip VN: no Merkle needed.
	got, err := r.ReadLineWithVN(addr, 2)
	if err != nil {
		t.Fatalf("ReadLineWithVN: %v", err)
	}
	if !bytes.Equal(got, line(4)) {
		t.Error("wrong plaintext")
	}
	// A stale VN must fail the MAC check.
	if _, err := r.ReadLineWithVN(addr, 1); err == nil {
		t.Error("stale on-chip VN accepted")
	}
}

func TestReadLineUnverifiedReturnsMAC(t *testing.T) {
	r := newTestRegion(4096)
	addr := uint64(0x10000)
	r.WriteLine(addr, line(8))
	pl, mac := r.ReadLineUnverified(addr, 1)
	if !bytes.Equal(pl, line(8)) {
		t.Error("unverified read wrong plaintext")
	}
	if mac != r.LineMAC(addr) {
		t.Error("returned MAC disagrees with stored MAC for untampered line")
	}
	// Tamper: plaintext silently corrupts, but the recomputed MAC now
	// differs from the stored one — delayed verification catches it.
	r.TamperCipher(addr, 5)
	_, mac2 := r.ReadLineUnverified(addr, 1)
	if mac2 == r.LineMAC(addr) {
		t.Error("tampered line produced matching MAC")
	}
}

func TestStoredLineMACXOR(t *testing.T) {
	r := newTestRegion(4096)
	base := uint64(0x10000)
	for i := 0; i < 4; i++ {
		r.WriteLine(base+uint64(i*64), line(byte(i)))
	}
	var want uint64
	for i := 0; i < 4; i++ {
		want ^= r.LineMAC(base + uint64(i*64))
	}
	if got := r.StoredLineMACXOR(base, 256); got != want&crypto.MACMask {
		t.Errorf("StoredLineMACXOR = %#x, want %#x", got, want)
	}
}

func TestWriteBytesReadBytes(t *testing.T) {
	r := newTestRegion(4096)
	payload := []byte("unaligned payload spanning multiple cachelines: 0123456789 0123456789 0123456789")
	addr := uint64(0x10000 + 17) // unaligned start
	if _, err := r.WriteBytes(addr, payload); err != nil {
		t.Fatalf("WriteBytes: %v", err)
	}
	got, err := r.ReadBytes(addr, len(payload))
	if err != nil {
		t.Fatalf("ReadBytes: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("roundtrip failed: %q", got)
	}
}

func TestLineIndexBounds(t *testing.T) {
	r := newTestRegion(4096)
	for _, addr := range []uint64{0xffff, 0x10000 + 4096} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("address %#x accepted", addr)
				}
			}()
			r.LineIndex(addr)
		}()
	}
}

// Property: arbitrary write sequences always read back the latest value,
// and the Merkle root changes on every write.
func TestRegionConsistencyProperty(t *testing.T) {
	f := func(ops []struct {
		Line uint8
		Fill byte
	}) bool {
		r := newTestRegion(64 * 16)
		latest := map[int]byte{}
		for _, op := range ops {
			idx := int(op.Line) % 16
			r.WriteLine(r.LineAddr(idx), line(op.Fill))
			latest[idx] = op.Fill
		}
		for idx, fill := range latest {
			got, err := r.ReadLine(r.LineAddr(idx))
			if err != nil || !bytes.Equal(got, line(fill)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: ciphertext portability — a second region with the same key and
// line geometry decrypts a line given only (line index, VN, ciphertext,
// MAC), regardless of its own base address. This is the unified-granularity
// transfer property (Section 4.4).
func TestCiphertextPortabilityProperty(t *testing.T) {
	key := crypto.MustKey([]byte("0123456789abcdef"))
	f := func(fill byte, lineIdx uint8) bool {
		src := NewRegion(key, 0x10000, 64*32, 64)
		dst := NewRegion(key, 0xdead0000, 64*32, 64)
		idx := int(lineIdx) % 32
		src.WriteLine(src.LineAddr(idx), line(fill))

		// Move ciphertext + metadata (what the direct channel and trusted
		// channel carry).
		exp := src.ExportLine(src.LineAddr(idx))
		if err := dst.ImportLine(exp, true); err != nil {
			return false
		}
		got, err := dst.ReadLineWithVN(dst.LineAddr(idx), exp.VN)
		return err == nil && bytes.Equal(got, line(fill))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
