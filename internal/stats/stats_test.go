package stats

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("beta", 42)
	out := tb.String()
	if !strings.Contains(out, "## demo") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.500") {
		t.Errorf("row formatting wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("rendered %d lines:\n%s", len(lines), out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("x")
	if strings.Contains(tb.String(), "##") {
		t.Error("empty title rendered")
	}
}

func TestFloatFormatting(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		12345:   "12345",
		42.42:   "42.4",
		0.123:   "0.123",
		0.00001: "1.00e-05",
	}
	for v, want := range cases {
		if got := fmtFloat(v); got != want {
			t.Errorf("fmtFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Add(1, 2)
	s.Add(3, 4)
	if len(s.X) != 2 || s.Y[1] != 4 {
		t.Error("series add broken")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean = %g, want 4", got)
	}
	if GeoMean(nil) != 0 {
		t.Error("empty geomean should be 0")
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Error("non-positive geomean should be 0")
	}
}

func TestMeanMedian(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("empty mean should be 0")
	}
	if Median([]float64{5, 1, 3}) != 3 {
		t.Error("odd median wrong")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Error("even median wrong")
	}
	if Median(nil) != 0 {
		t.Error("empty median should be 0")
	}
}
