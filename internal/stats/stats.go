// Package stats provides the small reporting helpers the experiment
// harness uses to print paper-style tables and series.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Cell is one table value: the rendered text plus, for numeric cells, the
// raw number AddRow received — so consumers (the public Result API, JSON
// and CSV renderers) get typed data instead of re-parsing strings.
type Cell struct {
	Text  string
	Num   float64
	IsNum bool
}

// Table is a simple column-aligned text table of typed cells.
type Table struct {
	Title   string
	Headers []string
	// Cells holds the typed values of every row.
	Cells [][]Cell
}

// NewTable creates a table with the given headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v and numeric values
// additionally keep their raw number.
func (t *Table) AddRow(cells ...any) {
	typed := make([]Cell, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			typed[i] = Cell{Text: fmtFloat(v), Num: v, IsNum: true}
		case float32:
			typed[i] = Cell{Text: fmtFloat(float64(v)), Num: float64(v), IsNum: true}
		case int:
			typed[i] = Cell{Text: fmt.Sprint(v), Num: float64(v), IsNum: true}
		case int64:
			typed[i] = Cell{Text: fmt.Sprint(v), Num: float64(v), IsNum: true}
		case uint64:
			typed[i] = Cell{Text: fmt.Sprint(v), Num: float64(v), IsNum: true}
		case string:
			typed[i] = Cell{Text: v}
		default:
			typed[i] = Cell{Text: fmt.Sprint(c)}
		}
	}
	t.Cells = append(t.Cells, typed)
}

func fmtFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	case v >= 0.01:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.2e", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Cells {
		for i, c := range r {
			if i < len(widths) && len(c.Text) > widths[i] {
				widths[i] = len(c.Text)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			// Ragged rows can carry more cells than there are headers;
			// render the extras unpadded instead of indexing past widths.
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s", w, c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Cells {
		row := make([]string, len(r))
		for i, c := range r {
			row[i] = c.Text
		}
		writeRow(row)
	}
	return b.String()
}

// Series is a named sequence of (x, y) points (a figure line).
type Series struct {
	Name   string
	X      []float64
	Y      []float64
	XLabel string
	YLabel string
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// GeoMean returns the geometric mean of vals (0 if empty or non-positive).
func GeoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}

// Mean returns the arithmetic mean.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// Median returns the middle value (average of two middles for even n).
func Median(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
