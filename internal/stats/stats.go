// Package stats provides the small reporting helpers the experiment
// harness uses to print paper-style tables and series.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmtFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func fmtFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	case v >= 0.01:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.2e", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Series is a named sequence of (x, y) points (a figure line).
type Series struct {
	Name   string
	X      []float64
	Y      []float64
	XLabel string
	YLabel string
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// GeoMean returns the geometric mean of vals (0 if empty or non-positive).
func GeoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}

// Mean returns the arithmetic mean.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// Median returns the middle value (average of two middles for even n).
func Median(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
