package scenario

import (
	"errors"
	"testing"
)

func TestNormalizeAxisMatchesSweepValidation(t *testing.T) {
	name, vals, err := NormalizeAxis("  Meta_Cache_KB ", []float64{64, 16})
	if err != nil {
		t.Fatalf("NormalizeAxis: %v", err)
	}
	if name != "meta_cache_kb" {
		t.Fatalf("canonical name = %q", name)
	}
	if len(vals) != 2 || vals[0] != 64 || vals[1] != 16 {
		t.Fatalf("values = %v", vals)
	}

	for _, tc := range []struct {
		axis   string
		values []float64
	}{
		{"no_such_axis", []float64{1}},
		{"layers", nil},
		{"layers", []float64{1.5}}, // model axes are integral
		{"meta_cache_kb", []float64{-3}},
		{"link_gbs", make([]float64, 65)}, // over the per-axis cap
	} {
		if tc.axis == "link_gbs" {
			for i := range tc.values {
				tc.values[i] = float64(i + 1)
			}
		}
		_, _, err := NormalizeAxis(tc.axis, tc.values)
		if !errors.Is(err, ErrInvalidSpec) || !errors.Is(err, ErrBadSweep) {
			t.Errorf("NormalizeAxis(%q, %v) error = %v, want ErrInvalidSpec+ErrBadSweep", tc.axis, tc.values, err)
		}
	}
}

func TestApplyAxisModelDimension(t *testing.T) {
	in := Spec{Model: ModelSpec{Layers: 2, Hidden: 256, Heads: 4}}
	out, err := ApplyAxis(in, "layers", 7)
	if err != nil {
		t.Fatalf("ApplyAxis: %v", err)
	}
	if out.Model.Layers != 7 || out.Model.Hidden != 256 {
		t.Fatalf("applied model = %+v", out.Model)
	}
	if in.Model.Layers != 2 {
		t.Fatalf("input mutated: %+v", in.Model)
	}
}

func TestApplyAxisOverrideDoesNotAliasInput(t *testing.T) {
	shared := &Overrides{MetaCacheKB: 16, DRAMChannels: 3}
	in := Spec{
		Model: ModelSpec{Layers: 2, Hidden: 256, Heads: 4},
		Systems: []SystemSpec{
			{Kind: "sgx-mgx", Overrides: shared},
			{Kind: "tensortee"},
		},
	}
	out, err := ApplyAxis(in, "meta_cache_kb", 64)
	if err != nil {
		t.Fatalf("ApplyAxis: %v", err)
	}
	// Axis value wins over the system's own override on every system.
	for i, sys := range out.Systems {
		if sys.Overrides == nil || sys.Overrides.MetaCacheKB != 64 {
			t.Fatalf("system %d overrides = %+v, want meta cache 64", i, sys.Overrides)
		}
	}
	// Other override fields survive the copy.
	if out.Systems[0].Overrides.DRAMChannels != 3 {
		t.Fatalf("dram channels lost: %+v", out.Systems[0].Overrides)
	}
	// The shared input override is untouched (deep copy, no aliasing).
	if shared.MetaCacheKB != 16 {
		t.Fatalf("input override mutated: %+v", shared)
	}

	if _, err := ApplyAxis(in, "bogus", 1); !errors.Is(err, ErrBadSweep) {
		t.Fatalf("unknown axis error = %v", err)
	}
}
