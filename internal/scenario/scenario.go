// Package scenario turns declarative experiment specifications into runs
// of the calibrated simulation pipeline. A Spec names a workload model
// (one of the Table-2 zoo or a custom transformer shape), a set of systems
// with structured overrides of the Table-1 configuration, a metric set,
// and an optional one-axis sweep — everything the paper's fixed fig/tab
// registry hard-codes, opened up to user-defined (model x system x
// protection x sweep-axis) experiments.
//
// Specs are plain JSON-settable structs:
//
//	{
//	  "name": "llama-meta-cache",
//	  "model": {"layers": 32, "hidden": 4096, "heads": 32, "ffn": 11008,
//	            "vocab": 32000, "batch": 2, "seqlen": 1024},
//	  "systems": [{"kind": "tensortee"}],
//	  "metrics": ["total", "cpu"],
//	  "sweep": {"axis": "meta_cache_kb", "values": [64, 128, 256]}
//	}
//
// Validation failures are typed: every error matches ErrInvalidSpec with
// errors.Is, and the specific causes (ErrUnknownModel, ErrBadSweep,
// ErrUnsafeOverride, ...) match too, so callers can map them to exit codes
// or HTTP statuses without string matching.
package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"

	"tensortee/internal/config"
)

// Sentinel errors. Wrapped failures match both ErrInvalidSpec and the
// specific sentinel with errors.Is.
var (
	// ErrInvalidSpec reports any specification the engine refuses to run.
	ErrInvalidSpec = errors.New("scenario: invalid spec")
	// ErrUnknownModel reports a model name outside the Table-2 zoo.
	ErrUnknownModel = errors.New("scenario: unknown model")
	// ErrBadSweep reports a malformed sweep: unknown axis, no values,
	// zero/negative bounds, or non-integral values on an integer axis.
	ErrBadSweep = errors.New("scenario: invalid sweep")
	// ErrUnsafeOverride reports an override that would invalidate system
	// calibration (e.g. a protected region smaller than the calibration
	// window), so the measured cost-per-byte would be meaningless.
	ErrUnsafeOverride = errors.New("scenario: override would break calibration")
	// ErrUnknownMetric reports a metric name outside Metrics().
	ErrUnknownMetric = errors.New("scenario: unknown metric")
)

func invalid(sentinel error, format string, args ...any) error {
	detail := fmt.Sprintf(format, args...)
	if sentinel == nil || sentinel == ErrInvalidSpec {
		return fmt.Errorf("%w: %s", ErrInvalidSpec, detail)
	}
	return fmt.Errorf("%w: %w: %s", ErrInvalidSpec, sentinel, detail)
}

// ModelSpec selects the workload: either Name (one of workload.Models())
// or a custom transformer shape. Non-zero dimension fields override the
// named model's dimensions, so a zoo model can be reshaped ("LLAMA2-7B but
// hidden 8192"). For fully custom models, Layers, Hidden and Heads are
// required; FFN defaults to 4*Hidden, Vocab to 50257, Batch to 1 and
// SeqLen to 1024.
type ModelSpec struct {
	// Name selects a zoo model (one of workload.Models()); empty means a
	// fully custom shape.
	Name string `json:"name,omitempty"`
	// Layers is the transformer block count.
	Layers int `json:"layers,omitempty"`
	// Hidden is the model (embedding) dimension.
	Hidden int `json:"hidden,omitempty"`
	// Heads is the attention head count (must divide Hidden).
	Heads int `json:"heads,omitempty"`
	// FFNDim is the feed-forward inner dimension (default 4*Hidden).
	FFNDim int `json:"ffn,omitempty"`
	// Vocab is the vocabulary size (default 50257).
	Vocab int `json:"vocab,omitempty"`
	// Batch is the training batch size (default 1).
	Batch int `json:"batch,omitempty"`
	// SeqLen is the sequence length (default 1024).
	SeqLen int `json:"seqlen,omitempty"`
}

// Overrides adjusts Table-1 knobs for one system. Zero values leave the
// default untouched; negative values are rejected.
type Overrides struct {
	// MEEMode forces the CPU protection path: "sgx" (per-cacheline
	// VN+MAC+Merkle) or "tensor" (TenAnalyzer in the memory controller).
	// "off" is only valid on the non-secure kind.
	MEEMode string `json:"mee_mode,omitempty"`
	// MetaCacheKB sizes the MEE metadata cache (default 32).
	MetaCacheKB int `json:"meta_cache_kb,omitempty"`
	// DRAMChannels sets the host DDR4 channel count (default 2).
	DRAMChannels int `json:"dram_channels,omitempty"`
	// NPUAESEngines sets the NPU communication-path AES engine count
	// (default 1; Section 3.3 sizes one engine at ~8 GB/s).
	NPUAESEngines int `json:"npu_aes_engines,omitempty"`
	// NPUBandwidthGBs sets the NPU GDDR bandwidth in GB/s (default 128).
	NPUBandwidthGBs float64 `json:"npu_bandwidth_gbs,omitempty"`
	// LinkGBs sets the PCIe effective DMA bandwidth in GB/s (default 26).
	LinkGBs float64 `json:"link_gbs,omitempty"`
	// StagingGBs sets the staged-copy bandwidth in GB/s (default 12).
	StagingGBs float64 `json:"staging_gbs,omitempty"`
	// MACGranBytes sets the NPU MAC granularity in bytes (default 64; must
	// be at least the cacheline size; >64 selects coarse grouping).
	MACGranBytes int `json:"mac_gran_bytes,omitempty"`
	// RegionMB sets the MEE protected-region span in MB. Values below the
	// calibration window (64 MB) are rejected with ErrUnsafeOverride.
	RegionMB int `json:"region_mb,omitempty"`
}

// SystemSpec is one evaluated system: a base kind plus overrides.
type SystemSpec struct {
	// Kind is "non-secure", "sgx-mgx" or "tensortee" (the paper's three
	// systems; common spellings like "sgx+mgx" are accepted).
	Kind string `json:"kind"`
	// Overrides adjusts the kind's Table-1 defaults; nil keeps them all.
	Overrides *Overrides `json:"overrides,omitempty"`
}

// Sweep is the optional one-axis parameter sweep. The axis is either a
// model dimension (layers, hidden, heads, ffn, vocab, batch, seqlen) or an
// override field (meta_cache_kb, dram_channels, npu_aes_engines,
// npu_bandwidth_gbs, link_gbs, staging_gbs, mac_gran_bytes, region_mb).
// Model axes reshape the workload per point; override axes apply to every
// system in the spec on top of its own overrides.
type Sweep struct {
	// Axis names the swept dimension.
	Axis string `json:"axis"`
	// Values are the settings to evaluate, one point each, in order.
	Values []float64 `json:"values"`
}

// Spec is one declarative experiment.
type Spec struct {
	// Name labels the scenario (default "custom"); it becomes part of the
	// result id ("scenario:<name>").
	Name string `json:"name,omitempty"`
	// Model is the workload to simulate.
	Model ModelSpec `json:"model"`
	// Systems are the configurations to evaluate, baseline first.
	Systems []SystemSpec `json:"systems"`
	// Metrics selects the reported columns (see Metrics()); empty selects
	// all of them (speedup only when at least two systems are listed).
	Metrics []string `json:"metrics,omitempty"`
	// Sweep, when present, evaluates the spec once per axis value.
	Sweep *Sweep `json:"sweep,omitempty"`
}

// Metrics lists the valid metric names: per-phase visible times of one
// ZeRO-Offload training step in seconds, plus "speedup" — the ratio of the
// first listed system's total to this system's total (list the baseline
// first to reproduce the paper's speedup convention).
func Metrics() []string {
	return []string{"total", "npu", "cpu", "comm_w", "comm_g", "comm", "speedup"}
}

// modelAxes maps sweep axes onto ModelSpec fields.
var modelAxes = map[string]func(*ModelSpec, int){
	"layers": func(m *ModelSpec, v int) { m.Layers = v },
	"hidden": func(m *ModelSpec, v int) { m.Hidden = v },
	"heads":  func(m *ModelSpec, v int) { m.Heads = v },
	"ffn":    func(m *ModelSpec, v int) { m.FFNDim = v },
	"vocab":  func(m *ModelSpec, v int) { m.Vocab = v },
	"batch":  func(m *ModelSpec, v int) { m.Batch = v },
	"seqlen": func(m *ModelSpec, v int) { m.SeqLen = v },
}

// overrideAxes maps sweep axes onto Overrides fields; the bool reports
// whether the axis takes integers only.
var overrideAxes = map[string]struct {
	integral bool
	set      func(*Overrides, float64)
}{
	"meta_cache_kb":     {true, func(o *Overrides, v float64) { o.MetaCacheKB = int(v) }},
	"dram_channels":     {true, func(o *Overrides, v float64) { o.DRAMChannels = int(v) }},
	"npu_aes_engines":   {true, func(o *Overrides, v float64) { o.NPUAESEngines = int(v) }},
	"npu_bandwidth_gbs": {false, func(o *Overrides, v float64) { o.NPUBandwidthGBs = v }},
	"link_gbs":          {false, func(o *Overrides, v float64) { o.LinkGBs = v }},
	"staging_gbs":       {false, func(o *Overrides, v float64) { o.StagingGBs = v }},
	"mac_gran_bytes":    {true, func(o *Overrides, v float64) { o.MACGranBytes = int(v) }},
	"region_mb":         {true, func(o *Overrides, v float64) { o.RegionMB = int(v) }},
}

// SweepAxes lists the valid sweep axis names, model axes first.
func SweepAxes() []string {
	axes := make([]string, 0, len(modelAxes)+len(overrideAxes))
	for a := range modelAxes {
		axes = append(axes, a)
	}
	for a := range overrideAxes {
		axes = append(axes, a)
	}
	sort.Strings(axes)
	return axes
}

// parseKind normalizes a system-kind spelling.
func parseKind(s string) (config.SystemKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "non-secure", "nonsecure", "ns":
		return config.NonSecure, nil
	case "sgx-mgx", "sgx+mgx", "sgxmgx", "baseline":
		return config.BaselineSGXMGX, nil
	case "tensortee", "tensor-tee":
		return config.TensorTEE, nil
	default:
		return 0, invalid(nil, "unknown system kind %q (want non-secure, sgx-mgx or tensortee)", s)
	}
}

// kindLabel renders the canonical spelling for fingerprints and tables.
func kindLabel(k config.SystemKind) string {
	switch k {
	case config.NonSecure:
		return "non-secure"
	case config.BaselineSGXMGX:
		return "sgx-mgx"
	default:
		return "tensortee"
	}
}

// Validate checks the spec without running anything. Every returned error
// matches ErrInvalidSpec with errors.Is; specific causes additionally
// match ErrUnknownModel, ErrBadSweep, ErrUnsafeOverride or
// ErrUnknownMetric.
func (s *Spec) Validate() error {
	_, err := Compile(*s)
	return err
}

// Fingerprint returns a stable hex content hash of the normalized spec.
// Two specs that differ only in spelling (JSON key order, kind casing,
// omitted defaults) share a fingerprint, so caches keyed on it deduplicate
// equivalent requests. Invalid specs fingerprint over their raw form.
func (s *Spec) Fingerprint() string {
	var doc any
	if p, err := Compile(*s); err == nil {
		doc = p.Spec
	} else {
		doc = s
	}
	b, err := json.Marshal(doc)
	if err != nil {
		b = []byte(fmt.Sprintf("unmarshalable:%v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16])
}
