package scenario

import "strings"

// This file is the point-decomposition surface the campaign tier builds
// on: a campaign is a cross product over several axes, and each of its
// points is an ordinary single-point Spec produced by applying one value
// per axis to a base Spec. Keeping the axis vocabulary (modelAxes /
// overrideAxes) in one place means a sweep axis accepted here is exactly
// the set a one-axis Spec sweep accepts, and vice versa.

// NormalizeAxis validates one sweep axis name and its value list — the
// same checks a Spec-level Sweep gets (known axis, 1..64 positive finite
// values, integral on integer axes) — and returns the canonical axis
// spelling with the validated values. Every error matches ErrInvalidSpec
// and ErrBadSweep.
func NormalizeAxis(axis string, values []float64) (string, []float64, error) {
	sw := Sweep{Axis: axis, Values: values}
	vals, err := resolveSweep(&sw)
	if err != nil {
		return "", nil, err
	}
	return strings.ToLower(strings.TrimSpace(axis)), vals, nil
}

// ApplyAxis returns a copy of s with one axis value applied: model axes
// reshape the workload, override axes set the field on every listed
// system (on top of — and overriding — that system's own override, the
// same precedence a Spec-level sweep has). The input spec is not mutated;
// systems and their override sets are deep-copied. The value is not
// range-checked here — compile the resulting spec to validate it.
func ApplyAxis(s Spec, axis string, value float64) (Spec, error) {
	axis = strings.ToLower(strings.TrimSpace(axis))
	out := s
	if set, ok := modelAxes[axis]; ok {
		set(&out.Model, int(value))
		return out, nil
	}
	oa, ok := overrideAxes[axis]
	if !ok {
		return Spec{}, invalid(ErrBadSweep, "unknown axis %q (want one of %s)", axis, strings.Join(SweepAxes(), ", "))
	}
	out.Systems = make([]SystemSpec, len(s.Systems))
	copy(out.Systems, s.Systems)
	for i := range out.Systems {
		var o Overrides
		if out.Systems[i].Overrides != nil {
			o = *out.Systems[i].Overrides
		}
		oa.set(&o, value)
		out.Systems[i].Overrides = &o
	}
	return out, nil
}
