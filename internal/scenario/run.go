package scenario

import (
	"tensortee/internal/core"
	"tensortee/internal/experiments"
	"tensortee/internal/sim"
	"tensortee/internal/stats"
)

// speedup is baseline/total, or 0 when the simulated step rounds to a zero
// duration (degenerate but representable configs must not emit Inf/NaN
// into JSON rendering).
func speedup(baseline, total sim.Dur) float64 {
	if total == 0 {
		return 0
	}
	return float64(baseline) / float64(total)
}

// metricColumn maps a metric name to its table column header.
func metricColumn(m string) string {
	switch m {
	case "total":
		return "total (s)"
	case "npu":
		return "npu (s)"
	case "cpu":
		return "cpu (s)"
	case "comm_w":
		return "commW (s)"
	case "comm_g":
		return "commG (s)"
	case "comm":
		return "comm (s)"
	default:
		return "speedup"
	}
}

// Run compiles and executes the spec under env, producing the same Report
// shape the registry experiments emit (so the Runner wraps it into the
// public typed Result unchanged). Systems resolve through
// env.SystemFromConfig, so a caching environment calibrates each distinct
// configuration once and shares it with every other scenario — and with
// the registry experiments, when the configuration is a Table-1 default.
func Run(env *experiments.Env, spec Spec) (*experiments.Report, error) {
	plan, err := Compile(spec)
	if err != nil {
		return nil, err
	}

	type cell struct {
		b   core.StepBreakdown
		err error
	}
	nSys := len(plan.Spec.Systems)
	cells := make([]cell, len(plan.Points)*nSys)
	experiments.Sweep(len(cells), func(i int) {
		pt, si := plan.Points[i/nSys], i%nSys
		sys, err := env.SystemFromConfig(pt.Configs[si])
		if err != nil {
			cells[i].err = err
			return
		}
		cells[i].b = sys.TrainStep(pt.Model)
	})
	for _, c := range cells {
		if c.err != nil {
			return nil, c.err
		}
	}

	r := &experiments.Report{
		ID:      "scenario:" + plan.Spec.Name,
		Title:   "Custom scenario: " + plan.Spec.Name,
		Scalars: map[string]float64{},
	}
	cols := []string{"point", "model", "system"}
	for _, m := range plan.Metrics {
		cols = append(cols, metricColumn(m))
	}
	tb := stats.NewTable("one ZeRO-Offload training step", cols...)

	var lastSpeedups []float64
	for pi, pt := range plan.Points {
		first := cells[pi*nSys].b.Total()
		for si, label := range plan.SystemLabels {
			b := cells[pi*nSys+si].b
			row := []any{pt.Label, pt.Model.Name, label}
			for _, m := range plan.Metrics {
				var v float64
				switch m {
				case "total":
					v = b.Total().Seconds()
				case "npu":
					v = b.NPU.Seconds()
				case "cpu":
					v = b.CPU.Seconds()
				case "comm_w":
					v = b.CommW.Seconds()
				case "comm_g":
					v = b.CommG.Seconds()
				case "comm":
					v = (b.CommW + b.CommG).Seconds()
				case "speedup":
					// Ratio of the first listed system's total to this
					// one's, computed on the raw simulated durations (the
					// paper's convention with the baseline listed first).
					v = speedup(first, b.Total())
				}
				row = append(row, v)
			}
			tb.AddRow(row...)
			if si == nSys-1 && nSys > 1 {
				lastSpeedups = append(lastSpeedups, speedup(first, b.Total()))
			}
		}
	}
	r.Tables = append(r.Tables, tb)

	r.Scalars["points"] = float64(len(plan.Points))
	r.Scalars["systems"] = float64(nSys)
	if len(lastSpeedups) > 0 {
		r.Scalars["avg_speedup"] = stats.Mean(lastSpeedups)
	}
	// The last listed system's step time at the last point: the scalar a
	// "total" objective search minimizes. For the single-point scenarios
	// campaigns materialize, this is simply "the step time of the system
	// under study".
	r.Scalars["total_s"] = cells[len(cells)-1].b.Total().Seconds()
	if plan.Spec.Sweep != nil {
		r.Notes = append(r.Notes, "sweep over "+plan.Spec.Sweep.Axis)
	}
	for _, m := range plan.Metrics {
		if m == "speedup" {
			r.Notes = append(r.Notes, "speedup is relative to the first listed system")
			break
		}
	}
	r.Notes = append(r.Notes, "spec fingerprint "+plan.Spec.Fingerprint())
	return r, nil
}
