package scenario

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"tensortee/internal/config"
	"tensortee/internal/core"
	"tensortee/internal/experiments"
)

// minimal returns a valid one-system spec to mutate per case.
func minimal() Spec {
	return Spec{
		Model:   ModelSpec{Name: "GPT2-M"},
		Systems: []SystemSpec{{Kind: "tensortee"}},
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name     string
		mutate   func(*Spec)
		sentinel error
	}{
		{"unknown model", func(s *Spec) { s.Model.Name = "GPT-9000" }, ErrUnknownModel},
		{"no systems", func(s *Spec) { s.Systems = nil }, nil},
		{"unknown kind", func(s *Spec) { s.Systems[0].Kind = "enclave9" }, nil},
		{"custom model missing dims", func(s *Spec) { s.Model = ModelSpec{Layers: 4} }, nil},
		{"negative model dim", func(s *Spec) { s.Model.Hidden = -1 }, nil},
		{"hidden not divisible by heads", func(s *Spec) { s.Model = ModelSpec{Layers: 2, Hidden: 100, Heads: 3} }, nil},
		{"unknown metric", func(s *Spec) { s.Metrics = []string{"total", "joules"} }, ErrUnknownMetric},
		{"unknown sweep axis", func(s *Spec) { s.Sweep = &Sweep{Axis: "voltage", Values: []float64{1}} }, ErrBadSweep},
		{"empty sweep values", func(s *Spec) { s.Sweep = &Sweep{Axis: "hidden"} }, ErrBadSweep},
		{"zero sweep bound", func(s *Spec) { s.Sweep = &Sweep{Axis: "hidden", Values: []float64{1024, 0}} }, ErrBadSweep},
		{"negative sweep bound", func(s *Spec) { s.Sweep = &Sweep{Axis: "meta_cache_kb", Values: []float64{-64}} }, ErrBadSweep},
		{"fractional integer axis", func(s *Spec) { s.Sweep = &Sweep{Axis: "dram_channels", Values: []float64{1.5}} }, ErrBadSweep},
		{"negative override", func(s *Spec) { s.Systems[0].Overrides = &Overrides{MetaCacheKB: -1} }, nil},
		{"unknown mee mode", func(s *Spec) { s.Systems[0].Overrides = &Overrides{MEEMode: "fhe"} }, nil},
		{"mee mode on non-secure", func(s *Spec) {
			s.Systems = []SystemSpec{{Kind: "non-secure", Overrides: &Overrides{MEEMode: "tensor"}}}
		}, nil},
		{"mee off on secure kind", func(s *Spec) { s.Systems[0].Overrides = &Overrides{MEEMode: "off"} }, nil},
		{"region below calibration window", func(s *Spec) { s.Systems[0].Overrides = &Overrides{RegionMB: 16} }, ErrUnsafeOverride},
		{"region swept below calibration window", func(s *Spec) {
			s.Sweep = &Sweep{Axis: "region_mb", Values: []float64{16}}
		}, ErrUnsafeOverride},
		{"region above bound", func(s *Spec) { s.Systems[0].Overrides = &Overrides{RegionMB: 1 << 20} }, nil},
		{"meta cache above bound", func(s *Spec) { s.Systems[0].Overrides = &Overrides{MetaCacheKB: maxMetaCacheKB + 1} }, nil},
		{"meta cache would overflow shift", func(s *Spec) { s.Systems[0].Overrides = &Overrides{MetaCacheKB: 1 << 54} }, nil},
		{"dram channels above bound", func(s *Spec) { s.Systems[0].Overrides = &Overrides{DRAMChannels: maxDRAMChannels + 1} }, nil},
		{"aes engines above bound", func(s *Spec) { s.Systems[0].Overrides = &Overrides{NPUAESEngines: maxAESEngines + 1} }, nil},
		{"mac granularity above bound", func(s *Spec) { s.Systems[0].Overrides = &Overrides{MACGranBytes: maxMACGranBytes + 1} }, nil},
		{"bandwidth above bound", func(s *Spec) { s.Systems[0].Overrides = &Overrides{LinkGBs: 1e12} }, nil},
		{"swept meta cache above bound", func(s *Spec) {
			s.Sweep = &Sweep{Axis: "meta_cache_kb", Values: []float64{1e18}}
		}, nil},
		{"region would wrap shift into valid window", func(s *Spec) {
			// (1<<44)+64 MB shifted <<20 wraps an int64 to exactly 64 MB.
			s.Systems[0].Overrides = &Overrides{RegionMB: 1<<44 + 64}
		}, nil},
		{"point-system product above bound", func(s *Spec) {
			for i := 1; i < maxSystems; i++ {
				s.Systems = append(s.Systems, SystemSpec{Kind: "tensortee"})
			}
			vals := make([]float64, maxSweepPoints)
			for i := range vals {
				vals[i] = float64(i + 1)
			}
			s.Sweep = &Sweep{Axis: "layers", Values: vals}
		}, nil},
		{"mac granularity below line size", func(s *Spec) { s.Systems[0].Overrides = &Overrides{MACGranBytes: 32} }, nil},
		{"absurd model dims", func(s *Spec) { s.Model = ModelSpec{Layers: 1_000_000_000, Hidden: 65536, Heads: 2} }, nil},
		{"absurd swept dim", func(s *Spec) { s.Sweep = &Sweep{Axis: "hidden", Values: []float64{1 << 30}} }, nil},
		{"too many sweep points", func(s *Spec) {
			vals := make([]float64, maxSweepPoints+1)
			for i := range vals {
				vals[i] = float64(i + 1)
			}
			s.Sweep = &Sweep{Axis: "hidden", Values: vals}
		}, ErrBadSweep},
		{"too many systems", func(s *Spec) {
			for i := 0; i <= maxSystems; i++ {
				s.Systems = append(s.Systems, SystemSpec{Kind: "tensortee"})
			}
		}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := minimal()
			tc.mutate(&spec)
			err := spec.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid spec")
			}
			if !errors.Is(err, ErrInvalidSpec) {
				t.Errorf("error %v does not match ErrInvalidSpec", err)
			}
			if tc.sentinel != nil && !errors.Is(err, tc.sentinel) {
				t.Errorf("error %v does not match the specific sentinel", err)
			}
		})
	}
}

func TestValidateAccepts(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"plain zoo model", func(s *Spec) {}},
		{"custom model defaults", func(s *Spec) { s.Model = ModelSpec{Layers: 2, Hidden: 256, Heads: 4} }},
		{"zoo model reshaped", func(s *Spec) { s.Model.Hidden = 2048; s.Model.Heads = 16 }},
		{"alternate kind spellings", func(s *Spec) {
			s.Systems = []SystemSpec{{Kind: "SGX+MGX"}, {Kind: "TensorTEE"}, {Kind: "NonSecure"}}
		}},
		{"overrides", func(s *Spec) {
			s.Systems[0].Overrides = &Overrides{MEEMode: "sgx", MetaCacheKB: 64, DRAMChannels: 4,
				NPUAESEngines: 2, LinkGBs: 32, StagingGBs: 16, MACGranBytes: 512, RegionMB: 128}
		}},
		{"model sweep", func(s *Spec) { s.Sweep = &Sweep{Axis: "hidden", Values: []float64{1024, 4096, 16384}} }},
		{"override sweep", func(s *Spec) { s.Sweep = &Sweep{Axis: "meta_cache_kb", Values: []float64{64, 128, 256}} }},
		{"explicit metrics", func(s *Spec) { s.Metrics = []string{"Total", "CPU", "speedup"} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := minimal()
			tc.mutate(&spec)
			if err := spec.Validate(); err != nil {
				t.Fatalf("Validate rejected a valid spec: %v", err)
			}
		})
	}
}

func TestCompileResolvesSweepAndOverrides(t *testing.T) {
	spec := Spec{
		Name:    "meta-sweep",
		Model:   ModelSpec{Name: "GPT2-M"},
		Systems: []SystemSpec{{Kind: "sgx-mgx"}, {Kind: "tensortee", Overrides: &Overrides{DRAMChannels: 4}}},
		Sweep:   &Sweep{Axis: "META_CACHE_KB", Values: []float64{64, 256}},
	}
	plan, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(plan.Points))
	}
	for i, wantKB := range []int{64, 256} {
		pt := plan.Points[i]
		if pt.Model.Name != "GPT2-M" {
			t.Errorf("point %d model = %q", i, pt.Model.Name)
		}
		for si, cfg := range pt.Configs {
			if cfg.CPU.MetaCacheSize != wantKB<<10 {
				t.Errorf("point %d system %d MetaCacheSize = %d, want %d KB", i, si, cfg.CPU.MetaCacheSize, wantKB)
			}
		}
		if ch := pt.Configs[1].HostDRAM.Channels; ch != 4 {
			t.Errorf("point %d override channels = %d, want 4", i, ch)
		}
		if ch := pt.Configs[0].HostDRAM.Channels; ch != 2 {
			t.Errorf("point %d baseline channels = %d, want default 2", i, ch)
		}
	}
	if plan.SystemLabels[1] != "tensortee[dram_channels=4]" {
		t.Errorf("system label = %q", plan.SystemLabels[1])
	}
	// Defaulted metrics include speedup with two systems.
	joined := strings.Join(plan.Metrics, ",")
	if !strings.Contains(joined, "speedup") {
		t.Errorf("metrics %v missing speedup", plan.Metrics)
	}
}

func TestCompileCustomModelDefaults(t *testing.T) {
	plan, err := Compile(Spec{
		Model:   ModelSpec{Layers: 2, Hidden: 256, Heads: 4},
		Systems: []SystemSpec{{Kind: "non-secure"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := plan.Spec.Model
	if m.FFNDim != 1024 || m.Vocab != 50257 || m.Batch != 1 || m.SeqLen != 1024 {
		t.Errorf("defaults not applied: %+v", m)
	}
	if got := plan.Points[0].Model.FFNDim; got != 1024 {
		t.Errorf("workload FFN = %d", got)
	}
}

func TestFingerprintNormalizes(t *testing.T) {
	// Equivalent specs spelled differently share a fingerprint.
	a := Spec{Model: ModelSpec{Name: "GPT2-M"}, Systems: []SystemSpec{{Kind: "TensorTEE"}}}
	var b Spec
	if err := json.Unmarshal([]byte(`{"name":"custom","model":{"name":"GPT2-M"},"systems":[{"kind":"tensortee"}]}`), &b); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("equivalent specs fingerprint differently: %s vs %s", a.Fingerprint(), b.Fingerprint())
	}
	c := a
	c.Systems = []SystemSpec{{Kind: "sgx-mgx"}}
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different specs share a fingerprint")
	}
	if a.Fingerprint() == "" {
		t.Error("empty fingerprint")
	}

	// Overrides that restate the kind's Table-1 default normalize away:
	// same fingerprint and same system label as the omitted form.
	d := a
	d.Systems = []SystemSpec{{Kind: "TensorTEE", Overrides: &Overrides{
		MEEMode: "tensor", MetaCacheKB: 32, DRAMChannels: 2, NPUAESEngines: 1,
		NPUBandwidthGBs: 128, LinkGBs: 26, StagingGBs: 12, MACGranBytes: 64,
	}}}
	if a.Fingerprint() != d.Fingerprint() {
		t.Errorf("default-restating overrides change the fingerprint: %s vs %s", a.Fingerprint(), d.Fingerprint())
	}
	plan, err := Compile(d)
	if err != nil {
		t.Fatal(err)
	}
	if plan.SystemLabels[0] != "tensortee" {
		t.Errorf("default-restating overrides change the label: %q", plan.SystemLabels[0])
	}
	// A genuinely non-default field survives normalization.
	e := a
	e.Systems = []SystemSpec{{Kind: "tensortee", Overrides: &Overrides{MetaCacheKB: 64}}}
	if a.Fingerprint() == e.Fingerprint() {
		t.Error("non-default override did not change the fingerprint")
	}
}

func TestRunSmallScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run calibrates a system")
	}
	spec := Spec{
		Name:    "smoke",
		Model:   ModelSpec{Layers: 2, Hidden: 256, Heads: 4, Batch: 1, SeqLen: 128},
		Systems: []SystemSpec{{Kind: "non-secure"}, {Kind: "non-secure", Overrides: &Overrides{StagingGBs: 24}}},
		Metrics: []string{"total", "comm", "speedup"},
	}
	rep, err := Run(nil, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "scenario:smoke" {
		t.Errorf("id = %q", rep.ID)
	}
	if len(rep.Tables) != 1 || len(rep.Tables[0].Cells) != 2 {
		t.Fatalf("unexpected table shape: %+v", rep.Tables)
	}
	// Doubling the staging bandwidth must not slow the step down.
	tot := rep.Tables[0].Cells[0][3].Num
	tot2 := rep.Tables[0].Cells[1][3].Num
	if tot2 > tot {
		t.Errorf("faster staging slowed the step: %g -> %g", tot, tot2)
	}
	if sp := rep.Tables[0].Cells[1][5].Num; sp < 1 {
		t.Errorf("speedup = %g, want >= 1", sp)
	}
	if rep.Scalars["points"] != 1 || rep.Scalars["systems"] != 2 {
		t.Errorf("scalars = %v", rep.Scalars)
	}
}

func TestRunThroughCachingEnv(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run calibrates a system")
	}
	// A counting provider proves Run resolves every system through the
	// environment (the Runner's cache in production).
	calls := 0
	env := &experiments.Env{Configs: func(cfg config.Config) (*core.System, error) {
		calls++
		return core.NewSystemFromConfig(cfg)
	}}
	spec := Spec{
		Model:   ModelSpec{Layers: 1, Hidden: 128, Heads: 2, Batch: 1, SeqLen: 64},
		Systems: []SystemSpec{{Kind: "non-secure"}},
	}
	if _, err := Run(env, spec); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("provider calls = %d, want 1", calls)
	}
}
