package scenario

import (
	"fmt"
	"math"
	"strings"

	"tensortee/internal/config"
	"tensortee/internal/workload"
)

// Point is one sweep point: the resolved workload model plus one compiled
// configuration per system in the spec.
type Point struct {
	// Label names the point in tables ("hidden=4096"; the model name when
	// there is no sweep).
	Label string
	// Model is the resolved workload shape for this point.
	Model workload.Model
	// Configs holds one validated configuration per spec system, in spec
	// order.
	Configs []config.Config
}

// Plan is a compiled, validated spec: everything Run needs, resolved.
type Plan struct {
	// Spec is the normalized spec (defaults applied, kinds canonicalized);
	// its JSON form is what Fingerprint hashes.
	Spec Spec
	// SystemLabels names the spec's systems in order ("tensortee",
	// "sgx-mgx[meta_cache_kb=64]", ...).
	SystemLabels []string
	// Metrics is the resolved metric list.
	Metrics []string
	// Points holds the sweep points in value order (a single point when
	// the spec has no sweep).
	Points []Point
}

// Compile validates the spec and resolves it into a Plan. Every returned
// error matches ErrInvalidSpec.
func Compile(s Spec) (*Plan, error) {
	norm := Spec{Name: strings.TrimSpace(s.Name)}
	if norm.Name == "" {
		norm.Name = "custom"
	}

	if len(s.Systems) == 0 {
		return nil, invalid(nil, "spec lists no systems")
	}
	if len(s.Systems) > maxSystems {
		return nil, invalid(nil, "spec lists %d systems, max %d", len(s.Systems), maxSystems)
	}
	kinds := make([]config.SystemKind, len(s.Systems))
	for i, sys := range s.Systems {
		k, err := parseKind(sys.Kind)
		if err != nil {
			return nil, err
		}
		kinds[i] = k
		ns := SystemSpec{Kind: kindLabel(k)}
		if sys.Overrides != nil {
			if err := sys.Overrides.check(k); err != nil {
				return nil, err
			}
			ns.Overrides = sys.Overrides.normalize(k)
		}
		norm.Systems = append(norm.Systems, ns)
	}

	metrics, err := resolveMetrics(s.Metrics, len(s.Systems))
	if err != nil {
		return nil, err
	}
	norm.Metrics = metrics

	model, err := resolveModel(s.Model)
	if err != nil {
		return nil, err
	}
	norm.Model = model

	sweepPoints, err := resolveSweep(s.Sweep)
	if err != nil {
		return nil, err
	}
	if s.Sweep != nil {
		norm.Sweep = &Sweep{Axis: strings.ToLower(strings.TrimSpace(s.Sweep.Axis)), Values: sweepPoints}
	}

	plan := &Plan{Spec: norm, Metrics: metrics}
	for i, sys := range norm.Systems {
		plan.SystemLabels = append(plan.SystemLabels, systemLabel(sys, kinds[i]))
	}

	points := []float64{0} // one point when there is no sweep
	if norm.Sweep != nil {
		points = norm.Sweep.Values
	}
	if n := len(points) * len(norm.Systems); n > maxPointSystems {
		return nil, invalid(nil, "spec compiles to %d point-system runs (%d points x %d systems), max %d", n, len(points), len(norm.Systems), maxPointSystems)
	}
	for _, v := range points {
		p, err := compilePoint(norm, kinds, v)
		if err != nil {
			return nil, err
		}
		plan.Points = append(plan.Points, p)
	}
	return plan, nil
}

// resolveMetrics expands and validates the metric list.
func resolveMetrics(requested []string, systems int) ([]string, error) {
	if len(requested) == 0 {
		all := []string{"total", "npu", "cpu", "comm_w", "comm_g"}
		if systems > 1 {
			all = append(all, "speedup")
		}
		return all, nil
	}
	known := make(map[string]bool, len(Metrics()))
	for _, m := range Metrics() {
		known[m] = true
	}
	var out []string
	seen := make(map[string]bool)
	for _, m := range requested {
		m = strings.ToLower(strings.TrimSpace(m))
		if !known[m] {
			return nil, invalid(ErrUnknownMetric, "%q (want one of %s)", m, strings.Join(Metrics(), ", "))
		}
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out, nil
}

// resolveModel normalizes the model spec: named models resolve against the
// zoo (with optional dimension overrides), custom models get defaults and
// required-field checks. The returned spec is fully resolved — every
// dimension explicit — so normalization is idempotent and fingerprints of
// equivalent specs agree.
func resolveModel(m ModelSpec) (ModelSpec, error) {
	for f, v := range map[string]int{
		"layers": m.Layers, "hidden": m.Hidden, "heads": m.Heads,
		"ffn": m.FFNDim, "vocab": m.Vocab, "batch": m.Batch, "seqlen": m.SeqLen,
	} {
		if v < 0 {
			return ModelSpec{}, invalid(nil, "model %s must be positive, got %d", f, v)
		}
	}
	if m.Name != "" {
		zoo, err := workload.ModelByName(m.Name)
		if err != nil {
			return ModelSpec{}, invalid(ErrUnknownModel, "%q (see tensorteesim -models)", m.Name)
		}
		base := ModelSpec{
			Name: zoo.Name, Layers: zoo.Layers, Hidden: zoo.Hidden, Heads: zoo.Heads,
			FFNDim: zoo.FFNDim, Vocab: zoo.Vocab, Batch: zoo.BatchSize, SeqLen: zoo.SeqLen,
		}
		overlay(&base, m)
		return base, nil
	}
	if m.Layers == 0 || m.Hidden == 0 || m.Heads == 0 {
		return ModelSpec{}, invalid(nil, "custom model needs layers, hidden and heads (got %d/%d/%d)", m.Layers, m.Hidden, m.Heads)
	}
	if m.FFNDim == 0 {
		m.FFNDim = 4 * m.Hidden
	}
	if m.Vocab == 0 {
		m.Vocab = 50257
	}
	if m.Batch == 0 {
		m.Batch = 1
	}
	if m.SeqLen == 0 {
		m.SeqLen = 1024
	}
	return m, nil
}

// overlay applies non-zero dimension fields of src over dst.
func overlay(dst *ModelSpec, src ModelSpec) {
	if src.Layers != 0 {
		dst.Layers = src.Layers
	}
	if src.Hidden != 0 {
		dst.Hidden = src.Hidden
	}
	if src.Heads != 0 {
		dst.Heads = src.Heads
	}
	if src.FFNDim != 0 {
		dst.FFNDim = src.FFNDim
	}
	if src.Vocab != 0 {
		dst.Vocab = src.Vocab
	}
	if src.Batch != 0 {
		dst.Batch = src.Batch
	}
	if src.SeqLen != 0 {
		dst.SeqLen = src.SeqLen
	}
}

// resolveSweep validates the sweep shape (axis and value bounds); the
// per-point semantic checks happen at compilePoint.
func resolveSweep(sw *Sweep) ([]float64, error) {
	if sw == nil {
		return nil, nil
	}
	axis := strings.ToLower(strings.TrimSpace(sw.Axis))
	_, isModel := modelAxes[axis]
	ov, isOverride := overrideAxes[axis]
	if !isModel && !isOverride {
		return nil, invalid(ErrBadSweep, "unknown axis %q (want one of %s)", sw.Axis, strings.Join(SweepAxes(), ", "))
	}
	if len(sw.Values) == 0 {
		return nil, invalid(ErrBadSweep, "axis %q has no values", axis)
	}
	if len(sw.Values) > maxSweepPoints {
		return nil, invalid(ErrBadSweep, "axis %q has %d values, max %d", axis, len(sw.Values), maxSweepPoints)
	}
	integral := isModel || ov.integral
	out := make([]float64, len(sw.Values))
	for i, v := range sw.Values {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, invalid(ErrBadSweep, "axis %q value %v must be a positive finite number", axis, v)
		}
		if integral && v != math.Trunc(v) {
			return nil, invalid(ErrBadSweep, "axis %q takes integers, got %v", axis, v)
		}
		out[i] = v
	}
	return out, nil
}

// check validates override field ranges against the base kind. Range
// errors that would silently invalidate the calibration sample map to
// ErrUnsafeOverride; the rest are plain ErrInvalidSpec.
func (o *Overrides) check(kind config.SystemKind) error {
	for _, b := range []struct {
		name     string
		val, max int
	}{
		{"meta_cache_kb", o.MetaCacheKB, maxMetaCacheKB},
		{"dram_channels", o.DRAMChannels, maxDRAMChannels},
		{"npu_aes_engines", o.NPUAESEngines, maxAESEngines},
		{"mac_gran_bytes", o.MACGranBytes, maxMACGranBytes},
	} {
		if b.val < 0 {
			return invalid(nil, "override %s must be positive, got %d", b.name, b.val)
		}
		if b.val > b.max {
			return invalid(nil, "override %s %d above the %d simulation bound", b.name, b.val, b.max)
		}
	}
	if o.RegionMB < 0 {
		return invalid(nil, "override region_mb must be positive, got %d", o.RegionMB)
	}
	for f, v := range map[string]float64{
		"npu_bandwidth_gbs": o.NPUBandwidthGBs, "link_gbs": o.LinkGBs, "staging_gbs": o.StagingGBs,
	} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return invalid(nil, "override %s must be a positive finite number, got %v", f, v)
		}
		if v > maxBandwidthGBs {
			return invalid(nil, "override %s %g above the %g GB/s simulation bound", f, v, float64(maxBandwidthGBs))
		}
	}
	switch strings.ToLower(strings.TrimSpace(o.MEEMode)) {
	case "":
	case "off":
		if kind != config.NonSecure {
			return invalid(nil, "mee_mode \"off\" is only valid on the non-secure kind")
		}
	case "sgx", "tensor":
		if kind == config.NonSecure {
			return invalid(nil, "mee_mode %q conflicts with the non-secure kind", o.MEEMode)
		}
	default:
		return invalid(nil, "unknown mee_mode %q (want off, sgx or tensor)", o.MEEMode)
	}
	if o.RegionMB > 0 {
		// Compare in MB, before the <<20 shift: region_mb values >= 2^44
		// would wrap the shifted int64, and a wrapped product landing back
		// inside the valid window would silently simulate a region far
		// smaller than the one the result is labeled with.
		if o.RegionMB > int(config.MaxProtectedBytes>>20) {
			return invalid(nil, "region_mb %d above the %d MB simulation bound", o.RegionMB, config.MaxProtectedBytes>>20)
		}
		if int64(o.RegionMB)<<20 < config.MinProtectedBytes {
			return invalid(ErrUnsafeOverride, "region_mb %d is below the %d MB calibration window", o.RegionMB, config.MinProtectedBytes>>20)
		}
	}
	return nil
}

// normalize canonicalizes an override set against the kind's Table-1
// defaults: fields that restate the default are zeroed (so a spec
// spelling out "meta_cache_kb": 32 fingerprints — and labels — the same
// as one omitting it), and an override set with nothing left collapses to
// nil. The returned value is a copy; the input is not mutated.
func (o *Overrides) normalize(kind config.SystemKind) *Overrides {
	def := config.Default(kind)
	n := *o
	n.MEEMode = strings.ToLower(strings.TrimSpace(n.MEEMode))
	defMode := "off"
	if def.Secure() {
		defMode = "sgx"
		if def.Protection.TensorWiseCPU {
			defMode = "tensor"
		}
	}
	if n.MEEMode == defMode {
		n.MEEMode = ""
	}
	if n.MetaCacheKB == def.CPU.MetaCacheSize>>10 {
		n.MetaCacheKB = 0
	}
	if n.DRAMChannels == def.HostDRAM.Channels {
		n.DRAMChannels = 0
	}
	if n.NPUAESEngines == def.NPU.AESEngines {
		n.NPUAESEngines = 0
	}
	if n.NPUBandwidthGBs == def.NPU.DRAMBandwidthBs/1e9 {
		n.NPUBandwidthGBs = 0
	}
	if n.LinkGBs == def.Comm.LinkBandwidthBs/1e9 {
		n.LinkGBs = 0
	}
	if n.StagingGBs == def.Comm.StagingBandwidthBs/1e9 {
		n.StagingGBs = 0
	}
	if n.MACGranBytes == def.Protection.MACGranBytes {
		n.MACGranBytes = 0
	}
	// ProtectedBytes has no non-zero default, so RegionMB passes through.
	if n == (Overrides{}) {
		return nil
	}
	return &n
}

// apply mutates cfg with the override fields.
func (o *Overrides) apply(cfg *config.Config) {
	if o == nil {
		return
	}
	switch strings.ToLower(strings.TrimSpace(o.MEEMode)) {
	case "sgx":
		cfg.Protection.TensorWiseCPU = false
	case "tensor":
		cfg.Protection.TensorWiseCPU = true
	}
	if o.MetaCacheKB > 0 {
		cfg.CPU.MetaCacheSize = o.MetaCacheKB << 10
	}
	if o.DRAMChannels > 0 {
		cfg.HostDRAM.Channels = o.DRAMChannels
	}
	if o.NPUAESEngines > 0 {
		cfg.NPU.AESEngines = o.NPUAESEngines
	}
	if o.NPUBandwidthGBs > 0 {
		cfg.NPU.DRAMBandwidthBs = o.NPUBandwidthGBs * 1e9
	}
	if o.LinkGBs > 0 {
		cfg.Comm.LinkBandwidthBs = o.LinkGBs * 1e9
	}
	if o.StagingGBs > 0 {
		cfg.Comm.StagingBandwidthBs = o.StagingGBs * 1e9
	}
	if o.MACGranBytes > 0 {
		cfg.Protection.MACGranBytes = o.MACGranBytes
	}
	if o.RegionMB > 0 {
		cfg.CPU.ProtectedBytes = int64(o.RegionMB) << 20
	}
}

// compilePoint resolves one sweep point into a workload model and one
// validated configuration per system.
func compilePoint(norm Spec, kinds []config.SystemKind, value float64) (Point, error) {
	ms := norm.Model
	axisOverride := Overrides{}
	label := ms.Name
	if label == "" {
		label = fmt.Sprintf("custom-%dL-%dh", ms.Layers, ms.Hidden)
	}
	if norm.Sweep != nil {
		axis := norm.Sweep.Axis
		label = fmt.Sprintf("%s=%g", axis, value)
		if set, ok := modelAxes[axis]; ok {
			set(&ms, int(value))
		} else {
			overrideAxes[axis].set(&axisOverride, value)
			if err := axisOverride.check(0); err != nil { // kind-independent range checks
				return Point{}, err
			}
		}
	}

	m, err := buildModel(ms)
	if err != nil {
		return Point{}, err
	}

	p := Point{Label: label, Model: m}
	for i, sys := range norm.Systems {
		cfg := config.Default(kinds[i])
		sys.Overrides.apply(&cfg)
		axisOverride.apply(&cfg)
		if err := cfg.Validate(); err != nil {
			return Point{}, invalid(nil, "system %s at %s: %v", kindLabel(kinds[i]), label, err)
		}
		p.Configs = append(p.Configs, cfg)
	}
	return p, nil
}

// Resource bounds. Scenarios run arbitrary user input through an
// unauthenticated HTTP endpoint, so every dimension that scales the
// simulation's memory or time is capped — generously beyond the Table-2
// zoo (whose largest entries sit around 48 layers / 4096 hidden / 256k
// vocab), but far below anything that could wedge a worker.
const (
	maxSystems     = 16
	maxSweepPoints = 64
	// maxPointSystems caps the sweep-points x systems cross product. Each
	// (point, system) pair with a non-default configuration is a fresh
	// ~1 s calibration, and a scenario fill runs detached and uncancelable
	// once started — without this cap one request could combine both
	// per-axis maxima into 64x16 = 1024 calibrations (~17 min) that
	// monopolize a scenario slot for the duration.
	maxPointSystems = 256
	maxLayers       = 10_000
	maxHidden       = 1 << 18 // 262144
	maxHeads        = 4096
	maxFFN          = 1 << 21
	maxVocab        = 4_000_000
	maxBatch        = 65_536
	maxSeqLen       = 1 << 20

	// Override caps. The integer knobs drive real per-system allocations
	// (the metadata-cache slab scales with meta_cache_kb, the DRAM model
	// allocates per-channel bank state), so unbounded values would let one
	// POST /v1/scenarios allocate arbitrary daemon memory — and
	// meta_cache_kb values near 2^53 would overflow the <<10 shift into a
	// zero or negative cache size. Bandwidths are rates, not allocations,
	// but are capped anyway so scaled configs stay finite.
	maxMetaCacheKB  = 1 << 18 // 256 MB metadata cache, 8192x Table 1
	maxDRAMChannels = 64
	maxAESEngines   = 1024
	maxMACGranBytes = 1 << 20
	maxBandwidthGBs = 1e6 // 1 PB/s
)

// checkDims bounds a fully-resolved model shape. It runs per sweep point,
// so swept dimensions are bounded too.
func checkDims(ms ModelSpec) error {
	for _, d := range []struct {
		name     string
		val, max int
	}{
		{"layers", ms.Layers, maxLayers},
		{"hidden", ms.Hidden, maxHidden},
		{"heads", ms.Heads, maxHeads},
		{"ffn", ms.FFNDim, maxFFN},
		{"vocab", ms.Vocab, maxVocab},
		{"batch", ms.Batch, maxBatch},
		{"seqlen", ms.SeqLen, maxSeqLen},
	} {
		if d.val > d.max {
			return invalid(nil, "model %s %d above the %d simulation bound", d.name, d.val, d.max)
		}
	}
	return nil
}

// buildModel turns a fully-resolved ModelSpec into a workload.Model,
// checking the cross-dimension constraints the GEMM enumeration needs.
func buildModel(ms ModelSpec) (workload.Model, error) {
	if err := checkDims(ms); err != nil {
		return workload.Model{}, err
	}
	if ms.Hidden%ms.Heads != 0 {
		return workload.Model{}, invalid(nil, "hidden %d must be divisible by heads %d", ms.Hidden, ms.Heads)
	}
	name := ms.Name
	if name == "" {
		name = fmt.Sprintf("custom-%dL-%dh", ms.Layers, ms.Hidden)
	}
	m := workload.Model{
		Name:      name,
		ParamsStr: "custom",
		BatchSize: ms.Batch,
		Layers:    ms.Layers,
		Hidden:    ms.Hidden,
		Heads:     ms.Heads,
		FFNDim:    ms.FFNDim,
		Vocab:     ms.Vocab,
		SeqLen:    ms.SeqLen,
	}
	if ms.Name != "" {
		if zoo, err := workload.ModelByName(ms.Name); err == nil {
			m.ParamsStr = zoo.ParamsStr
		}
	}
	return m, nil
}

// systemLabel renders one system column label: the kind plus any
// overridden fields, so two entries of the same kind stay tellable apart.
func systemLabel(sys SystemSpec, kind config.SystemKind) string {
	if sys.Overrides == nil {
		return kindLabel(kind)
	}
	var parts []string
	o := sys.Overrides
	add := func(f string, v any, set bool) {
		if set {
			parts = append(parts, fmt.Sprintf("%s=%v", f, v))
		}
	}
	add("mee_mode", o.MEEMode, o.MEEMode != "")
	add("meta_cache_kb", o.MetaCacheKB, o.MetaCacheKB > 0)
	add("dram_channels", o.DRAMChannels, o.DRAMChannels > 0)
	add("npu_aes_engines", o.NPUAESEngines, o.NPUAESEngines > 0)
	add("npu_bandwidth_gbs", o.NPUBandwidthGBs, o.NPUBandwidthGBs > 0)
	add("link_gbs", o.LinkGBs, o.LinkGBs > 0)
	add("staging_gbs", o.StagingGBs, o.StagingGBs > 0)
	add("mac_gran_bytes", o.MACGranBytes, o.MACGranBytes > 0)
	add("region_mb", o.RegionMB, o.RegionMB > 0)
	if len(parts) == 0 {
		return kindLabel(kind)
	}
	return kindLabel(kind) + "[" + strings.Join(parts, ",") + "]"
}
