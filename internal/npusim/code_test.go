package npusim

import (
	"testing"

	"tensortee/internal/npumac"
	"tensortee/internal/sim"
)

func TestCodeFetchChargedOnlyWhenSecure(t *testing.T) {
	layer := GEMM{Name: "l", M: 4096, K: 1024, N: 1024}
	ns := New(testConfig(npumac.SchemeCacheline, 64, false)).RunGEMM(layer)
	if ns.CodeFetch != 0 {
		t.Error("non-secure run charged code verification")
	}
	sec := New(testConfig(npumac.SchemeTensorDelayed, 64, true))
	r := sec.RunGEMM(layer)
	if r.CodeFetch == 0 {
		t.Error("secure run skipped code verification")
	}
	// Code fetch is small relative to the layer (it must not dominate).
	if float64(r.CodeFetch) > 0.05*float64(r.Total) {
		t.Errorf("code fetch %v is %.1f%% of the layer — too large",
			r.CodeFetch, 100*float64(r.CodeFetch)/float64(r.Total))
	}
	// And it is counted in the verifier's inline-path stats.
	if sec.Verifier().Stats().CodeVerifies == 0 {
		t.Error("code verifications not recorded")
	}
	if sec.Verifier().Stats().CodeFailures != 0 {
		t.Error("clean code failed verification")
	}
}

func TestCodeFetchInTotal(t *testing.T) {
	layer := GEMM{Name: "l", M: 4096, K: 1024, N: 1024}
	r := New(testConfig(npumac.SchemeTensorDelayed, 64, true)).RunGEMM(layer)
	if r.Total != sim.Max(r.Compute, r.Memory)+r.Stall+r.CodeFetch {
		t.Error("total does not include the code fetch")
	}
}
