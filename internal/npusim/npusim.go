// Package npusim is the cycle-accounting NPU timing model: a TPUv3-like
// output-stationary systolic array (Table 1: 512x512 PEs at 1 GHz, 32 MB
// scratchpad, GDDR5 at 128 GB/s) with automatic tiling, double-buffered
// tile streaming, and the memory-protection schemes of Section 4.3 layered
// on the GDDR traffic.
//
// The PE-array geometry gives 512*512*2 = 524 TFLOP/s peak at fp16 — the
// calibration point the paper aligns against an A100.
//
// Protection schemes charge three effects on top of the non-secure time:
//
//   - MAC traffic: 7 B of MAC per granularity bytes of data fetched or
//     stored (zero for the tensor-granularity scheme, whose MAC lives on
//     chip);
//   - verification stalls: coarse-granularity MACs release data only when
//     the whole group has arrived and verified, bubbling the consume
//     pipeline (Figure 13b); the per-group bubble model is calibrated to
//     the overhead curve reported in Figure 20;
//   - delayed verification: overlaps MAC recomputation with computation
//     and verifies at tensor completion, leaving only the AES stream
//     latency exposure at tile starts and the barrier checks (Figure 13c).
package npusim

import (
	"fmt"
	"math"

	"tensortee/internal/config"
	"tensortee/internal/npumac"
	"tensortee/internal/sim"
)

// GEMM is one matrix multiply C[M,N] += A[M,K] * B[K,N].
//
// NoLoadA / NoStoreC mark operands that stay on chip in a fused chain (the
// paper's "inter-layer optimization"): attention scores are consumed by the
// context GEMM without a round trip through GDDR.
type GEMM struct {
	Name     string
	M, K, N  int
	NoLoadA  bool
	NoStoreC bool
}

// FLOPs returns the floating-point operations of the GEMM.
func (g GEMM) FLOPs() float64 { return 2 * float64(g.M) * float64(g.K) * float64(g.N) }

// Dataflow selects the systolic-array mapping.
type Dataflow int

const (
	// OutputStationary keeps partial sums in the PEs while A and B stream
	// past (the TPUv3 mapping the paper's simulator adopts).
	OutputStationary Dataflow = iota
	// WeightStationary pins a K x N weight tile in the PEs and streams
	// activations through (TPUv1-style); kept as a design-space ablation.
	WeightStationary
)

func (d Dataflow) String() string {
	if d == WeightStationary {
		return "weight-stationary"
	}
	return "output-stationary"
}

// Config shapes the NPU model.
type Config struct {
	PERows, PECols  int
	FreqHz          float64
	ScratchpadBytes int
	BandwidthBs     float64
	ElemBytes       int // fp16 on the NPU datapath
	AESLatCycles    int
	MACLatCycles    int

	// Dataflow is the array mapping (default OutputStationary).
	Dataflow Dataflow

	Scheme       npumac.Scheme
	MACGranBytes int // for SchemeCacheline (64) / SchemeCoarse
	MACBytes     int // 7 (56-bit)
	// Secure enables memory protection at all; false models the
	// Non-Secure reference.
	Secure bool
}

// FromSystem derives the NPU model configuration from the system config.
func FromSystem(c *config.Config, scheme npumac.Scheme, granBytes int) Config {
	return Config{
		PERows:          c.NPU.PERows,
		PECols:          c.NPU.PECols,
		FreqHz:          c.NPU.FreqHz,
		ScratchpadBytes: c.NPU.ScratchpadBytes,
		BandwidthBs:     c.NPU.DRAMBandwidthBs,
		ElemBytes:       2,
		AESLatCycles:    c.NPU.AESLatCycles,
		MACLatCycles:    c.NPU.MACLatCycles,
		Scheme:          scheme,
		MACGranBytes:    granBytes,
		MACBytes:        c.MACBytes(),
		Secure:          c.Secure(),
	}
}

// PeakFLOPs returns the array's peak throughput in FLOP/s.
func (c Config) PeakFLOPs() float64 {
	return 2 * float64(c.PERows) * float64(c.PECols) * c.FreqHz
}

// KernelCodeBytes is the instruction footprint charged per GEMM kernel.
// Code requests always follow the normal non-delayed verification dataflow
// (Section 4.3), so each code line pays an inline MAC check before issue.
const KernelCodeBytes = 8 << 10

// LayerResult is the timing of one GEMM.
type LayerResult struct {
	Name string
	// Compute is pure PE-array occupancy.
	Compute sim.Dur
	// Memory is GDDR occupancy for data plus MAC traffic.
	Memory sim.Dur
	// Stall is the verification-bubble time added to the critical path.
	Stall sim.Dur
	// CodeFetch is the inline-verified instruction-fetch time (never
	// delayed; tiny relative to data but tracked for completeness).
	CodeFetch sim.Dur
	// Total is the layer's critical-path time.
	Total sim.Dur
	// DataBytes / MACTrafficBytes are the GDDR volumes.
	DataBytes, MACTrafficBytes int64
	// Tiles is the number of output tiles processed.
	Tiles int
}

// Result aggregates layers.
type Result struct {
	Layers []LayerResult
	// Total assumes layers execute back to back (inter-layer dependencies).
	Total sim.Dur
}

// Compute / Memory / Stall sums across layers.
func (r Result) Compute() sim.Dur { return r.sum(func(l LayerResult) sim.Dur { return l.Compute }) }

// MemoryTotal sums per-layer memory occupancy.
func (r Result) MemoryTotal() sim.Dur { return r.sum(func(l LayerResult) sim.Dur { return l.Memory }) }

// StallTotal sums verification bubbles.
func (r Result) StallTotal() sim.Dur { return r.sum(func(l LayerResult) sim.Dur { return l.Stall }) }

// DataBytes sums GDDR data traffic.
func (r Result) DataBytes() int64 {
	var n int64
	for _, l := range r.Layers {
		n += l.DataBytes
	}
	return n
}

func (r Result) sum(f func(LayerResult) sim.Dur) sim.Dur {
	var t sim.Dur
	for _, l := range r.Layers {
		t += f(l)
	}
	return t
}

// NPU is the simulator instance.
type NPU struct {
	cfg      Config
	verifier *npumac.Verifier
	nextID   npumac.TensorID
}

// New builds an NPU model.
func New(cfg Config) *NPU {
	if cfg.PERows <= 0 || cfg.PECols <= 0 || cfg.FreqHz <= 0 {
		panic(fmt.Sprintf("npusim: invalid config %+v", cfg))
	}
	if cfg.ElemBytes <= 0 {
		cfg.ElemBytes = 2
	}
	if cfg.MACGranBytes <= 0 {
		cfg.MACGranBytes = 64
	}
	if cfg.MACBytes <= 0 {
		cfg.MACBytes = 7
	}
	return &NPU{cfg: cfg, verifier: npumac.NewVerifier(64)}
}

// Verifier exposes the delayed-verification engine.
func (n *NPU) Verifier() *npumac.Verifier { return n.verifier }

func (n *NPU) cycles(c float64) sim.Dur { return sim.Cycles(c, n.cfg.FreqHz) }

// traffic returns the GDDR bytes a tiled GEMM moves under the automatic
// tiling policy: keep the smaller stationary operand resident in half the
// scratchpad (the other half double-buffers the streamed operand); when
// neither fits, split into panels and restream the cheaper side.
func (n *NPU) traffic(g GEMM) int64 {
	eb := int64(n.cfg.ElemBytes)
	aBytes := int64(g.M) * int64(g.K) * eb
	bBytes := int64(g.K) * int64(g.N) * eb
	cBytes := int64(g.M) * int64(g.N) * eb
	resident := int64(n.cfg.ScratchpadBytes) / 2

	var streamed int64
	if aBytes <= resident || bBytes <= resident || cBytes <= resident {
		// One operand stays resident (for C this is K-split accumulation:
		// the output tile accumulates on chip while A and B panels stream
		// past); everything else streams exactly once.
		streamed = aBytes + bBytes
	} else {
		// Nothing fits: panel split, restreaming the cheaper side once per
		// panel of the other.
		panelsB := ceilDiv64(bBytes, resident)
		planB := aBytes*panelsB + bBytes
		panelsA := ceilDiv64(aBytes, resident)
		planA := bBytes*panelsA + aBytes
		streamed = planB
		if planA < planB {
			streamed = planA
		}
	}

	total := streamed + cBytes
	// Weight stationary pays partial-sum spills when the output does not
	// fit on chip: each additional K-tile reads and rewrites C.
	if n.cfg.Dataflow == WeightStationary && cBytes > resident {
		kTiles := int64(ceilDiv(g.K, n.cfg.PERows))
		if kTiles > 1 {
			total += (kTiles - 1) * 2 * cBytes
		}
	}
	if g.NoLoadA {
		total -= aBytes
	}
	if g.NoStoreC {
		total -= cBytes
	}
	if total < 0 {
		total = 0
	}
	return total
}

func ceilDiv64(a, b int64) int64 { return (a + b - 1) / b }

// computeCycles returns PE-array occupancy, with the systolic fill/drain
// paid once per GEMM (back-to-back tiles pipeline through the array
// without draining it).
//
// Output stationary: K beats per 512x512 output tile. Weight stationary:
// M beats per 512x512 weight tile (the weights sit still, every activation
// row streams through each weight tile).
func (n *NPU) computeCycles(g GEMM) float64 {
	fill := float64(n.cfg.PERows + n.cfg.PECols)
	if n.cfg.Dataflow == WeightStationary {
		kTiles := float64(ceilDiv(g.K, n.cfg.PERows))
		nTiles := float64(ceilDiv(g.N, n.cfg.PECols))
		return kTiles*nTiles*float64(g.M) + fill
	}
	mTiles := float64(ceilDiv(g.M, n.cfg.PERows))
	nTiles := float64(ceilDiv(g.N, n.cfg.PECols))
	return mTiles*nTiles*float64(g.K) + fill
}

// stallFraction is the verification-bubble fraction of memory time for a
// coarse MAC granularity, calibrated to Figure 20's overhead curve: the
// consume pipeline's skid buffer hides verification up to ~128 B groups;
// beyond that each doubling of the group size exposes ~3% more of the
// stream time (13% at 4 KB, matching the paper's report).
func stallFraction(granBytes int) float64 {
	if granBytes <= 128 {
		return 0
	}
	return 0.03 * math.Log2(float64(granBytes)/128)
}

// RunGEMM times one GEMM under the configured scheme.
func (n *NPU) RunGEMM(g GEMM) LayerResult {
	cfg := n.cfg
	res := LayerResult{Name: g.Name}
	res.Tiles = ceilDiv(g.M, cfg.PERows) * ceilDiv(g.N, cfg.PECols)
	res.DataBytes = n.traffic(g)
	res.Compute = n.cycles(n.computeCycles(g))

	memBytes := res.DataBytes
	var stall sim.Dur
	if cfg.Secure {
		switch cfg.Scheme {
		case npumac.SchemeCacheline:
			res.MACTrafficBytes = res.DataBytes / 64 * int64(cfg.MACBytes)
		case npumac.SchemeCoarse:
			res.MACTrafficBytes = res.DataBytes / int64(cfg.MACGranBytes) * int64(cfg.MACBytes)
			memTime := sim.BytesAt(memBytes+res.MACTrafficBytes, cfg.BandwidthBs)
			stall = sim.Dur(float64(memTime) * stallFraction(cfg.MACGranBytes))
		case npumac.SchemeTensorDelayed:
			// Tensor MAC lives on chip: no MAC traffic. The residual cost
			// is the AES/MAC latency exposure when each tile stream starts
			// (the first fill of the double buffer cannot be hidden) plus
			// the verification barrier per tensor (a compare, few cycles).
			perTile := float64(cfg.AESLatCycles + cfg.MACLatCycles)
			stall = n.cycles(perTile * float64(res.Tiles))
		}
		memBytes += res.MACTrafficBytes
	}
	res.Memory = sim.BytesAt(memBytes, cfg.BandwidthBs)

	// Kernel code fetch: always inline-verified (non-delayed), stream +
	// one MAC latency per code line before the first instruction issues.
	if cfg.Secure {
		codeLines := KernelCodeBytes / 64
		res.CodeFetch = sim.BytesAt(KernelCodeBytes, cfg.BandwidthBs) +
			n.cycles(float64(cfg.MACLatCycles))
		for i := 0; i < codeLines; i++ {
			// Functional check: untampered code verifies.
			if err := n.verifier.VerifyCode(0x1234, 0x1234); err != nil {
				panic("npusim: clean code failed verification")
			}
		}
	}

	// Double-buffered execution: compute and memory overlap; the layer is
	// bound by the slower of the two, plus exposed verification bubbles
	// and the serial code fetch at kernel launch.
	res.Stall = stall
	res.Total = sim.Max(res.Compute, res.Memory) + stall + res.CodeFetch

	// Functional delayed-verification bookkeeping: the layer's operand
	// tensors stream through the verifier; its output propagates poison
	// until inputs verify (Figure 14).
	if cfg.Secure && cfg.Scheme == npumac.SchemeTensorDelayed {
		a, b, c := n.nextID, n.nextID+1, n.nextID+2
		n.nextID += 3
		n.verifier.BeginRead(a, 0)
		n.verifier.BeginRead(b, 0)
		n.verifier.CompleteRead(a)
		n.verifier.CompleteRead(b)
		n.verifier.Propagate(c, a, b)
	}
	return res
}

// RunLayers times a sequence of dependent GEMMs.
func (n *NPU) RunLayers(gs []GEMM) Result {
	var r Result
	for _, g := range gs {
		l := n.RunGEMM(g)
		r.Layers = append(r.Layers, l)
		r.Total += l.Total
	}
	return r
}

// EffectiveFLOPs reports achieved FLOP/s for a result.
func (n *NPU) EffectiveFLOPs(gs []GEMM, r Result) float64 {
	var fl float64
	for _, g := range gs {
		fl += g.FLOPs()
	}
	if r.Total == 0 {
		return 0
	}
	return fl / r.Total.Seconds()
}

// StorageOverheadBytes reports the off-chip MAC storage for protecting
// capacity bytes under the configured scheme (Figure 20 right axis).
func (n *NPU) StorageOverheadBytes(capacity int64) int64 {
	if !n.cfg.Secure {
		return 0
	}
	switch n.cfg.Scheme {
	case npumac.SchemeCacheline:
		return capacity / 64 * int64(n.cfg.MACBytes)
	case npumac.SchemeCoarse:
		return capacity / int64(n.cfg.MACGranBytes) * int64(n.cfg.MACBytes)
	default:
		return 0
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
