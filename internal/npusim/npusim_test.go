package npusim

import (
	"testing"

	"tensortee/internal/config"
	"tensortee/internal/npumac"
)

func testConfig(scheme npumac.Scheme, gran int, secure bool) Config {
	cfg := config.Default(config.BaselineSGXMGX)
	c := FromSystem(&cfg, scheme, gran)
	c.Secure = secure
	return c
}

func TestPeakFLOPsMatchesCalibration(t *testing.T) {
	c := testConfig(npumac.SchemeCacheline, 64, false)
	// 512x512 PEs at 1 GHz, 2 FLOPs per MAC = 524 TFLOP/s — the paper's
	// A100-comparable calibration point.
	if got := c.PeakFLOPs(); got < 5.2e14 || got > 5.3e14 {
		t.Errorf("peak = %g, want ~5.24e14", got)
	}
}

func TestGEMMFLOPs(t *testing.T) {
	g := GEMM{M: 100, K: 200, N: 300}
	if g.FLOPs() != 2*100*200*300 {
		t.Errorf("FLOPs = %g", g.FLOPs())
	}
}

func TestComputeCyclesClosedForm(t *testing.T) {
	n := New(testConfig(npumac.SchemeCacheline, 64, false))
	g := GEMM{Name: "g", M: 1024, K: 2000, N: 1536}
	r := n.RunGEMM(g)
	// mTiles*nTiles*K + fill = 2*3*2000 + 1024 cycles at 1 GHz.
	wantCycles := float64(2*3*2000 + 1024)
	if got := r.Compute.Seconds() * 1e9; got != wantCycles {
		t.Errorf("compute cycles = %g, want %g", got, wantCycles)
	}
}

func TestTransformerGEMMsAreMemoryBound(t *testing.T) {
	// Table 1's balance point is 524 TFLOP/s over 128 GB/s = 4096 flop/B,
	// while the best-reuse GEMM intensity NK/(N+K) caps at ~1024 flop/B
	// for scratchpad-resident operands: the configured NPU is memory-bound
	// on transformer layers (why the MAC-traffic savings of Figure 20 turn
	// into end-to-end wins).
	n := New(testConfig(npumac.SchemeCacheline, 64, false))
	for _, g := range []GEMM{
		{Name: "qkv", M: 22528, K: 1024, N: 3072},
		{Name: "ffn", M: 22528, K: 1024, N: 4096},
		{Name: "big", M: 8192, K: 8192, N: 8192},
	} {
		r := n.RunGEMM(g)
		if r.Compute >= r.Memory {
			t.Errorf("%s: compute=%v >= memory=%v", g.Name, r.Compute, r.Memory)
		}
	}
}

func TestEffectiveFLOPsBelowPeak(t *testing.T) {
	c := testConfig(npumac.SchemeCacheline, 64, false)
	n := New(c)
	gs := []GEMM{{Name: "g", M: 65536, K: 2048, N: 2048}}
	r := n.RunLayers(gs)
	eff := n.EffectiveFLOPs(gs, r)
	if eff <= 0 || eff > c.PeakFLOPs() {
		t.Errorf("effective FLOPs %g outside (0, peak %g]", eff, c.PeakFLOPs())
	}
	// Best-reuse shape: utilization approaches intensity/balance = ~25%.
	if util := eff / c.PeakFLOPs(); util < 0.15 || util > 0.35 {
		t.Errorf("utilization = %.2f, want ~0.25 (memory-bound balance)", util)
	}
}

func TestTrafficRespectsResidency(t *testing.T) {
	n := New(testConfig(npumac.SchemeCacheline, 64, false))
	// Small B: loaded once; traffic ~ A + B + C.
	g := GEMM{M: 1 << 14, K: 1024, N: 1024}
	r := n.RunGEMM(g)
	eb := int64(2)
	want := eb * (int64(g.M)*int64(g.K) + int64(g.K)*int64(g.N) + int64(g.M)*int64(g.N))
	if r.DataBytes != want {
		t.Errorf("traffic = %d, want %d (single-pass streaming)", r.DataBytes, want)
	}
}

func TestTrafficPanelSplitWhenNothingFits(t *testing.T) {
	n := New(testConfig(npumac.SchemeCacheline, 64, false))
	// All operands >> 16MB resident: panel restreaming must show up.
	g := GEMM{M: 1 << 15, K: 1 << 14, N: 1 << 15}
	r := n.RunGEMM(g)
	eb := int64(2)
	onePass := eb * (int64(g.M)*int64(g.K) + int64(g.K)*int64(g.N) + int64(g.M)*int64(g.N))
	if r.DataBytes <= onePass {
		t.Errorf("traffic = %d, want > single pass %d", r.DataBytes, onePass)
	}
}

func TestFusedFlagsReduceTraffic(t *testing.T) {
	n := New(testConfig(npumac.SchemeCacheline, 64, false))
	plain := n.RunGEMM(GEMM{M: 1 << 14, K: 64, N: 1024})
	fused := n.RunGEMM(GEMM{M: 1 << 14, K: 64, N: 1024, NoStoreC: true})
	if fused.DataBytes >= plain.DataBytes {
		t.Error("NoStoreC did not reduce traffic")
	}
	noA := n.RunGEMM(GEMM{M: 1 << 14, K: 64, N: 1024, NoLoadA: true})
	if noA.DataBytes >= plain.DataBytes {
		t.Error("NoLoadA did not reduce traffic")
	}
}

func TestSecureSchemesOrdering(t *testing.T) {
	layer := GEMM{Name: "l", M: 1 << 15, K: 1024, N: 4096}
	ns := New(testConfig(npumac.SchemeCacheline, 64, false)).RunGEMM(layer)
	cl := New(testConfig(npumac.SchemeCacheline, 64, true)).RunGEMM(layer)
	coarse := New(testConfig(npumac.SchemeCoarse, 4096, true)).RunGEMM(layer)
	delayed := New(testConfig(npumac.SchemeTensorDelayed, 64, true)).RunGEMM(layer)

	if ns.Total >= cl.Total {
		t.Error("cacheline MAC should cost more than non-secure")
	}
	if delayed.Total >= cl.Total {
		t.Error("delayed verification should beat cacheline MAC")
	}
	if delayed.Total >= coarse.Total {
		t.Error("delayed verification should beat 4KB coarse MAC")
	}
	// Figure 20 right axis orderings.
	if cl.MACTrafficBytes <= coarse.MACTrafficBytes {
		t.Error("64B MACs should move more MAC bytes than 4KB MACs")
	}
	if delayed.MACTrafficBytes != 0 {
		t.Error("tensor MAC must have zero off-chip MAC traffic")
	}
}

func TestCoarseStallGrowsWithGranularity(t *testing.T) {
	layer := GEMM{Name: "l", M: 1 << 15, K: 1024, N: 4096}
	var prev float64 = -1
	for _, gran := range []int{256, 512, 1024, 2048, 4096} {
		r := New(testConfig(npumac.SchemeCoarse, gran, true)).RunGEMM(layer)
		frac := float64(r.Stall) / float64(r.Memory)
		if frac < prev {
			t.Errorf("stall fraction decreased at %dB: %g < %g", gran, frac, prev)
		}
		prev = frac
	}
}

func TestStorageOverheadBytes(t *testing.T) {
	const cap = 1 << 30
	cl := New(testConfig(npumac.SchemeCacheline, 64, true))
	if got := cl.StorageOverheadBytes(cap); got != cap/64*7 {
		t.Errorf("cacheline storage = %d", got)
	}
	co := New(testConfig(npumac.SchemeCoarse, 4096, true))
	if got := co.StorageOverheadBytes(cap); got != cap/4096*7 {
		t.Errorf("coarse storage = %d", got)
	}
	del := New(testConfig(npumac.SchemeTensorDelayed, 64, true))
	if got := del.StorageOverheadBytes(cap); got != 0 {
		t.Errorf("tensor storage = %d, want 0", got)
	}
	ns := New(testConfig(npumac.SchemeCacheline, 64, false))
	if got := ns.StorageOverheadBytes(cap); got != 0 {
		t.Errorf("non-secure storage = %d, want 0", got)
	}
}

func TestDelayedVerificationTracksTensors(t *testing.T) {
	n := New(testConfig(npumac.SchemeTensorDelayed, 64, true))
	n.RunGEMM(GEMM{Name: "g", M: 1024, K: 1024, N: 1024})
	if n.Verifier().Stats().BarrierChecks != 0 && n.Verifier().Unverified() < 0 {
		t.Error("verifier state inconsistent")
	}
}

func TestRunLayersAggregates(t *testing.T) {
	n := New(testConfig(npumac.SchemeCacheline, 64, false))
	gs := []GEMM{
		{Name: "a", M: 2048, K: 1024, N: 1024},
		{Name: "b", M: 2048, K: 1024, N: 1024},
	}
	r := n.RunLayers(gs)
	if len(r.Layers) != 2 {
		t.Fatalf("layers = %d", len(r.Layers))
	}
	if r.Total != r.Layers[0].Total+r.Layers[1].Total {
		t.Error("total is not the sum of layer totals")
	}
	if r.DataBytes() != r.Layers[0].DataBytes+r.Layers[1].DataBytes {
		t.Error("DataBytes aggregation wrong")
	}
	if r.Compute() == 0 || r.MemoryTotal() == 0 {
		t.Error("aggregates empty")
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Config{})
}

func TestStallFractionShape(t *testing.T) {
	if stallFraction(64) != 0 || stallFraction(128) != 0 {
		t.Error("fine granularities must not stall")
	}
	if stallFraction(4096) <= stallFraction(256) {
		t.Error("stall must grow with granularity")
	}
	// 4KB lands near the paper's 13% overhead.
	if f := stallFraction(4096); f < 0.10 || f > 0.20 {
		t.Errorf("stall(4KB) = %g, want ~0.15", f)
	}
}

func TestWeightStationaryDataflow(t *testing.T) {
	os := testConfig(npumac.SchemeCacheline, 64, false)
	ws := os
	ws.Dataflow = WeightStationary

	// Tall-skinny GEMM (many activations, few weights): WS compute
	// streams M per weight tile and pays partial-sum spills when C is
	// large, so OS should win on transformer shapes.
	g := GEMM{Name: "ffn", M: 1 << 16, K: 1024, N: 4096}
	rOS := New(os).RunGEMM(g)
	rWS := New(ws).RunGEMM(g)
	if rWS.Total <= rOS.Total {
		t.Errorf("weight stationary (%v) should lose to output stationary (%v) on tall GEMMs",
			rWS.Total, rOS.Total)
	}
	if rWS.DataBytes <= rOS.DataBytes {
		t.Errorf("WS should spill partial sums: %d vs %d bytes", rWS.DataBytes, rOS.DataBytes)
	}

	// Weight-heavy, activation-light GEMM: WS has fewer beats.
	g2 := GEMM{Name: "proj", M: 256, K: 8192, N: 8192}
	c2OS := New(os).RunGEMM(g2).Compute
	c2WS := New(ws).RunGEMM(g2).Compute
	if c2WS >= c2OS {
		t.Errorf("WS compute (%v) should beat OS (%v) when M is small", c2WS, c2OS)
	}
}

func TestDataflowString(t *testing.T) {
	if OutputStationary.String() != "output-stationary" || WeightStationary.String() != "weight-stationary" {
		t.Error("dataflow strings wrong")
	}
}
