package core

import (
	"encoding/json"
	"testing"

	"tensortee/internal/config"
	"tensortee/internal/workload"
)

// TestSnapshotRoundTripIsBitExact pins the warm-cold-start contract of
// the persistent store: a system rebuilt from a (JSON round-tripped)
// snapshot must time every workload bit-identically to the freshly
// calibrated original — the calibrated floats are carried as raw bits,
// so nothing may drift.
func TestSnapshotRoundTripIsBitExact(t *testing.T) {
	if testing.Short() {
		t.Skip("calibrates a system")
	}
	for _, kind := range []config.SystemKind{config.NonSecure, config.BaselineSGXMGX, config.TensorTEE} {
		fresh, err := NewSystem(kind)
		if err != nil {
			t.Fatal(err)
		}
		// Through JSON, as the store keeps it.
		b, err := json.Marshal(fresh.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		var snap CalibrationSnapshot
		if err := json.Unmarshal(b, &snap); err != nil {
			t.Fatal(err)
		}
		rebuilt, err := NewSystemFromSnapshot(fresh.Cfg, snap)
		if err != nil {
			t.Fatal(err)
		}
		if rebuilt.cpuCostPerByte != fresh.cpuCostPerByte || rebuilt.cpuWarmupPerByte != fresh.cpuWarmupPerByte {
			t.Fatalf("%v: calibration floats drifted through the snapshot", kind)
		}
		for _, m := range workload.Models() {
			got, want := rebuilt.TrainStep(m), fresh.TrainStep(m)
			if got != want {
				t.Errorf("%v/%s: TrainStep from snapshot = %+v, fresh = %+v", kind, m.Name, got, want)
			}
		}
	}
}

func TestSnapshotRejectsImplausibleValues(t *testing.T) {
	cfg := config.Default(config.NonSecure)
	cases := []CalibrationSnapshot{
		{}, // zero costs
		{CostPerByteBits: 0x7FF0000000000000, WarmupPerByteBits: 1}, // +Inf cost
		{CostPerByteBits: 0x7FF8000000000001, WarmupPerByteBits: 1}, // NaN cost
		{CostPerByteBits: 0xBFF0000000000000, WarmupPerByteBits: 1}, // negative cost
	}
	for i, snap := range cases {
		if _, err := NewSystemFromSnapshot(cfg, snap); err == nil {
			t.Errorf("case %d: implausible snapshot accepted", i)
		}
	}
	// An invalid config is rejected before the snapshot is even looked at.
	bad := cfg
	bad.CPU.Cores = 0
	if _, err := NewSystemFromSnapshot(bad, CalibrationSnapshot{CostPerByteBits: 1, WarmupPerByteBits: 1}); err == nil {
		t.Error("invalid config accepted")
	}
}
