package core

import (
	"testing"

	"tensortee/internal/config"
	"tensortee/internal/workload"
)

// systems are expensive to calibrate; share across tests.
var (
	testNS, testBase, testTTE *System
)

func systems(t *testing.T) (*System, *System, *System) {
	t.Helper()
	if testNS == nil {
		var err error
		if testNS, err = NewSystem(config.NonSecure); err != nil {
			t.Fatal(err)
		}
		if testBase, err = NewSystem(config.BaselineSGXMGX); err != nil {
			t.Fatal(err)
		}
		if testTTE, err = NewSystem(config.TensorTEE); err != nil {
			t.Fatal(err)
		}
	}
	return testNS, testBase, testTTE
}

func TestBreakdownAccounting(t *testing.T) {
	b := StepBreakdown{NPU: 10, CPU: 20, CommW: 30, CommG: 40}
	if b.Total() != 100 {
		t.Errorf("Total = %d", b.Total())
	}
	n, c, w, g := b.Fractions()
	if n != 0.1 || c != 0.2 || w != 0.3 || g != 0.4 {
		t.Errorf("fractions = %v %v %v %v", n, c, w, g)
	}
	var zero StepBreakdown
	if n, _, _, _ := zero.Fractions(); n != 0 {
		t.Error("zero breakdown fractions should be 0")
	}
}

func TestSystemOrdering(t *testing.T) {
	ns, base, tte := systems(t)
	m, _ := workload.ModelByName("GPT2-M")
	tNS := ns.TrainStep(m).Total()
	tBase := base.TrainStep(m).Total()
	tTTE := tte.TrainStep(m).Total()

	if tBase <= tNS {
		t.Error("baseline not slower than non-secure")
	}
	if tTTE <= tNS {
		t.Error("TensorTEE should not beat non-secure (it adds protection)")
	}
	if tTTE >= tBase {
		t.Error("TensorTEE not faster than the baseline")
	}
	// Paper: TensorTEE within a few percent of non-secure.
	overhead := float64(tTTE)/float64(tNS) - 1
	if overhead > 0.10 {
		t.Errorf("TensorTEE overhead = %.1f%%, want <= 10%% (paper: 2.1%%)", overhead*100)
	}
}

func TestSpeedupGrowsWithModelSize(t *testing.T) {
	_, base, tte := systems(t)
	small, _ := workload.ModelByName("GPT")
	large, _ := workload.ModelByName("OPT-6.7B")
	spSmall := float64(base.TrainStep(small).Total()) / float64(tte.TrainStep(small).Total())
	spLarge := float64(base.TrainStep(large).Total()) / float64(tte.TrainStep(large).Total())
	if spLarge <= spSmall {
		t.Errorf("speedup should grow with model size: %v (GPT) vs %v (OPT-6.7B)", spSmall, spLarge)
	}
	// Paper band: 2.1x..5.5x; accept [1.3, 8].
	if spSmall < 1.3 || spLarge > 8 {
		t.Errorf("speedups out of band: %.2f / %.2f", spSmall, spLarge)
	}
}

func TestBaselineCommDominates(t *testing.T) {
	ns, base, _ := systems(t)
	m, _ := workload.ModelByName("GPT2-M")
	_, _, wNS, gNS := ns.TrainStep(m).Fractions()
	_, _, wB, gB := base.TrainStep(m).Fractions()
	if wB+gB <= wNS+gNS {
		t.Error("baseline communication share should exceed non-secure (paper: 12% -> 53%)")
	}
	if wB+gB < 0.25 {
		t.Errorf("baseline comm share = %.0f%%, want >= 25%%", (wB+gB)*100)
	}
}

func TestCPUAdamScalesLinearly(t *testing.T) {
	ns, _, _ := systems(t)
	small, _ := workload.ModelByName("GPT")
	large, _ := workload.ModelByName("OPT-6.7B")
	tS := ns.CPUAdamTime(small)
	tL := ns.CPUAdamTime(large)
	ratio := float64(tL) / float64(tS)
	paramRatio := float64(large.Params()) / float64(small.Params())
	if ratio < 0.9*paramRatio || ratio > 1.1*paramRatio {
		t.Errorf("CPU time ratio %.1f should track param ratio %.1f", ratio, paramRatio)
	}
}

func TestWarmupCostsMoreInTensorMode(t *testing.T) {
	_, _, tte := systems(t)
	m, _ := workload.ModelByName("GPT2-M")
	if tte.CPUAdamWarmupTime(m) <= tte.CPUAdamTime(m) {
		t.Error("detection iteration should cost more than steady state")
	}
}

func TestNPUPhasesBackwardHeavier(t *testing.T) {
	ns, _, _ := systems(t)
	m, _ := workload.ModelByName("GPT2-M")
	fwd, bwd := ns.NPUPhases(m)
	if bwd <= fwd {
		t.Error("backward (2x GEMMs) should exceed forward")
	}
}

func TestGradTransferProtocols(t *testing.T) {
	ns, base, tte := systems(t)
	m, _ := workload.ModelByName("GPT2-M")
	bNS := ns.GradTransferBreakdown(m)
	bBase := base.GradTransferBreakdown(m)
	bTTE := tte.GradTransferBreakdown(m)
	if bNS.ReencryptTime != 0 || bTTE.ReencryptTime != 0 {
		t.Error("only the staged secure protocol re-encrypts")
	}
	if bBase.ReencryptTime == 0 {
		t.Error("baseline must pay re-encryption")
	}
	if bBase.Total() <= bTTE.Total() {
		t.Error("baseline transfer not slower than direct")
	}
}

func TestDescribe(t *testing.T) {
	ns, _, tte := systems(t)
	if ns.Describe() == tte.Describe() {
		t.Error("descriptions should differ")
	}
}

func TestNewSystemValidates(t *testing.T) {
	for _, k := range []config.SystemKind{config.NonSecure, config.BaselineSGXMGX, config.TensorTEE} {
		if _, err := NewSystem(k); err != nil {
			t.Errorf("NewSystem(%v): %v", k, err)
		}
	}
}
