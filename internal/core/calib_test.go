package core

import (
	"testing"

	"tensortee/internal/config"
	"tensortee/internal/workload"
)

// TestSystemShapes probes the Figure 5/16/17 shapes; detailed band checks
// live in internal/experiments.
func TestSystemShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	ns, err := NewSystem(config.NonSecure)
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewSystem(config.BaselineSGXMGX)
	if err != nil {
		t.Fatal(err)
	}
	tte, err := NewSystem(config.TensorTEE)
	if err != nil {
		t.Fatal(err)
	}

	m, _ := workload.ModelByName("GPT2-M")
	for _, s := range []*System{ns, base, tte} {
		b := s.TrainStep(m)
		n, c, w, g := b.Fractions()
		t.Logf("%-12s total=%.3fs  npu=%.0f%% cpu=%.0f%% commW=%.0f%% commG=%.0f%%",
			s.Cfg.System, b.Total().Seconds(), n*100, c*100, w*100, g*100)
	}

	t.Log("--- per-model speedups (TensorTEE vs baseline; overhead vs non-secure) ---")
	for _, m := range workload.Models() {
		tNS := ns.TrainStep(m).Total()
		tBase := base.TrainStep(m).Total()
		tTTE := tte.TrainStep(m).Total()
		t.Logf("%-12s ns=%.3fs base=%.3fs ours=%.3fs speedup=%.2fx overhead=%.1f%%",
			m.Name, tNS.Seconds(), tBase.Seconds(), tTTE.Seconds(),
			float64(tBase)/float64(tTTE), (float64(tTTE)/float64(tNS)-1)*100)
	}
}
