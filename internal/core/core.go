// Package core wires the CPU simulator, the NPU simulator, and the
// communication model into the three systems the paper evaluates
// (Section 5.2): Non-Secure, the SGX+MGX baseline, and TensorTEE. Its
// TrainStep composes one ZeRO-Offload iteration (Figure 1) and reports the
// visible time breakdown that Figures 5, 16, and 17 plot.
package core

import (
	"fmt"
	"math"

	"tensortee/internal/comm"
	"tensortee/internal/config"
	"tensortee/internal/cpusim"
	"tensortee/internal/mee"
	"tensortee/internal/npumac"
	"tensortee/internal/npusim"
	"tensortee/internal/sim"
	"tensortee/internal/tensor"
	"tensortee/internal/trace"
	"tensortee/internal/workload"
)

// StepBreakdown is the visible per-phase time of one training step: the
// NPU forward+backward, the CPU optimizer, and the two transfers (weights
// CPU->NPU, gradients NPU->CPU) after overlap with computation.
type StepBreakdown struct {
	NPU   sim.Dur
	CPU   sim.Dur
	CommW sim.Dur
	CommG sim.Dur
}

// Total is the step's critical-path time.
func (b StepBreakdown) Total() sim.Dur { return b.NPU + b.CPU + b.CommW + b.CommG }

// Fractions returns each phase's share of the total.
func (b StepBreakdown) Fractions() (npu, cpu, commW, commG float64) {
	t := float64(b.Total())
	if t == 0 {
		return 0, 0, 0, 0
	}
	return float64(b.NPU) / t, float64(b.CPU) / t, float64(b.CommW) / t, float64(b.CommG) / t
}

// System is one configured end-to-end system.
type System struct {
	Cfg  config.Config
	Link comm.LinkModel

	// cpuCostPerByte is the calibrated steady-state CPU Adam time per byte
	// of optimizer-state traffic, measured once by simulation (the sweep is
	// streaming, so time is linear in footprint).
	cpuCostPerByte float64
	// cpuWarmupPerByte is the iteration-1 (detection) cost per byte, kept
	// for warmup-sensitive experiments.
	cpuWarmupPerByte float64
}

// SampledElems is the optimizer-sweep window the CPU calibration
// simulates; large models scale linearly from it.
const SampledElems = 1 << 21

// adamTrafficBytesPerElem is the DRAM traffic per fp32 element of a fused
// Adam sweep: read w,g,m,v and write back w,m,v.
const adamTrafficBytesPerElem = 28

// NewSystem builds and calibrates a system of the given kind with the
// Table-1 default configuration.
func NewSystem(kind config.SystemKind) (*System, error) {
	return NewSystemFromConfig(config.Default(kind))
}

// NewSystemFromConfig builds and calibrates a system from an explicit
// configuration — the entry point for custom scenarios that override
// Table-1 knobs (metadata-cache size, DRAM channels, link bandwidth, ...).
// The protection behavior (MEE mode, NPU MAC scheme, transfer protocol) is
// derived from the Protection flags, not from the SystemKind label, so a
// config may mix, say, the SGX-like CPU MEE with the direct transfer
// protocol.
func NewSystemFromConfig(cfg config.Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{Cfg: cfg, Link: comm.FromSystem(&cfg)}
	s.calibrateCPU()
	return s, nil
}

// CalibrationSnapshot is the serializable product of calibrateCPU: the
// two measured cost-per-byte figures, carried as raw IEEE-754 bits so a
// snapshot round-trips bit-exactly through any text encoding. Everything
// else in a System is derived from its Config, so (config fingerprint,
// snapshot) fully reconstructs a calibrated system — which is what makes
// cold-start calibration O(disk read) for the persistent store.
type CalibrationSnapshot struct {
	CostPerByteBits   uint64 `json:"cost_per_byte_bits"`
	WarmupPerByteBits uint64 `json:"warmup_per_byte_bits"`
}

// Snapshot captures this system's calibrated state.
func (s *System) Snapshot() CalibrationSnapshot {
	return CalibrationSnapshot{
		CostPerByteBits:   math.Float64bits(s.cpuCostPerByte),
		WarmupPerByteBits: math.Float64bits(s.cpuWarmupPerByte),
	}
}

// NewSystemFromSnapshot rebuilds a calibrated system from a stored
// snapshot without re-running the calibration simulation. The snapshot
// must come from a system calibrated with an identical configuration
// (callers key snapshots by config content fingerprint); implausible
// snapshot values (non-finite or non-positive costs) are rejected so a
// stale or hand-edited snapshot degrades to an error — and thence to a
// fresh calibration — rather than to silently wrong numbers.
func NewSystemFromSnapshot(cfg config.Config, snap CalibrationSnapshot) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cost := math.Float64frombits(snap.CostPerByteBits)
	warm := math.Float64frombits(snap.WarmupPerByteBits)
	if !(cost > 0) || !(warm > 0) || math.IsInf(cost, 0) || math.IsInf(warm, 0) {
		return nil, fmt.Errorf("core: implausible calibration snapshot (cost=%g warmup=%g)", cost, warm)
	}
	s := &System{Cfg: cfg, Link: comm.FromSystem(&cfg)}
	s.cpuCostPerByte = cost
	s.cpuWarmupPerByte = warm
	return s, nil
}

// cpuMode derives the MEE mode from the protection configuration: no
// protection at all for non-secure systems, the tensor-granularity path
// when TenAnalyzer runs in the memory controller, the SGX-like
// per-cacheline path otherwise. For the three Table-1 defaults this maps
// exactly to the historical kind-based selection.
func (s *System) cpuMode() mee.Mode {
	switch {
	case !s.Cfg.Secure():
		return mee.ModeOff
	case s.Cfg.Protection.TensorWiseCPU:
		return mee.ModeTensor
	default:
		return mee.ModeSGX
	}
}

// npuScheme derives the NPU MAC scheme and granularity from the protection
// configuration: delayed tensor-granularity verification when enabled,
// else cacheline MACs at the configured granularity (coarse grouping when
// the granularity exceeds a line).
func (s *System) npuScheme() (npumac.Scheme, int) {
	gran := s.Cfg.Protection.MACGranBytes
	switch {
	case s.Cfg.Protection.DelayedVerification:
		return npumac.SchemeTensorDelayed, gran
	case gran > s.Cfg.NPU.LineBytes:
		return npumac.SchemeCoarse, gran
	default:
		return npumac.SchemeCacheline, gran
	}
}

// calibrateCPU measures the Adam sweep cost per byte by simulating a
// representative window at full thread count, one iteration for warmup
// (Meta Table detection in tensor mode) and one for steady state.
func (s *System) calibrateCPU() {
	arena := tensor.NewArena(0, 64)
	quads := []trace.AdamTensors{trace.NewAdamTensors(arena, "calib", SampledElems)}
	lines := int(arena.Next()/64) + 64
	// An explicit protected-region span deepens the Merkle tree and grows
	// the metadata footprint beyond what the calibration window implies.
	if pb := s.Cfg.CPU.ProtectedBytes; pb > 0 {
		if rl := int(pb / int64(s.Cfg.CPU.LineBytes)); rl > lines {
			lines = rl
		}
	}

	csim := cpusim.New(s.Cfg, cpusim.Options{Mode: s.cpuMode(), DataLines: lines})
	mk := func() []trace.Stream {
		return trace.AdamStreams(quads, trace.AdamConfig{
			LineBytes:      s.Cfg.CPU.LineBytes,
			ComputePerLine: sim.Cycles(40, s.Cfg.CPU.FreqHz),
			Cores:          s.Cfg.CPU.Cores,
		})
	}
	bytes := float64(SampledElems) * adamTrafficBytesPerElem
	warm := csim.Run(mk())
	s.cpuWarmupPerByte = warm.Makespan.Seconds() / bytes
	steady := csim.Run(mk())
	s.cpuCostPerByte = steady.Makespan.Seconds() / bytes
}

// CPUAdamTime returns the steady-state optimizer-step time for a model.
func (s *System) CPUAdamTime(m workload.Model) sim.Dur {
	bytes := float64(m.Params()) * adamTrafficBytesPerElem
	return sim.FromSeconds(bytes * s.cpuCostPerByte)
}

// CPUAdamWarmupTime returns the first-iteration (detection) time.
func (s *System) CPUAdamWarmupTime(m workload.Model) sim.Dur {
	bytes := float64(m.Params()) * adamTrafficBytesPerElem
	return sim.FromSeconds(bytes * s.cpuWarmupPerByte)
}

// NPUPhases times the forward and backward passes.
func (s *System) NPUPhases(m workload.Model) (fwd, bwd sim.Dur) {
	scheme, gran := s.npuScheme()
	n := npusim.New(npusim.FromSystem(&s.Cfg, scheme, gran))
	fwd = n.RunLayers(m.ForwardGEMMs()).Total
	bwd = n.RunLayers(m.BackwardGEMMs()).Total
	return fwd, bwd
}

// TrainStep composes one ZeRO-Offload training iteration.
//
// Scheduling per system (Sections 3.3 and 4.4):
//   - Non-Secure: gradients stream to the CPU during the backward pass
//     (overlapped); the weight transfer is a staged copy after the
//     optimizer step (not overlapped — standard memcpy semantics).
//   - SGX+MGX baseline: both transfers pay re-encryption through
//     non-secure staging and serialize with computation (AES-engine and
//     DRAM-bandwidth contention, Figure 7).
//   - TensorTEE: both transfers are direct ciphertext DMAs; gradients
//     overlap the backward pass and weights overlap the optimizer sweep
//     (per-tensor pipelining over quiesced Meta Table entries, Figure 15).
func (s *System) TrainStep(m workload.Model) StepBreakdown {
	fwd, bwd := s.NPUPhases(m)
	cpu := s.CPUAdamTime(m)
	gradBytes, weightBytes := m.CommBytes()

	var b StepBreakdown
	b.NPU = fwd + bwd
	b.CPU = cpu

	switch {
	case !s.Cfg.Secure():
		b.CommG = comm.Visible(s.Link.NonSecure(gradBytes), bwd, true)
		b.CommW = comm.Visible(s.Link.NonSecure(weightBytes), 0, false)
	case s.Cfg.Protection.DirectTransfer:
		// Same schedule as Non-Secure (gradients overlap backward, the
		// weight stage is sequential): the protocol removes the crypto
		// passes, it does not change the ZeRO-Offload schedule.
		b.CommG = comm.Visible(s.Link.Direct(gradBytes), bwd, true)
		b.CommW = comm.Visible(s.Link.Direct(weightBytes), 0, false)
	default:
		b.CommG = comm.Visible(s.Link.StagedSecure(gradBytes), 0, false)
		b.CommW = comm.Visible(s.Link.StagedSecure(weightBytes), 0, false)
	}
	return b
}

// GradTransferBreakdown exposes the Figure-21 decomposition of a gradient
// transfer under this system's protocol.
func (s *System) GradTransferBreakdown(m workload.Model) comm.Breakdown {
	gradBytes, _ := m.CommBytes()
	switch {
	case !s.Cfg.Secure():
		return s.Link.NonSecure(gradBytes)
	case s.Cfg.Protection.DirectTransfer:
		return s.Link.Direct(gradBytes)
	default:
		return s.Link.StagedSecure(gradBytes)
	}
}

// Describe summarizes the system for logs.
func (s *System) Describe() string {
	scheme, _ := s.npuScheme()
	return fmt.Sprintf("%s (cpu=%v, npu=%v, direct=%v)",
		s.Cfg.System, s.cpuMode(), scheme, s.Cfg.Protection.DirectTransfer)
}
