package enclave

import (
	"strings"
	"testing"
)

func pairOf(t *testing.T) (*Enclave, *Enclave) {
	t.Helper()
	cpu := Create(CPUEnclave, []byte("cpu image"), 1)
	npu := Create(NPUEnclave, []byte("npu image"), 2)
	return cpu, npu
}

func TestMeasurementDeterministic(t *testing.T) {
	a := Create(CPUEnclave, []byte("image"), 1)
	b := Create(CPUEnclave, []byte("image"), 2)
	if a.Measurement() != b.Measurement() {
		t.Error("same image produced different measurements")
	}
	c := Create(CPUEnclave, []byte("tampered image"), 1)
	if a.Measurement() == c.Measurement() {
		t.Error("different images share a measurement")
	}
}

func TestAttestReportVerifies(t *testing.T) {
	cpu, _ := pairOf(t)
	r := cpu.Attest()
	if !VerifyReport(r) {
		t.Error("genuine report rejected")
	}
	r.Measurement[0] ^= 1
	if VerifyReport(r) {
		t.Error("tampered measurement accepted")
	}
}

func TestVerifyReportNil(t *testing.T) {
	if VerifyReport(nil) {
		t.Error("nil report accepted")
	}
}

func TestPairEstablishesSharedKey(t *testing.T) {
	cpu, npu := pairOf(t)
	k1, k2, err := Pair(cpu, npu)
	if err != nil {
		t.Fatal(err)
	}
	if !k1.Equal(k2) {
		t.Error("session keys differ")
	}
	if cpu.SessionKey() == nil || npu.SessionKey() == nil {
		t.Error("session keys not retained")
	}
}

func TestDistinctPairsGetDistinctKeys(t *testing.T) {
	cpu1, npu1 := pairOf(t)
	k1, _, err := Pair(cpu1, npu1)
	if err != nil {
		t.Fatal(err)
	}
	cpu2 := Create(CPUEnclave, []byte("cpu image"), 11)
	npu2 := Create(NPUEnclave, []byte("npu image"), 12)
	k2, _, err := Pair(cpu2, npu2)
	if err != nil {
		t.Fatal(err)
	}
	if k1.Equal(k2) {
		t.Error("independent sessions derived the same key")
	}
}

func TestFinalizeRejectsWrongMeasurement(t *testing.T) {
	cpu, npu := pairOf(t)
	var wrong Measurement
	wrong[0] = 0xFF
	if _, err := cpu.Finalize(npu.Attest(), wrong); err == nil {
		t.Error("wrong measurement accepted")
	} else if !strings.Contains(err.Error(), "measurement") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestFinalizeRejectsForgedReport(t *testing.T) {
	cpu, npu := pairOf(t)
	r := npu.Attest()
	r.DHPublic.Add(r.DHPublic, r.DHPublic) // MITM swaps the DH public
	if _, err := cpu.Finalize(r, npu.Measurement()); err == nil {
		t.Error("forged DH public accepted — MITM possible")
	}
}

func TestFinalizeRejectsSameRole(t *testing.T) {
	cpu1 := Create(CPUEnclave, []byte("a"), 1)
	cpu2 := Create(CPUEnclave, []byte("b"), 2)
	if _, err := cpu1.Finalize(cpu2.Attest(), cpu2.Measurement()); err == nil {
		t.Error("two CPU enclaves paired")
	}
}

func TestKindString(t *testing.T) {
	if CPUEnclave.String() != "cpu-enclave" || NPUEnclave.String() != "npu-enclave" {
		t.Error("kind strings wrong")
	}
}
