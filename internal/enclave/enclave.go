// Package enclave implements the trust-establishment substrate of the
// direct transfer protocol (Section 4.4.2): enclave creation with
// measurement, remote-attestation reports, and a Diffie–Hellman key
// exchange that leaves both enclaves holding the same AES key without the
// key ever crossing the wire.
package enclave

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/big"

	"tensortee/internal/crypto"
)

// Kind distinguishes the two enclave roles.
type Kind int

const (
	// CPUEnclave hosts the optimizer step and the Meta Table.
	CPUEnclave Kind = iota
	// NPUEnclave hosts the accelerator kernels and GDDR memory.
	NPUEnclave
)

func (k Kind) String() string {
	if k == CPUEnclave {
		return "cpu-enclave"
	}
	return "npu-enclave"
}

// Measurement is the SHA-256 digest of the enclave's initial code+data
// image (the "report" the creation flow computes).
type Measurement [32]byte

// Report is the attestation evidence an enclave presents: its measurement
// plus the DH public key it will use, bound together and signed by the
// platform root key. The simulated platform signature is an HMAC under a
// hardware root secret both chips share with the (simulated) manufacturer.
type Report struct {
	Kind        Kind
	Measurement Measurement
	DHPublic    *big.Int
	Signature   [32]byte
}

// platformRoot stands in for the manufacturer's provisioning secret.
var platformRoot = [16]byte{0x42, 0x13, 0x37, 0xee, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c}

func signReport(r *Report) [32]byte {
	h := sha256.New()
	h.Write(platformRoot[:])
	var k [8]byte
	binary.LittleEndian.PutUint64(k[:], uint64(r.Kind))
	h.Write(k[:])
	h.Write(r.Measurement[:])
	h.Write(r.DHPublic.Bytes())
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// VerifyReport checks the platform signature over a report.
func VerifyReport(r *Report) bool {
	return r != nil && r.DHPublic != nil && signReport(r) == r.Signature
}

// dhPrime is the 2048-bit MODP group 14 prime (RFC 3526); generator 2.
var dhPrime, _ = new(big.Int).SetString(
	"FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"+
		"020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"+
		"4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"+
		"EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"+
		"98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"+
		"9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"+
		"E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"+
		"3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF", 16)

var dhGen = big.NewInt(2)

// Enclave is one side's trusted state.
type Enclave struct {
	Kind        Kind
	measurement Measurement

	dhPriv  *big.Int
	dhPub   *big.Int
	session *crypto.Key // established after Finalize
}

// Create builds an enclave over an initial image, computing its
// measurement. seed derives the DH private key deterministically so
// simulations are reproducible; callers pass unique seeds per enclave.
func Create(kind Kind, image []byte, seed uint64) *Enclave {
	e := &Enclave{Kind: kind}
	e.measurement = sha256.Sum256(image)

	// Deterministic private scalar from (seed, image): SHA-256 stretched.
	h := sha256.New()
	var s [8]byte
	binary.LittleEndian.PutUint64(s[:], seed)
	h.Write(s[:])
	h.Write(e.measurement[:])
	h.Write([]byte("tensortee-dh-priv"))
	var priv [32]byte
	h.Sum(priv[:0])
	e.dhPriv = new(big.Int).SetBytes(priv[:])
	e.dhPub = new(big.Int).Exp(dhGen, e.dhPriv, dhPrime)
	return e
}

// Measurement returns the enclave's code+data digest.
func (e *Enclave) Measurement() Measurement { return e.measurement }

// Attest produces this enclave's signed report.
func (e *Enclave) Attest() *Report {
	r := &Report{Kind: e.Kind, Measurement: e.measurement, DHPublic: new(big.Int).Set(e.dhPub)}
	r.Signature = signReport(r)
	return r
}

// Finalize verifies the peer's report and derives the shared session key
// (Section 4.4.2: "the two enclaves perform a key-exchange protocol like
// Diffie-Hellman which enables the same key in both enclaves"). The key
// never leaves the chip; only public values crossed the wire.
func (e *Enclave) Finalize(peer *Report, expected Measurement) (*crypto.Key, error) {
	if !VerifyReport(peer) {
		return nil, fmt.Errorf("enclave: peer report signature invalid")
	}
	if peer.Measurement != expected {
		return nil, fmt.Errorf("enclave: peer measurement mismatch: got %x, want %x",
			peer.Measurement[:4], expected[:4])
	}
	if peer.Kind == e.Kind {
		return nil, fmt.Errorf("enclave: peer has the same role %v", e.Kind)
	}
	shared := new(big.Int).Exp(peer.DHPublic, e.dhPriv, dhPrime)
	digest := sha256.Sum256(append([]byte("tensortee-session-v1:"), shared.Bytes()...))
	key, err := crypto.NewKey(digest[:crypto.KeySize])
	if err != nil {
		return nil, err
	}
	e.session = key
	return key, nil
}

// SessionKey returns the established key (nil before Finalize).
func (e *Enclave) SessionKey() *crypto.Key { return e.session }

// Pair runs the whole authentication phase between a CPU and an NPU
// enclave: mutual attestation then key exchange. It returns the two
// (equal) session keys.
func Pair(cpu, npu *Enclave) (*crypto.Key, *crypto.Key, error) {
	cpuReport := cpu.Attest()
	npuReport := npu.Attest()
	kCPU, err := cpu.Finalize(npuReport, npu.Measurement())
	if err != nil {
		return nil, nil, fmt.Errorf("cpu side: %w", err)
	}
	kNPU, err := npu.Finalize(cpuReport, cpu.Measurement())
	if err != nil {
		return nil, nil, fmt.Errorf("npu side: %w", err)
	}
	if !kCPU.Equal(kNPU) {
		return nil, nil, fmt.Errorf("enclave: key agreement produced different keys")
	}
	return kCPU, kNPU, nil
}
