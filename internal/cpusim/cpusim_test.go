package cpusim

import (
	"testing"

	"tensortee/internal/config"
	"tensortee/internal/mee"
	"tensortee/internal/sim"
	"tensortee/internal/tensor"
	"tensortee/internal/trace"
)

// buildAdam returns a fresh sim plus a stream factory for `elems` elements.
func buildAdam(mode mee.Mode, elems int) (*Sim, func(threads, shift int) []trace.Stream) {
	cfg := config.Default(config.BaselineSGXMGX)
	arena := tensor.NewArena(0, 64)
	quads := []trace.AdamTensors{trace.NewAdamTensors(arena, "p0", elems)}
	lines := int(arena.Next() / 64)
	s := New(cfg, Options{Mode: mode, DataLines: lines + 64})
	mk := func(threads, shift int) []trace.Stream {
		return trace.AdamStreams(quads, trace.AdamConfig{
			LineBytes:      64,
			ComputePerLine: sim.Cycles(40, cfg.CPU.FreqHz),
			Cores:          threads,
			ChunkShift:     shift,
		})
	}
	return s, mk
}

func TestNonSecureScalesWithThreads(t *testing.T) {
	elems := 1 << 19
	t1, mk1 := buildAdam(mee.ModeOff, elems)
	r1 := t1.Run(mk1(1, 0))
	t8, mk8 := buildAdam(mee.ModeOff, elems)
	r8 := t8.Run(mk8(8, 0))
	if r8.Makespan >= r1.Makespan {
		t.Errorf("8 threads (%v) not faster than 1 (%v)", r8.Makespan, r1.Makespan)
	}
	speedup := float64(r1.Makespan) / float64(r8.Makespan)
	if speedup < 1.5 {
		t.Errorf("8-thread speedup = %.2f, want >= 1.5 (memory-bound plateau allowed)", speedup)
	}
}

func TestSGXSlowsDownAdam(t *testing.T) {
	elems := 1 << 19
	ns, mkNS := buildAdam(mee.ModeOff, elems)
	sgx, mkSGX := buildAdam(mee.ModeSGX, elems)
	rNS := ns.Run(mkNS(8, 0))
	rSGX := sgx.Run(mkSGX(8, 0))
	slow := float64(rSGX.Makespan) / float64(rNS.Makespan)
	// Paper Figures 3/19: 3.65-3.7x at 8 threads; accept the band [2.5, 5.5].
	if slow < 2.5 || slow > 5.5 {
		t.Errorf("SGX slowdown = %.2fx, want within [2.5, 5.5]", slow)
	}
	if rSGX.DRAMReads <= rNS.DRAMReads {
		t.Error("SGX generated no extra metadata reads")
	}
}

func TestSGXSlowdownGrowsWithThreads(t *testing.T) {
	elems := 1 << 19
	slow := func(threads int) float64 {
		ns, mkNS := buildAdam(mee.ModeOff, elems)
		sgx, mkSGX := buildAdam(mee.ModeSGX, elems)
		rNS := ns.Run(mkNS(threads, 0))
		rSGX := sgx.Run(mkSGX(threads, 0))
		return float64(rSGX.Makespan) / float64(rNS.Makespan)
	}
	s1, s8 := slow(1), slow(8)
	if s8 <= s1 {
		t.Errorf("slowdown should grow with threads (Figure 3): 1t=%.2f 8t=%.2f", s1, s8)
	}
}

func TestTensorModeConverges(t *testing.T) {
	elems := 1 << 19
	ns, mkNS := buildAdam(mee.ModeOff, elems)
	rNS := ns.Run(mkNS(8, 0))

	tt, mkTT := buildAdam(mee.ModeTensor, elems)
	var iters []float64
	for i := 0; i < 5; i++ {
		r := tt.Run(mkTT(8, 0))
		iters = append(iters, float64(r.Makespan)/float64(rNS.Makespan))
	}
	if iters[0] < 1.2 {
		t.Errorf("iteration 1 overhead = %.2fx, expected detection cost > 1.2x", iters[0])
	}
	last := iters[len(iters)-1]
	if last > 1.25 {
		t.Errorf("converged overhead = %.2fx, want <= 1.25x (paper: ~1.1x)", last)
	}
	if last >= iters[0] {
		t.Errorf("no convergence: iter1=%.2f last=%.2f", iters[0], last)
	}
}

func TestTensorModeHitRatesConverge(t *testing.T) {
	elems := 1 << 19
	tt, mkTT := buildAdam(mee.ModeTensor, elems)
	tt.Run(mkTT(8, 0))
	first := tt.Analyzer().Stats()
	tt.Analyzer().ResetStats()
	tt.Run(mkTT(8, 0))
	second := tt.Analyzer().Stats()
	if first.HitInRate() >= second.HitInRate() {
		t.Errorf("hit_in did not grow: %.2f -> %.2f", first.HitInRate(), second.HitInRate())
	}
	if second.HitInRate() < 0.9 {
		t.Errorf("iteration-2 hit_in = %.2f, want > 0.9", second.HitInRate())
	}
	if err := tt.Analyzer().CheckInvariant(); err != nil {
		t.Errorf("analyzer invariant violated after simulation: %v", err)
	}
}

func TestTensorModeCheaperThanSGX(t *testing.T) {
	elems := 1 << 19
	sgx, mkSGX := buildAdam(mee.ModeSGX, elems)
	var sgxLast sim.Dur
	for i := 0; i < 3; i++ {
		sgxLast = sgx.Run(mkSGX(8, 0)).Makespan
	}
	tt, mkTT := buildAdam(mee.ModeTensor, elems)
	var ttLast sim.Dur
	for i := 0; i < 3; i++ {
		ttLast = tt.Run(mkTT(8, 0)).Makespan
	}
	if ttLast >= sgxLast {
		t.Errorf("TensorTEE (%v) not faster than SGX (%v) after convergence", ttLast, sgxLast)
	}
}

func TestMetadataTrafficComparison(t *testing.T) {
	elems := 1 << 18
	sgx, mkSGX := buildAdam(mee.ModeSGX, elems)
	rSGX := sgx.Run(mkSGX(4, 0))
	tt, mkTT := buildAdam(mee.ModeTensor, elems)
	tt.Run(mkTT(4, 0))
	rTT := tt.Run(mkTT(4, 0)) // converged iteration
	if rTT.MEE.ExtraLines() >= rSGX.MEE.ExtraLines() {
		t.Errorf("TensorTEE metadata lines (%d) not below SGX (%d)",
			rTT.MEE.ExtraLines(), rSGX.MEE.ExtraLines())
	}
}

func TestRunPanicsOnTooManyStreams(t *testing.T) {
	s, _ := buildAdam(mee.ModeOff, 1024)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for stream overflow")
		}
	}()
	streams := make([]trace.Stream, 9)
	for i := range streams {
		streams[i] = &trace.SliceStream{}
	}
	s.Run(streams)
}

func TestDropCaches(t *testing.T) {
	s, mk := buildAdam(mee.ModeOff, 1<<14)
	r1 := s.Run(mk(2, 0))
	s.DropCaches()
	r2 := s.Run(mk(2, 0))
	// After dropping caches, the second run must re-fetch (similar DRAM
	// reads), not run warm.
	if r2.DRAMReads*2 < r1.DRAMReads {
		t.Errorf("caches not dropped: run1 %d reads, run2 %d", r1.DRAMReads, r2.DRAMReads)
	}
}

func TestResultBytesMoved(t *testing.T) {
	r := Result{DRAMReads: 10, DRAMWrites: 5}
	if r.BytesMoved() != 15*64 {
		t.Errorf("BytesMoved = %d", r.BytesMoved())
	}
}

func TestGEMMDetection(t *testing.T) {
	cfg := config.Default(config.BaselineSGXMGX)
	s := New(cfg, Options{Mode: mee.ModeTensor, DataLines: 1 << 16})
	// Section 6.2: 256x256 fp32 matrix with 64x64 tiles; one full GEMM pass
	// (repeats model the k-loop revisits) reaches ~98.8% hit_in.
	mk := func() []trace.Stream {
		return []trace.Stream{GEMMTrace(0x0, 256, 256, 64, 64, 4)}
	}
	s.Run(mk())
	s.Analyzer().ResetStats()
	s.DropCaches()
	s.Run(mk())
	rate := s.Analyzer().Stats().HitInRate()
	if rate < 0.9 {
		t.Errorf("GEMM hit_in after one pass = %.3f, want > 0.9 (paper: 0.988)", rate)
	}
}

// GEMMTrace builds the Section-6.2 tiled GEMM stream.
func GEMMTrace(base uint64, rows, cols, tr, tc, repeats int) trace.Stream {
	return trace.GEMMStream(trace.GEMMConfig{
		Base: base, Rows: rows, Cols: cols, TileRows: tr, TileCols: tc,
		Repeats: repeats,
	})
}
