package cpusim

import (
	"math/rand"
	"reflect"
	"testing"

	"tensortee/internal/config"
	"tensortee/internal/mee"
	"tensortee/internal/sim"
	"tensortee/internal/tensor"
	"tensortee/internal/trace"
)

// runBoth replays the same trace through the span fast path and the
// line-granular oracle (streams wrapped with trace.LineOnly) on two
// freshly built simulators and returns both results plus the analyzer
// stats when present. Every field must match exactly: the fast path is a
// pure restructuring of the replay loop, not an approximation.
func runBoth(t *testing.T, mode mee.Mode, lines int, mkStreams func() []trace.Stream, iters int) {
	t.Helper()
	cfg := config.Default(config.BaselineSGXMGX)

	fast := New(cfg, Options{Mode: mode, DataLines: lines})
	oracle := New(cfg, Options{Mode: mode, DataLines: lines})
	for it := 0; it < iters; it++ {
		rFast := fast.Run(mkStreams())
		rOracle := oracle.Run(trace.LineOnlyStreams(mkStreams()))
		if !reflect.DeepEqual(rFast, rOracle) {
			t.Fatalf("iteration %d: fast path diverges from line oracle\nfast:   %+v\noracle: %+v", it, rFast, rOracle)
		}
	}
	// Drain both and compare the flush path too (span-batched vs per line).
	fast.Flush()
	oracle.Flush()
	if fast.analyzer != nil {
		sf, so := fast.analyzer.Stats(), oracle.analyzer.Stats()
		if sf != so {
			t.Fatalf("analyzer stats diverge after flush\nfast:   %+v\noracle: %+v", sf, so)
		}
		if err := fast.analyzer.CheckInvariant(); err != nil {
			t.Fatal(err)
		}
	}
	ef, eo := fast.engine.Stats(), oracle.engine.Stats()
	if ef != eo {
		t.Fatalf("engine stats diverge after flush\nfast:   %+v\noracle: %+v", ef, eo)
	}
}

// TestRunFastPathParityAdam replays Adam sweeps in every MEE mode through
// the fast path and the oracle, requiring identical Results (Makespan,
// DRAM traffic, MEE and analyzer stats) across iterations — including the
// detection-phase iterations where Meta Table entries are still forming.
func TestRunFastPathParityAdam(t *testing.T) {
	for _, tc := range []struct {
		name  string
		mode  mee.Mode
		elems int
		cores int
		shift int
	}{
		{"off-1core", mee.ModeOff, 1 << 12, 1, 0},
		{"sgx-4core", mee.ModeSGX, 1 << 12, 4, 0},
		{"tensor-4core", mee.ModeTensor, 1 << 13, 4, 0},
		{"tensor-shifted", mee.ModeTensor, 1 << 13, 3, 11},
	} {
		t.Run(tc.name, func(t *testing.T) {
			arena := tensor.NewArena(0, 64)
			quads := []trace.AdamTensors{
				NewQuad(arena, "p0", tc.elems),
				NewQuad(arena, "p1", tc.elems/2),
			}
			lines := int(arena.Next()/64) + 64
			mk := func() []trace.Stream {
				return trace.AdamStreams(quads, trace.AdamConfig{
					LineBytes:      64,
					ComputePerLine: sim.Cycles(40, 3.5e9),
					Cores:          tc.cores,
					ChunkShift:     tc.shift,
				})
			}
			runBoth(t, tc.mode, lines, mk, 3)
		})
	}
}

// NewQuad is a test alias keeping the parity tables compact.
func NewQuad(a *tensor.Arena, name string, elems int) trace.AdamTensors {
	return trace.NewAdamTensors(a, name, elems)
}

// TestRunFastPathParityGEMM does the same for the tiled-GEMM read stream
// (tensor mode, where entry merging builds multi-dimensional entries).
func TestRunFastPathParityGEMM(t *testing.T) {
	mk := func() []trace.Stream {
		return []trace.Stream{trace.GEMMStream(trace.GEMMConfig{
			Base: 0, Rows: 64, Cols: 64, TileRows: 16, TileCols: 16, Repeats: 2,
		})}
	}
	runBoth(t, mee.ModeTensor, 1<<12, mk, 2)
	runBoth(t, mee.ModeSGX, 1<<12, mk, 2)
}

// TestRunFastPathParityRandom replays randomized coalesced run soups —
// spans that straddle tensor boundaries, metadata-line groups, and the
// region end — through both paths. Seeded, so failures reproduce.
func TestRunFastPathParityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const dataLines = 1 << 10
	for trial := 0; trial < 8; trial++ {
		var runs []trace.Run
		for i := 0; i < 200; i++ {
			runs = append(runs, trace.Run{
				Addr:    uint64(rng.Intn(dataLines-16)) * 64,
				Lines:   1 + rng.Intn(16),
				Stride:  64,
				Write:   rng.Intn(3) == 0,
				Compute: sim.Dur(rng.Intn(3) * 100),
			})
		}
		mode := []mee.Mode{mee.ModeOff, mee.ModeSGX, mee.ModeTensor}[trial%3]
		mk := func() []trace.Stream {
			cp := append([]trace.Run(nil), runs...)
			return []trace.Stream{&trace.RunSlice{Runs: cp}}
		}
		runBoth(t, mode, dataLines, mk, 2)
	}
}
