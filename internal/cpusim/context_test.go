package cpusim

import (
	"testing"

	"tensortee/internal/mee"
	"tensortee/internal/sim"
	"tensortee/internal/trace"
)

// TestContextSwitchSaveRestore exercises the Section 4.2 context-switch
// path: the Meta Table is saved when the enclave is descheduled and
// restored when it resumes, so detection state survives interference from
// other processes' address streams.
func TestContextSwitchSaveRestore(t *testing.T) {
	s, mk := buildAdam(mee.ModeTensor, 1<<18)

	// Warm up: detect the tensors, then quiesce (enclave-exit flush) so
	// the table snapshot is consistent with the off-chip VN state.
	s.Run(mk(4, 0))
	s.Run(mk(4, 0))
	s.Flush()
	snap := s.Analyzer().Save()
	warm := s.Analyzer().Stats()
	if warm.Accesses() == 0 {
		t.Fatal("no accesses recorded")
	}

	// A different enclave runs: its stream trashes the table (the
	// hardware would have swapped tables; here we simulate the trashing
	// to prove Restore is what saves us).
	foreign := &trace.SliceStream{}
	for i := 0; i < 4096; i++ {
		foreign.Accesses = append(foreign.Accesses, trace.Access{Addr: 0x4000_0000 + uint64(i*64)})
	}
	s.Run([]trace.Stream{foreign})

	// Resume without restore: the original tensors are partly evicted or
	// shadowed; resume with restore: hit rates return.
	s.Analyzer().Restore(snap)
	s.Analyzer().ResetStats()
	s.DropCaches()
	r := s.Run(mk(4, 0))
	if rate := s.Analyzer().Stats().HitInRate(); rate < 0.9 {
		t.Errorf("hit_in after restore = %.2f, want >= 0.9", rate)
	}
	if err := s.Analyzer().CheckInvariant(); err != nil {
		t.Errorf("invariant after context switch: %v", err)
	}
	_ = r
}

// TestTensorModeWarmupAmortized checks the claim behind Figure 19: the
// detection cost of iteration 1 is amortized across the thousands of
// iterations of a training run.
func TestTensorModeWarmupAmortized(t *testing.T) {
	s, mk := buildAdam(mee.ModeTensor, 1<<18)
	var first, sum sim.Dur
	const iters = 10
	for i := 0; i < iters; i++ {
		r := s.Run(mk(8, 0))
		if i == 0 {
			first = r.Makespan
		}
		sum += r.Makespan
	}
	avg := sum / iters
	if first <= avg {
		t.Errorf("iteration 1 (%v) should exceed the average (%v)", first, avg)
	}
	// Amortized average approaches steady state ("the initialization phase
	// is negligible" over training-scale iteration counts).
	last := s.Run(mk(8, 0)).Makespan
	if float64(avg) > 1.4*float64(last) {
		t.Errorf("average %v too far above steady state %v", avg, last)
	}
}
