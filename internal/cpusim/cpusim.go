// Package cpusim is the gem5-lite host-CPU timing model: multiple cores
// with private L1/L2 and a shared L3, issuing line-granular access streams
// into a memory controller fronted by the MEE (and, in TensorTEE mode, the
// TenAnalyzer). It reproduces the CPU-side results of the paper: the SGX
// slowdown on the memory-intensive Adam step (Figure 3) and the
// iteration-by-iteration recovery of TensorTEE (Figures 18/19).
//
// Core model: each core issues from its stream with a bounded number of
// outstanding misses (memory-level parallelism). Cache hits cost their
// level's latency; misses pay the full MEE + DRAM path. Writes dirty the
// caches and reach the controller as writebacks, which is exactly the
// filtered write stream the TenAnalyzer observes (Figure 12).
package cpusim

import (
	"fmt"

	"tensortee/internal/cache"
	"tensortee/internal/config"
	"tensortee/internal/dram"
	"tensortee/internal/mee"
	"tensortee/internal/sim"
	"tensortee/internal/tenanalyzer"
	"tensortee/internal/trace"
)

// Result summarizes one run.
type Result struct {
	// Makespan is the time from first issue to last completion.
	Makespan sim.Time
	// Accesses is the number of stream operations replayed.
	Accesses uint64
	// DRAMReads / DRAMWrites are line transfers that reached memory.
	DRAMReads, DRAMWrites uint64
	// MEE is the encryption-engine activity.
	MEE mee.Stats
	// Analyzer is the TenAnalyzer activity (zero unless tensor mode).
	Analyzer tenanalyzer.Stats
}

// BytesMoved returns total DRAM traffic in bytes (64 B lines).
func (r Result) BytesMoved() int64 {
	return int64(r.DRAMReads+r.DRAMWrites) * 64
}

// Sim is a reusable CPU simulator instance. Cache and Meta Table state
// persists across Run calls, which is what makes iteration sweeps
// meaningful (Figure 18's hit-rate convergence).
type Sim struct {
	cfg      config.Config
	mode     mee.Mode
	mem      *dram.Memory
	engine   *mee.Engine
	analyzer *tenanalyzer.Analyzer
	store    tenanalyzer.VNStore

	l1, l2 []*cache.Cache
	l3     *cache.Cache

	l1Lat, l2Lat, l3Lat sim.Dur
	issueGap            sim.Dur

	now sim.Time // end of the previous run; runs are back to back
}

// Options configures simulator construction.
type Options struct {
	// Mode selects the protection scheme charged by the MEE.
	Mode mee.Mode
	// DataLines sizes the protected region's metadata layout.
	DataLines int
	// Store is the off-chip VN array for tensor mode; when nil a dense
	// array store over [0, DataLines*64) is created.
	Store tenanalyzer.VNStore
	// Analyzer supplies a pre-built TenAnalyzer (tensor mode); when nil
	// and Mode == ModeTensor, one with the paper's sizing is created.
	Analyzer *tenanalyzer.Analyzer
}

// New builds a simulator from the Table-1 configuration.
func New(cfg config.Config, opts Options) *Sim {
	if opts.DataLines <= 0 {
		opts.DataLines = 1 << 22 // 256 MB default protected span
	}
	mem := dram.New(dram.DDR4_2400(), cfg.HostDRAM.Channels)
	layout := mee.NewLayout(0, opts.DataLines, cfg.CPU.LineBytes, cfg.Protection.MerkleArity)
	s := &Sim{
		cfg:      cfg,
		mode:     opts.Mode,
		mem:      mem,
		engine:   mee.NewEngine(opts.Mode, &cfg, mem, layout),
		l3:       cache.New("l3", cfg.CPU.L3SizeBytes, cfg.CPU.L3Ways, cfg.CPU.LineBytes),
		l1Lat:    sim.Cycles(float64(cfg.CPU.L1LatCycles), cfg.CPU.FreqHz),
		l2Lat:    sim.Cycles(float64(cfg.CPU.L2LatCycles), cfg.CPU.FreqHz),
		l3Lat:    sim.Cycles(float64(cfg.CPU.L3LatCycles), cfg.CPU.FreqHz),
		issueGap: sim.Cycles(1, cfg.CPU.FreqHz),
	}
	for i := 0; i < cfg.CPU.Cores; i++ {
		s.l1 = append(s.l1, cache.New(fmt.Sprintf("l1-%d", i), cfg.CPU.L1SizeBytes, cfg.CPU.L1Ways, cfg.CPU.LineBytes))
		s.l2 = append(s.l2, cache.New(fmt.Sprintf("l2-%d", i), cfg.CPU.L2SizeBytes, cfg.CPU.L2Ways, cfg.CPU.LineBytes))
	}
	if opts.Mode == mee.ModeTensor {
		s.store = opts.Store
		if s.store == nil {
			s.store = tenanalyzer.NewArrayVNStore(0, opts.DataLines*cfg.CPU.LineBytes, cfg.CPU.LineBytes)
		}
		s.analyzer = opts.Analyzer
		if s.analyzer == nil {
			ac := tenanalyzer.DefaultConfig()
			ac.Entries = cfg.Protection.MetaTableSize
			ac.FilterEntries = cfg.Protection.FilterEntries
			ac.FilterDepth = cfg.Protection.FilterDepth
			ac.LineBytes = cfg.CPU.LineBytes
			s.analyzer = tenanalyzer.New(ac, s.store)
		}
	}
	return s
}

// Analyzer exposes the TenAnalyzer (nil unless tensor mode).
func (s *Sim) Analyzer() *tenanalyzer.Analyzer { return s.analyzer }

// Engine exposes the MEE for stats inspection.
func (s *Sim) Engine() *mee.Engine { return s.engine }

// completionHeap is the sorted circular ring of outstanding miss
// completion times (ascending from head). It replaces container/heap,
// whose Push(x any)/Pop() boxed every sim.Time into a fresh interface
// allocation on the hottest path of the simulator. The window is bounded
// by the MLP depth (10), DRAM completions arrive mostly in order — so
// insertion scans one or two slots from the tail — and popping the
// minimum just advances the head instead of sliding the whole window
// down (the previous slice version paid a 9-word memmove per miss).
// Only the minimum is ever observed, so the representation cannot change
// any result.
type completionHeap struct {
	buf  []sim.Time // power-of-two capacity
	mask int
	head int // index of the minimum
	n    int
}

func (h *completionHeap) push(t sim.Time) {
	if h.n == len(h.buf) {
		grown := make([]sim.Time, max(16, 2*len(h.buf)))
		for i := 0; i < h.n; i++ {
			grown[i] = h.buf[(h.head+i)&h.mask]
		}
		h.buf, h.mask, h.head = grown, len(grown)-1, 0
	}
	i := h.n
	for i > 0 && h.buf[(h.head+i-1)&h.mask] > t {
		h.buf[(h.head+i)&h.mask] = h.buf[(h.head+i-1)&h.mask]
		i--
	}
	h.buf[(h.head+i)&h.mask] = t
	h.n++
}

func (h *completionHeap) popMin() sim.Time {
	top := h.buf[h.head]
	h.head = (h.head + 1) & h.mask
	h.n--
	return top
}

// coreState is one core's replay cursor. Cores prefer the span-granular
// RunStream interface when the stream provides it: one NextRun call
// yields a whole burst of consecutive lines, which the core then expands
// locally (run/runPos) without any per-access interface dispatch. The
// per-line expansion is exactly trace.ExpandRun's, so the replayed access
// sequence — and with it every cache, MEE, and analyzer state transition —
// is identical to stepping the stream line by line (pinned by the parity
// tests and the golden harness).
type coreState struct {
	id          int
	stream      trace.Stream
	runs        trace.RunStream // non-nil when stream coalesces spans
	run         trace.Run       // current span
	runPos      int             // lines of run already issued
	noSpan      bool            // current run's frontier missed L1: stay per-line until the next run
	nextReady   sim.Time
	outstanding completionHeap
	lastDone    sim.Time
	done        bool
}

// nextAccess yields the core's next line-granular access, pulling a new
// coalesced span when the current one is exhausted.
func (c *coreState) nextAccess() (trace.Access, bool) {
	if c.runs != nil {
		for c.runPos >= c.run.Lines {
			r, ok := c.runs.NextRun()
			if !ok {
				return trace.Access{}, false
			}
			c.run, c.runPos, c.noSpan = r, 0, false
		}
		a := trace.Access{
			Addr:    c.run.Addr + uint64(c.runPos)*c.run.Stride,
			Write:   c.run.Write,
			Compute: c.run.Compute,
		}
		c.runPos++
		return a, true
	}
	return c.stream.Next()
}

// Run replays one stream per core (len(streams) <= Cores) to completion
// and returns the run's timing. State persists into the next Run.
func (s *Sim) Run(streams []trace.Stream) Result {
	if len(streams) > len(s.l1) {
		panic(fmt.Sprintf("cpusim: %d streams exceed %d cores", len(streams), len(s.l1)))
	}
	start := s.now
	s.engine.ResetStats()
	memBefore := s.mem.Stats()

	// A value slice keeps the per-access earliest-core scan on contiguous
	// memory (the scan runs once per replayed access).
	cores := make([]coreState, len(streams))
	for i, st := range streams {
		cores[i] = coreState{id: i, stream: st, nextReady: start}
		if rs, ok := st.(trace.RunStream); ok {
			cores[i].runs = rs
		}
	}

	var accesses uint64
	active := len(cores)
	mlp := s.cfg.CPU.MemLevelPar
	for active > 0 {
		// Pick the core with the earliest ready time (deterministic
		// tie-break on id) — a global time-ordered interleave. Finished
		// cores park their ready time at the sentinel maximum, so the
		// election is a pure min-scan with no flag checks; active > 0
		// guarantees a live core wins.
		c := &cores[0]
		for i := 1; i < len(cores); i++ {
			if cores[i].nextReady < c.nextReady {
				c = &cores[i]
			}
		}

		// Span fast path (single active core): retire the L1-resident
		// prefix of the current run in one batch. Each batched access is
		// provably the exact per-line step: with one active core the
		// earliest-ready election is trivially won, the miss window is
		// below the MLP bound (so no completion pops can delay issue),
		// and every consumed line is an L1 hit (no fills, victims, or
		// MEE traffic) — issue times form an arithmetic series and
		// timing and stats collapse to closed form. With several active
		// cores the election interleaves per access (measured batch
		// length collapses to one line), so the per-line path runs
		// without any probing overhead.
		if active == 1 && c.runs != nil && !c.noSpan &&
			c.outstanding.n < mlp {
			for c.runPos >= c.run.Lines {
				r, ok := c.runs.NextRun()
				if !ok {
					c.done = true
					c.nextReady = ^sim.Time(0) // park: never wins the election
					break
				}
				c.run, c.runPos, c.noSpan = r, 0, false
			}
			if c.done {
				active--
				continue
			}
			m := c.run.Lines - c.runPos
			addr := c.run.Addr + uint64(c.runPos)*c.run.Stride
			if hp := s.l1[c.id].HitPrefix(addr, m, c.run.Stride, c.run.Write); hp > 0 {
				step := c.run.Compute + s.issueGap
				atLast := c.nextReady + c.run.Compute + sim.Dur(hp-1)*step
				if done := atLast + s.l1Lat; done > c.lastDone {
					c.lastDone = done
				}
				c.nextReady = atLast + s.issueGap
				c.runPos += hp
				accesses += uint64(hp)
				continue
			}
			// The run's frontier is not L1-resident: one probe per run is
			// the whole overhead — stay per-line until the next run.
			c.noSpan = true
		}

		// Mid-run expansion inlined: nextAccess's loop keeps it from
		// inlining, and most accesses are the interior of a coalesced
		// span.
		var acc trace.Access
		var ok bool
		if c.runs != nil && c.runPos < c.run.Lines {
			acc = trace.Access{
				Addr:    c.run.Addr + uint64(c.runPos)*c.run.Stride,
				Write:   c.run.Write,
				Compute: c.run.Compute,
			}
			c.runPos++
			ok = true
		} else {
			acc, ok = c.nextAccess()
		}
		if !ok {
			c.done = true
			c.nextReady = ^sim.Time(0) // park: never wins the election
			active--
			continue
		}
		accesses++

		at := c.nextReady + acc.Compute

		// Memory-level parallelism: block issue when the miss window is
		// full until the oldest outstanding miss retires.
		for c.outstanding.n >= mlp {
			oldest := c.outstanding.popMin()
			if oldest > at {
				at = oldest
			}
		}

		done, missed := s.access(at, c.id, acc)
		if missed {
			c.outstanding.push(done)
		}
		if done > c.lastDone {
			c.lastDone = done
		}
		c.nextReady = at + s.issueGap
	}

	end := start
	for _, c := range cores {
		if c.lastDone > end {
			end = c.lastDone
		}
	}
	if bu := s.mem.BusyUntil(); bu > end {
		end = bu
	}
	s.now = end

	memAfter := s.mem.Stats()
	res := Result{
		Makespan:   end - start,
		Accesses:   accesses,
		DRAMReads:  memAfter.Reads - memBefore.Reads,
		DRAMWrites: memAfter.Writes - memBefore.Writes,
		MEE:        s.engine.Stats(),
	}
	if s.analyzer != nil {
		res.Analyzer = s.analyzer.Stats()
	}
	return res
}

// access walks the cache hierarchy and, on miss, the MEE path. Returns the
// completion time of the access and whether it reached DRAM.
func (s *Sim) access(at sim.Time, core int, acc trace.Access) (done sim.Time, missed bool) {
	// Dirty victims collect into a fixed stack array (at most one per
	// cache level): the previous per-access make([]uint64, 0, 2) was the
	// single largest allocation source in the whole simulator, and even
	// the shared scratch slice paid header churn per access.
	var wbs [3]uint64
	nwb := 0

	var hitLevel int
	if r := s.l1[core].Access(acc.Addr, acc.Write); r.Hit {
		hitLevel = 1
	} else {
		if r.HasWriteback {
			wbs[nwb] = r.WritebackAddr
			nwb++
		}
		if r2 := s.l2[core].Access(acc.Addr, false); r2.Hit {
			hitLevel = 2
		} else {
			if r2.HasWriteback {
				wbs[nwb] = r2.WritebackAddr
				nwb++
			}
			if r3 := s.l3.Access(acc.Addr, false); r3.Hit {
				hitLevel = 3
			} else {
				if r3.HasWriteback {
					wbs[nwb] = r3.WritebackAddr
					nwb++
				}
			}
		}
	}

	switch hitLevel {
	case 1:
		done = at + s.l1Lat
	case 2:
		done = at + s.l2Lat
	case 3:
		done = at + s.l3Lat
	default:
		// DRAM fill through the MEE. Writes allocate: the demand fetch is a
		// read; the dirty data leaves later as a writeback.
		done = s.readThroughMEE(at, acc.Addr)
		missed = true
	}

	// Dirty victims retire in the background (posted writes).
	for i := 0; i < nwb; i++ {
		s.writeThroughMEE(at, wbs[i])
	}
	return done, missed
}

func (s *Sim) readThroughMEE(at sim.Time, addr uint64) sim.Time {
	if s.analyzer == nil {
		return s.engine.Read(at, addr).DataReady
	}
	outcome, _ := s.analyzer.Read(addr)
	return s.engine.TensorRead(at, addr, toMEEOutcome(outcome)).DataReady
}

func (s *Sim) writeThroughMEE(at sim.Time, addr uint64) {
	if s.analyzer == nil {
		s.engine.Write(at, addr)
		return
	}
	outcome, _ := s.analyzer.Write(addr)
	s.engine.TensorWrite(at, addr, toMEEOutcome(outcome))
}

func toMEEOutcome(o tenanalyzer.Outcome) mee.TensorOutcome {
	switch o {
	case tenanalyzer.HitIn:
		return mee.THitIn
	case tenanalyzer.HitBoundary:
		return mee.THitBoundary
	default:
		return mee.TMiss
	}
}

// DropCaches invalidates all cache contents (cold-start between unrelated
// phases) without touching the Meta Table.
func (s *Sim) DropCaches() {
	for i := range s.l1 {
		s.l1[i].Reset()
		s.l2[i].Reset()
	}
	s.l3.Reset()
}

// Flush drains every dirty line through the memory controller — the
// write-back an enclave performs on exit, and the quiesce point at which
// the Meta Table may be saved for a context switch (Section 4.2): after
// Flush, all pending write-epoch updates have reached the analyzer and the
// off-chip VN array.
func (s *Sim) Flush() {
	at := s.now
	dirty := make([]uint64, 0, 1024)
	for i := range s.l1 {
		dirty = append(dirty, s.l1[i].DrainDirty()...)
		dirty = append(dirty, s.l2[i].DrainDirty()...)
	}
	dirty = append(dirty, s.l3.DrainDirty()...)

	// Drain in coalesced spans: each cache returns its dirty lines in
	// ascending address order, so streaming workloads yield long
	// consecutive runs. Only adjacent lines within the existing order
	// merge — the write sequence the MEE and DRAM see is unchanged, the
	// span methods just amortize the per-line metadata math over it.
	lineBytes := uint64(s.cfg.CPU.LineBytes)
	for i := 0; i < len(dirty); {
		n := 1
		for i+n < len(dirty) && dirty[i+n] == dirty[i]+uint64(n)*lineBytes {
			n++
		}
		s.writeRunThroughMEE(at, dirty[i], n)
		i += n
	}
	if bu := s.mem.BusyUntil(); bu > s.now {
		s.now = bu
	}
}

// writeRunThroughMEE charges a span of n consecutive dirty-line writes
// issued together at time at. In tensor mode the TenAnalyzer classifies
// the span prefix by prefix (falling back to single lines at epoch
// completions, assert violations, and entry seams); each uniform prefix
// is then charged in one engine call. The analyzer and the engine are
// independent state machines, so classifying a prefix before charging it
// is indistinguishable from interleaving the two per line.
func (s *Sim) writeRunThroughMEE(at sim.Time, addr uint64, n int) {
	if s.analyzer == nil {
		s.engine.WriteRun(at, addr, n)
		return
	}
	lineBytes := uint64(s.cfg.CPU.LineBytes)
	for n > 0 {
		outcome, k := s.analyzer.WriteRun(addr, n)
		s.engine.TensorWriteRun(at, addr, k, toMEEOutcome(outcome))
		addr += uint64(k) * lineBytes
		n -= k
	}
}
