// Package cpusim is the gem5-lite host-CPU timing model: multiple cores
// with private L1/L2 and a shared L3, issuing line-granular access streams
// into a memory controller fronted by the MEE (and, in TensorTEE mode, the
// TenAnalyzer). It reproduces the CPU-side results of the paper: the SGX
// slowdown on the memory-intensive Adam step (Figure 3) and the
// iteration-by-iteration recovery of TensorTEE (Figures 18/19).
//
// Core model: each core issues from its stream with a bounded number of
// outstanding misses (memory-level parallelism). Cache hits cost their
// level's latency; misses pay the full MEE + DRAM path. Writes dirty the
// caches and reach the controller as writebacks, which is exactly the
// filtered write stream the TenAnalyzer observes (Figure 12).
package cpusim

import (
	"container/heap"
	"fmt"

	"tensortee/internal/cache"
	"tensortee/internal/config"
	"tensortee/internal/dram"
	"tensortee/internal/mee"
	"tensortee/internal/sim"
	"tensortee/internal/tenanalyzer"
	"tensortee/internal/trace"
)

// Result summarizes one run.
type Result struct {
	// Makespan is the time from first issue to last completion.
	Makespan sim.Time
	// Accesses is the number of stream operations replayed.
	Accesses uint64
	// DRAMReads / DRAMWrites are line transfers that reached memory.
	DRAMReads, DRAMWrites uint64
	// MEE is the encryption-engine activity.
	MEE mee.Stats
	// Analyzer is the TenAnalyzer activity (zero unless tensor mode).
	Analyzer tenanalyzer.Stats
}

// BytesMoved returns total DRAM traffic in bytes (64 B lines).
func (r Result) BytesMoved() int64 {
	return int64(r.DRAMReads+r.DRAMWrites) * 64
}

// Sim is a reusable CPU simulator instance. Cache and Meta Table state
// persists across Run calls, which is what makes iteration sweeps
// meaningful (Figure 18's hit-rate convergence).
type Sim struct {
	cfg      config.Config
	mode     mee.Mode
	mem      *dram.Memory
	engine   *mee.Engine
	analyzer *tenanalyzer.Analyzer
	store    tenanalyzer.VNStore

	l1, l2 []*cache.Cache
	l3     *cache.Cache

	l1Lat, l2Lat, l3Lat sim.Dur
	issueGap            sim.Dur

	now sim.Time // end of the previous run; runs are back to back
}

// Options configures simulator construction.
type Options struct {
	// Mode selects the protection scheme charged by the MEE.
	Mode mee.Mode
	// DataLines sizes the protected region's metadata layout.
	DataLines int
	// Store is the off-chip VN array for tensor mode; when nil a dense
	// array store over [0, DataLines*64) is created.
	Store tenanalyzer.VNStore
	// Analyzer supplies a pre-built TenAnalyzer (tensor mode); when nil
	// and Mode == ModeTensor, one with the paper's sizing is created.
	Analyzer *tenanalyzer.Analyzer
}

// New builds a simulator from the Table-1 configuration.
func New(cfg config.Config, opts Options) *Sim {
	if opts.DataLines <= 0 {
		opts.DataLines = 1 << 22 // 256 MB default protected span
	}
	mem := dram.New(dram.DDR4_2400(), cfg.HostDRAM.Channels)
	layout := mee.NewLayout(0, opts.DataLines, cfg.CPU.LineBytes, cfg.Protection.MerkleArity)
	s := &Sim{
		cfg:      cfg,
		mode:     opts.Mode,
		mem:      mem,
		engine:   mee.NewEngine(opts.Mode, &cfg, mem, layout),
		l3:       cache.New("l3", cfg.CPU.L3SizeBytes, cfg.CPU.L3Ways, cfg.CPU.LineBytes),
		l1Lat:    sim.Cycles(float64(cfg.CPU.L1LatCycles), cfg.CPU.FreqHz),
		l2Lat:    sim.Cycles(float64(cfg.CPU.L2LatCycles), cfg.CPU.FreqHz),
		l3Lat:    sim.Cycles(float64(cfg.CPU.L3LatCycles), cfg.CPU.FreqHz),
		issueGap: sim.Cycles(1, cfg.CPU.FreqHz),
	}
	for i := 0; i < cfg.CPU.Cores; i++ {
		s.l1 = append(s.l1, cache.New(fmt.Sprintf("l1-%d", i), cfg.CPU.L1SizeBytes, cfg.CPU.L1Ways, cfg.CPU.LineBytes))
		s.l2 = append(s.l2, cache.New(fmt.Sprintf("l2-%d", i), cfg.CPU.L2SizeBytes, cfg.CPU.L2Ways, cfg.CPU.LineBytes))
	}
	if opts.Mode == mee.ModeTensor {
		s.store = opts.Store
		if s.store == nil {
			s.store = tenanalyzer.NewArrayVNStore(0, opts.DataLines*cfg.CPU.LineBytes, cfg.CPU.LineBytes)
		}
		s.analyzer = opts.Analyzer
		if s.analyzer == nil {
			ac := tenanalyzer.DefaultConfig()
			ac.Entries = cfg.Protection.MetaTableSize
			ac.FilterEntries = cfg.Protection.FilterEntries
			ac.FilterDepth = cfg.Protection.FilterDepth
			ac.LineBytes = cfg.CPU.LineBytes
			s.analyzer = tenanalyzer.New(ac, s.store)
		}
	}
	return s
}

// Analyzer exposes the TenAnalyzer (nil unless tensor mode).
func (s *Sim) Analyzer() *tenanalyzer.Analyzer { return s.analyzer }

// Engine exposes the MEE for stats inspection.
func (s *Sim) Engine() *mee.Engine { return s.engine }

// completionHeap orders outstanding miss completions.
type completionHeap []sim.Time

func (h completionHeap) Len() int           { return len(h) }
func (h completionHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h completionHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x any)        { *h = append(*h, x.(sim.Time)) }
func (h *completionHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// coreState is one core's replay cursor.
type coreState struct {
	id          int
	stream      trace.Stream
	nextReady   sim.Time
	outstanding completionHeap
	lastDone    sim.Time
	done        bool
}

// Run replays one stream per core (len(streams) <= Cores) to completion
// and returns the run's timing. State persists into the next Run.
func (s *Sim) Run(streams []trace.Stream) Result {
	if len(streams) > len(s.l1) {
		panic(fmt.Sprintf("cpusim: %d streams exceed %d cores", len(streams), len(s.l1)))
	}
	start := s.now
	s.engine.ResetStats()
	memBefore := s.mem.Stats()

	cores := make([]*coreState, len(streams))
	for i, st := range streams {
		cores[i] = &coreState{id: i, stream: st, nextReady: start}
	}

	var accesses uint64
	active := len(cores)
	for active > 0 {
		// Pick the core with the earliest ready time (deterministic
		// tie-break on id) — a global time-ordered interleave.
		var c *coreState
		for _, cand := range cores {
			if cand.done {
				continue
			}
			if c == nil || cand.nextReady < c.nextReady {
				c = cand
			}
		}
		acc, ok := c.stream.Next()
		if !ok {
			c.done = true
			active--
			continue
		}
		accesses++

		at := c.nextReady + acc.Compute

		// Memory-level parallelism: block issue when the miss window is
		// full until the oldest outstanding miss retires.
		mlp := s.cfg.CPU.MemLevelPar
		for len(c.outstanding) >= mlp {
			oldest := heap.Pop(&c.outstanding).(sim.Time)
			if oldest > at {
				at = oldest
			}
		}

		done, missed := s.access(at, c.id, acc)
		if missed {
			heap.Push(&c.outstanding, done)
		}
		if done > c.lastDone {
			c.lastDone = done
		}
		c.nextReady = at + s.issueGap
	}

	end := start
	for _, c := range cores {
		if c.lastDone > end {
			end = c.lastDone
		}
	}
	if bu := s.mem.BusyUntil(); bu > end {
		end = bu
	}
	s.now = end

	memAfter := s.mem.Stats()
	res := Result{
		Makespan:   end - start,
		Accesses:   accesses,
		DRAMReads:  memAfter.Reads - memBefore.Reads,
		DRAMWrites: memAfter.Writes - memBefore.Writes,
		MEE:        s.engine.Stats(),
	}
	if s.analyzer != nil {
		res.Analyzer = s.analyzer.Stats()
	}
	return res
}

// access walks the cache hierarchy and, on miss, the MEE path. Returns the
// completion time of the access and whether it reached DRAM.
func (s *Sim) access(at sim.Time, core int, acc trace.Access) (done sim.Time, missed bool) {
	wbs := make([]uint64, 0, 2)
	record := func(r cache.Result) {
		if r.HasWriteback {
			wbs = append(wbs, r.WritebackAddr)
		}
	}

	var hitLevel int
	if r := s.l1[core].Access(acc.Addr, acc.Write); r.Hit {
		hitLevel = 1
	} else {
		record(r)
		if r2 := s.l2[core].Access(acc.Addr, false); r2.Hit {
			hitLevel = 2
		} else {
			record(r2)
			if r3 := s.l3.Access(acc.Addr, false); r3.Hit {
				hitLevel = 3
			} else {
				record(r3)
			}
		}
	}

	switch hitLevel {
	case 1:
		done = at + s.l1Lat
	case 2:
		done = at + s.l2Lat
	case 3:
		done = at + s.l3Lat
	default:
		// DRAM fill through the MEE. Writes allocate: the demand fetch is a
		// read; the dirty data leaves later as a writeback.
		done = s.readThroughMEE(at, acc.Addr)
		missed = true
	}

	// Dirty victims retire in the background (posted writes).
	for _, wb := range wbs {
		s.writeThroughMEE(at, wb)
	}
	return done, missed
}

func (s *Sim) readThroughMEE(at sim.Time, addr uint64) sim.Time {
	if s.analyzer == nil {
		return s.engine.Read(at, addr).DataReady
	}
	outcome, _ := s.analyzer.Read(addr)
	return s.engine.TensorRead(at, addr, toMEEOutcome(outcome)).DataReady
}

func (s *Sim) writeThroughMEE(at sim.Time, addr uint64) {
	if s.analyzer == nil {
		s.engine.Write(at, addr)
		return
	}
	outcome, _ := s.analyzer.Write(addr)
	s.engine.TensorWrite(at, addr, toMEEOutcome(outcome))
}

func toMEEOutcome(o tenanalyzer.Outcome) mee.TensorOutcome {
	switch o {
	case tenanalyzer.HitIn:
		return mee.THitIn
	case tenanalyzer.HitBoundary:
		return mee.THitBoundary
	default:
		return mee.TMiss
	}
}

// DropCaches invalidates all cache contents (cold-start between unrelated
// phases) without touching the Meta Table.
func (s *Sim) DropCaches() {
	for i := range s.l1 {
		s.l1[i].Reset()
		s.l2[i].Reset()
	}
	s.l3.Reset()
}

// Flush drains every dirty line through the memory controller — the
// write-back an enclave performs on exit, and the quiesce point at which
// the Meta Table may be saved for a context switch (Section 4.2): after
// Flush, all pending write-epoch updates have reached the analyzer and the
// off-chip VN array.
func (s *Sim) Flush() {
	at := s.now
	dirty := make([]uint64, 0, 1024)
	for i := range s.l1 {
		dirty = append(dirty, s.l1[i].DrainDirty()...)
		dirty = append(dirty, s.l2[i].DrainDirty()...)
	}
	dirty = append(dirty, s.l3.DrainDirty()...)
	for _, addr := range dirty {
		s.writeThroughMEE(at, addr)
	}
	if bu := s.mem.BusyUntil(); bu > s.now {
		s.now = bu
	}
}
