package cpusim

import (
	"testing"

	"tensortee/internal/config"
	"tensortee/internal/mee"
	"tensortee/internal/sim"
	"tensortee/internal/tensor"
	"tensortee/internal/trace"
)

// benchAdam replays steady-state Adam iterations — the inner loop of
// every heavy CPU experiment — so fast-path changes can be measured in
// isolation (ns and allocs per replayed access).
func benchAdam(b *testing.B, mode mee.Mode, threads int) {
	cfg := config.Default(config.BaselineSGXMGX)
	arena := tensor.NewArena(0, 64)
	quads := []trace.AdamTensors{trace.NewAdamTensors(arena, "p0", 1<<19)}
	lines := int(arena.Next()/64) + 64
	s := New(cfg, Options{Mode: mode, DataLines: lines})
	mk := func() []trace.Stream {
		return trace.AdamStreams(quads, trace.AdamConfig{
			LineBytes:      64,
			ComputePerLine: sim.Cycles(40, cfg.CPU.FreqHz),
			Cores:          threads,
		})
	}
	r := s.Run(mk()) // warm caches and Meta Table
	accesses := int64(r.Accesses)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(mk())
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(accesses*int64(b.N)), "ns/access")
}

func BenchmarkAdamIterationOff(b *testing.B)    { benchAdam(b, mee.ModeOff, 8) }
func BenchmarkAdamIterationSGX(b *testing.B)    { benchAdam(b, mee.ModeSGX, 8) }
func BenchmarkAdamIterationTensor(b *testing.B) { benchAdam(b, mee.ModeTensor, 8) }
