package cpusim

import (
	"testing"

	"tensortee/internal/config"
	"tensortee/internal/mee"
	"tensortee/internal/sim"
	"tensortee/internal/tensor"
	"tensortee/internal/trace"
)

// runAdam builds a fresh simulator in the given mode and runs `iters` Adam
// iterations of `elems` fp32 elements across `threads` cores, returning the
// last iteration's makespan.
func runAdam(t testing.TB, mode mee.Mode, threads, elems, iters int) sim.Dur {
	t.Helper()
	cfg := config.Default(config.BaselineSGXMGX)
	arena := tensor.NewArena(0, 64)
	quads := []trace.AdamTensors{trace.NewAdamTensors(arena, "p0", elems)}
	lines := int(arena.Next() / 64)

	s := New(cfg, Options{Mode: mode, DataLines: lines + 64})
	var last sim.Dur
	var r Result
	for it := 0; it < iters; it++ {
		streams := trace.AdamStreams(quads, trace.AdamConfig{
			LineBytes:      64,
			ComputePerLine: sim.Cycles(40, cfg.CPU.FreqHz),
			Cores:          threads,
		})
		r = s.Run(streams)
		last = r.Makespan
	}
	ds := s.mem.Stats()
	t.Logf("    mode=%v threads=%d rowhit=%.2f dramRd=%d dramWr=%d bw=%.1fGB/s",
		mode, threads, ds.RowHitRate(), r.DRAMReads, r.DRAMWrites,
		float64(r.BytesMoved())/last.Seconds()/1e9)
	if s.analyzer != nil {
		t.Logf("    analyzer=%+v live=%d", s.analyzer.Stats(), s.analyzer.LiveEntries())
	}
	return last
}

// TestCalibrationPrint reports the slowdown landscape; assertions are loose
// shape checks (the tight shape targets live in internal/experiments).
func TestCalibrationPrint(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep")
	}
	const elems = 1 << 21 // 2M elements: 32 MB live data, well past the 9 MB L3
	for _, threads := range []int{1, 2, 4, 8} {
		ns := runAdam(t, mee.ModeOff, threads, elems, 1)
		sgx := runAdam(t, mee.ModeSGX, threads, elems, 1)
		tt1 := runAdam(t, mee.ModeTensor, threads, elems, 1)
		tt5 := runAdam(t, mee.ModeTensor, threads, elems, 5)
		t.Logf("threads=%d  nonsec=%.3fms  sgx=%.2fx  tensor@1=%.2fx  tensor@5=%.2fx",
			threads, ns.Millis(),
			float64(sgx)/float64(ns), float64(tt1)/float64(ns), float64(tt5)/float64(ns))
	}
}
