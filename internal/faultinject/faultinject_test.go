package faultinject

import (
	"errors"
	"sync"
	"syscall"
	"testing"
	"time"
)

func mustParse(t *testing.T, plan string) *Injector {
	t.Helper()
	inj, err := Parse(plan)
	if err != nil {
		t.Fatalf("Parse(%q): %v", plan, err)
	}
	if inj == nil {
		t.Fatalf("Parse(%q) = nil injector", plan)
	}
	return inj
}

func TestEmptyPlanIsNil(t *testing.T) {
	for _, plan := range []string{"", "  ", ";;", " ; ; "} {
		inj, err := Parse(plan)
		if err != nil || inj != nil {
			t.Errorf("Parse(%q) = %v, %v; want nil, nil", plan, inj, err)
		}
	}
}

func TestParseRejectsBadPlans(t *testing.T) {
	for _, plan := range []string{
		"write",                  // no schedule
		"write:fail",             // no @argument
		"write:fail@x",           // bad count
		"write:fail@0",           // fail@0 is meaningless (1-based)
		"chmod:fail@1",           // unknown op
		"write:explode@1",        // unknown schedule
		"write:fail@1:ebadf",     // unknown errno
		"read:torn@1",            // torn is write-only
		"peer:flaky@1.5",         // probability out of range
		"peer:flaky@0",           // probability out of range
		"peer:latency@-5ms",      // negative latency
		"seed@nope",              // bad seed
		"write:fail@1:eio:extra", // too many fields
		"write:fail-every@0",     // modulo zero
	} {
		if inj, err := Parse(plan); err == nil {
			t.Errorf("Parse(%q) accepted: %v", plan, inj)
		}
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	if inj.Enabled() {
		t.Error("nil injector claims enabled")
	}
	if f := inj.Check(OpWrite); f.Err != nil || f.Torn {
		t.Errorf("nil Check = %+v", f)
	}
	if inj.Calls(OpWrite) != 0 || inj.Injected(OpWrite) != 0 {
		t.Error("nil injector counts")
	}
	if inj.String() != "" {
		t.Errorf("nil String = %q", inj.String())
	}
}

func TestFailNth(t *testing.T) {
	inj := mustParse(t, "write:fail@3")
	for i := 1; i <= 5; i++ {
		f := inj.Check(OpWrite)
		if (i == 3) != (f.Err != nil) {
			t.Errorf("write %d: err = %v", i, f.Err)
		}
	}
	if got := inj.Injected(OpWrite); got != 1 {
		t.Errorf("injected = %d, want 1", got)
	}
	// Other ops are untouched.
	if f := inj.Check(OpRead); f.Err != nil {
		t.Errorf("read faulted under a write-only plan: %v", f.Err)
	}
}

func TestFailAfterAndFailAll(t *testing.T) {
	inj := mustParse(t, "write:fail-after@2")
	for i := 1; i <= 6; i++ {
		f := inj.Check(OpWrite)
		if (i > 2) != (f.Err != nil) {
			t.Errorf("write %d: err = %v", i, f.Err)
		}
	}
	all := mustParse(t, "write:fail-all")
	for i := 1; i <= 3; i++ {
		if f := all.Check(OpWrite); f.Err == nil {
			t.Errorf("fail-all write %d succeeded", i)
		}
	}
}

func TestFailUntilRecovers(t *testing.T) {
	inj := mustParse(t, "write:fail-until@4")
	for i := 1; i <= 8; i++ {
		f := inj.Check(OpWrite)
		if (i <= 4) != (f.Err != nil) {
			t.Errorf("write %d: err = %v", i, f.Err)
		}
	}
}

func TestFailEvery(t *testing.T) {
	inj := mustParse(t, "read:fail-every@3")
	for i := 1; i <= 9; i++ {
		f := inj.Check(OpRead)
		if (i%3 == 0) != (f.Err != nil) {
			t.Errorf("read %d: err = %v", i, f.Err)
		}
	}
}

func TestMultipleRulesShareOneCounter(t *testing.T) {
	inj := mustParse(t, "write:fail@2;write:fail@5")
	var failed []int
	for i := 1; i <= 6; i++ {
		if f := inj.Check(OpWrite); f.Err != nil {
			failed = append(failed, i)
		}
	}
	if len(failed) != 2 || failed[0] != 2 || failed[1] != 5 {
		t.Errorf("failed invocations = %v, want [2 5]", failed)
	}
}

func TestTornMarksWrite(t *testing.T) {
	inj := mustParse(t, "write:torn@2")
	if f := inj.Check(OpWrite); f.Err != nil {
		t.Errorf("write 1 faulted: %v", f.Err)
	}
	f := inj.Check(OpWrite)
	if f.Err == nil || !f.Torn {
		t.Errorf("write 2 = %+v, want torn failure", f)
	}
	if f := inj.Check(OpWrite); f.Err != nil || f.Torn {
		t.Errorf("write 3 = %+v, want clean", f)
	}
}

func TestErrnoClassification(t *testing.T) {
	inj := mustParse(t, "write:fail@1:enospc;read:fail@1;peer:fail@1:etimedout")
	w := inj.Check(OpWrite).Err
	if !errors.Is(w, ErrInjected) || !errors.Is(w, syscall.ENOSPC) {
		t.Errorf("write err %v does not match ErrInjected+ENOSPC", w)
	}
	r := inj.Check(OpRead).Err
	if !errors.Is(r, ErrInjected) || !errors.Is(r, syscall.EIO) {
		t.Errorf("read err %v does not match ErrInjected+EIO (the default)", r)
	}
	p := inj.Check(OpPeer).Err
	if !errors.Is(p, ErrInjected) || !errors.Is(p, syscall.ETIMEDOUT) {
		t.Errorf("peer err %v does not match ErrInjected+ETIMEDOUT", p)
	}
}

func TestLatencyInjectsDelay(t *testing.T) {
	inj := mustParse(t, "peer:latency@30ms")
	start := time.Now()
	if f := inj.Check(OpPeer); f.Err != nil {
		t.Errorf("latency rule failed the op: %v", f.Err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("Check returned after %v, want >= 30ms", elapsed)
	}
}

func TestFlakyIsDeterministicPerSeed(t *testing.T) {
	decisions := func(plan string) []bool {
		inj := mustParse(t, plan)
		out := make([]bool, 64)
		for i := range out {
			out[i] = inj.Check(OpPeer).Err != nil
		}
		return out
	}
	a := decisions("peer:flaky@0.5;seed@7")
	b := decisions("peer:flaky@0.5;seed@7")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same plan+seed diverged at call %d", i)
		}
	}
	c := decisions("peer:flaky@0.5;seed@8")
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("64 draws identical across different seeds; flaky is not seeded")
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv(EnvVar, "")
	if inj, err := FromEnv(); inj != nil || err != nil {
		t.Errorf("empty env = %v, %v", inj, err)
	}
	t.Setenv(EnvVar, "write:fail@1")
	inj, err := FromEnv()
	if err != nil || !inj.Enabled() {
		t.Fatalf("FromEnv = %v, %v", inj, err)
	}
	if inj.String() != "write:fail@1" {
		t.Errorf("String = %q", inj.String())
	}
	t.Setenv(EnvVar, "write:oops")
	if _, err := FromEnv(); err == nil {
		t.Error("malformed env plan accepted")
	}
}

func TestConcurrentChecksCountExactly(t *testing.T) {
	inj := mustParse(t, "write:fail-every@2")
	const workers, per = 8, 250
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				inj.Check(OpWrite)
			}
		}()
	}
	wg.Wait()
	total := int64(workers * per)
	if got := inj.Calls(OpWrite); got != total {
		t.Errorf("calls = %d, want %d", got, total)
	}
	// Every even-numbered invocation fails; with an exact atomic counter
	// the injected total is exactly half.
	if got := inj.Injected(OpWrite); got != total/2 {
		t.Errorf("injected = %d, want %d", got, total/2)
	}
}
