// Package faultinject is tensortee's deterministic fault plan: a small,
// seedable schedule language for making the store's filesystem
// operations and the peer HTTP client fail on purpose. The corruption
// matrix covers bytes at rest; this package covers I/O that fails
// midway — disk-full on the Nth write, an fsync that lies, a rename
// that never lands, a peer that hangs — so the graceful-degradation
// paths (store read-only mode, peer breakers, campaign durability) are
// a pinned, replayable contract instead of folklore.
//
// A plan is a semicolon-separated list of rules, each binding one
// operation to one schedule:
//
//	write:fail@3                fail the 3rd write (1-based), succeed otherwise
//	write:fail-after@2:enospc   writes 1-2 succeed, everything later fails ENOSPC
//	write:fail-until@4          the first 4 writes fail, later ones succeed
//	read:fail-every@3           every 3rd read fails
//	write:fail-all              alias for fail-after@0
//	write:torn@1                the 1st write lands truncated bytes AND fails
//	peer:flaky@0.25             each probe fails with probability 0.25 (seeded)
//	peer:latency@150ms          sleep 150ms before every probe
//	seed@42                     seed for flaky draws (default 1)
//
// Operations: write (temp-file payload write), fsync (temp-file sync),
// rename (rename into place), read (entry read), peer (peer HTTP
// probe). Fail schedules accept an optional errno suffix (enospc, eio,
// etimedout; default eio); injected errors match both ErrInjected and
// the errno via errors.Is. Multiple rules may target one operation;
// invocation counters are shared per operation, so "write:fail@2 and
// write:fail@5" fail exactly the 2nd and 5th write.
//
// Determinism: given the same plan (and seed, for flaky rules) and the
// same per-operation call sequence, the injected faults are identical
// run to run — which is what lets a chaos CI job pin "under this
// schedule, the daemon behaves exactly so".
//
// A nil *Injector is the production default and is inert: every hook
// is a nil-receiver check that injects nothing, so threading the hooks
// through the hot path costs one predictable branch when disabled.
package faultinject

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// EnvVar names the environment hook: when set (and the process wires
// FromEnv through), the plan it holds is injected into every store the
// process opens. It is a chaos-testing switch, never a production
// setting — processes honoring it print a loud warning.
const EnvVar = "TENSORTEE_FAULTS"

// Op names one instrumented operation class.
type Op string

const (
	// OpWrite is the store's temp-file payload write.
	OpWrite Op = "write"
	// OpSync is the temp-file fsync before rename.
	OpSync Op = "fsync"
	// OpRename is the atomic rename into place.
	OpRename Op = "rename"
	// OpRead is an entry read (Get / ReadRaw).
	OpRead Op = "read"
	// OpPeer is a peer HTTP probe.
	OpPeer Op = "peer"
)

// Ops lists the valid operations (Parse rejects anything else).
func Ops() []Op { return []Op{OpWrite, OpSync, OpRename, OpRead, OpPeer} }

func validOp(op Op) bool {
	switch op {
	case OpWrite, OpSync, OpRename, OpRead, OpPeer:
		return true
	}
	return false
}

// ErrInjected marks every injected error; errors.Is(err, ErrInjected)
// distinguishes deliberate faults from the real thing in tests and logs.
var ErrInjected = fmt.Errorf("faultinject: injected fault")

// injectedError carries the fault identity plus a concrete errno, so a
// consumer classifying by syscall.ENOSPC/EIO sees exactly what a real
// failing disk would show it.
type injectedError struct {
	op    Op
	errno error
}

func (e *injectedError) Error() string {
	return fmt.Sprintf("faultinject: injected %v on %s", e.errno, e.op)
}

func (e *injectedError) Unwrap() []error { return []error{ErrInjected, e.errno} }

// Fault is one injection decision. The zero value means "proceed
// normally".
type Fault struct {
	// Err, when non-nil, is the error the operation must fail with.
	Err error
	// Torn directs a write to land a truncated entry at the final path
	// before failing — the shape a lying disk plus a crash leaves behind,
	// which atomic rename alone cannot produce.
	Torn bool
}

// kind enumerates schedule kinds.
type kind int

const (
	kindFailNth kind = iota
	kindFailAfter
	kindFailUntil
	kindFailEvery
	kindTorn
	kindFlaky
	kindLatency
)

// rule is one parsed schedule bound to an op.
type rule struct {
	op    Op
	kind  kind
	n     int64
	p     float64
	d     time.Duration
	errno error

	// rng backs flaky draws; per-rule so interleaving rules (or ops)
	// cannot perturb each other's deterministic sequences.
	mu  sync.Mutex
	rng *rand.Rand
}

// matches reports whether the rule fires on the i-th invocation
// (1-based) of its op.
func (r *rule) matches(i int64) bool {
	switch r.kind {
	case kindFailNth, kindTorn:
		return i == r.n
	case kindFailAfter:
		return i > r.n
	case kindFailUntil:
		return i <= r.n
	case kindFailEvery:
		return i%r.n == 0
	case kindFlaky:
		r.mu.Lock()
		hit := r.rng.Float64() < r.p
		r.mu.Unlock()
		return hit
	}
	return false
}

// opState is one operation's shared invocation and injection counters.
type opState struct {
	calls    atomic.Int64
	injected atomic.Int64
}

// Injector evaluates a parsed plan. All methods are safe for concurrent
// use and safe on a nil receiver (a nil Injector injects nothing).
type Injector struct {
	src   string
	rules []*rule
	state map[Op]*opState
}

// Parse compiles a plan string. An empty plan (or one that is all
// whitespace) yields a nil Injector — the inert default.
func Parse(plan string) (*Injector, error) {
	var (
		rules []*rule
		seed  int64 = 1
	)
	fields := strings.Split(plan, ";")
	var kept []string
	for _, f := range fields {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(f, "seed@"); ok {
			n, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad seed %q", rest)
			}
			seed = n
			kept = append(kept, f)
			continue
		}
		r, err := parseRule(f)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
		kept = append(kept, f)
	}
	if len(rules) == 0 {
		return nil, nil
	}
	inj := &Injector{
		src:   strings.Join(kept, ";"),
		rules: rules,
		state: make(map[Op]*opState, len(Ops())),
	}
	for _, op := range Ops() {
		inj.state[op] = &opState{}
	}
	for i, r := range rules {
		if r.kind == kindFlaky {
			// Seed each flaky rule independently (offset by position) so
			// its draw sequence depends only on the plan, not on how other
			// rules' ops interleave at runtime.
			r.rng = rand.New(rand.NewSource(seed + int64(i)*1_000_003)) //nolint:gosec // deterministic test schedule, not crypto
		}
	}
	return inj, nil
}

// parseRule compiles one "op:schedule[:errno]" rule.
func parseRule(s string) (*rule, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return nil, fmt.Errorf("faultinject: rule %q is not op:schedule[:errno]", s)
	}
	op := Op(strings.TrimSpace(parts[0]))
	if !validOp(op) {
		return nil, fmt.Errorf("faultinject: unknown op %q (want one of %v)", parts[0], Ops())
	}
	r := &rule{op: op, errno: syscall.EIO}
	if len(parts) == 3 {
		switch strings.TrimSpace(parts[2]) {
		case "enospc":
			r.errno = syscall.ENOSPC
		case "eio":
			r.errno = syscall.EIO
		case "etimedout":
			r.errno = syscall.ETIMEDOUT
		default:
			return nil, fmt.Errorf("faultinject: unknown errno %q (want enospc, eio or etimedout)", parts[2])
		}
	}
	sched := strings.TrimSpace(parts[1])
	if sched == "fail-all" {
		r.kind, r.n = kindFailAfter, 0
		return r, nil
	}
	name, arg, ok := strings.Cut(sched, "@")
	if !ok {
		return nil, fmt.Errorf("faultinject: schedule %q has no @argument", sched)
	}
	switch name {
	case "fail":
		r.kind = kindFailNth
	case "fail-after":
		r.kind = kindFailAfter
	case "fail-until":
		r.kind = kindFailUntil
	case "fail-every":
		r.kind = kindFailEvery
	case "torn":
		if op != OpWrite {
			return nil, fmt.Errorf("faultinject: torn applies only to write, not %s", op)
		}
		r.kind = kindTorn
	case "flaky":
		r.kind = kindFlaky
	case "latency":
		r.kind = kindLatency
	default:
		return nil, fmt.Errorf("faultinject: unknown schedule %q", name)
	}
	switch r.kind {
	case kindFlaky:
		p, err := strconv.ParseFloat(arg, 64)
		if err != nil || p <= 0 || p > 1 {
			return nil, fmt.Errorf("faultinject: flaky probability %q not in (0,1]", arg)
		}
		r.p = p
	case kindLatency:
		d, err := time.ParseDuration(arg)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("faultinject: bad latency %q", arg)
		}
		r.d = d
	default:
		n, err := strconv.ParseInt(arg, 10, 64)
		if err != nil || n < 0 || (n == 0 && r.kind != kindFailAfter) {
			return nil, fmt.Errorf("faultinject: bad count %q for %s", arg, name)
		}
		r.n = n
	}
	return r, nil
}

// FromEnv parses the plan in $TENSORTEE_FAULTS. Unset (or empty)
// returns (nil, nil) — the inert default; a malformed plan is an error
// so a chaos job with a typo fails loudly instead of running clean.
func FromEnv() (*Injector, error) {
	s := os.Getenv(EnvVar)
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	inj, err := Parse(s)
	if err != nil {
		return nil, err
	}
	return inj, nil
}

// String returns the normalized plan (empty for a nil Injector).
func (i *Injector) String() string {
	if i == nil {
		return ""
	}
	return i.src
}

// Enabled reports whether any rules are loaded. False on nil.
func (i *Injector) Enabled() bool { return i != nil && len(i.rules) > 0 }

// Check records one invocation of op and returns the fault to inject,
// if any. Latency rules sleep here, before the decision is returned.
// Safe on a nil receiver, where it is a single branch.
func (i *Injector) Check(op Op) Fault {
	if i == nil {
		return Fault{}
	}
	st, ok := i.state[op]
	if !ok {
		return Fault{}
	}
	n := st.calls.Add(1)
	var f Fault
	var sleep time.Duration
	for _, r := range i.rules {
		if r.op != op {
			continue
		}
		if r.kind == kindLatency {
			sleep += r.d
			continue
		}
		if f.Err == nil && r.matches(n) {
			f.Err = &injectedError{op: op, errno: r.errno}
			f.Torn = r.kind == kindTorn
		}
	}
	if sleep > 0 {
		time.Sleep(sleep)
	}
	if f.Err != nil {
		st.injected.Add(1)
	}
	return f
}

// Calls returns how many times op has been checked. 0 on nil.
func (i *Injector) Calls(op Op) int64 {
	if i == nil {
		return 0
	}
	if st, ok := i.state[op]; ok {
		return st.calls.Load()
	}
	return 0
}

// Injected returns how many faults have been injected on op. 0 on nil.
func (i *Injector) Injected(op Op) int64 {
	if i == nil {
		return 0
	}
	if st, ok := i.state[op]; ok {
		return st.injected.Load()
	}
	return 0
}
