package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tensortee"
)

// newTestServer builds a Server over a fresh Runner and mounts it on an
// httptest.Server. Tests use the fast experiments (tab1/tab2/fig4/fig20/
// gemm/hw) so nothing here calibrates an end-to-end system.
func newTestServer(t *testing.T, maxConcurrent int) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{Runner: tensortee.NewRunner(), MaxConcurrent: maxConcurrent})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string, hdr map[string]string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, 0)
	resp, body := get(t, ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Errorf("healthz = %d %q", resp.StatusCode, body)
	}
}

func TestIndexListsAllExperimentsWithMetadata(t *testing.T) {
	_, ts := newTestServer(t, 0)
	resp, body := get(t, ts.URL+"/v1/experiments", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var idx struct {
		Count       int `json:"count"`
		Experiments []struct {
			ID       string `json:"id"`
			Artifact string `json:"artifact"`
			About    string `json:"about"`
			URL      string `json:"url"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal([]byte(body), &idx); err != nil {
		t.Fatal(err)
	}
	want := tensortee.Experiments()
	if idx.Count != len(want) || len(idx.Experiments) != len(want) {
		t.Fatalf("count = %d/%d, want %d", idx.Count, len(idx.Experiments), len(want))
	}
	for i, e := range idx.Experiments {
		if e.ID != want[i].ID || e.Artifact != want[i].Artifact || e.About != want[i].About {
			t.Errorf("index[%d] = %+v, want %+v", i, e, want[i])
		}
		if e.URL != "/v1/experiments/"+e.ID {
			t.Errorf("index[%d].URL = %q", i, e.URL)
		}
	}
}

func TestContentNegotiation(t *testing.T) {
	_, ts := newTestServer(t, 0)
	cases := []struct {
		name     string
		url      string
		accept   string
		wantCT   string
		wantFrag string
	}{
		{"default is JSON", "/v1/experiments/tab2", "", "application/json", `"id": "tab2"`},
		{"format=text", "/v1/experiments/tab2?format=text", "", "text/plain; charset=utf-8", "=== tab2:"},
		{"format=json", "/v1/experiments/tab2?format=json", "", "application/json", `"id": "tab2"`},
		{"format=csv", "/v1/experiments/tab2?format=csv", "", "text/csv; charset=utf-8", "table,"},
		{"accept text/plain", "/v1/experiments/tab2", "text/plain", "text/plain; charset=utf-8", "=== tab2:"},
		{"accept text/csv", "/v1/experiments/tab2", "text/csv", "text/csv; charset=utf-8", "table,"},
		{"accept json", "/v1/experiments/tab2", "application/json", "application/json", `"id": "tab2"`},
		{"accept wildcard", "/v1/experiments/tab2", "*/*", "application/json", `"id": "tab2"`},
		{"format beats accept", "/v1/experiments/tab2?format=csv", "application/json", "text/csv; charset=utf-8", "table,"},
		{"accept with params", "/v1/experiments/tab2", "text/plain; q=0.9, application/json; q=0.1", "text/plain; charset=utf-8", "=== tab2:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hdr := map[string]string{}
			if tc.accept != "" {
				hdr["Accept"] = tc.accept
			}
			resp, body := get(t, ts.URL+tc.url, hdr)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status = %d (%s)", resp.StatusCode, body)
			}
			if ct := resp.Header.Get("Content-Type"); ct != tc.wantCT {
				t.Errorf("Content-Type = %q, want %q", ct, tc.wantCT)
			}
			if !strings.Contains(body, tc.wantFrag) {
				t.Errorf("body missing %q:\n%.200s", tc.wantFrag, body)
			}
			if vary := resp.Header.Get("Vary"); vary != "Accept, Accept-Encoding" {
				t.Errorf("Vary = %q, want %q", vary, "Accept, Accept-Encoding")
			}
		})
	}
}

// TestVaryAcceptOnAllNegotiatedResponses pins the cache-correctness
// header on every negotiated endpoint, including 304 revalidations and
// the /all aggregate: the same URL serves different representations per
// Accept, so an intermediary cache must key on it — a strong ETag alone
// does not stop a fresh cached JSON body from answering a CSV request.
func TestVaryAcceptOnAllNegotiatedResponses(t *testing.T) {
	_, ts := newTestServer(t, 0)
	for _, url := range []string{"/v1/experiments/tab2", "/v1/experiments/all"} {
		resp, _ := get(t, ts.URL+url, nil)
		if vary := resp.Header.Get("Vary"); vary != "Accept, Accept-Encoding" {
			t.Errorf("%s: Vary = %q, want %q", url, vary, "Accept, Accept-Encoding")
		}
		etag := resp.Header.Get("ETag")
		resp304, _ := get(t, ts.URL+url, map[string]string{"If-None-Match": etag})
		if resp304.StatusCode != http.StatusNotModified {
			t.Fatalf("%s: revalidation status = %d", url, resp304.StatusCode)
		}
		if vary := resp304.Header.Get("Vary"); vary != "Accept, Accept-Encoding" {
			t.Errorf("%s: 304 Vary = %q, want %q", url, vary, "Accept, Accept-Encoding")
		}
	}
}

// TestServedJSONIsRestartStable pins that the JSON body carries no
// wall-clock time: the strong ETag excludes Elapsed, so the body must be
// byte-identical across daemon restarts too (a 304 must never validate a
// body the origin would no longer send).
func TestServedJSONIsRestartStable(t *testing.T) {
	_, ts := newTestServer(t, 0)
	_, body := get(t, ts.URL+"/v1/experiments/tab1?format=json", nil)
	if !strings.Contains(body, `"elapsed_ns": 0`) {
		t.Errorf("served JSON embeds wall-clock time:\n%.300s", body)
	}
	_, ts2 := newTestServer(t, 0) // a "restarted" daemon
	_, body2 := get(t, ts2.URL+"/v1/experiments/tab1?format=json", nil)
	if body != body2 {
		t.Error("JSON body differs across server instances despite identical ETags")
	}
}

func TestUnknownFormatRejected(t *testing.T) {
	_, ts := newTestServer(t, 0)
	resp, body := get(t, ts.URL+"/v1/experiments/tab2?format=yaml", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400 (%s)", resp.StatusCode, body)
	}
}

func TestETagRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, 0)
	resp, body := get(t, ts.URL+"/v1/experiments/tab1?format=text", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" || !strings.HasPrefix(etag, `"`) {
		t.Fatalf("missing or weak ETag: %q", etag)
	}
	if body == "" {
		t.Fatal("empty body")
	}

	// Revalidation with the returned tag answers 304 without a body.
	resp2, body2 := get(t, ts.URL+"/v1/experiments/tab1?format=text", map[string]string{"If-None-Match": etag})
	if resp2.StatusCode != http.StatusNotModified {
		t.Errorf("revalidation status = %d, want 304", resp2.StatusCode)
	}
	if body2 != "" {
		t.Errorf("304 carried a body: %q", body2)
	}
	if got := resp2.Header.Get("ETag"); got != etag {
		t.Errorf("304 ETag = %q, want %q", got, etag)
	}

	// A stale or foreign tag gets the full representation again.
	resp3, body3 := get(t, ts.URL+"/v1/experiments/tab1?format=text", map[string]string{"If-None-Match": `"deadbeef"`})
	if resp3.StatusCode != http.StatusOK || body3 != body {
		t.Errorf("stale-tag status = %d, body match = %v", resp3.StatusCode, body3 == body)
	}

	// List and wildcard forms match too.
	resp4, _ := get(t, ts.URL+"/v1/experiments/tab1?format=text", map[string]string{"If-None-Match": `"nope", ` + etag})
	if resp4.StatusCode != http.StatusNotModified {
		t.Errorf("list revalidation status = %d, want 304", resp4.StatusCode)
	}
	resp5, _ := get(t, ts.URL+"/v1/experiments/tab1?format=text", map[string]string{"If-None-Match": "*"})
	if resp5.StatusCode != http.StatusNotModified {
		t.Errorf("wildcard revalidation status = %d, want 304", resp5.StatusCode)
	}

	// The ETag is representation-specific: another format has another tag.
	respCSV, _ := get(t, ts.URL+"/v1/experiments/tab1?format=csv", nil)
	if csvTag := respCSV.Header.Get("ETag"); csvTag == etag {
		t.Errorf("csv and text share ETag %q", etag)
	}
}

func TestConcurrentSameIDComputesOnce(t *testing.T) {
	_, ts := newTestServer(t, 2)
	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/experiments/tab2?format=json")
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	_, metrics := get(t, ts.URL+"/metrics", nil)
	if !strings.Contains(metrics, `tensorteed_experiment_runs_total{id="tab2"} 1`) {
		t.Errorf("tab2 did not compute exactly once:\n%s", metrics)
	}
	if !strings.Contains(metrics, "tensorteed_result_cache_hits_total") {
		t.Errorf("metrics missing cache-hit counter:\n%s", metrics)
	}
}

func TestMetricsCountersProgress(t *testing.T) {
	_, ts := newTestServer(t, 0)
	get(t, ts.URL+"/v1/experiments/hw", nil)               // compute
	resp, _ := get(t, ts.URL+"/v1/experiments/hw", nil)    // memory hit
	get(t, ts.URL+"/v1/experiments/hw", map[string]string{ // revalidation
		"If-None-Match": resp.Header.Get("ETag"),
	})
	get(t, ts.URL+"/v1/experiments/nope", nil) // error

	_, metrics := get(t, ts.URL+"/metrics", nil)
	for _, want := range []string{
		`tensorteed_experiment_runs_total{id="hw"} 1`,
		"tensorteed_not_modified_total 1",
		"tensorteed_errors_total 1",
		"tensorteed_in_flight 1", // the /metrics request itself
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
	// Latency is recorded per computed experiment.
	if !strings.Contains(metrics, `tensorteed_experiment_latency_seconds{id="hw"}`) {
		t.Errorf("metrics missing hw latency:\n%s", metrics)
	}
}

func TestNotFoundAndMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, 0)
	resp, body := get(t, ts.URL+"/v1/experiments/nope", nil)
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(body, "nope") {
		t.Errorf("unknown id = %d %q, want 404 naming the id", resp.StatusCode, body)
	}
	resp, _ = get(t, ts.URL+"/v1/bogus", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path = %d, want 404", resp.StatusCode)
	}
	postResp, err := http.Post(ts.URL+"/v1/experiments/tab1", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, postResp.Body)
	postResp.Body.Close()
	if postResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST = %d, want 405", postResp.StatusCode)
	}
}

// TestGracefulShutdownDrain pins the drain semantics tensorteed relies
// on: Shutdown stops the listener but in-flight requests — including one
// still computing its experiment — complete before Shutdown returns.
func TestGracefulShutdownDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("computes a calibrating experiment")
	}
	s := New(Config{Runner: tensortee.NewRunner(), MaxConcurrent: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()

	type reply struct {
		code int
		err  error
	}
	replies := make(chan reply, 1)
	go func() {
		// fig5 calibrates two systems, so this request is still in flight
		// when Shutdown begins.
		resp, err := http.Get(base + "/v1/experiments/fig5?format=text")
		if err != nil {
			replies <- reply{0, err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		replies <- reply{resp.StatusCode, nil}
	}()

	time.Sleep(150 * time.Millisecond) // let the request reach the handler
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("Shutdown = %v (in-flight request was dropped)", err)
	}
	select {
	case r := <-replies:
		if r.err != nil || r.code != http.StatusOK {
			t.Errorf("drained request = %d %v, want 200", r.code, r.err)
		}
	case <-time.After(time.Minute):
		t.Fatal("in-flight request never completed")
	}
	// After drain the listener is gone.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("listener still accepting after Shutdown")
	}
}
