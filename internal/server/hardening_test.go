package server

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"tensortee"
	"tensortee/internal/resilience"
	"tensortee/internal/store"
)

// warmStoreDir computes id once and persists it into a fresh store dir,
// returning the dir — the "previous daemon process" fixture the
// degradation tests serve stale from.
func warmStoreDir(t *testing.T, ids ...string) string {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	seed := tensortee.NewRunner(tensortee.WithStore(st))
	for _, id := range ids {
		if _, err := seed.Cached(context.Background(), id); err != nil {
			t.Fatalf("warming %s: %v", id, err)
		}
	}
	return dir
}

// newHardenedServer builds a Server over a store-backed runner with the
// given extra config applied.
func newHardenedServer(t *testing.T, dir string, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{MaxConcurrent: 1}
	if dir != "" {
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Runner = tensortee.NewRunner(tensortee.WithStore(st))
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// saturate occupies every semaphore slot of the experiment store and
// returns a release func — the deterministic stand-in for "every
// -max-concurrent slot holds a cold heavy fill".
func saturate(t *testing.T, s *Server) (release func()) {
	t.Helper()
	if s.store.sem == nil {
		t.Fatal("server has no compute semaphore to saturate")
	}
	n := cap(s.store.sem)
	for i := 0; i < n; i++ {
		s.store.sem <- struct{}{}
	}
	var once sync.Once
	release = func() {
		once.Do(func() {
			for i := 0; i < n; i++ {
				<-s.store.sem
			}
		})
	}
	t.Cleanup(release)
	return release
}

// TestSaturatedWarmStoreServesStale pins the acceptance criterion: with
// -max-concurrent saturated and a warm store dir, a GET of a previously
// computed experiment answers 200 with a stale Warning — never a 503 —
// and the metrics count the stale tier.
func TestSaturatedWarmStoreServesStale(t *testing.T) {
	dir := warmStoreDir(t, "tab2")
	s, ts := newHardenedServer(t, dir, nil)
	release := saturate(t, s)

	resp, body := get(t, ts.URL+"/v1/experiments/tab2?format=json", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("saturated warm GET = %d (%s), want 200", resp.StatusCode, body)
	}
	if warn := resp.Header.Get("Warning"); !strings.HasPrefix(warn, "110 ") {
		t.Errorf("Warning = %q, want a 110 stale marker", warn)
	}
	if tier := resp.Header.Get("X-Cache"); tier != "stale" {
		t.Errorf("X-Cache = %q, want stale", tier)
	}
	if !strings.Contains(body, `"id": "tab2"`) {
		t.Errorf("stale body is not the tab2 result:\n%.200s", body)
	}
	if etag := resp.Header.Get("ETag"); etag == "" {
		t.Error("stale response lost its ETag")
	}
	_, metrics := get(t, ts.URL+"/metrics", nil)
	if !strings.Contains(metrics, "tensorteed_stale_serves_total 1") {
		t.Errorf("stale serve not counted:\n%s", metrics)
	}

	// Once the saturation clears, the background revalidation completes
	// and the same URL serves warm — no Warning, non-stale tier.
	release()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, _ = get(t, ts.URL+"/v1/experiments/tab2?format=json", nil)
		if resp.Header.Get("Warning") == "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("response still stale after saturation cleared")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if tier := resp.Header.Get("X-Cache"); tier == "stale" || tier == "" {
		t.Errorf("post-saturation X-Cache = %q, want a warm tier", tier)
	}
}

// TestSaturatedColdStoreSheds503 pins the other half of the degradation
// contract: with nothing persisted, saturation answers 503 + Retry-After
// instead of queueing, and the reject tier is counted.
func TestSaturatedColdStoreSheds503(t *testing.T) {
	s, ts := newHardenedServer(t, t.TempDir(), nil) // store enabled but empty
	saturate(t, s)

	resp, _ := get(t, ts.URL+"/v1/experiments/tab2?format=json", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated cold GET = %d, want 503", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want integer >= 1", resp.Header.Get("Retry-After"))
	}
	_, metrics := get(t, ts.URL+"/metrics", nil)
	if !strings.Contains(metrics, "tensorteed_saturation_rejects_total 1") {
		t.Errorf("saturation reject not counted:\n%s", metrics)
	}
}

// TestSaturatedWithoutStoreSheds503 covers the no-persistence daemon:
// same shedding, no stale tier to fall back to.
func TestSaturatedWithoutStoreSheds503(t *testing.T) {
	s := New(Config{Runner: tensortee.NewRunner(), MaxConcurrent: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	saturate(t, s)
	resp, _ := get(t, ts.URL+"/v1/experiments/tab2", nil)
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("saturated storeless GET = %d (Retry-After %q), want 503 with hint",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}

// TestBreakerOpenDegrades pins the circuit-breaker trigger: an open
// breaker degrades exactly like a full semaphore — stale from a warm
// store, 503 from a cold one — and shows up in the breaker gauge.
func TestBreakerOpenDegrades(t *testing.T) {
	br := resilience.New(1, time.Hour)
	br.Trip()
	dir := warmStoreDir(t, "tab2")
	_, ts := newHardenedServer(t, dir, func(cfg *Config) { cfg.Breaker = br })

	// Warm id: stale 200 even though every semaphore slot is free.
	resp, _ := get(t, ts.URL+"/v1/experiments/tab2?format=json", nil)
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(resp.Header.Get("Warning"), "110 ") {
		t.Fatalf("breaker-open warm GET = %d (Warning %q), want stale 200",
			resp.StatusCode, resp.Header.Get("Warning"))
	}
	// Cold id: shed.
	resp, _ = get(t, ts.URL+"/v1/experiments/hw?format=json", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("breaker-open cold GET = %d, want 503", resp.StatusCode)
	}
	_, metrics := get(t, ts.URL+"/metrics", nil)
	if !strings.Contains(metrics, "tensorteed_breaker_open 1") {
		t.Errorf("breaker gauge not open:\n%s", metrics)
	}

	// The breaker closing restores normal service.
	br.Success()
	resp, _ = get(t, ts.URL+"/v1/experiments/hw?format=json", nil)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Warning") != "" {
		t.Fatalf("breaker-closed GET = %d (Warning %q), want warm 200",
			resp.StatusCode, resp.Header.Get("Warning"))
	}
	_, metrics = get(t, ts.URL+"/metrics", nil)
	if !strings.Contains(metrics, "tensorteed_breaker_open 0") {
		t.Errorf("breaker gauge still open:\n%s", metrics)
	}
}

// TestRateLimitEndToEnd pins the limiter through the full middleware
// stack: burst admitted, excess answered 429 + Retry-After, decisions
// counted, probes exempt.
func TestRateLimitEndToEnd(t *testing.T) {
	s := New(Config{Runner: tensortee.NewRunner(), RateLimit: 1, RateBurst: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	_ = s

	var last *http.Response
	for i := 0; i < 3; i++ {
		last, _ = get(t, ts.URL+"/v1/experiments", nil)
	}
	if last.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third request = %d, want 429", last.StatusCode)
	}
	if ra, err := strconv.Atoi(last.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want integer >= 1", last.Header.Get("Retry-After"))
	}
	// Liveness and metrics probes stay reachable from a shed client.
	for i := 0; i < 3; i++ {
		if resp, _ := get(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz while limited = %d", resp.StatusCode)
		}
	}
	_, metrics := get(t, ts.URL+"/metrics", nil)
	if !strings.Contains(metrics, "tensorteed_ratelimit_allowed_total 2") ||
		!strings.Contains(metrics, "tensorteed_ratelimit_rejected_total 1") {
		t.Errorf("ratelimit counters wrong:\n%s", metrics)
	}
	// A 429 counts as an error in the request metrics too.
	if !strings.Contains(metrics, "tensorteed_errors_total 1") {
		t.Errorf("429 not counted as error:\n%s", metrics)
	}
}

// TestTrustedProxiesSplitBuckets pins per-client fairness behind a
// trusted proxy: distinct X-Forwarded-For clients get distinct buckets
// even though every TCP connection comes from the same address.
func TestTrustedProxiesSplitBuckets(t *testing.T) {
	s := New(Config{Runner: tensortee.NewRunner(), RateLimit: 0.001, RateBurst: 1, TrustedProxies: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	_ = s

	for i, client := range []string{"1.1.1.1", "2.2.2.2"} {
		resp, _ := get(t, ts.URL+"/v1/experiments", map[string]string{"X-Forwarded-For": client})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("client %d first request = %d, want 200", i, resp.StatusCode)
		}
	}
	// Each bucket is a single token; the same forwarded client repeats
	// and is shed, while a fresh one still gets through.
	resp, _ := get(t, ts.URL+"/v1/experiments", map[string]string{"X-Forwarded-For": "1.1.1.1"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("repeat forwarded client = %d, want 429", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/v1/experiments", map[string]string{"X-Forwarded-For": "3.3.3.3"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh forwarded client = %d, want 200", resp.StatusCode)
	}
}

// TestGzipContentEncoding pins compression of the large aggregate body:
// a gzip-accepting client gets gzip bytes that decode to exactly the
// identity representation; a refusing client gets identity.
func TestGzipContentEncoding(t *testing.T) {
	_, ts := newTestServer(t, 0)

	_, identity := get(t, ts.URL+"/v1/experiments/all?format=json", nil)
	resp, compressed := get(t, ts.URL+"/v1/experiments/all?format=json",
		map[string]string{"Accept-Encoding": "gzip"})
	if ce := resp.Header.Get("Content-Encoding"); ce != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", ce)
	}
	if cl, _ := strconv.Atoi(resp.Header.Get("Content-Length")); cl != len(compressed) {
		t.Errorf("Content-Length = %q, body is %d bytes", resp.Header.Get("Content-Length"), len(compressed))
	}
	if len(compressed) >= len(identity) {
		t.Errorf("gzip body (%d bytes) not smaller than identity (%d bytes)", len(compressed), len(identity))
	}
	zr, err := gzip.NewReader(strings.NewReader(compressed))
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if string(decoded) != identity {
		t.Error("gzip body does not decode to the identity representation")
	}

	// An explicit q=0 refusal gets identity.
	resp, body := get(t, ts.URL+"/v1/experiments/all?format=json",
		map[string]string{"Accept-Encoding": "gzip;q=0"})
	if ce := resp.Header.Get("Content-Encoding"); ce != "" {
		t.Errorf("Content-Encoding with q=0 = %q, want identity", ce)
	}
	if body != identity {
		t.Error("q=0 body differs from identity")
	}
}

// logBuffer is a goroutine-safe sink for the slog JSON handler.
type logBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *logBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *logBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// TestRequestLogging pins the structured request log: one record per
// request carrying method, path, status, bytes, duration, client and the
// cache tier.
func TestRequestLogging(t *testing.T) {
	buf := &logBuffer{}
	s := New(Config{Runner: tensortee.NewRunner(), Log: slog.New(slog.NewJSONHandler(buf, nil))})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	_ = s

	get(t, ts.URL+"/v1/experiments/hw?format=json", nil) // compute
	get(t, ts.URL+"/v1/experiments/hw?format=json", nil) // memory hit
	get(t, ts.URL+"/v1/experiments/nope", nil)           // 404

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("logged %d records, want 3:\n%s", len(lines), buf.String())
	}
	type record struct {
		Msg      string  `json:"msg"`
		Method   string  `json:"method"`
		Path     string  `json:"path"`
		Status   int     `json:"status"`
		Bytes    int64   `json:"bytes"`
		Duration float64 `json:"duration"`
		Client   string  `json:"client"`
		Cache    string  `json:"cache"`
	}
	var recs []record
	for _, ln := range lines {
		var r record
		if err := json.Unmarshal([]byte(ln), &r); err != nil {
			t.Fatalf("unparseable log line %q: %v", ln, err)
		}
		recs = append(recs, r)
	}
	if recs[0].Method != "GET" || recs[0].Path != "/v1/experiments/hw" || recs[0].Status != 200 {
		t.Errorf("first record = %+v", recs[0])
	}
	if recs[0].Cache != "compute" {
		t.Errorf("first record cache = %q, want compute", recs[0].Cache)
	}
	if recs[1].Cache != "memory" {
		t.Errorf("second record cache = %q, want memory", recs[1].Cache)
	}
	if recs[0].Bytes <= 0 {
		t.Errorf("first record bytes = %d, want > 0", recs[0].Bytes)
	}
	if recs[0].Client == "" {
		t.Error("first record has no client")
	}
	if recs[2].Status != 404 {
		t.Errorf("third record status = %d, want 404", recs[2].Status)
	}
}

// TestCacheTierHeader pins the X-Cache progression compute → memory on
// the plain (unsaturated) path, and disk on a store-warmed restart.
func TestCacheTierHeader(t *testing.T) {
	dir := warmStoreDir(t, "tab2")
	_, ts := newHardenedServer(t, dir, nil)
	resp, _ := get(t, ts.URL+"/v1/experiments/tab2?format=json", nil)
	if tier := resp.Header.Get("X-Cache"); tier != "disk" {
		t.Errorf("store-warmed first GET X-Cache = %q, want disk", tier)
	}
	resp, _ = get(t, ts.URL+"/v1/experiments/tab2?format=json", nil)
	if tier := resp.Header.Get("X-Cache"); tier != "memory" {
		t.Errorf("second GET X-Cache = %q, want memory", tier)
	}
	resp, _ = get(t, ts.URL+"/v1/experiments/hw?format=json", nil)
	if tier := resp.Header.Get("X-Cache"); tier != "compute" {
		t.Errorf("cold GET X-Cache = %q, want compute", tier)
	}
}

// TestScenarioBodyTooLarge pins the 413 satellite: a body over
// maxScenarioBody is "too large", not "bad JSON".
func TestScenarioBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, 0)
	big := `{"name": "` + strings.Repeat("x", maxScenarioBody+1) + `"}`
	resp, err := http.Post(ts.URL+"/v1/scenarios", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized spec = %d, want 413", resp.StatusCode)
	}
	// A merely malformed body is still a 400.
	resp, err = http.Post(ts.URL+"/v1/scenarios", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed spec = %d, want 400", resp.StatusCode)
	}
}

// TestStoreEntryHeadersAndRevalidation pins the peer-surface satellite:
// raw envelopes carry an explicit Content-Length (probes pre-size
// buffers) and a checksum-derived ETag that 304s on re-probe.
func TestStoreEntryHeadersAndRevalidation(t *testing.T) {
	dir := warmStoreDir(t, "tab2")
	_, ts := newHardenedServer(t, dir, nil)

	resp, body := get(t, ts.URL+"/v1/store/result/tab2", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("store entry = %d", resp.StatusCode)
	}
	cl, err := strconv.Atoi(resp.Header.Get("Content-Length"))
	if err != nil || cl != len(body) {
		t.Errorf("Content-Length = %q, body is %d bytes", resp.Header.Get("Content-Length"), len(body))
	}
	etag := resp.Header.Get("ETag")
	if len(etag) != 64+2 || !strings.HasPrefix(etag, `"`) {
		t.Fatalf("ETag = %q, want quoted sha256 hex", etag)
	}
	// The validator is the envelope's own checksum field.
	header := strings.SplitN(body, "\n", 2)[0]
	if !strings.Contains(header, strings.Trim(etag, `"`)) {
		t.Errorf("ETag %q not the envelope checksum (header %q)", etag, header)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-cache" {
		t.Errorf("Cache-Control = %q, want no-cache", cc)
	}

	resp2, body2 := get(t, ts.URL+"/v1/store/result/tab2", map[string]string{"If-None-Match": etag})
	if resp2.StatusCode != http.StatusNotModified || body2 != "" {
		t.Errorf("re-probe = %d with %d body bytes, want bare 304", resp2.StatusCode, len(body2))
	}
}

// TestStaleScenarioFallback pins the scenario arm of the degradation
// path: a persisted scenario result renders stale with the
// fingerprint-derived ETag.
func TestStaleScenarioFallback(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	runner := tensortee.NewRunner(tensortee.WithStore(st))
	res, err := runner.Cached(context.Background(), "tab2")
	if err != nil {
		t.Fatal(err)
	}
	b, err := res.EncodeStored()
	if err != nil {
		t.Fatal(err)
	}
	const fp = "feedfacefeedfacefeedfacefeedface"
	if err := st.Put(store.Scenarios, fp, b); err != nil {
		t.Fatal(err)
	}
	s := New(Config{Runner: runner})

	rd := s.staleScenario(fp, FormatJSON)
	if rd == nil {
		t.Fatal("staleScenario found nothing despite a persisted entry")
	}
	if !rd.stale || rd.etag != scenarioETag(fp, FormatJSON) {
		t.Errorf("stale render = {stale: %v, etag: %q}", rd.stale, rd.etag)
	}
	if s.staleScenario("0000000000000000", FormatJSON) != nil {
		t.Error("staleScenario fabricated a result for an unknown fingerprint")
	}
}
