package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"tensortee/internal/campaign"
	"tensortee/internal/ratelimit"
	"tensortee/internal/scenario"
)

// maxCampaignBody bounds POST /v1/campaigns request bodies. A campaign
// spec is a scenario spec plus a handful of axes, so the scenario limit
// fits it too.
const maxCampaignBody = maxScenarioBody

// campaignRetryAfterBase seeds the jittered Retry-After on a 503 from
// the campaign tier (manager at capacity or shutting down). Campaigns
// run for minutes; there is no point retrying sooner.
const campaignRetryAfterBase = 30

// handleCampaignCreate accepts a multi-axis campaign spec and starts it
// asynchronously:
//
//	POST /v1/campaigns
//
// The response is immediate — 202 with the initial status for a freshly
// admitted campaign, 200 with the current status when an identical spec
// (campaign identity is content-addressed) is already tracked. Either
// way a Location header points at the status resource. Invalid specs
// answer 400 before any compute starts; a manager at capacity answers
// 503 with a jittered Retry-After.
func (s *Server) handleCampaignCreate(w http.ResponseWriter, r *http.Request) {
	var spec campaign.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxCampaignBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("campaign spec exceeds the %d-byte limit", maxCampaignBody),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, fmt.Sprintf("decoding campaign spec: %v", err), http.StatusBadRequest)
		return
	}
	st, created, err := s.campaigns.Start(spec)
	if err != nil {
		switch {
		case errors.Is(err, campaign.ErrInvalidSpec) || errors.Is(err, scenario.ErrInvalidSpec):
			http.Error(w, err.Error(), http.StatusBadRequest)
		case errors.Is(err, campaign.ErrBusy) || errors.Is(err, campaign.ErrClosed):
			w.Header().Set("Retry-After", ratelimit.RetryAfter(campaignRetryAfterBase))
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	w.Header().Set("Location", "/v1/campaigns/"+st.ID)
	code := http.StatusOK
	if created {
		code = http.StatusAccepted
	}
	writeCampaignJSON(w, code, st)
}

// handleCampaignList reports every tracked campaign in submission order:
//
//	GET /v1/campaigns
func (s *Server) handleCampaignList(w http.ResponseWriter, _ *http.Request) {
	list := s.campaigns.List()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]any{
		"campaigns": list,
		"count":     len(list),
	})
}

// handleCampaignStatus reports one campaign's status snapshot:
//
//	GET /v1/campaigns/{id}
func (s *Server) handleCampaignStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.campaigns.Status(id)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown campaign %q", id), http.StatusNotFound)
		return
	}
	writeCampaignJSON(w, http.StatusOK, st)
}

// handleCampaignCancel cancels a campaign:
//
//	DELETE /v1/campaigns/{id}
//
// In-flight points drain to completion (their checkpoints land); the
// rest of the grid is skipped. Cancelling a terminal campaign is a
// no-op that returns its status, so the route is idempotent.
func (s *Server) handleCampaignCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := s.campaigns.Cancel(id)
	if err != nil {
		http.Error(w, fmt.Sprintf("unknown campaign %q", id), http.StatusNotFound)
		return
	}
	writeCampaignJSON(w, http.StatusOK, st)
}

// handleCampaignEvents streams a campaign's progress as NDJSON:
//
//	GET /v1/campaigns/{id}/events
//
// The stream opens with a synthetic status snapshot, follows with one
// line per live event (each carries full running counts, so a client
// can join late or drop lines without losing the totals), and closes
// with a final snapshot when the campaign reaches a terminal state.
// Subscribing to an already-terminal campaign yields the two snapshots
// and EOF.
func (s *Server) handleCampaignEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ch, detach, err := s.campaigns.Subscribe(id)
	if err != nil {
		http.Error(w, fmt.Sprintf("unknown campaign %q", id), http.StatusNotFound)
		return
	}
	defer detach()
	st, ok := s.campaigns.Status(id)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown campaign %q", id), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev campaign.Event) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	if !emit(snapshotEvent(st)) {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-ch:
			if !open {
				// Terminal: close the stream with a final snapshot so the
				// last line a client reads is always the settled totals.
				if st, ok := s.campaigns.Status(id); ok {
					emit(snapshotEvent(st))
				}
				return
			}
			if !emit(ev) {
				return
			}
		}
	}
}

// snapshotEvent renders a status snapshot in the event-line shape, so
// every line of the stream decodes as the same type.
func snapshotEvent(st campaign.Status) campaign.Event {
	ev := campaign.Event{
		Type:     campaign.EventStatus,
		Campaign: st.ID,
		State:    string(st.State),
		Done:     st.Done,
		Computed: st.Computed,
		Restored: st.Restored,
		Failed:   st.Failed,
		Skipped:  st.Skipped,
		Total:    st.Total,
	}
	if st.Search != nil {
		// A search campaign's snapshots carry the current winner, so a
		// client joining late (or reading a finished search) still sees
		// the answer on the first and last stream lines.
		ev.BestSoFar = st.Search.Best
		ev.Frontier = st.Search.Frontier
	}
	return ev
}

func writeCampaignJSON(w http.ResponseWriter, code int, st campaign.Status) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(st)
}
