package server

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tensortee"
	"tensortee/internal/faultinject"
	"tensortee/internal/store"
)

// TestHealthzAndMetricsReportDegradedStore walks the full degrade →
// recover cycle through the HTTP surface: /healthz stays 200 the whole
// time (liveness is not storage health) but names the store's state,
// and the tensorteed_store_degraded gauge tracks it.
func TestHealthzAndMetricsReportDegradedStore(t *testing.T) {
	inj, err := faultinject.Parse("write:fail-until@3")
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(t.TempDir(), store.Options{
		Faults:           inj,
		DegradeThreshold: 3,
		ProbeInterval:    20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Runner: tensortee.NewRunner(tensortee.WithStore(st))})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp, body := get(t, ts.URL+"/healthz", nil)
	if resp.StatusCode != 200 || !strings.Contains(body, "store: ok") {
		t.Fatalf("healthy healthz = %d %q", resp.StatusCode, body)
	}

	for i := 0; i < 3; i++ {
		if err := st.Put(store.Results, "fig16", []byte("x")); err == nil {
			t.Fatal("write succeeded under fail-until@3")
		}
	}
	resp, body = get(t, ts.URL+"/healthz", nil)
	if resp.StatusCode != 200 {
		t.Errorf("degraded healthz status = %d, want 200 (alive, just read-only)", resp.StatusCode)
	}
	if !strings.Contains(body, "store: degraded") {
		t.Errorf("degraded healthz body = %q", body)
	}
	_, metrics := get(t, ts.URL+"/metrics", nil)
	if !strings.Contains(metrics, "tensorteed_store_degraded 1") {
		t.Errorf("metrics do not gauge the degraded store:\n%s", metrics)
	}
	if !strings.Contains(metrics, "tensorteed_store_writes_suppressed_total") ||
		!strings.Contains(metrics, "tensorteed_store_peer_skips_total") {
		t.Error("degradation counter series missing from /metrics")
	}

	// The schedule is exhausted: the next probe write heals the store.
	time.Sleep(30 * time.Millisecond)
	if err := st.Put(store.Results, "fig16", []byte("x")); err != nil {
		t.Fatalf("recovery probe: %v", err)
	}
	if _, body = get(t, ts.URL+"/healthz", nil); !strings.Contains(body, "store: ok") {
		t.Errorf("healthz after recovery = %q", body)
	}
	if _, metrics = get(t, ts.URL+"/metrics", nil); !strings.Contains(metrics, "tensorteed_store_degraded 0") {
		t.Error("degraded gauge did not return to 0 after recovery")
	}
}

func TestHealthzWithoutStoreIsPlainOk(t *testing.T) {
	_, ts := newTestServer(t, 0)
	resp, body := get(t, ts.URL+"/healthz", nil)
	if resp.StatusCode != 200 || !strings.HasPrefix(body, "ok") {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}
	if strings.Contains(body, "store:") {
		t.Errorf("healthz names a store that does not exist: %q", body)
	}
}
