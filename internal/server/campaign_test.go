package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"tensortee/internal/campaign"
)

// tinyCampaign crosses the cheap custom model over a two-value layers
// axis: two points, one shared mode-off calibration.
const tinyCampaign = `{
  "name": "srv-campaign",
  "base": {
    "name": "srv-campaign-base",
    "model": {"layers": 1, "hidden": 128, "heads": 2, "batch": 1, "seqlen": 64},
    "systems": [{"kind": "non-secure"}],
    "metrics": ["total"]
  },
  "axes": [{"axis": "layers", "values": [1, 2]}]
}`

func del(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
	}
	resp.Body.Close()
	return resp, sb.String()
}

func decodeStatus(t *testing.T, body string) campaign.Status {
	t.Helper()
	var st campaign.Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("decoding campaign status %q: %v", body, err)
	}
	return st
}

func waitCampaignDone(t *testing.T, url string) campaign.Status {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, body := get(t, url, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status poll = %d (%s)", resp.StatusCode, body)
		}
		st := decodeStatus(t, body)
		if st.State != campaign.StateRunning {
			return st
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("campaign did not reach a terminal state")
	return campaign.Status{}
}

func TestCampaignEndpointLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign points calibrate a system")
	}
	_, ts := newTestServer(t, 0)
	url := ts.URL + "/v1/campaigns"

	resp, body := post(t, url, tinyCampaign, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create = %d, want 202 (%s)", resp.StatusCode, body)
	}
	st := decodeStatus(t, body)
	if st.ID == "" || st.Total != 2 {
		t.Fatalf("initial status = %+v, want id set and total 2", st)
	}
	loc := resp.Header.Get("Location")
	if loc != "/v1/campaigns/"+st.ID {
		t.Fatalf("Location = %q, want /v1/campaigns/%s", loc, st.ID)
	}

	final := waitCampaignDone(t, ts.URL+loc)
	if final.State != campaign.StateDone {
		t.Fatalf("final state = %q, want done", final.State)
	}
	if final.Done != 2 || final.Failed != 0 {
		t.Fatalf("final counts = %+v, want 2 done, 0 failed", final)
	}

	// An identical resubmission lands on the tracked job: 200, same id.
	resp, body = post(t, url, tinyCampaign, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit = %d, want 200 (%s)", resp.StatusCode, body)
	}
	if again := decodeStatus(t, body); again.ID != st.ID {
		t.Fatalf("resubmit id = %q, want %q", again.ID, st.ID)
	}

	// The list shows it; an unknown id answers 404.
	resp, body = get(t, url, nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, st.ID) {
		t.Fatalf("list = %d (%s), want 200 mentioning %s", resp.StatusCode, body, st.ID)
	}
	if resp, _ := get(t, url+"/nope", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id = %d, want 404", resp.StatusCode)
	}
}

// tinySearchCampaign is a target-mode search over a two-value cache
// axis with an always-satisfiable step-time target: the search probes
// the top of the domain, bisects down, and lands on the cheapest
// configuration — exercising the whole submit/status search surface on
// real simulations.
const tinySearchCampaign = `{
  "name": "srv-search",
  "base": {
    "name": "srv-search-base",
    "model": {"layers": 1, "hidden": 128, "heads": 2, "batch": 1, "seqlen": 64},
    "systems": [{"kind": "non-secure"}],
    "metrics": ["total"]
  },
  "axes": [{"axis": "meta_cache_kb", "values": [16, 64]}],
  "search": {"mode": "target", "objective": "total", "target": 1000000}
}`

func TestCampaignSearchEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign points calibrate a system")
	}
	_, ts := newTestServer(t, 0)

	resp, body := post(t, ts.URL+"/v1/campaigns", tinySearchCampaign, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create = %d, want 202 (%s)", resp.StatusCode, body)
	}
	st := decodeStatus(t, body)
	final := waitCampaignDone(t, ts.URL+"/v1/campaigns/"+st.ID)
	if final.State != campaign.StateDone || final.Failed != 0 {
		t.Fatalf("final = %+v", final)
	}
	if final.Search == nil {
		t.Fatal("status of a search campaign has no search block")
	}
	if final.Search.Best == nil || final.Search.Best.Point != "meta_cache_kb=16" {
		t.Fatalf("best = %+v, want the cheaper cache size", final.Search.Best)
	}
	if !strings.Contains(final.Search.Terminated, "met") {
		t.Fatalf("terminated = %q", final.Search.Terminated)
	}
	// Both domain points were needed here (probe the top, bisect to the
	// bottom); the point is that the search evaluated and reported them.
	if final.Search.Evaluated != 2 || final.Computed != 2 {
		t.Fatalf("evaluated=%d computed=%d, want 2/2", final.Search.Evaluated, final.Computed)
	}
}

func TestCampaignEndpointRejectsBadSpecs(t *testing.T) {
	_, ts := newTestServer(t, 0)
	url := ts.URL + "/v1/campaigns"
	cases := []struct {
		name, body, wantFrag string
	}{
		{"not json", `{`, "decoding campaign spec"},
		{"unknown field", `{"nope": 1}`, "unknown field"},
		{"no axes", `{"base": ` + tinySpec + `, "axes": []}`, "no axes"},
		{"unknown axis", `{"base": ` + tinySpec + `, "axes": [{"axis": "warp", "values": [1]}]}`, "unknown axis"},
		{"unknown model", `{"base": {"name": "x", "model": {"name": "NOPE-9B"}, "systems": [{"kind": "non-secure"}], "metrics": ["total"]}, "axes": [{"axis": "layers", "values": [1]}]}`, "unknown model"},
		{"unknown search mode", `{"base": ` + tinySpec + `, "axes": [{"axis": "layers", "values": [1, 2]}], "search": {"mode": "climb"}}`, "unknown search mode"},
		{"search target missing", `{"base": ` + tinySpec + `, "axes": [{"axis": "layers", "values": [1, 2]}], "search": {"mode": "target", "objective": "total"}}`, "target"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, url, tc.body, nil)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status = %d, want 400 (%s)", resp.StatusCode, body)
			}
			if !strings.Contains(body, tc.wantFrag) {
				t.Errorf("body %q missing %q", body, tc.wantFrag)
			}
		})
	}
	// Cancelling an unknown campaign answers 404, not a crash.
	if resp, _ := del(t, url+"/nope"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("cancel unknown = %d, want 404", resp.StatusCode)
	}
}

func TestCampaignEventsStreamIsNDJSONAndTerminates(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign points calibrate a system")
	}
	_, ts := newTestServer(t, 0)

	resp, body := post(t, ts.URL+"/v1/campaigns", tinyCampaign, nil)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("create = %d (%s)", resp.StatusCode, body)
	}
	st := decodeStatus(t, body)

	sresp, err := http.Get(ts.URL + "/v1/campaigns/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	var events []campaign.Event
	sc := bufio.NewScanner(sresp.Body)
	for sc.Scan() {
		var ev campaign.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %q is not an event: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) < 2 {
		t.Fatalf("stream had %d lines, want at least opening and closing snapshots", len(events))
	}
	if events[0].Type != campaign.EventStatus {
		t.Errorf("first line type = %q, want status snapshot", events[0].Type)
	}
	last := events[len(events)-1]
	if last.Type != campaign.EventStatus || last.State != string(campaign.StateDone) {
		t.Errorf("last line = %+v, want terminal status snapshot", last)
	}
	if last.Done != last.Total || last.Total != 2 {
		t.Errorf("closing totals = %d/%d, want 2/2", last.Done, last.Total)
	}
}

func TestCampaignCancelEndpointIsIdempotent(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign points calibrate a system")
	}
	_, ts := newTestServer(t, 0)

	resp, body := post(t, ts.URL+"/v1/campaigns", tinyCampaign, nil)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("create = %d (%s)", resp.StatusCode, body)
	}
	st := decodeStatus(t, body)
	url := ts.URL + "/v1/campaigns/" + st.ID

	// Cancel races point completion, so the terminal state may be either
	// cancelled or done — what the route owes us is a 200, a terminal
	// drain, and idempotency.
	resp, body = del(t, url)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel = %d (%s)", resp.StatusCode, body)
	}
	final := waitCampaignDone(t, url)
	if final.State != campaign.StateCancelled && final.State != campaign.StateDone {
		t.Fatalf("state after cancel = %q", final.State)
	}
	resp, body = del(t, url)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second cancel = %d (%s)", resp.StatusCode, body)
	}
	if again := decodeStatus(t, body); again.State != final.State {
		t.Fatalf("second cancel state = %q, want %q", again.State, final.State)
	}
}
