package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"

	"tensortee"
)

// Format selects one of a Result's three wire representations.
type Format string

const (
	FormatText Format = "text"
	FormatJSON Format = "json"
	FormatCSV  Format = "csv"
)

// contentType maps a format to its Content-Type header value.
func (f Format) contentType() string {
	switch f {
	case FormatJSON:
		return "application/json"
	case FormatCSV:
		return "text/csv; charset=utf-8"
	default:
		return "text/plain; charset=utf-8"
	}
}

// rendered is one cached wire representation of a result: the body bytes
// plus the strong ETag derived from the result's content fingerprint.
type rendered struct {
	body        []byte
	etag        string
	contentType string
}

// resultStore is the server-side experiment cache. Each id fills at most
// once per store (singleflight via per-entry sync.Once, mirroring the
// Runner's caches); the fill runs detached from any single request's
// context so an impatient first client cannot poison the cache, and
// concurrent cold requests for the same id queue on one computation.
// Rendered representations are memoized per format on top of the Result.
//
// The store keeps its own singleflight even though Runner.Cached already
// has one: the store's fill is the single place the -max-concurrent
// semaphore is held and the one spot that can increment the
// experiment-runs metric exactly once (Runner.Cached cannot tell callers
// which of them triggered the computation).
type resultStore struct {
	runner  *tensortee.Runner
	sem     chan struct{} // bounds concurrent fills; nil = unbounded
	metrics *Metrics

	mu      sync.Mutex
	entries map[string]*storeEntry
}

type storeEntry struct {
	once sync.Once
	done chan struct{} // closed when res/err are final
	res  *tensortee.Result
	err  error

	rmu     sync.Mutex
	renders map[Format]*rendered
}

// fill runs compute for this entry exactly once and waits for the result,
// honoring ctx for the wait only: the computation itself runs in a
// goroutine detached from any single request (an impatient first client
// cannot poison the cache), queued on sem when non-nil. The fill outlives
// its request, so a panic in compute (a validation gap reaching a
// simulator invariant) would crash the whole daemon; it degrades to a
// per-entry error instead. Shared by the experiment and scenario stores
// so hardening applies to both fills.
func (e *storeEntry) fill(ctx context.Context, sem chan struct{}, compute func(context.Context) (*tensortee.Result, error)) error {
	e.once.Do(func() {
		go func() {
			defer close(e.done)
			defer func() {
				if p := recover(); p != nil {
					e.err = fmt.Errorf("computation panicked: %v", p)
				}
			}()
			if sem != nil {
				sem <- struct{}{} // queue cold computations instead of thrashing calibration
				defer func() { <-sem }()
			}
			e.res, e.err = compute(context.WithoutCancel(ctx))
		}()
	})
	select {
	case <-e.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func newResultStore(r *tensortee.Runner, maxConcurrent int, m *Metrics) *resultStore {
	var sem chan struct{}
	if maxConcurrent > 0 {
		sem = make(chan struct{}, maxConcurrent)
	}
	return &resultStore{
		runner:  r,
		sem:     sem,
		metrics: m,
		entries: make(map[string]*storeEntry),
	}
}

func (s *resultStore) entry(id string) *storeEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[id]
	if !ok {
		e = &storeEntry{done: make(chan struct{}), renders: make(map[Format]*rendered)}
		s.entries[id] = e
	}
	return e
}

// result returns the experiment's Result, computing it on first request.
// A hit (the entry already computed) is counted in the metrics; a miss
// starts — or joins — the single fill and waits for it, honoring ctx for
// the wait only.
func (s *resultStore) result(ctx context.Context, id string) (*tensortee.Result, error) {
	e := s.entry(id)
	select {
	case <-e.done:
		s.metrics.CacheHit()
		return e.res, e.err
	default:
	}
	if err := e.fill(ctx, s.sem, func(ctx context.Context) (*tensortee.Result, error) {
		res, err := s.runner.Cached(ctx, id)
		if err == nil {
			// The runs metric counts actual computations; a result the
			// runner loaded from the persistent store cost a disk read,
			// not a simulation, and shows up in the store counters instead.
			if s.runner.ResultFromStore(id) {
				s.metrics.ExperimentStoreServe()
			} else {
				s.metrics.ExperimentRun(id, res.Elapsed.Seconds())
			}
		}
		return res, err
	}); err != nil {
		return nil, err
	}
	return e.res, e.err
}

// render returns the cached wire representation of the experiment in the
// given format, rendering (and memoizing) it on first use.
func (s *resultStore) render(ctx context.Context, id string, f Format) (*rendered, error) {
	res, err := s.result(ctx, id)
	if err != nil {
		return nil, err
	}
	e := s.entry(id)
	e.rmu.Lock()
	defer e.rmu.Unlock()
	if r, ok := e.renders[f]; ok {
		return r, nil
	}
	body, err := renderResult(res, f)
	if err != nil {
		return nil, err
	}
	r := &rendered{
		body:        body,
		etag:        fmt.Sprintf("%q", res.Fingerprint()+"-"+string(f)),
		contentType: f.contentType(),
	}
	e.renders[f] = r
	return r, nil
}

// scenarioStore is the server-side cache for POST /v1/scenarios results,
// keyed by the spec's content fingerprint (normalized, so two request
// bodies that decode to equivalent specs share one entry). Each
// fingerprint computes at most once (singleflight via per-entry
// sync.Once); fills run detached from the triggering request's context
// and hold the scenario semaphore, bounding concurrent scenario
// computations independently of the experiment bound. Rendered
// representations are memoized per format on top of the Result.
type scenarioStore struct {
	runner  *tensortee.Runner
	sem     chan struct{} // bounds concurrent scenario fills; nil = unbounded
	metrics *Metrics

	mu      sync.Mutex
	entries map[string]*storeEntry
}

func newScenarioStore(r *tensortee.Runner, maxConcurrent int, m *Metrics) *scenarioStore {
	var sem chan struct{}
	if maxConcurrent > 0 {
		sem = make(chan struct{}, maxConcurrent)
	}
	return &scenarioStore{
		runner:  r,
		sem:     sem,
		metrics: m,
		entries: make(map[string]*storeEntry),
	}
}

// maxScenarioEntries bounds the scenario result cache: the experiment
// store's key space is the 14 registry ids, but scenario fingerprints are
// attacker-controlled, so retention must not grow with distinct specs.
// At the cap, completed entries are dropped wholesale (the cache is
// correctness-neutral; replays recompute) while in-flight fills are kept
// so their waiters and singleflight semantics are undisturbed. The cap is
// hard: when eviction frees nothing — every slot holds an in-flight fill —
// new fingerprints are refused instead of inserted, so neither the map nor
// the detached fill-goroutine count can grow past the cap (fills outlive
// the requests that started them, so without the refusal a client posting
// distinct specs and aborting each request would leak both).
const maxScenarioEntries = 256

// ErrScenarioStoreBusy reports that every scenario-cache slot holds an
// in-flight computation; the caller should answer 503 and have the client
// retry once some fills complete.
var ErrScenarioStoreBusy = errors.New("all scenario computations busy; retry later")

func (s *scenarioStore) entry(fp string) (*storeEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[fp]
	if !ok {
		if len(s.entries) >= maxScenarioEntries {
			for k, old := range s.entries {
				select {
				case <-old.done:
					delete(s.entries, k)
				default: // still filling; keep
				}
			}
			if len(s.entries) >= maxScenarioEntries {
				return nil, ErrScenarioStoreBusy
			}
		}
		e = &storeEntry{done: make(chan struct{}), renders: make(map[Format]*rendered)}
		s.entries[fp] = e
	}
	return e, nil
}

// render returns the cached wire representation of the scenario in the
// given format, computing the scenario on first request for its
// fingerprint. The ETag is keyed on the spec fingerprint (plus format),
// so revalidation works across restarts for identical specs.
func (s *scenarioStore) render(ctx context.Context, fp string, spec tensortee.Scenario, f Format) (*rendered, error) {
	e, err := s.entry(fp)
	if err != nil {
		return nil, err
	}
	select {
	case <-e.done:
		s.metrics.ScenarioCacheHit()
	default:
		if err := e.fill(ctx, s.sem, func(ctx context.Context) (*tensortee.Result, error) {
			// RunScenarioCached consults the persistent store before
			// computing, which is also what makes the memory cap safe to
			// enforce by wholesale eviction: a persisted entry that was
			// flushed from this map re-admits from disk on its next request
			// instead of recomputing.
			res, fromStore, err := s.runner.RunScenarioCached(ctx, spec)
			if err == nil {
				if fromStore {
					s.metrics.ScenarioStoreServe()
				} else {
					s.metrics.ScenarioRun()
				}
			}
			return res, err
		}); err != nil {
			return nil, err
		}
	}
	return e.renderScenario(fp, f)
}

// peek returns the completed entry for fp, or nil when the fingerprint
// is unknown, still filling, or failed. It never creates an entry — the
// GET-by-fingerprint path must not consume cache slots (or start fills)
// for attacker-invented fingerprints.
func (s *scenarioStore) peek(fp string) *storeEntry {
	s.mu.Lock()
	e, ok := s.entries[fp]
	s.mu.Unlock()
	if !ok {
		return nil
	}
	select {
	case <-e.done:
		if e.err != nil {
			return nil
		}
		return e
	default:
		return nil
	}
}

// admit installs an already-available result (re-read from the
// persistent store) as a completed entry so subsequent lookups hit
// memory. Best-effort: when the fingerprint raced another fill, or the
// cache is pinned full by in-flight fills, the result is returned as a
// detached completed entry that simply isn't retained.
func (s *scenarioStore) admit(fp string, res *tensortee.Result) *storeEntry {
	detached := func() *storeEntry {
		e := &storeEntry{done: make(chan struct{}), renders: make(map[Format]*rendered)}
		e.res = res
		close(e.done)
		return e
	}
	e, err := s.entry(fp)
	if err != nil {
		return detached()
	}
	e.once.Do(func() {
		e.res = res
		close(e.done)
	})
	select {
	case <-e.done:
		if e.err != nil || e.res == nil {
			return detached()
		}
		return e
	default:
		// An in-flight fill owns the slot; don't wait on it.
		return detached()
	}
}

// renderScenario returns the memoized wire representation of a completed
// entry, rendering it on first use. The entry must be done.
func (e *storeEntry) renderScenario(fp string, f Format) (*rendered, error) {
	if e.err != nil {
		return nil, e.err
	}
	e.rmu.Lock()
	defer e.rmu.Unlock()
	if r, ok := e.renders[f]; ok {
		return r, nil
	}
	body, err := renderResult(e.res, f)
	if err != nil {
		return nil, err
	}
	r := &rendered{
		body:        body,
		etag:        scenarioETag(fp, f),
		contentType: f.contentType(),
	}
	e.renders[f] = r
	return r, nil
}

// scenarioETag is the strong validator for one scenario representation.
// It depends only on the spec fingerprint and the format — not on the
// computed body — so it is known before any computation and stays valid
// across evictions and daemon restarts.
func scenarioETag(fp string, f Format) string {
	return fmt.Sprintf("%q", fp+"-scenario-"+string(f))
}

// fingerprintStrings derives one stable hex digest from a list of tags
// (used to build the /all ETag out of the member ETags).
func fingerprintStrings(ss []string) string {
	h := sha256.New()
	for _, s := range ss {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// renderResult produces the wire body. Elapsed is zeroed first: it is the
// only run-to-run varying field, and a strong ETag (derived from
// Fingerprint, which also excludes it) must label byte-identical bodies —
// including across daemon restarts. Per-experiment compute latency is
// still observable at /metrics.
func renderResult(res *tensortee.Result, f Format) ([]byte, error) {
	clone := *res
	clone.Elapsed = 0
	switch f {
	case FormatJSON:
		return clone.JSON()
	case FormatCSV:
		return []byte(clone.CSV()), nil
	default:
		return []byte(clone.Text()), nil
	}
}
