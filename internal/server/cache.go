package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"tensortee"
	"tensortee/internal/resilience"
	"tensortee/internal/store"
)

// Format selects one of a Result's three wire representations.
type Format string

const (
	FormatText Format = "text"
	FormatJSON Format = "json"
	FormatCSV  Format = "csv"
)

// contentType maps a format to its Content-Type header value.
func (f Format) contentType() string {
	switch f {
	case FormatJSON:
		return "application/json"
	case FormatCSV:
		return "text/csv; charset=utf-8"
	default:
		return "text/plain; charset=utf-8"
	}
}

// tier labels where a lookup was satisfied — surfaced to clients in the
// X-Cache header and to operators in the request log and metrics.
type tier string

const (
	tierMemory  tier = "memory"  // in-process result cache
	tierDisk    tier = "disk"    // persistent store, loaded by the fill
	tierCompute tier = "compute" // simulated on this request
	tierStale   tier = "stale"   // degraded: persisted bytes served under saturation
	tierNone    tier = ""
)

// worse ranks tiers for aggregate responses (/all): the reported tier is
// the most degraded one any member lookup hit.
func (t tier) worse(o tier) tier {
	rank := map[tier]int{tierNone: 0, tierMemory: 1, tierDisk: 2, tierCompute: 3, tierStale: 4}
	if rank[o] > rank[t] {
		return o
	}
	return t
}

// ErrSaturated reports that compute is saturated (semaphore full or
// circuit breaker open) and the persistent store holds nothing to degrade
// to; the caller answers 503 + Retry-After.
var ErrSaturated = errors.New("compute saturated and no stored result to degrade to; retry later")

// rendered is one cached wire representation of a result: the body bytes
// plus the strong ETag derived from the result's content fingerprint.
// stale marks a degraded representation decoded from the persistent store
// under saturation (never memoized); serve translates it into a
// Warning: 110 header.
type rendered struct {
	body        []byte
	etag        string
	contentType string
	stale       bool

	gzOnce sync.Once
	gz     []byte // lazily gzipped body; nil when compression doesn't pay
}

// resultStore is the server-side experiment cache. Each id fills at most
// once per store (singleflight via per-entry sync.Once, mirroring the
// Runner's caches); the fill runs detached from any single request's
// context so an impatient first client cannot poison the cache, and
// concurrent cold requests for the same id queue on one computation.
// Rendered representations are memoized per format on top of the Result.
//
// The store keeps its own singleflight even though Runner.Cached already
// has one: the store's fill is the single place the -max-concurrent
// semaphore is held and the one spot that can increment the
// experiment-runs metric exactly once (Runner.Cached cannot tell callers
// which of them triggered the computation).
type resultStore struct {
	runner  *tensortee.Runner
	sem     chan struct{} // bounds concurrent fills; nil = unbounded
	metrics *Metrics

	// breaker observes experiment-fill outcomes: consecutive failures (or
	// fills blowing fillBudget) open it, and while open the store degrades
	// to stale persisted results instead of starting new fills.
	breaker    *resilience.Breaker
	fillBudget time.Duration // 0 disables the latency check

	mu      sync.Mutex
	entries map[string]*storeEntry
}

type storeEntry struct {
	once sync.Once
	done chan struct{} // closed when res/err are final
	res  *tensortee.Result
	err  error
	via  tier // which tier satisfied the fill; written before done closes

	rmu     sync.Mutex
	renders map[Format]*rendered
}

// start launches compute for this entry exactly once, in a goroutine
// detached from any single request (an impatient first client cannot
// poison the cache), queued on sem when non-nil. The fill outlives its
// request, so a panic in compute (a validation gap reaching a simulator
// invariant) would crash the whole daemon; it degrades to a per-entry
// error instead. br, when non-nil, observes the outcome (errors, panics,
// and fills slower than budget count as failures). Shared by the
// experiment and scenario stores so hardening applies to both fills; the
// degradation path also calls it directly for its fire-and-forget
// revalidation.
func (e *storeEntry) start(ctx context.Context, sem chan struct{}, br *resilience.Breaker, budget time.Duration, compute func(context.Context) (*tensortee.Result, error)) {
	e.once.Do(func() {
		go func() {
			defer close(e.done)
			defer func() {
				if p := recover(); p != nil {
					e.err = fmt.Errorf("computation panicked: %v", p)
					if br != nil {
						br.Failure()
					}
				}
			}()
			if sem != nil {
				sem <- struct{}{} // queue cold computations instead of thrashing calibration
				defer func() { <-sem }()
			}
			begin := time.Now()
			e.res, e.err = compute(context.WithoutCancel(ctx))
			if br != nil {
				br.Observe(e.err, time.Since(begin), budget)
			}
		}()
	})
}

// fill is start plus a wait for the result, honoring ctx for the wait
// only.
func (e *storeEntry) fill(ctx context.Context, sem chan struct{}, br *resilience.Breaker, budget time.Duration, compute func(context.Context) (*tensortee.Result, error)) error {
	e.start(ctx, sem, br, budget, compute)
	select {
	case <-e.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func newResultStore(r *tensortee.Runner, maxConcurrent int, m *Metrics, br *resilience.Breaker, fillBudget time.Duration) *resultStore {
	var sem chan struct{}
	if maxConcurrent > 0 {
		sem = make(chan struct{}, maxConcurrent)
	}
	return &resultStore{
		runner:     r,
		sem:        sem,
		metrics:    m,
		breaker:    br,
		fillBudget: fillBudget,
		entries:    make(map[string]*storeEntry),
	}
}

func (s *resultStore) entry(id string) *storeEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[id]
	if !ok {
		e = &storeEntry{done: make(chan struct{}), renders: make(map[Format]*rendered)}
		s.entries[id] = e
	}
	return e
}

// saturated reports whether a cold lookup should degrade instead of
// filling: the circuit breaker is open (fills are failing or slow) or
// every semaphore slot is computing. The channel-length probe is a
// heuristic snapshot, which is exactly what backpressure needs — a
// request arriving as a slot frees merely degrades one response early.
func (s *resultStore) saturated() bool {
	if s.breaker != nil && s.breaker.Open() {
		return true
	}
	return s.sem != nil && len(s.sem) == cap(s.sem)
}

// staleResult reads the last persisted result for id straight from the
// local store — disk only: under saturation a peer round-trip is load the
// daemon is trying to shed, and the peer tier already fed local disk on
// every past fill.
func (s *resultStore) staleResult(id string) (*tensortee.Result, bool) {
	st := s.runner.Store()
	if st == nil {
		return nil, false
	}
	b, ok := st.Get(store.Results, id)
	if !ok {
		return nil, false
	}
	res, err := tensortee.DecodeStoredResult(b)
	if err != nil || res.ID != id {
		return nil, false
	}
	return res, true
}

// result returns the experiment's Result plus the tier that satisfied the
// lookup, computing on first request. A hit (the entry already computed)
// is counted in the metrics; a cold miss either starts — or joins — the
// single fill and waits for it (honoring ctx for the wait only), or, when
// compute is saturated, degrades: the last persisted result is served
// stale while the fill revalidates in the background, and with nothing
// persisted the lookup fails with ErrSaturated instead of queueing.
func (s *resultStore) result(ctx context.Context, id string) (*tensortee.Result, tier, error) {
	e := s.entry(id)
	select {
	case <-e.done:
		s.metrics.CacheHit()
		return e.res, tierMemory, e.err
	default:
	}
	compute := func(ctx context.Context) (*tensortee.Result, error) {
		res, err := s.runner.Cached(ctx, id)
		if err == nil {
			// The runs metric counts actual computations; a result the
			// runner loaded from the persistent store cost a disk read,
			// not a simulation, and shows up in the store counters instead.
			if s.runner.ResultFromStore(id) {
				s.metrics.ExperimentStoreServe()
			} else {
				s.metrics.ExperimentRun(id, res.Elapsed.Seconds())
			}
		}
		return res, err
	}
	if s.saturated() {
		if res, ok := s.staleResult(id); ok {
			// Stale-while-revalidate: the answer comes from disk now, and
			// the real fill is kicked off fire-and-forget (queueing on the
			// semaphore) so a future request finds the entry warm — unless
			// the breaker is open, in which case starting fills is exactly
			// what must stop.
			if s.breaker == nil || !s.breaker.Open() {
				e.start(ctx, s.sem, s.breaker, s.fillBudget, compute)
			}
			s.metrics.StaleServe()
			return res, tierStale, nil
		}
		s.metrics.SaturationReject()
		return nil, tierNone, ErrSaturated
	}
	if err := e.fill(ctx, s.sem, s.breaker, s.fillBudget, compute); err != nil {
		return nil, tierNone, err
	}
	t := tierCompute
	if e.err == nil && s.runner.ResultFromStore(id) {
		t = tierDisk
	}
	return e.res, t, e.err
}

// render returns the wire representation of the experiment in the given
// format plus the tier that satisfied it. Non-degraded representations
// are memoized per format; stale ones are rendered fresh each time (the
// degradation path is the rare case, and memoizing bytes that the
// background revalidation is about to supersede would pin them).
func (s *resultStore) render(ctx context.Context, id string, f Format) (*rendered, tier, error) {
	res, t, err := s.result(ctx, id)
	if err != nil {
		return nil, t, err
	}
	if t == tierStale {
		body, err := renderResult(res, f)
		if err != nil {
			return nil, t, err
		}
		return &rendered{
			body: body,
			// Same derivation as the warm path: the fingerprint excludes
			// Elapsed, so a client revalidating a previously warm response
			// still 304s during degradation.
			etag:        fmt.Sprintf("%q", res.Fingerprint()+"-"+string(f)),
			contentType: f.contentType(),
			stale:       true,
		}, t, nil
	}
	e := s.entry(id)
	e.rmu.Lock()
	defer e.rmu.Unlock()
	if r, ok := e.renders[f]; ok {
		return r, t, nil
	}
	body, err := renderResult(res, f)
	if err != nil {
		return nil, t, err
	}
	r := &rendered{
		body:        body,
		etag:        fmt.Sprintf("%q", res.Fingerprint()+"-"+string(f)),
		contentType: f.contentType(),
	}
	e.renders[f] = r
	return r, t, nil
}

// scenarioStore is the server-side cache for POST /v1/scenarios results,
// keyed by the spec's content fingerprint (normalized, so two request
// bodies that decode to equivalent specs share one entry). Each
// fingerprint computes at most once (singleflight via per-entry
// sync.Once); fills run detached from the triggering request's context
// and hold the scenario semaphore, bounding concurrent scenario
// computations independently of the experiment bound. Rendered
// representations are memoized per format on top of the Result.
type scenarioStore struct {
	runner  *tensortee.Runner
	sem     chan struct{} // bounds concurrent scenario fills; nil = unbounded
	metrics *Metrics

	// breaker observes scenario-fill outcomes alongside the experiment
	// store's: a backend sick enough to fail scenario computations is the
	// same backend the degradation path protects.
	breaker *resilience.Breaker

	mu      sync.Mutex
	entries map[string]*storeEntry
}

func newScenarioStore(r *tensortee.Runner, maxConcurrent int, m *Metrics, br *resilience.Breaker) *scenarioStore {
	var sem chan struct{}
	if maxConcurrent > 0 {
		sem = make(chan struct{}, maxConcurrent)
	}
	return &scenarioStore{
		runner:  r,
		sem:     sem,
		metrics: m,
		breaker: br,
		entries: make(map[string]*storeEntry),
	}
}

// maxScenarioEntries bounds the scenario result cache: the experiment
// store's key space is the 14 registry ids, but scenario fingerprints are
// attacker-controlled, so retention must not grow with distinct specs.
// At the cap, completed entries are dropped wholesale (the cache is
// correctness-neutral; replays recompute) while in-flight fills are kept
// so their waiters and singleflight semantics are undisturbed. The cap is
// hard: when eviction frees nothing — every slot holds an in-flight fill —
// new fingerprints are refused instead of inserted, so neither the map nor
// the detached fill-goroutine count can grow past the cap (fills outlive
// the requests that started them, so without the refusal a client posting
// distinct specs and aborting each request would leak both).
const maxScenarioEntries = 256

// ErrScenarioStoreBusy reports that every scenario-cache slot holds an
// in-flight computation; the caller should answer 503 and have the client
// retry once some fills complete.
var ErrScenarioStoreBusy = errors.New("all scenario computations busy; retry later")

func (s *scenarioStore) entry(fp string) (*storeEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[fp]
	if !ok {
		if len(s.entries) >= maxScenarioEntries {
			for k, old := range s.entries {
				select {
				case <-old.done:
					delete(s.entries, k)
				default: // still filling; keep
				}
			}
			if len(s.entries) >= maxScenarioEntries {
				return nil, ErrScenarioStoreBusy
			}
		}
		e = &storeEntry{done: make(chan struct{}), renders: make(map[Format]*rendered)}
		s.entries[fp] = e
	}
	return e, nil
}

// render returns the cached wire representation of the scenario in the
// given format plus the tier that satisfied it, computing the scenario on
// first request for its fingerprint. The ETag is keyed on the spec
// fingerprint (plus format), so revalidation works across restarts for
// identical specs. Scenario fills feed the circuit breaker (no latency
// budget — scenario cost varies with the spec): invalid specs were
// already rejected with 400 before reaching here, so a failing fill is
// the backend's health, not the client's input.
func (s *scenarioStore) render(ctx context.Context, fp string, spec tensortee.Scenario, f Format) (*rendered, tier, error) {
	e, err := s.entry(fp)
	if err != nil {
		return nil, tierNone, err
	}
	t := tierMemory
	select {
	case <-e.done:
		s.metrics.ScenarioCacheHit()
	default:
		if err := e.fill(ctx, s.sem, s.breaker, 0, func(ctx context.Context) (*tensortee.Result, error) {
			// RunScenarioCached consults the persistent store before
			// computing, which is also what makes the memory cap safe to
			// enforce by wholesale eviction: a persisted entry that was
			// flushed from this map re-admits from disk on its next request
			// instead of recomputing.
			res, fromStore, err := s.runner.RunScenarioCached(ctx, spec)
			if err == nil {
				if fromStore {
					s.metrics.ScenarioStoreServe()
					e.via = tierDisk
				} else {
					s.metrics.ScenarioRun()
					e.via = tierCompute
				}
			}
			return res, err
		}); err != nil {
			return nil, tierNone, err
		}
		if e.via != tierNone {
			t = e.via
		} else {
			t = tierCompute
		}
	}
	rd, err := e.renderScenario(fp, f)
	return rd, t, err
}

// peek returns the completed entry for fp, or nil when the fingerprint
// is unknown, still filling, or failed. It never creates an entry — the
// GET-by-fingerprint path must not consume cache slots (or start fills)
// for attacker-invented fingerprints.
func (s *scenarioStore) peek(fp string) *storeEntry {
	s.mu.Lock()
	e, ok := s.entries[fp]
	s.mu.Unlock()
	if !ok {
		return nil
	}
	select {
	case <-e.done:
		if e.err != nil {
			return nil
		}
		return e
	default:
		return nil
	}
}

// admit installs an already-available result (re-read from the
// persistent store) as a completed entry so subsequent lookups hit
// memory. Best-effort: when the fingerprint raced another fill, or the
// cache is pinned full by in-flight fills, the result is returned as a
// detached completed entry that simply isn't retained.
func (s *scenarioStore) admit(fp string, res *tensortee.Result) *storeEntry {
	detached := func() *storeEntry {
		e := &storeEntry{done: make(chan struct{}), renders: make(map[Format]*rendered)}
		e.res = res
		close(e.done)
		return e
	}
	e, err := s.entry(fp)
	if err != nil {
		return detached()
	}
	e.once.Do(func() {
		e.res = res
		close(e.done)
	})
	select {
	case <-e.done:
		if e.err != nil || e.res == nil {
			return detached()
		}
		return e
	default:
		// An in-flight fill owns the slot; don't wait on it.
		return detached()
	}
}

// renderScenario returns the memoized wire representation of a completed
// entry, rendering it on first use. The entry must be done.
func (e *storeEntry) renderScenario(fp string, f Format) (*rendered, error) {
	if e.err != nil {
		return nil, e.err
	}
	e.rmu.Lock()
	defer e.rmu.Unlock()
	if r, ok := e.renders[f]; ok {
		return r, nil
	}
	body, err := renderResult(e.res, f)
	if err != nil {
		return nil, err
	}
	r := &rendered{
		body:        body,
		etag:        scenarioETag(fp, f),
		contentType: f.contentType(),
	}
	e.renders[f] = r
	return r, nil
}

// scenarioETag is the strong validator for one scenario representation.
// It depends only on the spec fingerprint and the format — not on the
// computed body — so it is known before any computation and stays valid
// across evictions and daemon restarts.
func scenarioETag(fp string, f Format) string {
	return fmt.Sprintf("%q", fp+"-scenario-"+string(f))
}

// fingerprintStrings derives one stable hex digest from a list of tags
// (used to build the /all ETag out of the member ETags).
func fingerprintStrings(ss []string) string {
	h := sha256.New()
	for _, s := range ss {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// renderResult produces the wire body. Elapsed is zeroed first: it is the
// only run-to-run varying field, and a strong ETag (derived from
// Fingerprint, which also excludes it) must label byte-identical bodies —
// including across daemon restarts. Per-experiment compute latency is
// still observable at /metrics.
func renderResult(res *tensortee.Result, f Format) ([]byte, error) {
	clone := *res
	clone.Elapsed = 0
	switch f {
	case FormatJSON:
		return clone.JSON()
	case FormatCSV:
		return []byte(clone.CSV()), nil
	default:
		return []byte(clone.Text()), nil
	}
}
