package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"tensortee/internal/campaign"
	"tensortee/internal/resilience"
	"tensortee/internal/store"
)

// Metrics is the daemon's operational counter set, rendered at /metrics in
// the Prometheus text exposition format. All methods are safe for
// concurrent use.
type Metrics struct {
	requests       atomic.Int64 // every request the daemon saw
	inFlight       atomic.Int64 // requests currently being served
	cacheHits      atomic.Int64 // experiment lookups served from memory
	notModified    atomic.Int64 // 304 responses to If-None-Match revalidations
	errors         atomic.Int64 // 4xx/5xx responses
	scenarioRuns   atomic.Int64 // scenario specs actually computed
	scenarioHits   atomic.Int64 // scenario lookups served from memory
	expStoreServes atomic.Int64 // experiment fills satisfied by the persistent store
	scenStoreServe atomic.Int64 // scenario fills satisfied by the persistent store
	rateAllowed    atomic.Int64 // requests admitted by the rate limiter
	rateRejected   atomic.Int64 // requests answered 429 by the rate limiter
	staleServes    atomic.Int64 // degraded lookups served stale from the persistent store
	satRejects     atomic.Int64 // degraded lookups with nothing persisted (503)

	campaignsStarted   atomic.Int64 // campaigns accepted and launched
	campaignsDone      atomic.Int64 // campaigns run to completion
	campaignsCancelled atomic.Int64 // campaigns cancelled
	campaignComputed   atomic.Int64 // campaign points computed by this process
	campaignRestored   atomic.Int64 // campaign points restored from checkpoints
	campaignFailed     atomic.Int64 // campaign points that exhausted their retries

	// campaignsActive, when set, reports how many campaigns are running
	// for the tensorteed_campaigns_active gauge.
	campaignsActive func() int

	// storeStats, when set, snapshots the persistent store's own counters
	// for the /metrics rendering; nil means persistence is disabled and
	// the store series are omitted entirely.
	storeStats func() store.Stats

	// breakerState, when set, reports the compute circuit breaker's
	// position for the tensorteed_breaker_open gauge.
	breakerState func() resilience.State

	mu  sync.Mutex
	exp map[string]*experimentMetrics
}

// experimentMetrics records one experiment's compute history: how many
// times the daemon actually ran it (1 with the cache working, once per
// request without) and how long the last run took.
type experimentMetrics struct {
	runs           int64
	latencySeconds float64
}

// NewMetrics builds an empty metric set.
func NewMetrics() *Metrics {
	return &Metrics{exp: make(map[string]*experimentMetrics)}
}

// RequestStarted counts a request in; the returned func counts it out.
func (m *Metrics) RequestStarted() (done func()) {
	m.requests.Add(1)
	m.inFlight.Add(1)
	var once sync.Once
	return func() { once.Do(func() { m.inFlight.Add(-1) }) }
}

// CacheHit counts an experiment lookup served from the in-memory result
// store without recomputation.
func (m *Metrics) CacheHit() { m.cacheHits.Add(1) }

// NotModified counts a 304 revalidation response.
func (m *Metrics) NotModified() { m.notModified.Add(1) }

// Error counts a 4xx/5xx response.
func (m *Metrics) Error() { m.errors.Add(1) }

// ScenarioRun counts one actual computation of a scenario spec.
func (m *Metrics) ScenarioRun() { m.scenarioRuns.Add(1) }

// ScenarioCacheHit counts a scenario lookup served from the in-memory
// scenario store without recomputation.
func (m *Metrics) ScenarioCacheHit() { m.scenarioHits.Add(1) }

// ExperimentStoreServe counts an experiment fill satisfied by the
// persistent store (disk or peer) instead of a computation.
func (m *Metrics) ExperimentStoreServe() { m.expStoreServes.Add(1) }

// ScenarioStoreServe counts a scenario fill satisfied by the persistent
// store (disk or peer) instead of a computation.
func (m *Metrics) ScenarioStoreServe() { m.scenStoreServe.Add(1) }

// RatelimitAllowed counts a request the rate limiter admitted.
func (m *Metrics) RatelimitAllowed() { m.rateAllowed.Add(1) }

// RatelimitRejected counts a request the rate limiter answered 429.
func (m *Metrics) RatelimitRejected() { m.rateRejected.Add(1) }

// StaleServe counts a saturated lookup degraded to a stale persisted
// result (200 + Warning) instead of queueing behind compute.
func (m *Metrics) StaleServe() { m.staleServes.Add(1) }

// SaturationReject counts a saturated lookup with nothing persisted to
// degrade to — the 503 + Retry-After tier.
func (m *Metrics) SaturationReject() { m.satRejects.Add(1) }

// SetStoreStats attaches the persistent store's counter snapshot; Render
// emits the tensorteed_store_* series only when this is set.
func (m *Metrics) SetStoreStats(fn func() store.Stats) { m.storeStats = fn }

// SetBreakerState attaches the compute circuit breaker's state probe for
// the tensorteed_breaker_open gauge.
func (m *Metrics) SetBreakerState(fn func() resilience.State) { m.breakerState = fn }

// SetCampaignsActive attaches the campaign manager's running-count probe;
// Render emits the tensorteed_campaign_* series only when this is set.
func (m *Metrics) SetCampaignsActive(fn func() int) { m.campaignsActive = fn }

// ObserveCampaignEvent folds one campaign progress event into the
// counters (the campaign manager's OnEvent hook).
func (m *Metrics) ObserveCampaignEvent(ev campaign.Event) {
	switch ev.Type {
	case campaign.EventStarted:
		m.campaignsStarted.Add(1)
		// Points restored from checkpoints are all accounted at start.
		m.campaignRestored.Add(int64(ev.Restored))
	case campaign.EventPoint:
		switch campaign.PointState(ev.State) {
		case campaign.PointComputed:
			m.campaignComputed.Add(1)
		case campaign.PointFailed:
			m.campaignFailed.Add(1)
		}
	case campaign.EventDone:
		m.campaignsDone.Add(1)
	case campaign.EventCancelled:
		m.campaignsCancelled.Add(1)
	}
}

// ExperimentRun records one actual computation of an experiment.
func (m *Metrics) ExperimentRun(id string, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.exp[id]
	if !ok {
		e = &experimentMetrics{}
		m.exp[id] = e
	}
	e.runs++
	e.latencySeconds = seconds
}

// Render emits the metric set in Prometheus text exposition format, with
// per-experiment series in sorted id order so output is deterministic.
func (m *Metrics) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# TYPE tensorteed_requests_total counter\n")
	fmt.Fprintf(&b, "tensorteed_requests_total %d\n", m.requests.Load())
	fmt.Fprintf(&b, "# TYPE tensorteed_in_flight gauge\n")
	fmt.Fprintf(&b, "tensorteed_in_flight %d\n", m.inFlight.Load())
	fmt.Fprintf(&b, "# TYPE tensorteed_result_cache_hits_total counter\n")
	fmt.Fprintf(&b, "tensorteed_result_cache_hits_total %d\n", m.cacheHits.Load())
	fmt.Fprintf(&b, "# TYPE tensorteed_not_modified_total counter\n")
	fmt.Fprintf(&b, "tensorteed_not_modified_total %d\n", m.notModified.Load())
	fmt.Fprintf(&b, "# TYPE tensorteed_errors_total counter\n")
	fmt.Fprintf(&b, "tensorteed_errors_total %d\n", m.errors.Load())
	fmt.Fprintf(&b, "# TYPE tensorteed_scenario_runs_total counter\n")
	fmt.Fprintf(&b, "tensorteed_scenario_runs_total %d\n", m.scenarioRuns.Load())
	fmt.Fprintf(&b, "# TYPE tensorteed_scenario_cache_hits_total counter\n")
	fmt.Fprintf(&b, "tensorteed_scenario_cache_hits_total %d\n", m.scenarioHits.Load())
	fmt.Fprintf(&b, "# TYPE tensorteed_ratelimit_allowed_total counter\n")
	fmt.Fprintf(&b, "tensorteed_ratelimit_allowed_total %d\n", m.rateAllowed.Load())
	fmt.Fprintf(&b, "# TYPE tensorteed_ratelimit_rejected_total counter\n")
	fmt.Fprintf(&b, "tensorteed_ratelimit_rejected_total %d\n", m.rateRejected.Load())
	fmt.Fprintf(&b, "# TYPE tensorteed_stale_serves_total counter\n")
	fmt.Fprintf(&b, "tensorteed_stale_serves_total %d\n", m.staleServes.Load())
	fmt.Fprintf(&b, "# TYPE tensorteed_saturation_rejects_total counter\n")
	fmt.Fprintf(&b, "tensorteed_saturation_rejects_total %d\n", m.satRejects.Load())
	if m.breakerState != nil {
		open := 0
		if m.breakerState() == resilience.Open {
			open = 1
		}
		fmt.Fprintf(&b, "# TYPE tensorteed_breaker_open gauge\n")
		fmt.Fprintf(&b, "tensorteed_breaker_open %d\n", open)
	}

	if m.campaignsActive != nil {
		fmt.Fprintf(&b, "# TYPE tensorteed_campaigns_active gauge\n")
		fmt.Fprintf(&b, "tensorteed_campaigns_active %d\n", m.campaignsActive())
		fmt.Fprintf(&b, "# TYPE tensorteed_campaigns_started_total counter\n")
		fmt.Fprintf(&b, "tensorteed_campaigns_started_total %d\n", m.campaignsStarted.Load())
		fmt.Fprintf(&b, "# TYPE tensorteed_campaigns_done_total counter\n")
		fmt.Fprintf(&b, "tensorteed_campaigns_done_total %d\n", m.campaignsDone.Load())
		fmt.Fprintf(&b, "# TYPE tensorteed_campaigns_cancelled_total counter\n")
		fmt.Fprintf(&b, "tensorteed_campaigns_cancelled_total %d\n", m.campaignsCancelled.Load())
		fmt.Fprintf(&b, "# TYPE tensorteed_campaign_points_computed_total counter\n")
		fmt.Fprintf(&b, "tensorteed_campaign_points_computed_total %d\n", m.campaignComputed.Load())
		fmt.Fprintf(&b, "# TYPE tensorteed_campaign_points_restored_total counter\n")
		fmt.Fprintf(&b, "tensorteed_campaign_points_restored_total %d\n", m.campaignRestored.Load())
		fmt.Fprintf(&b, "# TYPE tensorteed_campaign_point_failures_total counter\n")
		fmt.Fprintf(&b, "tensorteed_campaign_point_failures_total %d\n", m.campaignFailed.Load())
	}

	if m.storeStats != nil {
		st := m.storeStats()
		fmt.Fprintf(&b, "# TYPE tensorteed_experiment_store_serves_total counter\n")
		fmt.Fprintf(&b, "tensorteed_experiment_store_serves_total %d\n", m.expStoreServes.Load())
		fmt.Fprintf(&b, "# TYPE tensorteed_scenario_store_serves_total counter\n")
		fmt.Fprintf(&b, "tensorteed_scenario_store_serves_total %d\n", m.scenStoreServe.Load())
		fmt.Fprintf(&b, "# TYPE tensorteed_store_disk_hits_total counter\n")
		fmt.Fprintf(&b, "tensorteed_store_disk_hits_total %d\n", st.DiskHits)
		fmt.Fprintf(&b, "# TYPE tensorteed_store_disk_misses_total counter\n")
		fmt.Fprintf(&b, "tensorteed_store_disk_misses_total %d\n", st.DiskMisses)
		fmt.Fprintf(&b, "# TYPE tensorteed_store_corruptions_total counter\n")
		fmt.Fprintf(&b, "tensorteed_store_corruptions_total %d\n", st.Corruptions)
		fmt.Fprintf(&b, "# TYPE tensorteed_store_peer_hits_total counter\n")
		fmt.Fprintf(&b, "tensorteed_store_peer_hits_total %d\n", st.PeerHits)
		fmt.Fprintf(&b, "# TYPE tensorteed_store_peer_misses_total counter\n")
		fmt.Fprintf(&b, "tensorteed_store_peer_misses_total %d\n", st.PeerMisses)
		fmt.Fprintf(&b, "# TYPE tensorteed_store_peer_errors_total counter\n")
		fmt.Fprintf(&b, "tensorteed_store_peer_errors_total %d\n", st.PeerErrors)
		fmt.Fprintf(&b, "# TYPE tensorteed_store_writes_total counter\n")
		fmt.Fprintf(&b, "tensorteed_store_writes_total %d\n", st.Writes)
		fmt.Fprintf(&b, "# TYPE tensorteed_store_write_errors_total counter\n")
		fmt.Fprintf(&b, "tensorteed_store_write_errors_total %d\n", st.WriteErrors)
		fmt.Fprintf(&b, "# TYPE tensorteed_store_evictions_total counter\n")
		fmt.Fprintf(&b, "tensorteed_store_evictions_total %d\n", st.Evictions)
		fmt.Fprintf(&b, "# TYPE tensorteed_store_entries gauge\n")
		fmt.Fprintf(&b, "tensorteed_store_entries %d\n", st.Entries)
		fmt.Fprintf(&b, "# TYPE tensorteed_store_bytes gauge\n")
		fmt.Fprintf(&b, "tensorteed_store_bytes %d\n", st.Bytes)
		degraded := 0
		if st.Degraded {
			degraded = 1
		}
		fmt.Fprintf(&b, "# TYPE tensorteed_store_degraded gauge\n")
		fmt.Fprintf(&b, "tensorteed_store_degraded %d\n", degraded)
		fmt.Fprintf(&b, "# TYPE tensorteed_store_writes_suppressed_total counter\n")
		fmt.Fprintf(&b, "tensorteed_store_writes_suppressed_total %d\n", st.WritesSuppressed)
		fmt.Fprintf(&b, "# TYPE tensorteed_store_peer_skips_total counter\n")
		fmt.Fprintf(&b, "tensorteed_store_peer_skips_total %d\n", st.PeerSkips)
	}

	m.mu.Lock()
	ids := make([]string, 0, len(m.exp))
	for id := range m.exp {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	fmt.Fprintf(&b, "# TYPE tensorteed_experiment_runs_total counter\n")
	for _, id := range ids {
		fmt.Fprintf(&b, "tensorteed_experiment_runs_total{id=%q} %d\n", id, m.exp[id].runs)
	}
	fmt.Fprintf(&b, "# TYPE tensorteed_experiment_latency_seconds gauge\n")
	for _, id := range ids {
		fmt.Fprintf(&b, "tensorteed_experiment_latency_seconds{id=%q} %.6f\n", id, m.exp[id].latencySeconds)
	}
	m.mu.Unlock()
	return b.String()
}
