// Package server implements tensorteed's HTTP API: the paper's experiment
// index and results served over HTTP with in-memory memoization, content
// negotiation, strong ETags, and Prometheus-style metrics.
//
//	GET /v1/experiments              index with paper-artifact metadata (JSON)
//	GET /v1/experiments/{id}         one result (text, json or csv)
//	GET /v1/experiments/all          every result (text, json or csv)
//	GET /v1/scenarios/{fp}           a previously computed scenario by fingerprint
//	POST /v1/campaigns               submit an async multi-axis sweep job
//	GET /v1/campaigns                all campaign statuses (JSON)
//	GET /v1/campaigns/{id}           one campaign status (JSON)
//	GET /v1/campaigns/{id}/events    live progress stream (NDJSON)
//	DELETE /v1/campaigns/{id}        cancel (in-flight points drain)
//	GET /v1/store                    persistent-store statistics (JSON)
//	GET /v1/store/{ns}/{key}         raw store envelope (the peer-replication surface)
//	GET /healthz                     liveness probe
//	GET /metrics                     request/cache/latency counters
//
// The representation is chosen by ?format=text|json|csv, else by the
// Accept header (application/json, text/csv, text/plain), defaulting to
// JSON. Responses carry strong ETags derived from the result's content
// fingerprint; If-None-Match revalidations answer 304.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"tensortee"
	"tensortee/internal/campaign"
	"tensortee/internal/ratelimit"
	"tensortee/internal/resilience"
	"tensortee/internal/store"
)

// Defaults for the compute circuit breaker: five consecutive fill
// failures (errors, panics, or over-budget fills) open it for 30s, during
// which lookups degrade to stale persisted results instead of starting
// fills.
const (
	defaultBreakerThreshold = 5
	defaultBreakerCooldown  = 30 * time.Second
)

// Base Retry-After hints for the shed paths. Both go through
// ratelimit.RetryAfter, which jitters the value so a burst of shed
// clients does not retry in lockstep against a recovering daemon.
// Saturated experiment lookups (nothing persisted) retry on the order of
// a heavy fill (~10s); scenario fills are uncancelable and can run for
// minutes, so their hint is longer.
const (
	saturationRetryAfterBase = 10
	scenarioRetryAfterBase   = 30
)

// cacheTierHeader tells clients (and the request log) which tier
// satisfied a lookup: memory, disk, compute, or stale.
const cacheTierHeader = "X-Cache"

// Config sizes a Server.
type Config struct {
	// Runner executes and memoizes experiments (nil builds a default one).
	Runner *tensortee.Runner
	// MaxConcurrent bounds concurrent experiment computations: a burst of
	// cold requests queues behind the bound instead of thrashing system
	// calibration. 0 means unbounded. When every slot is busy, cold
	// lookups degrade (stale persisted result, else 503) instead of
	// queueing.
	MaxConcurrent int
	// MaxConcurrentScenarios bounds concurrent scenario computations
	// (POST /v1/scenarios). Scenarios calibrate fresh systems per distinct
	// override set, so an unbounded burst of cold specs is the daemon's
	// most expensive request shape. 0 means unbounded.
	MaxConcurrentScenarios int
	// RateLimit grants each client this many requests per second (token
	// bucket, burst RateBurst). 0 disables rate limiting.
	RateLimit float64
	// RateBurst is the per-client bucket size; 0 derives 2×RateLimit
	// (minimum 1).
	RateBurst int
	// TrustedProxies is how many trusted reverse proxies sit in front of
	// the daemon: 0 keys clients by TCP peer address; N > 0 trusts the
	// last N X-Forwarded-For hops and keys by the address they vouch for.
	TrustedProxies int
	// Log, when non-nil, receives one structured record per request
	// (method, path, status, bytes, duration, client, cache tier).
	Log *slog.Logger
	// Breaker overrides the default compute circuit breaker (tests trip
	// it deliberately; nil builds the default).
	Breaker *resilience.Breaker
	// FillBudget marks experiment fills slower than this as breaker
	// failures even when they succeed. 0 disables the latency check —
	// cold heavy figures legitimately take tens of seconds.
	FillBudget time.Duration
	// CampaignWorkers bounds concurrent campaign point computations
	// (POST /v1/campaigns); 0 means the campaign manager's default.
	CampaignWorkers int
	// CampaignRetries is how many times a failed campaign point is
	// retried before it is marked failed; 0 means no retries.
	CampaignRetries int
}

// Server is the tensorteed HTTP API. Build with New, mount with Handler.
type Server struct {
	runner         *tensortee.Runner
	store          *resultStore
	scenarios      *scenarioStore
	campaigns      *campaign.Manager
	metrics        *Metrics
	limiter        *ratelimit.Limiter // nil when rate limiting is disabled
	trustedProxies int
	log            *slog.Logger // nil when request logging is disabled
	index          []tensortee.ExperimentInfo
	known          map[string]bool
	mux            *http.ServeMux
}

// New builds a Server around the runner. When the runner carries a
// persistent store (tensortee.WithStore), the server additionally serves
// the store surface: /v1/store statistics, the raw-envelope peer
// endpoint, and scenario lookups by fingerprint that survive both
// memory eviction and daemon restarts.
func New(cfg Config) *Server {
	r := cfg.Runner
	if r == nil {
		r = tensortee.NewRunner()
	}
	m := NewMetrics()
	if st := r.Store(); st != nil {
		m.SetStoreStats(st.Stats)
	}
	br := cfg.Breaker
	if br == nil {
		br = resilience.New(defaultBreakerThreshold, defaultBreakerCooldown)
	}
	m.SetBreakerState(br.State)
	mgr := campaign.NewManager(campaign.Config{
		// Campaign points run through the same cached scenario pipeline as
		// POST /v1/scenarios, so a point whose fingerprint is already
		// persisted (from an earlier scenario, or a sibling campaign) is
		// restored rather than recomputed.
		Run: func(ctx context.Context, spec tensortee.Scenario) ([]byte, error) {
			res, _, err := r.RunScenarioCached(ctx, spec)
			if err != nil {
				return nil, err
			}
			return res.EncodeStored()
		},
		// Search campaigns read their objective back out of the same
		// checkpoint payloads the points persist.
		Measure: func(payload []byte) (campaign.Measurement, error) {
			sp, total, err := tensortee.StoredMeasurement(payload)
			if err != nil {
				return campaign.Measurement{}, err
			}
			return campaign.Measurement{Speedup: sp, TotalSeconds: total}, nil
		},
		Store:   r.Store(),
		Workers: cfg.CampaignWorkers,
		Retries: cfg.CampaignRetries,
		Breaker: br,
		OnEvent: m.ObserveCampaignEvent,
	})
	m.SetCampaignsActive(mgr.Active)
	s := &Server{
		runner:         r,
		store:          newResultStore(r, cfg.MaxConcurrent, m, br, cfg.FillBudget),
		scenarios:      newScenarioStore(r, cfg.MaxConcurrentScenarios, m, br),
		campaigns:      mgr,
		metrics:        m,
		trustedProxies: cfg.TrustedProxies,
		log:            cfg.Log,
		index:          tensortee.Experiments(),
		known:          make(map[string]bool),
	}
	if cfg.RateLimit > 0 {
		burst := cfg.RateBurst
		if burst <= 0 {
			burst = int(math.Ceil(cfg.RateLimit)) * 2
		}
		s.limiter = ratelimit.New(cfg.RateLimit, burst)
	}
	for _, e := range s.index {
		s.known[e.ID] = true
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/experiments", s.handleIndex)
	mux.HandleFunc("GET /v1/experiments/{$}", s.handleIndex)
	mux.HandleFunc("GET /v1/experiments/all", s.handleAll)
	mux.HandleFunc("GET /v1/experiments/{id}", s.handleExperiment)
	mux.HandleFunc("POST /v1/scenarios", s.handleScenario)
	mux.HandleFunc("GET /v1/scenarios/{fingerprint}", s.handleScenarioLookup)
	mux.HandleFunc("POST /v1/campaigns", s.handleCampaignCreate)
	mux.HandleFunc("GET /v1/campaigns", s.handleCampaignList)
	mux.HandleFunc("GET /v1/campaigns/{$}", s.handleCampaignList)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleCampaignStatus)
	mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleCampaignEvents)
	mux.HandleFunc("DELETE /v1/campaigns/{id}", s.handleCampaignCancel)
	mux.HandleFunc("GET /v1/store", s.handleStoreStats)
	mux.HandleFunc("GET /v1/store/{$}", s.handleStoreStats)
	mux.HandleFunc("GET /v1/store/{ns}/{key}", s.handleStoreEntry)
	s.mux = mux
	return s
}

// Campaigns exposes the server's campaign manager so the daemon can
// resume stored campaigns at boot and drain the manager at shutdown.
func (s *Server) Campaigns() *campaign.Manager {
	return s.campaigns
}

// Handler returns the fully-instrumented HTTP handler. Middleware order,
// outermost first: request logging (sees everything, including 429s),
// request metrics (rate-limited requests count in requests/errors too),
// rate limiting, then the routing mux.
func (s *Server) Handler() http.Handler {
	h := http.Handler(s.mux)
	if s.limiter != nil {
		h = ratelimit.Middleware(h, s.limiter, s.rateKey, func(allowed bool) {
			if allowed {
				s.metrics.RatelimitAllowed()
			} else {
				s.metrics.RatelimitRejected()
			}
		})
	}
	h = s.instrument(h)
	if s.log != nil {
		h = s.logRequests(h)
	}
	return h
}

// rateKey buckets requests by client address for the limiter. Liveness
// and metrics probes are exempt (empty key): they are needed most while
// clients are being shed.
func (s *Server) rateKey(r *http.Request) string {
	switch r.URL.Path {
	case "/healthz", "/metrics":
		return ""
	}
	return ratelimit.ClientKey(r, s.trustedProxies)
}

// Metrics exposes the server's counters (the /metrics endpoint renders
// the same set).
func (s *Server) Metrics() *Metrics { return s.metrics }

// statusRecorder captures the response code and body size for the
// request metrics and the request log.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// instrument wraps h with the request/in-flight/error counters.
func (s *Server) instrument(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		done := s.metrics.RequestStarted()
		defer done()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h.ServeHTTP(rec, r)
		if rec.code >= 400 {
			s.metrics.Error()
		}
	})
}

// logRequests emits one structured record per request. The cache tier is
// read back from the response header the handlers set, so the log shows
// whether a lookup hit memory, disk, compute, or the degraded stale path
// without threading state through every handler.
func (s *Server) logRequests(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h.ServeHTTP(rec, r)
		s.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", rec.code),
			slog.Int64("bytes", rec.bytes),
			slog.Duration("duration", time.Since(start)),
			slog.String("client", ratelimit.ClientKey(r, s.trustedProxies)),
			slog.String("cache", w.Header().Get(cacheTierHeader)),
		)
	})
}

// setCacheTier labels the response with the tier that satisfied it.
func setCacheTier(w http.ResponseWriter, t tier) {
	if t != tierNone {
		w.Header().Set(cacheTierHeader, string(t))
	}
}

// handleHealthz is the liveness probe. It always answers 200 — a daemon
// on a failing disk is alive and still serves warm reads — but it names
// the store's health so orchestration and the chaos smoke can see
// degraded read-only mode without parsing /metrics.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
	if st := s.runner.Store(); st != nil {
		if st.Degraded() {
			fmt.Fprintln(w, "store: degraded")
		} else {
			fmt.Fprintln(w, "store: ok")
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, s.metrics.Render())
}

// indexEntry is one /v1/experiments row: the shared paper-artifact
// metadata plus the resource URL.
type indexEntry struct {
	tensortee.ExperimentInfo
	URL string `json:"url"`
}

func (s *Server) handleIndex(w http.ResponseWriter, _ *http.Request) {
	entries := make([]indexEntry, len(s.index))
	for i, e := range s.index {
		entries[i] = indexEntry{ExperimentInfo: e, URL: "/v1/experiments/" + e.ID}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]any{
		"experiments": entries,
		"count":       len(entries),
	})
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.known[id] {
		http.Error(w, fmt.Sprintf("unknown experiment %q", id), http.StatusNotFound)
		return
	}
	f, err := negotiate(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rd, t, err := s.store.render(r.Context(), id, f)
	if err != nil {
		if errors.Is(err, ErrSaturated) {
			w.Header().Set("Retry-After", ratelimit.RetryAfter(saturationRetryAfterBase))
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	setCacheTier(w, t)
	s.serve(w, r, rd)
}

func (s *Server) handleAll(w http.ResponseWriter, r *http.Request) {
	f, err := negotiate(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Fan the fills out; the store's semaphore bounds actual concurrency
	// and each id still computes at most once.
	type outcome struct {
		rd  *rendered
		t   tier
		err error
	}
	outcomes := make([]outcome, len(s.index))
	doneCh := make(chan int, len(s.index))
	for i, e := range s.index {
		go func(i int, id string) {
			rd, t, err := s.store.render(r.Context(), id, f)
			outcomes[i] = outcome{rd, t, err}
			doneCh <- i
		}(i, e.ID)
	}
	for range s.index {
		<-doneCh
	}
	var bodies [][]byte
	var tags []string
	agg := tierNone
	stale := false
	for i, o := range outcomes {
		if o.err != nil {
			if errors.Is(o.err, ErrSaturated) {
				// The aggregate can only be complete if every member can be
				// served; one unservable member degrades the whole response.
				w.Header().Set("Retry-After", ratelimit.RetryAfter(saturationRetryAfterBase))
				http.Error(w, fmt.Sprintf("experiment %s: %v", s.index[i].ID, o.err), http.StatusServiceUnavailable)
				return
			}
			http.Error(w, fmt.Sprintf("experiment %s: %v", s.index[i].ID, o.err), http.StatusInternalServerError)
			return
		}
		bodies = append(bodies, o.rd.body)
		tags = append(tags, o.rd.etag)
		agg = agg.worse(o.t)
		stale = stale || o.rd.stale
	}
	rd := combine(bodies, tags, f)
	rd.stale = stale
	setCacheTier(w, agg)
	s.serve(w, r, rd)
}

// maxScenarioBody bounds POST /v1/scenarios request bodies: specs are a
// few hundred bytes; anything near the cap is hostile or confused.
const maxScenarioBody = 1 << 20

// handleScenario runs a declarative custom scenario:
//
//	POST /v1/scenarios
//	{"model": {"name": "LLAMA2-7B"}, "systems": [{"kind": "tensortee"}],
//	 "sweep": {"axis": "meta_cache_kb", "values": [64, 128, 256]}}
//
// Results are cached by the spec's normalized content fingerprint — two
// bodies that decode to equivalent specs share one computation — and
// served with a strong ETag derived from that fingerprint, so clients
// replaying a spec can revalidate with If-None-Match and get 304 without
// a body. Invalid specs (unknown model, bad sweep bounds,
// calibration-breaking overrides) answer 400 with the validation error.
func (s *Server) handleScenario(w http.ResponseWriter, r *http.Request) {
	f, err := negotiate(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var spec tensortee.Scenario
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxScenarioBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		// An over-limit body surfaces from Decode as the reader's
		// MaxBytesError; that is the client sending too much, not sending
		// malformed JSON, and gets the status that says so.
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("scenario spec exceeds the %d-byte limit", maxScenarioBody),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, fmt.Sprintf("decoding scenario spec: %v", err), http.StatusBadRequest)
		return
	}
	if err := spec.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	fp := spec.Fingerprint()
	// The ETag is determined by the normalized spec alone, so a matching
	// If-None-Match answers 304 without computing anything — in particular
	// without recomputing a scenario the bounded store evicted (or one
	// never computed by this process: the tag survives restarts).
	if etag := scenarioETag(fp, f); etagMatches(r.Header.Get("If-None-Match"), etag) {
		s.serve(w, r, &rendered{etag: etag, contentType: f.contentType()})
		return
	}
	rd, t, err := s.scenarios.render(r.Context(), fp, spec, f)
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, tensortee.ErrInvalidScenario):
			status = http.StatusBadRequest
		case errors.Is(err, ErrScenarioStoreBusy):
			// Degrade before shedding: an identical spec computed by an
			// earlier process sharing -store-dir serves stale from disk.
			if srd := s.staleScenario(fp, f); srd != nil {
				s.metrics.StaleServe()
				setCacheTier(w, tierStale)
				s.serve(w, r, srd)
				return
			}
			status = http.StatusServiceUnavailable
			// Fills are uncancelable and can run for minutes; steer
			// well-behaved clients away from a per-second retry storm.
			w.Header().Set("Retry-After", ratelimit.RetryAfter(scenarioRetryAfterBase))
		}
		http.Error(w, err.Error(), status)
		return
	}
	setCacheTier(w, t)
	s.serve(w, r, rd)
}

// staleScenario reads the last persisted result for a scenario
// fingerprint straight from local disk — the degradation twin of
// resultStore.staleResult. Nil when persistence is off or the store has
// nothing usable.
func (s *Server) staleScenario(fp string, f Format) *rendered {
	st := s.runner.Store()
	if st == nil {
		return nil
	}
	b, ok := st.Get(store.Scenarios, fp)
	if !ok {
		return nil
	}
	res, err := tensortee.DecodeStoredResult(b)
	if err != nil {
		return nil
	}
	body, err := renderResult(res, f)
	if err != nil {
		return nil
	}
	return &rendered{
		body:        body,
		etag:        scenarioETag(fp, f),
		contentType: f.contentType(),
		stale:       true,
	}
}

// handleScenarioLookup serves a previously computed scenario by its
// normalized spec fingerprint (the value clients learn from the POST
// response's ETag):
//
//	GET /v1/scenarios/{fingerprint}
//
// The lookup tiers mirror the write path: the in-memory scenario store
// first, then the persistent store (disk, then peers) — so a scenario
// evicted from memory, or computed by an earlier daemon process sharing
// the same -store-dir, is re-admitted and served without recomputation.
// A fingerprint found nowhere answers 404: this endpoint never computes
// (fingerprints are not invertible to specs, so it could not). ETags and
// If-None-Match behave exactly as on the POST route.
func (s *Server) handleScenarioLookup(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fingerprint")
	f, err := negotiate(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// A matching validator proves the client already holds this
	// representation (the tag embeds the fingerprint), so answer 304
	// before touching either store tier.
	if etag := scenarioETag(fp, f); etagMatches(r.Header.Get("If-None-Match"), etag) {
		s.serve(w, r, &rendered{etag: etag, contentType: f.contentType()})
		return
	}
	if e := s.scenarios.peek(fp); e != nil {
		rd, err := e.renderScenario(fp, f)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		s.metrics.ScenarioCacheHit()
		setCacheTier(w, tierMemory)
		s.serve(w, r, rd)
		return
	}
	if st := s.runner.Store(); st != nil {
		if b, ok := st.GetOrFetch(r.Context(), store.Scenarios, fp); ok {
			if res, err := tensortee.DecodeStoredResult(b); err == nil {
				e := s.scenarios.admit(fp, res)
				rd, err := e.renderScenario(fp, f)
				if err != nil {
					http.Error(w, err.Error(), http.StatusInternalServerError)
					return
				}
				s.metrics.ScenarioStoreServe()
				setCacheTier(w, tierDisk)
				s.serve(w, r, rd)
				return
			}
		}
	}
	http.Error(w, fmt.Sprintf("no stored result for scenario fingerprint %q", fp), http.StatusNotFound)
}

// handleStoreStats reports the persistent store's counters as JSON —
// the humans-and-scripts view; Prometheus scrapers get the same numbers
// at /metrics.
func (s *Server) handleStoreStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	st := s.runner.Store()
	if st == nil {
		_ = enc.Encode(map[string]any{"enabled": false})
		return
	}
	_ = enc.Encode(map[string]any{
		"enabled":   true,
		"dir":       st.Dir(),
		"build_tag": store.BuildTag(),
		"stats":     st.Stats(),
	})
}

// handleStoreEntry is the peer-replication surface: it serves the raw,
// checksum-verified envelope for one entry straight from disk. It never
// computes — a fingerprint this replica hasn't materialized is a plain
// 404, which is what lets replicas probe each other on miss without any
// risk of recursive or duplicated computation. The bytes are the
// envelope (header line + payload), not the payload: the fetching side
// re-verifies the checksum and build tag itself rather than trusting the
// network.
func (s *Server) handleStoreEntry(w http.ResponseWriter, r *http.Request) {
	st := s.runner.Store()
	if st == nil {
		http.Error(w, "persistent store disabled", http.StatusNotFound)
		return
	}
	ns := store.Namespace(r.PathValue("ns"))
	raw, ok := st.ReadRaw(ns, r.PathValue("key"))
	if !ok {
		http.Error(w, "no such store entry", http.StatusNotFound)
		return
	}
	h := w.Header()
	// The envelope header already carries the payload checksum; reusing it
	// as the validator means a replica re-probing an entry it has fetched
	// before pays a 304, not the body — and no re-hash here.
	if etag := envelopeETag(raw); etag != "" {
		h.Set("ETag", etag)
		if etagMatches(r.Header.Get("If-None-Match"), etag) {
			s.metrics.NotModified()
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	h.Set("Content-Type", "application/octet-stream")
	// Explicit so peer probes can pre-size their read buffers instead of
	// growing through chunked reads.
	h.Set("Content-Length", strconv.Itoa(len(raw)))
	// no-cache (not no-store): with the checksum ETag above, a proxy may
	// keep the bytes as long as it revalidates — a stale build still
	// revalidates to a different checksum and re-fetches.
	h.Set("Cache-Control", "no-cache")
	_, _ = w.Write(raw)
}

// envelopeETag derives the strong validator for a raw store envelope from
// the sha256 field its header line already carries. Empty when the header
// is not the expected six-field shape (ReadRaw validated it, so this is
// pure defense).
func envelopeETag(raw []byte) string {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return ""
	}
	fields := strings.Fields(string(raw[:nl]))
	if len(fields) != 6 {
		return ""
	}
	return `"` + fields[4] + `"`
}

// combine aggregates per-experiment representations into the /all body:
// JSON becomes one array document, text and CSV concatenate, and the ETag
// is derived from the per-experiment ETags so it stays stable exactly
// when every member representation is.
func combine(bodies [][]byte, tags []string, f Format) *rendered {
	var b strings.Builder
	if f == FormatJSON {
		b.WriteString("[\n")
		for i, body := range bodies {
			if i > 0 {
				b.WriteString(",\n")
			}
			b.Write(body)
		}
		b.WriteString("\n]\n")
	} else {
		for _, body := range bodies {
			b.Write(body)
			if len(body) > 0 && body[len(body)-1] != '\n' {
				b.WriteByte('\n')
			}
		}
	}
	return &rendered{
		body:        []byte(b.String()),
		etag:        fmt.Sprintf("%q", fingerprintStrings(tags)+"-all-"+string(f)),
		contentType: f.contentType(),
	}
}

// serve writes one cached representation, answering conditional requests
// with 304 when the client's validator still matches. Stale (degraded)
// representations carry the RFC 7234 staleness warning; large bodies are
// gzipped when the client accepts it.
func (s *Server) serve(w http.ResponseWriter, r *http.Request, rd *rendered) {
	h := w.Header()
	h.Set("ETag", rd.etag)
	h.Set("Content-Type", rd.contentType)
	h.Set("Cache-Control", "no-cache") // serve from cache only after revalidation
	// The representation is negotiated from the Accept header (absent an
	// explicit ?format=) and from Accept-Encoding, so intermediaries must
	// key cached responses on both: without Vary, a shared cache could
	// satisfy an Accept: text/csv request with a previously cached JSON
	// body under the same URL (the ETags are representation-specific, but
	// a cache only consults them on revalidation, not on a fresh-enough
	// hit), or hand a gzip body to a client that cannot decode it.
	h.Set("Vary", "Accept, Accept-Encoding")
	if rd.stale {
		h.Set("Warning", `110 - "response is stale: compute saturated, served from the persistent store"`)
	}
	if etagMatches(r.Header.Get("If-None-Match"), rd.etag) {
		s.metrics.NotModified()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	body := rd.body
	if len(body) >= gzipMinSize && acceptsGzip(r) {
		if gz := rd.gzipBody(); gz != nil {
			h.Set("Content-Encoding", "gzip")
			body = gz
		}
	}
	// Explicit length: clients pre-size buffers and see truncation.
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.Write(body)
}

// etagMatches reports whether any member of an If-None-Match header
// matches the given strong ETag ("*" matches everything; weak validators
// compare by opaque tag).
func etagMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, c := range strings.Split(header, ",") {
		c = strings.TrimSpace(c)
		c = strings.TrimPrefix(c, "W/")
		if c == "*" || c == etag {
			return true
		}
	}
	return false
}

// errUnknownFormat rejects ?format= values outside text|json|csv.
var errUnknownFormat = errors.New(`unknown format (want "text", "json" or "csv")`)

// negotiate picks the response representation: an explicit ?format= wins,
// else the first recognized media type in the Accept header, else JSON.
func negotiate(r *http.Request) (Format, error) {
	if q := r.URL.Query().Get("format"); q != "" {
		switch q {
		case "text", "txt":
			return FormatText, nil
		case "json":
			return FormatJSON, nil
		case "csv":
			return FormatCSV, nil
		default:
			return "", fmt.Errorf("%w: %q", errUnknownFormat, q)
		}
	}
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mt := strings.TrimSpace(strings.SplitN(part, ";", 2)[0])
		switch mt {
		case "application/json", "application/*":
			return FormatJSON, nil
		case "text/csv":
			return FormatCSV, nil
		case "text/plain", "text/*":
			return FormatText, nil
		case "*/*":
			return FormatJSON, nil
		}
	}
	return FormatJSON, nil
}
