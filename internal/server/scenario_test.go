package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"tensortee"
)

// tinySpec is a cheap scenario body: a small custom model on the
// non-secure system, so the only cost is one mode-off calibration shared
// across the test server's Runner.
const tinySpec = `{
  "name": "srv-smoke",
  "model": {"layers": 1, "hidden": 128, "heads": 2, "batch": 1, "seqlen": 64},
  "systems": [{"kind": "non-secure"}],
  "metrics": ["total"]
}`

func post(t *testing.T, url, body string, hdr map[string]string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

func TestScenarioEndpointComputesAndCaches(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario computation calibrates a system")
	}
	_, ts := newTestServer(t, 0)
	url := ts.URL + "/v1/scenarios"

	resp, body := post(t, url, tinySpec, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(body, `"id": "scenario:srv-smoke"`) {
		t.Errorf("body missing scenario id:\n%.300s", body)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("missing ETag")
	}

	// The same spec again is a cache hit with the same ETag and body.
	resp2, body2 := post(t, url, tinySpec, nil)
	if resp2.StatusCode != http.StatusOK || body2 != body {
		t.Errorf("replay status = %d, body match = %v", resp2.StatusCode, body2 == body)
	}
	if got := resp2.Header.Get("ETag"); got != etag {
		t.Errorf("replay ETag = %q, want %q", got, etag)
	}

	// A spelling-variant of the same spec (different key order, explicit
	// default) normalizes to the same fingerprint and hits too.
	variant := `{"model": {"seqlen": 64, "heads": 2, "hidden": 128, "layers": 1, "batch": 1},
	             "metrics": ["TOTAL"], "systems": [{"kind": "Non-Secure"}], "name": "srv-smoke"}`
	resp3, _ := post(t, url, variant, nil)
	if got := resp3.Header.Get("ETag"); got != etag {
		t.Errorf("variant ETag = %q, want %q", got, etag)
	}

	// If-None-Match with the spec-fingerprint ETag answers 304, no body.
	resp4, body4 := post(t, url, tinySpec, map[string]string{"If-None-Match": etag})
	if resp4.StatusCode != http.StatusNotModified {
		t.Errorf("revalidation status = %d, want 304", resp4.StatusCode)
	}
	if body4 != "" {
		t.Errorf("304 carried a body: %q", body4)
	}

	// The cache behavior is observable in /metrics: one computation,
	// several hits.
	_, metrics := get(t, ts.URL+"/metrics", nil)
	if !strings.Contains(metrics, "tensorteed_scenario_runs_total 1") {
		t.Errorf("scenario did not compute exactly once:\n%s", metrics)
	}
	if !strings.Contains(metrics, "tensorteed_scenario_cache_hits_total 3") {
		t.Errorf("scenario hits not counted:\n%s", metrics)
	}
	if !strings.Contains(metrics, "tensorteed_not_modified_total 1") {
		t.Errorf("scenario 304 not counted:\n%s", metrics)
	}
}

func TestScenarioEndpointFormats(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario computation calibrates a system")
	}
	_, ts := newTestServer(t, 0)
	url := ts.URL + "/v1/scenarios"

	respText, bodyText := post(t, url+"?format=text", tinySpec, nil)
	if ct := respText.Header.Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Errorf("text Content-Type = %q", ct)
	}
	if !strings.Contains(bodyText, "=== scenario:srv-smoke:") {
		t.Errorf("text body:\n%.300s", bodyText)
	}
	respCSV, bodyCSV := post(t, url, tinySpec, map[string]string{"Accept": "text/csv"})
	if ct := respCSV.Header.Get("Content-Type"); ct != "text/csv; charset=utf-8" {
		t.Errorf("csv Content-Type = %q", ct)
	}
	if !strings.HasPrefix(bodyCSV, "table,") {
		t.Errorf("csv body:\n%.200s", bodyCSV)
	}
	if respText.Header.Get("ETag") == respCSV.Header.Get("ETag") {
		t.Error("text and csv share an ETag")
	}
}

func TestScenarioEndpointRejectsBadSpecs(t *testing.T) {
	_, ts := newTestServer(t, 0)
	url := ts.URL + "/v1/scenarios"
	cases := []struct {
		name, body, wantFrag string
	}{
		{"malformed json", `{"model":`, "decoding scenario spec"},
		{"unknown field", `{"modle": {"name": "GPT2-M"}}`, "unknown field"},
		{"unknown model", `{"model": {"name": "GPT-9000"}, "systems": [{"kind": "tensortee"}]}`, "unknown model"},
		{"no systems", `{"model": {"name": "GPT2-M"}}`, "no systems"},
		{"bad sweep", `{"model": {"name": "GPT2-M"}, "systems": [{"kind": "tensortee"}],
		                "sweep": {"axis": "hidden", "values": [-4]}}`, "invalid sweep"},
		{"unsafe override", `{"model": {"name": "GPT2-M"},
		                "systems": [{"kind": "tensortee", "overrides": {"region_mb": 4}}]}`, "break calibration"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, url, tc.body, nil)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status = %d, want 400 (%s)", resp.StatusCode, body)
			}
			if !strings.Contains(body, tc.wantFrag) {
				t.Errorf("body %q missing %q", body, tc.wantFrag)
			}
		})
	}
	// GET on the scenario endpoint is not a thing.
	resp, _ := get(t, url, nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/scenarios = %d, want 405", resp.StatusCode)
	}
}

func TestScenarioConcurrentSameSpecComputesOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario computation calibrates a system")
	}
	s := New(Config{Runner: tensortee.NewRunner(), MaxConcurrentScenarios: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	const n = 6
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/scenarios", "application/json", strings.NewReader(tinySpec))
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	_, metrics := get(t, ts.URL+"/metrics", nil)
	if !strings.Contains(metrics, "tensorteed_scenario_runs_total 1") {
		t.Errorf("concurrent identical specs computed more than once:\n%s", metrics)
	}
}
