package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"tensortee"
)

// tinySpec is a cheap scenario body: a small custom model on the
// non-secure system, so the only cost is one mode-off calibration shared
// across the test server's Runner.
const tinySpec = `{
  "name": "srv-smoke",
  "model": {"layers": 1, "hidden": 128, "heads": 2, "batch": 1, "seqlen": 64},
  "systems": [{"kind": "non-secure"}],
  "metrics": ["total"]
}`

func post(t *testing.T, url, body string, hdr map[string]string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

func TestScenarioEndpointComputesAndCaches(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario computation calibrates a system")
	}
	_, ts := newTestServer(t, 0)
	url := ts.URL + "/v1/scenarios"

	resp, body := post(t, url, tinySpec, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(body, `"id": "scenario:srv-smoke"`) {
		t.Errorf("body missing scenario id:\n%.300s", body)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("missing ETag")
	}

	// The same spec again is a cache hit with the same ETag and body.
	resp2, body2 := post(t, url, tinySpec, nil)
	if resp2.StatusCode != http.StatusOK || body2 != body {
		t.Errorf("replay status = %d, body match = %v", resp2.StatusCode, body2 == body)
	}
	if got := resp2.Header.Get("ETag"); got != etag {
		t.Errorf("replay ETag = %q, want %q", got, etag)
	}

	// A spelling-variant of the same spec (different key order, explicit
	// default) normalizes to the same fingerprint and hits too.
	variant := `{"model": {"seqlen": 64, "heads": 2, "hidden": 128, "layers": 1, "batch": 1},
	             "metrics": ["TOTAL"], "systems": [{"kind": "Non-Secure"}], "name": "srv-smoke"}`
	resp3, _ := post(t, url, variant, nil)
	if got := resp3.Header.Get("ETag"); got != etag {
		t.Errorf("variant ETag = %q, want %q", got, etag)
	}

	// If-None-Match with the spec-fingerprint ETag answers 304, no body —
	// and without touching the store (the tag is derived from the spec
	// alone), so it does not count as a cache hit.
	resp4, body4 := post(t, url, tinySpec, map[string]string{"If-None-Match": etag})
	if resp4.StatusCode != http.StatusNotModified {
		t.Errorf("revalidation status = %d, want 304", resp4.StatusCode)
	}
	if body4 != "" {
		t.Errorf("304 carried a body: %q", body4)
	}

	// The cache behavior is observable in /metrics: one computation, two
	// hits (the replay and the variant), one revalidation.
	_, metrics := get(t, ts.URL+"/metrics", nil)
	if !strings.Contains(metrics, "tensorteed_scenario_runs_total 1") {
		t.Errorf("scenario did not compute exactly once:\n%s", metrics)
	}
	if !strings.Contains(metrics, "tensorteed_scenario_cache_hits_total 2") {
		t.Errorf("scenario hits not counted:\n%s", metrics)
	}
	if !strings.Contains(metrics, "tensorteed_not_modified_total 1") {
		t.Errorf("scenario 304 not counted:\n%s", metrics)
	}
}

func TestScenarioRevalidationSkipsComputation(t *testing.T) {
	// The scenario ETag is determined by the spec fingerprint and format
	// alone, so a client revalidating a spec this process never computed
	// (evicted entry, daemon restart) gets its 304 for free.
	_, ts := newTestServer(t, 0)
	var spec tensortee.Scenario
	if err := json.Unmarshal([]byte(tinySpec), &spec); err != nil {
		t.Fatal(err)
	}
	etag := scenarioETag(spec.Fingerprint(), FormatJSON)
	resp, body := post(t, ts.URL+"/v1/scenarios", tinySpec, map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("status = %d (%s), want 304", resp.StatusCode, body)
	}
	if got := resp.Header.Get("ETag"); got != etag {
		t.Errorf("ETag = %q, want %q", got, etag)
	}
	_, metrics := get(t, ts.URL+"/metrics", nil)
	if !strings.Contains(metrics, "tensorteed_scenario_runs_total 0") {
		t.Errorf("revalidation triggered a computation:\n%s", metrics)
	}
}

func TestScenarioEndpointFormats(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario computation calibrates a system")
	}
	_, ts := newTestServer(t, 0)
	url := ts.URL + "/v1/scenarios"

	respText, bodyText := post(t, url+"?format=text", tinySpec, nil)
	if ct := respText.Header.Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Errorf("text Content-Type = %q", ct)
	}
	if !strings.Contains(bodyText, "=== scenario:srv-smoke:") {
		t.Errorf("text body:\n%.300s", bodyText)
	}
	respCSV, bodyCSV := post(t, url, tinySpec, map[string]string{"Accept": "text/csv"})
	if ct := respCSV.Header.Get("Content-Type"); ct != "text/csv; charset=utf-8" {
		t.Errorf("csv Content-Type = %q", ct)
	}
	if !strings.HasPrefix(bodyCSV, "table,") {
		t.Errorf("csv body:\n%.200s", bodyCSV)
	}
	if respText.Header.Get("ETag") == respCSV.Header.Get("ETag") {
		t.Error("text and csv share an ETag")
	}
}

func TestScenarioEndpointRejectsBadSpecs(t *testing.T) {
	_, ts := newTestServer(t, 0)
	url := ts.URL + "/v1/scenarios"
	cases := []struct {
		name, body, wantFrag string
	}{
		{"malformed json", `{"model":`, "decoding scenario spec"},
		{"unknown field", `{"modle": {"name": "GPT2-M"}}`, "unknown field"},
		{"unknown model", `{"model": {"name": "GPT-9000"}, "systems": [{"kind": "tensortee"}]}`, "unknown model"},
		{"no systems", `{"model": {"name": "GPT2-M"}}`, "no systems"},
		{"bad sweep", `{"model": {"name": "GPT2-M"}, "systems": [{"kind": "tensortee"}],
		                "sweep": {"axis": "hidden", "values": [-4]}}`, "invalid sweep"},
		{"unsafe override", `{"model": {"name": "GPT2-M"},
		                "systems": [{"kind": "tensortee", "overrides": {"region_mb": 4}}]}`, "break calibration"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, url, tc.body, nil)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status = %d, want 400 (%s)", resp.StatusCode, body)
			}
			if !strings.Contains(body, tc.wantFrag) {
				t.Errorf("body %q missing %q", body, tc.wantFrag)
			}
		})
	}
	// GET on the scenario endpoint is not a thing.
	resp, _ := get(t, url, nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/scenarios = %d, want 405", resp.StatusCode)
	}
}

func TestScenarioStoreRefusesWhenAllEntriesInFlight(t *testing.T) {
	s := newScenarioStore(tensortee.NewRunner(), 0, NewMetrics(), nil)
	// Fill every slot with an entry whose fill never completes (done stays
	// open): eviction can free nothing, so the cap must hold by refusal.
	for i := 0; i < maxScenarioEntries; i++ {
		if _, err := s.entry(fmt.Sprintf("fp-%d", i)); err != nil {
			t.Fatalf("entry %d refused below the cap: %v", i, err)
		}
	}
	if _, err := s.entry("fp-new"); !errors.Is(err, ErrScenarioStoreBusy) {
		t.Fatalf("entry past the cap: err = %v, want ErrScenarioStoreBusy", err)
	}
	if len(s.entries) != maxScenarioEntries {
		t.Fatalf("entries = %d, want exactly %d", len(s.entries), maxScenarioEntries)
	}
	// A known fingerprint still resolves at the cap (waiters join, no growth).
	if _, err := s.entry("fp-0"); err != nil {
		t.Fatalf("existing entry refused at the cap: %v", err)
	}
	// Once one fill completes, eviction frees its slot and new specs are
	// admitted again.
	e, err := s.entry("fp-1")
	if err != nil {
		t.Fatal(err)
	}
	close(e.done)
	if _, err := s.entry("fp-new"); err != nil {
		t.Fatalf("entry after eviction became possible: %v", err)
	}
	if len(s.entries) > maxScenarioEntries {
		t.Fatalf("entries = %d, exceeds the cap", len(s.entries))
	}
}

func TestScenarioConcurrentSameSpecComputesOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario computation calibrates a system")
	}
	s := New(Config{Runner: tensortee.NewRunner(), MaxConcurrentScenarios: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	const n = 6
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/scenarios", "application/json", strings.NewReader(tinySpec))
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	_, metrics := get(t, ts.URL+"/metrics", nil)
	if !strings.Contains(metrics, "tensorteed_scenario_runs_total 1") {
		t.Errorf("concurrent identical specs computed more than once:\n%s", metrics)
	}
}
