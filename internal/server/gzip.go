package server

import (
	"bytes"
	"compress/gzip"
	"net/http"
	"strconv"
	"strings"
)

// gzipMinSize is the smallest body worth compressing: below a kilobyte
// the gzip header and the CPU round-trip cost more than the bytes saved,
// and the bodies that matter (the /all aggregate and sweep JSON) are tens
// to hundreds of kilobytes.
const gzipMinSize = 1 << 10

// acceptsGzip reports whether the client's Accept-Encoding admits gzip,
// honoring q=0 refusals.
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		enc := strings.TrimSpace(part)
		q := 1.0
		if semi := strings.IndexByte(enc, ';'); semi >= 0 {
			if v, ok := strings.CutPrefix(strings.TrimSpace(enc[semi+1:]), "q="); ok {
				if f, err := strconv.ParseFloat(v, 64); err == nil {
					q = f
				}
			}
			enc = strings.TrimSpace(enc[:semi])
		}
		if (enc == "gzip" || enc == "*") && q > 0 {
			return true
		}
	}
	return false
}

// gzipBody returns the compressed form of the body, computed at most once
// per rendered representation (cached representations are served many
// times). It returns nil when compression does not pay — tiny or
// already-dense bodies — and the caller serves identity.
func (rd *rendered) gzipBody() []byte {
	rd.gzOnce.Do(func() {
		var buf bytes.Buffer
		zw, err := gzip.NewWriterLevel(&buf, gzip.BestSpeed)
		if err != nil {
			return
		}
		_, werr := zw.Write(rd.body)
		cerr := zw.Close()
		if werr == nil && cerr == nil && buf.Len() < len(rd.body) {
			rd.gz = buf.Bytes()
		}
	})
	return rd.gz
}
