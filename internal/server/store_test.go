package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tensortee"
	"tensortee/internal/store"
)

// newStoreServer builds a test daemon whose runner persists to dir,
// optionally probing peers on local misses — the two-replica topology
// the peer tier is for.
func newStoreServer(t *testing.T, dir string, peers ...string) (*Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(dir, store.Options{Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Runner: tensortee.NewRunner(tensortee.WithStore(st))})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func tinySpecFingerprint(t *testing.T) string {
	t.Helper()
	var spec tensortee.Scenario
	if err := json.Unmarshal([]byte(tinySpec), &spec); err != nil {
		t.Fatal(err)
	}
	return spec.Fingerprint()
}

func TestStoreEndpointsWithoutStore(t *testing.T) {
	_, ts := newTestServer(t, 0)

	resp, body := get(t, ts.URL+"/v1/store", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"enabled": false`) {
		t.Errorf("GET /v1/store = %d %q", resp.StatusCode, body)
	}
	if resp, _ := get(t, ts.URL+"/v1/store/result/fig15", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("store entry without a store = %d, want 404", resp.StatusCode)
	}
	if resp, _ := get(t, ts.URL+"/v1/scenarios/"+strings.Repeat("ab", 16), nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("scenario lookup without a store = %d, want 404", resp.StatusCode)
	}
	// /metrics omits the store series when persistence is disabled.
	if _, metrics := get(t, ts.URL+"/metrics", nil); strings.Contains(metrics, "tensorteed_store_") {
		t.Error("store metrics rendered without a store")
	}
}

func TestStoreStatsEndpoint(t *testing.T) {
	_, ts := newStoreServer(t, t.TempDir())
	resp, body := get(t, ts.URL+"/v1/store", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	for _, frag := range []string{`"enabled": true`, `"build_tag"`, `"disk_hits"`, `"entries"`} {
		if !strings.Contains(body, frag) {
			t.Errorf("stats body missing %s:\n%s", frag, body)
		}
	}
	if _, metrics := get(t, ts.URL+"/metrics", nil); !strings.Contains(metrics, "tensorteed_store_disk_hits_total") {
		t.Error("store metrics missing from /metrics")
	}
}

func TestScenarioLookupByFingerprint(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario computation calibrates a system")
	}
	_, ts := newStoreServer(t, t.TempDir())
	fp := tinySpecFingerprint(t)

	// Unknown fingerprints 404 without computing anything.
	if resp, _ := get(t, ts.URL+"/v1/scenarios/"+strings.Repeat("00", 16), nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown fingerprint = %d, want 404", resp.StatusCode)
	}

	respPost, bodyPost := post(t, ts.URL+"/v1/scenarios", tinySpec, nil)
	if respPost.StatusCode != http.StatusOK {
		t.Fatalf("POST = %d (%s)", respPost.StatusCode, bodyPost)
	}

	respGet, bodyGet := get(t, ts.URL+"/v1/scenarios/"+fp, nil)
	if respGet.StatusCode != http.StatusOK {
		t.Fatalf("GET by fingerprint = %d (%s)", respGet.StatusCode, bodyGet)
	}
	if bodyGet != bodyPost {
		t.Error("GET body differs from the POST body")
	}
	if got, want := respGet.Header.Get("ETag"), respPost.Header.Get("ETag"); got != want {
		t.Errorf("GET ETag = %q, POST ETag = %q", got, want)
	}

	// Revalidation answers 304 with no body.
	resp304, body304 := get(t, ts.URL+"/v1/scenarios/"+fp, map[string]string{"If-None-Match": respGet.Header.Get("ETag")})
	if resp304.StatusCode != http.StatusNotModified || body304 != "" {
		t.Errorf("revalidation = %d (%q), want bare 304", resp304.StatusCode, body304)
	}
}

func TestScenarioLookupServedAcrossRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario computation calibrates a system")
	}
	dir := t.TempDir()
	fp := tinySpecFingerprint(t)

	_, ts1 := newStoreServer(t, dir)
	respPost, bodyPost := post(t, ts1.URL+"/v1/scenarios", tinySpec, nil)
	if respPost.StatusCode != http.StatusOK {
		t.Fatalf("POST = %d (%s)", respPost.StatusCode, bodyPost)
	}
	ts1.Close()

	// A fresh daemon over the same -store-dir serves the fingerprint from
	// disk — byte-identical, without recomputing.
	_, ts2 := newStoreServer(t, dir)
	resp, body := get(t, ts2.URL+"/v1/scenarios/"+fp, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET after restart = %d (%s)", resp.StatusCode, body)
	}
	if body != bodyPost {
		t.Error("restarted daemon served different bytes")
	}
	_, metrics := get(t, ts2.URL+"/metrics", nil)
	if !strings.Contains(metrics, "tensorteed_scenario_runs_total 0") {
		t.Errorf("restart recomputed the scenario:\n%s", metrics)
	}
	if !strings.Contains(metrics, "tensorteed_scenario_store_serves_total 1") {
		t.Errorf("store serve not counted:\n%s", metrics)
	}

	// The disk read re-admitted the entry: the next lookup hits memory.
	if resp, _ := get(t, ts2.URL+"/v1/scenarios/"+fp, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("re-read = %d", resp.StatusCode)
	}
	if _, metrics := get(t, ts2.URL+"/metrics", nil); !strings.Contains(metrics, "tensorteed_scenario_cache_hits_total 1") {
		t.Errorf("re-admitted entry missed memory:\n%s", metrics)
	}
}

func TestExperimentServedFromStoreAcrossRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("computes an experiment")
	}
	dir := t.TempDir()

	_, ts1 := newStoreServer(t, dir)
	resp1, body1 := get(t, ts1.URL+"/v1/experiments/fig15", nil)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first serve = %d", resp1.StatusCode)
	}
	ts1.Close()

	_, ts2 := newStoreServer(t, dir)
	resp2, body2 := get(t, ts2.URL+"/v1/experiments/fig15", nil)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("restart serve = %d", resp2.StatusCode)
	}
	if body2 != body1 {
		t.Error("restarted daemon served different bytes")
	}
	if got, want := resp2.Header.Get("ETag"), resp1.Header.Get("ETag"); got != want {
		t.Errorf("restart ETag = %q, want %q", got, want)
	}
	_, metrics := get(t, ts2.URL+"/metrics", nil)
	if strings.Contains(metrics, `tensorteed_experiment_runs_total{id="fig15"}`) {
		t.Errorf("restart recomputed fig15:\n%s", metrics)
	}
	if !strings.Contains(metrics, "tensorteed_experiment_store_serves_total 1") {
		t.Errorf("store serve not counted:\n%s", metrics)
	}
}

func TestStoreEntryEndpointAndPeerReplication(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario computation calibrates a system")
	}
	fp := tinySpecFingerprint(t)

	// Replica A computes the scenario and persists it.
	_, tsA := newStoreServer(t, t.TempDir())
	respPost, bodyPost := post(t, tsA.URL+"/v1/scenarios", tinySpec, nil)
	if respPost.StatusCode != http.StatusOK {
		t.Fatalf("POST on A = %d (%s)", respPost.StatusCode, bodyPost)
	}

	// The raw-envelope endpoint serves the validated on-disk bytes.
	respRaw, bodyRaw := get(t, tsA.URL+"/v1/store/scenario/"+fp, nil)
	if respRaw.StatusCode != http.StatusOK {
		t.Fatalf("raw envelope = %d", respRaw.StatusCode)
	}
	if ct := respRaw.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("raw Content-Type = %q", ct)
	}
	if !strings.HasPrefix(bodyRaw, "tensortee-store/v1 ") {
		t.Errorf("raw body is not an envelope:\n%.100s", bodyRaw)
	}
	if resp, _ := get(t, tsA.URL+"/v1/store/scenario/"+strings.Repeat("00", 16), nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing entry = %d, want 404", resp.StatusCode)
	}
	if resp, _ := get(t, tsA.URL+"/v1/store/bogus/"+fp, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("bogus namespace = %d, want 404", resp.StatusCode)
	}

	// Replica B, cold, lists A as a peer: the fingerprint lookup is served
	// through the peer tier without B computing anything, and the fetched
	// entry persists in B's own store.
	sB, tsB := newStoreServer(t, t.TempDir(), tsA.URL)
	resp, body := get(t, tsB.URL+"/v1/scenarios/"+fp, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("peer-backed lookup = %d (%s)", resp.StatusCode, body)
	}
	if body != bodyPost {
		t.Error("replica B served different bytes than A computed")
	}
	_, metricsB := get(t, tsB.URL+"/metrics", nil)
	if !strings.Contains(metricsB, "tensorteed_scenario_runs_total 0") {
		t.Errorf("replica B recomputed the scenario:\n%s", metricsB)
	}
	if !strings.Contains(metricsB, "tensorteed_store_peer_hits_total 1") {
		t.Errorf("peer hit not counted on B:\n%s", metricsB)
	}
	if st := sB.runner.Store().Stats(); st.Writes == 0 {
		t.Error("peer fetch did not persist locally on B")
	}
}
