package experiments

import (
	"fmt"

	"tensortee/internal/config"
	"tensortee/internal/core"
	"tensortee/internal/npumac"
	"tensortee/internal/npusim"
	"tensortee/internal/sim"
	"tensortee/internal/stats"
	"tensortee/internal/workload"
)

// threeSystems resolves the calibrated Non-Secure / SGX+MGX / TensorTEE
// systems through the environment (shared by fig5/15/16/17/21) — with a
// caching provider each system calibrates once per process, not once per
// experiment. The three calibrations are independent CPU-simulation
// samples, so they run concurrently: cold-start wall-clock drops from the
// sum of the three to the slowest one. Env.System is safe for concurrent
// use (the Runner's cache singleflights per kind; the uncached path
// builds fresh systems).
func threeSystems(env *Env) (ns, base, tte *core.System, err error) {
	kinds := [3]config.SystemKind{config.NonSecure, config.BaselineSGXMGX, config.TensorTEE}
	var sys [3]*core.System
	var errs [3]error
	Sweep(3, func(i int) { sys[i], errs[i] = env.System(kinds[i]) })
	for _, e := range errs {
		if e != nil {
			return nil, nil, nil, e
		}
	}
	return sys[0], sys[1], sys[2], nil
}

// Fig4 reports the tensor inventory of every model: tensor count and the
// largest tensor size — the "small numbers, large sizes" observation that
// motivates tensor-granularity protection.
func Fig4(_ *Env) (*Report, error) {
	r := newReport("fig4", "Optimizer tensor inventory per model")
	tb := stats.NewTable("fp32 optimizer tensors", "model", "params", "tensor count", "largest (MB)", "total (MB)")
	maxCount := 0
	for _, m := range workload.Models() {
		s := m.Stats()
		if s.Count > maxCount {
			maxCount = s.Count
		}
		tb.AddRow(m.Name, m.ParamsStr, s.Count,
			float64(s.LargestBytes)/(1<<20), float64(s.TotalBytes)/(1<<20))
	}
	r.Tables = append(r.Tables, tb)
	r.Scalars["max_tensor_count"] = float64(maxCount)
	r.Notes = append(r.Notes, "paper: counts stay in the hundreds while sizes reach hundreds of MB")
	return r, nil
}

// Fig5 reports the GPT2-M time breakdown for Non-Secure and the SGX+MGX
// baseline (the motivation pie charts: communication grows from 12% to
// ~53% under the mismatched-granularity TEE).
func Fig5(env *Env) (*Report, error) {
	r := newReport("fig5", "GPT2-M ZeRO-Offload breakdown: Non-Secure vs SGX+MGX")
	ns, base, _, err := threeSystems(env)
	if err != nil {
		return nil, err
	}
	m, err := workload.ModelByName("GPT2-M")
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("share of step time (%)", "system", "NPU", "CPU", "CommW", "CommG", "comm total")
	for _, s := range []*core.System{ns, base} {
		b := s.TrainStep(m)
		n, c, w, g := b.Fractions()
		tb.AddRow(s.Cfg.System.String(), n*100, c*100, w*100, g*100, (w+g)*100)
		if s.Cfg.System == config.BaselineSGXMGX {
			r.Scalars["baseline_comm_frac"] = w + g
		} else {
			r.Scalars["nonsecure_comm_frac"] = w + g
		}
	}
	r.Tables = append(r.Tables, tb)
	r.Notes = append(r.Notes, "paper: non-secure 65/23/9/3; SGX+MGX 22/25/18/35 (comm 12% -> 53%)")
	return r, nil
}

// Fig15 renders the computation/communication overlap timelines: the
// baseline's serialized backward + gradient transfer versus TensorTEE's
// overlapped schedule (Figures 7 and 15).
func Fig15(env *Env) (*Report, error) {
	r := newReport("fig15", "Compute/communication overlap (Figures 7 and 15)")
	_, base, tte, err := threeSystems(env)
	if err != nil {
		return nil, err
	}
	m, err := workload.ModelByName("GPT2-M")
	if err != nil {
		return nil, err
	}
	_, bwdBase := base.NPUPhases(m)
	_, bwdTTE := tte.NPUPhases(m)
	gBase := base.GradTransferBreakdown(m)
	gTTE := tte.GradTransferBreakdown(m)

	tb := stats.NewTable("backward + gradient transfer (ms)",
		"system", "backward", "comm (raw)", "serialized?", "combined")
	baseCombined := bwdBase + gBase.Total()
	tteCombined := sim.Max(bwdTTE, gTTE.Total())
	tb.AddRow("SGX+MGX", bwdBase.Millis(), gBase.Total().Millis(), "yes (AES/DRAM contention)", baseCombined.Millis())
	tb.AddRow("TensorTEE", bwdTTE.Millis(), gTTE.Total().Millis(), "no (direct channel)", tteCombined.Millis())
	r.Tables = append(r.Tables, tb)
	r.Scalars["overlap_gain"] = float64(baseCombined) / float64(tteCombined)
	r.Notes = append(r.Notes, "paper: the unified granularity removes re-encryption and restores parallel execution")
	return r, nil
}

// Fig16 is the headline result: latency per batch for all twelve models
// under the three systems, with the TensorTEE speedup over the baseline.
func Fig16(env *Env) (*Report, error) {
	r := newReport("fig16", "Overall performance (latency per batch)")
	ns, base, tte, err := threeSystems(env)
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("latency per batch (s)", "model", "non-secure", "SGX+MGX", "TensorTEE", "speedup", "overhead vs NS (%)")
	var speedups, overheads []float64
	for _, m := range workload.Models() {
		tNS := ns.TrainStep(m).Total()
		tBase := base.TrainStep(m).Total()
		tTTE := tte.TrainStep(m).Total()
		sp := float64(tBase) / float64(tTTE)
		ov := (float64(tTTE)/float64(tNS) - 1) * 100
		speedups = append(speedups, sp)
		overheads = append(overheads, ov)
		tb.AddRow(m.Name, tNS.Seconds(), tBase.Seconds(), tTTE.Seconds(), sp, ov)
	}
	r.Tables = append(r.Tables, tb)
	r.Scalars["avg_speedup"] = stats.Mean(speedups)
	r.Scalars["max_speedup"] = maxOf(speedups)
	r.Scalars["avg_overhead_pct"] = stats.Mean(overheads)
	r.Notes = append(r.Notes, "paper: average speedup 4.0x (up to 5.5x); average overhead vs non-secure 2.1%")
	return r, nil
}

// Fig17 is the per-model breakdown for all three systems.
func Fig17(env *Env) (*Report, error) {
	r := newReport("fig17", "Per-model breakdown across systems")
	ns, base, tte, err := threeSystems(env)
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("share of step time (%)", "model", "system", "NPU", "CPU", "CommW", "CommG")
	for _, m := range workload.Models() {
		for _, s := range []*core.System{ns, base, tte} {
			b := s.TrainStep(m)
			n, c, w, g := b.Fractions()
			tb.AddRow(m.Name, s.Cfg.System.String(), n*100, c*100, w*100, g*100)
		}
	}
	r.Tables = append(r.Tables, tb)
	r.Notes = append(r.Notes, "paper: TensorTEE restores near-non-secure proportions; the baseline is dominated by CPU and communication")
	return r, nil
}

// Fig20 sweeps the NPU MAC granularity: normalized performance and storage
// overhead for the MGX-like scheme at 64B..4KB against TensorTEE's delayed
// tensor-granularity verification.
func Fig20(_ *Env) (*Report, error) {
	r := newReport("fig20", "NPU MAC granularity sweep (normalized performance and storage)")
	cfg := config.Default(config.BaselineSGXMGX)
	m, err := workload.ModelByName("GPT2-M")
	if err != nil {
		return nil, err
	}
	layers := append(m.ForwardGEMMs(), m.BackwardGEMMs()...)

	nsCfg := npusim.FromSystem(&cfg, npumac.SchemeCacheline, 64)
	nsCfg.Secure = false
	nonsec := npusim.New(nsCfg).RunLayers(layers).Total

	tb := stats.NewTable("GPT2-M training layers", "scheme", "granularity", "normalized perf", "storage overhead (%)")
	tb.AddRow("non-secure", "-", 1.0, 0.0)
	for _, gran := range []int{64, 256, 512, 1024, 2048, 4096} {
		scheme := npumac.SchemeCoarse
		if gran == 64 {
			scheme = npumac.SchemeCacheline
		}
		c := npusim.FromSystem(&cfg, scheme, gran)
		c.Secure = true
		total := npusim.New(c).RunLayers(layers).Total
		norm := float64(total) / float64(nonsec)
		storage := npumac.StorageOverhead(scheme, gran, 7) * 100
		tb.AddRow(scheme.String(), fmt.Sprintf("%dB", gran), norm, storage)
		r.Scalars[fmt.Sprintf("norm_%dB", gran)] = norm
	}
	tc := npusim.FromSystem(&cfg, npumac.SchemeTensorDelayed, 64)
	tc.Secure = true
	ours := npusim.New(tc).RunLayers(layers).Total
	r.Scalars["norm_ours"] = float64(ours) / float64(nonsec)
	tb.AddRow("tensor+delayed (ours)", "tensor", float64(ours)/float64(nonsec), 0.0)
	r.Tables = append(r.Tables, tb)
	r.Notes = append(r.Notes, "paper: 13% overhead at 4KB granularity; delayed verification ~2.5% with zero off-chip MAC storage")
	return r, nil
}

// Fig21 decomposes the gradient transfer per model: re-encryption, wire,
// decryption for the baseline versus the direct protocol.
func Fig21(env *Env) (*Report, error) {
	r := newReport("fig21", "Gradient transfer breakdown (per model)")
	_, base, tte, err := threeSystems(env)
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("gradient transfer (ms)", "model", "base re-enc", "base comm", "base decrypt", "base total", "ours total", "ratio")
	var ratios []float64
	for _, m := range workload.Models() {
		gb := base.GradTransferBreakdown(m)
		gt := tte.GradTransferBreakdown(m)
		ratio := float64(gb.Total()) / float64(gt.Total())
		ratios = append(ratios, ratio)
		tb.AddRow(m.Name, gb.ReencryptTime.Millis(), gb.LinkTime.Millis(), gb.DecryptTime.Millis(),
			gb.Total().Millis(), gt.Total().Millis(), ratio)
	}
	r.Tables = append(r.Tables, tb)
	r.Scalars["avg_raw_ratio"] = stats.Mean(ratios)

	// With overlap counted (the transfer hides under the backward pass),
	// the visible-communication improvement is what the paper's 18.7x
	// refers to; in this model the GPT2-M gradient transfer hides entirely.
	m, _ := workload.ModelByName("GPT2-M")
	_, bwd := tte.NPUPhases(m)
	ours := tte.GradTransferBreakdown(m).Total()
	visible := sim.Sub(ours, bwd)
	r.Scalars["gpt2m_hidden_frac"] = float64(ours-visible) / float64(ours)
	r.Scalars["gpt2m_visible_ms"] = visible.Millis()
	r.Notes = append(r.Notes,
		"paper: communication performance improved 18.7x once re-encryption is removed and the transfer hides under computation",
		"here the direct GPT2-M gradient transfer hides completely under the backward pass (visible = 0), so the end-to-end improvement is bounded by the raw ratio above")
	return r, nil
}

// maxOf returns the maximum element, 0 for an empty slice. It seeds from
// the first element rather than 0.0 so an all-negative input (possible
// for the overhead-percentage series, where TensorTEE can beat the
// non-secure reference) returns its true maximum instead of a fabricated
// zero.
func maxOf(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	m := vals[0]
	for _, v := range vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
