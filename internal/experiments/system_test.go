package experiments

import (
	"math"
	"testing"

	"tensortee/internal/stats"
)

// TestMaxOf pins the init-from-first semantics: an all-negative slice —
// the shape the overhead-percentage series takes when TensorTEE beats
// the non-secure reference — must return its true (negative) maximum,
// not a fabricated zero.
func TestMaxOf(t *testing.T) {
	for _, tc := range []struct {
		name string
		in   []float64
		want float64
	}{
		{"all-negative", []float64{-3.2, -0.5, -7.1}, -0.5},
		{"mixed", []float64{-1, 4.25, 2}, 4.25},
		{"single", []float64{-9}, -9},
		{"empty", nil, 0},
		{"positive", []float64{1.5, 5.5, 4.0}, 5.5},
	} {
		if got := maxOf(tc.in); got != tc.want {
			t.Errorf("%s: maxOf(%v) = %v, want %v", tc.name, tc.in, got, tc.want)
		}
	}
}

// TestOverheadScalarPathSignSafe audits the other aggregate feeding the
// fig16 scalars: the mean over the overhead series must be sign-safe and
// defined on empty input (it seeds from zero but divides by the length,
// so negatives pass through undistorted).
func TestOverheadScalarPathSignSafe(t *testing.T) {
	if got := stats.Mean([]float64{-2, -4}); got != -3 {
		t.Errorf("Mean over negatives = %v, want -3", got)
	}
	if got := stats.Mean(nil); got != 0 || math.IsNaN(got) {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
}
