// Package experiments contains one generator per table and figure of the
// paper's evaluation (Section 6). Each generator runs the corresponding
// simulation and renders the same rows/series the paper reports, so the
// CLI (cmd/tensorteesim) and the benchmark harness (bench_test.go) share
// a single source of truth. EXPERIMENTS.md records paper-vs-measured for
// every generator.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"tensortee/internal/config"
	"tensortee/internal/core"
	"tensortee/internal/stats"
)

// Sweep runs n independent sweep points on a bounded worker pool
// (min(n, GOMAXPROCS) goroutines) and waits for all of them. Generators
// and the scenario engine use it to fan out thread-count and config
// points over per-point Sim instances; each job writes its result into
// its own slot, and the caller assembles rows in the original order
// afterwards, so the rendered output is identical to the serial sweep.
func Sweep(n int, job func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				job(i)
			}
		}()
	}
	wg.Wait()
}

// Report is one experiment's rendered result plus the key scalar outcomes
// that tests assert on.
type Report struct {
	ID     string
	Title  string
	Tables []*stats.Table
	Notes  []string
	// Scalars holds named headline numbers (e.g. "avg_speedup").
	Scalars map[string]float64
}

func newReport(id, title string) *Report {
	return &Report{ID: id, Title: title, Scalars: map[string]float64{}}
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	if len(r.Scalars) > 0 {
		keys := make([]string, 0, len(r.Scalars))
		for k := range r.Scalars {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "%s = %.4g\n", k, r.Scalars[k])
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// SystemProvider returns a calibrated end-to-end system for the kind.
// Providers may cache: calibration is the expensive part of NewSystem, and
// every returned *core.System is safe for concurrent read-only use
// (TrainStep and friends construct their per-call simulators fresh).
type SystemProvider func(kind config.SystemKind) (*core.System, error)

// Env carries the execution environment a generator runs under. The zero
// value (and a nil *Env) is valid: systems are then built and calibrated
// on demand, uncached — the historical behavior.
type Env struct {
	// Systems supplies calibrated systems; nil means core.NewSystem.
	Systems SystemProvider
	// Configs supplies calibrated systems for explicit (possibly
	// non-default) configurations — the scenario engine's entry point;
	// nil means core.NewSystemFromConfig, uncached.
	Configs func(cfg config.Config) (*core.System, error)
}

// System resolves a calibrated system through the provider (or directly).
func (e *Env) System(kind config.SystemKind) (*core.System, error) {
	if e != nil && e.Systems != nil {
		return e.Systems(kind)
	}
	return core.NewSystem(kind)
}

// SystemFromConfig resolves a calibrated system for an explicit
// configuration through the provider (or directly, uncached).
func (e *Env) SystemFromConfig(cfg config.Config) (*core.System, error) {
	if e != nil && e.Configs != nil {
		return e.Configs(cfg)
	}
	return core.NewSystemFromConfig(cfg)
}

// Generator produces a report within an environment.
type Generator func(env *Env) (*Report, error)

// Experiment is one registry entry: the generator plus the paper-artifact
// metadata every consumer of the experiment index (CLI -list, the HTTP
// daemon's /v1/experiments, EXPERIMENTS.md) shares.
type Experiment struct {
	// ID is the stable experiment id (e.g. "fig16").
	ID string
	// Artifact names the paper artifact the experiment reproduces
	// (e.g. "Figure 16", "Table 1", "Section 6.2").
	Artifact string
	// About is a one-line description of what regenerates.
	About string
	// Heavy marks experiments that calibrate end-to-end systems or run
	// long iteration sweeps; harnesses may gate these in slow builds.
	Heavy bool
	// Gen produces the report.
	Gen Generator
}

// Registry maps experiment ids to generators, in the paper's order.
func Registry() []Experiment {
	return []Experiment{
		{"tab1", "Table 1", "System simulation configuration (CPU, NPU, interconnect)", false, Tab1},
		{"tab2", "Table 2", "The twelve LLM training workloads with derived parameter counts", false, Tab2},
		{"fig3", "Figure 3", "Motivation: SGX Adam-step slowdown vs thread count", true, Fig3},
		{"fig4", "Figure 4", "Optimizer tensor inventory: few tensors, large sizes", false, Fig4},
		{"fig5", "Figure 5", "GPT2-M step breakdown, Non-Secure vs SGX+MGX", true, Fig5},
		{"fig15", "Figures 7/15", "Compute/communication overlap: serialized baseline vs direct channel", true, Fig15},
		{"fig16", "Figure 16", "Headline: per-batch latency, all models x three systems", true, Fig16},
		{"fig17", "Figure 17", "Per-model phase breakdown across systems", true, Fig17},
		{"fig18", "Figure 18", "Meta Table hit-rate convergence across iterations", true, Fig18},
		{"fig19", "Figure 19", "CPU TEE comparison (SGX / SoftVN / TensorTEE) at iteration counts", true, Fig19},
		{"fig20", "Figure 20", "NPU MAC granularity sweep vs delayed tensor verification", false, Fig20},
		{"fig21", "Figure 21", "Gradient-transfer decomposition: staged re-encryption vs direct", true, Fig21},
		{"gemm", "Section 6.2", "Tiled-GEMM tensor detection (~98.8% hit_in after one pass)", false, GEMMDetection},
		{"hw", "Section 6.5", "On-chip storage accounting (~24 KB total)", false, HardwareOverhead},
	}
}

// Run finds and runs one experiment by id with an on-demand environment.
func Run(id string) (*Report, error) {
	return RunWith(nil, id)
}

// RunWith finds and runs one experiment by id under env.
func RunWith(env *Env, id string) (*Report, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Gen(env)
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", id)
}
