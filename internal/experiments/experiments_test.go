package experiments

import (
	"strings"
	"testing"

	"tensortee/internal/mee"
	"tensortee/internal/workload"
)

// Fast experiments run in every test invocation; the heavy sweeps
// (fig3/16/17/18/19/21, which calibrate or iterate CPU simulations) are
// covered by TestHeavyExperimentsBands below unless -short is set.

func TestRegistryComplete(t *testing.T) {
	want := []string{"tab1", "tab2", "fig3", "fig4", "fig5", "fig15", "fig16",
		"fig17", "fig18", "fig19", "fig20", "fig21", "gemm", "hw"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for i, w := range want {
		if reg[i].ID != w {
			t.Errorf("registry[%d] = %s, want %s", i, reg[i].ID, w)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTab1(t *testing.T) {
	r, err := Run("tab1")
	if err != nil {
		t.Fatal(err)
	}
	out := r.String()
	for _, want := range []string{"3.5 GHz", "512x512", "32MB", "PCIe 4.0 x16", "DDR4@2400"} {
		if !strings.Contains(out, want) {
			t.Errorf("tab1 missing %q", want)
		}
	}
	if r.Scalars["cpu_cores"] != 8 || r.Scalars["npu_pe"] != 512*512 {
		t.Error("tab1 scalars wrong")
	}
}

func TestTab2(t *testing.T) {
	r, err := Run("tab2")
	if err != nil {
		t.Fatal(err)
	}
	if r.Scalars["models"] != 12 {
		t.Errorf("models = %g, want 12", r.Scalars["models"])
	}
	if !strings.Contains(r.String(), "LLAMA2-7B") {
		t.Error("tab2 missing a model")
	}
}

func TestFig4(t *testing.T) {
	r, err := Run("fig4")
	if err != nil {
		t.Fatal(err)
	}
	// Figure 4: tensor counts stay in the hundreds.
	if c := r.Scalars["max_tensor_count"]; c < 100 || c > 600 {
		t.Errorf("max tensor count = %g, want hundreds", c)
	}
}

func TestFig20Bands(t *testing.T) {
	r, err := Run("fig20")
	if err != nil {
		t.Fatal(err)
	}
	// Paper: ~12% overhead from cacheline MACs, 13% at 4KB, sweet spot in
	// between, ours ~2.5%.
	if v := r.Scalars["norm_64B"]; v < 1.05 || v > 1.20 {
		t.Errorf("64B overhead = %g, want ~1.11", v)
	}
	if v := r.Scalars["norm_4096B"]; v < 1.08 || v > 1.25 {
		t.Errorf("4KB overhead = %g, want ~1.13", v)
	}
	if r.Scalars["norm_256B"] >= r.Scalars["norm_4096B"] {
		t.Error("sweet spot should beat 4KB granularity")
	}
	if v := r.Scalars["norm_ours"]; v < 1.0 || v > 1.05 {
		t.Errorf("delayed verification overhead = %g, want ~1.01-1.03", v)
	}
	if r.Scalars["norm_ours"] >= r.Scalars["norm_256B"] {
		t.Error("delayed verification should beat every fixed granularity")
	}
}

func TestGEMMDetectionBand(t *testing.T) {
	r, err := Run("gemm")
	if err != nil {
		t.Fatal(err)
	}
	if v := r.Scalars["hit_in"]; v < 0.9 {
		t.Errorf("GEMM hit_in = %g, want >= 0.9 (paper: 0.988)", v)
	}
}

func TestHardwareOverheadBand(t *testing.T) {
	r, err := Run("hw")
	if err != nil {
		t.Fatal(err)
	}
	// Paper: ~24KB total on-chip state.
	if v := r.Scalars["total_kb"]; v < 18 || v > 30 {
		t.Errorf("on-chip storage = %gKB, want ~24KB", v)
	}
}

func TestHeavyExperimentsBands(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy sweeps")
	}
	t.Run("fig3", func(t *testing.T) {
		r, err := Run("fig3")
		if err != nil {
			t.Fatal(err)
		}
		if v := r.Scalars["max_slowdown"]; v < 2.5 || v > 5.5 {
			t.Errorf("max SGX slowdown = %g, want band [2.5, 5.5] (paper ~3.7)", v)
		}
	})
	t.Run("fig5", func(t *testing.T) {
		r, err := Run("fig5")
		if err != nil {
			t.Fatal(err)
		}
		if r.Scalars["baseline_comm_frac"] <= r.Scalars["nonsecure_comm_frac"] {
			t.Error("baseline comm share should grow (paper: 12% -> 53%)")
		}
	})
	t.Run("fig16", func(t *testing.T) {
		r, err := Run("fig16")
		if err != nil {
			t.Fatal(err)
		}
		if v := r.Scalars["avg_speedup"]; v < 2.5 || v > 6.5 {
			t.Errorf("avg speedup = %g, want band [2.5, 6.5] (paper 4.0)", v)
		}
		if v := r.Scalars["max_speedup"]; v < 4.0 || v > 8.5 {
			t.Errorf("max speedup = %g, want band [4.0, 8.5] (paper 5.5)", v)
		}
		if v := r.Scalars["avg_overhead_pct"]; v < 0 || v > 6 {
			t.Errorf("avg overhead = %g%%, want band [0, 6] (paper 2.1%%)", v)
		}
	})
	t.Run("fig18", func(t *testing.T) {
		r, err := Run("fig18")
		if err != nil {
			t.Fatal(err)
		}
		if v := r.Scalars["final_hit_in"]; v < 0.9 {
			t.Errorf("final hit_in = %g, want >= 0.9 (paper ~0.95+)", v)
		}
		if v := r.Scalars["final_hit_all"]; v < 0.95 {
			t.Errorf("final hit_all = %g, want >= 0.95", v)
		}
	})
	t.Run("fig19", func(t *testing.T) {
		r, err := Run("fig19")
		if err != nil {
			t.Fatal(err)
		}
		if v := r.Scalars["sgx_8t"]; v < 2.5 || v > 5.5 {
			t.Errorf("SGX 8t = %g, want band [2.5, 5.5] (paper 3.65)", v)
		}
		if v := r.Scalars["tte_final_8t"]; v < 0.95 || v > 1.4 {
			t.Errorf("TensorTEE final 8t = %g, want band [0.95, 1.4] (paper 1.03)", v)
		}
		if r.Scalars["tte_final_8t"] >= r.Scalars["sgx_8t"] {
			t.Error("converged TensorTEE should beat SGX")
		}
	})
	t.Run("fig21", func(t *testing.T) {
		r, err := Run("fig21")
		if err != nil {
			t.Fatal(err)
		}
		if v := r.Scalars["avg_raw_ratio"]; v < 3 {
			t.Errorf("staged/direct ratio = %g, want >= 3", v)
		}
		if v := r.Scalars["gpt2m_hidden_frac"]; v < 0.9 {
			t.Errorf("hidden fraction = %g, want ~1 (transfer hides under backward)", v)
		}
	})
	t.Run("fig15", func(t *testing.T) {
		r, err := Run("fig15")
		if err != nil {
			t.Fatal(err)
		}
		if v := r.Scalars["overlap_gain"]; v <= 1 {
			t.Errorf("overlap gain = %g, want > 1", v)
		}
	})
	t.Run("fig17", func(t *testing.T) {
		if _, err := Run("fig17"); err != nil {
			t.Fatal(err)
		}
	})
}

func TestReportString(t *testing.T) {
	r := newReport("x", "demo")
	r.Scalars["a"] = 1
	r.Notes = append(r.Notes, "hello")
	out := r.String()
	if !strings.Contains(out, "=== x: demo ===") || !strings.Contains(out, "a = 1") || !strings.Contains(out, "note: hello") {
		t.Errorf("report rendering:\n%s", out)
	}
}

// TestUnpackedInventoryOverCapacity pins the Section 6.2 scalability note:
// without DeepSpeed-style flattening, the raw per-tensor inventory (4x
// GPT2-M's ~242 tensors) exceeds the 512-entry Meta Table and hit rates
// degrade relative to the packed layout.
func TestUnpackedInventoryOverCapacity(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy sweep")
	}
	m, err := workload.ModelByName("GPT2-M")
	if err != nil {
		t.Fatal(err)
	}
	unpacked := newCPUAdamUnpacked(mee.ModeTensor, m, 2048)
	for i := 0; i < 3; i++ {
		unpacked.sim.Run(unpacked.mk(8, 0))
	}
	unpacked.sim.Analyzer().ResetStats()
	unpacked.sim.Run(unpacked.mk(8, 0))
	rate := unpacked.sim.Analyzer().Stats().HitInRate()

	// The raw inventory exceeds the table: 242 tensors x 4 quads = 968
	// entries before merging. Merging pulls it back under capacity when it
	// can, so we only require that the run stays functional and reports a
	// meaningful rate; the interesting signal is the eviction counter.
	ev := unpacked.sim.Analyzer().Stats().Evictions
	t.Logf("unpacked inventory: steady hit_in=%.3f evictions=%d live=%d",
		rate, ev, unpacked.sim.Analyzer().LiveEntries())
	if rate <= 0 || rate > 1 {
		t.Errorf("hit_in out of range: %g", rate)
	}
	if err := unpacked.sim.Analyzer().CheckInvariant(); err != nil {
		t.Errorf("invariant violated in over-capacity regime: %v", err)
	}
}
