package experiments

import (
	"tensortee/internal/config"
	"tensortee/internal/stats"
	"tensortee/internal/workload"
)

// Tab1 prints the system simulation configuration (Table 1).
func Tab1(_ *Env) (*Report, error) {
	r := newReport("tab1", "System simulation configuration (Table 1)")
	c := config.Default(config.TensorTEE)

	cpu := stats.NewTable("CPU configuration", "parameter", "value")
	cpu.AddRow("Frequency", "3.5 GHz")
	cpu.AddRow("Processors", "8 out-of-order cores")
	cpu.AddRow("L1 I/D cache", "32KB, 8 ways")
	cpu.AddRow("L2 cache", "256KB, 8 ways")
	cpu.AddRow("L3 cache", "9MB, 8 ways")
	cpu.AddRow("DRAM", "DDR4@2400, 2 channels")
	cpu.AddRow("Metadata cache", "32KB")
	cpu.AddRow("AES encryption", "128-bit, 40 cycle lat.")
	cpu.AddRow("MAC", "40 cycle lat.")

	npu := stats.NewTable("NPU configuration", "parameter", "value")
	npu.AddRow("Frequency", "1 GHz")
	npu.AddRow("PE array", "512x512")
	npu.AddRow("Scratchpad", "32MB")
	npu.AddRow("DRAM", "GDDR5, 40 GB, 128 GB/s")
	npu.AddRow("AES encryption", "40 cycles lat.")

	comm := stats.NewTable("Communication configuration", "parameter", "value")
	comm.AddRow("Comm. bus", "PCIe 4.0 x16")

	r.Tables = append(r.Tables, cpu, npu, comm)
	r.Scalars["cpu_cores"] = float64(c.CPU.Cores)
	r.Scalars["npu_pe"] = float64(c.NPU.PERows * c.NPU.PECols)
	return r, nil
}

// Tab2 prints the workload zoo (Table 2) with the derived parameter counts.
func Tab2(_ *Env) (*Report, error) {
	r := newReport("tab2", "Workloads and parameters (Table 2)")
	tb := stats.NewTable("LLM training workloads", "model", "# params (paper)", "# params (derived)", "batch size", "layers", "hidden")
	for _, m := range workload.Models() {
		tb.AddRow(m.Name, m.ParamsStr, float64(m.Params())/1e6, m.BatchSize, m.Layers, m.Hidden)
	}
	r.Tables = append(r.Tables, tb)
	r.Scalars["models"] = float64(len(workload.Models()))
	return r, nil
}

// HardwareOverhead reproduces the Section 6.5 on-chip storage accounting:
// the Meta Table, Tensor Filter, bitmap cache, and poison bits total ~24KB.
func HardwareOverhead(_ *Env) (*Report, error) {
	r := newReport("hw", "On-chip hardware overhead (Section 6.5)")
	c := config.Default(config.TensorTEE)

	// Per-entry bits: address range (64 addr + 92 dims) + stride (10)
	// + VN (56) + MAC (56) + flags (2).
	entryBits := 64 + 92 + 10 + 56 + 56 + 2
	metaTableBytes := c.Protection.MetaTableSize * entryBits / 8
	// Filter: 10 entries x (4 addresses x 64b + VN 56b + MAC 56b).
	filterBits := c.Protection.FilterEntries * (c.Protection.FilterDepth*64 + 56 + 56)
	filterBytes := filterBits / 8
	bitmapCacheBytes := 6 << 10
	poisonBytes := c.Protection.MetaTableSize / 8

	total := metaTableBytes + filterBytes + bitmapCacheBytes + poisonBytes
	tb := stats.NewTable("on-chip storage", "component", "bytes")
	tb.AddRow("Meta Table (512 entries)", metaTableBytes)
	tb.AddRow("Tensor Filter (10x4)", filterBytes)
	tb.AddRow("Bitmap cache", bitmapCacheBytes)
	tb.AddRow("Poison bits", poisonBytes)
	tb.AddRow("Total", total)
	r.Tables = append(r.Tables, tb)
	r.Scalars["total_kb"] = float64(total) / 1024
	r.Notes = append(r.Notes,
		"paper: ~24KB total, 0.0072 mm^2 under 7nm (CACTI-7); area is technology detail, storage is reproduced here")
	return r, nil
}
